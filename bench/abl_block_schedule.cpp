// Ablation: the sqrt(k)-growing block schedule of Theorem 1 vs fixed-length
// blocks (including length 1 = plain per-slot Tsallis-INF). The growing
// schedule should be robust across switching-cost weights, while fixed
// schedules pay either excess switching (short blocks, heavy u_i) or excess
// exploration inertia (long blocks, light u_i).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "core/carbon_trader.h"
#include "opt/tsallis_step.h"
#include "util/table.h"

namespace {

using namespace cea;

/// Tsallis-INF with constant block length (the ablated schedule).
class FixedBlockTsallis final : public bandit::ModelSelectionPolicy {
 public:
  FixedBlockTsallis(const bandit::PolicyContext& context,
                    std::size_t block_length)
      : rng_(context.seed),
        cumulative_losses_(context.num_models, 0.0),
        probabilities_(context.num_models, 0.0),
        block_length_(block_length) {}

  std::size_t select(std::size_t /*t*/) override {
    if (slots_left_ == 0) {
      if (block_index_ > 0) {
        cumulative_losses_[arm_] +=
            block_loss_ / std::max(probabilities_[arm_], 1e-12);
      }
      ++block_index_;
      const double eta =
          2.0 / std::sqrt(static_cast<double>(block_index_));
      probabilities_ = tsallis_probabilities(cumulative_losses_, eta);
      arm_ = rng_.categorical(probabilities_);
      slots_left_ = block_length_;
      block_loss_ = 0.0;
    }
    --slots_left_;
    return arm_;
  }

  void feedback(std::size_t /*t*/, std::size_t /*arm*/, double loss) override {
    block_loss_ += loss;
  }

  std::string name() const override { return "FixedBlock"; }

  static bandit::PolicyFactory factory(std::size_t block_length) {
    return [block_length](const bandit::PolicyContext& context) {
      return std::make_unique<FixedBlockTsallis>(context, block_length);
    };
  }

 private:
  Rng rng_;
  std::vector<double> cumulative_losses_;
  std::vector<double> probabilities_;
  std::size_t block_length_;
  std::size_t block_index_ = 0;
  std::size_t arm_ = 0;
  std::size_t slots_left_ = 0;
  double block_loss_ = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  auto telemetry = cea::bench::TelemetrySession::from_args(argc, argv);

  const std::size_t runs = bench::num_runs();
  std::printf("Ablation — block schedule (growing sqrt(k) vs fixed), "
              "%zu-run avg\n\n",
              runs);

  const std::vector<sim::AlgorithmCombo> variants = {
      sim::ours_combo(),  // growing blocks (Theorem 1 schedule)
      {"Fixed-1 (plain TINF)", FixedBlockTsallis::factory(1),
       core::OnlineCarbonTrader::factory()},
      {"Fixed-5", FixedBlockTsallis::factory(5),
       core::OnlineCarbonTrader::factory()},
      {"Fixed-20", FixedBlockTsallis::factory(20),
       core::OnlineCarbonTrader::factory()},
  };

  auto csv = bench::make_csv("abl_block_schedule");
  csv.write_row({"variant", "weight", "total_cost", "switches"});
  for (const double weight : {0.5, 2.0, 8.0}) {
    sim::SimConfig config;
    config.num_edges = 10;
    config.switching_weight = weight;
    config.seed = 42;
    const auto env = sim::Environment::make_parametric(config);
    std::printf("switching weight %.1f:\n", weight);
    Table table({"variant", "total cost", "switching cost", "switches"});
    for (const auto& variant : variants) {
      const auto result = bench::averaged(env, variant, runs, 7);
      table.add_row(variant.name,
                    {result.settled_total_cost(), result.total_switching_cost(),
                     static_cast<double>(result.total_switches)},
                    1);
      csv.write_row(variant.name,
                    {weight, result.settled_total_cost(),
                     static_cast<double>(result.total_switches)});
    }
    table.print();
    std::printf("\n");
  }
  std::printf(
      "Expected: plain per-slot play (Fixed-1) collapses as switching gets\n"
      "expensive while the growing schedule adapts (its switch count drops\n"
      "with the weight). A hand-picked long fixed block can still win at\n"
      "this short horizon — but choosing it needs u_i and T in advance,\n"
      "whereas the Theorem-1 schedule is anytime and tuning-free.\n");
  return 0;
}
