// Ablation: Algorithm 2's rectified proximal primal step vs a bang-bang
// dual-only variant (same dual ascent, but the primal jumps straight to a
// corner of the liquidity box instead of taking a proximally regularized
// step). The proximal term is what the paper highlights as non-standard;
// removing it trades smooth tracking for oscillation — worse unit prices
// and larger terminal fit excursions.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "core/carbon_trader.h"
#include "core/regret.h"
#include "trading/trader.h"
#include "util/table.h"

namespace {

using namespace cea;

/// Same dual variable as Algorithm 2, but the primal step is the
/// unregularized minimizer of the linear surrogate over the box.
class BangBangPdTrader final : public trading::TradingPolicy {
 public:
  BangBangPdTrader(const trading::TraderContext& context, double gamma1_scale)
      : context_(context) {
    const double horizon =
        static_cast<double>(std::max<std::size_t>(context.horizon, 1));
    gamma1_ = gamma1_scale * std::pow(horizon, -1.0 / 3.0);
    cap_share_ = context.carbon_cap / horizon;
  }

  trading::TradeDecision decide(std::size_t /*t*/,
                                const trading::TradeObservation&) override {
    if (!has_history_) return {};
    trading::TradeDecision decision;
    if (lambda_ > prev_buy_price_) decision.buy = context_.max_trade_per_slot;
    if (prev_sell_price_ > lambda_)
      decision.sell = context_.max_trade_per_slot;
    return decision;
  }

  void feedback(std::size_t /*t*/, double emission,
                const trading::TradeObservation& obs,
                const trading::TradeDecision& executed) override {
    const double g =
        emission - cap_share_ - executed.buy + executed.sell;
    lambda_ = std::max(0.0, lambda_ + gamma1_ * g);
    prev_buy_price_ = obs.buy_price;
    prev_sell_price_ = obs.sell_price;
    has_history_ = true;
  }

  std::string name() const override { return "BangBangPD"; }

  static trading::TraderFactory factory(double gamma1_scale = 1.0) {
    return [gamma1_scale](const trading::TraderContext& context) {
      return std::make_unique<BangBangPdTrader>(context, gamma1_scale);
    };
  }

 private:
  trading::TraderContext context_;
  double gamma1_ = 0.0;
  double cap_share_ = 0.0;
  double lambda_ = 0.0;
  double prev_buy_price_ = 0.0;
  double prev_sell_price_ = 0.0;
  bool has_history_ = false;
};

}  // namespace

int main(int argc, char** argv) {
  auto telemetry = cea::bench::TelemetrySession::from_args(argc, argv);

  const std::size_t runs = bench::num_runs();
  std::printf("Ablation — Algorithm 2 primal step (proximal vs bang-bang), "
              "%zu-run avg\n\n",
              runs);

  const std::vector<sim::AlgorithmCombo> variants = {
      sim::ours_combo(),
      {"Ours-BangBang", sim::ours_combo().policy, BangBangPdTrader::factory()},
  };

  auto csv = bench::make_csv("abl_primal_step");
  csv.write_row({"variant", "cap", "trading_cost", "fit", "unit_cost",
                 "trade_volume"});
  for (const double cap : {250.0, 500.0, 750.0}) {
    sim::SimConfig config;
    config.num_edges = 10;
    config.carbon_cap = cap;
    config.seed = 42;
    const auto env = sim::Environment::make_parametric(config);
    std::printf("carbon cap %.0f:\n", cap);
    Table table({"variant", "trading cost", "fit", "unit cost",
                 "gross volume"});
    for (const auto& variant : variants) {
      const auto result = bench::averaged(env, variant, runs, 7);
      const double fit = core::fit(result.emissions, result.buys,
                                   result.sells, cap);
      table.add_row(variant.name,
                    {result.total_trading_cost(), fit,
                     result.unit_purchase_cost(),
                     result.total_buys() + result.total_sells()},
                    2);
      csv.write_row(variant.name,
                    {cap, result.total_trading_cost(), fit,
                     result.unit_purchase_cost(),
                     result.total_buys() + result.total_sells()});
    }
    table.print();
    std::printf("\n");
  }
  std::printf("Expected: the proximal step trades less gross volume for the "
              "same neutrality, with lower or equal trading cost.\n");
  return 0;
}
