#pragma once

// Shared helpers for the figure-reproduction benches. Each bench prints the
// same rows/series the corresponding paper figure reports and mirrors them
// into a CSV under bench_out/ for plotting.

#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "nn/gemm.h"
#include "sim/experiment.h"
#include "util/csv.h"
#include "util/thread_pool.h"

namespace cea::bench {

/// Parse a `--threads=N` argument and attach an N-thread compute pool to
/// the nn GEMM layer (N-1 workers plus the calling thread) so model
/// training inside a bench fans out over batches. Returns the thread count
/// in effect (1 = serial). Results are bit-identical for any N — the GEMM
/// layer's determinism contract (see nn/gemm.h).
inline std::size_t attach_compute_pool(int argc, char** argv) {
  std::size_t threads = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      const long v = std::strtol(argv[i] + 10, nullptr, 10);
      if (v > 0) threads = static_cast<std::size_t>(v);
    }
  }
  if (threads > 1) {
    static util::ThreadPool pool(threads - 1);
    nn::set_compute_pool(&pool);
  }
  return threads;
}

/// Number of averaged runs per data point. The paper averages 10; the
/// benches default to 5 to keep the whole suite fast. Override with the
/// CEA_BENCH_RUNS environment variable.
inline std::size_t num_runs() {
  if (const char* env = std::getenv("CEA_BENCH_RUNS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return 5;
}

/// Averaged runs for a figure data point, dispatched over the persistent
/// global thread pool (sized by CEA_BENCH_THREADS, default hardware
/// concurrency). Bit-identical to sim::run_combo_averaged for any thread
/// count — same seeds, order-independent per-run results.
inline sim::RunResult averaged(const sim::Environment& env,
                               const sim::AlgorithmCombo& combo,
                               std::size_t runs, std::uint64_t base_seed) {
  return sim::run_combo_averaged_parallel(env, combo, runs, base_seed);
}

/// CSV sink under bench_out/ (created on demand).
inline CsvWriter make_csv(const std::string& figure) {
  std::filesystem::create_directories("bench_out");
  return CsvWriter("bench_out/" + figure + ".csv");
}

/// The reduced combo set most figures plot (the paper omits some of the 12
/// for visual clarity; we follow Figs. 3-7's selection).
inline std::vector<sim::AlgorithmCombo> figure_combos() {
  std::vector<sim::AlgorithmCombo> picked;
  picked.push_back(sim::ours_combo());
  for (auto& combo : sim::baseline_combos()) {
    const auto& name = combo.name;
    if (name == "Ran-Ran" || name == "Ran-LY" || name == "Greedy-Ran" ||
        name == "Greedy-LY" || name == "TINF-Ran" || name == "TINF-LY" ||
        name == "UCB-Ran" || name == "UCB-TH" || name == "UCB-LY") {
      picked.push_back(std::move(combo));
    }
  }
  return picked;
}

}  // namespace cea::bench
