#pragma once

// Shared helpers for the figure-reproduction benches. Each bench prints the
// same rows/series the corresponding paper figure reports and mirrors them
// into a CSV under bench_out/ for plotting.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "nn/gemm.h"
#include "obs/export.h"
#include "obs/telemetry.h"
#include "sim/experiment.h"
#include "util/check.h"
#include "util/cpu.h"
#include "util/csv.h"
#include "util/thread_pool.h"

namespace cea::bench {

// ----------------------------------------------------------- run metadata

/// ISA level the SIMD dispatch resolves to on this machine (after any
/// CEA_FORCE_ISA cap).
inline const char* isa_level() {
  if (util::have_avx512()) return "avx512";
  if (util::have_avx2()) return "avx2";
  return "scalar";
}

/// HEAD commit of the working tree the bench runs in, or "unknown"
/// outside a git checkout (CEA_GIT_SHA overrides, for CI tarballs).
inline std::string git_sha() {
  if (const char* env = std::getenv("CEA_GIT_SHA")) return env;
  std::string sha;
  if (FILE* pipe = ::popen("git rev-parse HEAD 2>/dev/null", "r")) {
    char buffer[80] = {0};
    if (std::fgets(buffer, sizeof(buffer), pipe) != nullptr) sha = buffer;
    ::pclose(pipe);
  }
  while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r'))
    sha.pop_back();
  return sha.empty() ? "unknown" : sha;
}

/// Threads a bench fans out over: CEA_BENCH_THREADS when set (the global
/// pool honors it), hardware concurrency otherwise.
inline std::size_t bench_threads() {
  if (const char* env = std::getenv("CEA_BENCH_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return std::max(1u, std::thread::hardware_concurrency());
}

/// UTC wall time, ISO-8601.
inline std::string timestamp_utc() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buffer[32];
  std::strftime(buffer, sizeof(buffer), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buffer;
}

/// Provenance every bench artifact embeds: which commit, which ISA, how
/// many threads, when. Wall-clock seconds are appended by the caller once
/// the run finished.
inline obs::Metadata run_metadata() {
  return {
      {"git_sha", git_sha()},
      {"isa", isa_level()},
      {"threads", std::to_string(bench_threads())},
      {"timestamp_utc", timestamp_utc()},
  };
}

/// run_metadata() (plus wall-clock seconds) rendered as a JSON object, for
/// the benches' hand-rolled JSON mirrors (perf_nn.json, ...).
inline std::string meta_json_object(double wall_clock_sec) {
  obs::Metadata meta = run_metadata();
  char wall[32];
  std::snprintf(wall, sizeof(wall), "%.3f", wall_clock_sec);
  meta.push_back({"wall_clock_sec", wall});
  std::ostringstream out;
  out << "{";
  for (std::size_t i = 0; i < meta.size(); ++i) {
    if (i > 0) out << ", ";
    out << "\"" << obs::json_escape(meta[i].first) << "\": ";
    if (obs::is_json_number(meta[i].second)) {
      out << meta[i].second;
    } else {
      out << "\"" << obs::json_escape(meta[i].second) << "\"";
    }
  }
  out << "}";
  return out.str();
}

// ------------------------------------------------------ telemetry session

/// Harness side of the telemetry layer: parses (and strips, so
/// google-benchmark argument parsing stays happy) `--telemetry [path]` /
/// `--telemetry=path`, and when present enables tracing plus detail-level
/// instrumentation and — at scope exit — writes the JSON profile to
/// `path` and the Chrome trace (loadable at https://ui.perfetto.dev) next
/// to it. Without the flag the session is inert: telemetry stays in its
/// idle compiled-in state and nothing is written.
class TelemetrySession {
 public:
  static constexpr const char* kDefaultPath = "bench_out/telemetry.json";

  /// Parse and strip telemetry arguments from argv; argc is adjusted.
  static TelemetrySession from_args(int& argc, char** argv) {
    TelemetrySession session;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg = argv[i];
      if (arg == "--telemetry") {
        session.path_ = (i + 1 < argc && argv[i + 1][0] != '-')
                            ? argv[++i]
                            : kDefaultPath;
      } else if (arg.rfind("--telemetry=", 0) == 0) {
        session.path_ = std::string(arg.substr(12));
        if (session.path_.empty()) session.path_ = kDefaultPath;
      } else {
        argv[out++] = argv[i];
      }
    }
    argc = out;
    if (session.enabled()) {
      obs::reset();
      obs::enable_tracing();
      obs::set_detail(true);
    }
    return session;
  }

  TelemetrySession() = default;
  TelemetrySession(TelemetrySession&& other) noexcept { *this = std::move(other); }
  TelemetrySession& operator=(TelemetrySession&& other) noexcept {
    path_ = std::exchange(other.path_, std::string());
    start_ = other.start_;
    return *this;
  }
  ~TelemetrySession() { finish(); }

  bool enabled() const noexcept { return !path_.empty(); }

  /// Path the Chrome trace lands at: "<path minus .json>.trace.json".
  std::string trace_path() const {
    std::string base = path_;
    if (base.size() >= 5 && base.ends_with(".json"))
      base.resize(base.size() - 5);
    return base + ".trace.json";
  }

  /// Export the profile + trace (idempotent; the destructor calls this).
  void finish() {
    if (!enabled()) return;
    const std::string path = std::exchange(path_, std::string());
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    // Capture the drop counters BEFORE disabling: disable_tracing()
    // clears the trace-ring drop count, so reading it afterwards always
    // reports 0 and silently hides ring saturation.
    const std::uint64_t trace_drops = obs::trace_dropped();
    const std::size_t check_drops = audit::dropped_count();
    obs::disable_tracing();
    obs::set_detail(false);
    obs::Metadata meta = run_metadata();
    char wall_text[32];
    std::snprintf(wall_text, sizeof(wall_text), "%.3f", wall);
    meta.push_back({"wall_clock_sec", wall_text});
    // Saturation counters in the profile summary: nonzero trace_dropped
    // means the Chrome trace is a truncated window, nonzero check_dropped
    // means the audit collector overflowed its violation capacity.
    meta.push_back({"trace_dropped", std::to_string(trace_drops)});
    meta.push_back({"check_dropped", std::to_string(check_drops)});

    const auto parent = std::filesystem::path(path).parent_path();
    if (!parent.empty()) std::filesystem::create_directories(parent);
    std::string trace = path;
    if (trace.size() >= 5 && trace.ends_with(".json"))
      trace.resize(trace.size() - 5);
    trace += ".trace.json";
    const bool wrote_profile =
        obs::write_profile_json(path, obs::snapshot(), meta);
    const auto events = obs::drain_trace();
    const bool wrote_trace = obs::write_chrome_trace(trace, events);
    if (wrote_profile && wrote_trace) {
      std::printf("telemetry: wrote %s and %s (%zu trace events, %llu "
                  "dropped)\n",
                  path.c_str(), trace.c_str(), events.size(),
                  static_cast<unsigned long long>(trace_drops));
    } else {
      std::fprintf(stderr, "telemetry: failed writing %s / %s\n",
                   path.c_str(), trace.c_str());
    }
  }

 private:
  std::string path_;
  std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
};

/// Parse a `--threads=N` argument and attach an N-thread compute pool to
/// the nn GEMM layer (N-1 workers plus the calling thread) so model
/// training inside a bench fans out over batches. Returns the thread count
/// in effect (1 = serial). Results are bit-identical for any N — the GEMM
/// layer's determinism contract (see nn/gemm.h).
inline std::size_t attach_compute_pool(int argc, char** argv) {
  std::size_t threads = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      const long v = std::strtol(argv[i] + 10, nullptr, 10);
      if (v > 0) threads = static_cast<std::size_t>(v);
    }
  }
  if (threads > 1) {
    static util::ThreadPool pool(threads - 1);
    nn::set_compute_pool(&pool);
  }
  return threads;
}

/// Number of averaged runs per data point. The paper averages 10; the
/// benches default to 5 to keep the whole suite fast. Override with the
/// CEA_BENCH_RUNS environment variable.
inline std::size_t num_runs() {
  if (const char* env = std::getenv("CEA_BENCH_RUNS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return 5;
}

/// Averaged runs for a figure data point, dispatched over the persistent
/// global thread pool (sized by CEA_BENCH_THREADS, default hardware
/// concurrency). Bit-identical to sim::run_combo_averaged for any thread
/// count — same seeds, order-independent per-run results.
inline sim::RunResult averaged(const sim::Environment& env,
                               const sim::AlgorithmCombo& combo,
                               std::size_t runs, std::uint64_t base_seed) {
  return sim::run_combo_averaged_parallel(env, combo, runs, base_seed);
}

/// CSV sink under bench_out/ (created on demand).
inline CsvWriter make_csv(const std::string& figure) {
  std::filesystem::create_directories("bench_out");
  return CsvWriter("bench_out/" + figure + ".csv");
}

/// The reduced combo set most figures plot (the paper omits some of the 12
/// for visual clarity; we follow Figs. 3-7's selection).
inline std::vector<sim::AlgorithmCombo> figure_combos() {
  std::vector<sim::AlgorithmCombo> picked;
  picked.push_back(sim::ours_combo());
  for (auto& combo : sim::baseline_combos()) {
    const auto& name = combo.name;
    if (name == "Ran-Ran" || name == "Ran-LY" || name == "Greedy-Ran" ||
        name == "Greedy-LY" || name == "TINF-Ran" || name == "TINF-LY" ||
        name == "UCB-Ran" || name == "UCB-TH" || name == "UCB-LY") {
      picked.push_back(std::move(combo));
    }
  }
  return picked;
}

}  // namespace cea::bench
