// Extension: concept drift. The paper assumes a time-invariant data
// distribution; Tsallis-INF's selling point is that it is simultaneously
// optimal in stochastic AND adversarial regimes. This bench injects an
// abrupt quality flip (SimConfig::loss_shift_slot) and measures how each
// model-selection policy recovers — stochastic-only learners (UCB2,
// Thompson) have concentrated confidence/posteriors that resist revision.
#include <cstdio>

#include "bandit/thompson.h"
#include "bandit/tsallis_inf.h"
#include "bandit/ucb2.h"
#include "bench_common.h"
#include "core/blocked_tsallis_inf.h"
#include "core/carbon_trader.h"
#include "util/table.h"

int main(int argc, char** argv) {
  auto telemetry = cea::bench::TelemetrySession::from_args(argc, argv);

  using namespace cea;
  const std::size_t runs = bench::num_runs();
  const std::size_t horizon = 480, shift = 160;

  sim::SimConfig config;
  config.num_edges = 10;
  config.horizon = horizon;
  config.workload.num_slots = horizon;
  config.carbon_cap = 1500.0;
  config.loss_shift_slot = shift;
  config.seed = 42;
  const auto env = sim::Environment::make_parametric(config);

  std::printf("Extension — concept drift at t=%zu of %zu (%zu-run avg)\n\n",
              shift, horizon, runs);

  const std::vector<sim::AlgorithmCombo> contenders = {
      sim::ours_combo(),
      // Discounted Algorithm 1: old evidence fades, tracking the drift.
      {"Ours-disc0.9",
       core::BlockedTsallisInfPolicy::discounted_factory(0.9),
       core::OnlineCarbonTrader::factory()},
      {"UCB2-PD", bandit::Ucb2Policy::factory(),
       core::OnlineCarbonTrader::factory()},
      {"Thompson-PD", bandit::ThompsonSamplingPolicy::factory(),
       core::OnlineCarbonTrader::factory()},
      {"TINF-PD", bandit::TsallisInfPolicy::factory(),
       core::OnlineCarbonTrader::factory()},
  };

  Table table({"algorithm", "acc pre-shift", "acc 1st quarter post",
               "acc final quarter", "recovery"});
  auto csv = bench::make_csv("ext_nonstationary");
  csv.write_row({"algorithm", "pre", "post_early", "post_late",
                 "recovery"});
  for (const auto& combo : contenders) {
    const auto result = sim::run_combo_averaged_parallel(env, combo, runs, 7);
    auto window_mean = [&](std::size_t lo, std::size_t hi) {
      double total = 0.0;
      for (std::size_t t = lo; t < hi; ++t) total += result.accuracy[t];
      return total / static_cast<double>(hi - lo);
    };
    const double pre = window_mean(shift / 2, shift);
    const double post_early = window_mean(shift, shift + 80);
    const double post_late = window_mean(horizon - 80, horizon);
    table.add_row(combo.name,
                  {pre, post_early, post_late, post_late - post_early}, 3);
    csv.write_row(combo.name,
                  {pre, post_early, post_late, post_late - post_early});
  }
  table.print();
  std::printf(
      "\nExpected: the undiscounted policies lose ~0.15 accuracy at the "
      "shift and recover most of it by the final quarter; Ours matches the "
      "unblocked learners' recovery while paying only block-boundary "
      "switches. The discounted variant barely feels the shift at all but "
      "pays a permanent exploration tax in the stationary phases — the "
      "classic tracking/regret tradeoff.\n");
  return 0;
}
