// Extension: cross-edge pooled learning. The paper's Algorithm 1 learns
// per edge from scratch even though Section II-A posits one common data
// distribution; the pooled variant shares the importance-weighted loss
// table across edges (core/pooled_tsallis.h). This bench measures what
// sharing buys as the fleet grows — evidence accumulates ~I times faster,
// so short-horizon accuracy and inference cost improve most at large I.
#include <cstdio>

#include "bench_common.h"
#include "core/pooled_tsallis.h"
#include "util/table.h"

int main(int argc, char** argv) {
  auto telemetry = cea::bench::TelemetrySession::from_args(argc, argv);

  using namespace cea;
  const std::size_t runs = bench::num_runs();
  std::printf("Extension — pooled cross-edge bandit learning (%zu-run "
              "avg)\n\n",
              runs);

  Table table({"edges", "Ours inference cost", "Pooled inference cost",
               "Ours accuracy", "Pooled accuracy"});
  auto csv = bench::make_csv("ext_pooled_learning");
  csv.write_row({"edges", "ours_cost", "pooled_cost", "ours_acc",
                 "pooled_acc"});
  for (const std::size_t edges : {5u, 10u, 20u, 40u}) {
    sim::SimConfig config;
    config.num_edges = edges;
    config.carbon_cap = 50.0 * static_cast<double>(edges);
    config.max_trade_per_slot = 2.5 * static_cast<double>(edges);
    config.seed = 42;
    const auto env = sim::Environment::make_parametric(config);

    const auto ours = sim::run_combo_averaged(env, sim::ours_combo(), runs, 7);
    const sim::AlgorithmCombo pooled{
        "Pooled", core::pooled_tsallis_factory(), sim::ours_combo().trader};
    // Serial averaging: the pooled factory is stateful across edges.
    const auto pooled_result = sim::run_combo_averaged(env, pooled, runs, 7);

    table.add_row(std::to_string(edges),
                  {ours.total_inference_cost(),
                   pooled_result.total_inference_cost(),
                   ours.mean_accuracy(), pooled_result.mean_accuracy()},
                  3);
    csv.write_row(std::to_string(edges),
                  {ours.total_inference_cost(),
                   pooled_result.total_inference_cost(),
                   ours.mean_accuracy(), pooled_result.mean_accuracy()});
  }
  table.print();
  std::printf("\nExpected: pooling wins on inference cost and accuracy at "
              "every fleet size, with the edge growing in I (shared "
              "evidence accumulates I times faster).\n");
  return 0;
}
