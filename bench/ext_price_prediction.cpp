// Extension (paper Section VII, future work #1): price prediction in the
// trading loop. PredictiveCarbonTrader replaces Algorithm 2's trailing
// prices with online AR(1) forecasts; everything else is identical, so the
// delta isolates the value of prediction.
#include <cstdio>

#include "bench_common.h"
#include "core/carbon_trader.h"
#include "core/mpc_trader.h"
#include "core/predictive_trader.h"
#include "core/regret.h"
#include "util/table.h"

int main(int argc, char** argv) {
  auto telemetry = cea::bench::TelemetrySession::from_args(argc, argv);

  using namespace cea;
  const std::size_t runs = bench::num_runs();
  std::printf("Extension — AR(1) price prediction in Algorithm 2 "
              "(%zu-run avg)\n\n",
              runs);

  const std::vector<sim::AlgorithmCombo> variants = {
      sim::ours_combo(),
      {"Ours+Predict", sim::ours_combo().policy,
       core::PredictiveCarbonTrader::factory()},
      // Receding-horizon LP over AR(1) rollouts (core/mpc_trader.h):
      // planning-heavy contrast to the O(1) primal-dual step.
      {"Ours+MPC", sim::ours_combo().policy,
       core::MpcCarbonTrader::factory(12)},
  };

  auto csv = bench::make_csv("ext_price_prediction");
  csv.write_row({"variant", "volatility", "trading_cost", "fit",
                 "unit_cost"});
  for (const double volatility : {0.15, 0.35, 0.7}) {
    sim::SimConfig config;
    config.num_edges = 10;
    config.market.volatility = volatility;
    config.seed = 42;
    const auto env = sim::Environment::make_parametric(config);
    std::printf("price volatility %.2f:\n", volatility);
    Table table({"variant", "trading cost", "fit", "unit cost"});
    for (const auto& variant : variants) {
      const auto result = bench::averaged(env, variant, runs, 7);
      const double fit =
          core::fit(result.emissions, result.buys, result.sells,
                    config.carbon_cap);
      table.add_row(variant.name,
                    {result.total_trading_cost(), fit,
                     result.unit_purchase_cost()},
                    2);
      csv.write_row(variant.name,
                    {volatility, result.total_trading_cost(), fit,
                     result.unit_purchase_cost()});
    }
    table.print();
    std::printf("\n");
  }
  std::printf("Expected: modest unit-cost gains that grow with volatility "
              "(the step already self-corrects through the dual, so the "
              "headroom is small); the neutrality guarantee is untouched — "
              "the dual update is unchanged.\n");
  return 0;
}
