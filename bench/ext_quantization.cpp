// Extension (paper Section VII, future work #2): quantization-aware carbon
// control. Each trained model is post-training-quantized to int8 and int4;
// the quantized variants join the model zoo as additional arms with
// bits/32 of the size (less transfer energy) and proportionally lower
// per-sample inference energy, at slightly worse loss. The controller can
// then trade accuracy against carbon — this bench measures what that buys.
#include <cstdio>
#include <filesystem>
#include <tuple>

#include "bench_common.h"
#include "data/loss_profile.h"
#include "data/synthetic_dataset.h"
#include "nn/quantize.h"
#include "nn/serialize.h"
#include "nn/train.h"
#include "nn/zoo.h"
#include "util/table.h"

int main(int argc, char** argv) {
  auto telemetry = cea::bench::TelemetrySession::from_args(argc, argv);

  using namespace cea;
  const std::size_t runs = bench::num_runs();
  std::printf("Extension — quantization-aware carbon control (%zu-run avg)\n",
              runs);
  std::printf("Training 3 float models, deriving int8/int4 variants...\n");

  const data::SyntheticDistribution dist(data::mnist_like_spec());
  Rng data_rng(1);
  const data::Dataset train_set = dist.sample(800, data_rng);
  const data::Dataset test_set = dist.sample(400, data_rng);

  Rng model_rng(2);
  std::vector<nn::Sequential> zoo;
  zoo.push_back(nn::make_mlp("mlp-256", nn::mnist_spec(), 256, model_rng));
  zoo.push_back(nn::make_mlp("mlp-64", nn::mnist_spec(), 64, model_rng));
  zoo.push_back(nn::make_lenet5("lenet5-half", nn::mnist_spec(), 0.5,
                                model_rng));

  nn::TrainConfig config;
  config.epochs = 2;
  config.batch_size = 32;
  config.learning_rate = 0.05f;

  // Per-sample energy of each float model (interpolated over the paper's
  // band by size), and of quantized variants at the integer-MAC discount
  // (int8 ~0.25x, int4 ~0.15x of fp32 per-MAC energy, Horowitz-style).
  const double float_energies[] = {10e-8, 7e-8, 6e-8};
  const double bit_discount[] = {0.25, 0.15};  // int8, int4

  std::vector<data::LossProfile> float_profiles;
  std::vector<double> float_energy_list;
  std::vector<data::LossProfile> extended_profiles;
  std::vector<double> extended_energy_list;
  std::size_t model_index = 0;
  for (auto& model : zoo) {
    nn::train_sgd(model, train_set.samples, train_set.labels, config,
                  model_rng);
    float_profiles.push_back(data::profile_model(model, test_set));
    float_energy_list.push_back(float_energies[model_index]);
    extended_profiles.push_back(float_profiles.back());
    extended_energy_list.push_back(float_energies[model_index]);
    std::size_t bit_index = 0;
    for (const std::size_t bits : {8u, 4u}) {
      // Quantize a copy of the weights (round-trip through a checkpoint so
      // the float model is preserved).
      const std::string checkpoint =
          "bench_out/quant_tmp_" + model.name() + ".bin";
      std::filesystem::create_directories("bench_out");
      nn::save_model(model, checkpoint);
      const auto report = nn::quantize_model(model, bits);
      auto profile = data::profile_model(
          model, test_set, 64, nn::quantized_size_mb(model, bits));
      std::printf("  %-12s int%zu: size %.3f MB, accuracy %.3f (float %.3f), "
                  "max err %.4f\n",
                  model.name().c_str(), bits, report.size_mb,
                  profile.accuracy(), float_profiles.back().accuracy(),
                  report.max_abs_error);
      extended_profiles.push_back(std::move(profile));
      extended_energy_list.push_back(float_energies[model_index] *
                                     bit_discount[bit_index]);
      ++bit_index;
      nn::load_model(model, checkpoint);  // restore float weights
      std::remove(checkpoint.c_str());
    }
    ++model_index;
  }

  auto run_zoo = [&](std::vector<data::LossProfile> profiles,
                     std::vector<double> energies, const char* label) {
    sim::SimConfig sim_config;
    sim_config.num_edges = 10;
    sim_config.seed = 42;
    const auto env = sim::Environment::from_profiles(
        sim_config, std::move(profiles), std::move(energies));
    const auto result = bench::averaged(env, sim::ours_combo(),
                                                runs, 7);
    return std::tuple<std::string, double, double, double>(
        label, result.settled_total_cost(), result.total_emissions(),
        result.mean_accuracy());
  };

  const auto base =
      run_zoo(float_profiles, float_energy_list, "float zoo (3 arms)");
  const auto extended = run_zoo(extended_profiles, extended_energy_list,
                                "float+int8+int4 zoo (9 arms)");

  Table table({"zoo", "settled cost", "emissions", "accuracy"});
  auto csv = bench::make_csv("ext_quantization");
  csv.write_row({"zoo", "settled_cost", "emissions", "accuracy"});
  for (const auto& row : {base, extended}) {
    table.add_row(std::get<0>(row),
                  {std::get<1>(row), std::get<2>(row), std::get<3>(row)}, 3);
    csv.write_row(std::get<0>(row),
                  {std::get<1>(row), std::get<2>(row), std::get<3>(row)});
  }
  table.print();
  std::printf("\nExpected: the extended zoo gives the controller cheaper "
              "low-energy arms, cutting emissions and total cost at little "
              "accuracy loss (int8 is nearly free; int4 trades more).\n");
  return 0;
}
