// Extension (paper Section VII, future work #2): quantization-aware carbon
// control. Each trained model is post-training-quantized to int8 and int4;
// the quantized variants join the model zoo as additional arms with a
// smaller transfer size F_{i,n} and a lower per-sample inference energy
// v_{i,n}, at slightly worse loss. The controller can then trade accuracy
// against carbon — this bench measures what that buys.
//
// The int8 arm is REAL end to end: it runs the quantized compute path
// (ComputeBackend::kGemmInt8 — gemm::multiply_i8 through a QuantizedModel
// twin built from a checkpoint round-trip), so both its accuracy and its
// energy discount are measured, not assumed. The v_{i,n} discount is the
// measured int8/fp32 forward-pass time ratio on this machine — a
// time-per-sample proxy for energy-per-sample (same hardware, same power
// envelope). The int4 arm stays SIMULATED (fake-quantized weights through
// the fp32 path at a Horowitz-style 0.15x per-MAC energy guess): there are
// no int4 kernels, so it has no measurable time.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <string>
#include <tuple>
#include <vector>

#include "bench_common.h"
#include "data/loss_profile.h"
#include "data/synthetic_dataset.h"
#include "nn/gemm.h"
#include "nn/quantize.h"
#include "nn/serialize.h"
#include "nn/train.h"
#include "nn/zoo.h"
#include "util/table.h"

namespace {

/// Mean seconds per forward pass of `batch`, after one warmup pass.
double time_forward(cea::nn::Sequential& model, const cea::nn::Tensor& batch,
                    std::size_t reps) {
  model.forward(batch);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < reps; ++r) model.forward(batch);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
             .count() /
         static_cast<double>(reps);
}

}  // namespace

int main(int argc, char** argv) {
  auto telemetry = cea::bench::TelemetrySession::from_args(argc, argv);

  using namespace cea;
  const std::size_t runs = bench::num_runs();
  std::printf("Extension — quantization-aware carbon control (%zu-run avg)\n",
              runs);
  std::printf("Training 4 float models, deriving int8 (measured) and int4 "
              "(simulated) variants...\n");

  const data::SyntheticDistribution dist(data::mnist_like_spec());
  Rng data_rng(1);
  const data::Dataset train_set = dist.sample(800, data_rng);
  const data::Dataset test_set = dist.sample(400, data_rng);

  // Factories so the int8 twin can be cloned through a checkpoint
  // round-trip (load_model needs a same-architecture shell; the random
  // init is immediately overwritten). cnn-16x32 is the paper's fig12
  // model.
  struct ZooEntry {
    const char* name;
    std::function<nn::Sequential(Rng&)> make;
    double float_energy;  // per-sample J, interpolated over the paper band
  };
  const ZooEntry entries[] = {
      {"mlp-256",
       [](Rng& r) { return nn::make_mlp("mlp-256", nn::mnist_spec(), 256, r); },
       10e-8},
      {"mlp-64",
       [](Rng& r) { return nn::make_mlp("mlp-64", nn::mnist_spec(), 64, r); },
       7e-8},
      {"lenet5-half",
       [](Rng& r) {
         return nn::make_lenet5("lenet5-half", nn::mnist_spec(), 0.5, r);
       },
       6e-8},
      {"cnn-16x32",
       [](Rng& r) {
         return nn::make_simple_cnn("cnn-16x32", nn::mnist_spec(), 16, 32, r);
       },
       12e-8},
  };

  nn::TrainConfig config;
  config.epochs = 2;
  config.batch_size = 32;
  config.learning_rate = 0.05f;

  const double int4_discount = 0.15;  // simulated: no int4 kernels exist
  const std::size_t timing_reps = std::getenv("CEA_BENCH_SMOKE") ? 2 : 10;
  nn::Tensor timing_batch({64, 1, 28, 28});
  Rng timing_rng(3);
  for (auto& v : timing_batch.data())
    v = static_cast<float>(timing_rng.uniform());

  std::vector<data::LossProfile> float_profiles;
  std::vector<double> float_energy_list;
  std::vector<data::LossProfile> extended_profiles;
  std::vector<double> extended_energy_list;

  struct ArmRow {
    std::string arm;
    double size_mb, accuracy, acc_delta_pp, discount;
    const char* discount_source;
  };
  std::vector<ArmRow> arm_rows;

  Rng model_rng(2);
  std::filesystem::create_directories("bench_out");
  for (const ZooEntry& entry : entries) {
    nn::Sequential model = entry.make(model_rng);
    nn::train_sgd(model, train_set.samples, train_set.labels, config,
                  model_rng);
    model.set_training(false);
    float_profiles.push_back(data::profile_model(model, test_set));
    float_energy_list.push_back(entry.float_energy);
    extended_profiles.push_back(float_profiles.back());
    extended_energy_list.push_back(entry.float_energy);
    const double float_accuracy = float_profiles.back().accuracy();
    arm_rows.push_back({model.name(), model.size_mb(), float_accuracy, 0.0,
                        1.0, "fp32"});

    const std::string checkpoint =
        "bench_out/quant_tmp_" + model.name() + ".bin";
    nn::save_model(model, checkpoint);

    // --- int8 arm: QuantizedModel twin, measured accuracy AND discount.
    {
      Rng clone_rng(0);
      nn::Sequential shell = entry.make(clone_rng);
      nn::load_model(shell, checkpoint);
      nn::QuantizedModel twin(std::move(shell));
      const double fp32_time = time_forward(model, timing_batch, timing_reps);
      double int8_time;
      {
        nn::ScopedComputeBackend scoped(nn::ComputeBackend::kGemmInt8);
        int8_time = time_forward(twin.model(), timing_batch, timing_reps);
      }
      const double discount = int8_time / fp32_time;
      data::LossProfile profile;
      {
        nn::ScopedComputeBackend scoped(nn::ComputeBackend::kGemmInt8);
        profile = data::profile_model(twin.model(), test_set, 64,
                                      twin.size_mb());
      }
      const double delta_pp = (float_accuracy - profile.accuracy()) * 100.0;
      std::printf("  %-12s int8: size %.3f MB, accuracy %.3f (float %.3f, "
                  "delta %+.2f pp), measured v discount %.3fx\n",
                  twin.name().c_str(), twin.size_mb(), profile.accuracy(),
                  float_accuracy, -delta_pp, discount);
      arm_rows.push_back({twin.name(), twin.size_mb(), profile.accuracy(),
                          delta_pp, discount, "measured"});
      extended_profiles.push_back(std::move(profile));
      extended_energy_list.push_back(entry.float_energy * discount);
    }

    // --- int4 arm: fake-quantized weights through the fp32 path,
    // simulated per-MAC energy discount.
    {
      const auto report = nn::quantize_model(model, 4);
      auto profile = data::profile_model(model, test_set, 64,
                                         nn::quantized_size_mb(model, 4));
      const double delta_pp = (float_accuracy - profile.accuracy()) * 100.0;
      std::printf("  %-12s int4: size %.3f MB, accuracy %.3f (float %.3f, "
                  "delta %+.2f pp), simulated v discount %.2fx, max err "
                  "%.4f\n",
                  model.name().c_str(), report.size_mb, profile.accuracy(),
                  float_accuracy, -delta_pp, int4_discount,
                  report.max_abs_error);
      arm_rows.push_back({model.name() + "-int4",
                          nn::quantized_size_mb(model, 4),
                          profile.accuracy(), delta_pp, int4_discount,
                          "simulated"});
      extended_profiles.push_back(std::move(profile));
      extended_energy_list.push_back(entry.float_energy * int4_discount);
      nn::load_model(model, checkpoint);  // restore float weights
    }
    std::remove(checkpoint.c_str());
  }

  auto run_zoo = [&](std::vector<data::LossProfile> profiles,
                     std::vector<double> energies, const char* label) {
    sim::SimConfig sim_config;
    sim_config.num_edges = 10;
    sim_config.seed = 42;
    const auto env = sim::Environment::from_profiles(
        sim_config, std::move(profiles), std::move(energies));
    const auto result = bench::averaged(env, sim::ours_combo(),
                                                runs, 7);
    return std::tuple<std::string, double, double, double>(
        label, result.settled_total_cost(), result.total_emissions(),
        result.mean_accuracy());
  };

  const auto base =
      run_zoo(float_profiles, float_energy_list, "float zoo (4 arms)");
  const auto extended = run_zoo(extended_profiles, extended_energy_list,
                                "float+int8+int4 zoo (12 arms)");

  auto csv = bench::make_csv("ext_quantization");
  Table arm_table(
      {"arm", "size MB", "accuracy", "acc delta pp", "v discount", "source"});
  csv.write_row({"arm", "size_mb", "accuracy", "acc_delta_pp",
                 "energy_discount", "discount_source"});
  for (const ArmRow& row : arm_rows) {
    arm_table.add_row(row.arm + " [" + row.discount_source + "]",
                      {row.size_mb, row.accuracy, row.acc_delta_pp,
                       row.discount},
                      3);
    csv.write_row({row.arm, std::to_string(row.size_mb),
                   std::to_string(row.accuracy),
                   std::to_string(row.acc_delta_pp),
                   std::to_string(row.discount), row.discount_source});
  }
  arm_table.print();

  Table table({"zoo", "settled cost", "emissions", "accuracy"});
  csv.write_row({"zoo", "settled_cost", "emissions", "accuracy"});
  for (const auto& row : {base, extended}) {
    table.add_row(std::get<0>(row),
                  {std::get<1>(row), std::get<2>(row), std::get<3>(row)}, 3);
    csv.write_row(std::get<0>(row),
                  {std::get<1>(row), std::get<2>(row), std::get<3>(row)});
  }
  table.print();
  std::printf("\nExpected: the extended zoo gives the controller cheaper "
              "low-energy arms, cutting emissions and total cost at little "
              "accuracy loss. The int8 rows are measured end to end "
              "(kGemmInt8 accuracy, timed v discount; target: accuracy "
              "delta <= 0.5 pp); int4 stays a simulated what-if.\n");
  return 0;
}
