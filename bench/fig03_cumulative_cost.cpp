// Fig. 3: normalized cumulative total cost in real time, 10 edges.
// Paper's finding: Ours grows slowest and stays closest to Offline.
// Series are normalized by the Offline optimum's final cumulative cost.
#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "core/regret.h"
#include "sim/audit.h"
#include "util/table.h"

int main(int argc, char** argv) {
  auto telemetry = cea::bench::TelemetrySession::from_args(argc, argv);

  using namespace cea;

  sim::SimConfig config;
  config.num_edges = 10;
  config.seed = 42;
  const auto env = sim::Environment::make_parametric(config);
  const std::size_t runs = bench::num_runs();

  const auto offline = sim::run_offline_averaged(env, runs, 7);

  std::printf("Fig. 3 — cumulative total cost over time (10 edges, %zu-run "
              "avg), normalized by the worst algorithm's final cost\n\n",
              runs);
  const std::vector<std::size_t> checkpoints = {19, 39, 59, 79, 99, 119,
                                                139, 159};
  std::vector<std::string> header = {"algorithm"};
  for (auto t : checkpoints) header.push_back("t=" + std::to_string(t + 1));
  Table table(header);
  auto csv = bench::make_csv("fig03");
  {
    std::vector<std::string> csv_header = {"algorithm"};
    for (auto t : checkpoints) csv_header.push_back(std::to_string(t + 1));
    csv.write_row(csv_header);
  }

  std::vector<sim::RunResult> results;
  for (const auto& combo : bench::figure_combos()) {
    results.push_back(bench::averaged(env, combo, runs, 7));
  }
  results.push_back(offline);

  // Cumulative cost with the running violation settled at each checkpoint
  // (prefix fit x settlement price), so under-covering shows as cost.
  auto settled_series = [&](const sim::RunResult& result) {
    const auto cumulative = result.cumulative_total_cost();
    const auto fit = core::fit_series(result.emissions, result.buys,
                                      result.sells, result.carbon_cap);
    std::vector<double> series(cumulative.size());
    for (std::size_t t = 0; t < cumulative.size(); ++t)
      series[t] = cumulative[t] + fit[t] * result.settlement_price;
    return series;
  };

  double norm = 0.0;
  for (const auto& result : results)
    norm = std::max(norm, settled_series(result).back());

  for (const auto& result : results) {
    const auto series = settled_series(result);
    std::vector<double> points;
    for (auto t : checkpoints) points.push_back(series[t] / norm);
    table.add_row(result.algorithm, points, 3);
    csv.write_row(result.algorithm, points);
  }
  table.print();
  std::printf("\nExpected shape: Ours below every baseline combo at the "
              "final slot and closest to Offline.\n");

  // Post-hoc audit of every averaged series, then drain the hot-path
  // collector: in a -DCEA_AUDIT=ON build this turns any invariant
  // violation encountered above into a nonzero exit code.
  for (const auto& result : results)
    sim::audit_run(env, result, /*averaged=*/true);
  return sim::audit_exit_code("fig03");
}
