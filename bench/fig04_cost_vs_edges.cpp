// Fig. 4: normalized total cost vs number of edges.
// Paper's finding (10..50 edges): Ours always lowest; average reductions
// of 21%..55% against the baseline combos.
//
// Beyond the paper's range, the sweep continues to 1000 edges on the
// pooled edge-sharded engine (bit-identical to the serial engine — see
// SimOptions::pool — so the figure's numbers are unchanged by the engine
// choice; per-edge work just fans out over the global thread pool within
// each run). Per-edge-count wall time lands in bench_out/fig04.json next
// to the normalized costs, so fleet-size scaling of the whole harness is
// tracked across PRs.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>

#include "bench_common.h"
#include "util/table.h"
#include "util/thread_pool.h"

int main(int argc, char** argv) {
  auto telemetry = cea::bench::TelemetrySession::from_args(argc, argv);

  using namespace cea;
  const std::size_t runs = bench::num_runs();
  const std::vector<std::size_t> edge_counts = {10, 20, 30, 40, 50,
                                                100, 250, 1000};
  util::ThreadPool& pool = util::ThreadPool::global();

  std::printf("Fig. 4 — total cost vs number of edges (%zu-run avg), "
              "normalized by the worst algorithm at each size; pooled "
              "engine, sweep extended past the paper's 10..50 range\n\n",
              runs);

  auto combos = bench::figure_combos();
  std::vector<std::string> header = {"algorithm"};
  for (auto e : edge_counts) header.push_back("I=" + std::to_string(e));
  header.push_back("avg red. vs Ours");
  Table table(header);
  auto csv = bench::make_csv("fig04");
  {
    std::vector<std::string> csv_header = {"algorithm"};
    for (auto e : edge_counts) csv_header.push_back(std::to_string(e));
    csv_header.push_back("avg_reduction_pct");
    csv.write_row(csv_header);
  }

  // results[combo][edge-size], normalized by the worst algorithm at each
  // system size (Offline is included unnormalized first, then scaled).
  std::vector<std::vector<double>> totals(combos.size() + 1);
  std::vector<double> wall_sec(edge_counts.size(), 0.0);
  for (std::size_t ei = 0; ei < edge_counts.size(); ++ei) {
    const auto sweep_start = std::chrono::steady_clock::now();
    sim::SimConfig config;
    config.num_edges = edge_counts[ei];
    // Prorate the cap and the per-slot liquidity with the fleet size so
    // per-edge stringency stays constant across the sweep (at the paper's
    // 10-edge default this is exactly the paper's R = 500 and the default
    // liquidity). See EXPERIMENTS.md.
    config.carbon_cap = 50.0 * static_cast<double>(edge_counts[ei]);
    config.max_trade_per_slot = 2.5 * static_cast<double>(edge_counts[ei]);
    config.seed = 42;
    const auto env = sim::Environment::make_parametric(config);
    std::vector<double> raw(combos.size() + 1);
    for (std::size_t c = 0; c < combos.size(); ++c) {
      raw[c] = sim::run_combo_averaged_pooled(env, combos[c], runs, 7, &pool)
                   .settled_total_cost();
    }
    raw[combos.size()] = sim::run_offline_averaged(env, runs, 7).settled_total_cost();
    const double norm = *std::max_element(raw.begin(), raw.end());
    for (std::size_t c = 0; c < raw.size(); ++c)
      totals[c].push_back(raw[c] / norm);
    wall_sec[ei] = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - sweep_start)
                       .count();
  }

  const auto& ours = totals[0];
  // Average reduction over the paper's 10..50-edge range only, so the
  // headline number stays comparable with the paper's 21%..55%.
  const std::size_t paper_range = 5;
  for (std::size_t c = 0; c < combos.size(); ++c) {
    double reduction = 0.0;
    for (std::size_t ei = 0; ei < paper_range; ++ei)
      reduction += 1.0 - ours[ei] / totals[c][ei];
    reduction /= static_cast<double>(paper_range);
    auto row = totals[c];
    row.push_back(reduction * 100.0);
    table.add_row(combos[c].name, row, 3);
    csv.write_row(combos[c].name, row);
  }
  table.add_row("Offline", totals[combos.size()], 3);
  csv.write_row("Offline", totals[combos.size()]);
  table.print();

  // JSON mirror: per-edge-count wall time of the full combo sweep plus the
  // normalized costs (rows match the CSV).
  double total_wall = 0.0;
  for (double w : wall_sec) total_wall += w;
  std::ofstream json("bench_out/fig04.json");
  json << "{\n  \"meta\": " << bench::meta_json_object(total_wall)
       << ",\n  \"runs_per_point\": " << runs << ",\n  \"sweep\": [\n";
  for (std::size_t ei = 0; ei < edge_counts.size(); ++ei) {
    if (ei > 0) json << ",\n";
    json << "    {\"edges\": " << edge_counts[ei]
         << ", \"wall_sec\": " << wall_sec[ei] << ", \"normalized_cost\": {";
    for (std::size_t c = 0; c < combos.size(); ++c) {
      if (c > 0) json << ", ";
      json << "\"" << combos[c].name << "\": " << totals[c][ei];
    }
    json << ", \"Offline\": " << totals[combos.size()][ei] << "}}";
  }
  json << "\n  ]\n}\n";

  std::printf("\nExpected shape: Ours lowest at every I; paper reports "
              "21%%..55%% average reduction vs the combos (10..50 edges). "
              "Wall time per edge count is in bench_out/fig04.json.\n");
  return 0;
}
