// Fig. 4: normalized total cost vs number of edges (10..50).
// Paper's finding: Ours always lowest; average reductions of 21%..55%
// against the baseline combos.
#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "util/table.h"

int main(int argc, char** argv) {
  auto telemetry = cea::bench::TelemetrySession::from_args(argc, argv);

  using namespace cea;
  const std::size_t runs = bench::num_runs();
  const std::vector<std::size_t> edge_counts = {10, 20, 30, 40, 50};

  std::printf("Fig. 4 — total cost vs number of edges (%zu-run avg), "
              "normalized by the worst algorithm at each size\n\n",
              runs);

  auto combos = bench::figure_combos();
  std::vector<std::string> header = {"algorithm"};
  for (auto e : edge_counts) header.push_back("I=" + std::to_string(e));
  header.push_back("avg red. vs Ours");
  Table table(header);
  auto csv = bench::make_csv("fig04");
  {
    std::vector<std::string> csv_header = {"algorithm"};
    for (auto e : edge_counts) csv_header.push_back(std::to_string(e));
    csv_header.push_back("avg_reduction_pct");
    csv.write_row(csv_header);
  }

  // results[combo][edge-size], normalized by the worst algorithm at each
  // system size (Offline is included unnormalized first, then scaled).
  std::vector<std::vector<double>> totals(combos.size() + 1);
  for (std::size_t ei = 0; ei < edge_counts.size(); ++ei) {
    sim::SimConfig config;
    config.num_edges = edge_counts[ei];
    // Prorate the cap and the per-slot liquidity with the fleet size so
    // per-edge stringency stays constant across the sweep (at the paper's
    // 10-edge default this is exactly the paper's R = 500 and the default
    // liquidity). See EXPERIMENTS.md.
    config.carbon_cap = 50.0 * static_cast<double>(edge_counts[ei]);
    config.max_trade_per_slot = 2.5 * static_cast<double>(edge_counts[ei]);
    config.seed = 42;
    const auto env = sim::Environment::make_parametric(config);
    std::vector<double> raw(combos.size() + 1);
    for (std::size_t c = 0; c < combos.size(); ++c) {
      raw[c] = sim::run_combo_averaged_parallel(env, combos[c], runs, 7).settled_total_cost();
    }
    raw[combos.size()] = sim::run_offline_averaged(env, runs, 7).settled_total_cost();
    const double norm = *std::max_element(raw.begin(), raw.end());
    for (std::size_t c = 0; c < raw.size(); ++c)
      totals[c].push_back(raw[c] / norm);
  }

  const auto& ours = totals[0];
  for (std::size_t c = 0; c < combos.size(); ++c) {
    double reduction = 0.0;
    for (std::size_t ei = 0; ei < edge_counts.size(); ++ei)
      reduction += 1.0 - ours[ei] / totals[c][ei];
    reduction /= static_cast<double>(edge_counts.size());
    auto row = totals[c];
    row.push_back(reduction * 100.0);
    table.add_row(combos[c].name, row, 3);
    csv.write_row(combos[c].name, row);
  }
  table.add_row("Offline", totals[combos.size()], 3);
  csv.write_row("Offline", totals[combos.size()]);
  table.print();
  std::printf("\nExpected shape: Ours lowest at every I; paper reports "
              "21%%..55%% average reduction vs the combos.\n");
  return 0;
}
