// Fig. 5: total cost vs the weight on switching cost.
// Paper's finding: other algorithms' cost climbs steeply with the weight;
// Ours stays almost flat (blocks lengthen, switches drop); Greedy is the
// runner-up because it never switches after the first download.
#include <cstdio>

#include "bench_common.h"
#include "util/table.h"

int main(int argc, char** argv) {
  auto telemetry = cea::bench::TelemetrySession::from_args(argc, argv);

  using namespace cea;
  const std::size_t runs = bench::num_runs();
  const std::vector<double> weights = {0.5, 1.0, 2.0, 4.0, 8.0};

  std::printf("Fig. 5 — total cost vs switching-cost weight (%zu-run avg)\n\n",
              runs);

  auto combos = bench::figure_combos();
  std::vector<std::string> header = {"algorithm"};
  for (double w : weights) header.push_back("w=" + fmt(w, 1));
  Table table(header);
  Table switch_table({"algorithm", "switches w=0.5", "switches w=8"});
  auto csv = bench::make_csv("fig05");
  {
    std::vector<std::string> csv_header = {"algorithm"};
    for (double w : weights) csv_header.push_back(fmt(w, 1));
    csv.write_row(csv_header);
  }

  std::vector<std::vector<double>> totals(combos.size() + 1);
  std::vector<std::vector<double>> switches(combos.size());
  for (double w : weights) {
    sim::SimConfig config;
    config.num_edges = 10;
    config.switching_weight = w;
    config.seed = 42;
    const auto env = sim::Environment::make_parametric(config);
    for (std::size_t c = 0; c < combos.size(); ++c) {
      const auto result = sim::run_combo_averaged_parallel(env, combos[c], runs, 7);
      totals[c].push_back(result.settled_total_cost());
      switches[c].push_back(static_cast<double>(result.total_switches));
    }
    totals[combos.size()].push_back(
        sim::run_offline_averaged(env, runs, 7).settled_total_cost());
  }

  for (std::size_t c = 0; c < combos.size(); ++c) {
    table.add_row(combos[c].name, totals[c], 1);
    csv.write_row(combos[c].name, totals[c]);
    switch_table.add_row(combos[c].name,
                         {switches[c].front(), switches[c].back()}, 0);
  }
  table.add_row("Offline", totals[combos.size()], 1);
  csv.write_row("Offline", totals[combos.size()]);
  table.print();
  std::printf("\nSwitch counts (adaptivity of the block schedule):\n");
  switch_table.print();

  const double ours_growth = totals[0].back() / totals[0].front();
  std::printf("\nOurs cost growth across the sweep: %.2fx (expected ~flat); "
              "Random-selection combos grow fastest.\n",
              ours_growth);
  return 0;
}
