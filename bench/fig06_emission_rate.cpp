// Fig. 6: total cost vs the carbon emission rate rho.
// Paper's finding: costs rise with rho (more allowances to buy); Ours stays
// the cheapest online method and can even undercut Offline at high rho,
// because Offline satisfies neutrality exactly while Ours tolerates
// instantaneous violations and repairs them in the long run.
#include <cstdio>

#include "bench_common.h"
#include "util/table.h"

int main(int argc, char** argv) {
  auto telemetry = cea::bench::TelemetrySession::from_args(argc, argv);

  using namespace cea;
  const std::size_t runs = bench::num_runs();
  const std::vector<double> rates = {250.0, 500.0, 750.0, 1000.0, 1250.0};

  std::printf("Fig. 6 — total cost vs carbon emission rate (%zu-run avg)\n\n",
              runs);

  auto combos = bench::figure_combos();
  std::vector<std::string> header = {"algorithm"};
  for (double r : rates) header.push_back("rho=" + fmt(r, 0));
  Table table(header);
  auto csv = bench::make_csv("fig06");
  {
    std::vector<std::string> csv_header = {"algorithm"};
    for (double r : rates) csv_header.push_back(fmt(r, 0));
    csv.write_row(csv_header);
  }

  std::vector<std::vector<double>> totals(combos.size() + 1);
  for (double rate : rates) {
    sim::SimConfig config;
    config.num_edges = 10;
    config.emission_rate = rate;
    config.seed = 42;
    const auto env = sim::Environment::make_parametric(config);
    for (std::size_t c = 0; c < combos.size(); ++c) {
      totals[c].push_back(
          sim::run_combo_averaged_parallel(env, combos[c], runs, 7).settled_total_cost());
    }
    totals[combos.size()].push_back(
        sim::run_offline_averaged(env, runs, 7).settled_total_cost());
  }

  for (std::size_t c = 0; c < combos.size(); ++c) {
    table.add_row(combos[c].name, totals[c], 1);
    csv.write_row(combos[c].name, totals[c]);
  }
  table.add_row("Offline", totals[combos.size()], 1);
  csv.write_row("Offline", totals[combos.size()]);
  table.print();
  std::printf("\nExpected shape: every curve increases in rho; Ours lowest "
              "among online methods across the sweep.\n");
  return 0;
}
