// Fig. 7: total cost vs the initial carbon cap R.
// Paper's finding: Ours, Offline, and UCB-LY get cheaper as the cap grows
// (fewer allowances to buy); UCB-Ran and UCB-TH stay flat because their
// trading ignores the cap entirely.
#include <cstdio>

#include "bench_common.h"
#include "util/table.h"

int main(int argc, char** argv) {
  auto telemetry = cea::bench::TelemetrySession::from_args(argc, argv);

  using namespace cea;
  const std::size_t runs = bench::num_runs();
  const std::vector<double> caps = {250.0, 500.0, 750.0, 1000.0};

  std::printf("Fig. 7 — total cost vs initial carbon cap (%zu-run avg)\n\n",
              runs);

  // The paper highlights the UCB-* family here; keep Ours + UCB-* + Offline.
  std::vector<sim::AlgorithmCombo> combos;
  combos.push_back(sim::ours_combo());
  for (auto& combo : sim::baseline_combos()) {
    if (combo.name.rfind("UCB-", 0) == 0) combos.push_back(std::move(combo));
  }

  // The paper plots objective (1) itself, under which cap-oblivious traders
  // are flat in R; the violation column shows what that objective hides
  // (see DESIGN.md on settlement accounting).
  std::vector<std::string> header = {"algorithm"};
  for (double cap : caps) header.push_back("R=" + fmt(cap, 0));
  header.push_back("slope");
  header.push_back("viol@R=500");
  Table table(header);
  auto csv = bench::make_csv("fig07");
  {
    std::vector<std::string> csv_header = {"algorithm"};
    for (double cap : caps) csv_header.push_back(fmt(cap, 0));
    csv.write_row(csv_header);
  }

  std::vector<std::vector<double>> totals(combos.size() + 1);
  std::vector<double> violations(combos.size() + 1, 0.0);
  for (double cap : caps) {
    sim::SimConfig config;
    config.num_edges = 10;
    config.carbon_cap = cap;
    config.seed = 42;
    const auto env = sim::Environment::make_parametric(config);
    for (std::size_t c = 0; c < combos.size(); ++c) {
      const auto result = sim::run_combo_averaged_parallel(env, combos[c], runs, 7);
      totals[c].push_back(result.total_cost());
      if (cap == 500.0) violations[c] = result.violation();
    }
    const auto offline = sim::run_offline_averaged(env, runs, 7);
    totals[combos.size()].push_back(offline.total_cost());
    if (cap == 500.0) violations[combos.size()] = offline.violation();
  }

  auto emit = [&](const std::string& name, std::vector<double> row,
                  double violation) {
    const double slope = (row.back() - row.front()) /
                         (caps.back() - caps.front());
    csv.write_row(name, row);
    row.push_back(slope * 1000.0);  // per 1000 cap units, readable scale
    row.push_back(violation);
    table.add_row(name, row, 2);
  };
  for (std::size_t c = 0; c < combos.size(); ++c)
    emit(combos[c].name, totals[c], violations[c]);
  emit("Offline", totals[combos.size()], violations[combos.size()]);
  table.print();
  std::printf("\nExpected shape: negative slope for Ours, UCB-LY, Offline "
              "(cap-aware trading); near-zero slope for UCB-Ran/UCB-TH, "
              "whose unchanged cost comes at the price of the violation "
              "shown in the last column.\n");
  return 0;
}
