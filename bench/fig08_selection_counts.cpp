// Fig. 8: number of selections per model vs each model's expected loss on
// one (randomly chosen) edge.
// Paper's finding: Ours selects a model more often the lower its expected
// loss; Offline sits on the single loss-optimal model; Greedy sits on the
// lowest-energy model regardless of loss.
#include <cstdio>

#include "bandit/greedy_policy.h"
#include "bench_common.h"
#include "core/blocked_tsallis_inf.h"
#include "core/carbon_trader.h"
#include "trading/random_trader.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  auto telemetry = cea::bench::TelemetrySession::from_args(argc, argv);

  using namespace cea;
  const std::size_t runs = bench::num_runs();

  sim::SimConfig config;
  config.num_edges = 10;
  config.horizon = 480;  // longer horizon so convergence is visible
  config.workload.num_slots = 480;
  config.carbon_cap = 1500.0;
  config.seed = 42;
  const auto env = sim::Environment::make_parametric(config);
  const std::size_t edge = 3;  // the "one random edge" of the figure

  std::printf("Fig. 8 — selections per model vs expected loss (edge %zu, "
              "T=%zu, %zu-run avg)\n\n",
              edge, config.horizon, runs);

  const auto ours = bench::averaged(env, sim::ours_combo(), runs, 7);
  const sim::AlgorithmCombo greedy{"Greedy-Ran",
                                   bandit::GreedyEnergyPolicy::factory(),
                                   trading::RandomTrader::factory()};
  const auto greedy_run = bench::averaged(env, greedy, runs, 7);
  const auto offline = sim::run_offline_averaged(env, runs, 7);

  Table table({"model", "E[l]+v (edge)", "energy/sample", "Ours", "Greedy",
               "Offline"});
  auto csv = bench::make_csv("fig08");
  csv.write_row({"model", "expected_loss", "energy", "ours", "greedy",
                 "offline"});
  std::vector<double> losses, ours_counts;
  // average_runs already averages selection counts per run, so the counts
  // are on a single run's scale whatever CEA_BENCH_RUNS is.
  for (std::size_t n = 0; n < env.num_models(); ++n) {
    const double expected = env.models()[n].profile.mean_loss() +
                            env.computation_cost(edge, n);
    const double ours_n =
        static_cast<double>(ours.selection_counts[edge][n]);
    const double greedy_n =
        static_cast<double>(greedy_run.selection_counts[edge][n]);
    const double offline_n =
        static_cast<double>(offline.selection_counts[edge][n]);
    table.add_row(env.models()[n].name,
                  {expected, env.models()[n].energy_per_sample * 1e8, ours_n,
                   greedy_n, offline_n},
                  2);
    csv.write_row(env.models()[n].name, {expected, ours_n, greedy_n,
                                         offline_n});
    losses.push_back(expected);
    ours_counts.push_back(ours_n);
  }
  table.print();
  std::printf("\nCorrelation(expected loss, Ours selections) = %.2f "
              "(expected strongly negative)\n",
              pearson(losses, ours_counts));
  return 0;
}
