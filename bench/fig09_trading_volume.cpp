// Fig. 9: carbon-allowance net purchase vs inference workload over time,
// plus the normalized unit cost of carbon purchase.
// Paper's finding: Ours' net purchase tracks the workload (emissions);
// UCB-Ran and UCB-TH trade independently of workload; Ours achieves the
// lowest unit purchase cost.
#include <cstdio>

#include "bench_common.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  auto telemetry = cea::bench::TelemetrySession::from_args(argc, argv);

  using namespace cea;
  const std::size_t runs = bench::num_runs();

  sim::SimConfig config;
  config.num_edges = 10;
  config.seed = 42;
  const auto env = sim::Environment::make_parametric(config);

  std::printf("Fig. 9 — net allowance purchase vs workload (%zu-run avg)\n\n",
              runs);

  std::vector<sim::AlgorithmCombo> combos;
  combos.push_back(sim::ours_combo());
  for (auto& combo : sim::baseline_combos()) {
    if (combo.name == "UCB-Ran" || combo.name == "UCB-TH")
      combos.push_back(std::move(combo));
  }

  Table table({"algorithm", "corr(net buy, workload)", "net bought",
               "unit purchase cost"});
  auto csv = bench::make_csv("fig09");
  csv.write_row({"algorithm", "corr_net_workload", "net_bought",
                 "unit_cost"});
  for (const auto& combo : combos) {
    const auto result = bench::averaged(env, combo, runs, 7);
    std::vector<double> net(result.horizon());
    for (std::size_t t = 0; t < result.horizon(); ++t)
      net[t] = result.buys[t] - result.sells[t];
    const double corr = pearson(net, result.workload);
    table.add_row(combo.name,
                  {corr, result.total_buys() - result.total_sells(),
                   result.unit_purchase_cost()},
                  3);
    csv.write_row(combo.name,
                  {corr, result.total_buys() - result.total_sells(),
                   result.unit_purchase_cost()});
  }
  table.print();
  std::printf("\nExpected shape: Ours has clearly positive workload "
              "correlation and the lowest unit purchase cost; UCB-Ran/TH "
              "correlate with prices, not workload.\n");
  return 0;
}
