// Fig. 10: regret for P0 as the horizon T grows.
// Paper's finding: Ours has the lowest regret, growing sub-linearly in T.
// Regret is measured against the theorem comparator (best fixed models +
// per-slot optimal trading; see sim::comparator_cost for why the
// arbitrage-capable Offline LP is not the regret baseline).
#include <cstdio>

#include "bench_common.h"
#include "util/table.h"

int main(int argc, char** argv) {
  auto telemetry = cea::bench::TelemetrySession::from_args(argc, argv);

  using namespace cea;
  const std::size_t runs = bench::num_runs();
  const std::vector<std::size_t> horizons = {40, 80, 160, 320, 640};

  std::printf("Fig. 10 — P0 regret vs horizon (%zu-run avg)\n\n", runs);

  std::vector<sim::AlgorithmCombo> combos;
  combos.push_back(sim::ours_combo());
  for (auto& combo : sim::baseline_combos()) {
    if (combo.name == "UCB-LY" || combo.name == "TINF-LY" ||
        combo.name == "Ran-LY" || combo.name == "Greedy-LY")
      combos.push_back(std::move(combo));
  }

  std::vector<std::string> header = {"algorithm"};
  for (auto t : horizons) header.push_back("T=" + std::to_string(t));
  header.push_back("regret/T @640");
  Table table(header);
  auto csv = bench::make_csv("fig10");
  {
    std::vector<std::string> csv_header = {"algorithm"};
    for (auto t : horizons) csv_header.push_back(std::to_string(t));
    csv.write_row(csv_header);
  }

  std::vector<std::vector<double>> regrets(combos.size());
  for (std::size_t hi = 0; hi < horizons.size(); ++hi) {
    sim::SimConfig config;
    config.num_edges = 10;
    config.horizon = horizons[hi];
    config.workload.num_slots = horizons[hi];
    // Prorate the cap so per-slot trading tension is horizon-independent.
    config.carbon_cap = 500.0 * static_cast<double>(horizons[hi]) / 160.0;
    config.seed = 42;
    const auto env = sim::Environment::make_parametric(config);
    for (std::size_t c = 0; c < combos.size(); ++c) {
      double regret = 0.0;
      for (std::size_t r = 0; r < runs; ++r) {
        const auto result = sim::run_combo(env, combos[c], 8 + r);
        regret += sim::p0_regret(env, result, 8 + r);
      }
      regrets[c].push_back(regret / static_cast<double>(runs));
    }
  }

  for (std::size_t c = 0; c < combos.size(); ++c) {
    auto row = regrets[c];
    csv.write_row(combos[c].name, row);
    row.push_back(regrets[c].back() /
                  static_cast<double>(horizons.back()));
    table.add_row(combos[c].name, row, 1);
  }
  table.print();

  const double growth =
      regrets[0].back() / std::max(regrets[0][2], 1.0);  // T=640 vs T=160
  std::printf("\nOurs regret growth T=160 -> T=640 (4x): %.2fx "
              "(sub-linear expected: < 4; T^{2/3} predicts ~2.5)\n",
              growth);
  return 0;
}
