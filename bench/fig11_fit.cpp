// Fig. 11: fit (cumulative carbon-neutrality violation) as the horizon T
// grows. Paper's finding: Ours' fit starts non-zero but decays toward zero;
// growth over T is sub-linear (Theorem 2: O(T^{2/3})).
#include <cstdio>

#include "bench_common.h"
#include "core/regret.h"
#include "util/table.h"

int main(int argc, char** argv) {
  auto telemetry = cea::bench::TelemetrySession::from_args(argc, argv);

  using namespace cea;
  const std::size_t runs = bench::num_runs();
  const std::vector<std::size_t> horizons = {40, 80, 160, 320, 640};

  std::printf("Fig. 11 — fit vs horizon (%zu-run avg)\n\n", runs);

  std::vector<sim::AlgorithmCombo> combos;
  combos.push_back(sim::ours_combo());
  for (auto& combo : sim::baseline_combos()) {
    if (combo.name == "UCB-LY" || combo.name == "UCB-TH" ||
        combo.name == "UCB-Ran")
      combos.push_back(std::move(combo));
  }

  std::vector<std::string> header = {"algorithm"};
  for (auto t : horizons) header.push_back("T=" + std::to_string(t));
  header.push_back("fit/T @640");
  Table table(header);
  auto csv = bench::make_csv("fig11");
  {
    std::vector<std::string> csv_header = {"algorithm"};
    for (auto t : horizons) csv_header.push_back(std::to_string(t));
    csv.write_row(csv_header);
  }

  for (const auto& combo : combos) {
    std::vector<double> fits;
    for (const std::size_t horizon : horizons) {
      sim::SimConfig config;
      config.num_edges = 10;
      config.horizon = horizon;
      config.workload.num_slots = horizon;
      config.carbon_cap = 500.0 * static_cast<double>(horizon) / 160.0;
      config.seed = 42;
      const auto env = sim::Environment::make_parametric(config);
      double fit_sum = 0.0;
      for (std::size_t r = 0; r < runs; ++r) {
        const auto result = sim::run_combo(env, combo, 8 + r);
        fit_sum += core::fit(result.emissions, result.buys, result.sells,
                             config.carbon_cap);
      }
      fits.push_back(fit_sum / static_cast<double>(runs));
    }
    auto row = fits;
    csv.write_row(combo.name, row);
    row.push_back(fits.back() / static_cast<double>(horizons.back()));
    table.add_row(combo.name, row, 2);
  }
  table.print();

  // Time-decay of the fit within one horizon (the figure's inset shape).
  sim::SimConfig config;
  config.num_edges = 10;
  config.seed = 42;
  const auto env = sim::Environment::make_parametric(config);
  const auto ours = bench::averaged(env, sim::ours_combo(), runs, 8);
  const auto series = core::fit_series(ours.emissions, ours.buys, ours.sells,
                                       config.carbon_cap);
  std::printf("\nOurs fit over time (T=160, prorated cap): ");
  for (std::size_t t = 19; t < series.size(); t += 20)
    std::printf("t=%zu:%.1f  ", t + 1, series[t]);
  std::printf("\nExpected shape: early transient, then decaying toward 0; "
              "fit/T vanishing with larger T.\n");
  return 0;
}
