// Fig. 13: inference accuracy per time slot on the CIFAR-10-like stream
// with the six-model CIFAR zoo (CNNs, LeNet-5s, MobileNets) trained from
// scratch. Same expected ordering as Fig. 12 at lower absolute accuracy
// (the CIFAR-like distribution is harder by construction).
#include <cstdio>
#include <cstdlib>

#include "bench_common.h"
#include "data/loss_profile.h"
#include "data/synthetic_dataset.h"
#include "nn/train.h"
#include "nn/zoo.h"
#include "util/table.h"

namespace {

std::size_t env_or(const char* name, std::size_t fallback) {
  if (const char* env = std::getenv(name)) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  auto telemetry = cea::bench::TelemetrySession::from_args(argc, argv);

  using namespace cea;
  const std::size_t nn_threads = bench::attach_compute_pool(argc, argv);
  const std::size_t train_samples = env_or("CEA_BENCH_TRAIN_SAMPLES", 300);
  const std::size_t epochs = env_or("CEA_BENCH_TRAIN_EPOCHS", 1);

  std::printf("Fig. 13 — per-slot accuracy on the CIFAR-10-like stream\n");
  std::printf("Training 6-model zoo (%zu samples, %zu epochs, %zu nn "
              "threads)...\n",
              train_samples, epochs, nn_threads);

  const data::SyntheticDistribution dist(data::cifar_like_spec());
  Rng data_rng(1);
  const data::Dataset train_set = dist.sample(train_samples, data_rng);
  const data::Dataset test_set = dist.sample(300, data_rng);

  Rng model_rng(2);
  auto zoo = nn::make_cifar_zoo(model_rng);
  nn::TrainConfig train_config;
  train_config.epochs = epochs;
  train_config.batch_size = 32;
  train_config.learning_rate = 0.03f;
  std::vector<data::LossProfile> profiles;
  for (auto& model : zoo) {
    nn::train_sgd(model, train_set.samples, train_set.labels, train_config,
                  model_rng);
    profiles.push_back(data::profile_model(model, test_set));
    std::printf("  %-20s size %5.2f MB  mean loss %.3f  accuracy %.3f\n",
                model.name().c_str(), model.size_mb(),
                profiles.back().mean_loss(), profiles.back().accuracy());
  }

  sim::SimConfig config;
  config.num_edges = 10;
  config.seed = 43;
  const auto env = sim::Environment::from_profiles(config, std::move(profiles));

  std::vector<sim::AlgorithmCombo> combos;
  combos.push_back(sim::ours_combo());
  for (auto& combo : sim::baseline_combos()) {
    if (combo.name == "Greedy-Ran" || combo.name == "UCB-Ran" ||
        combo.name == "TINF-Ran")
      combos.push_back(std::move(combo));
  }

  const std::size_t runs = bench::num_runs();
  const std::vector<std::size_t> checkpoints = {19, 59, 99, 139, 159};
  std::vector<std::string> header = {"algorithm"};
  for (auto t : checkpoints) header.push_back("t=" + std::to_string(t + 1));
  header.push_back("mean");
  Table table(header);
  auto csv = bench::make_csv("fig13");
  {
    std::vector<std::string> csv_header = {"algorithm"};
    for (auto t : checkpoints) csv_header.push_back(std::to_string(t + 1));
    csv_header.push_back("mean");
    csv.write_row(csv_header);
  }

  auto emit = [&](const sim::RunResult& result) {
    std::vector<double> row;
    for (auto t : checkpoints) row.push_back(result.accuracy[t]);
    row.push_back(result.mean_accuracy());
    table.add_row(result.algorithm, row, 3);
    csv.write_row(result.algorithm, row);
  };
  for (const auto& combo : combos)
    emit(sim::run_combo_averaged_parallel(env, combo, runs, 7));
  emit(sim::run_offline_averaged(env, runs, 7));
  table.print();
  std::printf("\nExpected shape: same ordering as Fig. 12 at lower absolute "
              "accuracy.\n");
  return 0;
}
