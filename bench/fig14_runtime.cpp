// Fig. 14: execution time per time slot of Algorithm 1 (all edges) and
// Algorithm 2 as the number of edges grows (10..50).
// Paper's finding: both finish far within a 15-minute slot; Algorithm 2 is
// orders of magnitude cheaper than Algorithm 1.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench_common.h"
#include "core/blocked_tsallis_inf.h"
#include "core/carbon_trader.h"
#include "opt/simplex.h"
#include "opt/tsallis_step.h"
#include "trading/offline_lp_trader.h"
#include "util/rng.h"

namespace {

using namespace cea;

/// One full Algorithm-1 slot across I edges: select + feedback per edge.
void BM_Algorithm1_Slot(benchmark::State& state) {
  const auto num_edges = static_cast<std::size_t>(state.range(0));
  std::vector<std::unique_ptr<core::BlockedTsallisInfPolicy>> policies;
  for (std::size_t i = 0; i < num_edges; ++i) {
    bandit::PolicyContext context;
    context.num_models = 6;
    context.switching_cost = 1.5;
    context.seed = 100 + i;
    policies.push_back(
        std::make_unique<core::BlockedTsallisInfPolicy>(context));
  }
  Rng noise(1);
  std::size_t t = 0;
  for (auto _ : state) {
    for (auto& policy : policies) {
      const std::size_t arm = policy->select(t);
      policy->feedback(t, arm, 0.5 + noise.uniform(-0.1, 0.1));
    }
    benchmark::DoNotOptimize(t);
    ++t;
  }
  state.SetLabel(std::to_string(num_edges) + " edges");
}
BENCHMARK(BM_Algorithm1_Slot)->Arg(10)->Arg(20)->Arg(30)->Arg(40)->Arg(50);

/// One Algorithm-2 slot: decide + feedback.
void BM_Algorithm2_Slot(benchmark::State& state) {
  trading::TraderContext context;
  context.horizon = 160;
  context.carbon_cap = 500.0;
  context.max_trade_per_slot = 20.0;
  core::OnlineCarbonTrader trader(context, {});
  const trading::TradeObservation obs{8.0, 7.2};
  std::size_t t = 0;
  for (auto _ : state) {
    const auto decision = trader.decide(t, obs);
    trader.feedback(t, 4.0, obs, decision);
    benchmark::DoNotOptimize(decision);
    ++t;
  }
}
BENCHMARK(BM_Algorithm2_Slot);

/// The OMD inner solve of Algorithm 1 (line 3) as N grows.
void BM_TsallisStep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  std::vector<double> losses(n);
  for (auto& l : losses) l = rng.uniform(0.0, 50.0);
  for (auto _ : state) {
    auto p = tsallis_probabilities(losses, 0.3);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_TsallisStep)->Arg(6)->Arg(16)->Arg(64);

/// The Offline trading LP (Gurobi substitute) over a full horizon.
void BM_OfflineTradingLp(benchmark::State& state) {
  const auto horizon = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  std::vector<double> buy(horizon), sell(horizon), emissions(horizon);
  for (std::size_t t = 0; t < horizon; ++t) {
    buy[t] = rng.uniform(5.9, 10.9);
    sell[t] = 0.9 * buy[t];
    emissions[t] = rng.uniform(2.0, 6.0);
  }
  trading::TraderContext context;
  context.horizon = horizon;
  context.carbon_cap = 2.0 * static_cast<double>(horizon);
  context.max_trade_per_slot = 20.0;
  for (auto _ : state) {
    auto plan = trading::solve_offline_trading(context, buy, sell, emissions);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_OfflineTradingLp)->Arg(40)->Arg(80)->Arg(160)
    ->Unit(benchmark::kMillisecond);

}  // namespace

// Explicit main (instead of benchmark::benchmark_main) so the telemetry
// flag can be stripped before google-benchmark parses the argument list.
int main(int argc, char** argv) {
  auto telemetry = cea::bench::TelemetrySession::from_args(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
