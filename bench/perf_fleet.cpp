// Fleet-scale engine bench (not a paper figure): the arena-backed SoA slot
// engine at 100 / 1000 / 10000 edges x 160 slots, serial vs pooled
// edge-sharded execution, on the "Ours" combo (SoA BlockedTsallisINF fleet
// + online carbon trader).
//
// Three properties are *gated*, not just measured (nonzero exit on
// violation, so the bench_smoke ctest label and CI catch regressions):
//
//   1. bit-identity — the pooled run's RunResult must equal the serial
//      run's exactly (every per-slot series, every selection count), for
//      any pool width and shard grain;
//   2. zero arena overflows — after FleetState's up-front reservation the
//      slot path must not touch the heap (RunResult::arena_overflows == 0);
//   3. workload purity — the keyed heavy-tail / flash-crowd generators
//      must produce identical traces pooled and serial.
//
// Reported: slots/sec per mode, pooled-vs-serial speedup, and generation
// throughput of the keyed workload kinds at 10k edges. The speedup target
// (>= 3x at 10k edges) assumes multi-core hardware; the JSON records the
// thread count so single-core CI runs are honestly labeled rather than
// failed. Results go to bench_out/perf_fleet.json. CEA_BENCH_SMOKE=1
// shrinks the sweep to 100 edges x 1 repetition.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "data/workload.h"
#include "sim/experiment.h"
#include "sim/simulator.h"
#include "util/thread_pool.h"

namespace {

using namespace cea;

bool smoke_mode() { return std::getenv("CEA_BENCH_SMOKE") != nullptr; }

double now_sec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// fig03's scenario prorated to the fleet size (cap and liquidity scale
/// with edges, like fig04), loss_draw_cap at the default 256.
sim::Environment environment_for(std::size_t edges) {
  sim::SimConfig config;
  config.num_edges = edges;
  config.carbon_cap = 50.0 * static_cast<double>(edges);
  config.max_trade_per_slot = 2.5 * static_cast<double>(edges);
  config.seed = 42;
  return sim::Environment::make_parametric(config);
}

bool identical_results(const sim::RunResult& a, const sim::RunResult& b) {
  return a.inference_cost == b.inference_cost &&
         a.switching_cost == b.switching_cost &&
         a.trading_cost == b.trading_cost && a.emissions == b.emissions &&
         a.buys == b.buys && a.sells == b.sells &&
         a.accuracy == b.accuracy && a.workload == b.workload &&
         a.selection_counts == b.selection_counts &&
         a.total_switches == b.total_switches;
}

struct EngineRow {
  std::size_t edges = 0;
  double serial_slots_per_sec = 0.0;
  double pooled_slots_per_sec = 0.0;
  double speedup = 0.0;
  std::size_t arena_overflows = 0;
  bool identical = false;
};

struct WorkloadRow {
  std::string kind;
  double cells_per_sec_serial = 0.0;
  double cells_per_sec_pooled = 0.0;
  bool identical = false;
};

}  // namespace

int main(int argc, char** argv) {
  const double bench_start = now_sec();
  auto telemetry = cea::bench::TelemetrySession::from_args(argc, argv);

  const bool smoke = smoke_mode();
  const std::vector<std::size_t> edge_counts =
      smoke ? std::vector<std::size_t>{100}
            : std::vector<std::size_t>{100, 1000, 10000};
  const std::size_t reps = smoke ? 1 : 3;
  util::ThreadPool& pool = util::ThreadPool::global();
  const std::size_t threads = bench::bench_threads();
  const sim::AlgorithmCombo combo = sim::ours_combo();

  bool gate_failed = false;
  std::vector<EngineRow> rows;
  std::printf("perf_fleet — SoA slot engine, serial vs pooled (%zu threads)\n\n",
              threads);
  for (const std::size_t edges : edge_counts) {
    const sim::Environment env = environment_for(edges);
    const double slots = static_cast<double>(env.horizon());

    EngineRow row;
    row.edges = edges;

    // Serial and pooled runs share the seed, so bit-identity is checkable
    // per repetition; best-of-reps wall time is reported.
    sim::RunResult serial_result, pooled_result;
    double serial_best = 1e300, pooled_best = 1e300;
    bool row_identical = true;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      const std::uint64_t seed = 1 + rep;
      double t0 = now_sec();
      serial_result = sim::run_combo(env, combo, seed);
      serial_best = std::min(serial_best, now_sec() - t0);

      t0 = now_sec();
      pooled_result = sim::run_combo_pooled(env, combo, seed, &pool);
      pooled_best = std::min(pooled_best, now_sec() - t0);

      if (!identical_results(serial_result, pooled_result)) {
        std::fprintf(stderr,
                     "FAIL: pooled run differs from serial at %zu edges "
                     "(seed %llu)\n",
                     edges, static_cast<unsigned long long>(seed));
        row_identical = false;
        gate_failed = true;
      }
      row.arena_overflows +=
          serial_result.arena_overflows + pooled_result.arena_overflows;
    }
    row.identical = row_identical;
    row.serial_slots_per_sec = slots / serial_best;
    row.pooled_slots_per_sec = slots / pooled_best;
    row.speedup = serial_best / pooled_best;
    if (row.arena_overflows != 0) {
      std::fprintf(stderr,
                   "FAIL: %zu arena overflows at %zu edges — the slot path "
                   "allocated\n",
                   row.arena_overflows, edges);
      gate_failed = true;
    }
    std::printf("  %6zu edges: serial %9.0f slots/s, pooled %9.0f slots/s "
                "(%.2fx), overflows %zu, identical %s\n",
                edges, row.serial_slots_per_sec, row.pooled_slots_per_sec,
                row.speedup, row.arena_overflows,
                row.identical ? "yes" : "NO");
    rows.push_back(row);
  }

  // Keyed workload generators at fleet scale: serial vs pooled generation
  // must agree bitwise; throughput in cells (edge-slot pairs) per second.
  std::vector<WorkloadRow> workload_rows;
  {
    const std::size_t edges = smoke ? 100 : 10000;
    const std::size_t slots = 160;
    for (const auto& [kind, label] :
         {std::pair{data::WorkloadKind::kHeavyTail, "heavy_tail"},
          std::pair{data::WorkloadKind::kFlashCrowd, "flash_crowd"}}) {
      data::WorkloadConfig config;
      config.num_slots = slots;
      config.mean_samples = 1e6;  // millions of samples per slot
      config.kind = kind;
      WorkloadRow row;
      row.kind = label;
      const double cells = static_cast<double>(edges * slots);

      Rng rng_serial(42), rng_pooled(42);
      double t0 = now_sec();
      const auto serial = data::generate_workload(edges, config, rng_serial);
      row.cells_per_sec_serial = cells / (now_sec() - t0);
      t0 = now_sec();
      const auto pooled =
          data::generate_workload_pooled(edges, config, rng_pooled, &pool);
      row.cells_per_sec_pooled = cells / (now_sec() - t0);
      row.identical = serial == pooled;
      if (!row.identical) {
        std::fprintf(stderr, "FAIL: pooled %s generation differs\n", label);
        gate_failed = true;
      }
      std::printf("  workload %-11s %10.0f cells/s serial, %10.0f pooled, "
                  "identical %s\n",
                  label, row.cells_per_sec_serial, row.cells_per_sec_pooled,
                  row.identical ? "yes" : "NO");
      workload_rows.push_back(row);
    }
  }

  const double wall = now_sec() - bench_start;
  std::filesystem::create_directories("bench_out");
  {
    std::ofstream json("bench_out/perf_fleet.json");
    json << "{\n  \"meta\": " << bench::meta_json_object(wall)
         << ",\n  \"speedup_target_at_10k\": 3.0"
         << ",\n  \"engine\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const auto& row = rows[i];
      if (i > 0) json << ",\n";
      json << "    {\"edges\": " << row.edges
           << ", \"serial_slots_per_sec\": " << row.serial_slots_per_sec
           << ", \"pooled_slots_per_sec\": " << row.pooled_slots_per_sec
           << ", \"speedup\": " << row.speedup
           << ", \"arena_overflows\": " << row.arena_overflows
           << ", \"identical\": " << (row.identical ? "true" : "false")
           << "}";
    }
    json << "\n  ],\n  \"workload\": [\n";
    for (std::size_t i = 0; i < workload_rows.size(); ++i) {
      const auto& row = workload_rows[i];
      if (i > 0) json << ",\n";
      json << "    {\"kind\": \"" << row.kind
           << "\", \"cells_per_sec_serial\": " << row.cells_per_sec_serial
           << ", \"cells_per_sec_pooled\": " << row.cells_per_sec_pooled
           << ", \"identical\": " << (row.identical ? "true" : "false")
           << "}";
    }
    json << "\n  ]\n}\n";
  }
  std::printf("\nwrote bench_out/perf_fleet.json (%.1fs). Speedup target "
              ">= 3x at 10k edges on multi-core hardware; this run used "
              "%zu thread(s).\n",
              wall, threads);
  return gate_failed ? 1 : 0;
}
