// Perf bench for the nn GEMM kernel layer (not a paper figure).
//
// Two families of measurements:
//
//   gemm/*   — raw C += op(A)·op(B) throughput (GFLOP/s) on the per-layer
//              shapes the zoo models actually produce (conv im2col
//              products, dense products), for the scalar reference
//              micro-kernel, each SIMD variant the machine supports, and
//              the active variant on the shared thread pool;
//   gemm_i8/* — the quantized inference path (gemm::multiply_i8: fused
//              quantize -> u8·s8 dot -> dequantize+bias) on the same
//              shapes, for scalar / AVX2 maddubs / AVX-512 VNNI / pooled.
//              Weight packing runs once outside the timing loop (panels
//              are cached per layer in deployment); rates count the same
//              2mnk ops as the fp32 rows so the speedup reads directly.
//              Before benchmarking, every int8 mode is cross-checked
//              bitwise against the scalar serial kernel on every shape —
//              a mismatch fails the binary with exit 1 (CI runs this in
//              smoke mode as a cheap determinism gate);
//   train/*  — one fig12-style training epoch of mnist-cnn-16x32 on a
//              synthetic batch stream, in three modes:
//                seed_reference — the original per-element layer loops,
//                                 preserved behind ComputeBackend::kReference;
//                gemm_serial    — tiled SIMD GEMM path, single thread;
//                gemm_parallel  — the same plus the global thread pool.
//
// Targets (ISSUE/ROADMAP): gemm_serial >= 4x seed_reference single-thread;
// gemm_parallel >= 8x seed_reference when >= 4 cores are available. The
// summary and every raw measurement are mirrored to bench_out/perf_nn.json
// so the perf trajectory can be tracked across PRs. CEA_BENCH_SMOKE=1 runs
// every benchmark for exactly one iteration (the bench_smoke ctest label).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "nn/gemm.h"
#include "nn/tensor.h"
#include "nn/train.h"
#include "nn/zoo.h"
#include "util/cpu.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

using namespace cea;
using nn::gemm::Op;
using nn::gemm::Variant;

bool smoke_mode() { return std::getenv("CEA_BENCH_SMOKE") != nullptr; }

// ------------------------------------------------------------- gemm/*

struct GemmShape {
  const char* name;  // which zoo layer produces it
  std::size_t m, n, k;
};

// m x n x k of the layer's forward product (conv: weights x im2col
// columns; dense: batch x out x in with batch 32).
const GemmShape kShapes[] = {
    {"mnist_cnn32_conv1", 32, 784, 9},     // 3x3 conv, 1->32ch, 28x28
    {"mnist_cnn32_conv2", 64, 196, 288},   // 3x3 conv, 32->64ch, 14x14
    {"cifar_cnn64_conv2", 128, 256, 576},  // 3x3 conv, 64->128ch, 16x16
    {"mnist_mlp256_fc1", 32, 256, 784},    // dense 784->256, batch 32
    {"lenet5_fc1", 32, 120, 400},          // dense 400->120, batch 32
};

struct GemmMode {
  const char* name;
  Variant variant;
  bool pooled;
};

std::vector<GemmMode> available_modes() {
  std::vector<GemmMode> modes = {{"scalar", Variant::kScalar, false}};
  if (util::have_avx2()) modes.push_back({"avx2", Variant::kAvx2, false});
  if (util::have_avx512())
    modes.push_back({"avx512", Variant::kAvx512, false});
  modes.push_back({"pooled", nn::gemm::active_variant(), true});
  return modes;
}

void run_gemm_benchmark(benchmark::State& state, const GemmShape& shape,
                        const GemmMode& mode) {
  Rng rng(42);
  std::vector<float> a(shape.m * shape.k), b(shape.k * shape.n),
      c(shape.m * shape.n, 0.0f);
  for (auto& v : a) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  for (auto& v : b) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  util::ThreadPool* pool = mode.pooled ? &util::ThreadPool::global() : nullptr;

  for (auto _ : state) {
    nn::gemm::multiply_variant(mode.variant, a.data(), shape.k, Op::kNone,
                               b.data(), shape.n, Op::kNone, c.data(),
                               shape.n, shape.m, shape.n, shape.k, pool);
    benchmark::DoNotOptimize(c.data());
    benchmark::ClobberMemory();
  }
  const double flops = 2.0 * static_cast<double>(shape.m) *
                       static_cast<double>(shape.n) *
                       static_cast<double>(shape.k) *
                       static_cast<double>(state.iterations());
  state.counters["gflops"] =
      benchmark::Counter(flops * 1e-9, benchmark::Counter::kIsRate);
}

// ---------------------------------------------------------- gemm_i8/*

// Int8 kernel variant names differ from fp32: the AVX-512 kernel needs
// VNNI, and plain-AVX-512 machines fall back to AVX2.
std::vector<GemmMode> available_i8_modes() {
  std::vector<GemmMode> modes = {{"scalar", Variant::kScalar, false}};
  if (util::have_avx2()) modes.push_back({"avx2", Variant::kAvx2, false});
  if (util::have_avx512_vnni())
    modes.push_back({"avx512vnni", Variant::kAvx512, false});
  modes.push_back({"pooled", nn::gemm::active_variant_i8(), true});
  return modes;
}

struct I8Operands {
  std::vector<float> a, bias;
  nn::gemm::Int8PackedB panel;
};

I8Operands make_i8_operands(const GemmShape& shape) {
  Rng rng(42);
  I8Operands o;
  o.a.resize(shape.m * shape.k);
  std::vector<float> b(shape.k * shape.n);
  o.bias.resize(shape.n);
  for (auto& v : o.a) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  for (auto& v : b) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  for (auto& v : o.bias) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  o.panel = nn::gemm::pack_b_i8(b.data(), shape.n, Op::kNone, shape.k,
                                shape.n);
  return o;
}

void run_gemm_i8_benchmark(benchmark::State& state, const GemmShape& shape,
                           const GemmMode& mode) {
  const I8Operands o = make_i8_operands(shape);
  std::vector<float> c(shape.m * shape.n);
  util::ThreadPool* pool = mode.pooled ? &util::ThreadPool::global() : nullptr;

  for (auto _ : state) {
    nn::gemm::multiply_i8_variant(mode.variant, o.a.data(), shape.k,
                                  Op::kNone, o.panel, o.bias.data(), c.data(),
                                  shape.n, shape.m, shape.n, shape.k, pool);
    benchmark::DoNotOptimize(c.data());
    benchmark::ClobberMemory();
  }
  // Same 2mnk op count as the fp32 rows (one 8-bit MAC per fp32 MAC), so
  // gemm_i8 and gemm rates compare directly.
  const double flops = 2.0 * static_cast<double>(shape.m) *
                       static_cast<double>(shape.n) *
                       static_cast<double>(shape.k) *
                       static_cast<double>(state.iterations());
  state.counters["gflops"] =
      benchmark::Counter(flops * 1e-9, benchmark::Counter::kIsRate);
}

/// Determinism gate: every available int8 mode (SIMD variants and the
/// pooled run) must reproduce the scalar serial result bit-for-bit on
/// every bench shape. Returns false on the first mismatch.
bool verify_i8_identity() {
  for (const GemmShape& shape : kShapes) {
    const I8Operands o = make_i8_operands(shape);
    std::vector<float> want(shape.m * shape.n);
    nn::gemm::multiply_i8_variant(Variant::kScalar, o.a.data(), shape.k,
                                  Op::kNone, o.panel, o.bias.data(),
                                  want.data(), shape.n, shape.m, shape.n,
                                  shape.k, nullptr);
    for (const GemmMode& mode : available_i8_modes()) {
      std::vector<float> got(shape.m * shape.n);
      nn::gemm::multiply_i8_variant(
          mode.variant, o.a.data(), shape.k, Op::kNone, o.panel,
          o.bias.data(), got.data(), shape.n, shape.m, shape.n, shape.k,
          mode.pooled ? &util::ThreadPool::global() : nullptr);
      if (std::memcmp(want.data(), got.data(),
                      want.size() * sizeof(float)) != 0) {
        std::fprintf(stderr,
                     "FATAL: int8 mode %s diverges bitwise from scalar on "
                     "%s (%zux%zux%zu)\n",
                     mode.name, shape.name, shape.m, shape.n, shape.k);
        return false;
      }
    }
  }
  return true;
}

/// Accuracy row: fp32 vs int8 forward of the fig12 CNN on a synthetic
/// batch — top-1 agreement fraction and worst logit delta. The real
/// accuracy-vs-cost tradeoff (trained model, held-out stream) lives in
/// bench/ext_quantization; this row just pins that the int8 path is close
/// enough that the dispatcher's model ranking survives quantization.
struct I8AccuracyRow {
  double top1_agreement = 0.0;
  double max_logit_delta = 0.0;
};

I8AccuracyRow measure_i8_accuracy() {
  Rng rng(42);
  nn::Sequential model =
      nn::make_simple_cnn("perf-cnn", nn::mnist_spec(), 16, 32, rng);
  model.set_training(false);
  const std::size_t batch_size = smoke_mode() ? 8 : 64;
  nn::Tensor batch({batch_size, 1, 28, 28});
  Rng data_rng(7);
  for (auto& v : batch.data()) v = static_cast<float>(data_rng.uniform());

  const nn::Tensor fp32 = model.forward(batch);
  const std::vector<std::size_t> fp32_top1 = model.predict(batch);
  nn::Tensor int8;
  std::vector<std::size_t> int8_top1;
  {
    nn::ScopedComputeBackend scoped(nn::ComputeBackend::kGemmInt8);
    int8 = model.forward(batch);
    int8_top1 = model.predict(batch);
  }
  I8AccuracyRow row;
  std::size_t agree = 0;
  for (std::size_t i = 0; i < batch_size; ++i)
    agree += fp32_top1[i] == int8_top1[i];
  row.top1_agreement =
      static_cast<double>(agree) / static_cast<double>(batch_size);
  for (std::size_t i = 0; i < fp32.size(); ++i)
    row.max_logit_delta = std::max(
        row.max_logit_delta,
        static_cast<double>(std::abs(fp32[i] - int8[i])));
  return row;
}

// ------------------------------------------------------------ train/*

enum class TrainMode { kSeedReference, kGemmSerial, kGemmParallel };

const char* train_mode_name(TrainMode mode) {
  switch (mode) {
    case TrainMode::kSeedReference: return "seed_reference";
    case TrainMode::kGemmSerial: return "gemm_serial";
    case TrainMode::kGemmParallel: return "gemm_parallel";
  }
  return "?";
}

std::size_t train_samples() {
  if (smoke_mode()) return 32;
  if (const char* env = std::getenv("CEA_BENCH_TRAIN_SAMPLES")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return 256;
}

void run_train_benchmark(benchmark::State& state, TrainMode mode) {
  const std::size_t samples = train_samples();
  Rng rng(7);
  nn::Tensor batch({samples, 1, 28, 28});
  for (auto& v : batch.data()) v = static_cast<float>(rng.uniform());
  std::vector<std::size_t> labels(samples);
  for (std::size_t i = 0; i < samples; ++i) labels[i] = i % 10;

  nn::Sequential model =
      nn::make_simple_cnn("perf-cnn", nn::mnist_spec(), 16, 32, rng);
  nn::TrainConfig config;
  config.epochs = 1;
  config.batch_size = 32;

  nn::set_compute_backend(mode == TrainMode::kSeedReference
                              ? nn::ComputeBackend::kReference
                              : nn::ComputeBackend::kGemm);
  nn::set_compute_pool(mode == TrainMode::kGemmParallel
                           ? &util::ThreadPool::global()
                           : nullptr);
  for (auto _ : state) {
    Rng train_rng(11);
    nn::train_sgd(model, batch, labels, config, train_rng);
  }
  nn::set_compute_backend(nn::ComputeBackend::kGemm);
  nn::set_compute_pool(nullptr);
  state.counters["samples_per_sec"] = benchmark::Counter(
      static_cast<double>(samples) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}

// ---------------------------------------------------------- reporting

/// Console reporter that additionally captures every per-repetition row's
/// rate counter for the JSON mirror.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  struct Row {
    std::string name;
    double rate = 0.0;  // gflops or samples_per_sec, depending on family
  };

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const auto& run : runs) {
      if (run.run_type == Run::RT_Aggregate) continue;
      for (const char* key : {"gflops", "samples_per_sec"}) {
        const auto counter = run.counters.find(key);
        if (counter != run.counters.end())
          rows_.push_back({run.benchmark_name(), counter->second});
      }
    }
    ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<Row>& rows() const noexcept { return rows_; }

 private:
  std::vector<Row> rows_;
};

const char* variant_name(Variant variant) {
  switch (variant) {
    case Variant::kScalar: return "scalar";
    case Variant::kAvx2: return "avx2";
    case Variant::kAvx512: return "avx512";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  const auto bench_start = std::chrono::steady_clock::now();
  auto telemetry = cea::bench::TelemetrySession::from_args(argc, argv);
  if (!verify_i8_identity()) return 1;
  const std::vector<GemmMode> modes = available_modes();
  for (const GemmShape& shape : kShapes) {
    for (const GemmMode& mode : modes) {
      const std::string name =
          std::string("gemm/") + shape.name + "/" + mode.name;
      auto* bench = benchmark::RegisterBenchmark(
          name.c_str(),
          [shape, mode](benchmark::State& state) {
            run_gemm_benchmark(state, shape, mode);
          });
      bench->Unit(benchmark::kMicrosecond)->UseRealTime();
      if (smoke_mode()) bench->Iterations(1);
    }
  }
  for (const GemmShape& shape : kShapes) {
    for (const GemmMode& mode : available_i8_modes()) {
      const std::string name =
          std::string("gemm_i8/") + shape.name + "/" + mode.name;
      auto* bench = benchmark::RegisterBenchmark(
          name.c_str(),
          [shape, mode](benchmark::State& state) {
            run_gemm_i8_benchmark(state, shape, mode);
          });
      bench->Unit(benchmark::kMicrosecond)->UseRealTime();
      if (smoke_mode()) bench->Iterations(1);
    }
  }
  for (TrainMode mode : {TrainMode::kSeedReference, TrainMode::kGemmSerial,
                         TrainMode::kGemmParallel}) {
    const std::string name =
        std::string("train/epoch_mnist_cnn_16x32/") + train_mode_name(mode);
    auto* bench = benchmark::RegisterBenchmark(
        name.c_str(),
        [mode](benchmark::State& state) { run_train_benchmark(state, mode); });
    bench->Unit(benchmark::kMillisecond)->UseRealTime();
    if (smoke_mode()) bench->Iterations(1);
  }

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  // Average repetitions per benchmark, preserving registration order.
  std::vector<std::string> order;
  std::map<std::string, std::pair<double, int>> sums;
  for (const auto& row : reporter.rows()) {
    std::string name = row.name;
    if (const auto suffix = name.find("/real_time");
        suffix != std::string::npos)
      name.resize(suffix);
    auto [it, inserted] = sums.emplace(name, std::pair{0.0, 0});
    if (inserted) order.push_back(name);
    it->second.first += row.rate;
    it->second.second += 1;
  }
  const auto mean_of = [&](const std::string& name) {
    const auto it = sums.find(name);
    return it == sums.end() || it->second.second == 0
               ? 0.0
               : it->second.first / static_cast<double>(it->second.second);
  };

  // int8-vs-fp32 speedup at the SAME ISA (kernel-vs-kernel, no
  // quantization hidden in the baseline), per shape. The ">= 2x" target
  // from the ISSUE applies to the large-k dense shape, where there is
  // enough inner product to amortize the activation quantization.
  struct IsaPair {
    const char* i8;
    const char* fp32;
  };
  const IsaPair kIsaPairs[] = {
      {"scalar", "scalar"}, {"avx2", "avx2"}, {"avx512vnni", "avx512"}};
  std::vector<std::string> speedup_rows;
  for (const GemmShape& shape : kShapes) {
    std::string row = std::string("    {\"shape\": \"") + shape.name + "\"";
    for (const IsaPair& pair : kIsaPairs) {
      const double i8 =
          mean_of(std::string("gemm_i8/") + shape.name + "/" + pair.i8);
      const double fp32 =
          mean_of(std::string("gemm/") + shape.name + "/" + pair.fp32);
      if (i8 <= 0.0 || fp32 <= 0.0) continue;
      row += std::string(", \"") + pair.i8 + "\": " +
             std::to_string(i8 / fp32);
    }
    row += "}";
    speedup_rows.push_back(std::move(row));
  }
  const I8AccuracyRow i8_accuracy = measure_i8_accuracy();

  const double seed_sps = mean_of("train/epoch_mnist_cnn_16x32/seed_reference");
  const double serial_sps = mean_of("train/epoch_mnist_cnn_16x32/gemm_serial");
  const double parallel_sps =
      mean_of("train/epoch_mnist_cnn_16x32/gemm_parallel");
  const double serial_speedup = seed_sps > 0.0 ? serial_sps / seed_sps : 0.0;
  const double parallel_speedup =
      seed_sps > 0.0 ? parallel_sps / seed_sps : 0.0;
  const unsigned hw_threads = std::thread::hardware_concurrency();

  const double bench_wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    bench_start)
          .count();
  std::filesystem::create_directories("bench_out");
  std::ofstream json("bench_out/perf_nn.json");
  json << "{\n";
  json << "  \"meta\": " << cea::bench::meta_json_object(bench_wall) << ",\n";
  json << "  \"hardware_threads\": " << hw_threads << ",\n";
  json << "  \"pool_workers\": " << util::ThreadPool::global().size() << ",\n";
  json << "  \"active_variant\": \""
       << variant_name(nn::gemm::active_variant()) << "\",\n";
  json << "  \"active_variant_i8\": \""
       << (nn::gemm::active_variant_i8() == Variant::kAvx512
               ? "avx512vnni"
               : variant_name(nn::gemm::active_variant_i8()))
       << "\",\n";
  json << "  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < order.size(); ++i) {
    const bool train = order[i].rfind("train/", 0) == 0;
    json << "    {\"name\": \"" << order[i] << "\", \""
         << (train ? "samples_per_sec" : "gflops")
         << "\": " << mean_of(order[i]) << "}"
         << (i + 1 < order.size() ? "," : "") << "\n";
  }
  json << "  ],\n";
  json << "  \"int8_speedup_vs_fp32_same_isa\": [\n";
  for (std::size_t i = 0; i < speedup_rows.size(); ++i)
    json << speedup_rows[i] << (i + 1 < speedup_rows.size() ? "," : "")
         << "\n";
  json << "  ],\n";
  json << "  \"int8_speedup_target\": \">= 2x fp32 at the same ISA on "
          "mnist_mlp256_fc1\",\n";
  json << "  \"int8_fig12_accuracy\": {\"top1_agreement\": "
       << i8_accuracy.top1_agreement
       << ", \"max_logit_delta\": " << i8_accuracy.max_logit_delta << "},\n";
  json << "  \"train_epoch_speedup_vs_seed\": {\n";
  json << "    \"gemm_serial\": " << serial_speedup << ",\n";
  json << "    \"gemm_parallel\": " << parallel_speedup << ",\n";
  json << "    \"targets\": \"serial >= 4x; parallel >= 8x when >= 4 "
          "cores\"\n";
  json << "  }\n";
  json << "}\n";
  json.close();

  {
    const char* i8_name = nn::gemm::active_variant_i8() == Variant::kAvx512
                              ? "avx512vnni"
                              : variant_name(nn::gemm::active_variant_i8());
    const char* fp_name = variant_name(nn::gemm::active_variant());
    const double i8 =
        mean_of(std::string("gemm_i8/mnist_mlp256_fc1/") + i8_name);
    const double fp32 =
        mean_of(std::string("gemm/mnist_mlp256_fc1/") + fp_name);
    if (i8 > 0.0 && fp32 > 0.0)
      std::printf("\nint8 speedup on mnist_mlp256_fc1: %.2fx (%s %.1f vs %s "
                  "%.1f GFLOP/s; target >= 2x same-ISA); fig12 top-1 "
                  "agreement %.3f, max logit delta %.4f\n",
                  i8 / fp32, i8_name, i8, fp_name, fp32,
                  i8_accuracy.top1_agreement, i8_accuracy.max_logit_delta);
  }
  if (seed_sps > 0.0) {
    std::printf("\ntrain-epoch speedup vs seed scalar path: gemm_serial "
                "%.2fx (target >= 4x), gemm_parallel %.2fx (target >= 8x "
                "with >= 4 cores; %u hardware threads, %zu pool workers)\n",
                serial_speedup, parallel_speedup, hw_threads,
                util::ThreadPool::global().size());
    std::printf("wrote bench_out/perf_nn.json\n");
  }
  return 0;
}
