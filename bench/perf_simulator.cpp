// Perf bench for the simulation engine itself (not a paper figure): slots
// per second of Simulator::run with the "Ours" combo on the fig03 scenario
// (seed-42 parametric environment, T=160, loss_draw_cap=256) at 10/50/200
// edges, in three engine modes:
//
//   serial_persample — the original engine's cost profile: one
//                      LossProfile::draw() per streamed sample from a
//                      shared RNG stream (SimOptions::per_sample_draws);
//   serial_batched   — LossProfile::draw_batch with per-(edge,slot)
//                      streams, single thread (the default engine);
//   parallel_batched — the same plus per-edge fan-out over the global
//                      thread pool (CEA_BENCH_THREADS sizes it).
//
// All three produce valid RunResults; batched serial and batched parallel
// are bit-identical (tests/sim/test_parallel.cpp). Results are mirrored to
// bench_out/perf_simulator.json (mode, edges, slots_per_sec — the one
// baseline format every perf bench emits) so the perf trajectory can be
// tracked across PRs, and the headline parallel-vs-persample speedup at 50
// edges is printed at the end.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"
#include "sim/experiment.h"
#include "sim/simulator.h"
#include "util/thread_pool.h"

namespace {

using namespace cea;

enum class Mode { kSerialPerSample, kSerialBatched, kParallelBatched };

const char* mode_name(Mode mode) {
  switch (mode) {
    case Mode::kSerialPerSample: return "serial_persample";
    case Mode::kSerialBatched: return "serial_batched";
    case Mode::kParallelBatched: return "parallel_batched";
  }
  return "?";
}

/// fig03's scenario at a given fleet size (cap/liquidity prorated like
/// fig04 so the trading problem stays comparable across sizes).
const sim::Environment& environment_for(std::size_t edges) {
  static std::map<std::size_t, sim::Environment> cache;
  auto it = cache.find(edges);
  if (it == cache.end()) {
    sim::SimConfig config;
    config.num_edges = edges;
    config.carbon_cap = 50.0 * static_cast<double>(edges);
    config.max_trade_per_slot = 2.5 * static_cast<double>(edges);
    config.seed = 42;
    it = cache.emplace(edges, sim::Environment::make_parametric(config))
             .first;
  }
  return it->second;
}

void run_engine_benchmark(benchmark::State& state, Mode mode) {
  const auto edges = static_cast<std::size_t>(state.range(0));
  const sim::Environment& env = environment_for(edges);
  const sim::AlgorithmCombo combo = sim::ours_combo();

  sim::SimOptions options;
  options.per_sample_draws = (mode == Mode::kSerialPerSample);
  if (mode == Mode::kParallelBatched)
    options.pool = &util::ThreadPool::global();
  const sim::Simulator simulator(env, options);

  std::uint64_t seed = 1;
  for (auto _ : state) {
    const auto result =
        simulator.run(combo.policy, combo.trader, seed++, combo.name);
    benchmark::DoNotOptimize(result.total_switches);
  }
  const double slots = static_cast<double>(state.iterations()) *
                       static_cast<double>(env.horizon());
  state.counters["slots_per_sec"] =
      benchmark::Counter(slots, benchmark::Counter::kIsRate);
  state.SetLabel(std::string(mode_name(mode)) + ", " +
                 std::to_string(edges) + " edges");
}

void BM_SerialPerSample(benchmark::State& state) {
  run_engine_benchmark(state, Mode::kSerialPerSample);
}
void BM_SerialBatched(benchmark::State& state) {
  run_engine_benchmark(state, Mode::kSerialBatched);
}
void BM_ParallelBatched(benchmark::State& state) {
  run_engine_benchmark(state, Mode::kParallelBatched);
}

// UseRealTime: rate counters divide by wall time, the honest throughput
// metric for the parallel mode (CPU time would only see the main thread).
BENCHMARK(BM_SerialPerSample)->Arg(10)->Arg(50)->Arg(200)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_SerialBatched)->Arg(10)->Arg(50)->Arg(200)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_ParallelBatched)->Arg(10)->Arg(50)->Arg(200)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

/// Console reporter that additionally captures (name, slots_per_sec) rows
/// for the CSV mirror.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  struct Row {
    std::string name;
    double slots_per_sec = 0.0;
  };

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const auto& run : runs) {
      // Under --benchmark_repetitions the aggregate rows (mean, median,
      // stddev, cv) also carry the counter; only the per-repetition
      // measurements are data, the rest would corrupt the averages below.
      if (run.run_type == Run::RT_Aggregate) continue;
      const auto counter = run.counters.find("slots_per_sec");
      if (counter == run.counters.end()) continue;
      rows_.push_back({run.benchmark_name(), counter->second});
    }
    ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<Row>& rows() const noexcept { return rows_; }

 private:
  std::vector<Row> rows_;
};

/// "BM_SerialBatched/50/real_time" -> {"serial_batched", "50"}.
std::pair<std::string, std::string> parse_name(std::string name) {
  std::string mode = "?";
  if (name.find("SerialPerSample") != std::string::npos)
    mode = "serial_persample";
  else if (name.find("SerialBatched") != std::string::npos)
    mode = "serial_batched";
  else if (name.find("ParallelBatched") != std::string::npos)
    mode = "parallel_batched";
  if (const auto suffix = name.find("/real_time"); suffix != std::string::npos)
    name.resize(suffix);
  const auto slash = name.rfind('/');
  return {mode, slash == std::string::npos ? "?" : name.substr(slash + 1)};
}

}  // namespace

int main(int argc, char** argv) {
  const auto bench_start = std::chrono::steady_clock::now();
  auto telemetry = cea::bench::TelemetrySession::from_args(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  // Average repetitions of the same benchmark (one row per repetition with
  // --benchmark_repetitions, a single row otherwise), preserving run order.
  std::vector<std::pair<std::string, std::string>> order;
  std::map<std::pair<std::string, std::string>, std::pair<double, int>> sums;
  for (const auto& row : reporter.rows()) {
    const auto key = parse_name(row.name);
    auto [it, inserted] = sums.emplace(key, std::pair{0.0, 0});
    if (inserted) order.push_back(key);
    it->second.first += row.slots_per_sec;
    it->second.second += 1;
  }

  std::filesystem::create_directories("bench_out");
  double persample_50 = 0.0, parallel_50 = 0.0, batched_50 = 0.0;
  for (const auto& [mode, edges] : order) {
    const auto& [total, count] = sums.at({mode, edges});
    const double mean = total / static_cast<double>(count);
    if (edges == "50") {
      if (mode == "serial_persample") persample_50 = mean;
      if (mode == "serial_batched") batched_50 = mean;
      if (mode == "parallel_batched") parallel_50 = mean;
    }
  }
  if (persample_50 > 0.0) {
    std::printf("\n50-edge speedup vs per-sample engine: batched %.2fx, "
                "batched+parallel %.2fx (target >= 5x)\n",
                batched_50 / persample_50, parallel_50 / persample_50);
  }

  // The one checked-in baseline format: JSON rows with run provenance.
  {
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      bench_start)
            .count();
    std::ofstream json("bench_out/perf_simulator.json");
    json << "{\n  \"meta\": " << cea::bench::meta_json_object(wall)
         << ",\n  \"rows\": [\n";
    bool first = true;
    for (const auto& [mode, edges] : order) {
      const auto& [total, count] = sums.at({mode, edges});
      if (!first) json << ",\n";
      first = false;
      json << "    {\"mode\": \"" << mode << "\", \"edges\": " << edges
           << ", \"slots_per_sec\": "
           << (total / static_cast<double>(count)) << "}";
    }
    json << "\n  ]\n}\n";
  }
  return 0;
}
