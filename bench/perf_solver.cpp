// Perf bench for the optimization layer (not a paper figure).
//
// Two families of measurements:
//
//   newton/*  — the Tsallis-INF OMD inner solve across a fleet of edges,
//               comparing the historical per-edge scalar loop (one
//               tsallis_probabilities_into call per edge, exactly what
//               SimOptions::cross_edge_batch_solve = false runs) against
//               TsallisBatchSolver on each kernel variant the machine
//               supports, at 100 / 1000 / 10000 edges;
//   simplex/* — offline-trading-shaped LPs through the arena-backed
//               LpSolver, reporting pivots/sec and certifying the
//               zero-allocation steady state: after the warmup solve the
//               arena's overflow_count() must not move.
//
// Targets (ISSUE/ROADMAP): batched Newton >= 3x the scalar per-edge loop
// at 1000 edges on AVX2-capable hardware; arena overflow count frozen
// after warmup. Measured reality (see DESIGN.md section 9): the solve is
// divide-throughput bound and vdivpd retires only ~2x divsd results/cycle
// on this class of core, so the honest bit-identical ceiling is ~2x on
// the kernel alone; staging (push copy, grouping, SoA transpose, exit
// post-pass) erodes that to ~1.2-1.3x on this warm-start-heavy mixed
// workload and ~1.6x on cold-start-heavy ones. The 3x line is kept in
// the JSON as the original target so the gap stays visible. The summary
// and every raw measurement are mirrored to bench_out/perf_solver.json
// so the perf trajectory can be tracked across PRs. CEA_BENCH_SMOKE=1
// runs every benchmark for exactly one iteration (the bench_smoke ctest
// label).
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"
#include "opt/simplex.h"
#include "opt/tsallis_batch.h"
#include "opt/tsallis_step.h"
#include "util/cpu.h"
#include "util/rng.h"

namespace {

using namespace cea;

bool smoke_mode() { return std::getenv("CEA_BENCH_SMOKE") != nullptr; }

// ----------------------------------------------------------- newton/*

/// One staged OMD solve, as the simulator's pre-solve pass stages them.
struct SolveRequest {
  std::vector<double> losses;
  double eta = 1.0;
  double warm = 0.0;
};

/// A fleet-shaped request mix: arm counts and loss magnitudes in the range
/// the blocked policies actually produce, learning rates from early and
/// late blocks, and ~60% of requests warm-started with the root of a
/// slightly staler solve — the steady state of consecutive blocks.
std::vector<SolveRequest> make_requests(std::size_t edges) {
  Rng rng(0x5eed501);
  std::vector<SolveRequest> requests(edges);
  std::vector<double> p, scratch;
  for (auto& request : requests) {
    const std::size_t arms =
        static_cast<std::size_t>(rng.uniform_int(3, 8));
    const double scale = std::pow(10.0, rng.uniform(-1.0, 3.0));
    request.losses.resize(arms);
    for (auto& loss : request.losses) loss = rng.uniform() * scale;
    request.eta = 2.0 / std::sqrt(1.0 + rng.uniform(0.0, 400.0));
    if (rng.bernoulli(0.6)) {
      // Solve a nearby problem first and keep its scaled root as the warm
      // hint, then drift the losses like one more block of feedback would.
      double warm = 0.0;
      tsallis_probabilities_into(request.losses, request.eta, p, scratch,
                                 &warm);
      request.warm = warm;
      for (auto& loss : request.losses)
        loss += rng.uniform() * 0.05 * (1.0 + std::abs(loss));
    }
  }
  return requests;
}

void run_newton_scalar_loop(benchmark::State& state, std::size_t edges) {
  const auto requests = make_requests(edges);
  std::vector<double> p, scratch;
  double sink = 0.0;
  for (auto _ : state) {
    for (const auto& request : requests) {
      double warm = request.warm;
      tsallis_probabilities_into(request.losses, request.eta, p, scratch,
                                 &warm);
      sink += p[0] + warm;
    }
    benchmark::DoNotOptimize(sink);
  }
  state.counters["solves_per_sec"] = benchmark::Counter(
      static_cast<double>(edges) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}

void run_newton_batch(benchmark::State& state, std::size_t edges,
                      TsallisBatchVariant variant) {
  const auto requests = make_requests(edges);
  TsallisBatchSolver solver;
  double sink = 0.0;
  for (auto _ : state) {
    solver.clear();
    for (const auto& request : requests)
      solver.push(request.losses, request.eta, request.warm);
    solver.solve_variant(variant);
    sink += solver.probabilities(0)[0] + solver.scaled_lambda_warm(0);
    benchmark::DoNotOptimize(sink);
  }
  state.counters["solves_per_sec"] = benchmark::Counter(
      static_cast<double>(edges) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}

struct BatchMode {
  const char* name;
  TsallisBatchVariant variant;
};

std::vector<BatchMode> available_batch_modes() {
  std::vector<BatchMode> modes = {
      {"batch_scalar", TsallisBatchVariant::kScalar}};
  if (util::have_avx2())
    modes.push_back({"batch_avx2", TsallisBatchVariant::kAvx2});
  if (util::have_avx512())
    modes.push_back({"batch_avx512", TsallisBatchVariant::kAvx512});
  return modes;
}

// ---------------------------------------------------------- simplex/*

// Violations of the zero-allocation steady state observed by any simplex
// benchmark (arena overflow after warmup). Nonzero fails the bench.
int g_arena_violations = 0;

/// An offline-trading-shaped LP (see trading/offline_lp_trader.cpp):
/// 2T variables (buy/sell per slot), T prefix-neutrality rows, 2T
/// liquidity caps, with synthetic prices and emissions.
LpProblem offline_shaped_lp(std::size_t horizon, std::uint64_t seed) {
  Rng rng(seed);
  LpProblem problem;
  problem.maximize = false;
  problem.objective.resize(2 * horizon);
  for (std::size_t t = 0; t < horizon; ++t) {
    problem.objective[t] = rng.uniform(0.8, 1.6);               // buy price
    problem.objective[horizon + t] = -rng.uniform(0.3, 0.75);   // sell price
  }
  const double cap = 0.4 * static_cast<double>(horizon);
  double emission_prefix = 0.0;
  for (std::size_t d = 0; d < horizon; ++d) {
    emission_prefix += rng.uniform(0.2, 1.1);
    LpConstraint con;
    con.coeffs.assign(2 * horizon, 0.0);
    for (std::size_t s = 0; s <= d; ++s) {
      con.coeffs[s] = -1.0;
      con.coeffs[horizon + s] = 1.0;
    }
    con.relation = Relation::kLessEqual;
    con.rhs = cap - emission_prefix;
    problem.constraints.push_back(std::move(con));
  }
  for (std::size_t v = 0; v < 2 * horizon; ++v) {
    LpConstraint con;
    con.coeffs.assign(2 * horizon, 0.0);
    con.coeffs[v] = 1.0;
    con.relation = Relation::kLessEqual;
    con.rhs = 2.0;
    problem.constraints.push_back(std::move(con));
  }
  return problem;
}

void run_simplex_benchmark(benchmark::State& state, std::size_t horizon) {
  const LpProblem problem = offline_shaped_lp(horizon, 0x10ad + horizon);
  LpSolver solver(LpSolver::required_bytes(problem.num_variables(),
                                           problem.constraints.size()));
  // Warmup: the first solve establishes the arena high-water mark. From
  // here on, overflow_count() moving means a steady-state solve hit the
  // heap — the regression this bench exists to catch.
  const LpSolution warmup = solver.solve(problem, 200000);
  if (warmup.status != LpStatus::kOptimal) {
    state.SkipWithError("warmup LP did not reach optimality");
    return;
  }
  const std::size_t overflow_after_warmup = solver.arena().overflow_count();
  std::int64_t pivots = 0;
  for (auto _ : state) {
    const LpSolution solution = solver.solve(problem, 200000);
    pivots += solution.iterations;
    benchmark::DoNotOptimize(solution.objective);
  }
  if (solver.arena().overflow_count() != overflow_after_warmup) {
    ++g_arena_violations;
    state.SkipWithError("arena overflowed after warmup");
    return;
  }
  state.counters["pivots_per_sec"] = benchmark::Counter(
      static_cast<double>(pivots), benchmark::Counter::kIsRate);
  state.counters["solves_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}

// ---------------------------------------------------------- reporting

/// Console reporter that additionally captures every per-repetition row's
/// rate counters for the JSON mirror.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  struct Row {
    std::string name;
    std::string counter;
    double rate = 0.0;
  };

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const auto& run : runs) {
      if (run.run_type == Run::RT_Aggregate) continue;
      for (const char* key : {"solves_per_sec", "pivots_per_sec"}) {
        const auto counter = run.counters.find(key);
        if (counter != run.counters.end())
          rows_.push_back({run.benchmark_name(), key, counter->second});
      }
    }
    ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<Row>& rows() const noexcept { return rows_; }

 private:
  std::vector<Row> rows_;
};

const char* variant_name(TsallisBatchVariant variant) {
  switch (variant) {
    case TsallisBatchVariant::kScalar: return "scalar";
    case TsallisBatchVariant::kAvx2: return "avx2";
    case TsallisBatchVariant::kAvx512: return "avx512";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  const auto bench_start = std::chrono::steady_clock::now();
  auto telemetry = cea::bench::TelemetrySession::from_args(argc, argv);

  const std::size_t kFleets[] = {100, 1000, 10000};
  const auto batch_modes = available_batch_modes();
  for (std::size_t edges : kFleets) {
    const std::string base =
        "newton/edges" + std::to_string(edges) + "/";
    auto* scalar_loop = benchmark::RegisterBenchmark(
        (base + "scalar_loop").c_str(),
        [edges](benchmark::State& state) {
          run_newton_scalar_loop(state, edges);
        });
    scalar_loop->Unit(benchmark::kMicrosecond)->UseRealTime();
    if (smoke_mode()) scalar_loop->Iterations(1);
    for (const BatchMode& mode : batch_modes) {
      auto* bench = benchmark::RegisterBenchmark(
          (base + mode.name).c_str(),
          [edges, mode](benchmark::State& state) {
            run_newton_batch(state, edges, mode.variant);
          });
      bench->Unit(benchmark::kMicrosecond)->UseRealTime();
      if (smoke_mode()) bench->Iterations(1);
    }
  }
  for (std::size_t horizon : {std::size_t{32}, std::size_t{96}}) {
    auto* bench = benchmark::RegisterBenchmark(
        ("simplex/offline_lp_T" + std::to_string(horizon)).c_str(),
        [horizon](benchmark::State& state) {
          run_simplex_benchmark(state, horizon);
        });
    bench->Unit(benchmark::kMillisecond)->UseRealTime();
    if (smoke_mode()) bench->Iterations(1);
  }

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  // Average repetitions per (benchmark, counter), in registration order.
  std::vector<std::pair<std::string, std::string>> order;
  std::map<std::pair<std::string, std::string>, std::pair<double, int>> sums;
  for (const auto& row : reporter.rows()) {
    std::string name = row.name;
    // Strip run-mode suffixes ("/iterations:1" in smoke mode, "/real_time")
    // so smoke and full runs aggregate under the same key.
    for (const char* suffix : {"/iterations:", "/real_time"}) {
      if (const auto at = name.find(suffix); at != std::string::npos)
        name.resize(at);
    }
    const auto key = std::pair{name, row.counter};
    auto [it, inserted] = sums.emplace(key, std::pair{0.0, 0});
    if (inserted) order.push_back(key);
    it->second.first += row.rate;
    it->second.second += 1;
  }
  const auto mean_of = [&](const std::string& name,
                           const std::string& counter) {
    const auto it = sums.find({name, counter});
    return it == sums.end() || it->second.second == 0
               ? 0.0
               : it->second.first / static_cast<double>(it->second.second);
  };

  const double scalar_1000 =
      mean_of("newton/edges1000/scalar_loop", "solves_per_sec");
  const auto speedup_1000 = [&](const char* mode) {
    const double rate =
        mean_of(std::string("newton/edges1000/") + mode, "solves_per_sec");
    return scalar_1000 > 0.0 ? rate / scalar_1000 : 0.0;
  };

  const double bench_wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    bench_start)
          .count();
  std::filesystem::create_directories("bench_out");
  std::ofstream json("bench_out/perf_solver.json");
  json << "{\n";
  json << "  \"meta\": " << cea::bench::meta_json_object(bench_wall)
       << ",\n";
  json << "  \"active_variant\": \""
       << variant_name(tsallis_batch_active_variant()) << "\",\n";
  json << "  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < order.size(); ++i) {
    json << "    {\"name\": \"" << order[i].first << "\", \""
         << order[i].second << "\": " << mean_of(order[i].first,
                                                 order[i].second)
         << "}" << (i + 1 < order.size() ? "," : "") << "\n";
  }
  json << "  ],\n";
  json << "  \"newton_batch_speedup_vs_scalar_loop_1000_edges\": {\n";
  bool first = true;
  for (const BatchMode& mode : batch_modes) {
    json << (first ? "" : ",\n") << "    \"" << mode.name
         << "\": " << speedup_1000(mode.name);
    first = false;
  }
  json << ",\n    \"targets\": \"original target: batch >= 3x scalar "
          "per-edge loop at 1000 edges on AVX2-capable hardware; measured "
          "bit-identical ceiling on this divide-throughput-bound core is "
          "~2x kernel-only (vdivpd vs divsd), ~1.2-1.3x end-to-end on this "
          "warm-heavy mix — see DESIGN.md section 9\"\n";
  json << "  },\n";
  json << "  \"arena_overflow_after_warmup\": " << g_arena_violations
       << "\n";
  json << "}\n";
  json.close();

  std::printf("\nbatched Newton speedup vs per-edge scalar loop at 1000 "
              "edges:");
  for (const BatchMode& mode : batch_modes)
    std::printf(" %s %.2fx", mode.name, speedup_1000(mode.name));
  std::printf(" (original target >= 3x; measured bit-identical ceiling ~2x"
              " kernel-only, see DESIGN.md section 9)\n");
  std::printf("arena overflows after warmup: %d (must be 0)\n",
              g_arena_violations);
  std::printf("wrote bench_out/perf_solver.json\n");
  return g_arena_violations == 0 ? 0 : 1;
}
