// Overview "table": every algorithm combo of Section V plus Offline and the
// library's extensions on the default paper scenario, ranked by settled
// total cost, followed by a deep-dive report on Ours.
#include <cstdio>

#include "bench_common.h"
#include "core/mpc_trader.h"
#include "core/pooled_tsallis.h"
#include "core/predictive_trader.h"
#include "sim/report.h"

int main(int argc, char** argv) {
  auto telemetry = cea::bench::TelemetrySession::from_args(argc, argv);

  using namespace cea;
  const std::size_t runs = bench::num_runs();

  sim::SimConfig config;
  config.num_edges = 10;
  config.seed = 42;
  const auto env = sim::Environment::make_parametric(config);

  std::printf("Summary — all combos + extensions on the default scenario "
              "(%zu-run avg)\n\n",
              runs);

  std::vector<sim::RunResult> results;
  for (const auto& combo : sim::all_combos()) {
    results.push_back(sim::run_combo_averaged_parallel(env, combo, runs, 7));
  }
  results.push_back(sim::run_offline_averaged(env, runs, 7));
  // Extensions (serial averaging for the stateful pooled factory).
  results.push_back(sim::run_combo_averaged(
      env,
      {"Pooled-PD", core::pooled_tsallis_factory(), sim::ours_combo().trader},
      runs, 7));
  results.push_back(sim::run_combo_averaged_parallel(
      env,
      {"Ours-MPC", sim::ours_combo().policy, core::MpcCarbonTrader::factory()},
      runs, 7));
  results.push_back(sim::run_combo_averaged_parallel(
      env,
      {"Ours-Predict", sim::ours_combo().policy,
       core::PredictiveCarbonTrader::factory()},
      runs, 7));

  std::fputs(sim::comparison_report(env, results).c_str(), stdout);

  std::printf("\n");
  for (const auto& result : results) {
    if (result.algorithm == "Ours") {
      std::fputs(sim::run_report(env, result).c_str(), stdout);
      break;
    }
  }
  return 0;
}
