// Overview "table": every algorithm combo of Section V plus Offline and the
// library's extensions on the default paper scenario, ranked by settled
// total cost, followed by a deep-dive report on Ours.
//
// Each combo is additionally costed: wall time plus solver iteration
// counters (tsallis.solves / tsallis.newton_iters / simplex.pivots)
// measured as telemetry-snapshot diffs around its runs, printed as a table
// and mirrored to bench_out/summary_all_combos.json. Counters read zero in
// a -DCEA_TELEMETRY=OFF build; the tsallis ones are detail-gated, so the
// bench switches detail on for the duration of the runs.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "bench_common.h"
#include "core/mpc_trader.h"
#include "core/pooled_tsallis.h"
#include "core/predictive_trader.h"
#include "obs/telemetry.h"
#include "sim/report.h"

namespace {

double counter_value(const cea::obs::Snapshot& snap, std::string_view name) {
  for (const auto& c : snap.counters)
    if (c.name == name) return c.value;
  return 0.0;
}

void histogram_totals(const cea::obs::Snapshot& snap, std::string_view name,
                      double* count, double* sum) {
  for (const auto& h : snap.histograms) {
    if (h.name == name) {
      *count = static_cast<double>(h.count);
      *sum = h.sum;
      return;
    }
  }
  *count = 0.0;
  *sum = 0.0;
}

/// Solver-side cost of one combo's runs: wall clock plus iteration
/// counters diffed across telemetry snapshots.
struct SolverCost {
  std::string algorithm;
  double wall_sec = 0.0;
  double tsallis_solves = 0.0;
  double newton_iters_per_solve = 0.0;
  double simplex_pivots = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  auto telemetry = cea::bench::TelemetrySession::from_args(argc, argv);

  using namespace cea;
  const std::size_t runs = bench::num_runs();

  sim::SimConfig config;
  config.num_edges = 10;
  config.seed = 42;
  const auto env = sim::Environment::make_parametric(config);

  std::printf("Summary — all combos + extensions on the default scenario "
              "(%zu-run avg)\n\n",
              runs);

  // The tsallis solver counters only record when detail is on (the
  // --telemetry flag enables it too; this makes the costing table work in
  // the plain invocation). Restored below so the session export keeps its
  // configured level.
  const bool had_detail = obs::detail_enabled();
  obs::set_detail(true);

  std::vector<sim::RunResult> results;
  std::vector<SolverCost> costs;
  const auto run_costed = [&](auto&& run_fn, const char* name) {
    const obs::Snapshot before = obs::snapshot();
    const auto t0 = std::chrono::steady_clock::now();
    results.push_back(run_fn());
    const auto t1 = std::chrono::steady_clock::now();
    const obs::Snapshot after = obs::snapshot();

    SolverCost cost;
    cost.algorithm = name;
    cost.wall_sec = std::chrono::duration<double>(t1 - t0).count();
    cost.tsallis_solves = counter_value(after, "tsallis.solves") -
                          counter_value(before, "tsallis.solves");
    double count_before, sum_before, count_after, sum_after;
    histogram_totals(before, "tsallis.newton_iters", &count_before,
                     &sum_before);
    histogram_totals(after, "tsallis.newton_iters", &count_after, &sum_after);
    const double iter_count = count_after - count_before;
    cost.newton_iters_per_solve =
        iter_count > 0.0 ? (sum_after - sum_before) / iter_count : 0.0;
    cost.simplex_pivots = counter_value(after, "simplex.pivots") -
                          counter_value(before, "simplex.pivots");
    costs.push_back(cost);
  };

  for (const auto& combo : sim::all_combos()) {
    run_costed(
        [&] { return sim::run_combo_averaged_parallel(env, combo, runs, 7); },
        combo.name.c_str());
  }
  run_costed([&] { return sim::run_offline_averaged(env, runs, 7); },
             "Offline");
  // Extensions (serial averaging for the stateful pooled factory).
  run_costed(
      [&] {
        return sim::run_combo_averaged(
            env,
            {"Pooled-PD", core::pooled_tsallis_factory(),
             sim::ours_combo().trader},
            runs, 7);
      },
      "Pooled-PD");
  run_costed(
      [&] {
        return sim::run_combo_averaged_parallel(
            env,
            {"Ours-MPC", sim::ours_combo().policy,
             core::MpcCarbonTrader::factory()},
            runs, 7);
      },
      "Ours-MPC");
  run_costed(
      [&] {
        return sim::run_combo_averaged_parallel(
            env,
            {"Ours-Predict", sim::ours_combo().policy,
             core::PredictiveCarbonTrader::factory()},
            runs, 7);
      },
      "Ours-Predict");

  obs::set_detail(had_detail);

  std::fputs(sim::comparison_report(env, results).c_str(), stdout);

  std::printf("\nPer-combo solver cost (%zu-run totals; zeros mean the "
              "build has telemetry off)\n",
              runs);
  std::printf("%-14s %9s %15s %18s %15s\n", "algorithm", "wall_s",
              "tsallis_solves", "newton_iters/slv", "simplex_pivots");
  for (const auto& cost : costs) {
    std::printf("%-14s %9.3f %15.0f %18.2f %15.0f\n", cost.algorithm.c_str(),
                cost.wall_sec, cost.tsallis_solves,
                cost.newton_iters_per_solve, cost.simplex_pivots);
  }

  std::filesystem::create_directories("bench_out");
  std::ofstream json("bench_out/summary_all_combos.json");
  json << "{\n  \"meta\": " << bench::meta_json_object(0.0) << ",\n";
  json << "  \"runs\": " << runs << ",\n";
  json << "  \"combos\": [\n";
  for (std::size_t i = 0; i < costs.size(); ++i) {
    const auto& cost = costs[i];
    json << "    {\"algorithm\": \"" << cost.algorithm
         << "\", \"wall_sec\": " << cost.wall_sec
         << ", \"tsallis_solves\": " << cost.tsallis_solves
         << ", \"newton_iters_per_solve\": " << cost.newton_iters_per_solve
         << ", \"simplex_pivots\": " << cost.simplex_pivots << "}"
         << (i + 1 < costs.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  json.close();
  std::printf("wrote bench_out/summary_all_combos.json\n");

  std::printf("\n");
  for (const auto& result : results) {
    if (result.algorithm == "Ours") {
      std::fputs(sim::run_report(env, result).c_str(), stdout);
      break;
    }
  }
  return 0;
}
