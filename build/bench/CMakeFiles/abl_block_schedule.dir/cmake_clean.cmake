file(REMOVE_RECURSE
  "CMakeFiles/abl_block_schedule.dir/abl_block_schedule.cpp.o"
  "CMakeFiles/abl_block_schedule.dir/abl_block_schedule.cpp.o.d"
  "abl_block_schedule"
  "abl_block_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_block_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
