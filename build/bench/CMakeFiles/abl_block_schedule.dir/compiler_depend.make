# Empty compiler generated dependencies file for abl_block_schedule.
# This may be replaced when dependencies are built.
