file(REMOVE_RECURSE
  "CMakeFiles/abl_primal_step.dir/abl_primal_step.cpp.o"
  "CMakeFiles/abl_primal_step.dir/abl_primal_step.cpp.o.d"
  "abl_primal_step"
  "abl_primal_step.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_primal_step.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
