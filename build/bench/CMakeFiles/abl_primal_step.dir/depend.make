# Empty dependencies file for abl_primal_step.
# This may be replaced when dependencies are built.
