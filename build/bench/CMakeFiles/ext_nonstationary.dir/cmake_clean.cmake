file(REMOVE_RECURSE
  "CMakeFiles/ext_nonstationary.dir/ext_nonstationary.cpp.o"
  "CMakeFiles/ext_nonstationary.dir/ext_nonstationary.cpp.o.d"
  "ext_nonstationary"
  "ext_nonstationary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_nonstationary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
