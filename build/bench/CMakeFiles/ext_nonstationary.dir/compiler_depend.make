# Empty compiler generated dependencies file for ext_nonstationary.
# This may be replaced when dependencies are built.
