file(REMOVE_RECURSE
  "CMakeFiles/ext_pooled_learning.dir/ext_pooled_learning.cpp.o"
  "CMakeFiles/ext_pooled_learning.dir/ext_pooled_learning.cpp.o.d"
  "ext_pooled_learning"
  "ext_pooled_learning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_pooled_learning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
