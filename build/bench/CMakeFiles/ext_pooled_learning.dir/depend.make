# Empty dependencies file for ext_pooled_learning.
# This may be replaced when dependencies are built.
