file(REMOVE_RECURSE
  "CMakeFiles/ext_price_prediction.dir/ext_price_prediction.cpp.o"
  "CMakeFiles/ext_price_prediction.dir/ext_price_prediction.cpp.o.d"
  "ext_price_prediction"
  "ext_price_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_price_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
