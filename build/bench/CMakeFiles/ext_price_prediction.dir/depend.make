# Empty dependencies file for ext_price_prediction.
# This may be replaced when dependencies are built.
