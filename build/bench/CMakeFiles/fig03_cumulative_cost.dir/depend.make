# Empty dependencies file for fig03_cumulative_cost.
# This may be replaced when dependencies are built.
