file(REMOVE_RECURSE
  "CMakeFiles/fig04_cost_vs_edges.dir/fig04_cost_vs_edges.cpp.o"
  "CMakeFiles/fig04_cost_vs_edges.dir/fig04_cost_vs_edges.cpp.o.d"
  "fig04_cost_vs_edges"
  "fig04_cost_vs_edges.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_cost_vs_edges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
