# Empty dependencies file for fig04_cost_vs_edges.
# This may be replaced when dependencies are built.
