file(REMOVE_RECURSE
  "CMakeFiles/fig05_switching_weight.dir/fig05_switching_weight.cpp.o"
  "CMakeFiles/fig05_switching_weight.dir/fig05_switching_weight.cpp.o.d"
  "fig05_switching_weight"
  "fig05_switching_weight.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_switching_weight.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
