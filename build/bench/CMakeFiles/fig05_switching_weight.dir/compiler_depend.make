# Empty compiler generated dependencies file for fig05_switching_weight.
# This may be replaced when dependencies are built.
