file(REMOVE_RECURSE
  "CMakeFiles/fig06_emission_rate.dir/fig06_emission_rate.cpp.o"
  "CMakeFiles/fig06_emission_rate.dir/fig06_emission_rate.cpp.o.d"
  "fig06_emission_rate"
  "fig06_emission_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_emission_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
