# Empty compiler generated dependencies file for fig06_emission_rate.
# This may be replaced when dependencies are built.
