file(REMOVE_RECURSE
  "CMakeFiles/fig07_carbon_cap.dir/fig07_carbon_cap.cpp.o"
  "CMakeFiles/fig07_carbon_cap.dir/fig07_carbon_cap.cpp.o.d"
  "fig07_carbon_cap"
  "fig07_carbon_cap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_carbon_cap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
