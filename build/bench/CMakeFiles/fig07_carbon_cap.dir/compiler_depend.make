# Empty compiler generated dependencies file for fig07_carbon_cap.
# This may be replaced when dependencies are built.
