file(REMOVE_RECURSE
  "CMakeFiles/fig08_selection_counts.dir/fig08_selection_counts.cpp.o"
  "CMakeFiles/fig08_selection_counts.dir/fig08_selection_counts.cpp.o.d"
  "fig08_selection_counts"
  "fig08_selection_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_selection_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
