# Empty dependencies file for fig08_selection_counts.
# This may be replaced when dependencies are built.
