file(REMOVE_RECURSE
  "CMakeFiles/fig09_trading_volume.dir/fig09_trading_volume.cpp.o"
  "CMakeFiles/fig09_trading_volume.dir/fig09_trading_volume.cpp.o.d"
  "fig09_trading_volume"
  "fig09_trading_volume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_trading_volume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
