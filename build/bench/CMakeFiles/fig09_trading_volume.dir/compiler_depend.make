# Empty compiler generated dependencies file for fig09_trading_volume.
# This may be replaced when dependencies are built.
