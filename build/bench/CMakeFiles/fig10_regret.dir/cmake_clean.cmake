file(REMOVE_RECURSE
  "CMakeFiles/fig10_regret.dir/fig10_regret.cpp.o"
  "CMakeFiles/fig10_regret.dir/fig10_regret.cpp.o.d"
  "fig10_regret"
  "fig10_regret.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_regret.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
