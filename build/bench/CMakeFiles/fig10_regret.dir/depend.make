# Empty dependencies file for fig10_regret.
# This may be replaced when dependencies are built.
