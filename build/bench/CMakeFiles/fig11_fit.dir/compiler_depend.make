# Empty compiler generated dependencies file for fig11_fit.
# This may be replaced when dependencies are built.
