file(REMOVE_RECURSE
  "CMakeFiles/fig12_accuracy_mnist.dir/fig12_accuracy_mnist.cpp.o"
  "CMakeFiles/fig12_accuracy_mnist.dir/fig12_accuracy_mnist.cpp.o.d"
  "fig12_accuracy_mnist"
  "fig12_accuracy_mnist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_accuracy_mnist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
