# Empty compiler generated dependencies file for fig12_accuracy_mnist.
# This may be replaced when dependencies are built.
