file(REMOVE_RECURSE
  "CMakeFiles/fig13_accuracy_cifar.dir/fig13_accuracy_cifar.cpp.o"
  "CMakeFiles/fig13_accuracy_cifar.dir/fig13_accuracy_cifar.cpp.o.d"
  "fig13_accuracy_cifar"
  "fig13_accuracy_cifar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_accuracy_cifar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
