# Empty compiler generated dependencies file for fig13_accuracy_cifar.
# This may be replaced when dependencies are built.
