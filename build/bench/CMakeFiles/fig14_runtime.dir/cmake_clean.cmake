file(REMOVE_RECURSE
  "CMakeFiles/fig14_runtime.dir/fig14_runtime.cpp.o"
  "CMakeFiles/fig14_runtime.dir/fig14_runtime.cpp.o.d"
  "fig14_runtime"
  "fig14_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
