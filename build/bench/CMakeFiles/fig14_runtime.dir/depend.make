# Empty dependencies file for fig14_runtime.
# This may be replaced when dependencies are built.
