file(REMOVE_RECURSE
  "CMakeFiles/summary_all_combos.dir/summary_all_combos.cpp.o"
  "CMakeFiles/summary_all_combos.dir/summary_all_combos.cpp.o.d"
  "summary_all_combos"
  "summary_all_combos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/summary_all_combos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
