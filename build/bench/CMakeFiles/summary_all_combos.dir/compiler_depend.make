# Empty compiler generated dependencies file for summary_all_combos.
# This may be replaced when dependencies are built.
