file(REMOVE_RECURSE
  "CMakeFiles/carbon_market_scenario.dir/carbon_market_scenario.cpp.o"
  "CMakeFiles/carbon_market_scenario.dir/carbon_market_scenario.cpp.o.d"
  "carbon_market_scenario"
  "carbon_market_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/carbon_market_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
