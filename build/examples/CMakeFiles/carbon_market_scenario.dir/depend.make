# Empty dependencies file for carbon_market_scenario.
# This may be replaced when dependencies are built.
