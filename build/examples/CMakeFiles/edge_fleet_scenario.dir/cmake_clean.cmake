file(REMOVE_RECURSE
  "CMakeFiles/edge_fleet_scenario.dir/edge_fleet_scenario.cpp.o"
  "CMakeFiles/edge_fleet_scenario.dir/edge_fleet_scenario.cpp.o.d"
  "edge_fleet_scenario"
  "edge_fleet_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_fleet_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
