# Empty compiler generated dependencies file for edge_fleet_scenario.
# This may be replaced when dependencies are built.
