file(REMOVE_RECURSE
  "CMakeFiles/nn_inference_demo.dir/nn_inference_demo.cpp.o"
  "CMakeFiles/nn_inference_demo.dir/nn_inference_demo.cpp.o.d"
  "nn_inference_demo"
  "nn_inference_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_inference_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
