# Empty compiler generated dependencies file for nn_inference_demo.
# This may be replaced when dependencies are built.
