
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bandit/epsilon_greedy.cpp" "src/bandit/CMakeFiles/cea_bandit.dir/epsilon_greedy.cpp.o" "gcc" "src/bandit/CMakeFiles/cea_bandit.dir/epsilon_greedy.cpp.o.d"
  "/root/repo/src/bandit/exp3.cpp" "src/bandit/CMakeFiles/cea_bandit.dir/exp3.cpp.o" "gcc" "src/bandit/CMakeFiles/cea_bandit.dir/exp3.cpp.o.d"
  "/root/repo/src/bandit/greedy_policy.cpp" "src/bandit/CMakeFiles/cea_bandit.dir/greedy_policy.cpp.o" "gcc" "src/bandit/CMakeFiles/cea_bandit.dir/greedy_policy.cpp.o.d"
  "/root/repo/src/bandit/ogd_policy.cpp" "src/bandit/CMakeFiles/cea_bandit.dir/ogd_policy.cpp.o" "gcc" "src/bandit/CMakeFiles/cea_bandit.dir/ogd_policy.cpp.o.d"
  "/root/repo/src/bandit/policy.cpp" "src/bandit/CMakeFiles/cea_bandit.dir/policy.cpp.o" "gcc" "src/bandit/CMakeFiles/cea_bandit.dir/policy.cpp.o.d"
  "/root/repo/src/bandit/random_policy.cpp" "src/bandit/CMakeFiles/cea_bandit.dir/random_policy.cpp.o" "gcc" "src/bandit/CMakeFiles/cea_bandit.dir/random_policy.cpp.o.d"
  "/root/repo/src/bandit/thompson.cpp" "src/bandit/CMakeFiles/cea_bandit.dir/thompson.cpp.o" "gcc" "src/bandit/CMakeFiles/cea_bandit.dir/thompson.cpp.o.d"
  "/root/repo/src/bandit/tsallis_inf.cpp" "src/bandit/CMakeFiles/cea_bandit.dir/tsallis_inf.cpp.o" "gcc" "src/bandit/CMakeFiles/cea_bandit.dir/tsallis_inf.cpp.o.d"
  "/root/repo/src/bandit/ucb2.cpp" "src/bandit/CMakeFiles/cea_bandit.dir/ucb2.cpp.o" "gcc" "src/bandit/CMakeFiles/cea_bandit.dir/ucb2.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/opt/CMakeFiles/cea_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cea_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
