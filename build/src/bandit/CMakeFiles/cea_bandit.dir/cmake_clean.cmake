file(REMOVE_RECURSE
  "CMakeFiles/cea_bandit.dir/epsilon_greedy.cpp.o"
  "CMakeFiles/cea_bandit.dir/epsilon_greedy.cpp.o.d"
  "CMakeFiles/cea_bandit.dir/exp3.cpp.o"
  "CMakeFiles/cea_bandit.dir/exp3.cpp.o.d"
  "CMakeFiles/cea_bandit.dir/greedy_policy.cpp.o"
  "CMakeFiles/cea_bandit.dir/greedy_policy.cpp.o.d"
  "CMakeFiles/cea_bandit.dir/ogd_policy.cpp.o"
  "CMakeFiles/cea_bandit.dir/ogd_policy.cpp.o.d"
  "CMakeFiles/cea_bandit.dir/policy.cpp.o"
  "CMakeFiles/cea_bandit.dir/policy.cpp.o.d"
  "CMakeFiles/cea_bandit.dir/random_policy.cpp.o"
  "CMakeFiles/cea_bandit.dir/random_policy.cpp.o.d"
  "CMakeFiles/cea_bandit.dir/thompson.cpp.o"
  "CMakeFiles/cea_bandit.dir/thompson.cpp.o.d"
  "CMakeFiles/cea_bandit.dir/tsallis_inf.cpp.o"
  "CMakeFiles/cea_bandit.dir/tsallis_inf.cpp.o.d"
  "CMakeFiles/cea_bandit.dir/ucb2.cpp.o"
  "CMakeFiles/cea_bandit.dir/ucb2.cpp.o.d"
  "libcea_bandit.a"
  "libcea_bandit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cea_bandit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
