file(REMOVE_RECURSE
  "libcea_bandit.a"
)
