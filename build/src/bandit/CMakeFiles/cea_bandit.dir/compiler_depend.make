# Empty compiler generated dependencies file for cea_bandit.
# This may be replaced when dependencies are built.
