
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/block_schedule.cpp" "src/core/CMakeFiles/cea_core.dir/block_schedule.cpp.o" "gcc" "src/core/CMakeFiles/cea_core.dir/block_schedule.cpp.o.d"
  "/root/repo/src/core/blocked_tsallis_inf.cpp" "src/core/CMakeFiles/cea_core.dir/blocked_tsallis_inf.cpp.o" "gcc" "src/core/CMakeFiles/cea_core.dir/blocked_tsallis_inf.cpp.o.d"
  "/root/repo/src/core/carbon_trader.cpp" "src/core/CMakeFiles/cea_core.dir/carbon_trader.cpp.o" "gcc" "src/core/CMakeFiles/cea_core.dir/carbon_trader.cpp.o.d"
  "/root/repo/src/core/controller.cpp" "src/core/CMakeFiles/cea_core.dir/controller.cpp.o" "gcc" "src/core/CMakeFiles/cea_core.dir/controller.cpp.o.d"
  "/root/repo/src/core/mpc_trader.cpp" "src/core/CMakeFiles/cea_core.dir/mpc_trader.cpp.o" "gcc" "src/core/CMakeFiles/cea_core.dir/mpc_trader.cpp.o.d"
  "/root/repo/src/core/pooled_tsallis.cpp" "src/core/CMakeFiles/cea_core.dir/pooled_tsallis.cpp.o" "gcc" "src/core/CMakeFiles/cea_core.dir/pooled_tsallis.cpp.o.d"
  "/root/repo/src/core/predictive_trader.cpp" "src/core/CMakeFiles/cea_core.dir/predictive_trader.cpp.o" "gcc" "src/core/CMakeFiles/cea_core.dir/predictive_trader.cpp.o.d"
  "/root/repo/src/core/price_predictor.cpp" "src/core/CMakeFiles/cea_core.dir/price_predictor.cpp.o" "gcc" "src/core/CMakeFiles/cea_core.dir/price_predictor.cpp.o.d"
  "/root/repo/src/core/regret.cpp" "src/core/CMakeFiles/cea_core.dir/regret.cpp.o" "gcc" "src/core/CMakeFiles/cea_core.dir/regret.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bandit/CMakeFiles/cea_bandit.dir/DependInfo.cmake"
  "/root/repo/build/src/trading/CMakeFiles/cea_trading.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/cea_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cea_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
