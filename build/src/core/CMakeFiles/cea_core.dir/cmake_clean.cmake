file(REMOVE_RECURSE
  "CMakeFiles/cea_core.dir/block_schedule.cpp.o"
  "CMakeFiles/cea_core.dir/block_schedule.cpp.o.d"
  "CMakeFiles/cea_core.dir/blocked_tsallis_inf.cpp.o"
  "CMakeFiles/cea_core.dir/blocked_tsallis_inf.cpp.o.d"
  "CMakeFiles/cea_core.dir/carbon_trader.cpp.o"
  "CMakeFiles/cea_core.dir/carbon_trader.cpp.o.d"
  "CMakeFiles/cea_core.dir/controller.cpp.o"
  "CMakeFiles/cea_core.dir/controller.cpp.o.d"
  "CMakeFiles/cea_core.dir/mpc_trader.cpp.o"
  "CMakeFiles/cea_core.dir/mpc_trader.cpp.o.d"
  "CMakeFiles/cea_core.dir/pooled_tsallis.cpp.o"
  "CMakeFiles/cea_core.dir/pooled_tsallis.cpp.o.d"
  "CMakeFiles/cea_core.dir/predictive_trader.cpp.o"
  "CMakeFiles/cea_core.dir/predictive_trader.cpp.o.d"
  "CMakeFiles/cea_core.dir/price_predictor.cpp.o"
  "CMakeFiles/cea_core.dir/price_predictor.cpp.o.d"
  "CMakeFiles/cea_core.dir/regret.cpp.o"
  "CMakeFiles/cea_core.dir/regret.cpp.o.d"
  "libcea_core.a"
  "libcea_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cea_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
