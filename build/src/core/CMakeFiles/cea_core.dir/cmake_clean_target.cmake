file(REMOVE_RECURSE
  "libcea_core.a"
)
