# Empty dependencies file for cea_core.
# This may be replaced when dependencies are built.
