
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/carbon_market.cpp" "src/data/CMakeFiles/cea_data.dir/carbon_market.cpp.o" "gcc" "src/data/CMakeFiles/cea_data.dir/carbon_market.cpp.o.d"
  "/root/repo/src/data/loss_profile.cpp" "src/data/CMakeFiles/cea_data.dir/loss_profile.cpp.o" "gcc" "src/data/CMakeFiles/cea_data.dir/loss_profile.cpp.o.d"
  "/root/repo/src/data/synthetic_dataset.cpp" "src/data/CMakeFiles/cea_data.dir/synthetic_dataset.cpp.o" "gcc" "src/data/CMakeFiles/cea_data.dir/synthetic_dataset.cpp.o.d"
  "/root/repo/src/data/topology.cpp" "src/data/CMakeFiles/cea_data.dir/topology.cpp.o" "gcc" "src/data/CMakeFiles/cea_data.dir/topology.cpp.o.d"
  "/root/repo/src/data/trace_io.cpp" "src/data/CMakeFiles/cea_data.dir/trace_io.cpp.o" "gcc" "src/data/CMakeFiles/cea_data.dir/trace_io.cpp.o.d"
  "/root/repo/src/data/workload.cpp" "src/data/CMakeFiles/cea_data.dir/workload.cpp.o" "gcc" "src/data/CMakeFiles/cea_data.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/cea_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cea_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
