file(REMOVE_RECURSE
  "CMakeFiles/cea_data.dir/carbon_market.cpp.o"
  "CMakeFiles/cea_data.dir/carbon_market.cpp.o.d"
  "CMakeFiles/cea_data.dir/loss_profile.cpp.o"
  "CMakeFiles/cea_data.dir/loss_profile.cpp.o.d"
  "CMakeFiles/cea_data.dir/synthetic_dataset.cpp.o"
  "CMakeFiles/cea_data.dir/synthetic_dataset.cpp.o.d"
  "CMakeFiles/cea_data.dir/topology.cpp.o"
  "CMakeFiles/cea_data.dir/topology.cpp.o.d"
  "CMakeFiles/cea_data.dir/trace_io.cpp.o"
  "CMakeFiles/cea_data.dir/trace_io.cpp.o.d"
  "CMakeFiles/cea_data.dir/workload.cpp.o"
  "CMakeFiles/cea_data.dir/workload.cpp.o.d"
  "libcea_data.a"
  "libcea_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cea_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
