file(REMOVE_RECURSE
  "libcea_data.a"
)
