# Empty compiler generated dependencies file for cea_data.
# This may be replaced when dependencies are built.
