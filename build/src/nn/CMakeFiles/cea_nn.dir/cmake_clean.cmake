file(REMOVE_RECURSE
  "CMakeFiles/cea_nn.dir/layers.cpp.o"
  "CMakeFiles/cea_nn.dir/layers.cpp.o.d"
  "CMakeFiles/cea_nn.dir/loss.cpp.o"
  "CMakeFiles/cea_nn.dir/loss.cpp.o.d"
  "CMakeFiles/cea_nn.dir/model.cpp.o"
  "CMakeFiles/cea_nn.dir/model.cpp.o.d"
  "CMakeFiles/cea_nn.dir/optimizer.cpp.o"
  "CMakeFiles/cea_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/cea_nn.dir/quantize.cpp.o"
  "CMakeFiles/cea_nn.dir/quantize.cpp.o.d"
  "CMakeFiles/cea_nn.dir/serialize.cpp.o"
  "CMakeFiles/cea_nn.dir/serialize.cpp.o.d"
  "CMakeFiles/cea_nn.dir/tensor.cpp.o"
  "CMakeFiles/cea_nn.dir/tensor.cpp.o.d"
  "CMakeFiles/cea_nn.dir/train.cpp.o"
  "CMakeFiles/cea_nn.dir/train.cpp.o.d"
  "CMakeFiles/cea_nn.dir/zoo.cpp.o"
  "CMakeFiles/cea_nn.dir/zoo.cpp.o.d"
  "libcea_nn.a"
  "libcea_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cea_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
