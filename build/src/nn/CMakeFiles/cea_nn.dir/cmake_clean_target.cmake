file(REMOVE_RECURSE
  "libcea_nn.a"
)
