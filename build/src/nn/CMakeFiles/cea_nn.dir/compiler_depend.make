# Empty compiler generated dependencies file for cea_nn.
# This may be replaced when dependencies are built.
