
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/brent.cpp" "src/opt/CMakeFiles/cea_opt.dir/brent.cpp.o" "gcc" "src/opt/CMakeFiles/cea_opt.dir/brent.cpp.o.d"
  "/root/repo/src/opt/projection.cpp" "src/opt/CMakeFiles/cea_opt.dir/projection.cpp.o" "gcc" "src/opt/CMakeFiles/cea_opt.dir/projection.cpp.o.d"
  "/root/repo/src/opt/simplex.cpp" "src/opt/CMakeFiles/cea_opt.dir/simplex.cpp.o" "gcc" "src/opt/CMakeFiles/cea_opt.dir/simplex.cpp.o.d"
  "/root/repo/src/opt/tsallis_step.cpp" "src/opt/CMakeFiles/cea_opt.dir/tsallis_step.cpp.o" "gcc" "src/opt/CMakeFiles/cea_opt.dir/tsallis_step.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cea_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
