file(REMOVE_RECURSE
  "CMakeFiles/cea_opt.dir/brent.cpp.o"
  "CMakeFiles/cea_opt.dir/brent.cpp.o.d"
  "CMakeFiles/cea_opt.dir/projection.cpp.o"
  "CMakeFiles/cea_opt.dir/projection.cpp.o.d"
  "CMakeFiles/cea_opt.dir/simplex.cpp.o"
  "CMakeFiles/cea_opt.dir/simplex.cpp.o.d"
  "CMakeFiles/cea_opt.dir/tsallis_step.cpp.o"
  "CMakeFiles/cea_opt.dir/tsallis_step.cpp.o.d"
  "libcea_opt.a"
  "libcea_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cea_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
