file(REMOVE_RECURSE
  "libcea_opt.a"
)
