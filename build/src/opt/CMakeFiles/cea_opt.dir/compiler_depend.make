# Empty compiler generated dependencies file for cea_opt.
# This may be replaced when dependencies are built.
