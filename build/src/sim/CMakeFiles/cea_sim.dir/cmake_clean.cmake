file(REMOVE_RECURSE
  "CMakeFiles/cea_sim.dir/environment.cpp.o"
  "CMakeFiles/cea_sim.dir/environment.cpp.o.d"
  "CMakeFiles/cea_sim.dir/experiment.cpp.o"
  "CMakeFiles/cea_sim.dir/experiment.cpp.o.d"
  "CMakeFiles/cea_sim.dir/metrics.cpp.o"
  "CMakeFiles/cea_sim.dir/metrics.cpp.o.d"
  "CMakeFiles/cea_sim.dir/report.cpp.o"
  "CMakeFiles/cea_sim.dir/report.cpp.o.d"
  "CMakeFiles/cea_sim.dir/simulator.cpp.o"
  "CMakeFiles/cea_sim.dir/simulator.cpp.o.d"
  "libcea_sim.a"
  "libcea_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cea_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
