file(REMOVE_RECURSE
  "libcea_sim.a"
)
