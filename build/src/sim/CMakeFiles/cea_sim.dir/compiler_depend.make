# Empty compiler generated dependencies file for cea_sim.
# This may be replaced when dependencies are built.
