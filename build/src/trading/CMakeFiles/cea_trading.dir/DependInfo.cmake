
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trading/lyapunov_trader.cpp" "src/trading/CMakeFiles/cea_trading.dir/lyapunov_trader.cpp.o" "gcc" "src/trading/CMakeFiles/cea_trading.dir/lyapunov_trader.cpp.o.d"
  "/root/repo/src/trading/offline_lp_trader.cpp" "src/trading/CMakeFiles/cea_trading.dir/offline_lp_trader.cpp.o" "gcc" "src/trading/CMakeFiles/cea_trading.dir/offline_lp_trader.cpp.o.d"
  "/root/repo/src/trading/random_trader.cpp" "src/trading/CMakeFiles/cea_trading.dir/random_trader.cpp.o" "gcc" "src/trading/CMakeFiles/cea_trading.dir/random_trader.cpp.o.d"
  "/root/repo/src/trading/threshold_trader.cpp" "src/trading/CMakeFiles/cea_trading.dir/threshold_trader.cpp.o" "gcc" "src/trading/CMakeFiles/cea_trading.dir/threshold_trader.cpp.o.d"
  "/root/repo/src/trading/trader.cpp" "src/trading/CMakeFiles/cea_trading.dir/trader.cpp.o" "gcc" "src/trading/CMakeFiles/cea_trading.dir/trader.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/opt/CMakeFiles/cea_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cea_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
