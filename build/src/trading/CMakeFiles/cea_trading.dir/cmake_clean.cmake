file(REMOVE_RECURSE
  "CMakeFiles/cea_trading.dir/lyapunov_trader.cpp.o"
  "CMakeFiles/cea_trading.dir/lyapunov_trader.cpp.o.d"
  "CMakeFiles/cea_trading.dir/offline_lp_trader.cpp.o"
  "CMakeFiles/cea_trading.dir/offline_lp_trader.cpp.o.d"
  "CMakeFiles/cea_trading.dir/random_trader.cpp.o"
  "CMakeFiles/cea_trading.dir/random_trader.cpp.o.d"
  "CMakeFiles/cea_trading.dir/threshold_trader.cpp.o"
  "CMakeFiles/cea_trading.dir/threshold_trader.cpp.o.d"
  "CMakeFiles/cea_trading.dir/trader.cpp.o"
  "CMakeFiles/cea_trading.dir/trader.cpp.o.d"
  "libcea_trading.a"
  "libcea_trading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cea_trading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
