file(REMOVE_RECURSE
  "libcea_trading.a"
)
