# Empty compiler generated dependencies file for cea_trading.
# This may be replaced when dependencies are built.
