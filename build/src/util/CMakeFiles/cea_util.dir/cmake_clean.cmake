file(REMOVE_RECURSE
  "CMakeFiles/cea_util.dir/csv.cpp.o"
  "CMakeFiles/cea_util.dir/csv.cpp.o.d"
  "CMakeFiles/cea_util.dir/rng.cpp.o"
  "CMakeFiles/cea_util.dir/rng.cpp.o.d"
  "CMakeFiles/cea_util.dir/stats.cpp.o"
  "CMakeFiles/cea_util.dir/stats.cpp.o.d"
  "CMakeFiles/cea_util.dir/table.cpp.o"
  "CMakeFiles/cea_util.dir/table.cpp.o.d"
  "libcea_util.a"
  "libcea_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cea_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
