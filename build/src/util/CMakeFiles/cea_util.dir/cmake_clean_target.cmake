file(REMOVE_RECURSE
  "libcea_util.a"
)
