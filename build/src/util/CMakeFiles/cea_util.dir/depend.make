# Empty dependencies file for cea_util.
# This may be replaced when dependencies are built.
