file(REMOVE_RECURSE
  "CMakeFiles/test_bandit.dir/bandit/test_ogd.cpp.o"
  "CMakeFiles/test_bandit.dir/bandit/test_ogd.cpp.o.d"
  "CMakeFiles/test_bandit.dir/bandit/test_policies.cpp.o"
  "CMakeFiles/test_bandit.dir/bandit/test_policies.cpp.o.d"
  "CMakeFiles/test_bandit.dir/bandit/test_regret_behaviour.cpp.o"
  "CMakeFiles/test_bandit.dir/bandit/test_regret_behaviour.cpp.o.d"
  "CMakeFiles/test_bandit.dir/bandit/test_thompson.cpp.o"
  "CMakeFiles/test_bandit.dir/bandit/test_thompson.cpp.o.d"
  "test_bandit"
  "test_bandit.pdb"
  "test_bandit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bandit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
