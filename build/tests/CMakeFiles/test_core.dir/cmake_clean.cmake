file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_block_schedule.cpp.o"
  "CMakeFiles/test_core.dir/core/test_block_schedule.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_blocked_tsallis.cpp.o"
  "CMakeFiles/test_core.dir/core/test_blocked_tsallis.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_carbon_trader.cpp.o"
  "CMakeFiles/test_core.dir/core/test_carbon_trader.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_controller.cpp.o"
  "CMakeFiles/test_core.dir/core/test_controller.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_mpc_trader.cpp.o"
  "CMakeFiles/test_core.dir/core/test_mpc_trader.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_pooled_tsallis.cpp.o"
  "CMakeFiles/test_core.dir/core/test_pooled_tsallis.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_predictive_trader.cpp.o"
  "CMakeFiles/test_core.dir/core/test_predictive_trader.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_regret.cpp.o"
  "CMakeFiles/test_core.dir/core/test_regret.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_trader_properties.cpp.o"
  "CMakeFiles/test_core.dir/core/test_trader_properties.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
