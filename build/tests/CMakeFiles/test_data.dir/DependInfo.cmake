
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/data/test_carbon_market.cpp" "tests/CMakeFiles/test_data.dir/data/test_carbon_market.cpp.o" "gcc" "tests/CMakeFiles/test_data.dir/data/test_carbon_market.cpp.o.d"
  "/root/repo/tests/data/test_loss_profile.cpp" "tests/CMakeFiles/test_data.dir/data/test_loss_profile.cpp.o" "gcc" "tests/CMakeFiles/test_data.dir/data/test_loss_profile.cpp.o.d"
  "/root/repo/tests/data/test_synthetic_dataset.cpp" "tests/CMakeFiles/test_data.dir/data/test_synthetic_dataset.cpp.o" "gcc" "tests/CMakeFiles/test_data.dir/data/test_synthetic_dataset.cpp.o.d"
  "/root/repo/tests/data/test_topology.cpp" "tests/CMakeFiles/test_data.dir/data/test_topology.cpp.o" "gcc" "tests/CMakeFiles/test_data.dir/data/test_topology.cpp.o.d"
  "/root/repo/tests/data/test_trace_io.cpp" "tests/CMakeFiles/test_data.dir/data/test_trace_io.cpp.o" "gcc" "tests/CMakeFiles/test_data.dir/data/test_trace_io.cpp.o.d"
  "/root/repo/tests/data/test_workload.cpp" "tests/CMakeFiles/test_data.dir/data/test_workload.cpp.o" "gcc" "tests/CMakeFiles/test_data.dir/data/test_workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/cea_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cea_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bandit/CMakeFiles/cea_bandit.dir/DependInfo.cmake"
  "/root/repo/build/src/trading/CMakeFiles/cea_trading.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/cea_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/cea_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/cea_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cea_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
