file(REMOVE_RECURSE
  "CMakeFiles/test_data.dir/data/test_carbon_market.cpp.o"
  "CMakeFiles/test_data.dir/data/test_carbon_market.cpp.o.d"
  "CMakeFiles/test_data.dir/data/test_loss_profile.cpp.o"
  "CMakeFiles/test_data.dir/data/test_loss_profile.cpp.o.d"
  "CMakeFiles/test_data.dir/data/test_synthetic_dataset.cpp.o"
  "CMakeFiles/test_data.dir/data/test_synthetic_dataset.cpp.o.d"
  "CMakeFiles/test_data.dir/data/test_topology.cpp.o"
  "CMakeFiles/test_data.dir/data/test_topology.cpp.o.d"
  "CMakeFiles/test_data.dir/data/test_trace_io.cpp.o"
  "CMakeFiles/test_data.dir/data/test_trace_io.cpp.o.d"
  "CMakeFiles/test_data.dir/data/test_workload.cpp.o"
  "CMakeFiles/test_data.dir/data/test_workload.cpp.o.d"
  "test_data"
  "test_data.pdb"
  "test_data[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
