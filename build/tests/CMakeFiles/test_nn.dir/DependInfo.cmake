
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/nn/test_conv_reference.cpp" "tests/CMakeFiles/test_nn.dir/nn/test_conv_reference.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_conv_reference.cpp.o.d"
  "/root/repo/tests/nn/test_depthwise_reference.cpp" "tests/CMakeFiles/test_nn.dir/nn/test_depthwise_reference.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_depthwise_reference.cpp.o.d"
  "/root/repo/tests/nn/test_dropout.cpp" "tests/CMakeFiles/test_nn.dir/nn/test_dropout.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_dropout.cpp.o.d"
  "/root/repo/tests/nn/test_gradients.cpp" "tests/CMakeFiles/test_nn.dir/nn/test_gradients.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_gradients.cpp.o.d"
  "/root/repo/tests/nn/test_layers.cpp" "tests/CMakeFiles/test_nn.dir/nn/test_layers.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_layers.cpp.o.d"
  "/root/repo/tests/nn/test_loss.cpp" "tests/CMakeFiles/test_nn.dir/nn/test_loss.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_loss.cpp.o.d"
  "/root/repo/tests/nn/test_model.cpp" "tests/CMakeFiles/test_nn.dir/nn/test_model.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_model.cpp.o.d"
  "/root/repo/tests/nn/test_optimizer.cpp" "tests/CMakeFiles/test_nn.dir/nn/test_optimizer.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_optimizer.cpp.o.d"
  "/root/repo/tests/nn/test_quantize.cpp" "tests/CMakeFiles/test_nn.dir/nn/test_quantize.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_quantize.cpp.o.d"
  "/root/repo/tests/nn/test_serialize.cpp" "tests/CMakeFiles/test_nn.dir/nn/test_serialize.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_serialize.cpp.o.d"
  "/root/repo/tests/nn/test_tensor.cpp" "tests/CMakeFiles/test_nn.dir/nn/test_tensor.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_tensor.cpp.o.d"
  "/root/repo/tests/nn/test_train.cpp" "tests/CMakeFiles/test_nn.dir/nn/test_train.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_train.cpp.o.d"
  "/root/repo/tests/nn/test_zoo.cpp" "tests/CMakeFiles/test_nn.dir/nn/test_zoo.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_zoo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/cea_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cea_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bandit/CMakeFiles/cea_bandit.dir/DependInfo.cmake"
  "/root/repo/build/src/trading/CMakeFiles/cea_trading.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/cea_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/cea_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/cea_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cea_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
