file(REMOVE_RECURSE
  "CMakeFiles/test_nn.dir/nn/test_conv_reference.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_conv_reference.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/test_depthwise_reference.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_depthwise_reference.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/test_dropout.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_dropout.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/test_gradients.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_gradients.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/test_layers.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_layers.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/test_loss.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_loss.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/test_model.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_model.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/test_optimizer.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_optimizer.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/test_quantize.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_quantize.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/test_serialize.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_serialize.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/test_tensor.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_tensor.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/test_train.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_train.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/test_zoo.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_zoo.cpp.o.d"
  "test_nn"
  "test_nn.pdb"
  "test_nn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
