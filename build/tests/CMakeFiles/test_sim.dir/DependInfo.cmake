
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/test_edge_cases.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_edge_cases.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_edge_cases.cpp.o.d"
  "/root/repo/tests/sim/test_environment.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_environment.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_environment.cpp.o.d"
  "/root/repo/tests/sim/test_experiment.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_experiment.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_experiment.cpp.o.d"
  "/root/repo/tests/sim/test_failure_injection.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_failure_injection.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_failure_injection.cpp.o.d"
  "/root/repo/tests/sim/test_invariants.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_invariants.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_invariants.cpp.o.d"
  "/root/repo/tests/sim/test_metrics.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_metrics.cpp.o.d"
  "/root/repo/tests/sim/test_nonstationary.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_nonstationary.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_nonstationary.cpp.o.d"
  "/root/repo/tests/sim/test_parallel.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_parallel.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_parallel.cpp.o.d"
  "/root/repo/tests/sim/test_replace_traces.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_replace_traces.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_replace_traces.cpp.o.d"
  "/root/repo/tests/sim/test_report.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_report.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_report.cpp.o.d"
  "/root/repo/tests/sim/test_simulator.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_simulator.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/cea_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cea_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bandit/CMakeFiles/cea_bandit.dir/DependInfo.cmake"
  "/root/repo/build/src/trading/CMakeFiles/cea_trading.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/cea_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/cea_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/cea_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cea_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
