file(REMOVE_RECURSE
  "CMakeFiles/test_sim.dir/sim/test_edge_cases.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_edge_cases.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_environment.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_environment.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_experiment.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_experiment.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_failure_injection.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_failure_injection.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_invariants.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_invariants.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_metrics.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_metrics.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_nonstationary.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_nonstationary.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_parallel.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_parallel.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_replace_traces.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_replace_traces.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_report.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_report.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_simulator.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_simulator.cpp.o.d"
  "test_sim"
  "test_sim.pdb"
  "test_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
