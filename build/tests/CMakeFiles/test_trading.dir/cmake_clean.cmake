file(REMOVE_RECURSE
  "CMakeFiles/test_trading.dir/trading/test_offline_lp.cpp.o"
  "CMakeFiles/test_trading.dir/trading/test_offline_lp.cpp.o.d"
  "CMakeFiles/test_trading.dir/trading/test_traders.cpp.o"
  "CMakeFiles/test_trading.dir/trading/test_traders.cpp.o.d"
  "test_trading"
  "test_trading.pdb"
  "test_trading[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
