# Empty dependencies file for test_trading.
# This may be replaced when dependencies are built.
