// Carbon-market scenario: isolates the trading half of the system. Model
// selection is pinned to each edge's hindsight-best model so that every
// trader faces the same emission stream, then Algorithm 2 is compared with
// the Lyapunov, Threshold, and Random baselines and the offline LP across
// progressively tighter carbon caps.
#include <cstdio>
#include <vector>

#include "core/carbon_trader.h"
#include "core/regret.h"
#include "sim/experiment.h"
#include "sim/simulator.h"
#include "trading/lyapunov_trader.h"
#include "trading/offline_lp_trader.h"
#include "trading/random_trader.h"
#include "trading/threshold_trader.h"
#include "util/table.h"

namespace {

struct TraderRow {
  std::string name;
  cea::trading::TraderFactory factory;
};

}  // namespace

int main() {
  using namespace cea;

  std::printf("Trading comparison under fixed (hindsight-best) models\n\n");

  for (const double cap : {250.0, 500.0, 750.0}) {
    sim::SimConfig config;
    config.num_edges = 10;
    config.carbon_cap = cap;
    config.seed = 11;
    const auto env = sim::Environment::make_parametric(config);
    sim::Simulator simulator(env);

    std::vector<std::size_t> best(env.num_edges());
    for (std::size_t i = 0; i < env.num_edges(); ++i)
      best[i] = env.best_model(i);

    const std::vector<TraderRow> traders = {
        {"OnlinePD (ours)", core::OnlineCarbonTrader::factory()},
        {"Lyapunov", trading::LyapunovTrader::factory()},
        {"Threshold", trading::ThresholdTrader::factory()},
        {"Random", trading::RandomTrader::factory()},
    };

    std::printf("carbon cap = %.0f units\n", cap);
    Table table({"trader", "trading cost", "net bought", "fit",
                 "unit cost"});
    sim::RunResult reference;
    for (const auto& row : traders) {
      const auto result = simulator.run_fixed(best, row.factory, 3, row.name);
      table.add_row(row.name,
                    {result.total_trading_cost(),
                     result.total_buys() - result.total_sells(),
                     core::fit(result.emissions, result.buys, result.sells,
                               cap),
                     result.unit_purchase_cost()},
                    2);
      if (row.name == "Random") reference = result;
    }

    // Offline LP with full knowledge of prices and emissions.
    const auto offline = sim::run_offline(env, 3);
    table.add_row("Offline LP",
                  {offline.total_trading_cost(),
                   offline.total_buys() - offline.total_sells(),
                   core::fit(offline.emissions, offline.buys, offline.sells,
                             cap),
                   offline.unit_purchase_cost()},
                  2);
    table.print();
    std::printf("  (total emissions: %.1f units)\n\n",
                reference.total_emissions());
  }
  return 0;
}
