// Extending the library: implement a custom model-selection policy
// (explore-then-commit) against the bandit::ModelSelectionPolicy interface
// and plug it into the simulator next to the built-in algorithms.
#include <cstdio>
#include <memory>

#include "bandit/policy.h"
#include "core/blocked_tsallis_inf.h"
#include "core/carbon_trader.h"
#include "sim/experiment.h"
#include "sim/simulator.h"
#include "util/table.h"

namespace {

using namespace cea;

/// Explore-then-commit: round-robin every model `explore_rounds` times,
/// then commit to the best empirical mean for the rest of the horizon.
/// Simple, switch-frugal, but unable to recover from unlucky exploration —
/// a useful contrast to Algorithm 1's anytime guarantees.
class ExploreThenCommit final : public bandit::ModelSelectionPolicy {
 public:
  ExploreThenCommit(const bandit::PolicyContext& context,
                    std::size_t explore_rounds)
      : stats_(context.num_models),
        explore_slots_(explore_rounds * context.num_models) {}

  std::size_t select(std::size_t t) override {
    if (t < explore_slots_) return t % stats_.num_arms();
    if (!committed_) {
      committed_arm_ = stats_.best_arm();
      committed_ = true;
    }
    return committed_arm_;
  }

  void feedback(std::size_t /*t*/, std::size_t arm, double loss) override {
    if (!committed_) stats_.observe(arm, loss);
  }

  std::string name() const override { return "ETC"; }

  static bandit::PolicyFactory factory(std::size_t explore_rounds = 4) {
    return [explore_rounds](const bandit::PolicyContext& context) {
      return std::make_unique<ExploreThenCommit>(context, explore_rounds);
    };
  }

 private:
  bandit::ArmStats stats_;
  std::size_t explore_slots_;
  std::size_t committed_arm_ = 0;
  bool committed_ = false;
};

}  // namespace

int main() {
  sim::SimConfig config;
  config.num_edges = 10;
  config.seed = 21;
  // Few loss observations per slot: slot averages are noisy, so one-round
  // exploration can commit to the wrong model.
  config.loss_draw_cap = 2;
  const auto env = sim::Environment::make_parametric(config);

  // Pair the custom policy with the paper's Algorithm 2 trader and race it
  // against "Ours" and the Offline reference.
  const std::vector<sim::AlgorithmCombo> contenders = {
      sim::ours_combo(),
      {"ETC-PD", ExploreThenCommit::factory(4),
       core::OnlineCarbonTrader::factory()},
      {"ETC1-PD", ExploreThenCommit::factory(1),
       core::OnlineCarbonTrader::factory()},
  };

  Table table({"algorithm", "total cost", "switches", "accuracy"});
  for (const auto& combo : contenders) {
    const auto result = sim::run_combo_averaged(env, combo, 5, 1);
    table.add_row(combo.name,
                  {result.settled_total_cost(),
                   static_cast<double>(result.total_switches),
                   result.mean_accuracy()},
                  2);
  }
  const auto offline = sim::run_offline_averaged(env, 5, 1);
  table.add_row("Offline",
                {offline.settled_total_cost(),
                 static_cast<double>(offline.total_switches),
                 offline.mean_accuracy()},
                2);
  table.print();

  std::printf(
      "\nOn a short, stationary instance with clear gaps, explore-then-commit\n"
      "is hard to beat — it stops exploring. Algorithm 1 keeps a tail of\n"
      "exploration, which costs here but is what buys its anytime sub-linear\n"
      "regret: ETC has no such guarantee (an unlucky exploration phase or a\n"
      "shifted environment leaves it committed to the wrong model forever).\n"
      "This example is about the extension API; see bench/fig10_regret for\n"
      "the guarantee-backed comparison.\n");
  return 0;
}
