// Edge-fleet scenario: drives the CarbonNeutralController facade directly
// through the per-slot protocol of Fig. 2 — the integration surface a
// production deployment would use (the simulator is bypassed on purpose to
// demonstrate the public API).
//
// A fleet of heterogeneous edges serves diurnal workloads; the controller
// learns the best model per edge while trading allowances online.
#include <cstdio>
#include <vector>

#include "core/controller.h"
#include "core/regret.h"
#include "sim/environment.h"
#include "util/table.h"

int main() {
  using namespace cea;

  sim::SimConfig config;
  config.num_edges = 8;
  config.seed = 7;
  const auto env = sim::Environment::make_parametric(config);

  // Wire the controller from the environment's static facts.
  std::vector<bandit::PolicyContext> edge_contexts(env.num_edges());
  for (std::size_t i = 0; i < env.num_edges(); ++i) {
    edge_contexts[i].num_models = env.num_models();
    edge_contexts[i].switching_cost = env.switching_cost(i);
    edge_contexts[i].seed = 1000 + i;
    edge_contexts[i].horizon = env.horizon();
  }
  trading::TraderContext trader_context;
  trader_context.horizon = env.horizon();
  trader_context.carbon_cap = config.carbon_cap;
  trader_context.max_trade_per_slot = config.max_trade_per_slot;

  core::CarbonNeutralController controller(std::move(edge_contexts),
                                           trader_context);

  Rng draw_rng(99);
  std::vector<std::size_t> prev(env.num_edges(), SIZE_MAX);
  std::vector<double> emissions, buys, sells;
  double total_cost = 0.0;
  std::size_t switches = 0;

  for (std::size_t t = 0; t < env.horizon(); ++t) {
    // Step 1: model placement for every edge.
    const auto models = controller.select_models(t);
    // Step 2: trading decision for the slot.
    const trading::TradeObservation quote{env.prices().buy[t],
                                          env.prices().sell[t]};
    const auto trade = controller.decide_trade(t, quote);

    double energy_kwh = 0.0;
    for (std::size_t i = 0; i < env.num_edges(); ++i) {
      const auto n = models[i];
      if (n != prev[i]) {
        total_cost += env.switching_cost(i);
        energy_kwh += env.transfer_energy(i, n);
        ++switches;
      }
      prev[i] = n;

      // Steps 2.1-2.3: stream the slot's samples through the hosted model
      // (the empirical loss profile plays the role of real inference here;
      // see nn_inference_demo for live neural-network inference).
      const auto arrivals = static_cast<std::size_t>(env.workload()[i][t]);
      const std::size_t draws = std::min<std::size_t>(arrivals, 256);
      double loss_sum = 0.0;
      for (std::size_t d = 0; d < draws; ++d)
        loss_sum += env.models()[n].profile.draw(draw_rng).loss;
      const double avg_loss =
          draws > 0 ? loss_sum / static_cast<double>(draws) : 0.0;

      // Steps 3-4: feed the observed loss back into the bandit.
      controller.report_inference(t, i, n,
                                  avg_loss + env.computation_cost(i, n));
      total_cost +=
          env.models()[n].profile.mean_loss() + env.computation_cost(i, n);
      energy_kwh +=
          env.models()[n].energy_per_sample * static_cast<double>(arrivals);
    }

    const double emission = config.emission_rate * energy_kwh;
    controller.report_slot(t, emission, quote, trade);
    total_cost += trade.cost(quote);
    emissions.push_back(emission);
    buys.push_back(trade.buy);
    sells.push_back(trade.sell);
  }

  std::printf("Fleet of %zu edges over %zu slots\n", env.num_edges(),
              env.horizon());
  std::printf("  total cost        : %.1f\n", total_cost);
  std::printf("  model switches    : %zu (%.2f per edge)\n", switches,
              static_cast<double>(switches) /
                  static_cast<double>(env.num_edges()));
  std::printf("  carbon fit        : %.2f units uncovered\n",
              core::fit(emissions, buys, sells, config.carbon_cap));
  std::printf("  final dual lambda : %.3f (cent/unit carbon pressure)\n\n",
              controller.trader().lambda());

  Table table({"edge", "u_i", "best model (hindsight)", "hosted most",
               "late-horizon prob"});
  for (std::size_t i = 0; i < env.num_edges(); ++i) {
    const auto& policy = controller.edge_policy(i);
    const auto& probs = policy.current_probabilities();
    std::size_t hosted = 0;
    for (std::size_t n = 1; n < probs.size(); ++n)
      if (probs[n] > probs[hosted]) hosted = n;
    table.add_row({std::to_string(i), fmt(env.switching_cost(i), 2),
                   env.models()[env.best_model(i)].name,
                   env.models()[hosted].name, fmt(probs[hosted], 3)});
  }
  table.print();
  return 0;
}
