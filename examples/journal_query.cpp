// Decision-journal query tool (obs/journal.h): verify a journal's
// checksums, filter and export its records, or reconstruct the
// serve_daemon trace CSV bit-for-bit from the journaled decisions.
//
//   journal_query <dir> --verify
//   journal_query <dir> [--tenant NAME] [--from S] [--to S]
//                       [--format csv|json] [--out PATH]
//   journal_query <dir> --format trace --out trace.csv
//
// Trace mode folds duplicate (tenant, slot) records — a daemon restored
// from a checkpoint re-executes the slots after it bit-identically, so
// duplicates must be byte-identical; a differing duplicate is reported as
// corruption. The rebuilt CSV is byte-comparable (`cmp`) against
// serve_daemon --trace-out of the same run.
//
// Exit codes: 0 success, 1 bad usage, 2 runtime failure, 3 corrupt or
// inconsistent journal.

#include <cstdio>
#include <cstring>
#include <exception>
#include <map>
#include <string>
#include <vector>

#include "obs/journal.h"
#include "util/csv.h"
#include "util/numio.h"

namespace {

using namespace cea;

struct Args {
  std::string directory;
  bool verify = false;
  std::string format = "csv";  // csv | json | trace
  std::string tenant;          // empty = all
  std::size_t from_slot = 0;
  std::size_t to_slot = static_cast<std::size_t>(-1);
  std::string out;  // empty = stdout (trace mode requires a path)
};

bool parse_args(int argc, char** argv, Args& args) {
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    const char* v = nullptr;
    if (!std::strcmp(a, "--verify")) {
      args.verify = true;
    } else if (!std::strcmp(a, "--format") && (v = need_value(i))) {
      args.format = v;
    } else if (!std::strcmp(a, "--tenant") && (v = need_value(i))) {
      args.tenant = v;
    } else if (!std::strcmp(a, "--from") && (v = need_value(i))) {
      args.from_slot = std::stoul(v);
    } else if (!std::strcmp(a, "--to") && (v = need_value(i))) {
      args.to_slot = std::stoul(v);
    } else if (!std::strcmp(a, "--out") && (v = need_value(i))) {
      args.out = v;
    } else if (a[0] != '-' && args.directory.empty()) {
      args.directory = a;
    } else {
      std::fprintf(stderr, "unknown or incomplete flag: %s\n", a);
      return false;
    }
  }
  if (args.directory.empty()) {
    std::fprintf(stderr,
                 "usage: journal_query <dir> [--verify] [--tenant NAME] "
                 "[--from S] [--to S] [--format csv|json|trace] "
                 "[--out PATH]\n");
    return false;
  }
  return true;
}

bool selected(const Args& args, const obs::JournalRecord& record) {
  if (!args.tenant.empty() && record.tenant != args.tenant) return false;
  return record.slot >= args.from_slot && record.slot <= args.to_slot;
}

std::string counts_field(const std::vector<std::uint64_t>& counts) {
  if (counts.empty()) return "-";
  std::string out;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (i > 0) out += ':';
    out += util::format_u64(counts[i]);
  }
  return out;
}

void write_csv(FILE* out, const std::vector<obs::JournalRecord>& records,
               const Args& args) {
  std::fprintf(out,
               "kind,tenant,slot,model_counts,switches_total,solver_lanes,"
               "arena_overflows,trader_dual,buy,sell,buy_price,sell_price,"
               "emission,balance,carbon_cap,inference_cost,switching_cost,"
               "trading_cost,accuracy,workload,alert,value,threshold\n");
  for (const obs::JournalRecord& r : records) {
    if (!selected(args, r)) continue;
    const bool slot_kind = r.kind == obs::JournalRecord::Kind::kSlot;
    auto d = [](double value) { return util::format_double_exact(value); };
    std::fprintf(
        out, "%s,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s,"
             "%s,%s,%s\n",
        slot_kind ? "slot" : "alert", r.tenant.c_str(),
        util::format_u64(r.slot).c_str(), counts_field(r.model_counts).c_str(),
        util::format_u64(r.switches_total).c_str(),
        util::format_u64(r.solver_lanes).c_str(),
        util::format_u64(r.arena_overflows).c_str(), d(r.trader_dual).c_str(),
        d(r.buy).c_str(), d(r.sell).c_str(), d(r.buy_price).c_str(),
        d(r.sell_price).c_str(), d(r.emission).c_str(), d(r.balance).c_str(),
        d(r.carbon_cap).c_str(), d(r.inference_cost).c_str(),
        d(r.switching_cost).c_str(), d(r.trading_cost).c_str(),
        d(r.accuracy).c_str(), d(r.workload).c_str(),
        slot_kind ? "-" : r.alert.c_str(), d(r.value).c_str(),
        d(r.threshold).c_str());
  }
}

void write_json(FILE* out, const std::vector<obs::JournalRecord>& records,
                const Args& args) {
  std::fprintf(out, "[\n");
  bool first = true;
  for (const obs::JournalRecord& r : records) {
    if (!selected(args, r)) continue;
    auto d = [](double value) { return util::format_double_exact(value); };
    if (!first) std::fprintf(out, ",\n");
    first = false;
    if (r.kind == obs::JournalRecord::Kind::kSlot) {
      std::fprintf(
          out,
          "  {\"kind\": \"slot\", \"tenant\": \"%s\", \"slot\": %s, "
          "\"model_counts\": \"%s\", \"switches_total\": %s, "
          "\"solver_lanes\": %s, \"arena_overflows\": %s, "
          "\"trader_dual\": \"%s\", \"buy\": \"%s\", \"sell\": \"%s\", "
          "\"buy_price\": \"%s\", \"sell_price\": \"%s\", "
          "\"emission\": \"%s\", \"balance\": \"%s\", "
          "\"carbon_cap\": \"%s\", \"inference_cost\": \"%s\", "
          "\"switching_cost\": \"%s\", \"trading_cost\": \"%s\", "
          "\"accuracy\": \"%s\", \"workload\": \"%s\"}",
          r.tenant.c_str(), util::format_u64(r.slot).c_str(),
          counts_field(r.model_counts).c_str(),
          util::format_u64(r.switches_total).c_str(),
          util::format_u64(r.solver_lanes).c_str(),
          util::format_u64(r.arena_overflows).c_str(),
          d(r.trader_dual).c_str(), d(r.buy).c_str(), d(r.sell).c_str(),
          d(r.buy_price).c_str(), d(r.sell_price).c_str(),
          d(r.emission).c_str(), d(r.balance).c_str(),
          d(r.carbon_cap).c_str(), d(r.inference_cost).c_str(),
          d(r.switching_cost).c_str(), d(r.trading_cost).c_str(),
          d(r.accuracy).c_str(), d(r.workload).c_str());
    } else {
      std::fprintf(out,
                   "  {\"kind\": \"alert\", \"tenant\": \"%s\", "
                   "\"slot\": %s, \"alert\": \"%s\", \"value\": \"%s\", "
                   "\"threshold\": \"%s\"}",
                   r.tenant.c_str(), util::format_u64(r.slot).c_str(),
                   r.alert.c_str(), d(r.value).c_str(),
                   d(r.threshold).c_str());
    }
  }
  std::fprintf(out, "\n]\n");
}

/// Rebuild serve_daemon's --trace-out CSV from the journaled slot records:
/// per tenant (journal first-appearance order == tenant-index order), the
/// eight per-slot series plus the scalars row, hex-float exact. Duplicate
/// (tenant, slot) records from checkpoint restores must be byte-identical
/// (the later run re-executed the slot bit-exactly); the last one wins.
/// Throws JournalError on differing duplicates or slot gaps.
void write_trace(const std::vector<obs::JournalRecord>& records,
                 const std::string& path) {
  std::vector<std::string> order;
  std::map<std::string, std::map<std::uint64_t, obs::JournalRecord>> slots;
  for (const obs::JournalRecord& r : records) {
    if (r.kind != obs::JournalRecord::Kind::kSlot) continue;
    auto [it, inserted] = slots[r.tenant].try_emplace(r.slot, r);
    if (slots[r.tenant].size() == 1 && inserted) order.push_back(r.tenant);
    if (!inserted) {
      if (obs::format_record(it->second) != obs::format_record(r)) {
        throw obs::JournalError(
            "tenant '" + r.tenant + "' slot " + std::to_string(r.slot) +
            ": duplicate records differ (restored run diverged)");
      }
      it->second = r;
    }
  }
  CsvWriter writer(path);
  for (const std::string& tenant : order) {
    const auto& by_slot = slots[tenant];
    std::vector<double> inference, switching, trading, emissions, buys,
        sells, accuracy, workload;
    std::uint64_t expected = 0;
    const obs::JournalRecord* last = nullptr;
    for (const auto& [slot, record] : by_slot) {
      if (slot != expected) {
        throw obs::JournalError("tenant '" + tenant + "': slot " +
                                std::to_string(expected) +
                                " missing from the journal");
      }
      ++expected;
      inference.push_back(record.inference_cost);
      switching.push_back(record.switching_cost);
      trading.push_back(record.trading_cost);
      emissions.push_back(record.emission);
      buys.push_back(record.buy);
      sells.push_back(record.sell);
      accuracy.push_back(record.accuracy);
      workload.push_back(record.workload);
      last = &record;
    }
    const std::string prefix = tenant + ".";
    writer.write_row_exact(prefix + "inference_cost", inference);
    writer.write_row_exact(prefix + "switching_cost", switching);
    writer.write_row_exact(prefix + "trading_cost", trading);
    writer.write_row_exact(prefix + "emissions", emissions);
    writer.write_row_exact(prefix + "buys", buys);
    writer.write_row_exact(prefix + "sells", sells);
    writer.write_row_exact(prefix + "accuracy", accuracy);
    writer.write_row_exact(prefix + "workload", workload);
    writer.write_row_exact(
        prefix + "scalars",
        {static_cast<double>(last->switches_total), last->balance});
  }
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) return 1;
  try {
    if (args.verify) {
      const obs::JournalStats stats = obs::verify_journal(args.directory);
      if (stats.ok) {
        std::printf("journal_query: OK — %zu record(s) in %zu segment(s)\n",
                    stats.records, stats.segments);
        return 0;
      }
      std::fprintf(stderr, "journal_query: CORRUPT — %s\n",
                   stats.error.c_str());
      return 3;
    }

    const std::vector<obs::JournalRecord> records =
        obs::read_journal(args.directory);
    if (args.format == "trace") {
      if (args.out.empty()) {
        std::fprintf(stderr, "journal_query: --format trace needs --out\n");
        return 1;
      }
      write_trace(records, args.out);
      std::printf("journal_query: trace written to %s\n", args.out.c_str());
      return 0;
    }

    FILE* out = stdout;
    if (!args.out.empty()) {
      out = std::fopen(args.out.c_str(), "w");
      if (out == nullptr) {
        std::fprintf(stderr, "journal_query: cannot open %s\n",
                     args.out.c_str());
        return 2;
      }
    }
    if (args.format == "csv") {
      write_csv(out, records, args);
    } else if (args.format == "json") {
      write_json(out, records, args);
    } else {
      std::fprintf(stderr, "journal_query: unknown format '%s'\n",
                   args.format.c_str());
      if (out != stdout) std::fclose(out);
      return 1;
    }
    if (out != stdout) std::fclose(out);
    return 0;
  } catch (const obs::JournalError& e) {
    std::fprintf(stderr, "journal_query: %s\n", e.what());
    return 3;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "journal_query: %s\n", e.what());
    return 2;
  }
}
