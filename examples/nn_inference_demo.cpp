// Live neural-network inference demo: trains a small MNIST-like model zoo
// from scratch (the nn substrate), then runs the paper's per-slot workflow
// with *real* forward passes instead of loss-profile draws — Step 2.1
// receive feature, Step 2.2 infer, Step 2.3 receive ground truth, Step 3
// compute the squared loss that feeds Algorithm 1.
#include <cstdio>
#include <vector>

#include "core/blocked_tsallis_inf.h"
#include "data/synthetic_dataset.h"
#include "nn/loss.h"
#include "nn/train.h"
#include "nn/zoo.h"
#include "util/table.h"

int main() {
  using namespace cea;

  // Train three models of clearly different capacity on the same stream
  // distribution (full 6-model zoos are exercised by bench/fig12/fig13).
  const data::SyntheticDistribution dist(data::mnist_like_spec());
  Rng data_rng(1);
  const data::Dataset train_set = dist.sample(1200, data_rng);

  Rng model_rng(2);
  std::vector<nn::Sequential> zoo;
  zoo.push_back(nn::make_mlp("mlp-256", nn::mnist_spec(), 256, model_rng));
  zoo.push_back(nn::make_mlp("mlp-16", nn::mnist_spec(), 16, model_rng));
  zoo.push_back(nn::make_lenet5("lenet5-half", nn::mnist_spec(), 0.5,
                                model_rng));

  std::printf("Training %zu models on the synthetic MNIST-like stream...\n",
              zoo.size());
  nn::TrainConfig config;
  config.epochs = 2;
  config.batch_size = 32;
  config.learning_rate = 0.05f;
  for (auto& model : zoo) {
    const auto losses =
        nn::train_sgd(model, train_set.samples, train_set.labels, config,
                      model_rng);
    std::printf("  %-12s %7zu params, final epoch loss %.3f\n",
                model.name().c_str(), model.parameter_count(), losses.back());
  }

  // Stream 40 slots of live inference through Algorithm 1.
  bandit::PolicyContext context;
  context.num_models = zoo.size();
  context.switching_cost = 1.0;
  context.seed = 3;
  core::BlockedTsallisInfPolicy policy(context);

  Rng stream_rng(4);
  std::vector<std::size_t> host_counts(zoo.size(), 0);
  std::vector<double> mean_losses(zoo.size(), 0.0);
  std::vector<std::size_t> loss_counts(zoo.size(), 0);
  double correct = 0.0, total = 0.0;

  const std::size_t slots = 40, samples_per_slot = 16;
  nn::Tensor feature({1, 1, 28, 28});
  for (std::size_t t = 0; t < slots; ++t) {
    const std::size_t hosted = policy.select(t);  // Step 1: place a model
    ++host_counts[hosted];
    double slot_loss = 0.0;
    for (std::size_t s = 0; s < samples_per_slot; ++s) {
      std::size_t label = 0;
      dist.sample_into(feature, 0, label, stream_rng);   // Step 2.1
      const nn::Tensor probs = zoo[hosted].predict_proba(feature);  // 2.2
      const std::vector<std::size_t> labels = {label};   // Step 2.3
      slot_loss += nn::squared_losses(probs, labels)[0]; // Step 3
      std::size_t predicted = 0;
      for (std::size_t c = 1; c < 10; ++c)
        if (probs.at(0, c) > probs.at(0, predicted)) predicted = c;
      correct += predicted == label ? 1.0 : 0.0;
      total += 1.0;
    }
    const double avg = slot_loss / samples_per_slot;
    mean_losses[hosted] += avg;
    ++loss_counts[hosted];
    policy.feedback(t, hosted, avg);  // Step 4: improve next selection
  }

  std::printf("\nStreamed %zu slots x %zu samples, overall accuracy %.2f\n\n",
              slots, samples_per_slot, correct / total);
  Table table({"model", "slots hosted", "observed avg loss"});
  for (std::size_t n = 0; n < zoo.size(); ++n) {
    table.add_row(zoo[n].name(),
                  {static_cast<double>(host_counts[n]),
                   loss_counts[n] > 0
                       ? mean_losses[n] / static_cast<double>(loss_counts[n])
                       : 0.0},
                  3);
  }
  table.print();
  std::printf("\nAlgorithm 1 concentrates hosting on the lowest-loss model\n"
              "while only switching at block boundaries.\n");
  return 0;
}
