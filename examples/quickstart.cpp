// Quickstart: build a scenario, run the paper's approach ("Ours" =
// Algorithm 1 blocked Tsallis-INF + Algorithm 2 online primal-dual carbon
// trading) against one baseline and the Offline reference, and print the
// headline numbers.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/regret.h"
#include "sim/experiment.h"
#include "util/table.h"

int main() {
  using namespace cea;

  // A paper-default scenario: 10 edges, 160 slots of 15 minutes, 6 models,
  // EU-permit-like prices, 500-unit carbon cap.
  sim::SimConfig config;
  config.num_edges = 10;
  config.seed = 42;
  const auto env = sim::Environment::make_parametric(config);

  std::printf("Scenario: %zu edges, %zu slots, %zu models, cap %.0f units\n\n",
              env.num_edges(), env.horizon(), env.num_models(),
              config.carbon_cap);

  const std::size_t runs = 5;
  const auto ours = sim::run_combo_averaged(env, sim::ours_combo(), runs, 1);
  const auto baseline = sim::run_combo_averaged(
      env, sim::baseline_combos().back(), runs, 1);  // UCB-LY, strongest
  const auto offline = sim::run_offline_averaged(env, runs, 1);

  Table table({"algorithm", "settled cost", "inference", "switching",
               "trading", "fit", "accuracy"});
  for (const auto* run : {&ours, &baseline, &offline}) {
    table.add_row(run->algorithm,
                  {run->settled_total_cost(), run->total_inference_cost(),
                   run->total_switching_cost(), run->total_trading_cost(),
                   core::fit(run->emissions, run->buys, run->sells,
                             config.carbon_cap),
                   run->mean_accuracy()},
                  2);
  }
  table.print();

  std::printf("\nOurs vs %s: %.1f%% lower total cost\n",
              baseline.algorithm.c_str(),
              100.0 * (1.0 - ours.settled_total_cost() / baseline.settled_total_cost()));
  std::printf("Ours vs Offline optimum: %.1f%% above\n",
              100.0 * (ours.settled_total_cost() / offline.settled_total_cost() - 1.0));
  return 0;
}
