// Slot-streaming serving daemon CLI: multi-tenant controller on live or
// replayed feeds with bit-exact checkpoint/restore.
//
// Typical drills (see EXPERIMENTS.md "Serving daemon"):
//   # full run, hex-exact trace out
//   serve_daemon --tenants 2 --edges 3 --slots 160 --checkpoint ck.bin \
//                --trace-out full.csv
//   # run the first 80 slots, "crash", restore, finish, compare traces
//   serve_daemon ... --stop-after 80 --checkpoint ck.bin
//   serve_daemon ... --restore --checkpoint ck.bin --trace-out resumed.csv
//   cmp full.csv resumed.csv
//
// Observability (DESIGN.md §13):
//   serve_daemon ... --journal jdir --metrics-out metrics.prom \
//                    --metrics-port 0 --slo-window 16
//   journal_query jdir --verify
//
// Exit codes: 0 success, 1 bad usage, 2 runtime failure, 3 success but
// the carbon-SLO watchdog raised at least one alert.

#include <cstdio>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "serve/controller.h"
#include "serve/daemon.h"
#include "serve/feed.h"
#include "sim/experiment.h"
#include "util/csv.h"
#include "util/thread_pool.h"

namespace {

using namespace cea;

struct Args {
  std::size_t tenants = 1;
  std::size_t edges = 3;
  std::size_t slots = 64;       // 0 = run to feed end
  std::string combo = "Ours";
  std::string feed = "synthetic";  // synthetic | replay | tail
  std::string workload_csv;
  std::string prices_csv;
  std::string feed_dir;
  std::string checkpoint;
  std::size_t checkpoint_every = 16;
  bool restore = false;
  std::size_t stop_after = 0;
  std::size_t slot_delay_ms = 0;
  std::string trace_out;
  double market_cap = 0.0;
  double mean_samples = 400.0;
  std::uint64_t seed = 7;
  bool pooled = false;
  // Observability.
  std::string journal_dir;
  std::size_t journal_every = 1;
  std::string metrics_out;
  std::size_t metrics_every = 1;
  int metrics_port = -1;
  std::size_t slo_window = 16;
  double slo_margin = 1.0;
  double slo_min_balance = 0.0;
  std::size_t slo_feed_stall_ms = 0;
  std::size_t slo_deadline_ms = 0;
};

bool parse_args(int argc, char** argv, Args& args) {
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    const char* v = nullptr;
    if (!std::strcmp(a, "--tenants") && (v = need_value(i))) {
      args.tenants = std::stoul(v);
    } else if (!std::strcmp(a, "--edges") && (v = need_value(i))) {
      args.edges = std::stoul(v);
    } else if (!std::strcmp(a, "--slots") && (v = need_value(i))) {
      args.slots = std::stoul(v);
    } else if (!std::strcmp(a, "--combo") && (v = need_value(i))) {
      args.combo = v;
    } else if (!std::strcmp(a, "--feed") && (v = need_value(i))) {
      args.feed = v;
    } else if (!std::strcmp(a, "--workload") && (v = need_value(i))) {
      args.workload_csv = v;
    } else if (!std::strcmp(a, "--prices") && (v = need_value(i))) {
      args.prices_csv = v;
    } else if (!std::strcmp(a, "--feed-dir") && (v = need_value(i))) {
      args.feed_dir = v;
    } else if (!std::strcmp(a, "--checkpoint") && (v = need_value(i))) {
      args.checkpoint = v;
    } else if (!std::strcmp(a, "--checkpoint-every") && (v = need_value(i))) {
      args.checkpoint_every = std::stoul(v);
    } else if (!std::strcmp(a, "--restore")) {
      args.restore = true;
    } else if (!std::strcmp(a, "--stop-after") && (v = need_value(i))) {
      args.stop_after = std::stoul(v);
    } else if (!std::strcmp(a, "--slot-delay-ms") && (v = need_value(i))) {
      args.slot_delay_ms = std::stoul(v);
    } else if (!std::strcmp(a, "--trace-out") && (v = need_value(i))) {
      args.trace_out = v;
    } else if (!std::strcmp(a, "--market-cap") && (v = need_value(i))) {
      args.market_cap = std::stod(v);
    } else if (!std::strcmp(a, "--mean") && (v = need_value(i))) {
      args.mean_samples = std::stod(v);
    } else if (!std::strcmp(a, "--seed") && (v = need_value(i))) {
      args.seed = std::stoull(v);
    } else if (!std::strcmp(a, "--pooled")) {
      args.pooled = true;
    } else if (!std::strcmp(a, "--journal") && (v = need_value(i))) {
      args.journal_dir = v;
    } else if (!std::strcmp(a, "--journal-every") && (v = need_value(i))) {
      args.journal_every = std::stoul(v);
    } else if (!std::strcmp(a, "--metrics-out") && (v = need_value(i))) {
      args.metrics_out = v;
    } else if (!std::strcmp(a, "--metrics-every") && (v = need_value(i))) {
      args.metrics_every = std::stoul(v);
    } else if (!std::strcmp(a, "--metrics-port") && (v = need_value(i))) {
      args.metrics_port = std::stoi(v);
    } else if (!std::strcmp(a, "--slo-window") && (v = need_value(i))) {
      args.slo_window = std::stoul(v);
    } else if (!std::strcmp(a, "--slo-margin") && (v = need_value(i))) {
      args.slo_margin = std::stod(v);
    } else if (!std::strcmp(a, "--slo-min-balance") && (v = need_value(i))) {
      args.slo_min_balance = std::stod(v);
    } else if (!std::strcmp(a, "--slo-feed-stall-ms") && (v = need_value(i))) {
      args.slo_feed_stall_ms = std::stoul(v);
    } else if (!std::strcmp(a, "--slo-deadline-ms") && (v = need_value(i))) {
      args.slo_deadline_ms = std::stoul(v);
    } else {
      std::fprintf(stderr, "unknown or incomplete flag: %s\n", a);
      return false;
    }
  }
  return true;
}

sim::AlgorithmCombo find_combo(const std::string& name) {
  for (auto& combo : sim::all_combos()) {
    if (combo.name == name) return combo;
  }
  throw std::runtime_error("unknown combo '" + name + "'");
}

/// Full hex-exact per-tenant trace — byte-comparable across runs (the
/// kill/restore gate does `cmp` on two of these).
void write_trace(serve::ServeController& controller, const std::string& path) {
  CsvWriter writer(path);
  for (std::size_t i = 0; i < controller.num_tenants(); ++i) {
    const auto& result = controller.tenant_engine(i).result();
    const std::string prefix = controller.tenant_name(i) + ".";
    writer.write_row_exact(prefix + "inference_cost", result.inference_cost);
    writer.write_row_exact(prefix + "switching_cost", result.switching_cost);
    writer.write_row_exact(prefix + "trading_cost", result.trading_cost);
    writer.write_row_exact(prefix + "emissions", result.emissions);
    writer.write_row_exact(prefix + "buys", result.buys);
    writer.write_row_exact(prefix + "sells", result.sells);
    writer.write_row_exact(prefix + "accuracy", result.accuracy);
    writer.write_row_exact(prefix + "workload", result.workload);
    writer.write_row_exact(
        prefix + "scalars",
        {static_cast<double>(result.total_switches),
         controller.tenant_engine(i).allowance_balance()});
  }
}

}  // namespace

int main(int argc, char** argv) {
  // --telemetry [path]: same session harness as the benches — tracing +
  // detail instrumentation on, profile JSON + Chrome trace out at exit.
  bench::TelemetrySession telemetry =
      bench::TelemetrySession::from_args(argc, argv);
  Args args;
  if (!parse_args(argc, argv, args)) return 1;
  try {
    // One tenant spec per tenant: same scenario shape, distinct run seeds
    // (and distinct environment seeds so the scenarios differ too).
    std::vector<serve::TenantSpec> specs;
    for (std::size_t i = 0; i < args.tenants; ++i) {
      serve::TenantSpec spec;
      spec.name = "tenant" + std::to_string(i);
      spec.scenario.num_edges = args.edges;
      spec.scenario.horizon = args.slots == 0 ? 160 : args.slots;
      spec.scenario.workload.num_slots = spec.scenario.horizon;
      spec.scenario.workload.mean_samples = args.mean_samples;
      spec.scenario.carbon_cap = 40.0;
      spec.scenario.loss_draw_cap = 64;
      spec.scenario.seed = 17 + i;
      spec.combo = find_combo(args.combo);
      spec.run_seed = args.seed + i;
      specs.push_back(std::move(spec));
    }
    sim::SimOptions options;
    if (args.pooled) options.pool = &util::ThreadPool::global();
    serve::MarketRule market{args.market_cap};
    serve::ServeController controller(specs, options, market);

    std::unique_ptr<serve::FeedSource> feed;
    if (args.feed == "synthetic") {
      feed = std::make_unique<serve::SyntheticFeed>(
          controller.total_edges(), args.seed, args.mean_samples);
    } else if (args.feed == "replay") {
      if (args.workload_csv.empty() || args.prices_csv.empty()) {
        std::fprintf(stderr, "--feed replay needs --workload and --prices\n");
        return 1;
      }
      feed = std::make_unique<serve::ReplayFeed>(serve::ReplayFeed::from_files(
          args.workload_csv, args.prices_csv));
    } else if (args.feed == "tail") {
      if (args.feed_dir.empty()) {
        std::fprintf(stderr, "--feed tail needs --feed-dir\n");
        return 1;
      }
      feed = std::make_unique<serve::DirectoryTailFeed>(
          args.feed_dir, controller.total_edges());
    } else {
      std::fprintf(stderr, "unknown feed '%s'\n", args.feed.c_str());
      return 1;
    }

    serve::DaemonConfig config;
    config.checkpoint_path = args.checkpoint;
    config.checkpoint_every = args.checkpoint_every;
    config.max_slots = args.slots;
    config.stop_after_slots = args.stop_after;
    config.slot_delay_ms = args.slot_delay_ms;
    config.journal_dir = args.journal_dir;
    config.journal_every = args.journal_every;
    config.metrics_path = args.metrics_out;
    config.metrics_every = args.metrics_every;
    config.metrics_port = args.metrics_port;
    config.slo.window = args.slo_window;
    config.slo.breach_margin = args.slo_margin;
    config.slo.min_balance = args.slo_min_balance;
    config.slo.feed_stall_ms =
        static_cast<std::int64_t>(args.slo_feed_stall_ms);
    config.slo.slot_deadline_ms =
        static_cast<std::int64_t>(args.slo_deadline_ms);
    serve::ServeDaemon daemon(controller, *feed, config);
    if (daemon.metrics_port() >= 0) {
      // Flush so a scraper that parses our stdout for the ephemeral port
      // sees the line before the (long-running) run loop starts.
      std::printf("serve_daemon: metrics endpoint on 127.0.0.1:%d\n",
                  daemon.metrics_port());
      std::fflush(stdout);
    }

    bool restored = false;
    if (args.restore) restored = daemon.restore_if_present();
    const serve::DaemonReport report = daemon.run();

    std::printf("serve_daemon: %zu slot(s) this run, final slot %zu, "
                "%zu checkpoint(s)%s%s\n",
                report.slots_processed, report.final_slot,
                report.checkpoints_written,
                restored ? ", restored from checkpoint" : "",
                report.feed_ended ? ", feed ended" : "");
    for (std::size_t i = 0; i < controller.num_tenants(); ++i) {
      const auto& result = controller.tenant_engine(i).result();
      std::printf("  %s: settled cost %.4f, emissions %.4f, "
                  "balance %.4f, switches %zu\n",
                  controller.tenant_name(i).c_str(),
                  result.settled_total_cost(), result.total_emissions(),
                  controller.tenant_engine(i).allowance_balance(),
                  result.total_switches);
    }
    if (!args.trace_out.empty()) {
      write_trace(controller, args.trace_out);
      std::printf("  trace written to %s\n", args.trace_out.c_str());
    }
    if (report.journal_records > 0) {
      std::printf("  journal: %zu record(s) in %zu segment(s)\n",
                  report.journal_records, report.journal_segments);
    }
    if (report.alerts_total > 0) {
      std::printf("  SLO alerts: %llu (cap_breach %llu, insolvency %llu, "
                  "feed_stall %llu, deadline_miss %llu)\n",
                  static_cast<unsigned long long>(report.alerts_total),
                  static_cast<unsigned long long>(report.alerts[0]),
                  static_cast<unsigned long long>(report.alerts[1]),
                  static_cast<unsigned long long>(report.alerts[2]),
                  static_cast<unsigned long long>(report.alerts[3]));
      return 3;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "serve_daemon: %s\n", e.what());
    return 2;
  }
}
