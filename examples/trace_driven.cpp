// Trace-driven workflow: export a generated scenario's workload and price
// traces to CSV, edit/replace them out of band (here we just perturb them
// programmatically, standing in for real TfL/EU files), reload, inject them
// into the environment, and re-run the comparison. This is the path for
// plugging real data into the simulator — see data/trace_io.h for formats.
#include <cstdio>
#include <filesystem>

#include "data/trace_io.h"
#include "sim/experiment.h"
#include "util/table.h"

int main() {
  using namespace cea;

  sim::SimConfig config;
  config.num_edges = 6;
  config.seed = 33;
  auto env = sim::Environment::make_parametric(config);

  // 1. Export the generated traces (the file format real data must match).
  std::filesystem::create_directories("bench_out");
  const std::string workload_path = "bench_out/example_workload.csv";
  const std::string prices_path = "bench_out/example_prices.csv";
  data::save_workload_csv(env.workload(), workload_path);
  data::save_prices_csv(env.prices(), prices_path);
  std::printf("Exported traces to %s and %s\n", workload_path.c_str(),
              prices_path.c_str());

  // 2. Reload and perturb: a flash event doubles the workload of every
  //    edge for ten afternoon slots (this is where you would instead load
  //    your own measured CSVs).
  auto workload = data::load_workload_csv(workload_path);
  for (auto& trace : workload) {
    for (std::size_t t = 60; t < 70 && t < trace.size(); ++t) trace[t] *= 2;
  }
  auto prices = data::load_prices_csv(prices_path);

  // 3. Inject and re-run.
  auto flash_env = sim::Environment::make_parametric(config);
  flash_env.replace_traces(std::move(workload), std::move(prices));

  Table table({"scenario", "settled cost", "emissions", "net bought",
               "accuracy"});
  for (const auto& scenario :
       {std::pair<const char*, const sim::Environment*>{"baseline", &env},
        std::pair<const char*, const sim::Environment*>{"flash crowd",
                                                        &flash_env}}) {
    const auto result =
        sim::run_combo_averaged(*scenario.second, sim::ours_combo(), 5, 1);
    table.add_row(scenario.first,
                  {result.settled_total_cost(), result.total_emissions(),
                   result.total_buys() - result.total_sells(),
                   result.mean_accuracy()},
                  2);
  }
  table.print();
  std::printf("\nThe flash crowd raises emissions, and the online trader "
              "buys correspondingly more allowances — driven entirely by "
              "the injected trace.\n");
  return 0;
}
