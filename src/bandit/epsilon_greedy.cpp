#include "bandit/epsilon_greedy.h"

#include <cassert>
#include <memory>

namespace cea::bandit {

EpsilonGreedyPolicy::EpsilonGreedyPolicy(const PolicyContext& context,
                                         double epsilon)
    : stats_(context.num_models), epsilon_(epsilon), rng_(context.seed) {
  assert(context.num_models > 0);
  assert(epsilon >= 0.0 && epsilon <= 1.0);
}

std::size_t EpsilonGreedyPolicy::select(std::size_t /*t*/) {
  if (rng_.bernoulli(epsilon_)) {
    return static_cast<std::size_t>(rng_.uniform_int(
        0, static_cast<std::int64_t>(stats_.num_arms()) - 1));
  }
  return stats_.best_arm();
}

void EpsilonGreedyPolicy::feedback(std::size_t /*t*/, std::size_t arm,
                                   double loss) {
  stats_.observe(arm, loss);
}

PolicyFactory EpsilonGreedyPolicy::factory(double epsilon) {
  return [epsilon](const PolicyContext& context) {
    return std::make_unique<EpsilonGreedyPolicy>(context, epsilon);
  };
}

}  // namespace cea::bandit
