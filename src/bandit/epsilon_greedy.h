#pragma once

#include "bandit/policy.h"

namespace cea::bandit {

/// Classic epsilon-greedy: with probability epsilon explore a random arm,
/// otherwise exploit the best empirical mean. Included as an extra
/// reference point beyond the paper's baseline set.
class EpsilonGreedyPolicy final : public ModelSelectionPolicy {
 public:
  EpsilonGreedyPolicy(const PolicyContext& context, double epsilon);

  std::size_t select(std::size_t t) override;
  void feedback(std::size_t t, std::size_t arm, double loss) override;
  std::string name() const override { return "EpsGreedy"; }

  static PolicyFactory factory(double epsilon = 0.1);

 private:
  ArmStats stats_;
  double epsilon_;
  Rng rng_;
};

}  // namespace cea::bandit
