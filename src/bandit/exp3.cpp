#include "bandit/exp3.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>

namespace cea::bandit {

Exp3Policy::Exp3Policy(const PolicyContext& context)
    : cumulative_losses_(context.num_models, 0.0),
      probabilities_(context.num_models, 0.0),
      rng_(context.seed) {
  assert(context.num_models > 0);
}

std::size_t Exp3Policy::select(std::size_t /*t*/) {
  const std::size_t n = cumulative_losses_.size();
  const double t = static_cast<double>(plays_ + 1);
  const double eta =
      std::sqrt(std::log(static_cast<double>(n)) /
                (static_cast<double>(n) * t));
  const double min_loss =
      *std::min_element(cumulative_losses_.begin(), cumulative_losses_.end());
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    probabilities_[i] = std::exp(-eta * (cumulative_losses_[i] - min_loss));
    total += probabilities_[i];
  }
  for (auto& p : probabilities_) p /= total;
  return rng_.categorical(probabilities_);
}

void Exp3Policy::feedback(std::size_t /*t*/, std::size_t arm, double loss) {
  ++plays_;
  const double p = std::max(probabilities_[arm], 1e-12);
  cumulative_losses_[arm] += loss / p;
}

PolicyFactory Exp3Policy::factory() {
  return [](const PolicyContext& context) {
    return std::make_unique<Exp3Policy>(context);
  };
}

}  // namespace cea::bandit
