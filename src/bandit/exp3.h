#pragma once

#include <vector>

#include "bandit/policy.h"

namespace cea::bandit {

/// EXP3 (exponential weights for exploration and exploitation) with
/// importance-weighted loss estimates and an anytime learning rate
/// eta_t = sqrt(ln N / (N t)). Extra reference baseline.
class Exp3Policy final : public ModelSelectionPolicy {
 public:
  explicit Exp3Policy(const PolicyContext& context);

  std::size_t select(std::size_t t) override;
  void feedback(std::size_t t, std::size_t arm, double loss) override;
  std::string name() const override { return "EXP3"; }

  static PolicyFactory factory();

 private:
  std::vector<double> cumulative_losses_;
  std::vector<double> probabilities_;
  Rng rng_;
  std::size_t plays_ = 0;
};

}  // namespace cea::bandit
