#include "bandit/fleet_policy.h"

#include <cassert>

#include "util/state_io.h"

namespace cea::bandit {

PerEdgeFleetAdapter::PerEdgeFleetAdapter(const PolicyFactory& factory,
                                         const FleetPolicyContext& context) {
  assert(context.switching_cost.size() == context.num_edges);
  policies_.reserve(context.num_edges);
  batchable_.reserve(context.num_edges);
  for (std::size_t edge = 0; edge < context.num_edges; ++edge) {
    PolicyContext per_edge;
    per_edge.num_models = context.num_models;
    per_edge.switching_cost = context.switching_cost[edge];
    per_edge.energy_per_sample = context.energy_per_sample;
    per_edge.seed = policy_stream_seed(context.run_seed, edge);
    per_edge.horizon = context.horizon;
    per_edge.edge = edge;
    policies_.push_back(factory(per_edge));
    batchable_.push_back(
        dynamic_cast<TsallisBatchSolvable*>(policies_.back().get()));
    any_batchable_ = any_batchable_ || batchable_.back() != nullptr;
  }
}

std::string PerEdgeFleetAdapter::name() const {
  return policies_.empty() ? "EmptyFleet" : policies_.front()->name();
}

bool PerEdgeFleetAdapter::save_state(util::StateWriter& writer) const {
  if (!policies_.empty()) {
    // Probe support on a scratch writer so an unsupported fleet leaves the
    // real writer untouched (the interface contract).
    util::StateWriter probe;
    if (!policies_.front()->save_state(probe)) return false;
  }
  for (const auto& policy : policies_) {
    if (!policy->save_state(writer)) {
      throw util::StateError(
          "PerEdgeFleetAdapter: mixed fleet — policy '" + policy->name() +
          "' does not support checkpointing");
    }
  }
  return true;
}

bool PerEdgeFleetAdapter::load_state(util::StateReader& reader) {
  for (std::size_t edge = 0; edge < policies_.size(); ++edge) {
    if (!policies_[edge]->load_state(reader)) {
      if (edge == 0) return false;  // reader untouched by contract
      throw util::StateError(
          "PerEdgeFleetAdapter: mixed fleet — policy '" +
          policies_[edge]->name() + "' does not support checkpointing");
    }
  }
  return true;
}

FleetPolicyFactory adapt_per_edge(PolicyFactory factory) {
  return [factory = std::move(factory)](const FleetPolicyContext& context) {
    return std::make_unique<PerEdgeFleetAdapter>(factory, context);
  };
}

}  // namespace cea::bandit
