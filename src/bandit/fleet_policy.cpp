#include "bandit/fleet_policy.h"

#include <cassert>

namespace cea::bandit {

PerEdgeFleetAdapter::PerEdgeFleetAdapter(const PolicyFactory& factory,
                                         const FleetPolicyContext& context) {
  assert(context.switching_cost.size() == context.num_edges);
  policies_.reserve(context.num_edges);
  batchable_.reserve(context.num_edges);
  for (std::size_t edge = 0; edge < context.num_edges; ++edge) {
    PolicyContext per_edge;
    per_edge.num_models = context.num_models;
    per_edge.switching_cost = context.switching_cost[edge];
    per_edge.energy_per_sample = context.energy_per_sample;
    per_edge.seed = policy_stream_seed(context.run_seed, edge);
    per_edge.horizon = context.horizon;
    per_edge.edge = edge;
    policies_.push_back(factory(per_edge));
    batchable_.push_back(
        dynamic_cast<TsallisBatchSolvable*>(policies_.back().get()));
    any_batchable_ = any_batchable_ || batchable_.back() != nullptr;
  }
}

std::string PerEdgeFleetAdapter::name() const {
  return policies_.empty() ? "EmptyFleet" : policies_.front()->name();
}

FleetPolicyFactory adapt_per_edge(PolicyFactory factory) {
  return [factory = std::move(factory)](const FleetPolicyContext& context) {
    return std::make_unique<PerEdgeFleetAdapter>(factory, context);
  };
}

}  // namespace cea::bandit
