#pragma once

// Fleet-wide model-selection policies: one object serving every edge
// through (edge, t)-indexed calls instead of one heap-allocated
// ModelSelectionPolicy per edge. This is what lets a 10k-edge simulation
// keep its hot per-edge state in structure-of-arrays storage (see
// core/blocked_tsallis_fleet.h) rather than chasing 10k object pointers
// per slot — and what lets the simulator hand contiguous edge shards to
// the thread pool under the one-writer-per-shard contract.
//
// Concurrency contract: select()/feedback() for *different* edges may run
// concurrently (each edge's state is written only by the shard that owns
// it); calls for the same edge are always sequenced by the simulator.
// next_solve()/accept_presolve() run serially before the edge fan-out.

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bandit/policy.h"

namespace cea::bandit {

/// Per-edge policy seed derivation shared by Simulator::policy_context and
/// every fleet policy, so a fleet implementation reproduces — bit for bit —
/// the randomness of the equivalent per-edge policy instances.
constexpr std::uint64_t policy_stream_seed(std::uint64_t run_seed,
                                           std::size_t edge) noexcept {
  return run_seed * 0x9E3779B97F4A7C15ULL + edge + 1;
}

/// Everything a fleet policy needs to instantiate its per-edge state.
/// Deliberately SoA-shaped: quantities that vary per edge are flat arrays,
/// fleet-wide scalars appear once (a 10k-edge context is two vectors, not
/// 10k PolicyContext objects each owning an energy vector copy).
struct FleetPolicyContext {
  std::size_t num_edges = 0;
  std::size_t num_models = 0;
  std::size_t horizon = 0;            ///< T, if known (0 = unknown/anytime)
  std::uint64_t run_seed = 0;         ///< per-edge seeds via policy_stream_seed
  std::vector<double> energy_per_sample;  ///< phi_n, shared by all edges
  std::vector<double> switching_cost;     ///< u_i per edge
};

/// Model selection for every edge of a fleet behind one virtual interface.
/// Semantically equivalent to num_edges independent ModelSelectionPolicy
/// instances; implementations are free (and expected) to store the
/// per-edge state in structure-of-arrays form.
class FleetPolicy {
 public:
  virtual ~FleetPolicy() = default;

  virtual std::size_t num_edges() const noexcept = 0;

  /// Model edge i hosts at slot t. One-writer contract: concurrent calls
  /// must target distinct edges.
  virtual std::size_t select(std::size_t edge, std::size_t t) = 0;

  /// Bandit feedback for edge i's selected arm at slot t.
  virtual void feedback(std::size_t edge, std::size_t t, std::size_t arm,
                        double loss) = 0;

  /// Cross-edge batch solving (see bandit::TsallisBatchSolvable — same
  /// contract, indexed by edge). Default: no batchable solves.
  virtual bool next_solve(std::size_t edge, TsallisSolveRequest& out) {
    (void)edge;
    (void)out;
    return false;
  }
  virtual void accept_presolve(std::size_t edge,
                               std::span<const double> probabilities,
                               double scaled_lambda_warm) {
    (void)edge;
    (void)probabilities;
    (void)scaled_lambda_warm;
  }

  /// True when next_solve may ever return true — lets the simulator skip
  /// the per-slot presolve sweep entirely for non-Tsallis policies.
  virtual bool supports_batch_solve() const noexcept { return false; }

  virtual std::string name() const = 0;

  /// Checkpoint support (util/state_io.h): serialize every edge's mutable
  /// state such that load_state() on a freshly constructed fleet (same
  /// FleetPolicyContext) continues bit-identically. Both return false when
  /// unsupported (the default); the writer/reader must then be untouched.
  virtual bool save_state(util::StateWriter& writer) const {
    (void)writer;
    return false;
  }
  virtual bool load_state(util::StateReader& reader) {
    (void)reader;
    return false;
  }
};

using FleetPolicyFactory =
    std::function<std::unique_ptr<FleetPolicy>(const FleetPolicyContext&)>;

/// Adapter running any per-edge PolicyFactory as a FleetPolicy: builds one
/// ModelSelectionPolicy per edge with exactly the PolicyContext (seed
/// included) the simulator historically built, and probes each instance
/// once for TsallisBatchSolvable. This is the compatibility path every
/// existing policy runs through; SoA-native fleets (e.g.
/// core::BlockedTsallisFleetPolicy) bypass it.
class PerEdgeFleetAdapter final : public FleetPolicy {
 public:
  PerEdgeFleetAdapter(const PolicyFactory& factory,
                      const FleetPolicyContext& context);

  std::size_t num_edges() const noexcept override {
    return policies_.size();
  }
  std::size_t select(std::size_t edge, std::size_t t) override {
    return policies_[edge]->select(t);
  }
  void feedback(std::size_t edge, std::size_t t, std::size_t arm,
                double loss) override {
    policies_[edge]->feedback(t, arm, loss);
  }
  bool next_solve(std::size_t edge, TsallisSolveRequest& out) override {
    return batchable_[edge] != nullptr && batchable_[edge]->next_solve(out);
  }
  void accept_presolve(std::size_t edge, std::span<const double> probabilities,
                       double scaled_lambda_warm) override {
    batchable_[edge]->accept_presolve(probabilities, scaled_lambda_warm);
  }
  bool supports_batch_solve() const noexcept override {
    return any_batchable_;
  }
  std::string name() const override;

  /// Forwards to every wrapped per-edge policy in edge order. Supported
  /// only when ALL wrapped policies support checkpointing — probed on the
  /// first edge before anything is written, so an unsupported fleet leaves
  /// the writer untouched (mixed fleets of partially-checkpointable
  /// policies throw util::StateError mid-write instead).
  bool save_state(util::StateWriter& writer) const override;
  bool load_state(util::StateReader& reader) override;

  /// The wrapped per-edge instance (introspection for tests/benches).
  ModelSelectionPolicy& edge_policy(std::size_t edge) {
    return *policies_[edge];
  }

 private:
  std::vector<std::unique_ptr<ModelSelectionPolicy>> policies_;
  std::vector<TsallisBatchSolvable*> batchable_;
  bool any_batchable_ = false;
};

/// FleetPolicyFactory wrapping a per-edge PolicyFactory in the adapter.
FleetPolicyFactory adapt_per_edge(PolicyFactory factory);

}  // namespace cea::bandit
