#include "bandit/greedy_policy.h"

#include <cassert>
#include <memory>

namespace cea::bandit {

GreedyEnergyPolicy::GreedyEnergyPolicy(const PolicyContext& context)
    : chosen_(0) {
  assert(context.num_models > 0);
  // Fall back to model 0 when no energy table is provided.
  if (context.energy_per_sample.size() == context.num_models) {
    for (std::size_t n = 1; n < context.num_models; ++n) {
      if (context.energy_per_sample[n] <
          context.energy_per_sample[chosen_]) {
        chosen_ = n;
      }
    }
  }
}

std::size_t GreedyEnergyPolicy::select(std::size_t /*t*/) { return chosen_; }

void GreedyEnergyPolicy::feedback(std::size_t /*t*/, std::size_t /*arm*/,
                                  double /*loss*/) {}

PolicyFactory GreedyEnergyPolicy::factory() {
  return [](const PolicyContext& context) {
    return std::make_unique<GreedyEnergyPolicy>(context);
  };
}

bool GreedyEnergyPolicy::save_state(util::StateWriter& /*writer*/) const {
  return true;  // chosen_ is derived from the context at construction
}

bool GreedyEnergyPolicy::load_state(util::StateReader& /*reader*/) {
  return true;
}

}  // namespace cea::bandit
