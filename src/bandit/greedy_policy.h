#pragma once

#include "bandit/policy.h"

namespace cea::bandit {

/// "Greedy" baseline of Section V-A: always select the model with the lowest
/// per-sample energy consumption phi_n. It never switches after the first
/// slot (minimal switching cost) but ignores inference loss entirely.
class GreedyEnergyPolicy final : public ModelSelectionPolicy {
 public:
  explicit GreedyEnergyPolicy(const PolicyContext& context);

  std::size_t select(std::size_t t) override;
  void feedback(std::size_t t, std::size_t arm, double loss) override;
  std::string name() const override { return "Greedy"; }

  /// Stateless after construction: checkpointing is trivially supported.
  bool save_state(util::StateWriter& writer) const override;
  bool load_state(util::StateReader& reader) override;

  static PolicyFactory factory();

 private:
  std::size_t chosen_;
};

}  // namespace cea::bandit
