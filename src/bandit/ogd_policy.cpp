#include "bandit/ogd_policy.h"

#include <cassert>
#include <cmath>
#include <memory>

#include "opt/projection.h"

namespace cea::bandit {

OgdPolicy::OgdPolicy(const PolicyContext& context, double eta_scale,
                     double exploration)
    : probabilities_(context.num_models,
                     1.0 / static_cast<double>(context.num_models)),
      sampling_probabilities_(probabilities_),
      eta_scale_(eta_scale),
      exploration_(exploration),
      rng_(context.seed) {
  assert(context.num_models > 0);
  assert(eta_scale > 0.0);
  assert(exploration >= 0.0 && exploration < 1.0);
}

std::size_t OgdPolicy::select(std::size_t /*t*/) {
  const double uniform =
      1.0 / static_cast<double>(probabilities_.size());
  for (std::size_t n = 0; n < probabilities_.size(); ++n) {
    sampling_probabilities_[n] =
        (1.0 - exploration_) * probabilities_[n] + exploration_ * uniform;
  }
  return rng_.categorical(sampling_probabilities_);
}

void OgdPolicy::feedback(std::size_t /*t*/, std::size_t arm, double loss) {
  ++plays_;
  const double eta =
      eta_scale_ / std::sqrt(static_cast<double>(plays_));
  // Importance-weighted gradient estimate: only the played arm's
  // coordinate is nonzero.
  std::vector<double> shifted = probabilities_;
  shifted[arm] -= eta * loss / std::max(sampling_probabilities_[arm], 1e-12);
  probabilities_ = project_to_simplex(shifted);
}

PolicyFactory OgdPolicy::factory(double eta_scale, double exploration) {
  return [=](const PolicyContext& context) {
    return std::make_unique<OgdPolicy>(context, eta_scale, exploration);
  };
}

}  // namespace cea::bandit
