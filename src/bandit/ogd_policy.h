#pragma once

#include <vector>

#include "bandit/policy.h"

namespace cea::bandit {

/// Online gradient descent on the probability simplex with importance-
/// weighted loss estimates: p_{t+1} = Proj_simplex(p_t - eta_t ghat_t).
/// The classic OCO-style bandit baseline — contrasts the Euclidean
/// geometry (simplex projection) against the Tsallis-entropy mirror
/// geometry the paper's Algorithm 1 uses.
class OgdPolicy final : public ModelSelectionPolicy {
 public:
  /// eta_t = eta_scale / sqrt(t); `exploration` mixes in a uniform floor so
  /// importance weights stay bounded.
  OgdPolicy(const PolicyContext& context, double eta_scale,
            double exploration);

  std::size_t select(std::size_t t) override;
  void feedback(std::size_t t, std::size_t arm, double loss) override;
  std::string name() const override { return "OGD"; }

  static PolicyFactory factory(double eta_scale = 0.5,
                               double exploration = 0.05);

  const std::vector<double>& probabilities() const noexcept {
    return probabilities_;
  }

 private:
  std::vector<double> probabilities_;
  std::vector<double> sampling_probabilities_;
  double eta_scale_;
  double exploration_;
  Rng rng_;
  std::size_t plays_ = 0;
};

}  // namespace cea::bandit
