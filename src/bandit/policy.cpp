#include "bandit/policy.h"

#include "util/state_io.h"

namespace cea::bandit {

std::size_t ArmStats::best_arm() const noexcept {
  for (std::size_t arm = 0; arm < counts_.size(); ++arm) {
    if (counts_[arm] == 0) return arm;
  }
  std::size_t best = 0;
  for (std::size_t arm = 1; arm < counts_.size(); ++arm) {
    if (mean(arm) < mean(best)) best = arm;
  }
  return best;
}

void ArmStats::save_state(util::StateWriter& writer) const {
  std::vector<std::uint64_t> counts(counts_.begin(), counts_.end());
  writer.write_u64s("armstats.counts", counts);
  writer.write_doubles("armstats.sums", sums_);
}

void ArmStats::load_state(util::StateReader& reader) {
  const auto counts = reader.read_u64s("armstats.counts", counts_.size());
  for (std::size_t arm = 0; arm < counts_.size(); ++arm)
    counts_[arm] = static_cast<std::size_t>(counts[arm]);
  sums_ = reader.read_doubles("armstats.sums", sums_.size());
}

}  // namespace cea::bandit
