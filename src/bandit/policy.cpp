#include "bandit/policy.h"

namespace cea::bandit {

std::size_t ArmStats::best_arm() const noexcept {
  for (std::size_t arm = 0; arm < counts_.size(); ++arm) {
    if (counts_[arm] == 0) return arm;
  }
  std::size_t best = 0;
  for (std::size_t arm = 1; arm < counts_.size(); ++arm) {
    if (mean(arm) < mean(best)) best = arm;
  }
  return best;
}

}  // namespace cea::bandit
