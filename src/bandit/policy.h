#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/rng.h"

namespace cea::util {
class StateWriter;
class StateReader;
}  // namespace cea::util

namespace cea::bandit {

/// Static, per-edge information a model-selection policy may use.
///
/// `switching_cost` is u_i (download delay of a model change) and
/// `energy_per_sample[n]` is phi_n; the Greedy baseline selects by energy,
/// the paper's Algorithm 1 sizes its blocks from u_i.
struct PolicyContext {
  std::size_t num_models = 0;
  double switching_cost = 1.0;
  std::vector<double> energy_per_sample;
  std::uint64_t seed = 1;
  std::size_t horizon = 0;  ///< T, if known (0 = unknown/anytime)
  std::size_t edge = 0;     ///< index of the edge this policy serves
};

/// Online model-selection policy for a single edge (the "arms" are models).
///
/// Per time slot the simulator calls select() to obtain the model to host,
/// then feedback() with the realized bandit loss for the *selected* arm,
/// which per the paper's Insight 2 is L_{i,n}^t + v_{i,n} (average inference
/// loss over the slot's samples plus the observed computation cost).
class ModelSelectionPolicy {
 public:
  virtual ~ModelSelectionPolicy() = default;

  /// Model to host at time slot t (0-based). Must be < num_models.
  virtual std::size_t select(std::size_t t) = 0;

  /// Bandit feedback for slot t on the arm that select(t) returned.
  virtual void feedback(std::size_t t, std::size_t arm, double loss) = 0;

  virtual std::string name() const = 0;

  /// Checkpoint support (util/state_io.h): serialize the policy's full
  /// mutable state such that load_state() on a freshly constructed policy
  /// (same PolicyContext) continues bit-identically. Both return false when
  /// the policy does not implement checkpointing (the default), in which
  /// case the writer/reader must not have been touched.
  virtual bool save_state(util::StateWriter& writer) const {
    (void)writer;
    return false;
  }
  virtual bool load_state(util::StateReader& reader) {
    (void)reader;
    return false;
  }
};

/// Factory so experiments can instantiate one policy per edge.
using PolicyFactory =
    std::function<std::unique_ptr<ModelSelectionPolicy>(const PolicyContext&)>;

/// One pending Tsallis-INF OMD solve, described by the arguments the
/// policy would pass to tsallis_probabilities_into. The span aliases
/// policy-owned storage and stays valid until the policy is next mutated.
struct TsallisSolveRequest {
  std::span<const double> cumulative_losses;
  double eta = 0.0;
  double scaled_lambda_warm = 0.0;
};

/// Opt-in side interface for policies whose next select(t) may run a
/// Tsallis-INF OMD solve that is already fully determined at the start of
/// the slot — i.e. before any edge's select/feedback of that slot runs.
/// The simulator probes every policy for this interface and, when its
/// cross_edge_batch_solve option is on, gathers all pending solves into
/// one TsallisBatchSolver call (SIMD lanes across edges) before the edge
/// fan-out. The batch solver is bit-identical to the scalar path, so a
/// policy sees exactly the probabilities and warm-start it would have
/// computed itself.
///
/// Only implement this when the solve's inputs are frozen at slot start:
/// per-edge state written by the edge's own feedback qualifies; state
/// shared across edges and mutated mid-slot (the pooled-learning
/// extension's table) does not.
class TsallisBatchSolvable {
 public:
  virtual ~TsallisBatchSolvable() = default;

  /// If the next select() will solve an OMD step, describe it and return
  /// true; return false when no solve is due (mid-block slots).
  virtual bool next_solve(TsallisSolveRequest& out) = 0;

  /// Deliver the batch solver's result for the request next_solve
  /// described: the normalized probabilities and the refreshed scaled
  /// root eta*lambda. The next select() must consume these instead of
  /// re-solving.
  virtual void accept_presolve(std::span<const double> probabilities,
                               double scaled_lambda_warm) = 0;
};

/// Tracks per-arm empirical means; shared by several baselines.
class ArmStats {
 public:
  explicit ArmStats(std::size_t num_arms)
      : counts_(num_arms, 0), sums_(num_arms, 0.0) {}

  void observe(std::size_t arm, double loss) noexcept {
    ++counts_[arm];
    sums_[arm] += loss;
  }

  std::size_t count(std::size_t arm) const noexcept { return counts_[arm]; }
  double mean(std::size_t arm) const noexcept {
    return counts_[arm] > 0
               ? sums_[arm] / static_cast<double>(counts_[arm])
               : 0.0;
  }
  std::size_t total_count() const noexcept {
    std::size_t total = 0;
    for (auto c : counts_) total += c;
    return total;
  }
  std::size_t num_arms() const noexcept { return counts_.size(); }

  /// Arm with the lowest empirical mean among arms played at least once;
  /// unplayed arms are preferred (returned first, lowest index).
  std::size_t best_arm() const noexcept;

  /// Checkpoint the counts/sums tables (keys "armstats.counts"/".sums").
  void save_state(util::StateWriter& writer) const;
  void load_state(util::StateReader& reader);

 private:
  std::vector<std::size_t> counts_;
  std::vector<double> sums_;
};

}  // namespace cea::bandit
