#include "bandit/random_policy.h"

#include <cassert>
#include <memory>

#include "util/state_io.h"

namespace cea::bandit {

RandomPolicy::RandomPolicy(const PolicyContext& context)
    : num_models_(context.num_models), rng_(context.seed) {
  assert(num_models_ > 0);
}

std::size_t RandomPolicy::select(std::size_t /*t*/) {
  return static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(num_models_) - 1));
}

void RandomPolicy::feedback(std::size_t /*t*/, std::size_t /*arm*/,
                            double /*loss*/) {}

PolicyFactory RandomPolicy::factory() {
  return [](const PolicyContext& context) {
    return std::make_unique<RandomPolicy>(context);
  };
}

bool RandomPolicy::save_state(util::StateWriter& writer) const {
  writer.write_rng("random.rng", rng_);
  return true;
}

bool RandomPolicy::load_state(util::StateReader& reader) {
  reader.read_rng("random.rng", rng_);
  return true;
}

}  // namespace cea::bandit
