#pragma once

#include "bandit/policy.h"

namespace cea::bandit {

/// "Random" baseline of Section V-A: pick a uniformly random model at every
/// time slot, ignoring all feedback (and paying heavy switching cost).
class RandomPolicy final : public ModelSelectionPolicy {
 public:
  explicit RandomPolicy(const PolicyContext& context);

  std::size_t select(std::size_t t) override;
  void feedback(std::size_t t, std::size_t arm, double loss) override;
  std::string name() const override { return "Random"; }

  bool save_state(util::StateWriter& writer) const override;
  bool load_state(util::StateReader& reader) override;

  static PolicyFactory factory();

 private:
  std::size_t num_models_;
  Rng rng_;
};

}  // namespace cea::bandit
