#include "bandit/thompson.h"

#include <cassert>
#include <cmath>
#include <memory>

namespace cea::bandit {

ThompsonSamplingPolicy::ThompsonSamplingPolicy(const PolicyContext& context,
                                               double prior_stddev,
                                               double observation_stddev)
    : means_(context.num_models, 0.0),
      precisions_(context.num_models, 1.0 / (prior_stddev * prior_stddev)),
      observation_precision_(1.0 / (observation_stddev * observation_stddev)),
      rng_(context.seed) {
  assert(context.num_models > 0);
  assert(prior_stddev > 0.0 && observation_stddev > 0.0);
}

std::size_t ThompsonSamplingPolicy::select(std::size_t /*t*/) {
  std::size_t best = 0;
  double best_draw = 0.0;
  for (std::size_t arm = 0; arm < means_.size(); ++arm) {
    const double stddev = std::sqrt(1.0 / precisions_[arm]);
    const double draw = rng_.normal(means_[arm], stddev);
    if (arm == 0 || draw < best_draw) {
      best = arm;
      best_draw = draw;
    }
  }
  return best;
}

void ThompsonSamplingPolicy::feedback(std::size_t /*t*/, std::size_t arm,
                                      double loss) {
  // Conjugate normal update with known observation precision.
  const double new_precision = precisions_[arm] + observation_precision_;
  means_[arm] = (precisions_[arm] * means_[arm] +
                 observation_precision_ * loss) /
                new_precision;
  precisions_[arm] = new_precision;
}

PolicyFactory ThompsonSamplingPolicy::factory(double prior_stddev,
                                              double observation_stddev) {
  return [=](const PolicyContext& context) {
    return std::make_unique<ThompsonSamplingPolicy>(context, prior_stddev,
                                                    observation_stddev);
  };
}

}  // namespace cea::bandit
