#pragma once

#include <vector>

#include "bandit/policy.h"

namespace cea::bandit {

/// Gaussian Thompson sampling: each arm's mean loss carries a normal
/// posterior (known-variance conjugate update); every slot samples one
/// draw per arm and plays the smallest. Extra baseline beyond the paper's
/// set — a strong stochastic learner with unbounded switching.
class ThompsonSamplingPolicy final : public ModelSelectionPolicy {
 public:
  /// `prior_stddev` is the prior scale of each arm's mean;
  /// `observation_stddev` the assumed per-observation noise.
  ThompsonSamplingPolicy(const PolicyContext& context, double prior_stddev,
                         double observation_stddev);

  std::size_t select(std::size_t t) override;
  void feedback(std::size_t t, std::size_t arm, double loss) override;
  std::string name() const override { return "Thompson"; }

  static PolicyFactory factory(double prior_stddev = 1.0,
                               double observation_stddev = 0.25);

  /// Posterior mean of an arm (exposed for tests).
  double posterior_mean(std::size_t arm) const noexcept {
    return means_[arm];
  }

 private:
  std::vector<double> means_;       // posterior means
  std::vector<double> precisions_;  // posterior precisions (1/var)
  double observation_precision_;
  Rng rng_;
};

}  // namespace cea::bandit
