#include "bandit/tsallis_inf.h"

#include <cassert>
#include <cmath>
#include <memory>

#include "opt/tsallis_step.h"
#include "util/state_io.h"

namespace cea::bandit {

TsallisInfPolicy::TsallisInfPolicy(const PolicyContext& context)
    : cumulative_losses_(context.num_models, 0.0),
      probabilities_(context.num_models, 0.0),
      rng_(context.seed) {
  assert(context.num_models > 0);
}

std::size_t TsallisInfPolicy::select(std::size_t /*t*/) {
  if (presolved_) {
    presolved_ = false;
  } else {
    const double eta = 2.0 / std::sqrt(static_cast<double>(plays_ + 1));
    tsallis_probabilities_into(cumulative_losses_, eta, probabilities_,
                               solver_scratch_);
  }
  return rng_.categorical(probabilities_);
}

bool TsallisInfPolicy::next_solve(TsallisSolveRequest& out) {
  if (presolved_) return false;
  out.cumulative_losses = cumulative_losses_;
  out.eta = 2.0 / std::sqrt(static_cast<double>(plays_ + 1));
  out.scaled_lambda_warm = 0.0;  // the per-slot solve never warm-starts
  return true;
}

void TsallisInfPolicy::accept_presolve(std::span<const double> probabilities,
                                       double /*scaled_lambda_warm*/) {
  probabilities_.assign(probabilities.begin(), probabilities.end());
  presolved_ = true;
}

void TsallisInfPolicy::feedback(std::size_t /*t*/, std::size_t arm,
                                double loss) {
  ++plays_;
  const double p = std::max(probabilities_[arm], 1e-12);
  cumulative_losses_[arm] += loss / p;
}

PolicyFactory TsallisInfPolicy::factory() {
  return [](const PolicyContext& context) {
    return std::make_unique<TsallisInfPolicy>(context);
  };
}

bool TsallisInfPolicy::save_state(util::StateWriter& writer) const {
  writer.write_rng("tinf.rng", rng_);
  writer.write_doubles("tinf.cumulative_losses", cumulative_losses_);
  writer.write_doubles("tinf.probabilities", probabilities_);
  writer.write_u64("tinf.plays", plays_);
  writer.write_bool("tinf.presolved", presolved_);
  return true;
}

bool TsallisInfPolicy::load_state(util::StateReader& reader) {
  reader.read_rng("tinf.rng", rng_);
  cumulative_losses_ =
      reader.read_doubles("tinf.cumulative_losses", cumulative_losses_.size());
  probabilities_ =
      reader.read_doubles("tinf.probabilities", probabilities_.size());
  plays_ = reader.read_u64("tinf.plays");
  presolved_ = reader.read_bool("tinf.presolved");
  return true;
}

}  // namespace cea::bandit
