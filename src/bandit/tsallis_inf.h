#pragma once

#include <vector>

#include "bandit/policy.h"

namespace cea::bandit {

/// Tsallis-INF (Zimmert & Seldin 2021) without switching-cost awareness:
/// the "TINF" baseline of Section V-A. Every time slot re-solves the
/// online-mirror-descent step with the 1/2-Tsallis regularizer and learning
/// rate eta_t = 2 / sqrt(t), then samples an arm; importance-weighted loss
/// estimates accumulate per slot. Optimal in plain stochastic/adversarial
/// bandits, but free to switch arms every slot.
class TsallisInfPolicy final : public ModelSelectionPolicy,
                               public TsallisBatchSolvable {
 public:
  explicit TsallisInfPolicy(const PolicyContext& context);

  std::size_t select(std::size_t t) override;
  void feedback(std::size_t t, std::size_t arm, double loss) override;
  std::string name() const override { return "TsallisINF"; }

  /// Cross-edge batch solving: TINF re-solves every slot, and the solve's
  /// inputs (per-edge loss table, play count) are frozen by the edge's
  /// own previous feedback — so every slot every edge has a pending solve
  /// and the batch path does the most work here. No warm-start is used
  /// (matching the historical per-slot solve exactly).
  bool next_solve(TsallisSolveRequest& out) override;
  void accept_presolve(std::span<const double> probabilities,
                       double scaled_lambda_warm) override;

  bool save_state(util::StateWriter& writer) const override;
  bool load_state(util::StateReader& reader) override;

  static PolicyFactory factory();

 private:
  std::vector<double> cumulative_losses_;
  std::vector<double> probabilities_;
  std::vector<double> solver_scratch_;
  Rng rng_;
  std::size_t plays_ = 0;
  bool presolved_ = false;
};

}  // namespace cea::bandit
