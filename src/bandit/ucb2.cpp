#include "bandit/ucb2.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>
#include <numbers>

#include "util/state_io.h"

namespace cea::bandit {

Ucb2Policy::Ucb2Policy(const PolicyContext& context, double alpha,
                       double loss_scale)
    : stats_(context.num_models),
      epochs_(context.num_models, 0),
      alpha_(alpha),
      loss_scale_(loss_scale) {
  assert(context.num_models > 0);
  assert(alpha > 0.0 && alpha < 1.0);
  assert(loss_scale > 0.0);
}

double Ucb2Policy::tau(std::size_t r) const noexcept {
  return std::ceil(std::pow(1.0 + alpha_, static_cast<double>(r)));
}

std::size_t Ucb2Policy::select(std::size_t /*t*/) {
  if (remaining_plays_ > 0) {
    --remaining_plays_;
    return current_arm_;
  }
  // Initialization: play every arm once.
  for (std::size_t arm = 0; arm < stats_.num_arms(); ++arm) {
    if (stats_.count(arm) == 0) {
      current_arm_ = arm;
      return arm;
    }
  }
  // Pick the arm with the smallest lower confidence bound (losses).
  const double total =
      static_cast<double>(std::max<std::size_t>(stats_.total_count(), 1));
  std::size_t best = 0;
  double best_bound = 0.0;
  for (std::size_t arm = 0; arm < stats_.num_arms(); ++arm) {
    const double t_r = tau(epochs_[arm]);
    const double bonus = std::sqrt(
        (1.0 + alpha_) *
        std::log(std::max(std::numbers::e * total / t_r, 1.0001)) /
        (2.0 * t_r));
    const double bound = stats_.mean(arm) / loss_scale_ - bonus;
    if (arm == 0 || bound < best_bound) {
      best = arm;
      best_bound = bound;
    }
  }
  current_arm_ = best;
  const double length = tau(epochs_[best] + 1) - tau(epochs_[best]);
  remaining_plays_ =
      static_cast<std::size_t>(std::max(1.0, length)) - 1;
  ++epochs_[best];
  return best;
}

void Ucb2Policy::feedback(std::size_t /*t*/, std::size_t arm, double loss) {
  stats_.observe(arm, loss);
}

PolicyFactory Ucb2Policy::factory(double alpha, double loss_scale) {
  return [alpha, loss_scale](const PolicyContext& context) {
    return std::make_unique<Ucb2Policy>(context, alpha, loss_scale);
  };
}

bool Ucb2Policy::save_state(util::StateWriter& writer) const {
  stats_.save_state(writer);
  std::vector<std::uint64_t> epochs(epochs_.begin(), epochs_.end());
  writer.write_u64s("ucb2.epochs", epochs);
  writer.write_u64("ucb2.current_arm", current_arm_);
  writer.write_u64("ucb2.remaining_plays", remaining_plays_);
  return true;
}

bool Ucb2Policy::load_state(util::StateReader& reader) {
  stats_.load_state(reader);
  const auto epochs = reader.read_u64s("ucb2.epochs", epochs_.size());
  for (std::size_t arm = 0; arm < epochs_.size(); ++arm)
    epochs_[arm] = static_cast<std::size_t>(epochs[arm]);
  current_arm_ = reader.read_u64("ucb2.current_arm");
  remaining_plays_ = reader.read_u64("ucb2.remaining_plays");
  return true;
}

}  // namespace cea::bandit
