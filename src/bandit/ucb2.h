#pragma once

#include <vector>

#include "bandit/policy.h"

namespace cea::bandit {

/// UCB2 (Auer, Cesa-Bianchi & Fischer 2002), the switching-cost-bounded
/// bandit baseline of Section V-A. Arms are played in epochs of length
/// tau(r+1) - tau(r) with tau(r) = ceil((1+alpha)^r), which bounds the
/// number of switches to O(log T). Adapted to losses by selecting the
/// smallest lower confidence bound; observations are scaled into [0, 1] by
/// `loss_scale` for the confidence radius.
class Ucb2Policy final : public ModelSelectionPolicy {
 public:
  Ucb2Policy(const PolicyContext& context, double alpha, double loss_scale);

  std::size_t select(std::size_t t) override;
  void feedback(std::size_t t, std::size_t arm, double loss) override;
  std::string name() const override { return "UCB2"; }

  bool save_state(util::StateWriter& writer) const override;
  bool load_state(util::StateReader& reader) override;

  static PolicyFactory factory(double alpha = 0.5, double loss_scale = 2.5);

 private:
  double tau(std::size_t r) const noexcept;

  ArmStats stats_;
  std::vector<std::size_t> epochs_;  // r_n: completed epochs per arm
  double alpha_;
  double loss_scale_;
  std::size_t current_arm_ = 0;
  std::size_t remaining_plays_ = 0;  // left in the current epoch
};

}  // namespace cea::bandit
