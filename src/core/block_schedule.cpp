#include "core/block_schedule.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace cea::core {

BlockSchedule::BlockSchedule(double switching_cost, std::size_t num_models)
    : switching_cost_(std::max(switching_cost, 1e-6)),
      num_models_(num_models) {
  assert(num_models > 0);
}

double BlockSchedule::block_real_length(std::size_t k) const noexcept {
  assert(k >= 1);
  return 1.5 * switching_cost_ *
         std::sqrt(static_cast<double>(k) /
                   static_cast<double>(num_models_));
}

std::size_t BlockSchedule::block_length(std::size_t k) const noexcept {
  const double d = block_real_length(k);
  return static_cast<std::size_t>(std::max(std::ceil(d), 1.0));
}

double BlockSchedule::learning_rate(std::size_t k) const noexcept {
  assert(k >= 1);
  const double d = block_real_length(k);
  return (2.0 / (d + 1.0)) * std::sqrt(2.0 / static_cast<double>(k));
}

std::size_t BlockSchedule::blocks_for_horizon(
    std::size_t horizon) const noexcept {
  std::size_t covered = 0;
  std::size_t k = 0;
  while (covered < horizon) {
    ++k;
    covered += block_length(k);
  }
  return k;
}

double BlockSchedule::block_count_bound(std::size_t horizon) const noexcept {
  return std::cbrt(static_cast<double>(num_models_)) *
             std::pow(static_cast<double>(horizon) / switching_cost_,
                      2.0 / 3.0) +
         1.0;
}

}  // namespace cea::core
