#pragma once

#include <cstddef>
#include <vector>

namespace cea::core {

/// Block lengths and learning rates of Algorithm 1 as prescribed by
/// Theorem 1:
///
///   d_{i,k}    = (3 u_i / 2) * sqrt(k / N)
///   |B_{i,k}|  = max(ceil(d_{i,k}), 1)
///   eta_{i,k}  = (2 / (d_{i,k} + 1)) * sqrt(2 / k)
///
/// Growing blocks cap the number of switches on edge i by
/// K_i <= N^{1/3} (T / u_i)^{2/3} + 1 while keeping the regret bound of
/// Theorem 1. `switching_weight` scales u_i, the knob swept by Fig. 5 —
/// heavier switching cost yields longer blocks and fewer switches.
class BlockSchedule {
 public:
  /// u_i must be > 0 (a zero switching cost degenerates to per-slot play;
  /// we clamp to a small positive value to stay well-defined).
  BlockSchedule(double switching_cost, std::size_t num_models);

  /// d_{i,k} for 1-based block index k.
  double block_real_length(std::size_t k) const noexcept;

  /// |B_{i,k}| (>= 1) for 1-based block index k.
  std::size_t block_length(std::size_t k) const noexcept;

  /// eta_{i,k} for 1-based block index k.
  double learning_rate(std::size_t k) const noexcept;

  /// Number of blocks needed to cover a horizon of T slots (K_i); the last
  /// block is truncated by the caller.
  std::size_t blocks_for_horizon(std::size_t horizon) const noexcept;

  /// Theoretical upper bound N^{1/3} (T/u)^{2/3} + 1 from the proof of
  /// Theorem 1 (used by tests to check blocks_for_horizon() <= bound).
  double block_count_bound(std::size_t horizon) const noexcept;

  double switching_cost() const noexcept { return switching_cost_; }
  std::size_t num_models() const noexcept { return num_models_; }

 private:
  double switching_cost_;
  std::size_t num_models_;
};

}  // namespace cea::core
