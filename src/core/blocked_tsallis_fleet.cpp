#include "core/blocked_tsallis_fleet.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>

#include "opt/tsallis_step.h"
#include "util/check.h"
#include "util/state_io.h"

namespace cea::core {

BlockedTsallisFleetPolicy::BlockedTsallisFleetPolicy(
    const bandit::FleetPolicyContext& context, double discount)
    : num_edges_(context.num_edges),
      num_models_(context.num_models),
      discount_(discount) {
  assert(context.num_models > 0);
  assert(discount > 0.0 && discount <= 1.0);
  assert(context.switching_cost.size() == context.num_edges);
  schedule_.reserve(num_edges_);
  rng_.reserve(num_edges_);
  for (std::size_t edge = 0; edge < num_edges_; ++edge) {
    schedule_.emplace_back(context.switching_cost[edge], num_models_);
    rng_.emplace_back(bandit::policy_stream_seed(context.run_seed, edge));
  }
  cumulative_losses_.assign(num_edges_ * num_models_, 0.0);
  probabilities_.assign(num_edges_ * num_models_,
                        1.0 / static_cast<double>(num_models_));
  solver_warm_.assign(num_edges_, 0.0);
  block_loss_.assign(num_edges_, 0.0);
  block_index_.assign(num_edges_, 0);
  current_arm_.assign(num_edges_, 0);
  slots_left_.assign(num_edges_, 0);
  block_open_.assign(num_edges_, 0);
  presolved_.assign(num_edges_, 0);
}

void BlockedTsallisFleetPolicy::start_block(std::size_t edge) {
  const std::size_t k = block_index_[edge] + 1;  // 1-based block index
  double* p = probabilities_.data() + edge * num_models_;
  if (presolved_[edge]) {
    // The simulator's cross-edge batch pass already solved this block's
    // OMD step (bit-identical to the call below) into the p slab.
    presolved_[edge] = 0;
  } else {
    // Thread-confined scratch: solves for different edges may run on
    // different shards concurrently, and the scratch never influences the
    // result values (workspace only).
    thread_local std::vector<double> p_scratch;
    thread_local std::vector<double> theta_scratch;
    double warm = solver_warm_[edge];
    tsallis_probabilities_into(cumulative_losses(edge),
                               schedule_[edge].learning_rate(k), p_scratch,
                               theta_scratch, &warm);
    solver_warm_[edge] = warm;
    std::copy(p_scratch.begin(), p_scratch.end(), p);
  }
  current_arm_[edge] = static_cast<std::uint32_t>(
      rng_[edge].categorical({p, num_models_}));
  CEA_CHECK(current_arm_[edge] < num_models_, "blocked_tsallis.arm_index",
            edge, audit::kNoIndex, static_cast<double>(current_arm_[edge]),
            "sampled arm " << current_arm_[edge] << " out of range for "
                           << num_models_ << " models");
  slots_left_[edge] =
      static_cast<std::uint32_t>(schedule_[edge].block_length(k));
  block_loss_[edge] = 0.0;
  block_open_[edge] = 1;
}

void BlockedTsallisFleetPolicy::finish_block(std::size_t edge) {
  // Mirrors BlockedTsallisInfPolicy::finish_block, including its audit
  // checks — the invariants hold per edge regardless of the state layout.
  CEA_CHECK(slots_left_[edge] == 0, "blocked_tsallis.block_truncated", edge,
            audit::kNoIndex, static_cast<double>(slots_left_[edge]),
            "finish_block with " << slots_left_[edge]
                                 << " slots left in block "
                                 << (block_index_[edge] + 1));
  CEA_CHECK(std::isfinite(block_loss_[edge]) && block_loss_[edge] >= 0.0,
            "blocked_tsallis.block_loss", edge, audit::kNoIndex,
            block_loss_[edge],
            "block loss " << block_loss_[edge] << " not finite/nonnegative");
  double* losses = cumulative_losses_.data() + edge * num_models_;
  if (discount_ < 1.0) {
    for (std::size_t n = 0; n < num_models_; ++n) losses[n] *= discount_;
  }
  const double* p = probabilities_.data() + edge * num_models_;
  const std::size_t arm = current_arm_[edge];
  CEA_CHECK(p[arm] > 1e-12, "blocked_tsallis.importance_weight", edge,
            audit::kNoIndex, p[arm],
            "importance weight 1/p with p = " << p[arm] << " for arm "
                                              << arm);
  losses[arm] += block_loss_[edge] / std::max(p[arm], 1e-12);
  CEA_CHECK(std::isfinite(losses[arm]), "blocked_tsallis.estimate_finite",
            edge, audit::kNoIndex, losses[arm],
            "cumulative loss estimate diverged for arm " << arm);
  ++block_index_[edge];
  block_open_[edge] = 0;
}

std::size_t BlockedTsallisFleetPolicy::select(std::size_t edge,
                                              std::size_t /*t*/) {
  if (slots_left_[edge] == 0) {
    if (block_open_[edge]) finish_block(edge);
    start_block(edge);
  }
  --slots_left_[edge];
  return current_arm_[edge];
}

void BlockedTsallisFleetPolicy::feedback(std::size_t edge, std::size_t /*t*/,
                                         std::size_t arm, double loss) {
  assert(arm == current_arm_[edge]);
  (void)arm;
  block_loss_[edge] += loss;
  // Truncated final block: fold the estimate in as soon as the block ends.
  if (slots_left_[edge] == 0 && block_open_[edge]) finish_block(edge);
}

bool BlockedTsallisFleetPolicy::next_solve(std::size_t edge,
                                           bandit::TsallisSolveRequest& out) {
  if (slots_left_[edge] != 0 || block_open_[edge] || presolved_[edge])
    return false;
  out.cumulative_losses = cumulative_losses(edge);
  out.eta = schedule_[edge].learning_rate(block_index_[edge] + 1);
  out.scaled_lambda_warm = solver_warm_[edge];
  return true;
}

void BlockedTsallisFleetPolicy::accept_presolve(
    std::size_t edge, std::span<const double> probabilities,
    double scaled_lambda_warm) {
  assert(probabilities.size() == num_models_);
  std::copy(probabilities.begin(), probabilities.end(),
            probabilities_.data() + edge * num_models_);
  solver_warm_[edge] = scaled_lambda_warm;
  presolved_[edge] = 1;
}

bandit::FleetPolicyFactory BlockedTsallisFleetPolicy::factory() {
  return [](const bandit::FleetPolicyContext& context) {
    return std::make_unique<BlockedTsallisFleetPolicy>(context);
  };
}

bandit::FleetPolicyFactory BlockedTsallisFleetPolicy::discounted_factory(
    double discount) {
  return [discount](const bandit::FleetPolicyContext& context) {
    return std::make_unique<BlockedTsallisFleetPolicy>(context, discount);
  };
}

bool BlockedTsallisFleetPolicy::save_state(util::StateWriter& writer) const {
  writer.write_u64("btfleet.edges", num_edges_);
  for (std::size_t i = 0; i < num_edges_; ++i)
    writer.write_rng("btfleet.rng", rng_[i]);
  writer.write_doubles("btfleet.cumulative_losses", cumulative_losses_);
  writer.write_doubles("btfleet.probabilities", probabilities_);
  writer.write_doubles("btfleet.solver_warm", solver_warm_);
  writer.write_doubles("btfleet.block_loss", block_loss_);
  auto widen = [](const auto& values) {
    return std::vector<std::uint64_t>(values.begin(), values.end());
  };
  writer.write_u64s("btfleet.block_index", widen(block_index_));
  writer.write_u64s("btfleet.current_arm", widen(current_arm_));
  writer.write_u64s("btfleet.slots_left", widen(slots_left_));
  writer.write_u64s("btfleet.block_open", widen(block_open_));
  writer.write_u64s("btfleet.presolved", widen(presolved_));
  return true;
}

bool BlockedTsallisFleetPolicy::load_state(util::StateReader& reader) {
  if (reader.read_u64("btfleet.edges") != num_edges_) {
    throw util::StateError("BlockedTsallisFleet: checkpointed edge count "
                           "does not match this fleet");
  }
  for (std::size_t i = 0; i < num_edges_; ++i)
    reader.read_rng("btfleet.rng", rng_[i]);
  const std::size_t slab = num_edges_ * num_models_;
  cumulative_losses_ = reader.read_doubles("btfleet.cumulative_losses", slab);
  probabilities_ = reader.read_doubles("btfleet.probabilities", slab);
  solver_warm_ = reader.read_doubles("btfleet.solver_warm", num_edges_);
  block_loss_ = reader.read_doubles("btfleet.block_loss", num_edges_);
  auto narrow = [&](std::string_view key, auto& values) {
    const auto wide = reader.read_u64s(key, values.size());
    for (std::size_t i = 0; i < values.size(); ++i) {
      values[i] =
          static_cast<typename std::decay_t<decltype(values)>::value_type>(
              wide[i]);
    }
  };
  narrow("btfleet.block_index", block_index_);
  narrow("btfleet.current_arm", current_arm_);
  narrow("btfleet.slots_left", slots_left_);
  narrow("btfleet.block_open", block_open_);
  narrow("btfleet.presolved", presolved_);
  for (std::size_t i = 0; i < num_edges_; ++i) {
    if (current_arm_[i] >= num_models_) {
      throw util::StateError(
          "BlockedTsallisFleet: checkpointed arm out of range");
    }
  }
  return true;
}

}  // namespace cea::core
