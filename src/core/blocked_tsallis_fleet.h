#pragma once

// Structure-of-arrays fleet implementation of Algorithm 1: the per-edge
// state of core::BlockedTsallisInfPolicy (Chat table, probabilities, block
// cursor, block-loss accumulator, warm root, RNG) laid out as flat arrays
// indexed by edge, behind the bandit::FleetPolicy interface. One object
// replaces num_edges heap-allocated policy instances — at 10k edges that
// is ~40k small allocations and as many pointer chases per slot avoided,
// and the hot scalars of neighbouring edges share cache lines instead of
// living on separate heap chunks.
//
// Bit-identity contract (tests/core/test_blocked_tsallis_fleet.cpp): for
// every edge and slot, select()/feedback()/next_solve()/accept_presolve()
// reproduce — bit for bit — what a per-edge BlockedTsallisInfPolicy
// seeded with bandit::policy_stream_seed(run_seed, edge) would do. The
// golden traces pin this transitively through the simulator.

#include <cstdint>
#include <span>
#include <vector>

#include "bandit/fleet_policy.h"
#include "core/block_schedule.h"
#include "util/rng.h"

namespace cea::core {

class BlockedTsallisFleetPolicy final : public bandit::FleetPolicy {
 public:
  explicit BlockedTsallisFleetPolicy(const bandit::FleetPolicyContext& context,
                                     double discount = 1.0);

  std::size_t num_edges() const noexcept override { return num_edges_; }
  std::size_t select(std::size_t edge, std::size_t t) override;
  void feedback(std::size_t edge, std::size_t t, std::size_t arm,
                double loss) override;
  bool next_solve(std::size_t edge,
                  bandit::TsallisSolveRequest& out) override;
  void accept_presolve(std::size_t edge,
                       std::span<const double> probabilities,
                       double scaled_lambda_warm) override;
  bool supports_batch_solve() const noexcept override { return true; }
  std::string name() const override { return "BlockedTsallisINF"; }

  /// Checkpointing: every SoA slab plus each edge's RNG, bit-exact.
  bool save_state(util::StateWriter& writer) const override;
  bool load_state(util::StateReader& reader) override;

  static bandit::FleetPolicyFactory factory();
  static bandit::FleetPolicyFactory discounted_factory(double discount);

  /// Introspection for the bit-identity tests.
  std::span<const double> cumulative_losses(std::size_t edge) const {
    return {cumulative_losses_.data() + edge * num_models_, num_models_};
  }
  std::span<const double> probabilities(std::size_t edge) const {
    return {probabilities_.data() + edge * num_models_, num_models_};
  }
  std::size_t completed_blocks(std::size_t edge) const noexcept {
    return block_index_[edge];
  }

 private:
  void start_block(std::size_t edge);
  void finish_block(std::size_t edge);

  std::size_t num_edges_ = 0;
  std::size_t num_models_ = 0;
  double discount_ = 1.0;

  // Hot per-edge state, SoA. The [edge * num_models_] slabs hold what each
  // per-edge policy kept in its own heap vectors.
  std::vector<BlockSchedule> schedule_;
  std::vector<Rng> rng_;
  std::vector<double> cumulative_losses_;  ///< Chat slab [E x N]
  std::vector<double> probabilities_;      ///< p slab [E x N]
  std::vector<double> solver_warm_;        ///< scaled root per edge
  std::vector<double> block_loss_;         ///< c_{i,k,J} accumulator
  std::vector<std::uint32_t> block_index_; ///< completed blocks (k-1)
  std::vector<std::uint32_t> current_arm_; ///< J_{i,k}
  std::vector<std::uint32_t> slots_left_;  ///< remaining slots in block
  std::vector<std::uint8_t> block_open_;
  std::vector<std::uint8_t> presolved_;
};

}  // namespace cea::core
