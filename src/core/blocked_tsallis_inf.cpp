#include "core/blocked_tsallis_inf.h"

#include <algorithm>
#include <cassert>
#include <memory>

#include "opt/tsallis_step.h"

namespace cea::core {

BlockedTsallisInfPolicy::BlockedTsallisInfPolicy(
    const bandit::PolicyContext& context)
    : BlockedTsallisInfPolicy(context, 1.0) {}

BlockedTsallisInfPolicy::BlockedTsallisInfPolicy(
    const bandit::PolicyContext& context, double discount)
    : schedule_(context.switching_cost, context.num_models),
      discount_(discount),
      rng_(context.seed),
      cumulative_losses_(context.num_models, 0.0),
      probabilities_(context.num_models,
                     1.0 / static_cast<double>(context.num_models)) {
  assert(context.num_models > 0);
  assert(discount > 0.0 && discount <= 1.0);
}

void BlockedTsallisInfPolicy::start_block() {
  const std::size_t k = block_index_ + 1;  // 1-based block index
  tsallis_probabilities_into(cumulative_losses_, schedule_.learning_rate(k),
                             probabilities_, solver_scratch_, &solver_warm_);
  current_arm_ = rng_.categorical(probabilities_);
  slots_left_ = schedule_.block_length(k);
  block_loss_ = 0.0;
  block_open_ = true;
}

void BlockedTsallisInfPolicy::finish_block() {
  // Optional non-stationarity discount: old evidence fades geometrically.
  if (discount_ < 1.0) {
    for (auto& c : cumulative_losses_) c *= discount_;
  }
  // Importance-weighted estimator: chat_{k,n} = 1{J=n} c_{k,n} / p_{k,n}.
  const double p = std::max(probabilities_[current_arm_], 1e-12);
  cumulative_losses_[current_arm_] += block_loss_ / p;
  ++block_index_;
  block_open_ = false;
}

std::size_t BlockedTsallisInfPolicy::select(std::size_t /*t*/) {
  if (slots_left_ == 0) {
    if (block_open_) finish_block();
    start_block();
  }
  --slots_left_;
  return current_arm_;
}

void BlockedTsallisInfPolicy::feedback(std::size_t /*t*/, std::size_t arm,
                                       double loss) {
  assert(arm == current_arm_);
  (void)arm;
  block_loss_ += loss;
  // Truncated final block: fold the estimate in as soon as the block ends.
  if (slots_left_ == 0 && block_open_) finish_block();
}

bandit::PolicyFactory BlockedTsallisInfPolicy::factory() {
  return [](const bandit::PolicyContext& context) {
    return std::make_unique<BlockedTsallisInfPolicy>(context);
  };
}

bandit::PolicyFactory BlockedTsallisInfPolicy::discounted_factory(
    double discount) {
  return [discount](const bandit::PolicyContext& context) {
    return std::make_unique<BlockedTsallisInfPolicy>(context, discount);
  };
}

}  // namespace cea::core
