#include "core/blocked_tsallis_inf.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>

#include "obs/telemetry.h"
#include "opt/tsallis_step.h"
#include "util/check.h"
#include "util/state_io.h"

namespace cea::core {

BlockedTsallisInfPolicy::BlockedTsallisInfPolicy(
    const bandit::PolicyContext& context)
    : BlockedTsallisInfPolicy(context, 1.0) {}

BlockedTsallisInfPolicy::BlockedTsallisInfPolicy(
    const bandit::PolicyContext& context, double discount)
    : schedule_(context.switching_cost, context.num_models),
      discount_(discount),
      edge_(context.edge),
      rng_(context.seed),
      cumulative_losses_(context.num_models, 0.0),
      probabilities_(context.num_models,
                     1.0 / static_cast<double>(context.num_models)) {
  assert(context.num_models > 0);
  assert(discount > 0.0 && discount <= 1.0);
}

void BlockedTsallisInfPolicy::start_block() {
  const std::size_t k = block_index_ + 1;  // 1-based block index
  if (presolved_) {
    // The simulator's cross-edge batch pass already solved this block's
    // OMD step (bit-identical to the call below) into probabilities_.
    presolved_ = false;
  } else {
    tsallis_probabilities_into(cumulative_losses_, schedule_.learning_rate(k),
                               probabilities_, solver_scratch_, &solver_warm_);
  }
  current_arm_ = rng_.categorical(probabilities_);
  CEA_CHECK(current_arm_ < probabilities_.size(), "blocked_tsallis.arm_index",
            edge_, audit::kNoIndex, static_cast<double>(current_arm_),
            "sampled arm " << current_arm_ << " out of range for "
                           << probabilities_.size() << " models");
  slots_left_ = schedule_.block_length(k);
  block_loss_ = 0.0;
  block_open_ = true;
#if defined(CEA_TELEMETRY)
  if (obs::detail_enabled()) {
    // Block schedule telemetry: |B_{i,k}| grows like sqrt(k), so the
    // length distribution shows how far into the schedule a run got.
    static const double kLengthEdges[] = {1,  2,  4,  8,   16,  32,
                                          64, 128, 256, 512, 1024};
    static const obs::MetricId obs_length =
        obs::histogram("bandit.block_length", kLengthEdges);
    obs::observe(obs_length, static_cast<double>(slots_left_));
    static const obs::MetricId obs_blocks = obs::counter("bandit.blocks");
    obs::add(obs_blocks);
  }
#endif
}

void BlockedTsallisInfPolicy::finish_block() {
  // Block accounting: a block is only folded in once all of its scheduled
  // slots were served (the truncated final block never reaches here), and
  // the accumulated block loss must be a finite, nonnegative sum of
  // per-slot losses (sampled loss + computation cost are both >= 0).
  CEA_CHECK(slots_left_ == 0, "blocked_tsallis.block_truncated", edge_,
            audit::kNoIndex, static_cast<double>(slots_left_),
            "finish_block with " << slots_left_ << " slots left in block "
                                 << (block_index_ + 1));
  CEA_CHECK(std::isfinite(block_loss_) && block_loss_ >= 0.0,
            "blocked_tsallis.block_loss", edge_, audit::kNoIndex, block_loss_,
            "block loss " << block_loss_ << " not finite/nonnegative");
  // Optional non-stationarity discount: old evidence fades geometrically.
  if (discount_ < 1.0) {
    for (auto& c : cumulative_losses_) c *= discount_;
  }
  // Importance-weighted estimator: chat_{k,n} = 1{J=n} c_{k,n} / p_{k,n}.
  // The sampled arm always has the solver's strictly positive probability;
  // a degenerate weight means the simplex solve above went wrong.
  CEA_CHECK(probabilities_[current_arm_] > 1e-12,
            "blocked_tsallis.importance_weight", edge_, audit::kNoIndex,
            probabilities_[current_arm_],
            "importance weight 1/p with p = " << probabilities_[current_arm_]
                                              << " for arm " << current_arm_);
  const double p = std::max(probabilities_[current_arm_], 1e-12);
  cumulative_losses_[current_arm_] += block_loss_ / p;
  CEA_CHECK(std::isfinite(cumulative_losses_[current_arm_]),
            "blocked_tsallis.estimate_finite", edge_, audit::kNoIndex,
            cumulative_losses_[current_arm_],
            "cumulative loss estimate diverged for arm " << current_arm_);
  ++block_index_;
  block_open_ = false;
}

std::size_t BlockedTsallisInfPolicy::select(std::size_t /*t*/) {
  if (slots_left_ == 0) {
    if (block_open_) finish_block();
    start_block();
  }
  --slots_left_;
  return current_arm_;
}

void BlockedTsallisInfPolicy::feedback(std::size_t /*t*/, std::size_t arm,
                                       double loss) {
  assert(arm == current_arm_);
  (void)arm;
  block_loss_ += loss;
  // Truncated final block: fold the estimate in as soon as the block ends.
  if (slots_left_ == 0 && block_open_) finish_block();
}

bool BlockedTsallisInfPolicy::next_solve(bandit::TsallisSolveRequest& out) {
  // A solve is due iff the next select() will call start_block(): the
  // open block was closed by this edge's own feedback (or none started
  // yet) and has no slots left. All solve inputs are frozen until then.
  if (slots_left_ != 0 || block_open_ || presolved_) return false;
  out.cumulative_losses = cumulative_losses_;
  out.eta = schedule_.learning_rate(block_index_ + 1);
  out.scaled_lambda_warm = solver_warm_;
  return true;
}

void BlockedTsallisInfPolicy::accept_presolve(
    std::span<const double> probabilities, double scaled_lambda_warm) {
  assert(probabilities.size() == cumulative_losses_.size());
  probabilities_.assign(probabilities.begin(), probabilities.end());
  solver_warm_ = scaled_lambda_warm;
  presolved_ = true;
}

bandit::PolicyFactory BlockedTsallisInfPolicy::factory() {
  return [](const bandit::PolicyContext& context) {
    return std::make_unique<BlockedTsallisInfPolicy>(context);
  };
}

bandit::PolicyFactory BlockedTsallisInfPolicy::discounted_factory(
    double discount) {
  return [discount](const bandit::PolicyContext& context) {
    return std::make_unique<BlockedTsallisInfPolicy>(context, discount);
  };
}

bool BlockedTsallisInfPolicy::save_state(util::StateWriter& writer) const {
  writer.write_rng("btinf.rng", rng_);
  writer.write_doubles("btinf.cumulative_losses", cumulative_losses_);
  writer.write_doubles("btinf.probabilities", probabilities_);
  writer.write_double("btinf.solver_warm", solver_warm_);
  writer.write_bool("btinf.presolved", presolved_);
  writer.write_u64("btinf.block_index", block_index_);
  writer.write_u64("btinf.current_arm", current_arm_);
  writer.write_u64("btinf.slots_left", slots_left_);
  writer.write_double("btinf.block_loss", block_loss_);
  writer.write_bool("btinf.block_open", block_open_);
  return true;
}

bool BlockedTsallisInfPolicy::load_state(util::StateReader& reader) {
  reader.read_rng("btinf.rng", rng_);
  cumulative_losses_ =
      reader.read_doubles("btinf.cumulative_losses", cumulative_losses_.size());
  probabilities_ =
      reader.read_doubles("btinf.probabilities", probabilities_.size());
  solver_warm_ = reader.read_double("btinf.solver_warm");
  presolved_ = reader.read_bool("btinf.presolved");
  block_index_ = reader.read_u64("btinf.block_index");
  current_arm_ = reader.read_u64("btinf.current_arm");
  slots_left_ = reader.read_u64("btinf.slots_left");
  block_loss_ = reader.read_double("btinf.block_loss");
  block_open_ = reader.read_bool("btinf.block_open");
  if (current_arm_ >= probabilities_.size()) {
    throw util::StateError("BlockedTsallisINF: checkpointed arm out of range");
  }
  return true;
}

}  // namespace cea::core
