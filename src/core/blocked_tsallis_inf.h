#pragma once

#include <vector>

#include "bandit/policy.h"
#include "core/block_schedule.h"

namespace cea::core {

/// Algorithm 1 of the paper: Online Model Selection via switching-aware
/// blocked Tsallis-INF bandit learning (one instance per edge).
///
/// The horizon is divided into blocks of growing length |B_{i,k}| (see
/// BlockSchedule); a model J_{i,k} is sampled once per block from the
/// online-mirror-descent distribution
///   p_{i,k} = argmin_p { <p, Chat_{k-1}> - sum_n (4 sqrt(p_n) - 2 p_n)/eta_{i,k} }
/// and held for the whole block, so switches happen only at block
/// boundaries (Insight 1). At each slot the realized bandit loss
/// L_{i,J}^t + v_{i,J} accumulates into the block loss c_{i,k,J} (Insight 2:
/// the per-slot average loss is an unbiased sample of l'_{i,n} regardless of
/// the random arrival count M_i). At block end the importance-weighted
/// estimate chat_{i,k,n} = 1{J=n} c_{i,k,n} / p_{i,k,n} updates Chat.
///
/// Theorem 1: regret plus cumulative switching cost is
/// O((u_i N)^{2/3} T^{1/3} + u_i^2 + ln T) * sum_{n != n*} 1/Delta_{i,n}.
class BlockedTsallisInfPolicy final : public bandit::ModelSelectionPolicy,
                                      public bandit::TsallisBatchSolvable {
 public:
  explicit BlockedTsallisInfPolicy(const bandit::PolicyContext& context);

  /// Extension: discounted estimates for non-stationary streams. Every
  /// finished block first decays the whole cumulative table by `discount`
  /// (1.0 = the paper's Algorithm 1). Older evidence fades, so the policy
  /// tracks concept drift at the cost of slightly looser stationary-case
  /// regret; compared in bench/ext_nonstationary.
  BlockedTsallisInfPolicy(const bandit::PolicyContext& context,
                          double discount);

  std::size_t select(std::size_t t) override;
  void feedback(std::size_t t, std::size_t arm, double loss) override;
  std::string name() const override { return "BlockedTsallisINF"; }

  /// Cross-edge batch solving (bandit::TsallisBatchSolvable): a solve is
  /// due exactly when the previous block is closed and exhausted, and its
  /// inputs (Chat table, learning rate of block k, warm root) are frozen
  /// by the edge's own last feedback — so the simulator may solve it
  /// before the slot's edge fan-out.
  bool next_solve(bandit::TsallisSolveRequest& out) override;
  void accept_presolve(std::span<const double> probabilities,
                       double scaled_lambda_warm) override;

  /// Checkpointing: the full block-learning state (Chat table, current
  /// distribution, block cursor, warm root, RNG). solver_scratch_ is
  /// transient and excluded.
  bool save_state(util::StateWriter& writer) const override;
  bool load_state(util::StateReader& reader) override;

  static bandit::PolicyFactory factory();

  /// Factory for the discounted variant (discount in (0, 1]).
  static bandit::PolicyFactory discounted_factory(double discount);

  /// Introspection for tests and the Fig. 8 bench.
  std::size_t completed_blocks() const noexcept { return block_index_; }
  const std::vector<double>& cumulative_loss_estimates() const noexcept {
    return cumulative_losses_;
  }
  const std::vector<double>& current_probabilities() const noexcept {
    return probabilities_;
  }
  const BlockSchedule& schedule() const noexcept { return schedule_; }

 private:
  void start_block();
  void finish_block();

  BlockSchedule schedule_;
  double discount_ = 1.0;
  std::size_t edge_ = 0;  ///< owning edge, for audit-violation context
  Rng rng_;
  std::vector<double> cumulative_losses_;  // Chat_{i,k}(n)
  std::vector<double> probabilities_;      // p_{i,k,n}
  std::vector<double> solver_scratch_;     // reused across block solves
  double solver_warm_ = 0.0;               // scaled root of the last solve
  bool presolved_ = false;                 // probabilities_ already solved
  std::size_t block_index_ = 0;            // completed blocks (k-1)
  std::size_t current_arm_ = 0;            // J_{i,k}
  std::size_t slots_left_ = 0;             // remaining slots in the block
  double block_loss_ = 0.0;                // c_{i,k,J} accumulator
  bool block_open_ = false;
};

}  // namespace cea::core
