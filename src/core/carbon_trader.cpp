#include "core/carbon_trader.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>

#include "util/check.h"

namespace cea::core {

OnlineCarbonTrader::OnlineCarbonTrader(const trading::TraderContext& context,
                                       const OnlineTraderConfig& config)
    : context_(context), lambda_(config.initial_lambda) {
  const double horizon =
      static_cast<double>(std::max<std::size_t>(context.horizon, 1));
  const double t_third = std::pow(horizon, -1.0 / 3.0);
  gamma1_ = config.gamma1_scale * t_third;
  gamma2_ = config.gamma2_scale * t_third;
  per_slot_cap_share_ = context.carbon_cap / horizon;
  prev_decision_ = {config.initial_buy, config.initial_sell};
}

trading::TradeDecision OnlineCarbonTrader::decide(
    std::size_t /*t*/, const trading::TradeObservation& /*obs*/) {
  if (!has_history_) {
    // Slot 1 has no (t-1) information; hold the initial decision Zbar^0.
    return prev_decision_;
  }
  trading::TradeDecision decision;
  decision.buy = trading::clamp_trade(
      prev_decision_.buy + gamma2_ * (lambda_ - prev_buy_price_), context_);
  decision.sell = trading::clamp_trade(
      prev_decision_.sell + gamma2_ * (prev_sell_price_ - lambda_), context_);
  CEA_CHECK(decision.buy >= 0.0 && decision.buy <= context_.max_trade_per_slot,
            "trader.primal_box", audit::kNoIndex, audit::kNoIndex,
            decision.buy,
            "buy " << decision.buy << " outside [0, "
                   << context_.max_trade_per_slot << "]");
  CEA_CHECK(decision.sell >= 0.0 &&
                decision.sell <= context_.max_trade_per_slot,
            "trader.primal_box", audit::kNoIndex, audit::kNoIndex,
            decision.sell,
            "sell " << decision.sell << " outside [0, "
                    << context_.max_trade_per_slot << "]");
  return decision;
}

void OnlineCarbonTrader::feedback(std::size_t /*t*/, double emission,
                                  const trading::TradeObservation& obs,
                                  const trading::TradeDecision& executed) {
  const double g = emission - per_slot_cap_share_ - executed.buy +
                   executed.sell;
  lambda_ = std::max(0.0, lambda_ + gamma1_ * g);
  // Dual feasibility: lambda^{t+1} = [lambda^t + gamma1 g^t]^+ must stay
  // finite and nonnegative; the executed trade the dual sees must lie in
  // the liquidity box (the simulator's holdings clamp only shrinks sells).
  CEA_CHECK(std::isfinite(lambda_) && lambda_ >= 0.0, "trader.dual_nonneg",
            audit::kNoIndex, audit::kNoIndex, lambda_,
            "lambda " << lambda_ << " after dual ascent with g = " << g);
  CEA_CHECK(executed.buy >= 0.0 &&
                executed.buy <= context_.max_trade_per_slot &&
                executed.sell >= 0.0 &&
                executed.sell <= context_.max_trade_per_slot,
            "trader.executed_box", audit::kNoIndex, audit::kNoIndex,
            executed.buy - executed.sell,
            "executed trade (" << executed.buy << ", " << executed.sell
                               << ") outside [0, "
                               << context_.max_trade_per_slot << "]^2");
  prev_buy_price_ = obs.buy_price;
  prev_sell_price_ = obs.sell_price;
  prev_decision_ = executed;
  has_history_ = true;
}

trading::TraderFactory OnlineCarbonTrader::factory(OnlineTraderConfig config) {
  return [config](const trading::TraderContext& context) {
    return std::make_unique<OnlineCarbonTrader>(context, config);
  };
}

}  // namespace cea::core
