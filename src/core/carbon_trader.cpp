#include "core/carbon_trader.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>

namespace cea::core {

OnlineCarbonTrader::OnlineCarbonTrader(const trading::TraderContext& context,
                                       const OnlineTraderConfig& config)
    : context_(context), lambda_(config.initial_lambda) {
  const double horizon =
      static_cast<double>(std::max<std::size_t>(context.horizon, 1));
  const double t_third = std::pow(horizon, -1.0 / 3.0);
  gamma1_ = config.gamma1_scale * t_third;
  gamma2_ = config.gamma2_scale * t_third;
  per_slot_cap_share_ = context.carbon_cap / horizon;
  prev_decision_ = {config.initial_buy, config.initial_sell};
}

trading::TradeDecision OnlineCarbonTrader::decide(
    std::size_t /*t*/, const trading::TradeObservation& /*obs*/) {
  if (!has_history_) {
    // Slot 1 has no (t-1) information; hold the initial decision Zbar^0.
    return prev_decision_;
  }
  trading::TradeDecision decision;
  decision.buy = trading::clamp_trade(
      prev_decision_.buy + gamma2_ * (lambda_ - prev_buy_price_), context_);
  decision.sell = trading::clamp_trade(
      prev_decision_.sell + gamma2_ * (prev_sell_price_ - lambda_), context_);
  return decision;
}

void OnlineCarbonTrader::feedback(std::size_t /*t*/, double emission,
                                  const trading::TradeObservation& obs,
                                  const trading::TradeDecision& executed) {
  const double g = emission - per_slot_cap_share_ - executed.buy +
                   executed.sell;
  lambda_ = std::max(0.0, lambda_ + gamma1_ * g);
  prev_buy_price_ = obs.buy_price;
  prev_sell_price_ = obs.sell_price;
  prev_decision_ = executed;
  has_history_ = true;
}

trading::TraderFactory OnlineCarbonTrader::factory(OnlineTraderConfig config) {
  return [config](const trading::TraderContext& context) {
    return std::make_unique<OnlineCarbonTrader>(context, config);
  };
}

}  // namespace cea::core
