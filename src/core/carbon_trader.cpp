#include "core/carbon_trader.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>

#include "obs/telemetry.h"
#include "util/check.h"
#include "util/state_io.h"

namespace cea::core {

OnlineCarbonTrader::OnlineCarbonTrader(const trading::TraderContext& context,
                                       const OnlineTraderConfig& config)
    : context_(context), lambda_(config.initial_lambda) {
  const double horizon =
      static_cast<double>(std::max<std::size_t>(context.horizon, 1));
  const double t_third = std::pow(horizon, -1.0 / 3.0);
  gamma1_ = config.gamma1_scale * t_third;
  gamma2_ = config.gamma2_scale * t_third;
  per_slot_cap_share_ = context.carbon_cap / horizon;
  prev_decision_ = {config.initial_buy, config.initial_sell};
}

trading::TradeDecision OnlineCarbonTrader::decide(
    std::size_t /*t*/, const trading::TradeObservation& /*obs*/) {
  if (!has_history_) {
    // Slot 1 has no (t-1) information; hold the initial decision Zbar^0.
    return prev_decision_;
  }
  trading::TradeDecision decision;
  const double raw_buy =
      prev_decision_.buy + gamma2_ * (lambda_ - prev_buy_price_);
  const double raw_sell =
      prev_decision_.sell + gamma2_ * (prev_sell_price_ - lambda_);
  decision.buy = trading::clamp_trade(raw_buy, context_);
  decision.sell = trading::clamp_trade(raw_sell, context_);
#if defined(CEA_TELEMETRY)
  if (obs::detail_enabled()) {
    // How often the rectified primal step's per-coordinate box clamp
    // actually binds (per coordinate, either box face). Fires once per
    // (edge-set, slot) decide — detail-gated with the rest of the
    // per-slot trader telemetry to keep the idle cost to the single
    // sim.slot span.
    static const obs::MetricId obs_clamp_buy =
        obs::counter("trader.primal_clamp.buy");
    static const obs::MetricId obs_clamp_sell =
        obs::counter("trader.primal_clamp.sell");
    if (decision.buy != raw_buy) obs::add(obs_clamp_buy);
    if (decision.sell != raw_sell) obs::add(obs_clamp_sell);
  }
#endif
  CEA_CHECK(decision.buy >= 0.0 && decision.buy <= context_.max_trade_per_slot,
            "trader.primal_box", audit::kNoIndex, audit::kNoIndex,
            decision.buy,
            "buy " << decision.buy << " outside [0, "
                   << context_.max_trade_per_slot << "]");
  CEA_CHECK(decision.sell >= 0.0 &&
                decision.sell <= context_.max_trade_per_slot,
            "trader.primal_box", audit::kNoIndex, audit::kNoIndex,
            decision.sell,
            "sell " << decision.sell << " outside [0, "
                    << context_.max_trade_per_slot << "]");
  return decision;
}

void OnlineCarbonTrader::feedback(std::size_t /*t*/, double emission,
                                  const trading::TradeObservation& obs,
                                  const trading::TradeDecision& executed) {
  const double g = emission - per_slot_cap_share_ - executed.buy +
                   executed.sell;
  lambda_ = std::max(0.0, lambda_ + gamma1_ * g);
#if defined(CEA_TELEMETRY)
  if (obs::detail_enabled()) {
    // Dual trajectory: last value as a gauge, distribution over the run as
    // a histogram, and — when tracing — a Perfetto counter track that
    // renders lambda over wall time.
    static const obs::MetricId obs_lambda_gauge =
        obs::gauge("trader.lambda");
    obs::set(obs_lambda_gauge, lambda_);
    static const double kLambdaEdges[] = {0.0,  0.01, 0.1, 0.5, 1.0,
                                          2.0,  5.0,  10.0, 50.0, 100.0};
    static const obs::MetricId obs_lambda_hist =
        obs::histogram("trader.lambda_path", kLambdaEdges);
    obs::observe(obs_lambda_hist, lambda_);
    obs::trace_counter("trader.lambda", lambda_);
  }
#endif
  // Dual feasibility: lambda^{t+1} = [lambda^t + gamma1 g^t]^+ must stay
  // finite and nonnegative; the executed trade the dual sees must lie in
  // the liquidity box (the simulator's holdings clamp only shrinks sells).
  CEA_CHECK(std::isfinite(lambda_) && lambda_ >= 0.0, "trader.dual_nonneg",
            audit::kNoIndex, audit::kNoIndex, lambda_,
            "lambda " << lambda_ << " after dual ascent with g = " << g);
  CEA_CHECK(executed.buy >= 0.0 &&
                executed.buy <= context_.max_trade_per_slot &&
                executed.sell >= 0.0 &&
                executed.sell <= context_.max_trade_per_slot,
            "trader.executed_box", audit::kNoIndex, audit::kNoIndex,
            executed.buy - executed.sell,
            "executed trade (" << executed.buy << ", " << executed.sell
                               << ") outside [0, "
                               << context_.max_trade_per_slot << "]^2");
  prev_buy_price_ = obs.buy_price;
  prev_sell_price_ = obs.sell_price;
  prev_decision_ = executed;
  has_history_ = true;
}

trading::TraderFactory OnlineCarbonTrader::factory(OnlineTraderConfig config) {
  return [config](const trading::TraderContext& context) {
    return std::make_unique<OnlineCarbonTrader>(context, config);
  };
}

bool OnlineCarbonTrader::save_state(util::StateWriter& writer) const {
  writer.write_double("onlinepd.lambda", lambda_);
  writer.write_double("onlinepd.prev_buy_price", prev_buy_price_);
  writer.write_double("onlinepd.prev_sell_price", prev_sell_price_);
  writer.write_double("onlinepd.prev_buy", prev_decision_.buy);
  writer.write_double("onlinepd.prev_sell", prev_decision_.sell);
  writer.write_bool("onlinepd.has_history", has_history_);
  return true;
}

bool OnlineCarbonTrader::load_state(util::StateReader& reader) {
  lambda_ = reader.read_double("onlinepd.lambda");
  prev_buy_price_ = reader.read_double("onlinepd.prev_buy_price");
  prev_sell_price_ = reader.read_double("onlinepd.prev_sell_price");
  prev_decision_.buy = reader.read_double("onlinepd.prev_buy");
  prev_decision_.sell = reader.read_double("onlinepd.prev_sell");
  has_history_ = reader.read_bool("onlinepd.has_history");
  return true;
}

}  // namespace cea::core
