#pragma once

#include "trading/trader.h"

namespace cea::core {

/// Hyper-parameters of Algorithm 2. The step sizes follow the Theorem 2
/// prescription gamma = O(T^{-1/3}); the multipliers set the constant.
struct OnlineTraderConfig {
  double gamma1_scale = 2.0;  ///< dual ascent step:    gamma1 = scale * T^{-1/3}
  double gamma2_scale = 10.0; ///< primal descent step: gamma2 = scale * T^{-1/3}
  double initial_lambda = 0.0;
  double initial_buy = 0.0;   ///< Zbar^0
  double initial_sell = 0.0;
};

/// Algorithm 2 of the paper: Online Carbon Trading via long-term-aware
/// online primal-dual learning.
///
/// The long-term neutrality constraint sum_t g^t(Z^t) <= 0 with
///   g^t(Z) = e^t - R/T - z + w
/// is absorbed via Lagrange relaxation. At slot t the primal step solves
/// the rectified proximal problem P2^t
///   min_{Z >= 0}  grad f^{t-1}(Zbar^{t-1}) . (Z - Zbar^{t-1})
///                 + lambda^t g^{t-1}(Z) + ||Z - Zbar^{t-1}||^2 / (2 gamma2)
/// whose per-coordinate closed form is
///   z^t = clamp(zbar + gamma2 (lambda^t - c^{t-1}), 0, cap)
///   w^t = clamp(wbar + gamma2 (r^{t-1} - lambda^t), 0, cap);
/// note that only information up to t-1 is used. The dual ascent step after
/// observing the slot is lambda^{t+1} = [lambda^t + gamma1 g^t(Zbar^t)]^+.
///
/// Theorem 2: both the regret against per-slot optima and the fit
/// ||[sum_t g^t]^+|| grow as O(T^{2/3}).
class OnlineCarbonTrader final : public trading::TradingPolicy {
 public:
  OnlineCarbonTrader(const trading::TraderContext& context,
                     const OnlineTraderConfig& config);

  trading::TradeDecision decide(std::size_t t,
                                const trading::TradeObservation& obs) override;
  void feedback(std::size_t t, double emission,
                const trading::TradeObservation& obs,
                const trading::TradeDecision& executed) override;
  std::string name() const override { return "OnlinePD"; }
  double dual_value() const override { return lambda_; }

  /// Checkpointing: dual variable plus the trailing (t-1) observations.
  bool save_state(util::StateWriter& writer) const override;
  bool load_state(util::StateReader& reader) override;

  static trading::TraderFactory factory(OnlineTraderConfig config = {});

  /// Introspection for tests/benches.
  double lambda() const noexcept { return lambda_; }
  double gamma1() const noexcept { return gamma1_; }
  double gamma2() const noexcept { return gamma2_; }

 private:
  trading::TraderContext context_;
  double gamma1_;
  double gamma2_;
  double lambda_;
  double per_slot_cap_share_;  // R / T
  // Trailing observations (slot t-1).
  double prev_buy_price_ = 0.0;
  double prev_sell_price_ = 0.0;
  trading::TradeDecision prev_decision_;
  bool has_history_ = false;
};

}  // namespace cea::core
