#include "core/controller.h"

#include <cassert>

namespace cea::core {

CarbonNeutralController::CarbonNeutralController(
    std::vector<bandit::PolicyContext> edge_contexts,
    const trading::TraderContext& trader_context,
    const OnlineTraderConfig& trader_config)
    : trader_(std::make_unique<OnlineCarbonTrader>(trader_context,
                                                   trader_config)) {
  edges_.reserve(edge_contexts.size());
  for (const auto& context : edge_contexts) {
    edges_.push_back(std::make_unique<BlockedTsallisInfPolicy>(context));
  }
}

std::vector<std::size_t> CarbonNeutralController::select_models(
    std::size_t t) {
  std::vector<std::size_t> models;
  models.reserve(edges_.size());
  for (auto& edge : edges_) models.push_back(edge->select(t));
  return models;
}

trading::TradeDecision CarbonNeutralController::decide_trade(
    std::size_t t, const trading::TradeObservation& obs) {
  return trader_->decide(t, obs);
}

void CarbonNeutralController::report_inference(std::size_t t,
                                               std::size_t edge,
                                               std::size_t model,
                                               double bandit_loss) {
  assert(edge < edges_.size());
  edges_[edge]->feedback(t, model, bandit_loss);
}

void CarbonNeutralController::report_slot(
    std::size_t t, double emission, const trading::TradeObservation& obs,
    const trading::TradeDecision& executed) {
  trader_->feedback(t, emission, obs, executed);
}

}  // namespace cea::core
