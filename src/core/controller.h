#pragma once

#include <memory>
#include <vector>

#include "bandit/policy.h"
#include "core/blocked_tsallis_inf.h"
#include "core/carbon_trader.h"
#include "trading/trader.h"

namespace cea::core {

/// The joint online controller of the paper (Section III): the P0 problem
/// is decomposed into P1 (model selection and placement, one Algorithm-1
/// bandit per edge) and P2 (carbon allowance trading, one Algorithm-2
/// primal-dual learner). This facade wires the two together behind the
/// per-slot workflow of Fig. 2 and is what the examples and the simulator's
/// "Ours" configuration drive.
///
/// Per-slot protocol:
///   1. select_models(t)        -> model to host on each edge (download if
///                                 changed; the caller pays u_i).
///   2. decide_trade(t, quote)  -> allowances to buy/sell this slot.
///   3. report_inference(...)   -> per-edge bandit loss L^t + v (once per
///                                 edge per slot).
///   4. report_slot(...)        -> realized total emission e^t closes the
///                                 slot and advances the dual variable.
class CarbonNeutralController {
 public:
  CarbonNeutralController(std::vector<bandit::PolicyContext> edge_contexts,
                          const trading::TraderContext& trader_context,
                          const OnlineTraderConfig& trader_config = {});

  /// Step 1: model choices for all edges at slot t.
  std::vector<std::size_t> select_models(std::size_t t);

  /// Step 2: trade decision for slot t.
  trading::TradeDecision decide_trade(std::size_t t,
                                      const trading::TradeObservation& obs);

  /// Step 3: bandit feedback for one edge.
  void report_inference(std::size_t t, std::size_t edge, std::size_t model,
                        double bandit_loss);

  /// Step 4: close the slot with the realized emission.
  void report_slot(std::size_t t, double emission,
                   const trading::TradeObservation& obs,
                   const trading::TradeDecision& executed);

  std::size_t num_edges() const noexcept { return edges_.size(); }
  const BlockedTsallisInfPolicy& edge_policy(std::size_t edge) const {
    return *edges_[edge];
  }
  const OnlineCarbonTrader& trader() const noexcept { return *trader_; }

 private:
  std::vector<std::unique_ptr<BlockedTsallisInfPolicy>> edges_;
  std::unique_ptr<OnlineCarbonTrader> trader_;
};

}  // namespace cea::core
