#include "core/mpc_trader.h"

#include <algorithm>
#include <cassert>
#include <memory>

#include "opt/simplex.h"

namespace cea::core {
namespace {
constexpr double kEmissionSmoothing = 0.2;  // EW average factor
constexpr std::size_t kWarmup = 30;         // predictor warmup (slots)
}  // namespace

MpcCarbonTrader::MpcCarbonTrader(const trading::TraderContext& context,
                                 std::size_t window, double forgetting)
    : context_(context),
      window_(std::max<std::size_t>(window, 1)),
      buy_predictor_(forgetting),
      sell_predictor_(forgetting) {
  cap_share_ = context.carbon_cap /
               static_cast<double>(std::max<std::size_t>(context.horizon, 1));
}

trading::TradeDecision MpcCarbonTrader::decide(
    std::size_t t, const trading::TradeObservation& /*obs*/) {
  if (!has_history_) return {};
  // Remaining slots bound the window.
  const std::size_t remaining =
      context_.horizon > t ? context_.horizon - t : 1;
  const std::size_t window = std::min(window_, remaining);

  // Roll the AR(1) models forward across the window.
  std::vector<double> buy_forecast(window), sell_forecast(window);
  double c = buy_predictor_.predict_next(kWarmup);
  double r = sell_predictor_.predict_next(kWarmup);
  for (std::size_t h = 0; h < window; ++h) {
    buy_forecast[h] = std::max(c, 0.01);
    sell_forecast[h] = std::max(std::min(r, buy_forecast[h]), 0.0);
    if (buy_predictor_.observations() >= kWarmup) {
      c = buy_predictor_.slope() * c + buy_predictor_.intercept();
      r = sell_predictor_.slope() * r + sell_predictor_.intercept();
    }
  }

  // LP variables: z_0..z_{H-1}, w_0..w_{H-1}.
  LpProblem problem;
  problem.objective.resize(2 * window);
  for (std::size_t h = 0; h < window; ++h) {
    problem.objective[h] = buy_forecast[h];
    problem.objective[window + h] = -sell_forecast[h];
  }
  // Prorated prefix feasibility within the window.
  for (std::size_t h = 0; h < window; ++h) {
    LpConstraint con;
    con.coeffs.assign(2 * window, 0.0);
    for (std::size_t s = 0; s <= h; ++s) {
      con.coeffs[s] = -1.0;           // -z_s
      con.coeffs[window + s] = 1.0;   // +w_s
    }
    con.relation = Relation::kLessEqual;
    con.rhs = balance_ + static_cast<double>(h + 1) *
                             (cap_share_ - emission_estimate_);
    problem.constraints.push_back(std::move(con));
  }
  // Liquidity box.
  for (std::size_t v = 0; v < 2 * window; ++v) {
    LpConstraint con;
    con.coeffs.assign(2 * window, 0.0);
    con.coeffs[v] = 1.0;
    con.relation = Relation::kLessEqual;
    con.rhs = context_.max_trade_per_slot;
    problem.constraints.push_back(std::move(con));
  }

  // One LP per slot per run: reuse a per-thread arena-backed solver so the
  // rolling-horizon solves stop allocating once the window shape is warm.
  thread_local LpSolver lp_solver;
  const LpSolution solution = lp_solver.solve(problem, 20000);
  trading::TradeDecision decision;
  if (solution.status == LpStatus::kOptimal) {
    decision.buy = trading::clamp_trade(solution.x[0], context_);
    decision.sell = trading::clamp_trade(solution.x[window], context_);
  } else {
    // Infeasible window (deficit beyond liquidity): buy at the cap.
    decision.buy = context_.max_trade_per_slot;
  }
  return decision;
}

void MpcCarbonTrader::feedback(std::size_t /*t*/, double emission,
                               const trading::TradeObservation& obs,
                               const trading::TradeDecision& executed) {
  if (!has_history_) {
    emission_estimate_ = emission;
  } else {
    emission_estimate_ = kEmissionSmoothing * emission +
                         (1.0 - kEmissionSmoothing) * emission_estimate_;
  }
  balance_ += cap_share_ - emission + executed.buy - executed.sell;
  buy_predictor_.observe(obs.buy_price);
  sell_predictor_.observe(obs.sell_price);
  has_history_ = true;
}

trading::TraderFactory MpcCarbonTrader::factory(std::size_t window,
                                                double forgetting) {
  return [window, forgetting](const trading::TraderContext& context) {
    return std::make_unique<MpcCarbonTrader>(context, window, forgetting);
  };
}

}  // namespace cea::core
