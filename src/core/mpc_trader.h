#pragma once

#include "core/price_predictor.h"
#include "trading/trader.h"

namespace cea::core {

/// Receding-horizon (MPC) carbon trader: at every slot it rolls the AR(1)
/// price model forward over a lookahead window, assumes emissions continue
/// at their exponentially weighted average, solves the resulting small LP
/// with the library's simplex solver, executes the first step, and
/// re-solves next slot.
///
/// LP at slot t with window H (variables z_h, w_h, h = 0..H-1):
///   min   sum_h chat_{t+h} z_h - rhat_{t+h} w_h
///   s.t.  Btilde_t + sum_{s<=h}(z_s - w_s - ehat) + (h+1) R/T >= 0  for all h
///         0 <= z_h, w_h <= cap,
/// where Btilde_t is the prorated allowance balance (cap share accrued so
/// far minus emissions plus net purchases). The prorated prefix constraint
/// forces gradual coverage instead of end-loaded buying.
///
/// A planning-heavy contrast to Algorithm 2's O(1) primal-dual step: it
/// buys lookahead optimality with an LP per slot and with sensitivity to
/// forecast error. Compared in bench/ext_price_prediction.
class MpcCarbonTrader final : public trading::TradingPolicy {
 public:
  MpcCarbonTrader(const trading::TraderContext& context, std::size_t window,
                  double forgetting = 0.98);

  trading::TradeDecision decide(std::size_t t,
                                const trading::TradeObservation& obs) override;
  void feedback(std::size_t t, double emission,
                const trading::TradeObservation& obs,
                const trading::TradeDecision& executed) override;
  std::string name() const override { return "MPC"; }

  static trading::TraderFactory factory(std::size_t window = 12,
                                        double forgetting = 0.98);

  double prorated_balance() const noexcept { return balance_; }
  double emission_estimate() const noexcept { return emission_estimate_; }

 private:
  trading::TraderContext context_;
  std::size_t window_;
  double cap_share_;
  Ar1PricePredictor buy_predictor_;
  Ar1PricePredictor sell_predictor_;
  double balance_ = 0.0;            // prorated: accrued cap share - e + z - w
  double emission_estimate_ = 0.0;  // EW average of observed emissions
  bool has_history_ = false;
};

}  // namespace cea::core
