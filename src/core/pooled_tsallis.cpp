#include "core/pooled_tsallis.h"

#include <algorithm>
#include <cassert>

#include "opt/tsallis_step.h"

namespace cea::core {

PooledTsallisCoordinator::PooledTsallisCoordinator(std::size_t num_models)
    : cumulative_losses_(num_models, 0.0) {
  assert(num_models > 0);
}

void PooledTsallisCoordinator::report_block(std::size_t arm,
                                            double block_loss,
                                            double arm_probability) {
  assert(arm < cumulative_losses_.size());
  cumulative_losses_[arm] +=
      block_loss / std::max(arm_probability, 1e-12);
  ++blocks_;
}

PooledTsallisPolicy::PooledTsallisPolicy(
    const bandit::PolicyContext& context,
    std::shared_ptr<PooledTsallisCoordinator> coordinator)
    : coordinator_(std::move(coordinator)),
      schedule_(context.switching_cost, context.num_models),
      rng_(context.seed),
      probabilities_(context.num_models,
                     1.0 / static_cast<double>(context.num_models)) {
  assert(coordinator_ != nullptr);
  assert(coordinator_->num_models() == context.num_models);
}

void PooledTsallisPolicy::start_block() {
  // Deliberately NOT bandit::TsallisBatchSolvable: the shared table this
  // solve reads is written by earlier edges' finish_block within the
  // same slot (edge i's block can close in its slot-t feedback, before
  // edge i+1's slot-t select), so a slot-start snapshot would change the
  // probabilities. The per-edge policies have no such intra-slot coupling.
  const std::size_t k = block_index_ + 1;
  tsallis_probabilities_into(coordinator_->cumulative_losses(),
                             schedule_.learning_rate(k), probabilities_,
                             solver_scratch_);
  current_arm_ = rng_.categorical(probabilities_);
  slots_left_ = schedule_.block_length(k);
  block_loss_ = 0.0;
  block_open_ = true;
}

void PooledTsallisPolicy::finish_block() {
  coordinator_->report_block(current_arm_, block_loss_,
                             probabilities_[current_arm_]);
  ++block_index_;
  block_open_ = false;
}

std::size_t PooledTsallisPolicy::select(std::size_t /*t*/) {
  if (slots_left_ == 0) {
    if (block_open_) finish_block();
    start_block();
  }
  --slots_left_;
  return current_arm_;
}

void PooledTsallisPolicy::feedback(std::size_t /*t*/, std::size_t arm,
                                   double loss) {
  assert(arm == current_arm_);
  (void)arm;
  block_loss_ += loss;
  if (slots_left_ == 0 && block_open_) finish_block();
}

bandit::PolicyFactory pooled_tsallis_factory() {
  // One coordinator per simulation run: a fresh one is spun up whenever
  // the factory builds the policy for edge 0.
  auto current = std::make_shared<std::shared_ptr<PooledTsallisCoordinator>>();
  return [current](const bandit::PolicyContext& context) {
    if (context.edge == 0 || !*current) {
      *current =
          std::make_shared<PooledTsallisCoordinator>(context.num_models);
    }
    return std::make_unique<PooledTsallisPolicy>(context, *current);
  };
}

}  // namespace cea::core
