#pragma once

#include <memory>
#include <vector>

#include "bandit/policy.h"
#include "core/block_schedule.h"

namespace cea::core {

/// Extension beyond the paper: cross-edge pooled learning.
///
/// Section II-A assumes one common data distribution D for every edge, so
/// the inference-loss part of the bandit feedback carries the same signal
/// everywhere. Algorithm 1 nevertheless learns per edge from scratch. The
/// pooled variant shares ONE importance-weighted cumulative loss table
/// across all edges: each edge keeps its own Theorem-1 block schedule
/// (u_i differs) and samples from the shared table with its own learning
/// rate, and every finished block feeds the shared table — so evidence
/// accumulates ~I times faster.
///
/// Approximation: the pooled table absorbs the edge-specific computation
/// cost v_{i,n} into a shared average. Appropriate when the v spread is
/// small against the loss gaps (true at the paper's defaults: v in
/// [0.025, 0.15] s vs gaps of 0.1-1.6); edges with wildly heterogeneous
/// hardware should stay on the per-edge Algorithm 1.
class PooledTsallisCoordinator {
 public:
  explicit PooledTsallisCoordinator(std::size_t num_models);

  const std::vector<double>& cumulative_losses() const noexcept {
    return cumulative_losses_;
  }
  std::size_t num_models() const noexcept {
    return cumulative_losses_.size();
  }
  std::size_t blocks_completed() const noexcept { return blocks_; }

  /// Fold one finished block into the shared table.
  void report_block(std::size_t arm, double block_loss,
                    double arm_probability);

 private:
  std::vector<double> cumulative_losses_;
  std::size_t blocks_ = 0;
};

/// Per-edge policy backed by a shared coordinator.
class PooledTsallisPolicy final : public bandit::ModelSelectionPolicy {
 public:
  PooledTsallisPolicy(const bandit::PolicyContext& context,
                      std::shared_ptr<PooledTsallisCoordinator> coordinator);

  std::size_t select(std::size_t t) override;
  void feedback(std::size_t t, std::size_t arm, double loss) override;
  std::string name() const override { return "PooledTsallisINF"; }

  const std::vector<double>& current_probabilities() const noexcept {
    return probabilities_;
  }

 private:
  void start_block();
  void finish_block();

  std::shared_ptr<PooledTsallisCoordinator> coordinator_;
  BlockSchedule schedule_;
  Rng rng_;
  std::vector<double> probabilities_;
  std::vector<double> solver_scratch_;  // reused across block solves
  std::size_t block_index_ = 0;
  std::size_t current_arm_ = 0;
  std::size_t slots_left_ = 0;
  double block_loss_ = 0.0;
  bool block_open_ = false;
};

/// Factory for the simulator: a fresh shared coordinator is created
/// whenever the edge-0 policy is built, so every simulation run starts
/// clean. NOT safe for run_combo_averaged_parallel (concurrent runs would
/// share a coordinator mid-reset) — average serially.
bandit::PolicyFactory pooled_tsallis_factory();

}  // namespace cea::core
