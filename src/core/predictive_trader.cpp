#include "core/predictive_trader.h"

#include <algorithm>
#include <cmath>
#include <memory>

namespace cea::core {
namespace {
/// Fall back to the last observed price until the AR(1) fit has this many
/// observations; early fits are noisy enough to cost money.
constexpr std::size_t kWarmup = 30;
}  // namespace

PredictiveCarbonTrader::PredictiveCarbonTrader(
    const trading::TraderContext& context, const OnlineTraderConfig& config,
    double forgetting)
    : context_(context),
      lambda_(config.initial_lambda),
      buy_predictor_(forgetting),
      sell_predictor_(forgetting) {
  const double horizon =
      static_cast<double>(std::max<std::size_t>(context.horizon, 1));
  const double t_third = std::pow(horizon, -1.0 / 3.0);
  gamma1_ = config.gamma1_scale * t_third;
  gamma2_ = config.gamma2_scale * t_third;
  per_slot_cap_share_ = context.carbon_cap / horizon;
  prev_decision_ = {config.initial_buy, config.initial_sell};
}

trading::TradeDecision PredictiveCarbonTrader::decide(
    std::size_t /*t*/, const trading::TradeObservation& /*obs*/) {
  if (!has_history_) return prev_decision_;
  const double buy_forecast = buy_predictor_.predict_next(kWarmup);
  const double sell_forecast = sell_predictor_.predict_next(kWarmup);
  trading::TradeDecision decision;
  decision.buy = trading::clamp_trade(
      prev_decision_.buy + gamma2_ * (lambda_ - buy_forecast), context_);
  decision.sell = trading::clamp_trade(
      prev_decision_.sell + gamma2_ * (sell_forecast - lambda_), context_);
  return decision;
}

void PredictiveCarbonTrader::feedback(std::size_t /*t*/, double emission,
                                      const trading::TradeObservation& obs,
                                      const trading::TradeDecision& executed) {
  const double g =
      emission - per_slot_cap_share_ - executed.buy + executed.sell;
  lambda_ = std::max(0.0, lambda_ + gamma1_ * g);
  buy_predictor_.observe(obs.buy_price);
  sell_predictor_.observe(obs.sell_price);
  prev_decision_ = executed;
  has_history_ = true;
}

trading::TraderFactory PredictiveCarbonTrader::factory(
    OnlineTraderConfig config, double forgetting) {
  return [config, forgetting](const trading::TraderContext& context) {
    return std::make_unique<PredictiveCarbonTrader>(context, config,
                                                    forgetting);
  };
}

}  // namespace cea::core
