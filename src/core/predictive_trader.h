#pragma once

#include "core/carbon_trader.h"
#include "core/price_predictor.h"
#include "trading/trader.h"

namespace cea::core {

/// Algorithm 2 extended with one-step price prediction — the paper's first
/// future-work direction implemented.
///
/// The primal step of OnlineCarbonTrader linearizes f at the *previous*
/// slot's prices (the only information the base algorithm allows itself).
/// This variant replaces c^{t-1}, r^{t-1} with AR(1) forecasts chat^t,
/// rhat^t fitted online; everything else (proximal step, dual ascent,
/// liquidity clamps) is unchanged, so the comparison against the base
/// algorithm isolates the value of prediction (bench/ext_price_prediction).
class PredictiveCarbonTrader final : public trading::TradingPolicy {
 public:
  PredictiveCarbonTrader(const trading::TraderContext& context,
                         const OnlineTraderConfig& config,
                         double forgetting = 0.98);

  trading::TradeDecision decide(std::size_t t,
                                const trading::TradeObservation& obs) override;
  void feedback(std::size_t t, double emission,
                const trading::TradeObservation& obs,
                const trading::TradeDecision& executed) override;
  std::string name() const override { return "PredictivePD"; }

  static trading::TraderFactory factory(OnlineTraderConfig config = {},
                                        double forgetting = 0.98);

  double lambda() const noexcept { return lambda_; }
  const Ar1PricePredictor& buy_predictor() const noexcept {
    return buy_predictor_;
  }

 private:
  trading::TraderContext context_;
  double gamma1_;
  double gamma2_;
  double lambda_;
  double per_slot_cap_share_;
  Ar1PricePredictor buy_predictor_;
  Ar1PricePredictor sell_predictor_;
  trading::TradeDecision prev_decision_;
  bool has_history_ = false;
};

}  // namespace cea::core
