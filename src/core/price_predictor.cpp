#include "core/price_predictor.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace cea::core {

Ar1PricePredictor::Ar1PricePredictor(double forgetting)
    : forgetting_(forgetting) {
  assert(forgetting > 0.0 && forgetting <= 1.0);
}

void Ar1PricePredictor::observe(double price) {
  if (count_ > 0) {
    const double x = last_price_;
    const double y = price;
    sxx_ = forgetting_ * sxx_ + x * x;
    sx_ = forgetting_ * sx_ + x;
    sxy_ = forgetting_ * sxy_ + x * y;
    sy_ = forgetting_ * sy_ + y;
    sw_ = forgetting_ * sw_ + 1.0;
    const double det = sw_ * sxx_ - sx_ * sx_;
    if (std::abs(det) > 1e-12) {
      a_ = (sw_ * sxy_ - sx_ * sy_) / det;
      b_ = (sy_ - a_ * sx_) / sw_;
    }
  }
  last_price_ = price;
  ++count_;
}

double Ar1PricePredictor::predict_next(std::size_t warmup) const {
  if (count_ < std::max<std::size_t>(warmup, 2)) return last_price_;
  return a_ * last_price_ + b_;
}

}  // namespace cea::core
