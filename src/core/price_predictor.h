#pragma once

#include <cstddef>

namespace cea::core {

/// Online AR(1) price model  p_{t+1} = a p_t + b + noise, fitted by
/// exponentially weighted recursive least squares.
///
/// The paper's Section VII names price prediction as the first future-work
/// direction ("integrating price prediction models could further optimize
/// trading strategies"); this predictor powers PredictiveCarbonTrader.
class Ar1PricePredictor {
 public:
  /// `forgetting` in (0, 1]: 1 = ordinary least squares over all history;
  /// smaller values track drifting dynamics.
  explicit Ar1PricePredictor(double forgetting = 0.99);

  /// Record the price observed at the current slot.
  void observe(double price);

  /// One-step-ahead forecast. Before `warmup` observations, returns the
  /// last observed price (or 0 if none) — early regression fits are noisy
  /// enough to hurt.
  double predict_next(std::size_t warmup = 2) const;

  /// Fitted coefficients (a, b).
  double slope() const noexcept { return a_; }
  double intercept() const noexcept { return b_; }
  std::size_t observations() const noexcept { return count_; }

 private:
  double forgetting_;
  // Sufficient statistics of weighted least squares on (x=prev, y=next).
  double sxx_ = 0.0, sx_ = 0.0, sxy_ = 0.0, sy_ = 0.0, sw_ = 0.0;
  double a_ = 1.0, b_ = 0.0;
  double last_price_ = 0.0;
  std::size_t count_ = 0;
};

}  // namespace cea::core
