#include "core/regret.h"

#include <algorithm>
#include <cassert>

namespace cea::core {

double fit(std::span<const double> emissions, std::span<const double> buys,
           std::span<const double> sells, double carbon_cap) noexcept {
  assert(emissions.size() == buys.size() && buys.size() == sells.size());
  double violation = -carbon_cap;
  for (std::size_t t = 0; t < emissions.size(); ++t) {
    violation += emissions[t] - buys[t] + sells[t];
  }
  return std::max(0.0, violation);
}

std::vector<double> fit_series(std::span<const double> emissions,
                               std::span<const double> buys,
                               std::span<const double> sells,
                               double carbon_cap) {
  assert(emissions.size() == buys.size() && buys.size() == sells.size());
  const double horizon = static_cast<double>(emissions.size());
  std::vector<double> series(emissions.size(), 0.0);
  double cumulative = 0.0;
  for (std::size_t t = 0; t < emissions.size(); ++t) {
    cumulative += emissions[t] - buys[t] + sells[t] - carbon_cap / horizon;
    series[t] = std::max(0.0, cumulative);
  }
  return series;
}

double one_shot_trading_optimum(double emission, double cap_share,
                                double buy_price, double sell_price,
                                double max_trade) noexcept {
  const double gap = emission - cap_share;
  if (gap > 0.0) {
    // Must buy the uncovered emission; infeasible beyond the cap, in which
    // case the best feasible point buys at the cap.
    const double buy = std::min(gap, max_trade);
    return buy * buy_price;
  }
  // Surplus: selling it earns revenue (bounded by the liquidity cap).
  const double sell = std::min(-gap, max_trade);
  return -sell * sell_price;
}

std::vector<double> trading_regret_series(
    std::span<const double> emissions, std::span<const double> buys,
    std::span<const double> sells, std::span<const double> buy_prices,
    std::span<const double> sell_prices, double carbon_cap,
    double max_trade) {
  assert(emissions.size() == buys.size() && buys.size() == sells.size());
  assert(emissions.size() == buy_prices.size() &&
         buy_prices.size() == sell_prices.size());
  const double horizon = static_cast<double>(emissions.size());
  const double cap_share = carbon_cap / horizon;
  std::vector<double> series(emissions.size(), 0.0);
  double cumulative = 0.0;
  for (std::size_t t = 0; t < emissions.size(); ++t) {
    const double actual = buys[t] * buy_prices[t] - sells[t] * sell_prices[t];
    const double optimal = one_shot_trading_optimum(
        emissions[t], cap_share, buy_prices[t], sell_prices[t], max_trade);
    cumulative += actual - optimal;
    series[t] = cumulative;
  }
  return series;
}

}  // namespace cea::core
