#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace cea::core {

/// Fit of Theorem 2 / Fig. 11: || [ sum_t g^t(Z^t) ]^+ || with
/// g^t = e^t - R/T - z^t + w^t, i.e. the positive part of the cumulative
/// carbon-neutrality violation.
double fit(std::span<const double> emissions, std::span<const double> buys,
           std::span<const double> sells, double carbon_cap) noexcept;

/// Per-prefix fit series: entry d is the fit of the first d+1 slots when the
/// cap is prorated (d+1)/T * R — the quantity Fig. 11 tracks over time.
std::vector<double> fit_series(std::span<const double> emissions,
                               std::span<const double> buys,
                               std::span<const double> sells,
                               double carbon_cap);

/// Regret of P2 against the sequence of one-shot optima Zbar^{t*} (Theorem
/// 2): the per-slot optimum minimizes z c^t - w r^t subject to
/// g^t(Z) <= 0 and the liquidity box. That one-shot problem solves in closed
/// form: buy exactly the uncovered emission (cheapest feasible point), sell
/// surplus allowance share at r^t when emission falls below R/T.
double one_shot_trading_optimum(double emission, double cap_share,
                                double buy_price, double sell_price,
                                double max_trade) noexcept;

/// Cumulative P2 regret series: entry t is
/// sum_{s<=t} f^s(Z^s) - sum_{s<=t} f^s(Z^{s*}).
std::vector<double> trading_regret_series(
    std::span<const double> emissions, std::span<const double> buys,
    std::span<const double> sells, std::span<const double> buy_prices,
    std::span<const double> sell_prices, double carbon_cap,
    double max_trade);

}  // namespace cea::core
