#include "data/carbon_market.h"

#include <algorithm>
#include <cassert>

namespace cea::data {

PriceSeries generate_prices(std::size_t num_slots, const MarketConfig& config,
                            Rng& rng) {
  assert(config.min_price < config.max_price);
  assert(config.sell_ratio > 0.0 && config.sell_ratio <= 1.0);
  PriceSeries series;
  series.buy.resize(num_slots);
  series.sell.resize(num_slots);
  const double mid = 0.5 * (config.min_price + config.max_price);
  double price = rng.uniform(config.min_price, config.max_price);
  for (std::size_t t = 0; t < num_slots; ++t) {
    price += config.reversion * (mid - price) +
             rng.normal(0.0, config.volatility);
    price = std::clamp(price, config.min_price, config.max_price);
    series.buy[t] = price;
    series.sell[t] = config.sell_ratio * price;
  }
  return series;
}

}  // namespace cea::data
