#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace cea::data {

/// Parameters of the synthetic carbon-allowance price process.
///
/// The paper samples buying prices from EU Carbon Permit quotes between
/// March 2023 and March 2024, which range over [5.9, 10.9] cent/kg, and sets
/// the selling price to 90% of the buying price. This generator is the
/// documented substitution: a mean-reverting bounded random walk whose
/// marginal stays inside the same band, with the same 90% sell ratio.
struct MarketConfig {
  double min_price = 5.9;    ///< cent per kg
  double max_price = 10.9;   ///< cent per kg
  double sell_ratio = 0.9;   ///< r^t = sell_ratio * c^t
  double reversion = 0.08;   ///< pull toward the band midpoint per slot
  double volatility = 0.35;  ///< per-slot Gaussian shock (cent/kg)
};

/// Buying price c^t and selling price r^t per time slot.
struct PriceSeries {
  std::vector<double> buy;
  std::vector<double> sell;

  std::size_t size() const noexcept { return buy.size(); }
};

/// Generate a T-slot price series.
PriceSeries generate_prices(std::size_t num_slots, const MarketConfig& config,
                            Rng& rng);

}  // namespace cea::data
