#include "data/loss_profile.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "data/loss_sampling.h"
#include "nn/loss.h"
#include "nn/train.h"
#include "util/cpu.h"
#include "util/stats.h"

namespace cea::data {

LossProfile::LossProfile(std::string model_name, std::vector<double> losses,
                         std::vector<std::uint8_t> correct, double size_mb)
    : model_name_(std::move(model_name)),
      losses_(std::move(losses)),
      correct_(std::move(correct)),
      size_mb_(size_mb) {
  assert(!losses_.empty() && losses_.size() == correct_.size());
  RunningStats stats;
  double correct_count = 0.0;
  pair_table_.resize(2 * losses_.size());
  for (std::size_t i = 0; i < losses_.size(); ++i) {
    stats.add(losses_[i]);
    correct_count += correct_[i] ? 1.0 : 0.0;
    pair_table_[2 * i] = static_cast<float>(losses_[i]);
    pair_table_[2 * i + 1] = correct_[i] ? 1.0f : 0.0f;
  }
  mean_loss_ = stats.mean();
  loss_stddev_ = stats.stddev();
  accuracy_ = correct_count / static_cast<double>(losses_.size());
}

LossDraw LossProfile::draw(Rng& rng) const {
  const auto idx = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(losses_.size()) - 1));
  return {losses_[idx], correct_[idx] != 0};
}

namespace detail {

void accumulate_range_scalar(const float* pairs, std::uint64_t size,
                             std::uint64_t key, std::size_t from,
                             std::size_t n, LaneAccum& acc) noexcept {
  const std::size_t n8 = n & ~std::size_t{7};
  std::uint64_t wc = from / 2;
  for (std::size_t k = from; k < n8; k += 8) {
    for (int w = 0; w < 4; ++w) {
      const std::uint64_t word = mix64(key + (wc + w) * kGolden);
      const auto ih = static_cast<std::size_t>((word >> 32) * size >> 32);
      const auto il =
          static_cast<std::size_t>((word & 0xFFFFFFFFULL) * size >> 32);
      acc.loss[w] += pairs[2 * ih];
      acc.correct[w] += pairs[2 * ih + 1];
      acc.loss[4 + w] += pairs[2 * il];
      acc.correct[4 + w] += pairs[2 * il + 1];
    }
    wc += 4;
  }
  for (std::size_t k = n8; k < n; ++k) {
    const std::size_t i = draw_index(key, k, size);
    acc.loss_tail += pairs[2 * i];
    acc.correct_tail += pairs[2 * i + 1];
  }
}

LossBatch draw_batch_kernel_scalar(const float* pairs, std::uint64_t size,
                                   std::uint64_t key,
                                   std::size_t n) noexcept {
  LaneAccum acc;
  accumulate_range_scalar(pairs, size, key, 0, n, acc);
  return acc.finish();
}

bool have_avx2() noexcept { return util::have_avx2(); }

bool have_avx512() noexcept { return util::have_avx512(); }

}  // namespace detail

LossBatch LossProfile::draw_batch(Rng& rng, std::size_t n) const {
  // One word from the caller's stream keys the whole batch.
  return draw_batch_keyed(rng(), n);
}

LossBatch LossProfile::draw_batch_keyed(std::uint64_t key,
                                        std::size_t n) const {
  if (n == 0) return {};
  const auto size = static_cast<std::uint64_t>(losses_.size());
  assert(size > 0 && size <= UINT32_MAX);
  const float* pairs = pair_table_.data();
#if defined(__x86_64__)
  if (detail::have_avx512())
    return detail::draw_batch_kernel_avx512(pairs, size, key, n);
  if (detail::have_avx2())
    return detail::draw_batch_kernel_avx2(pairs, size, key, n);
#endif
  return detail::draw_batch_kernel_scalar(pairs, size, key, n);
}

LossProfile profile_model(nn::Sequential& model, const Dataset& profiling_set,
                          std::size_t batch_size, double size_mb_override) {
  const std::size_t num = profiling_set.size();
  assert(num > 0);
  std::vector<double> losses;
  losses.reserve(num);
  std::vector<std::uint8_t> correct;
  correct.reserve(num);

  std::vector<std::size_t> indices;
  for (std::size_t start = 0; start < num; start += batch_size) {
    const std::size_t count = std::min(batch_size, num - start);
    indices.resize(count);
    for (std::size_t i = 0; i < count; ++i) indices[i] = start + i;
    const nn::Tensor batch = nn::gather_rows(profiling_set.samples, indices);
    const auto labels =
        nn::gather_labels(profiling_set.labels, indices);
    const nn::Tensor logits = model.forward(batch);
    const nn::Tensor probs = nn::softmax(logits);
    const auto batch_losses = nn::squared_losses(probs, labels);
    for (std::size_t i = 0; i < count; ++i) {
      losses.push_back(batch_losses[i]);
      std::size_t best = 0;
      for (std::size_t c = 1; c < logits.dim(1); ++c)
        if (logits.at(i, c) > logits.at(i, best)) best = c;
      correct.push_back(best == labels[i] ? 1 : 0);
    }
  }
  return LossProfile(model.name(), std::move(losses), std::move(correct),
                     size_mb_override >= 0.0 ? size_mb_override
                                             : model.size_mb());
}

LossProfile make_parametric_profile(std::string name, double mean_loss,
                                    double stddev, double accuracy,
                                    double size_mb, std::size_t table_size,
                                    Rng& rng) {
  assert(table_size > 0);
  std::vector<double> losses(table_size);
  std::vector<std::uint8_t> correct(table_size);
  for (std::size_t i = 0; i < table_size; ++i) {
    // Squared loss against a one-hot label lies in [0, 2].
    losses[i] = std::clamp(rng.normal(mean_loss, stddev), 0.0, 2.0);
    correct[i] = rng.bernoulli(accuracy) ? 1 : 0;
  }
  return LossProfile(std::move(name), std::move(losses), std::move(correct),
                     size_mb);
}

}  // namespace cea::data
