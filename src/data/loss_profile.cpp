#include "data/loss_profile.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "nn/loss.h"
#include "nn/train.h"
#include "util/stats.h"

namespace cea::data {

LossProfile::LossProfile(std::string model_name, std::vector<double> losses,
                         std::vector<std::uint8_t> correct, double size_mb)
    : model_name_(std::move(model_name)),
      losses_(std::move(losses)),
      correct_(std::move(correct)),
      size_mb_(size_mb) {
  assert(!losses_.empty() && losses_.size() == correct_.size());
  RunningStats stats;
  double correct_count = 0.0;
  for (std::size_t i = 0; i < losses_.size(); ++i) {
    stats.add(losses_[i]);
    correct_count += correct_[i] ? 1.0 : 0.0;
  }
  mean_loss_ = stats.mean();
  loss_stddev_ = stats.stddev();
  accuracy_ = correct_count / static_cast<double>(losses_.size());
}

LossDraw LossProfile::draw(Rng& rng) const {
  const auto idx = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(losses_.size()) - 1));
  return {losses_[idx], correct_[idx] != 0};
}

LossProfile profile_model(nn::Sequential& model, const Dataset& profiling_set,
                          std::size_t batch_size, double size_mb_override) {
  const std::size_t num = profiling_set.size();
  assert(num > 0);
  std::vector<double> losses;
  losses.reserve(num);
  std::vector<std::uint8_t> correct;
  correct.reserve(num);

  std::vector<std::size_t> indices;
  for (std::size_t start = 0; start < num; start += batch_size) {
    const std::size_t count = std::min(batch_size, num - start);
    indices.resize(count);
    for (std::size_t i = 0; i < count; ++i) indices[i] = start + i;
    const nn::Tensor batch = nn::gather_rows(profiling_set.samples, indices);
    const auto labels =
        nn::gather_labels(profiling_set.labels, indices);
    const nn::Tensor logits = model.forward(batch);
    const nn::Tensor probs = nn::softmax(logits);
    const auto batch_losses = nn::squared_losses(probs, labels);
    for (std::size_t i = 0; i < count; ++i) {
      losses.push_back(batch_losses[i]);
      std::size_t best = 0;
      for (std::size_t c = 1; c < logits.dim(1); ++c)
        if (logits.at(i, c) > logits.at(i, best)) best = c;
      correct.push_back(best == labels[i] ? 1 : 0);
    }
  }
  return LossProfile(model.name(), std::move(losses), std::move(correct),
                     size_mb_override >= 0.0 ? size_mb_override
                                             : model.size_mb());
}

LossProfile make_parametric_profile(std::string name, double mean_loss,
                                    double stddev, double accuracy,
                                    double size_mb, std::size_t table_size,
                                    Rng& rng) {
  assert(table_size > 0);
  std::vector<double> losses(table_size);
  std::vector<std::uint8_t> correct(table_size);
  for (std::size_t i = 0; i < table_size; ++i) {
    // Squared loss against a one-hot label lies in [0, 2].
    losses[i] = std::clamp(rng.normal(mean_loss, stddev), 0.0, 2.0);
    correct[i] = rng.bernoulli(accuracy) ? 1 : 0;
  }
  return LossProfile(std::move(name), std::move(losses), std::move(correct),
                     size_mb);
}

}  // namespace cea::data
