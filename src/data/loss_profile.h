#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/synthetic_dataset.h"
#include "nn/model.h"
#include "util/rng.h"

namespace cea::data {

/// One draw from a model's empirical loss distribution.
struct LossDraw {
  double loss = 0.0;   ///< squared loss l_n for one data sample
  bool correct = false;
};

/// Aggregate of a batch of draws — everything the simulator's slot loop
/// actually consumes (it never looks at individual samples).
struct LossBatch {
  double loss_sum = 0.0;
  std::size_t correct_count = 0;
};

/// Empirical per-sample loss distribution of one trained model.
///
/// The simulator does not rerun forward passes for every streamed sample
/// (160 slots x 50 edges x ~50 samples x 6 conv nets); instead each model is
/// profiled once on a held-out set and the simulator draws from the recorded
/// per-sample losses. Because the stream and the profiling set are IID from
/// the same distribution, a uniform draw from the table *is* a draw of l_n.
class LossProfile {
 public:
  LossProfile() = default;
  LossProfile(std::string model_name, std::vector<double> losses,
              std::vector<std::uint8_t> correct, double size_mb);

  /// Draw one sample's loss/correctness uniformly from the table.
  LossDraw draw(Rng& rng) const;

  /// Draw `n` samples and return their aggregate in one tight loop.
  /// Consumes exactly one word from `rng` — the key of the batch; see
  /// draw_batch_keyed for the sampling scheme. Orders of magnitude cheaper
  /// than n draw() calls; the distribution is uniform over the table up to
  /// a bias of table_size/2^64 (immeasurable for any realistic profile).
  /// The loss sum is accumulated in float32 (see pair_table_), so it
  /// matches the sum of the corresponding draw() losses to ~1e-7 relative.
  LossBatch draw_batch(Rng& rng, std::size_t n) const;

  /// draw_batch with an explicit 64-bit key instead of an Rng — the hot path
  /// of the simulator, which keys each batch by (run_seed, edge, slot) and
  /// would otherwise pay a full generator construction per edge-slot. The
  /// key must be well mixed (stream_seed output or a raw generator word).
  ///
  /// Sampling scheme: table indices are a counter-keyed splitmix sequence
  /// (mix64 of key + k*golden — no loop-carried dependency, so generation
  /// vectorizes), two fixed-point-reduced indices per 64-bit word, and the
  /// gathered losses accumulate in eight interleaved lanes with a defined
  /// combine order. The result is a pure function of (key, n), identical
  /// across the scalar and SIMD kernels and across thread schedules.
  LossBatch draw_batch_keyed(std::uint64_t key, std::size_t n) const;

  const std::string& model_name() const noexcept { return model_name_; }
  double mean_loss() const noexcept { return mean_loss_; }
  double loss_stddev() const noexcept { return loss_stddev_; }
  double accuracy() const noexcept { return accuracy_; }
  double size_mb() const noexcept { return size_mb_; }
  std::size_t table_size() const noexcept { return losses_.size(); }

 private:
  std::string model_name_;
  std::vector<double> losses_;
  std::vector<std::uint8_t> correct_;
  /// Interleaved [loss_i, correct_i (0.0f/1.0f), ...] copy of the two
  /// tables in float32: draw_batch reads both values of a sample with a
  /// single 8-byte load, and a 4096-sample profile fits in 32 KiB of L1
  /// where the double tables would not. Correctness sums of 0.0f/1.0f are
  /// exact integers up to 2^24 draws; the float32 rounding of each loss
  /// (~1e-7 relative) is far below the sampling noise of any batch.
  std::vector<float> pair_table_;
  double mean_loss_ = 0.0;
  double loss_stddev_ = 0.0;
  double accuracy_ = 0.0;
  double size_mb_ = 0.0;
};

/// Run the model over the profiling set and build its LossProfile.
/// `size_mb_override` replaces the model's float32 size when >= 0 — used by
/// the quantization extension, where the deployed artifact is bits/32 of
/// the float checkpoint.
LossProfile profile_model(nn::Sequential& model, const Dataset& profiling_set,
                          std::size_t batch_size = 64,
                          double size_mb_override = -1.0);

/// A synthetic loss profile from a parametric distribution (beta-like via
/// clamped normal). Useful for fast tests and algorithm-only benchmarks that
/// do not want to train networks.
LossProfile make_parametric_profile(std::string name, double mean_loss,
                                    double stddev, double accuracy,
                                    double size_mb, std::size_t table_size,
                                    Rng& rng);

}  // namespace cea::data
