#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/synthetic_dataset.h"
#include "nn/model.h"
#include "util/rng.h"

namespace cea::data {

/// One draw from a model's empirical loss distribution.
struct LossDraw {
  double loss = 0.0;   ///< squared loss l_n for one data sample
  bool correct = false;
};

/// Empirical per-sample loss distribution of one trained model.
///
/// The simulator does not rerun forward passes for every streamed sample
/// (160 slots x 50 edges x ~50 samples x 6 conv nets); instead each model is
/// profiled once on a held-out set and the simulator draws from the recorded
/// per-sample losses. Because the stream and the profiling set are IID from
/// the same distribution, a uniform draw from the table *is* a draw of l_n.
class LossProfile {
 public:
  LossProfile() = default;
  LossProfile(std::string model_name, std::vector<double> losses,
              std::vector<std::uint8_t> correct, double size_mb);

  /// Draw one sample's loss/correctness uniformly from the table.
  LossDraw draw(Rng& rng) const;

  const std::string& model_name() const noexcept { return model_name_; }
  double mean_loss() const noexcept { return mean_loss_; }
  double loss_stddev() const noexcept { return loss_stddev_; }
  double accuracy() const noexcept { return accuracy_; }
  double size_mb() const noexcept { return size_mb_; }
  std::size_t table_size() const noexcept { return losses_.size(); }

 private:
  std::string model_name_;
  std::vector<double> losses_;
  std::vector<std::uint8_t> correct_;
  double mean_loss_ = 0.0;
  double loss_stddev_ = 0.0;
  double accuracy_ = 0.0;
  double size_mb_ = 0.0;
};

/// Run the model over the profiling set and build its LossProfile.
/// `size_mb_override` replaces the model's float32 size when >= 0 — used by
/// the quantization extension, where the deployed artifact is bits/32 of
/// the float checkpoint.
LossProfile profile_model(nn::Sequential& model, const Dataset& profiling_set,
                          std::size_t batch_size = 64,
                          double size_mb_override = -1.0);

/// A synthetic loss profile from a parametric distribution (beta-like via
/// clamped normal). Useful for fast tests and algorithm-only benchmarks that
/// do not want to train networks.
LossProfile make_parametric_profile(std::string name, double mean_loss,
                                    double stddev, double accuracy,
                                    double size_mb, std::size_t table_size,
                                    Rng& rng);

}  // namespace cea::data
