#pragma once

// Internal kernels behind LossProfile::draw_batch_keyed. Both kernels
// implement the exact same sampling scheme (see loss_profile.h) and must
// produce bit-identical results; tests/data/test_loss_profile.cpp holds
// them to that. The AVX2 kernel lives in its own translation unit
// (loss_sampling_avx2.cpp, compiled with -mavx2) and is dispatched at
// runtime via have_avx2().

#include <cstddef>
#include <cstdint>

#include "data/loss_profile.h"
#include "util/rng.h"

namespace cea::data::detail {

/// Increment of the batch word counter (splitmix64's golden-ratio stride).
inline constexpr std::uint64_t kGolden = 0x9E3779B97F4A7C15ULL;

/// Lane accumulators. While k < (n & ~7), draw k adds into lane
/// (k % 2) * 4 + (k % 8) / 2: even draws (high index halves of the four
/// words of a group) occupy lanes 0-3, odd draws lanes 4-7 — the lane
/// layout of the vector kernel's two ymm accumulators. The rest goes into
/// the tail. The combine order in finish() is part of the sampling
/// scheme's defined semantics.
struct LaneAccum {
  float loss[8] = {};
  float correct[8] = {};
  float loss_tail = 0.0f;
  float correct_tail = 0.0f;

  LossBatch finish() const noexcept {
    LossBatch batch;
    batch.loss_sum = static_cast<double>(
        (((loss[0] + loss[2]) + (loss[1] + loss[3])) +
         ((loss[4] + loss[6]) + (loss[5] + loss[7]))) +
        loss_tail);
    batch.correct_count = static_cast<std::size_t>(
        (((correct[0] + correct[2]) + (correct[1] + correct[3])) +
         ((correct[4] + correct[6]) + (correct[5] + correct[7]))) +
        correct_tail);
    return batch;
  }
};

/// Index of draw position k: word k/2 of the counter-keyed splitmix
/// sequence, high half for even k, low half for odd k, reduced to
/// [0, size) by fixed-point multiply.
inline std::size_t draw_index(std::uint64_t key, std::size_t k,
                              std::uint64_t size) noexcept {
  const std::uint64_t word = mix64(key + (k / 2) * kGolden);
  const std::uint64_t half =
      (k % 2 == 0) ? (word >> 32) : (word & 0xFFFFFFFFULL);
  return static_cast<std::size_t>(half * size >> 32);
}

/// Accumulate draw positions [from, n) into `acc`, octet region then tail.
/// `from` must be a multiple of 8. Shared by the scalar kernel (from = 0)
/// and the vector kernels' remainder handling.
void accumulate_range_scalar(const float* pairs, std::uint64_t size,
                             std::uint64_t key, std::size_t from,
                             std::size_t n, LaneAccum& acc) noexcept;

LossBatch draw_batch_kernel_scalar(const float* pairs, std::uint64_t size,
                                   std::uint64_t key, std::size_t n) noexcept;

#if defined(__x86_64__)
LossBatch draw_batch_kernel_avx2(const float* pairs, std::uint64_t size,
                                 std::uint64_t key, std::size_t n) noexcept;
LossBatch draw_batch_kernel_avx512(const float* pairs, std::uint64_t size,
                                   std::uint64_t key,
                                   std::size_t n) noexcept;
#endif

/// True when the CPU supports the AVX2 kernel. Thin forwarders to
/// util::have_avx2/have_avx512 (util/cpu.h), the process-wide feature
/// cache shared with the nn GEMM dispatch.
bool have_avx2() noexcept;

/// True when the CPU supports the AVX-512VL/DQ kernel.
bool have_avx512() noexcept;

}  // namespace cea::data::detail
