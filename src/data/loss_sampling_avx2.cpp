// AVX2 kernel for LossProfile::draw_batch_keyed. This translation unit is
// compiled with -mavx2 (see src/data/CMakeLists.txt) and must only be
// entered behind the have_avx2() runtime check. The body lives in
// loss_sampling_ymm.h; only the 64-bit multiply is AVX2-specific.

#if defined(__x86_64__)

#include "data/loss_sampling_ymm.h"

namespace cea::data::detail {
namespace {

/// 64-bit lane-wise x * c (mod 2^64) out of 32x32->64 partial products.
__m256i mul64_avx2(__m256i x, std::uint64_t c) noexcept {
  const __m256i c_lo =
      _mm256_set1_epi64x(static_cast<long long>(c & 0xFFFFFFFFULL));
  const __m256i c_hi = _mm256_set1_epi64x(static_cast<long long>(c >> 32));
  const __m256i lo = _mm256_mul_epu32(x, c_lo);
  const __m256i cross =
      _mm256_add_epi64(_mm256_mul_epu32(_mm256_srli_epi64(x, 32), c_lo),
                       _mm256_mul_epu32(x, c_hi));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

}  // namespace

LossBatch draw_batch_kernel_avx2(const float* pairs, std::uint64_t size,
                                 std::uint64_t key,
                                 std::size_t n) noexcept {
  return draw_batch_kernel_ymm<&mul64_avx2>(pairs, size, key, n);
}

}  // namespace cea::data::detail

#endif  // defined(__x86_64__)
