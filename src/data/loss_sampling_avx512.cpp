// AVX-512VL/DQ kernel for LossProfile::draw_batch_keyed: same 256-bit body
// as the AVX2 kernel, but the splitmix multiplies use the native 64-bit
// vpmullq instead of three 32x32 partial products. Compiled with
// -mavx512vl -mavx512dq (see src/data/CMakeLists.txt) and only entered
// behind the have_avx512() runtime check. 256-bit vpmullq does not incur
// the 512-bit license downclock.

#if defined(__x86_64__)

#include "data/loss_sampling_ymm.h"

namespace cea::data::detail {
namespace {

__m256i mul64_vpmullq(__m256i x, std::uint64_t c) noexcept {
  return _mm256_mullo_epi64(x,
                            _mm256_set1_epi64x(static_cast<long long>(c)));
}

}  // namespace

LossBatch draw_batch_kernel_avx512(const float* pairs, std::uint64_t size,
                                   std::uint64_t key,
                                   std::size_t n) noexcept {
  return draw_batch_kernel_ymm<&mul64_vpmullq>(pairs, size, key, n);
}

}  // namespace cea::data::detail

#endif  // defined(__x86_64__)
