#pragma once

// Shared 256-bit draw_batch kernel body, parameterized on the 64-bit
// lane-wise multiply: AVX2 has to emulate it from 32x32->64 partial
// products, AVX-512VL+DQ has native vpmullq. Each kernel TU instantiates
// the template with its multiply and is compiled with the matching -m
// flags; callers go through the runtime dispatch in loss_profile.cpp.
//
// Every instantiation is bit-identical to draw_batch_kernel_scalar by
// construction:
//  - index words are the same integer splitmix sequence, four per vector;
//  - a draw's float32 {loss, correct} pair occupies one 64-bit table
//    element, so vpgatherqq fetches a whole 8-draw group with two gathers
//    (even draws from the words' high index halves, odd draws from the
//    low halves) and one vaddps per gather performs exactly the scalar
//    float additions of the corresponding lanes, in the same per-lane
//    order;
//  - the remainder (the non-octet tail) reuses the scalar
//    accumulate_range_scalar on the extracted lane values.
//
// The gathers replace an earlier store-and-reload scheme (spill the eight
// indices to the stack, read them back one by one for scalar loads); on
// Skylake-SP letting vpgatherqq consume the index vectors directly is
// ~2.3x faster than that pipeline.

#if defined(__x86_64__)

#include <immintrin.h>

#include "data/loss_sampling.h"

namespace cea::data::detail {

/// Mul64 computes x * c per 64-bit lane (mod 2^64) for a compile-time
/// constant c; invariant splats inside it hoist out of the loop.
template <__m256i (*Mul64)(__m256i, std::uint64_t)>
LossBatch draw_batch_kernel_ymm(const float* pairs, std::uint64_t size,
                                std::uint64_t key,
                                std::size_t n) noexcept {
  constexpr std::uint64_t kM1 = 0xBF58476D1CE4E5B9ULL;
  constexpr std::uint64_t kM2 = 0x94D049BB133111EBULL;
  const __m256i size_v = _mm256_set1_epi64x(static_cast<long long>(size));
  const __m256i stride =
      _mm256_set1_epi64x(static_cast<long long>(4 * kGolden));
  // Lane j of ctr holds key + (word_counter + j) * golden.
  __m256i ctr = _mm256_setr_epi64x(
      static_cast<long long>(key),
      static_cast<long long>(key + kGolden),
      static_cast<long long>(key + 2 * kGolden),
      static_cast<long long>(key + 3 * kGolden));

  // Pair-lane j of acc_hi accumulates the group's draw 2j (the high index
  // half of word j), pair-lane j of acc_lo draw 2j+1 — LaneAccum lanes j
  // and 4+j respectively.
  __m256 acc_hi = _mm256_setzero_ps();
  __m256 acc_lo = _mm256_setzero_ps();
  const auto* base = reinterpret_cast<const long long*>(pairs);

  const std::size_t n8 = n & ~std::size_t{7};
  for (std::size_t k = 0; k < n8; k += 8) {
    // splitmix64 finalizer of the four counter words.
    __m256i z = ctr;
    ctr = _mm256_add_epi64(ctr, stride);
    z = _mm256_xor_si256(z, _mm256_srli_epi64(z, 30));
    z = Mul64(z, kM1);
    z = _mm256_xor_si256(z, _mm256_srli_epi64(z, 27));
    z = Mul64(z, kM2);
    z = _mm256_xor_si256(z, _mm256_srli_epi64(z, 31));
    // Fixed-point range reduction of both 32-bit halves.
    const __m256i hi_idx = _mm256_srli_epi64(
        _mm256_mul_epu32(_mm256_srli_epi64(z, 32), size_v), 32);
    const __m256i lo_idx =
        _mm256_srli_epi64(_mm256_mul_epu32(z, size_v), 32);
    acc_hi = _mm256_add_ps(
        acc_hi,
        _mm256_castsi256_ps(_mm256_i64gather_epi64(base, hi_idx, 8)));
    acc_lo = _mm256_add_ps(
        acc_lo,
        _mm256_castsi256_ps(_mm256_i64gather_epi64(base, lo_idx, 8)));
  }

  LaneAccum lanes;
  alignas(32) float vh[8];
  alignas(32) float vl[8];
  _mm256_store_ps(vh, acc_hi);
  _mm256_store_ps(vl, acc_lo);
  for (int j = 0; j < 4; ++j) {
    lanes.loss[j] = vh[2 * j];
    lanes.correct[j] = vh[2 * j + 1];
    lanes.loss[4 + j] = vl[2 * j];
    lanes.correct[4 + j] = vl[2 * j + 1];
  }
  accumulate_range_scalar(pairs, size, key, n8, n, lanes);
  return lanes.finish();
}

}  // namespace cea::data::detail

#endif  // defined(__x86_64__)
