#include "data/synthetic_dataset.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace cea::data {
namespace {

/// Render `blobs` Gaussian bumps with class-specific positions/scales into
/// one prototype channel. Deterministic given the prototype RNG stream.
void render_channel(nn::Tensor& prototypes, std::size_t cls, std::size_t ch,
                    std::size_t blobs, Rng& rng) {
  const std::size_t h = prototypes.dim(2), w = prototypes.dim(3);
  for (std::size_t blob = 0; blob < blobs; ++blob) {
    const double cy = rng.uniform(0.15, 0.85) * static_cast<double>(h);
    const double cx = rng.uniform(0.15, 0.85) * static_cast<double>(w);
    const double sigma = rng.uniform(0.08, 0.22) * static_cast<double>(h);
    const double amp = rng.uniform(0.6, 1.4) * (rng.bernoulli(0.8) ? 1.0 : -1.0);
    for (std::size_t y = 0; y < h; ++y) {
      for (std::size_t x = 0; x < w; ++x) {
        const double dy = (static_cast<double>(y) - cy) / sigma;
        const double dx = (static_cast<double>(x) - cx) / sigma;
        prototypes.at(cls, ch, y, x) +=
            static_cast<float>(amp * std::exp(-0.5 * (dy * dy + dx * dx)));
      }
    }
  }
}

}  // namespace

SyntheticSpec mnist_like_spec() {
  SyntheticSpec spec;
  spec.input = nn::mnist_spec();
  spec.noise = 0.45;
  spec.confusion = 0.5;
  spec.distribution_seed = 7;
  return spec;
}

SyntheticSpec cifar_like_spec() {
  SyntheticSpec spec;
  spec.input = nn::cifar_spec();
  spec.blobs_per_class = 4;
  spec.noise = 0.55;
  spec.confusion = 0.65;  // CIFAR-10 is harder than MNIST; mirror that
  spec.distribution_seed = 13;
  return spec;
}

SyntheticDistribution::SyntheticDistribution(const SyntheticSpec& spec)
    : spec_(spec),
      prototypes_({spec.input.classes, spec.input.channels, spec.input.height,
                   spec.input.width}) {
  Rng proto_rng(spec.distribution_seed);
  for (std::size_t cls = 0; cls < spec.input.classes; ++cls) {
    for (std::size_t ch = 0; ch < spec.input.channels; ++ch) {
      render_channel(prototypes_, cls, ch, spec.blobs_per_class, proto_rng);
    }
  }
}

void SyntheticDistribution::sample_into(nn::Tensor& out, std::size_t row,
                                        std::size_t& label, Rng& rng) const {
  const auto& in = spec_.input;
  const std::size_t cls =
      static_cast<std::size_t>(rng.uniform_int(0, in.classes - 1));
  std::size_t other =
      static_cast<std::size_t>(rng.uniform_int(0, in.classes - 2));
  if (other >= cls) ++other;
  const double mix = rng.uniform(0.0, spec_.confusion);
  const int shift_y = static_cast<int>(
      rng.uniform_int(-spec_.max_shift, spec_.max_shift));
  const int shift_x = static_cast<int>(
      rng.uniform_int(-spec_.max_shift, spec_.max_shift));

  for (std::size_t ch = 0; ch < in.channels; ++ch) {
    for (std::size_t y = 0; y < in.height; ++y) {
      for (std::size_t x = 0; x < in.width; ++x) {
        const std::ptrdiff_t sy = static_cast<std::ptrdiff_t>(y) + shift_y;
        const std::ptrdiff_t sx = static_cast<std::ptrdiff_t>(x) + shift_x;
        float value = 0.0f;
        if (sy >= 0 && sy < static_cast<std::ptrdiff_t>(in.height) &&
            sx >= 0 && sx < static_cast<std::ptrdiff_t>(in.width)) {
          const auto uy = static_cast<std::size_t>(sy);
          const auto ux = static_cast<std::size_t>(sx);
          value = prototypes_.at(cls, ch, uy, ux) +
                  static_cast<float>(mix) * prototypes_.at(other, ch, uy, ux);
        }
        value += static_cast<float>(rng.normal(0.0, spec_.noise));
        out.at(row, ch, y, x) = value;
      }
    }
  }
  label = cls;
}

Dataset SyntheticDistribution::sample(std::size_t count, Rng& rng) const {
  const auto& in = spec_.input;
  Dataset dataset;
  dataset.samples =
      nn::Tensor({count, in.channels, in.height, in.width});
  dataset.labels.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    sample_into(dataset.samples, i, dataset.labels[i], rng);
  }
  return dataset;
}

}  // namespace cea::data
