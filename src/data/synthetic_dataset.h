#pragma once

#include <cstddef>
#include <vector>

#include "nn/tensor.h"
#include "nn/zoo.h"
#include "util/rng.h"

namespace cea::data {

/// A labeled sample set: `samples` stacks rows along dimension 0 with shape
/// (count, channels, height, width); labels[i] in [0, classes).
struct Dataset {
  nn::Tensor samples;
  std::vector<std::size_t> labels;

  std::size_t size() const noexcept { return labels.size(); }
};

/// Parameters of the class-conditional synthetic image distribution.
///
/// The paper evaluates on MNIST and CIFAR-10 files we do not have offline;
/// this generator is the documented substitution (DESIGN.md): a fixed,
/// seeded set of per-class prototypes plus per-sample jitter produces an IID
/// stream from a time-invariant distribution — exactly the statistical
/// property the paper's formulation relies on — while remaining hard enough
/// that the six zoo models reach distinct loss/accuracy levels.
struct SyntheticSpec {
  nn::InputSpec input;
  std::size_t blobs_per_class = 3;  ///< Gaussian blobs forming a prototype
  double noise = 0.45;              ///< per-pixel Gaussian noise stddev
  double confusion = 0.5;           ///< weight of a random other-class mix-in
  int max_shift = 2;                ///< uniform random translation (pixels)
  std::uint64_t distribution_seed = 7;  ///< identifies *the* distribution
};

/// MNIST-like default (28x28x1).
SyntheticSpec mnist_like_spec();
/// CIFAR-10-like default (32x32x3, more confusable).
SyntheticSpec cifar_like_spec();

/// The frozen per-class prototypes of a synthetic distribution. Two
/// generators built from the same spec produce samples from the same
/// distribution (the train/test and stream draws of the paper).
class SyntheticDistribution {
 public:
  explicit SyntheticDistribution(const SyntheticSpec& spec);

  /// Draw `count` IID samples using the caller's stream RNG.
  Dataset sample(std::size_t count, Rng& rng) const;

  /// Draw a single sample (used by the streamed-inference examples).
  void sample_into(nn::Tensor& out, std::size_t row, std::size_t& label,
                   Rng& rng) const;

  const SyntheticSpec& spec() const noexcept { return spec_; }

 private:
  SyntheticSpec spec_;
  nn::Tensor prototypes_;  // (classes, channels, height, width)
};

}  // namespace cea::data
