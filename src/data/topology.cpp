#include "data/topology.h"

#include <cmath>
#include <numbers>

namespace cea::data {

double distance_km(const Site& a, const Site& b) noexcept {
  const double dx = a.x_km - b.x_km;
  const double dy = a.y_km - b.y_km;
  return std::sqrt(dx * dx + dy * dy);
}

Topology generate_topology(std::size_t num_edges, const TopologyConfig& config,
                           Rng& rng) {
  Topology topo;
  topo.cloud = {config.cloud_offset_km, 0.0};
  topo.edges.reserve(num_edges);
  topo.distance_km.reserve(num_edges);
  topo.download_delay.reserve(num_edges);
  topo.transfer_energy_kwh_per_mb.reserve(num_edges);
  for (std::size_t i = 0; i < num_edges; ++i) {
    // Uniform in a disc of the configured radius around the origin.
    const double radius = config.region_radius_km * std::sqrt(rng.uniform());
    const double angle = rng.uniform(0.0, 2.0 * std::numbers::pi);
    const Site site{radius * std::cos(angle), radius * std::sin(angle)};
    topo.edges.push_back(site);
    const double dist = distance_km(site, topo.cloud);
    topo.distance_km.push_back(dist);
    topo.download_delay.push_back(config.delay_base +
                                  config.delay_per_1000km * dist / 1000.0);
    topo.transfer_energy_kwh_per_mb.push_back(config.energy_kwh_per_mb);
  }
  return topo;
}

}  // namespace cea::data
