#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace cea::data {

/// Planar site location in kilometers.
struct Site {
  double x_km = 0.0;
  double y_km = 0.0;
};

/// Cloud-edge topology: one cloud site and `I` edge sites, with the derived
/// per-edge quantities the formulation uses.
///
/// The paper places the cloud and edges at real Australian base-station
/// coordinates and estimates network delay from geographical distance. The
/// substitution scatters edges in a disc around a displaced cloud site and
/// applies the same distance -> delay mapping.
struct Topology {
  Site cloud;
  std::vector<Site> edges;
  std::vector<double> distance_km;          ///< cloud -> edge i
  std::vector<double> download_delay;       ///< u_i, seconds per model MB-batch
  std::vector<double> transfer_energy_kwh_per_mb;  ///< theta_i

  std::size_t num_edges() const noexcept { return edges.size(); }
};

struct TopologyConfig {
  double region_radius_km = 900.0;  ///< spread of edge sites
  double cloud_offset_km = 1500.0;  ///< cloud is far from the edge region
  /// Download-delay model u_i = base + per_1000km * distance/1000, in the
  /// same cost units as the per-slot inference loss. Model downloads take
  /// single-digit seconds against a 15-minute slot, so u_i sits below the
  /// per-slot loss scale; the switching_weight knob (Fig. 5) scales it up.
  double delay_base = 0.05;
  double delay_per_1000km = 0.15;
  /// Energy to push one MB over the backhaul; the paper's value is
  /// 1.02e-16 kWh per unit size — we keep the same constant per MB.
  double energy_kwh_per_mb = 1.02e-16 * 1e6;
};

Topology generate_topology(std::size_t num_edges, const TopologyConfig& config,
                           Rng& rng);

/// Euclidean distance between two sites.
double distance_km(const Site& a, const Site& b) noexcept;

}  // namespace cea::data
