#include "data/trace_io.h"

#include <climits>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/numio.h"

namespace cea::data {
namespace {

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> cells;
  std::stringstream ss(line);
  std::string cell;
  while (std::getline(ss, cell, ',')) {
    // Trim surrounding whitespace.
    const auto begin = cell.find_first_not_of(" \t\r");
    const auto end = cell.find_last_not_of(" \t\r");
    cells.push_back(begin == std::string::npos
                        ? std::string()
                        : cell.substr(begin, end - begin + 1));
  }
  return cells;
}

// Locale-independent (util/numio.h): std::strtod honored LC_NUMERIC, so
// under a comma-decimal locale (de_DE.UTF-8) "7.4" stopped parsing at the
// '.' and prices/counts were rejected or silently mis-read. Pinned by the
// locale regression tests in tests/data/test_trace_io.cpp.
bool parse_double(const std::string& cell, double& out) {
  return util::parse_double(cell, out);
}

/// Strict workload count: integral, >= 1, and within int range. The old
/// static_cast<int>(value) silently truncated "3.7" to 3 and was undefined
/// behavior for values beyond INT_MAX.
bool parse_count(const std::string& cell, int& out, std::string& why) {
  double value = 0.0;
  if (!util::parse_double(cell, value) || value <= 0.0) {
    why = "bad count";
    return false;
  }
  if (std::floor(value) != value) {
    why = "non-integral count";
    return false;
  }
  if (value > static_cast<double>(INT_MAX)) {
    why = "count exceeds INT_MAX";
    return false;
  }
  out = static_cast<int>(value);
  return true;
}

}  // namespace

WorkloadTraces load_workload_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_workload_csv: cannot open " + path);
  WorkloadTraces traces;
  std::string line;
  std::size_t expected_columns = 0;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    const auto cells = split_csv_line(line);
    std::vector<int> trace;
    trace.reserve(cells.size());
    for (const auto& cell : cells) {
      int value = 0;
      std::string why;
      if (!parse_count(cell, value, why)) {
        throw std::runtime_error("load_workload_csv: " + why + " '" + cell +
                                 "' at line " + std::to_string(line_number));
      }
      trace.push_back(value);
    }
    if (expected_columns == 0) {
      expected_columns = trace.size();
    } else if (trace.size() != expected_columns) {
      throw std::runtime_error(
          "load_workload_csv: ragged row at line " +
          std::to_string(line_number) + " (" + std::to_string(trace.size()) +
          " columns, expected " + std::to_string(expected_columns) + ")");
    }
    traces.push_back(std::move(trace));
  }
  if (traces.empty())
    throw std::runtime_error("load_workload_csv: no rows in " + path);
  return traces;
}

PriceSeries load_prices_csv(const std::string& path, double sell_ratio) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_prices_csv: cannot open " + path);
  PriceSeries series;
  std::string line;
  std::size_t line_number = 0;
  bool first_data_line = true;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    const auto cells = split_csv_line(line);
    double buy = 0.0;
    if (!parse_double(cells[0], buy)) {
      if (first_data_line) {
        first_data_line = false;  // header row
        continue;
      }
      throw std::runtime_error("load_prices_csv: bad price '" + cells[0] +
                               "' at line " + std::to_string(line_number));
    }
    first_data_line = false;
    if (buy <= 0.0) {
      throw std::runtime_error("load_prices_csv: non-positive price at line " +
                               std::to_string(line_number));
    }
    double sell = buy * sell_ratio;
    if (cells.size() >= 2 && !cells[1].empty()) {
      if (!parse_double(cells[1], sell) || sell <= 0.0 || sell > buy) {
        throw std::runtime_error(
            "load_prices_csv: bad sell price at line " +
            std::to_string(line_number) +
            " (must be positive and <= buy price)");
      }
    }
    series.buy.push_back(buy);
    series.sell.push_back(sell);
  }
  if (series.buy.empty())
    throw std::runtime_error("load_prices_csv: no rows in " + path);
  return series;
}

void save_workload_csv(const WorkloadTraces& traces, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_workload_csv: cannot open " + path);
  // Counts are formatted through util/numio (never the stream's locale):
  // an imbued/global locale could group digits ("12.034") and break the
  // loader's strict integer parse.
  for (const auto& trace : traces) {
    std::string row;
    for (std::size_t t = 0; t < trace.size(); ++t) {
      if (t > 0) row.push_back(',');
      row += util::format_i64(trace[t]);
    }
    row.push_back('\n');
    out << row;
  }
}

void save_prices_csv(const PriceSeries& series, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_prices_csv: cannot open " + path);
  // Same locale audit as save_workload_csv: `out << double` renders the
  // decimal separator of the stream's locale, which load_prices_csv would
  // then reject; format_double always emits '.'.
  out << "buy,sell\n";
  for (std::size_t t = 0; t < series.size(); ++t) {
    out << util::format_double(series.buy[t], 10) << ','
        << util::format_double(series.sell[t], 10) << '\n';
  }
}

}  // namespace cea::data
