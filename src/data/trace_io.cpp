#include "data/trace_io.h"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace cea::data {
namespace {

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> cells;
  std::stringstream ss(line);
  std::string cell;
  while (std::getline(ss, cell, ',')) {
    // Trim surrounding whitespace.
    const auto begin = cell.find_first_not_of(" \t\r");
    const auto end = cell.find_last_not_of(" \t\r");
    cells.push_back(begin == std::string::npos
                        ? std::string()
                        : cell.substr(begin, end - begin + 1));
  }
  return cells;
}

bool parse_double(const std::string& cell, double& out) {
  if (cell.empty()) return false;
  char* endptr = nullptr;
  out = std::strtod(cell.c_str(), &endptr);
  return endptr == cell.c_str() + cell.size();
}

}  // namespace

WorkloadTraces load_workload_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_workload_csv: cannot open " + path);
  WorkloadTraces traces;
  std::string line;
  std::size_t expected_columns = 0;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    const auto cells = split_csv_line(line);
    std::vector<int> trace;
    trace.reserve(cells.size());
    for (const auto& cell : cells) {
      double value = 0.0;
      if (!parse_double(cell, value) || value <= 0.0) {
        throw std::runtime_error("load_workload_csv: bad count '" + cell +
                                 "' at line " + std::to_string(line_number));
      }
      trace.push_back(static_cast<int>(value));
    }
    if (expected_columns == 0) {
      expected_columns = trace.size();
    } else if (trace.size() != expected_columns) {
      throw std::runtime_error(
          "load_workload_csv: ragged row at line " +
          std::to_string(line_number) + " (" + std::to_string(trace.size()) +
          " columns, expected " + std::to_string(expected_columns) + ")");
    }
    traces.push_back(std::move(trace));
  }
  if (traces.empty())
    throw std::runtime_error("load_workload_csv: no rows in " + path);
  return traces;
}

PriceSeries load_prices_csv(const std::string& path, double sell_ratio) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_prices_csv: cannot open " + path);
  PriceSeries series;
  std::string line;
  std::size_t line_number = 0;
  bool first_data_line = true;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    const auto cells = split_csv_line(line);
    double buy = 0.0;
    if (!parse_double(cells[0], buy)) {
      if (first_data_line) {
        first_data_line = false;  // header row
        continue;
      }
      throw std::runtime_error("load_prices_csv: bad price '" + cells[0] +
                               "' at line " + std::to_string(line_number));
    }
    first_data_line = false;
    if (buy <= 0.0) {
      throw std::runtime_error("load_prices_csv: non-positive price at line " +
                               std::to_string(line_number));
    }
    double sell = buy * sell_ratio;
    if (cells.size() >= 2 && !cells[1].empty()) {
      if (!parse_double(cells[1], sell) || sell <= 0.0 || sell > buy) {
        throw std::runtime_error(
            "load_prices_csv: bad sell price at line " +
            std::to_string(line_number) +
            " (must be positive and <= buy price)");
      }
    }
    series.buy.push_back(buy);
    series.sell.push_back(sell);
  }
  if (series.buy.empty())
    throw std::runtime_error("load_prices_csv: no rows in " + path);
  return series;
}

void save_workload_csv(const WorkloadTraces& traces, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_workload_csv: cannot open " + path);
  for (const auto& trace : traces) {
    for (std::size_t t = 0; t < trace.size(); ++t) {
      if (t > 0) out << ',';
      out << trace[t];
    }
    out << '\n';
  }
}

void save_prices_csv(const PriceSeries& series, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_prices_csv: cannot open " + path);
  out << "buy,sell\n";
  out.precision(10);
  for (std::size_t t = 0; t < series.size(); ++t) {
    out << series.buy[t] << ',' << series.sell[t] << '\n';
  }
}

}  // namespace cea::data
