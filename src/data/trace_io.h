#pragma once

#include <string>
#include <vector>

#include "data/carbon_market.h"
#include "data/workload.h"

namespace cea::data {

/// CSV loaders so real traces can replace the synthetic generators (the
/// paper uses TfL London Underground passenger counts and EU Carbon Permit
/// quotes; when you have those files, load them here and feed the result
/// into the simulator via Environment).
///
/// Workload CSV format: one row per edge, one integer column per time slot:
///   12034,11876,...
/// Rows may have trailing whitespace; blank lines are skipped. All rows
/// must have the same number of columns and positive values.
WorkloadTraces load_workload_csv(const std::string& path);

/// Price CSV format: one row per time slot, either "buy" or "buy,sell"
/// (a single column applies `sell_ratio` to derive the selling price).
/// A header row is detected (first cell non-numeric) and skipped.
PriceSeries load_prices_csv(const std::string& path,
                            double sell_ratio = 0.9);

/// Write traces back out in the accepted formats (round-trip helpers for
/// exporting generated scenarios).
void save_workload_csv(const WorkloadTraces& traces, const std::string& path);
void save_prices_csv(const PriceSeries& series, const std::string& path);

}  // namespace cea::data
