#include "data/workload.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numbers>

#include "util/thread_pool.h"

namespace cea::data {

double diurnal_shape(double u) noexcept {
  // Two Gaussian rush-hour bumps (around 35% and 73% of the covered span,
  // i.e. ~8:30 and ~17:30 for a 05:00-25:00 service day) over a low base.
  const auto bump = [](double x, double center, double width) {
    const double d = (x - center) / width;
    return std::exp(-0.5 * d * d);
  };
  const double value =
      0.22 + bump(u, 0.35, 0.07) + 0.85 * bump(u, 0.73, 0.09);
  return value / 1.35;  // normalize roughly into [0, 1]
}

double bounded_pareto_quantile(double u, double alpha, double lo,
                               double hi) noexcept {
  assert(alpha > 0.0 && lo > 0.0 && hi > lo);
  // F(x) = (1 - (lo/x)^a) / (1 - (lo/hi)^a) on [lo, hi]; invert for x.
  const double tail = 1.0 - std::pow(lo / hi, alpha);
  const double x = lo / std::pow(1.0 - u * tail, 1.0 / alpha);
  return std::clamp(x, lo, hi);
}

double bounded_pareto_mean(double alpha, double lo, double hi) noexcept {
  assert(alpha > 0.0 && lo > 0.0 && hi > lo);
  const double trunc = 1.0 - std::pow(lo / hi, alpha);
  if (std::abs(alpha - 1.0) < 1e-12) {
    return lo * std::log(hi / lo) / trunc;
  }
  return alpha * std::pow(lo, alpha) *
         (std::pow(lo, 1.0 - alpha) - std::pow(hi, 1.0 - alpha)) /
         ((alpha - 1.0) * trunc);
}

double zipf_scale(std::size_t edge, std::size_t num_edges,
                  double exponent) noexcept {
  assert(edge < num_edges);
  double total = 0.0;
  for (std::size_t e = 0; e < num_edges; ++e)
    total += std::pow(static_cast<double>(e + 1), -exponent);
  const double norm = static_cast<double>(num_edges) / total;
  return std::pow(static_cast<double>(edge + 1), -exponent) * norm;
}

namespace {

/// Uniform in [0, 1) from a hashed key — one mix, no generator state. Used
/// for the flash-event schedule, which must be readable for any (edge, t0)
/// without sequencing a stream.
double hashed_unit(std::uint64_t key) noexcept {
  return static_cast<double>(mix64(key) >> 11) * 0x1.0p-53;
}

/// Salt separating the flash-event coin stream from the cell draw stream.
constexpr std::uint64_t kFlashSalt = 0xF1A5C0DE5EEDULL;

/// Flash contributions below this fraction of flash_magnitude are dropped;
/// bounds the lookback so a cell stays O(1) in t.
constexpr double kFlashEpsilon = 1e-4;

double flash_multiplier(const WorkloadConfig& config, std::uint64_t base_seed,
                        std::size_t edge, std::size_t t) noexcept {
  const double decay = config.flash_decay;
  assert(decay > 0.0 && decay < 1.0);
  const std::size_t lookback = std::min<std::size_t>(
      t + 1, static_cast<std::size_t>(
                 std::ceil(std::log(kFlashEpsilon) / std::log(decay))));
  double flash = 0.0;
  double weight = 1.0;
  for (std::size_t lag = 0; lag < lookback; ++lag, weight *= decay) {
    const std::size_t t0 = t - lag;
    const double coin =
        hashed_unit(stream_seed(base_seed ^ kFlashSalt, edge, t0));
    if (coin < config.flash_probability)
      flash += config.flash_magnitude * weight;
  }
  return 1.0 + flash;
}

WorkloadTraces generate_keyed(std::size_t num_edges,
                              const WorkloadConfig& config,
                              std::uint64_t base_seed,
                              util::ThreadPool* pool) {
  // Shared normalizer, computed once (it is O(num_edges) itself).
  double total = 0.0;
  for (std::size_t e = 0; e < num_edges; ++e)
    total += std::pow(static_cast<double>(e + 1), -config.zipf_exponent);
  const double zipf_norm =
      total > 0.0 ? static_cast<double>(num_edges) / total : 1.0;

  WorkloadTraces traces(num_edges);
  const auto edge_task = [&](std::size_t e) {
    auto& trace = traces[e];
    trace.resize(config.num_slots);
    for (std::size_t t = 0; t < config.num_slots; ++t)
      trace[t] = workload_cell(config, base_seed, zipf_norm, e, t);
  };
  if (pool != nullptr) {
    pool->parallel_for(num_edges, edge_task);
  } else {
    for (std::size_t e = 0; e < num_edges; ++e) edge_task(e);
  }
  return traces;
}

WorkloadTraces generate_diurnal(std::size_t num_edges,
                                const WorkloadConfig& config, Rng& rng) {
  assert(config.slots_per_day > 0);
  WorkloadTraces traces(num_edges);

  // Heavy-tailed station scales, sorted descending: edge 0 is the busiest
  // station, mirroring the paper's "top-K by passenger count" selection.
  std::vector<double> scales(num_edges);
  for (auto& s : scales) {
    const double u = std::max(rng.uniform(), 1e-9);
    s = std::pow(u, -1.0 / config.station_scale_alpha);  // Pareto(alpha)
  }
  std::sort(scales.begin(), scales.end(), std::greater<>());
  // Normalize so the average scale is 1 (keeps mean_samples meaningful).
  double total = 0.0;
  for (double s : scales) total += s;
  const double norm =
      total > 0.0 ? static_cast<double>(num_edges) / total : 1.0;

  for (std::size_t e = 0; e < num_edges; ++e) {
    auto& trace = traces[e];
    trace.resize(config.num_slots);
    for (std::size_t t = 0; t < config.num_slots; ++t) {
      const double u = static_cast<double>(t % config.slots_per_day) /
                       static_cast<double>(config.slots_per_day);
      const double shape =
          1.0 + (config.peak_factor - 1.0) * diurnal_shape(u);
      const double noise = std::exp(rng.normal(0.0, config.noise));
      const double mean =
          config.mean_samples * scales[e] * norm * shape * noise /
          (1.0 + (config.peak_factor - 1.0) * 0.45);  // recenter on the mean
      trace[t] = static_cast<int>(std::max<std::int64_t>(1, rng.poisson(mean)));
    }
  }
  return traces;
}

}  // namespace

int workload_cell(const WorkloadConfig& config, std::uint64_t base_seed,
                  double zipf_norm, std::size_t edge, std::size_t t) noexcept {
  assert(config.kind != WorkloadKind::kDiurnal);
  const double scale =
      std::pow(static_cast<double>(edge + 1), -config.zipf_exponent) *
      zipf_norm;
  // Burst factor: bounded Pareto normalized to unit mean, so the configured
  // mean_samples survives the heavy tail.
  Rng cell(stream_seed(base_seed, edge, t));
  const double burst =
      bounded_pareto_quantile(cell.uniform(), config.pareto_alpha, 1.0,
                              config.pareto_cap) /
      bounded_pareto_mean(config.pareto_alpha, 1.0, config.pareto_cap);
  double mean = config.mean_samples * scale * burst;
  if (config.kind == WorkloadKind::kFlashCrowd)
    mean *= flash_multiplier(config, base_seed, edge, t);
  // Poisson arrivals around the slot mean; constant-time for any magnitude
  // (normal approximation above 64), so means in the millions are fine.
  const std::int64_t count = std::max<std::int64_t>(1, cell.poisson(mean));
  return static_cast<int>(std::min<std::int64_t>(
      count, std::numeric_limits<int>::max()));
}

WorkloadTraces generate_workload(std::size_t num_edges,
                                 const WorkloadConfig& config, Rng& rng) {
  return generate_workload_pooled(num_edges, config, rng, nullptr);
}

WorkloadTraces generate_workload_pooled(std::size_t num_edges,
                                        const WorkloadConfig& config,
                                        Rng& rng, util::ThreadPool* pool) {
  if (config.kind == WorkloadKind::kDiurnal) {
    // Legacy sequential layout (golden traces pin it byte for byte); its
    // single shared stream cannot fan out.
    return generate_diurnal(num_edges, config, rng);
  }
  // One draw fixes the base seed; everything after is a pure function of
  // (base_seed, edge, t), so the pooled and serial paths agree bitwise.
  const std::uint64_t base_seed = rng();
  return generate_keyed(num_edges, config, base_seed, pool);
}

}  // namespace cea::data
