#include "data/workload.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>

namespace cea::data {

double diurnal_shape(double u) noexcept {
  // Two Gaussian rush-hour bumps (around 35% and 73% of the covered span,
  // i.e. ~8:30 and ~17:30 for a 05:00-25:00 service day) over a low base.
  const auto bump = [](double x, double center, double width) {
    const double d = (x - center) / width;
    return std::exp(-0.5 * d * d);
  };
  const double value =
      0.22 + bump(u, 0.35, 0.07) + 0.85 * bump(u, 0.73, 0.09);
  return value / 1.35;  // normalize roughly into [0, 1]
}

WorkloadTraces generate_workload(std::size_t num_edges,
                                 const WorkloadConfig& config, Rng& rng) {
  assert(config.slots_per_day > 0);
  WorkloadTraces traces(num_edges);

  // Heavy-tailed station scales, sorted descending: edge 0 is the busiest
  // station, mirroring the paper's "top-K by passenger count" selection.
  std::vector<double> scales(num_edges);
  for (auto& s : scales) {
    const double u = std::max(rng.uniform(), 1e-9);
    s = std::pow(u, -1.0 / config.station_scale_alpha);  // Pareto(alpha)
  }
  std::sort(scales.begin(), scales.end(), std::greater<>());
  // Normalize so the average scale is 1 (keeps mean_samples meaningful).
  double total = 0.0;
  for (double s : scales) total += s;
  const double norm =
      total > 0.0 ? static_cast<double>(num_edges) / total : 1.0;

  for (std::size_t e = 0; e < num_edges; ++e) {
    auto& trace = traces[e];
    trace.resize(config.num_slots);
    for (std::size_t t = 0; t < config.num_slots; ++t) {
      const double u = static_cast<double>(t % config.slots_per_day) /
                       static_cast<double>(config.slots_per_day);
      const double shape =
          1.0 + (config.peak_factor - 1.0) * diurnal_shape(u);
      const double noise = std::exp(rng.normal(0.0, config.noise));
      const double mean =
          config.mean_samples * scales[e] * norm * shape * noise /
          (1.0 + (config.peak_factor - 1.0) * 0.45);  // recenter on the mean
      trace[t] = static_cast<int>(std::max<std::int64_t>(1, rng.poisson(mean)));
    }
  }
  return traces;
}

}  // namespace cea::data
