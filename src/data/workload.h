#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace cea::util {
class ThreadPool;
}

namespace cea::data {

/// Trace family of the synthetic workload generator.
enum class WorkloadKind {
  /// Weekday double-peak diurnal profile with Pareto station scales and
  /// multiplicative noise — the paper's underground-station substitution.
  /// Generated from a single sequential RNG stream (legacy layout; every
  /// golden trace pins it byte for byte).
  kDiurnal,
  /// Heavy-tailed request sizes: Zipf(zipf_exponent) edge popularity times
  /// an i.i.d. bounded-Pareto(pareto_alpha, [1, pareto_cap]) burst per
  /// (edge, slot), normalized so E[M_i^t] stays mean_samples * scale_i.
  /// Every cell is a pure function of (seed, edge, t), so generation
  /// parallelizes bit-identically (generate_workload_pooled).
  kHeavyTail,
  /// kHeavyTail's Zipf base load plus correlated flash-crowd events: each
  /// (edge, slot) ignites independently with flash_probability and adds a
  /// flash_magnitude multiplier decaying geometrically (flash_decay) over
  /// the following slots. Cells remain pure functions of (seed, edge, t)
  /// via a bounded lookback window.
  kFlashCrowd,
};

/// Parameters of the synthetic inference-workload traces.
///
/// The paper drives each edge with 15-minute passenger counts of London's
/// busiest Underground stations over a Thursday and a Friday (160 slots).
/// kDiurnal is the documented substitution: a weekday double-peak diurnal
/// profile (morning/evening rush), a heavy-tailed per-station scale
/// mirroring "top-K busiest stations", and multiplicative noise. The other
/// kinds stress the fleet engine beyond the paper's traces — see
/// WorkloadKind.
struct WorkloadConfig {
  std::size_t num_slots = 160;       ///< total horizon (two days in the paper)
  std::size_t slots_per_day = 80;    ///< 15-min slots in the covered day span
  double mean_samples = 50.0;        ///< average M_i^t per edge per slot
  double peak_factor = 2.2;          ///< rush-hour multiplier over the base
  double station_scale_alpha = 1.3;  ///< Pareto tail of per-station volume
  double noise = 0.12;               ///< lognormal-ish multiplicative noise

  // --- Fields below only affect kHeavyTail / kFlashCrowd. Appended after
  // the legacy fields so existing designated initializers keep compiling.
  WorkloadKind kind = WorkloadKind::kDiurnal;
  double pareto_alpha = 1.5;   ///< burst tail index (> 1 for a finite mean)
  double pareto_cap = 64.0;    ///< burst truncation, multiples of the base
  double zipf_exponent = 1.1;  ///< edge-popularity Zipf exponent
  double flash_probability = 0.02;  ///< per-(edge, slot) ignition hazard
  double flash_magnitude = 25.0;    ///< initial multiplier of a flash event
  double flash_decay = 0.55;        ///< per-slot geometric decay in (0, 1)
};

/// One trace per edge; trace[t] = M_i^t, the number of arriving samples.
using WorkloadTraces = std::vector<std::vector<int>>;

/// Deterministic double-peak diurnal shape in [0, 1] for a slot-of-day
/// fraction u in [0, 1). Exposed for tests.
double diurnal_shape(double u) noexcept;

/// Inverse CDF of the bounded (truncated) Pareto on [lo, hi] with tail
/// index alpha, evaluated at u in [0, 1). Exposed for the tail-index
/// sanity tests (Hill estimator over quantile samples).
double bounded_pareto_quantile(double u, double alpha, double lo,
                               double hi) noexcept;

/// Analytic mean of that bounded Pareto — the burst normalizer that keeps
/// E[M_i^t] on the configured mean.
double bounded_pareto_mean(double alpha, double lo, double hi) noexcept;

/// Zipf popularity of edge e with the average over `num_edges` edges
/// normalized to 1 (so mean_samples keeps its meaning fleet-wide).
double zipf_scale(std::size_t edge, std::size_t num_edges,
                  double exponent) noexcept;

/// M_i^t of the keyed kinds (kHeavyTail, kFlashCrowd): a pure function of
/// (base_seed, edge, t) — the property that makes pooled generation
/// bit-identical to serial. `zipf_norm` is the shared normalizer
/// (precomputed by the generators; tests may pass
/// zipf_scale(edge, E, s) / pow(edge+1, -s) consistency aside and call
/// with the generator's value). Requires config.kind != kDiurnal.
int workload_cell(const WorkloadConfig& config, std::uint64_t base_seed,
                  double zipf_norm, std::size_t edge, std::size_t t) noexcept;

/// Generate per-edge workload traces. kDiurnal consumes `rng` throughout
/// (legacy sequential layout); the keyed kinds consume exactly one draw to
/// derive the base seed and are otherwise pure in (seed, edge, t).
WorkloadTraces generate_workload(std::size_t num_edges,
                                 const WorkloadConfig& config, Rng& rng);

/// Same traces, with the per-edge generation of the keyed kinds fanned out
/// over `pool` (bit-identical to generate_workload for any pool width —
/// the fleet tests pin this). kDiurnal's shared sequential stream cannot
/// fan out and falls back to the serial path. pool == nullptr is the
/// serial path for every kind.
WorkloadTraces generate_workload_pooled(std::size_t num_edges,
                                        const WorkloadConfig& config,
                                        Rng& rng, util::ThreadPool* pool);

}  // namespace cea::data
