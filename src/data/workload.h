#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace cea::data {

/// Parameters of the synthetic inference-workload traces.
///
/// The paper drives each edge with 15-minute passenger counts of London's
/// busiest Underground stations over a Thursday and a Friday (160 slots).
/// This generator is the documented substitution: a weekday double-peak
/// diurnal profile (morning/evening rush), a heavy-tailed per-station scale
/// mirroring "top-K busiest stations", and multiplicative noise.
struct WorkloadConfig {
  std::size_t num_slots = 160;       ///< total horizon (two days in the paper)
  std::size_t slots_per_day = 80;    ///< 15-min slots in the covered day span
  double mean_samples = 50.0;        ///< average M_i^t per edge per slot
  double peak_factor = 2.2;          ///< rush-hour multiplier over the base
  double station_scale_alpha = 1.3;  ///< Pareto tail of per-station volume
  double noise = 0.12;               ///< lognormal-ish multiplicative noise
};

/// One trace per edge; trace[t] = M_i^t, the number of arriving samples.
using WorkloadTraces = std::vector<std::vector<int>>;

/// Deterministic double-peak diurnal shape in [0, 1] for a slot-of-day
/// fraction u in [0, 1). Exposed for tests.
double diurnal_shape(double u) noexcept;

/// Generate per-edge workload traces.
WorkloadTraces generate_workload(std::size_t num_edges,
                                 const WorkloadConfig& config, Rng& rng);

}  // namespace cea::data
