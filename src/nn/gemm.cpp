#include "nn/gemm.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstring>
#include <vector>

#include "nn/gemm_kernels.h"
#include "obs/telemetry.h"
#include "util/cpu.h"

namespace cea::nn {
namespace {

std::atomic<ComputeBackend> g_backend{ComputeBackend::kGemm};
std::atomic<util::ThreadPool*> g_pool{nullptr};

}  // namespace

void set_compute_backend(ComputeBackend backend) noexcept {
  g_backend.store(backend, std::memory_order_relaxed);
}

ComputeBackend compute_backend() noexcept {
  return g_backend.load(std::memory_order_relaxed);
}

void set_compute_pool(util::ThreadPool* pool) noexcept {
  g_pool.store(pool, std::memory_order_relaxed);
}

util::ThreadPool* compute_pool() noexcept {
  return g_pool.load(std::memory_order_relaxed);
}

namespace gemm {
namespace detail {

void micro_kernel_scalar(const float* a, std::size_t a_rstride,
                         std::size_t a_kstride, const float* b,
                         std::size_t b_kstride, std::size_t kc, float* c,
                         std::size_t ldc, std::size_t rows, std::size_t cols,
                         bool accumulate) {
  // The reference chain: zero-initialized accumulator, one multiply and
  // one add per k, a single += (or = when overwriting) into C at panel
  // end. Every SIMD kernel lane evaluates exactly this; the strides only
  // change where operands live, never the chain.
  for (std::size_t r = 0; r < rows; ++r) {
    float* cr = c + r * ldc;
    const float* ar = a + r * a_rstride;
    for (std::size_t j = 0; j < cols; ++j) {
      float acc = 0.0f;
      for (std::size_t k = 0; k < kc; ++k)
        acc += ar[k * a_kstride] * b[k * b_kstride + j];
      if (accumulate)
        cr[j] += acc;
      else
        cr[j] = acc;
    }
  }
}

}  // namespace detail

namespace {

using detail::KernelDesc;

KernelDesc variant_desc(Variant variant) noexcept {
  switch (variant) {
#if defined(__x86_64__)
    case Variant::kAvx512:
      return {detail::kAvx512Mr, detail::kAvx512Nr,
              &detail::micro_kernel_avx512};
    case Variant::kAvx2:
      return {detail::kAvx2Mr, detail::kAvx2Nr, &detail::micro_kernel_avx2};
#endif
    default:
      return {detail::kScalarMr, detail::kScalarNr,
              &detail::micro_kernel_scalar};
  }
}

constexpr std::size_t ceil_div(std::size_t a, std::size_t b) noexcept {
  return (a + b - 1) / b;
}

/// Element (i, j) of op(A) for an A stored row-major with leading
/// dimension ld.
inline float op_at(const float* a, std::size_t ld, Op op, std::size_t i,
                   std::size_t j) noexcept {
  return op == Op::kNone ? a[i * ld + j] : a[j * ld + i];
}

/// Pack the (rows x kc) A slice starting at (i0, p0) into mr-row
/// sub-panels, k-major, row index fastest, zero-padding past `rows`.
void pack_a(const float* a, std::size_t lda, Op op_a, std::size_t i0,
            std::size_t rows, std::size_t p0, std::size_t kc,
            std::size_t mr, float* apack) {
  const std::size_t panels = ceil_div(rows, mr);
  for (std::size_t ip = 0; ip < panels; ++ip) {
    const std::size_t live = std::min(mr, rows - ip * mr);
    float* dst = apack + ip * kc * mr;
    for (std::size_t k = 0; k < kc; ++k) {
      for (std::size_t r = 0; r < live; ++r)
        dst[k * mr + r] = op_at(a, lda, op_a, i0 + ip * mr + r, p0 + k);
      for (std::size_t r = live; r < mr; ++r) dst[k * mr + r] = 0.0f;
    }
  }
}

/// Pack the (kc x cols) B slice starting at (p0, j0) into nr-column
/// sub-panels, k-major, column index fastest, zero-padding past `cols`.
void pack_b(const float* b, std::size_t ldb, Op op_b, std::size_t j0,
            std::size_t cols, std::size_t p0, std::size_t kc,
            std::size_t nr, float* bpack) {
  const std::size_t panels = ceil_div(cols, nr);
  for (std::size_t jp = 0; jp < panels; ++jp) {
    const std::size_t live = std::min(nr, cols - jp * nr);
    float* dst = bpack + jp * kc * nr;
    if (op_b == Op::kNone) {
      const float* src = b + p0 * ldb + j0 + jp * nr;
      for (std::size_t k = 0; k < kc; ++k) {
        std::memcpy(dst + k * nr, src + k * ldb, live * sizeof(float));
        for (std::size_t j = live; j < nr; ++j) dst[k * nr + j] = 0.0f;
      }
    } else {
      for (std::size_t j = 0; j < live; ++j) {
        const float* src = b + (j0 + jp * nr + j) * ldb + p0;
        for (std::size_t k = 0; k < kc; ++k) dst[k * nr + j] = src[k];
      }
      for (std::size_t k = 0; k < kc; ++k)
        for (std::size_t j = live; j < nr; ++j) dst[k * nr + j] = 0.0f;
    }
  }
}

/// One C tile [i0, i0+rows) x [j0, j0+cols): multiply every K panel in
/// order. Non-transposed operands are fed to the micro-kernel directly
/// from the caller's row-major storage (a_rstride = lda / b_kstride =
/// ldb); only transposed operands and the zero-padded column-edge B panel
/// go through a packing pass. Packing buffers are per-thread so pool
/// workers never share scratch, and they persist across calls (the
/// "reusable workspace" the layers rely on instead of per-call
/// allocation).
void compute_tile(const KernelDesc& kd, const float* a, std::size_t lda,
                  Op op_a, const float* b, std::size_t ldb, Op op_b,
                  float* c, std::size_t ldc, std::size_t i0,
                  std::size_t rows, std::size_t j0, std::size_t cols,
                  std::size_t k, bool accumulate) {
  thread_local std::vector<float> apack;
  thread_local std::vector<float> bpack;
  thread_local std::vector<float> bedge;
  const bool direct_a = op_a == Op::kNone;
  const bool direct_b = op_b == Op::kNone;
  const std::size_t m_panels = ceil_div(rows, kd.mr);
  const std::size_t n_panels = ceil_div(cols, kd.nr);
  if (!direct_a) apack.resize(m_panels * detail::kKC * kd.mr);
  if (!direct_b) bpack.resize(n_panels * detail::kKC * kd.nr);

  for (std::size_t p0 = 0; p0 < k; p0 += detail::kKC) {
    const std::size_t kc = std::min(detail::kKC, k - p0);
    if (!direct_a)
      pack_a(a, lda, op_a, i0, rows, p0, kc, kd.mr, apack.data());
    if (!direct_b)
      pack_b(b, ldb, op_b, j0, cols, p0, kc, kd.nr, bpack.data());
    for (std::size_t jp = 0; jp < n_panels; ++jp) {
      const std::size_t live_cols = std::min(kd.nr, cols - jp * kd.nr);
      const float* bsub;
      std::size_t b_kstride;
      if (!direct_b) {
        bsub = bpack.data() + jp * kc * kd.nr;
        b_kstride = kd.nr;
      } else if (live_cols == kd.nr) {
        bsub = b + p0 * ldb + j0 + jp * kd.nr;
        b_kstride = ldb;
      } else {
        // Column edge of a direct B: the kernel computes full nr-wide
        // vectors, so stage this one panel zero-padded.
        bedge.resize(kc * kd.nr);
        pack_b(b, ldb, op_b, j0 + jp * kd.nr, live_cols, p0, kc, kd.nr,
               bedge.data());
        bsub = bedge.data();
        b_kstride = kd.nr;
      }
      for (std::size_t ip = 0; ip < m_panels; ++ip) {
        const std::size_t live_rows = std::min(kd.mr, rows - ip * kd.mr);
        const float* asub = direct_a
                                ? a + (i0 + ip * kd.mr) * lda + p0
                                : apack.data() + ip * kc * kd.mr;
        // Only the first K panel may overwrite; later panels always add.
        kd.kernel(asub, direct_a ? lda : 1, direct_a ? 1 : kd.mr, bsub,
                  b_kstride, kc,
                  c + (i0 + ip * kd.mr) * ldc + j0 + jp * kd.nr, ldc,
                  live_rows, live_cols, accumulate || p0 > 0);
      }
    }
  }
}

}  // namespace

Variant active_variant() noexcept {
  if (util::have_avx512()) return Variant::kAvx512;
  if (util::have_avx2()) return Variant::kAvx2;
  return Variant::kScalar;
}

void multiply_variant(Variant variant, const float* a, std::size_t lda,
                      Op op_a, const float* b, std::size_t ldb, Op op_b,
                      float* c, std::size_t ldc, std::size_t m,
                      std::size_t n, std::size_t k,
                      util::ThreadPool* pool, bool accumulate) {
  if (m == 0 || n == 0 || k == 0) {
    if (!accumulate && k == 0 && m != 0 && n != 0)
      for (std::size_t i = 0; i < m; ++i)
        std::memset(c + i * ldc, 0, n * sizeof(float));
    return;
  }
  // Kernel telemetry: FLOP count plus a per-call span, so achieved
  // GFLOP/s over any profiled window is nn.gemm.flops / nn.gemm's summed
  // duration (compare against the perf_nn kernel peak). One span per
  // multiply — the call itself is micro- to millisecond scale.
  CEA_SPAN("nn.gemm");
  CEA_TELEM(static const obs::MetricId obs_flops =
                obs::counter("nn.gemm.flops");
            obs::add(obs_flops, 2.0 * static_cast<double>(m) *
                                    static_cast<double>(n) *
                                    static_cast<double>(k)););
  const KernelDesc kd = variant_desc(variant);

  // The tile grid is pure scheduling: K is never split and every tile has
  // one writer, so shrinking tiles to feed more threads cannot change a
  // single accumulation chain (see gemm_kernels.h).
  std::size_t mc = detail::kMC, nc = detail::kNC;
  if (pool != nullptr) {
    const std::size_t want = 3 * (pool->size() + 1);
    const auto tiles = [&] { return ceil_div(m, mc) * ceil_div(n, nc); };
    while (tiles() < want && nc > 4 * kd.nr) nc /= 2;
    while (tiles() < want && mc > 4 * kd.mr) mc /= 2;
  }

  const std::size_t tiles_n = ceil_div(n, nc);
  const std::size_t total = ceil_div(m, mc) * tiles_n;
  const auto task = [&](std::size_t t) {
    const std::size_t i0 = (t / tiles_n) * mc;
    const std::size_t j0 = (t % tiles_n) * nc;
    compute_tile(kd, a, lda, op_a, b, ldb, op_b, c, ldc, i0,
                 std::min(mc, m - i0), j0, std::min(nc, n - j0), k,
                 accumulate);
  };
  if (pool != nullptr && total > 1) {
    pool->parallel_for(total, task);
  } else {
    for (std::size_t t = 0; t < total; ++t) task(t);
  }
}

void multiply(const float* a, std::size_t lda, Op op_a, const float* b,
              std::size_t ldb, Op op_b, float* c, std::size_t ldc,
              std::size_t m, std::size_t n, std::size_t k,
              util::ThreadPool* pool, bool accumulate) {
  multiply_variant(active_variant(), a, lda, op_a, b, ldb, op_b, c, ldc, m,
                   n, k, pool, accumulate);
}

}  // namespace gemm
}  // namespace cea::nn
