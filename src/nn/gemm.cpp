#include "nn/gemm.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "nn/gemm_kernels.h"
#include "nn/quantize.h"
#include "obs/telemetry.h"
#include "util/cpu.h"

// Baseline-ISA vector path for the dynamic activation quantizer. SSE2 is
// part of the x86-64 ABI, so this needs no runtime dispatch — it is either
// compiled in everywhere (one code path per build) or absent everywhere.
#if defined(__SSE2__) || defined(_M_X64)
#include <emmintrin.h>
#define CEA_GEMM_SSE2 1
#endif

namespace cea::nn {
namespace {

std::atomic<ComputeBackend> g_backend{ComputeBackend::kGemm};
std::atomic<util::ThreadPool*> g_pool{nullptr};

}  // namespace

void set_compute_backend(ComputeBackend backend) noexcept {
  g_backend.store(backend, std::memory_order_relaxed);
}

ComputeBackend compute_backend() noexcept {
  return g_backend.load(std::memory_order_relaxed);
}

void set_compute_pool(util::ThreadPool* pool) noexcept {
  g_pool.store(pool, std::memory_order_relaxed);
}

util::ThreadPool* compute_pool() noexcept {
  return g_pool.load(std::memory_order_relaxed);
}

namespace gemm {
namespace detail {

void micro_kernel_scalar(const float* a, std::size_t a_rstride,
                         std::size_t a_kstride, const float* b,
                         std::size_t b_kstride, std::size_t kc, float* c,
                         std::size_t ldc, std::size_t rows, std::size_t cols,
                         bool accumulate) {
  // The reference chain: zero-initialized accumulator, one multiply and
  // one add per k, a single += (or = when overwriting) into C at panel
  // end. Every SIMD kernel lane evaluates exactly this; the strides only
  // change where operands live, never the chain.
  for (std::size_t r = 0; r < rows; ++r) {
    float* cr = c + r * ldc;
    const float* ar = a + r * a_rstride;
    for (std::size_t j = 0; j < cols; ++j) {
      float acc = 0.0f;
      for (std::size_t k = 0; k < kc; ++k)
        acc += ar[k * a_kstride] * b[k * b_kstride + j];
      if (accumulate)
        cr[j] += acc;
      else
        cr[j] = acc;
    }
  }
}

}  // namespace detail

namespace {

using detail::KernelDesc;

KernelDesc variant_desc(Variant variant) noexcept {
  switch (variant) {
#if defined(__x86_64__)
    case Variant::kAvx512:
      return {detail::kAvx512Mr, detail::kAvx512Nr,
              &detail::micro_kernel_avx512};
    case Variant::kAvx2:
      return {detail::kAvx2Mr, detail::kAvx2Nr, &detail::micro_kernel_avx2};
#endif
    default:
      return {detail::kScalarMr, detail::kScalarNr,
              &detail::micro_kernel_scalar};
  }
}

constexpr std::size_t ceil_div(std::size_t a, std::size_t b) noexcept {
  return (a + b - 1) / b;
}

/// Element (i, j) of op(A) for an A stored row-major with leading
/// dimension ld.
inline float op_at(const float* a, std::size_t ld, Op op, std::size_t i,
                   std::size_t j) noexcept {
  return op == Op::kNone ? a[i * ld + j] : a[j * ld + i];
}

/// Pack the (rows x kc) A slice starting at (i0, p0) into mr-row
/// sub-panels, k-major, row index fastest, zero-padding past `rows`.
void pack_a(const float* a, std::size_t lda, Op op_a, std::size_t i0,
            std::size_t rows, std::size_t p0, std::size_t kc,
            std::size_t mr, float* apack) {
  const std::size_t panels = ceil_div(rows, mr);
  for (std::size_t ip = 0; ip < panels; ++ip) {
    const std::size_t live = std::min(mr, rows - ip * mr);
    float* dst = apack + ip * kc * mr;
    for (std::size_t k = 0; k < kc; ++k) {
      for (std::size_t r = 0; r < live; ++r)
        dst[k * mr + r] = op_at(a, lda, op_a, i0 + ip * mr + r, p0 + k);
      for (std::size_t r = live; r < mr; ++r) dst[k * mr + r] = 0.0f;
    }
  }
}

/// Pack the (kc x cols) B slice starting at (p0, j0) into nr-column
/// sub-panels, k-major, column index fastest, zero-padding past `cols`.
void pack_b(const float* b, std::size_t ldb, Op op_b, std::size_t j0,
            std::size_t cols, std::size_t p0, std::size_t kc,
            std::size_t nr, float* bpack) {
  const std::size_t panels = ceil_div(cols, nr);
  for (std::size_t jp = 0; jp < panels; ++jp) {
    const std::size_t live = std::min(nr, cols - jp * nr);
    float* dst = bpack + jp * kc * nr;
    if (op_b == Op::kNone) {
      const float* src = b + p0 * ldb + j0 + jp * nr;
      for (std::size_t k = 0; k < kc; ++k) {
        std::memcpy(dst + k * nr, src + k * ldb, live * sizeof(float));
        for (std::size_t j = live; j < nr; ++j) dst[k * nr + j] = 0.0f;
      }
    } else {
      for (std::size_t j = 0; j < live; ++j) {
        const float* src = b + (j0 + jp * nr + j) * ldb + p0;
        for (std::size_t k = 0; k < kc; ++k) dst[k * nr + j] = src[k];
      }
      for (std::size_t k = 0; k < kc; ++k)
        for (std::size_t j = live; j < nr; ++j) dst[k * nr + j] = 0.0f;
    }
  }
}

/// One C tile [i0, i0+rows) x [j0, j0+cols): multiply every K panel in
/// order. Non-transposed operands are fed to the micro-kernel directly
/// from the caller's row-major storage (a_rstride = lda / b_kstride =
/// ldb); only transposed operands and the zero-padded column-edge B panel
/// go through a packing pass. Packing buffers are per-thread so pool
/// workers never share scratch, and they persist across calls (the
/// "reusable workspace" the layers rely on instead of per-call
/// allocation).
void compute_tile(const KernelDesc& kd, const float* a, std::size_t lda,
                  Op op_a, const float* b, std::size_t ldb, Op op_b,
                  float* c, std::size_t ldc, std::size_t i0,
                  std::size_t rows, std::size_t j0, std::size_t cols,
                  std::size_t k, bool accumulate) {
  thread_local std::vector<float> apack;
  thread_local std::vector<float> bpack;
  thread_local std::vector<float> bedge;
  const bool direct_a = op_a == Op::kNone;
  const bool direct_b = op_b == Op::kNone;
  const std::size_t m_panels = ceil_div(rows, kd.mr);
  const std::size_t n_panels = ceil_div(cols, kd.nr);
  if (!direct_a) apack.resize(m_panels * detail::kKC * kd.mr);
  if (!direct_b) bpack.resize(n_panels * detail::kKC * kd.nr);

  for (std::size_t p0 = 0; p0 < k; p0 += detail::kKC) {
    const std::size_t kc = std::min(detail::kKC, k - p0);
    if (!direct_a)
      pack_a(a, lda, op_a, i0, rows, p0, kc, kd.mr, apack.data());
    if (!direct_b)
      pack_b(b, ldb, op_b, j0, cols, p0, kc, kd.nr, bpack.data());
    for (std::size_t jp = 0; jp < n_panels; ++jp) {
      const std::size_t live_cols = std::min(kd.nr, cols - jp * kd.nr);
      const float* bsub;
      std::size_t b_kstride;
      if (!direct_b) {
        bsub = bpack.data() + jp * kc * kd.nr;
        b_kstride = kd.nr;
      } else if (live_cols == kd.nr) {
        bsub = b + p0 * ldb + j0 + jp * kd.nr;
        b_kstride = ldb;
      } else {
        // Column edge of a direct B: the kernel computes full nr-wide
        // vectors, so stage this one panel zero-padded.
        bedge.resize(kc * kd.nr);
        pack_b(b, ldb, op_b, j0 + jp * kd.nr, live_cols, p0, kc, kd.nr,
               bedge.data());
        bsub = bedge.data();
        b_kstride = kd.nr;
      }
      for (std::size_t ip = 0; ip < m_panels; ++ip) {
        const std::size_t live_rows = std::min(kd.mr, rows - ip * kd.mr);
        const float* asub = direct_a
                                ? a + (i0 + ip * kd.mr) * lda + p0
                                : apack.data() + ip * kc * kd.mr;
        // Only the first K panel may overwrite; later panels always add.
        kd.kernel(asub, direct_a ? lda : 1, direct_a ? 1 : kd.mr, bsub,
                  b_kstride, kc,
                  c + (i0 + ip * kd.mr) * ldc + j0 + jp * kd.nr, ldc,
                  live_rows, live_cols, accumulate || p0 > 0);
      }
    }
  }
}

}  // namespace

Variant active_variant() noexcept {
  if (util::have_avx512()) return Variant::kAvx512;
  if (util::have_avx2()) return Variant::kAvx2;
  return Variant::kScalar;
}

void multiply_variant(Variant variant, const float* a, std::size_t lda,
                      Op op_a, const float* b, std::size_t ldb, Op op_b,
                      float* c, std::size_t ldc, std::size_t m,
                      std::size_t n, std::size_t k,
                      util::ThreadPool* pool, bool accumulate) {
  if (m == 0 || n == 0 || k == 0) {
    if (!accumulate && k == 0 && m != 0 && n != 0)
      for (std::size_t i = 0; i < m; ++i)
        std::memset(c + i * ldc, 0, n * sizeof(float));
    return;
  }
  // Kernel telemetry: FLOP count plus a per-call span, so achieved
  // GFLOP/s over any profiled window is nn.gemm.flops / nn.gemm's summed
  // duration (compare against the perf_nn kernel peak). One span per
  // multiply — the call itself is micro- to millisecond scale.
  CEA_SPAN("nn.gemm");
  CEA_TELEM(static const obs::MetricId obs_flops =
                obs::counter("nn.gemm.flops");
            obs::add(obs_flops, 2.0 * static_cast<double>(m) *
                                    static_cast<double>(n) *
                                    static_cast<double>(k)););
  const KernelDesc kd = variant_desc(variant);

  // The tile grid is pure scheduling: K is never split and every tile has
  // one writer, so shrinking tiles to feed more threads cannot change a
  // single accumulation chain (see gemm_kernels.h).
  std::size_t mc = detail::kMC, nc = detail::kNC;
  if (pool != nullptr) {
    const std::size_t want = 3 * (pool->size() + 1);
    const auto tiles = [&] { return ceil_div(m, mc) * ceil_div(n, nc); };
    while (tiles() < want && nc > 4 * kd.nr) nc /= 2;
    while (tiles() < want && mc > 4 * kd.mr) mc /= 2;
  }

  const std::size_t tiles_n = ceil_div(n, nc);
  const std::size_t total = ceil_div(m, mc) * tiles_n;
  const auto task = [&](std::size_t t) {
    const std::size_t i0 = (t / tiles_n) * mc;
    const std::size_t j0 = (t % tiles_n) * nc;
    compute_tile(kd, a, lda, op_a, b, ldb, op_b, c, ldc, i0,
                 std::min(mc, m - i0), j0, std::min(nc, n - j0), k,
                 accumulate);
  };
  if (pool != nullptr && total > 1) {
    pool->parallel_for(total, task);
  } else {
    for (std::size_t t = 0; t < total; ++t) task(t);
  }
}

void multiply(const float* a, std::size_t lda, Op op_a, const float* b,
              std::size_t ldb, Op op_b, float* c, std::size_t ldc,
              std::size_t m, std::size_t n, std::size_t k,
              util::ThreadPool* pool, bool accumulate) {
  multiply_variant(active_variant(), a, lda, op_a, b, ldb, op_b, c, ldc, m,
                   n, k, pool, accumulate);
}

// -------------------------------------------------------------------- int8

namespace detail {

void micro_kernel_i8_scalar(const std::uint8_t* a, std::size_t a_stride,
                            const std::int8_t* b, std::size_t b_stride,
                            std::size_t groups, const float* a_scales,
                            const std::int32_t* a_zps, const float* b_scales,
                            const std::int32_t* b_col_sums, const float* bias,
                            float* c, std::size_t ldc, std::size_t rows,
                            std::size_t cols) {
  // The int8 reference chain: an exact i32 inner product over zero-padded
  // K (so iteration order is irrelevant — unlike fp32 this kernel's
  // semantics really are "the mathematical sum"), the exact zero-point
  // correction, then the one pinned float sequence. SIMD kernels must
  // land on identical bits, which the integer part gives for free and the
  // epilogue gives by evaluating the same three float ops per element.
  for (std::size_t r = 0; r < rows; ++r) {
    const std::uint8_t* ar = a + r * a_stride;
    float* cr = c + r * ldc;
    for (std::size_t j = 0; j < cols; ++j) {
      std::int32_t acc = 0;
      for (std::size_t g = 0; g < groups; ++g) {
        const std::int8_t* bg = b + g * b_stride + j * 4;
        for (std::size_t t = 0; t < 4; ++t)
          acc += static_cast<std::int32_t>(ar[g * 4 + t]) *
                 static_cast<std::int32_t>(bg[t]);
      }
      const std::int32_t corr = acc - a_zps[r] * b_col_sums[j];
      cr[j] = static_cast<float>(corr) * (a_scales[r] * b_scales[j]) + bias[j];
    }
  }
}

}  // namespace detail

namespace {

using detail::KernelDescI8;

std::atomic<Variant> g_i8_cap{Variant::kAvx512};

KernelDescI8 variant_desc_i8(Variant variant) noexcept {
  switch (variant) {
#if defined(__x86_64__)
    case Variant::kAvx512:
      return {detail::kAvx512I8Mr, detail::kAvx512I8Nr,
              &detail::micro_kernel_i8_avx512vnni};
    case Variant::kAvx2:
      return {detail::kAvx2I8Mr, detail::kAvx2I8Nr,
              &detail::micro_kernel_i8_avx2};
#endif
    default:
      return {detail::kScalarI8Mr, detail::kScalarI8Nr,
              &detail::micro_kernel_i8_scalar};
  }
}

/// Per-row activation quantization parameters (see quantize_a_row).
struct RowQuant {
  float scale = 0.0f;
  std::int32_t zp = 0;
};

/// Quantize row i of op_a(A) onto its own asymmetric 7-bit [0, 127] grid:
/// range [min(0, min a), max(0, max a)] over finite entries (always
/// containing 0 so a zero activation is exactly representable — ReLU
/// outputs dominate this path), sa = range / 127, zp = round(-rmin / sa)
/// clamped into the grid, a_q = clamp(round_half_away(a / sa) + zp, 0,
/// 127). Non-finite activations map to zp (they dequantize to 0,
/// mirroring the weight-side skip). A flat row (range == 0: every finite
/// entry is exactly 0) gets scale 0 / zp 0 / all-zero bytes, the guard
/// tests/nn/test_gemm_i8.cpp pins. Bytes k..k_pad are B-padding partners
/// and stay 0. Per-row driver code: the same bytes come out whichever
/// kernel variant later runs and however many workers quantize.
///
/// This runs on EVERY multiply (dynamic activation quantization), so the
/// hot loop must not call libm or divide: a / sa is evaluated as
/// a * (1 / sa) and round-half-away-from-zero as truncate(x +- 0.5). Both
/// may differ from the exact round(a / sa) by one grid step for values
/// within a float ulp of a rounding boundary — a sub-quantization-noise
/// perturbation of the grid, and invisible to the determinism contract
/// because quantization is driver code shared by every kernel variant.
///
/// Contiguous rows (op_a == kNone, the Dense forward path) additionally
/// take a baseline-SSE2 vector body; strided transpose walks (Conv2D's
/// col^T product) keep the scalar loop. Vector and scalar bodies emit the
/// same bytes for the same row: masking non-finite lanes to 0.0f equals
/// the scalar skip because the range always contains 0; min/max are exact
/// in any association order; copysign(0.5, scaled) differs from the
/// scalar select only at scaled == -0.0, where both truncate to zp.
RowQuant quantize_a_row(const float* a, std::size_t lda, Op op_a,
                        std::size_t i, std::size_t k, std::uint8_t* dst,
                        std::size_t k_pad) {
  const float* row = op_a == Op::kNone ? a + i * lda : nullptr;
  float rmin = 0.0f, rmax = 0.0f;
  std::size_t p0 = 0;
#if CEA_GEMM_SSE2
  if (row != nullptr && k >= 4) {
    const __m128 abs_mask = _mm_castsi128_ps(_mm_set1_epi32(0x7fffffff));
    const __m128 vinf = _mm_set1_ps(std::numeric_limits<float>::infinity());
    __m128 vmin = _mm_setzero_ps();
    __m128 vmax = _mm_setzero_ps();
    for (; p0 + 4 <= k; p0 += 4) {
      const __m128 v = _mm_loadu_ps(row + p0);
      const __m128 finite = _mm_cmplt_ps(_mm_and_ps(v, abs_mask), vinf);
      const __m128 vf = _mm_and_ps(v, finite);  // non-finite lanes -> 0.0f
      vmin = _mm_min_ps(vmin, vf);
      vmax = _mm_max_ps(vmax, vf);
    }
    __m128 t = _mm_min_ps(vmin,
                          _mm_shuffle_ps(vmin, vmin, _MM_SHUFFLE(1, 0, 3, 2)));
    t = _mm_min_ps(t, _mm_shuffle_ps(t, t, _MM_SHUFFLE(2, 3, 0, 1)));
    rmin = _mm_cvtss_f32(t);
    t = _mm_max_ps(vmax, _mm_shuffle_ps(vmax, vmax, _MM_SHUFFLE(1, 0, 3, 2)));
    t = _mm_max_ps(t, _mm_shuffle_ps(t, t, _MM_SHUFFLE(2, 3, 0, 1)));
    rmax = _mm_cvtss_f32(t);
  }
#endif
  for (std::size_t p = p0; p < k; ++p) {
    const float v = op_at(a, lda, op_a, i, p);
    if (!std::isfinite(v)) continue;
    rmin = std::min(rmin, v);
    rmax = std::max(rmax, v);
  }
  const float range = rmax - rmin;
  const float sa = range / 127.0f;
  // Requiring a NORMAL sa covers the flat row (sa == 0), keeps a denormal
  // sa from blowing up the division it guards, and bounds the reciprocal:
  // 1 / min_normal < 2^127 stays finite. Such a row carries no
  // representable signal — emit the all-zero row the scale-0 guard tests
  // pin.
  if (sa < std::numeric_limits<float>::min()) {
    std::memset(dst, 0, k_pad);
    return {0.0f, 0};
  }
  const float inv_sa = 1.0f / sa;
  const std::int32_t zp = std::clamp(
      static_cast<std::int32_t>(std::round(-rmin * inv_sa)), 0, 127);
  std::size_t p = 0;
#if CEA_GEMM_SSE2
  if (row != nullptr) {
    const __m128 abs_mask = _mm_castsi128_ps(_mm_set1_epi32(0x7fffffff));
    const __m128 sign_mask = _mm_castsi128_ps(_mm_set1_epi32(0x80000000));
    const __m128 vinf = _mm_set1_ps(std::numeric_limits<float>::infinity());
    const __m128 vinv = _mm_set1_ps(inv_sa);
    const __m128 vhalf = _mm_set1_ps(0.5f);
    const __m128i vzp = _mm_set1_epi32(zp);
    const __m128i v127 = _mm_set1_epi16(127);
    const auto quant4 = [&](const float* src) {
      const __m128 v = _mm_loadu_ps(src);
      const __m128 finite = _mm_cmplt_ps(_mm_and_ps(v, abs_mask), vinf);
      const __m128 scaled = _mm_mul_ps(v, vinv);
      const __m128 shifted = _mm_add_ps(
          scaled, _mm_or_ps(vhalf, _mm_and_ps(scaled, sign_mask)));
      const __m128i q = _mm_add_epi32(_mm_cvttps_epi32(shifted), vzp);
      const __m128i fmask = _mm_castps_si128(finite);
      return _mm_or_si128(_mm_and_si128(fmask, q),
                          _mm_andnot_si128(fmask, vzp));
    };
    for (; p + 8 <= k; p += 8) {
      // Two 4-lane i32 halves -> 8 x i16 -> clamp [0, 127] -> 8 x u8.
      __m128i q16 = _mm_packs_epi32(quant4(row + p), quant4(row + p + 4));
      q16 = _mm_max_epi16(_mm_min_epi16(q16, v127), _mm_setzero_si128());
      _mm_storel_epi64(reinterpret_cast<__m128i*>(dst + p),
                       _mm_packus_epi16(q16, q16));
    }
  }
#endif
  for (; p < k; ++p) {
    const float v = op_at(a, lda, op_a, i, p);
    std::int32_t q = zp;
    if (std::isfinite(v)) {
      // Every finite v lies in [rmin, rmax], so scaled is within
      // +-127 (1 + eps) and the truncating cast cannot overflow.
      const float scaled = v * inv_sa;
      const float shifted = scaled + (scaled >= 0.0f ? 0.5f : -0.5f);
      q = std::clamp(static_cast<std::int32_t>(shifted) + zp, 0, 127);
    }
    dst[p] = static_cast<std::uint8_t>(q);
  }
  std::memset(dst + k, 0, k_pad - k);
  return {sa, zp};
}

/// One int8 C tile [i0, i0+rows) x [j0, j0+cols): each register block is
/// a single kernel call over the whole (padded) K extent — no K panels,
/// no accumulate flag, the epilogue stores directly. Tiling is therefore
/// pure scheduling in an even stronger sense than fp32: every C element
/// is computed by exactly one kernel invocation from the same operand
/// bytes regardless of the grid.
void compute_tile_i8(const KernelDescI8& kd, const std::uint8_t* aq,
                     std::size_t a_stride, const Int8PackedB& b,
                     const float* ascale, const std::int32_t* azp,
                     const float* bias, float* c, std::size_t ldc,
                     std::size_t i0, std::size_t rows, std::size_t j0,
                     std::size_t cols) {
  const std::size_t b_stride = b.n_pad * 4;
  for (std::size_t jp = 0; jp < cols; jp += kd.nr) {
    const std::size_t live_cols = std::min(kd.nr, cols - jp);
    const std::size_t jc = j0 + jp;
    const std::int8_t* bsub = b.data.data() + jc * 4;
    for (std::size_t ip = 0; ip < rows; ip += kd.mr) {
      const std::size_t live_rows = std::min(kd.mr, rows - ip);
      const std::size_t ir = i0 + ip;
      kd.kernel(aq + ir * a_stride, a_stride, bsub, b_stride, b.groups,
                ascale + ir, azp + ir, b.scales.data() + jc,
                b.col_sums.data() + jc, bias + jc, c + ir * ldc + jc, ldc,
                live_rows, live_cols);
    }
  }
}

/// int8 C tile extents. Free parameters like kMC/kNC (see above — even
/// freer, since there is no K panelling at all); kNCI8 is a multiple of
/// every variant's nr so only the true column edge of C takes the scalar
/// delegate path.
constexpr std::size_t kMCI8 = 64;
constexpr std::size_t kNCI8 = 256;

}  // namespace

Int8PackedB pack_b_i8(const float* b, std::size_t ldb, Op op_b,
                      std::size_t k, std::size_t n) {
  Int8PackedB panel;
  panel.k = k;
  panel.n = n;
  panel.n_pad = ceil_div(n, 32) * 32;
  panel.groups = ceil_div(k, 4);
  panel.data.assign(panel.groups * panel.n_pad * 4, 0);
  panel.scales.assign(panel.n_pad, 0.0f);
  panel.col_sums.assign(panel.n_pad, 0);
  for (std::size_t j = 0; j < n; ++j) {
    // Channel grid shared with quantize_model: symmetric, scale from the
    // finite max only, non-finite weights quantized to 0 and counted.
    float max_abs = 0.0f;
    for (std::size_t p = 0; p < k; ++p) {
      const float w = op_at(b, ldb, op_b, p, j);
      if (std::isfinite(w)) max_abs = std::max(max_abs, std::abs(w));
    }
    const float sw = symmetric_scale(max_abs, 8);
    panel.scales[j] = sw;
    std::int32_t col_sum = 0;
    for (std::size_t p = 0; p < k; ++p) {
      const float w = op_at(b, ldb, op_b, p, j);
      std::int32_t q = 0;
      if (!std::isfinite(w)) {
        ++panel.skipped_non_finite;
      } else if (sw != 0.0f) {
        q = std::clamp(static_cast<std::int32_t>(std::round(w / sw)), -127,
                       127);
      }
      col_sum += q;
      panel.data[((p / 4) * panel.n_pad + j) * 4 + (p % 4)] =
          static_cast<std::int8_t>(q);
    }
    panel.col_sums[j] = col_sum;
  }
  return panel;
}

Variant active_variant_i8() noexcept {
  const Variant cap = g_i8_cap.load(std::memory_order_relaxed);
  if (util::have_avx512_vnni() && cap >= Variant::kAvx512)
    return Variant::kAvx512;
  if (util::have_avx2() && cap >= Variant::kAvx2) return Variant::kAvx2;
  return Variant::kScalar;
}

void set_i8_variant_cap(Variant cap) noexcept {
  g_i8_cap.store(cap, std::memory_order_relaxed);
}

void multiply_i8_variant(Variant variant, const float* a, std::size_t lda,
                         Op op_a, const Int8PackedB& b, const float* bias,
                         float* c, std::size_t ldc, std::size_t m,
                         std::size_t n, std::size_t k,
                         util::ThreadPool* pool) {
  assert(k == b.k && n == b.n && "multiply_i8: panel shape mismatch");
  assert(k <= 65535 && "multiply_i8: k exceeds i32 accumulator headroom");
  if (m == 0 || n == 0) return;
  CEA_SPAN("nn.gemm_i8");
  CEA_TELEM(static const obs::MetricId obs_ops =
                obs::counter("nn.gemm_i8.ops");
            obs::add(obs_ops, 2.0 * static_cast<double>(m) *
                                  static_cast<double>(n) *
                                  static_cast<double>(k)););
  const KernelDescI8 kd = variant_desc_i8(variant);

  // Quantize-on-pack of A, once, up front. The workspaces persist across
  // calls per thread (same rationale as the fp32 packing buffers) and the
  // pool only ever splits whole rows, so the bytes are identical serial
  // or pooled.
  const std::size_t k_pad = b.groups * 4;
  thread_local std::vector<std::uint8_t> aq;
  thread_local std::vector<float> ascale;
  thread_local std::vector<std::int32_t> azp;
  thread_local std::vector<float> bias_pad;
  aq.resize(m * k_pad);
  ascale.resize(m);
  azp.resize(m);
  // Raw pointers for the task lambdas: the workspaces are thread_local,
  // so naming them inside a lambda a pool worker runs would resolve to
  // the *worker's* instances. The pointers pin the caller's.
  std::uint8_t* const aq_data = aq.data();
  float* const ascale_data = ascale.data();
  std::int32_t* const azp_data = azp.data();
  const auto quant_row = [=](std::size_t i) {
    const RowQuant rq =
        quantize_a_row(a, lda, op_a, i, k, aq_data + i * k_pad, k_pad);
    ascale_data[i] = rq.scale;
    azp_data[i] = rq.zp;
  };
  if (pool != nullptr && m > 1) {
    pool->parallel_for(m, quant_row);
  } else {
    for (std::size_t i = 0; i < m; ++i) quant_row(i);
  }

  // Kernels always add a bias (identical float chain with and without
  // one), so stage a zero-padded copy — padded so full-width vector loads
  // at the last live panel stay in bounds.
  bias_pad.assign(b.n_pad, 0.0f);
  if (bias != nullptr) std::memcpy(bias_pad.data(), bias, n * sizeof(float));
  const float* const bias_data = bias_pad.data();

  std::size_t mc = kMCI8, nc = kNCI8;
  if (pool != nullptr) {
    const std::size_t want = 3 * (pool->size() + 1);
    const auto tiles = [&] { return ceil_div(m, mc) * ceil_div(n, nc); };
    while (tiles() < want && nc > 4 * kd.nr) nc /= 2;
    while (tiles() < want && mc > 4 * kd.mr) mc /= 2;
  }

  const std::size_t tiles_n = ceil_div(n, nc);
  const std::size_t total = ceil_div(m, mc) * tiles_n;
  const auto task = [&](std::size_t t) {
    const std::size_t i0 = (t / tiles_n) * mc;
    const std::size_t j0 = (t % tiles_n) * nc;
    compute_tile_i8(kd, aq_data, k_pad, b, ascale_data, azp_data, bias_data,
                    c, ldc, i0, std::min(mc, m - i0), j0,
                    std::min(nc, n - j0));
  };
  if (pool != nullptr && total > 1) {
    pool->parallel_for(total, task);
  } else {
    for (std::size_t t = 0; t < total; ++t) task(t);
  }
}

void multiply_i8(const float* a, std::size_t lda, Op op_a,
                 const Int8PackedB& b, const float* bias, float* c,
                 std::size_t ldc, std::size_t m, std::size_t n,
                 std::size_t k, util::ThreadPool* pool) {
  multiply_i8_variant(active_variant_i8(), a, lda, op_a, b, bias, c, ldc, m,
                      n, k, pool);
}

}  // namespace gemm
}  // namespace cea::nn
