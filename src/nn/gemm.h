#pragma once

// Tiled, panel-packed single-precision GEMM with runtime ISA dispatch —
// the compute kernel behind Dense, Conv2D and DepthwiseConv2D (forward
// and backward). Mirrors the data/loss_sampling dispatch idiom: a scalar
// reference kernel defines the semantics, the AVX2/AVX-512 kernels live
// in their own -m-flagged translation units (gemm_avx2.cpp /
// gemm_avx512.cpp) behind util::have_avx2/have_avx512 checks, and every
// variant must produce bit-identical results (tests/nn/test_gemm.cpp).
//
// Determinism contract (see DESIGN.md "GEMM kernel layer"):
//  * Each C element is accumulated strictly in increasing-k order within
//    a K panel of fixed size kKC, one mul and one add per update (no FMA
//    contraction), and panels are added to C in increasing panel order.
//  * The K dimension is never split across threads and every C tile has
//    exactly one writer, so serial and thread-pool runs are bit-identical
//    for any thread count — as are the scalar/AVX2/AVX-512 kernels, whose
//    vector lanes evaluate exactly the per-element scalar chains.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/thread_pool.h"

namespace cea::nn {

/// Which layer compute path Dense/Conv2D/DepthwiseConv2D execute.
/// kReference keeps the original (seed) scalar loops alive as an oracle
/// and as the bench baseline; kGemm is the packed-kernel path and the
/// default; kGemmInt8 runs Dense/Conv2D *forward* through the quantized
/// int8 kernels (gemm::multiply_i8) — inference-only: backward and
/// DepthwiseConv2D (k = 9 inner products, nothing to amortize) stay on
/// the fp32 kGemm path.
enum class ComputeBackend { kReference, kGemm, kGemmInt8 };

void set_compute_backend(ComputeBackend backend) noexcept;
ComputeBackend compute_backend() noexcept;

/// RAII swap of the global compute backend — the hook QuantizedModel and
/// the int8 benches/tests use to run one forward pass on a different path
/// without disturbing the caller's configuration.
class ScopedComputeBackend {
 public:
  explicit ScopedComputeBackend(ComputeBackend backend) noexcept
      : previous_(compute_backend()) {
    set_compute_backend(backend);
  }
  ~ScopedComputeBackend() { set_compute_backend(previous_); }
  ScopedComputeBackend(const ScopedComputeBackend&) = delete;
  ScopedComputeBackend& operator=(const ScopedComputeBackend&) = delete;

 private:
  ComputeBackend previous_;
};

/// Thread pool used by the nn layers and gemm::multiply. nullptr (the
/// default) runs everything inline on the caller; results are
/// bit-identical either way.
void set_compute_pool(util::ThreadPool* pool) noexcept;
util::ThreadPool* compute_pool() noexcept;

namespace gemm {

/// Operand orientation: kNone consumes the matrix as stored (row-major),
/// kTranspose consumes its transpose. Transposition is absorbed by the
/// packing stage; the micro-kernels only ever see packed panels.
enum class Op { kNone, kTranspose };

/// Kernel variant, in dispatch-preference order.
enum class Variant { kScalar, kAvx2, kAvx512 };

/// Variant multiply() dispatches to on this machine (CEA_FORCE_ISA caps
/// it; see util/cpu.h).
Variant active_variant() noexcept;

/// C (m x n) += op_a(A) (m x k) · op_b(B) (k x n), or with
/// accumulate == false, C = op_a(A) · op_b(B) (the BLAS beta == 0 case;
/// C may be uninitialized and its prior contents are ignored).
///
/// All matrices are row-major with explicit leading dimensions (of the
/// stored layout, not the op'd one). With accumulate == true (the
/// default) C must be initialized by the caller — zeroed, or pre-filled
/// with a bias. The overwriting form stores exactly the accumulator a
/// zero-initialized C would receive, so it is the cheap equivalent of
/// zero-fill + accumulate (modulo the sign of zero). When `pool` is
/// non-null the C tile grid is fanned out over it (K is never split, so
/// the result is bit-identical to the serial run).
void multiply(const float* a, std::size_t lda, Op op_a, const float* b,
              std::size_t ldb, Op op_b, float* c, std::size_t ldc,
              std::size_t m, std::size_t n, std::size_t k,
              util::ThreadPool* pool = nullptr, bool accumulate = true);

/// multiply() pinned to one kernel variant — the hook the equivalence
/// tests and perf_nn use. Callers must check util::have_avx2/have_avx512
/// before requesting a SIMD variant.
void multiply_variant(Variant variant, const float* a, std::size_t lda,
                      Op op_a, const float* b, std::size_t ldb, Op op_b,
                      float* c, std::size_t ldc, std::size_t m,
                      std::size_t n, std::size_t k,
                      util::ThreadPool* pool = nullptr,
                      bool accumulate = true);

// ------------------------------------------------------------------ int8
//
// Quantized inference path: C (m x n, float32) =
//   dequant( quant7(A) (m x k, u8) · panel (k x n, s8) ) + bias,
// with activations quantized on pack (per-row dynamic asymmetric scale,
// 7-bit so the AVX2 maddubs pair sums cannot saturate i16), weights
// pre-quantized per output channel (symmetric s8), and the integer
// accumulator dequantized + bias-added in one fused epilogue pass.
//
// Determinism contract — STRONGER than fp32 multiply(): the inner product
// is exact integer arithmetic (no intermediate may saturate, by
// construction: |pair sum| <= 2*127*127 < 2^15, |acc| <= 127*127*k <
// 2^31 for k <= 65535) and the float epilogue is one specified chain
// (corr = acc - zp_i*colsum_j; out = float(corr) * (sa_i*sw_j) + bias_j,
// mul-then-add, no FMA), so scalar, AVX2 and AVX-512 VNNI kernels and
// serial vs pooled runs are all BIT-identical — pinned in
// tests/nn/test_gemm_i8.cpp. The tile fan-out reuses the fp32 grid: K is
// never split, one writer per C tile.

/// Pre-quantized weight operand of multiply_i8: op_b(B) (k x n), n output
/// channels each quantized to s8 on its own symmetric grid (scale =
/// nn::symmetric_scale(max finite |channel|, 8); non-finite weights are
/// skipped — quantized to 0 — and counted, mirroring quantize_model).
/// Storage is the K4-interleaved layout every kernel variant shares:
/// groups of 4 consecutive k indices, channel index fastest
/// (data[(g * n_pad + j) * 4 + t] = w_q(4g + t, j)), k zero-padded to a
/// multiple of 4 and n to a multiple of 32 so full-width SIMD loads stay
/// in bounds. scales/col_sums are per channel, zero-padded to n_pad.
struct Int8PackedB {
  std::size_t k = 0;
  std::size_t n = 0;
  std::size_t n_pad = 0;    ///< n rounded up to 32
  std::size_t groups = 0;   ///< ceil(k / 4)
  std::vector<std::int8_t> data;       ///< groups x n_pad x 4
  std::vector<float> scales;           ///< n_pad, per-channel sw_j
  std::vector<std::int32_t> col_sums;  ///< n_pad, sum_k w_q(k, j)
  std::size_t skipped_non_finite = 0;

  /// Size of the deployable artifact in MB: one byte per weight plus one
  /// float scale per channel (the honest int8 transfer size F_{i,n}).
  double size_mb() const noexcept {
    return (static_cast<double>(k) * static_cast<double>(n) +
            4.0 * static_cast<double>(n)) /
           (1024.0 * 1024.0);
  }
};

/// Quantize + pack op_b(B) (k x n) into an int8 weight panel. B is
/// row-major with leading dimension ldb of the stored layout (so a Dense
/// weight matrix W (out x in) packs as pack_b_i8(W, in, kTranspose, in,
/// out)). Packing is scalar driver code shared by every kernel variant —
/// the panel bytes are identical no matter which kernel later consumes
/// them.
Int8PackedB pack_b_i8(const float* b, std::size_t ldb, Op op_b,
                      std::size_t k, std::size_t n);

/// Kernel variant multiply_i8() dispatches to on this machine: AVX-512
/// requires VNNI (util::have_avx512_vnni); plain AVX-512 machines fall
/// back to the AVX2 maddubs kernel. CEA_FORCE_ISA caps it like fp32.
Variant active_variant_i8() noexcept;

/// Test hook: additionally cap the variant multiply_i8 dispatches to —
/// like CEA_FORCE_ISA, but switchable at runtime so one process can pin
/// the whole forward path to scalar, then AVX2, then VNNI and compare
/// bitwise. kAvx512 (the default) caps nothing.
void set_i8_variant_cap(Variant cap) noexcept;

/// C (m x n, row-major, ldc) = dequant(quant7(op_a(A)) · b) + bias.
/// A is float (m x k through op_a); its rows are quantized on pack with
/// per-row dynamic scales (pure per-row scalar code, so serial and
/// pooled packs are identical). bias has n entries, or nullptr for none.
/// C is always overwritten (inference epilogue — there is no accumulate
/// mode). Requires k <= 65535 (i32 accumulator headroom) and k == b.k,
/// n == b.n.
void multiply_i8(const float* a, std::size_t lda, Op op_a,
                 const Int8PackedB& b, const float* bias, float* c,
                 std::size_t ldc, std::size_t m, std::size_t n,
                 std::size_t k, util::ThreadPool* pool = nullptr);

/// multiply_i8() pinned to one kernel variant — the equivalence-test and
/// perf_nn hook. Callers must check util::have_avx2 /
/// util::have_avx512_vnni before requesting a SIMD variant.
void multiply_i8_variant(Variant variant, const float* a, std::size_t lda,
                         Op op_a, const Int8PackedB& b, const float* bias,
                         float* c, std::size_t ldc, std::size_t m,
                         std::size_t n, std::size_t k,
                         util::ThreadPool* pool = nullptr);

}  // namespace gemm
}  // namespace cea::nn
