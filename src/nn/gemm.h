#pragma once

// Tiled, panel-packed single-precision GEMM with runtime ISA dispatch —
// the compute kernel behind Dense, Conv2D and DepthwiseConv2D (forward
// and backward). Mirrors the data/loss_sampling dispatch idiom: a scalar
// reference kernel defines the semantics, the AVX2/AVX-512 kernels live
// in their own -m-flagged translation units (gemm_avx2.cpp /
// gemm_avx512.cpp) behind util::have_avx2/have_avx512 checks, and every
// variant must produce bit-identical results (tests/nn/test_gemm.cpp).
//
// Determinism contract (see DESIGN.md "GEMM kernel layer"):
//  * Each C element is accumulated strictly in increasing-k order within
//    a K panel of fixed size kKC, one mul and one add per update (no FMA
//    contraction), and panels are added to C in increasing panel order.
//  * The K dimension is never split across threads and every C tile has
//    exactly one writer, so serial and thread-pool runs are bit-identical
//    for any thread count — as are the scalar/AVX2/AVX-512 kernels, whose
//    vector lanes evaluate exactly the per-element scalar chains.

#include <cstddef>

#include "util/thread_pool.h"

namespace cea::nn {

/// Which layer compute path Dense/Conv2D/DepthwiseConv2D execute.
/// kReference keeps the original (seed) scalar loops alive as an oracle
/// and as the bench baseline; kGemm is the packed-kernel path and the
/// default.
enum class ComputeBackend { kReference, kGemm };

void set_compute_backend(ComputeBackend backend) noexcept;
ComputeBackend compute_backend() noexcept;

/// Thread pool used by the nn layers and gemm::multiply. nullptr (the
/// default) runs everything inline on the caller; results are
/// bit-identical either way.
void set_compute_pool(util::ThreadPool* pool) noexcept;
util::ThreadPool* compute_pool() noexcept;

namespace gemm {

/// Operand orientation: kNone consumes the matrix as stored (row-major),
/// kTranspose consumes its transpose. Transposition is absorbed by the
/// packing stage; the micro-kernels only ever see packed panels.
enum class Op { kNone, kTranspose };

/// Kernel variant, in dispatch-preference order.
enum class Variant { kScalar, kAvx2, kAvx512 };

/// Variant multiply() dispatches to on this machine (CEA_FORCE_ISA caps
/// it; see util/cpu.h).
Variant active_variant() noexcept;

/// C (m x n) += op_a(A) (m x k) · op_b(B) (k x n), or with
/// accumulate == false, C = op_a(A) · op_b(B) (the BLAS beta == 0 case;
/// C may be uninitialized and its prior contents are ignored).
///
/// All matrices are row-major with explicit leading dimensions (of the
/// stored layout, not the op'd one). With accumulate == true (the
/// default) C must be initialized by the caller — zeroed, or pre-filled
/// with a bias. The overwriting form stores exactly the accumulator a
/// zero-initialized C would receive, so it is the cheap equivalent of
/// zero-fill + accumulate (modulo the sign of zero). When `pool` is
/// non-null the C tile grid is fanned out over it (K is never split, so
/// the result is bit-identical to the serial run).
void multiply(const float* a, std::size_t lda, Op op_a, const float* b,
              std::size_t ldb, Op op_b, float* c, std::size_t ldc,
              std::size_t m, std::size_t n, std::size_t k,
              util::ThreadPool* pool = nullptr, bool accumulate = true);

/// multiply() pinned to one kernel variant — the hook the equivalence
/// tests and perf_nn use. Callers must check util::have_avx2/have_avx512
/// before requesting a SIMD variant.
void multiply_variant(Variant variant, const float* a, std::size_t lda,
                      Op op_a, const float* b, std::size_t ldb, Op op_b,
                      float* c, std::size_t ldc, std::size_t m,
                      std::size_t n, std::size_t k,
                      util::ThreadPool* pool = nullptr,
                      bool accumulate = true);

}  // namespace gemm
}  // namespace cea::nn
