// AVX2 GEMM micro-kernel (6 rows x 16 columns = 12 ymm accumulators).
// This TU is compiled with -mavx2 -ffp-contract=off (src/nn/CMakeLists.txt)
// and must only be entered behind the util::have_avx2() runtime check.

#if defined(__x86_64__)

#include <immintrin.h>

#include "nn/gemm_simd.h"

namespace cea::nn::gemm::detail {
namespace {

struct VecAvx2 {
  using Reg = __m256;
  static constexpr std::size_t kWidth = 8;
  static constexpr std::size_t kMr = kAvx2Mr;

  static Reg zero() noexcept { return _mm256_setzero_ps(); }
  static Reg load(const float* p) noexcept { return _mm256_loadu_ps(p); }
  static void store(float* p, Reg v) noexcept { _mm256_storeu_ps(p, v); }
  static Reg broadcast(const float* p) noexcept {
    return _mm256_broadcast_ss(p);
  }
  static Reg add(Reg a, Reg b) noexcept { return _mm256_add_ps(a, b); }
  static Reg madd(Reg a, Reg b, Reg acc) noexcept {
    return _mm256_add_ps(acc, _mm256_mul_ps(a, b));
  }
};

static_assert(2 * VecAvx2::kWidth == kAvx2Nr);

}  // namespace

void micro_kernel_avx2(const float* a, std::size_t a_rstride,
                       std::size_t a_kstride, const float* b,
                       std::size_t b_kstride, std::size_t kc, float* c,
                       std::size_t ldc, std::size_t rows, std::size_t cols,
                       bool accumulate) {
  MicroTile<VecAvx2>::run(a, a_rstride, a_kstride, b, b_kstride, kc, c, ldc,
                          rows, cols, accumulate);
}

}  // namespace cea::nn::gemm::detail

#endif  // defined(__x86_64__)
