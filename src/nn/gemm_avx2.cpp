// AVX2 GEMM micro-kernels: fp32 (6 rows x 16 columns = 12 ymm float
// accumulators) and int8 (same 6x16 tile, 12 ymm i32 accumulators).
// This TU is compiled with -mavx2 -ffp-contract=off (src/nn/CMakeLists.txt)
// and must only be entered behind the util::have_avx2() runtime check.

#if defined(__x86_64__)

#include <immintrin.h>

#include <cstring>

#include "nn/gemm_simd.h"

namespace cea::nn::gemm::detail {
namespace {

struct VecAvx2 {
  using Reg = __m256;
  static constexpr std::size_t kWidth = 8;
  static constexpr std::size_t kMr = kAvx2Mr;

  static Reg zero() noexcept { return _mm256_setzero_ps(); }
  static Reg load(const float* p) noexcept { return _mm256_loadu_ps(p); }
  static void store(float* p, Reg v) noexcept { _mm256_storeu_ps(p, v); }
  static Reg broadcast(const float* p) noexcept {
    return _mm256_broadcast_ss(p);
  }
  static Reg add(Reg a, Reg b) noexcept { return _mm256_add_ps(a, b); }
  static Reg madd(Reg a, Reg b, Reg acc) noexcept {
    return _mm256_add_ps(acc, _mm256_mul_ps(a, b));
  }
};

static_assert(2 * VecAvx2::kWidth == kAvx2Nr);

}  // namespace

void micro_kernel_avx2(const float* a, std::size_t a_rstride,
                       std::size_t a_kstride, const float* b,
                       std::size_t b_kstride, std::size_t kc, float* c,
                       std::size_t ldc, std::size_t rows, std::size_t cols,
                       bool accumulate) {
  MicroTile<VecAvx2>::run(a, a_rstride, a_kstride, b, b_kstride, kc, c, ldc,
                          rows, cols, accumulate);
}

namespace {

// Int8 tile: per k-group, broadcast 4 activation bytes of each row into
// every i32 lane (set1_epi32 of the packed u32) against two 32-byte B
// vectors holding 16 columns x 4 k. maddubs multiplies u8*s8 and adds
// adjacent byte pairs into i16 — exact, because activations are 7-bit:
// |pair| <= 2*127*127 = 32258 < 2^15, the whole reason for the [0,127]
// grid — and madd-by-ones folds the i16 pairs into the i32 4-way dot.
// Both steps together are precisely one vpdpbusd (the VNNI kernel), so
// all variants share the exact integer accumulator by construction.
template <int Rows>
void i8_rows_avx2(const std::uint8_t* a, std::size_t a_stride,
                  const std::int8_t* b, std::size_t b_stride,
                  std::size_t groups, const float* a_scales,
                  const std::int32_t* a_zps, const float* b_scales,
                  const std::int32_t* b_col_sums, const float* bias, float* c,
                  std::size_t ldc) {
  const __m256i ones = _mm256_set1_epi16(1);
  __m256i acc0[Rows], acc1[Rows];
  for (int r = 0; r < Rows; ++r) {
    acc0[r] = _mm256_setzero_si256();
    acc1[r] = _mm256_setzero_si256();
  }
  for (std::size_t g = 0; g < groups; ++g) {
    const __m256i b0 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(b + g * b_stride));
    const __m256i b1 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(b + g * b_stride + 32));
    for (int r = 0; r < Rows; ++r) {
      std::int32_t aw;
      std::memcpy(&aw, a + r * a_stride + g * 4, 4);
      const __m256i av = _mm256_set1_epi32(aw);
      acc0[r] = _mm256_add_epi32(
          acc0[r], _mm256_madd_epi16(_mm256_maddubs_epi16(av, b0), ones));
      acc1[r] = _mm256_add_epi32(
          acc1[r], _mm256_madd_epi16(_mm256_maddubs_epi16(av, b1), ones));
    }
  }
  // Fused epilogue, per lane exactly the scalar chain: exact i32
  // zero-point correction, then mul, mul, add (cvtepi32_ps and the scalar
  // int->float cast both round to nearest under the default MXCSR mode).
  const __m256i cs0 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b_col_sums));
  const __m256i cs1 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b_col_sums + 8));
  const __m256 sw0 = _mm256_loadu_ps(b_scales);
  const __m256 sw1 = _mm256_loadu_ps(b_scales + 8);
  const __m256 bi0 = _mm256_loadu_ps(bias);
  const __m256 bi1 = _mm256_loadu_ps(bias + 8);
  for (int r = 0; r < Rows; ++r) {
    const __m256i zp = _mm256_set1_epi32(a_zps[r]);
    const __m256 sa = _mm256_set1_ps(a_scales[r]);
    const __m256i corr0 =
        _mm256_sub_epi32(acc0[r], _mm256_mullo_epi32(zp, cs0));
    const __m256i corr1 =
        _mm256_sub_epi32(acc1[r], _mm256_mullo_epi32(zp, cs1));
    const __m256 comb0 = _mm256_mul_ps(sa, sw0);
    const __m256 comb1 = _mm256_mul_ps(sa, sw1);
    float* cr = c + r * ldc;
    _mm256_storeu_ps(
        cr, _mm256_add_ps(
                _mm256_mul_ps(_mm256_cvtepi32_ps(corr0), comb0), bi0));
    _mm256_storeu_ps(
        cr + 8, _mm256_add_ps(
                    _mm256_mul_ps(_mm256_cvtepi32_ps(corr1), comb1), bi1));
  }
}

}  // namespace

void micro_kernel_i8_avx2(const std::uint8_t* a, std::size_t a_stride,
                          const std::int8_t* b, std::size_t b_stride,
                          std::size_t groups, const float* a_scales,
                          const std::int32_t* a_zps, const float* b_scales,
                          const std::int32_t* b_col_sums, const float* bias,
                          float* c, std::size_t ldc, std::size_t rows,
                          std::size_t cols) {
  if (cols < kAvx2I8Nr) {
    // Column edge: the integer part is exact and the float chain pinned,
    // so the scalar delegate is bit-identical (gemm_kernels.h).
    micro_kernel_i8_scalar(a, a_stride, b, b_stride, groups, a_scales, a_zps,
                           b_scales, b_col_sums, bias, c, ldc, rows, cols);
    return;
  }
  switch (rows) {
    case 1:
      i8_rows_avx2<1>(a, a_stride, b, b_stride, groups, a_scales, a_zps,
                      b_scales, b_col_sums, bias, c, ldc);
      break;
    case 2:
      i8_rows_avx2<2>(a, a_stride, b, b_stride, groups, a_scales, a_zps,
                      b_scales, b_col_sums, bias, c, ldc);
      break;
    case 3:
      i8_rows_avx2<3>(a, a_stride, b, b_stride, groups, a_scales, a_zps,
                      b_scales, b_col_sums, bias, c, ldc);
      break;
    case 4:
      i8_rows_avx2<4>(a, a_stride, b, b_stride, groups, a_scales, a_zps,
                      b_scales, b_col_sums, bias, c, ldc);
      break;
    case 5:
      i8_rows_avx2<5>(a, a_stride, b, b_stride, groups, a_scales, a_zps,
                      b_scales, b_col_sums, bias, c, ldc);
      break;
    case 6:
      i8_rows_avx2<6>(a, a_stride, b, b_stride, groups, a_scales, a_zps,
                      b_scales, b_col_sums, bias, c, ldc);
      break;
    default:
      break;
  }
}

}  // namespace cea::nn::gemm::detail

#endif  // defined(__x86_64__)
