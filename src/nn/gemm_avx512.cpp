// AVX-512 GEMM micro-kernel (8 rows x 32 columns = 16 zmm accumulators).
// This TU is compiled with -mavx512vl -mavx512dq -ffp-contract=off
// (src/nn/CMakeLists.txt) and must only be entered behind the
// util::have_avx512() runtime check.

#if defined(__x86_64__)

#include <immintrin.h>

#include "nn/gemm_simd.h"

namespace cea::nn::gemm::detail {
namespace {

struct VecAvx512 {
  using Reg = __m512;
  static constexpr std::size_t kWidth = 16;
  static constexpr std::size_t kMr = kAvx512Mr;

  static Reg zero() noexcept { return _mm512_setzero_ps(); }
  static Reg load(const float* p) noexcept { return _mm512_loadu_ps(p); }
  static void store(float* p, Reg v) noexcept { _mm512_storeu_ps(p, v); }
  static Reg broadcast(const float* p) noexcept {
    return _mm512_set1_ps(*p);
  }
  static Reg add(Reg a, Reg b) noexcept { return _mm512_add_ps(a, b); }
  static Reg madd(Reg a, Reg b, Reg acc) noexcept {
    return _mm512_add_ps(acc, _mm512_mul_ps(a, b));
  }
};

static_assert(2 * VecAvx512::kWidth == kAvx512Nr);

}  // namespace

void micro_kernel_avx512(const float* a, std::size_t a_rstride,
                         std::size_t a_kstride, const float* b,
                         std::size_t b_kstride, std::size_t kc, float* c,
                         std::size_t ldc, std::size_t rows, std::size_t cols,
                         bool accumulate) {
  MicroTile<VecAvx512>::run(a, a_rstride, a_kstride, b, b_kstride, kc, c, ldc,
                            rows, cols, accumulate);
}

}  // namespace cea::nn::gemm::detail

#endif  // defined(__x86_64__)
