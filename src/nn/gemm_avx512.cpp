// AVX-512 GEMM micro-kernels: fp32 (8 rows x 32 columns = 16 zmm float
// accumulators, requires avx512vl+dq) and int8 via VNNI vpdpbusd (same
// 8x32 tile in i32 lanes, requires avx512vnni+bw on top). This TU is
// compiled with -mavx512vl -mavx512dq -mavx512bw -mavx512vnni
// -ffp-contract=off (src/nn/CMakeLists.txt); the fp32 kernel must only
// be entered behind util::have_avx512() and the int8 kernel behind the
// stricter util::have_avx512_vnni().

#if defined(__x86_64__)

#include <immintrin.h>

#include <cstring>

#include "nn/gemm_simd.h"

namespace cea::nn::gemm::detail {
namespace {

struct VecAvx512 {
  using Reg = __m512;
  static constexpr std::size_t kWidth = 16;
  static constexpr std::size_t kMr = kAvx512Mr;

  static Reg zero() noexcept { return _mm512_setzero_ps(); }
  static Reg load(const float* p) noexcept { return _mm512_loadu_ps(p); }
  static void store(float* p, Reg v) noexcept { _mm512_storeu_ps(p, v); }
  static Reg broadcast(const float* p) noexcept {
    return _mm512_set1_ps(*p);
  }
  static Reg add(Reg a, Reg b) noexcept { return _mm512_add_ps(a, b); }
  static Reg madd(Reg a, Reg b, Reg acc) noexcept {
    return _mm512_add_ps(acc, _mm512_mul_ps(a, b));
  }
};

static_assert(2 * VecAvx512::kWidth == kAvx512Nr);

}  // namespace

void micro_kernel_avx512(const float* a, std::size_t a_rstride,
                         std::size_t a_kstride, const float* b,
                         std::size_t b_kstride, std::size_t kc, float* c,
                         std::size_t ldc, std::size_t rows, std::size_t cols,
                         bool accumulate) {
  MicroTile<VecAvx512>::run(a, a_rstride, a_kstride, b, b_kstride, kc, c, ldc,
                            rows, cols, accumulate);
}

namespace {

// Int8 tile: one vpdpbusd per k-group per B vector — the instruction the
// AVX2 kernel emulates with maddubs+madd, so the i32 accumulators are
// identical by construction (dpbusd's internal pair sums are wider than
// i16; the AVX2 path avoids its own saturation via the 7-bit activation
// grid). 8 rows x 2 zmm = 16 i32 accumulators, mirroring the fp32 tile.
template <int Rows>
void i8_rows_avx512(const std::uint8_t* a, std::size_t a_stride,
                    const std::int8_t* b, std::size_t b_stride,
                    std::size_t groups, const float* a_scales,
                    const std::int32_t* a_zps, const float* b_scales,
                    const std::int32_t* b_col_sums, const float* bias,
                    float* c, std::size_t ldc) {
  __m512i acc0[Rows], acc1[Rows];
  for (int r = 0; r < Rows; ++r) {
    acc0[r] = _mm512_setzero_si512();
    acc1[r] = _mm512_setzero_si512();
  }
  for (std::size_t g = 0; g < groups; ++g) {
    const __m512i b0 = _mm512_loadu_si512(b + g * b_stride);
    const __m512i b1 = _mm512_loadu_si512(b + g * b_stride + 64);
    for (int r = 0; r < Rows; ++r) {
      std::int32_t aw;
      std::memcpy(&aw, a + r * a_stride + g * 4, 4);
      const __m512i av = _mm512_set1_epi32(aw);
      acc0[r] = _mm512_dpbusd_epi32(acc0[r], av, b0);
      acc1[r] = _mm512_dpbusd_epi32(acc1[r], av, b1);
    }
  }
  // Fused epilogue: same pinned chain as the scalar and AVX2 kernels.
  const __m512i cs0 = _mm512_loadu_si512(b_col_sums);
  const __m512i cs1 = _mm512_loadu_si512(b_col_sums + 16);
  const __m512 sw0 = _mm512_loadu_ps(b_scales);
  const __m512 sw1 = _mm512_loadu_ps(b_scales + 16);
  const __m512 bi0 = _mm512_loadu_ps(bias);
  const __m512 bi1 = _mm512_loadu_ps(bias + 16);
  for (int r = 0; r < Rows; ++r) {
    const __m512i zp = _mm512_set1_epi32(a_zps[r]);
    const __m512 sa = _mm512_set1_ps(a_scales[r]);
    const __m512i corr0 =
        _mm512_sub_epi32(acc0[r], _mm512_mullo_epi32(zp, cs0));
    const __m512i corr1 =
        _mm512_sub_epi32(acc1[r], _mm512_mullo_epi32(zp, cs1));
    const __m512 comb0 = _mm512_mul_ps(sa, sw0);
    const __m512 comb1 = _mm512_mul_ps(sa, sw1);
    float* cr = c + r * ldc;
    _mm512_storeu_ps(
        cr, _mm512_add_ps(
                _mm512_mul_ps(_mm512_cvtepi32_ps(corr0), comb0), bi0));
    _mm512_storeu_ps(
        cr + 16, _mm512_add_ps(
                     _mm512_mul_ps(_mm512_cvtepi32_ps(corr1), comb1), bi1));
  }
}

}  // namespace

void micro_kernel_i8_avx512vnni(
    const std::uint8_t* a, std::size_t a_stride, const std::int8_t* b,
    std::size_t b_stride, std::size_t groups, const float* a_scales,
    const std::int32_t* a_zps, const float* b_scales,
    const std::int32_t* b_col_sums, const float* bias, float* c,
    std::size_t ldc, std::size_t rows, std::size_t cols) {
  if (cols < kAvx512I8Nr) {
    // Column edge: bit-identical scalar delegate (gemm_kernels.h).
    micro_kernel_i8_scalar(a, a_stride, b, b_stride, groups, a_scales, a_zps,
                           b_scales, b_col_sums, bias, c, ldc, rows, cols);
    return;
  }
  switch (rows) {
    case 1:
      i8_rows_avx512<1>(a, a_stride, b, b_stride, groups, a_scales, a_zps,
                        b_scales, b_col_sums, bias, c, ldc);
      break;
    case 2:
      i8_rows_avx512<2>(a, a_stride, b, b_stride, groups, a_scales, a_zps,
                        b_scales, b_col_sums, bias, c, ldc);
      break;
    case 3:
      i8_rows_avx512<3>(a, a_stride, b, b_stride, groups, a_scales, a_zps,
                        b_scales, b_col_sums, bias, c, ldc);
      break;
    case 4:
      i8_rows_avx512<4>(a, a_stride, b, b_stride, groups, a_scales, a_zps,
                        b_scales, b_col_sums, bias, c, ldc);
      break;
    case 5:
      i8_rows_avx512<5>(a, a_stride, b, b_stride, groups, a_scales, a_zps,
                        b_scales, b_col_sums, bias, c, ldc);
      break;
    case 6:
      i8_rows_avx512<6>(a, a_stride, b, b_stride, groups, a_scales, a_zps,
                        b_scales, b_col_sums, bias, c, ldc);
      break;
    case 7:
      i8_rows_avx512<7>(a, a_stride, b, b_stride, groups, a_scales, a_zps,
                        b_scales, b_col_sums, bias, c, ldc);
      break;
    case 8:
      i8_rows_avx512<8>(a, a_stride, b, b_stride, groups, a_scales, a_zps,
                        b_scales, b_col_sums, bias, c, ldc);
      break;
    default:
      break;
  }
}

}  // namespace cea::nn::gemm::detail

#endif  // defined(__x86_64__)
