#pragma once

// Internal contract between the GEMM driver (gemm.cpp) and the
// micro-kernel translation units (gemm_avx2.cpp / gemm_avx512.cpp).
// Nothing here is public API; include nn/gemm.h instead.
//
// A micro-kernel multiplies one (rows x kc) A sub-panel by one (kc x cols)
// B sub-panel into C. Operands are addressed through strides so the same
// kernel runs on packed panels and, when the op is kNone, directly on the
// caller's row-major storage (no packing pass at all):
//
//   A(r, k) = a[r * a_rstride + k * a_kstride]
//   B(k, j) = b[k * b_kstride + j]
//
// Packed panels use (a_rstride, a_kstride) = (1, mr) and b_kstride = nr —
// the classic k-major layout, built by pack_a/pack_b for transposed
// operands and for column-edge B panels (which must be zero-padded to nr
// so full-width vector loads stay in bounds). Direct operands use
// (lda, 1) and ldb.
//
// For each element the kernel accumulates a*b products in increasing-k
// order into a zero-initialized register accumulator (one multiply, one
// add per step — never a fused op) and finally performs the single update
// C[r][j] += acc (accumulate == true) or the single store C[r][j] = acc
// (accumulate == false, the BLAS beta == 0 case — the driver passes it for
// the first K panel of an overwriting multiply so callers need not
// pre-zero C). Padded lanes are computed but not stored. This per-element
// chain is the entire numeric semantics of a kernel — it does not depend
// on how the operand was addressed — which is why scalar, AVX2 and
// AVX-512 outputs, packed or direct, are bit-identical
// (tests/nn/test_gemm.cpp).

#include <cstddef>

namespace cea::nn::gemm::detail {

/// K-panel depth. Part of the numeric contract (panel boundaries decide
/// where partial sums are folded into C), so every kernel and both the
/// serial and parallel drivers share this one constant.
inline constexpr std::size_t kKC = 256;

/// Default C tile extents (rows x cols). Unlike kKC these are free
/// parameters: the tile grid never changes any accumulation chain, only
/// which task computes it, so the driver may shrink tiles to feed more
/// threads without affecting results.
inline constexpr std::size_t kMC = 64;
inline constexpr std::size_t kNC = 240;

/// (a, a_rstride, a_kstride, b, b_kstride, kc, c, ldc, rows, cols,
/// accumulate) — rows/cols are the live extents (<= mr/nr of the variant);
/// when cols < nr, b must be zero-padded to nr columns (i.e. a packed
/// panel). accumulate == false stores the panel result instead of adding
/// it to C.
using MicroKernel = void (*)(const float* a, std::size_t a_rstride,
                             std::size_t a_kstride, const float* b,
                             std::size_t b_kstride, std::size_t kc, float* c,
                             std::size_t ldc, std::size_t rows,
                             std::size_t cols, bool accumulate);

/// Register-tile shape and entry point of one kernel variant.
struct KernelDesc {
  std::size_t mr = 0;
  std::size_t nr = 0;
  MicroKernel kernel = nullptr;
};

/// Scalar reference kernel (gemm.cpp). Defines the semantics.
void micro_kernel_scalar(const float* a, std::size_t a_rstride,
                         std::size_t a_kstride, const float* b,
                         std::size_t b_kstride, std::size_t kc, float* c,
                         std::size_t ldc, std::size_t rows, std::size_t cols,
                         bool accumulate);
inline constexpr std::size_t kScalarMr = 6;
inline constexpr std::size_t kScalarNr = 16;

#if defined(__x86_64__)
/// 6x16 AVX2 kernel (gemm_avx2.cpp, -mavx2); enter only behind
/// util::have_avx2().
void micro_kernel_avx2(const float* a, std::size_t a_rstride,
                       std::size_t a_kstride, const float* b,
                       std::size_t b_kstride, std::size_t kc, float* c,
                       std::size_t ldc, std::size_t rows, std::size_t cols,
                       bool accumulate);
inline constexpr std::size_t kAvx2Mr = 6;
inline constexpr std::size_t kAvx2Nr = 16;

/// 8x32 AVX-512 kernel (gemm_avx512.cpp, -mavx512vl -mavx512dq); enter
/// only behind util::have_avx512().
void micro_kernel_avx512(const float* a, std::size_t a_rstride,
                         std::size_t a_kstride, const float* b,
                         std::size_t b_kstride, std::size_t kc, float* c,
                         std::size_t ldc, std::size_t rows, std::size_t cols,
                         bool accumulate);
inline constexpr std::size_t kAvx512Mr = 8;
inline constexpr std::size_t kAvx512Nr = 32;
#endif

}  // namespace cea::nn::gemm::detail
