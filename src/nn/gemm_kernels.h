#pragma once

// Internal contract between the GEMM driver (gemm.cpp) and the
// micro-kernel translation units (gemm_avx2.cpp / gemm_avx512.cpp).
// Nothing here is public API; include nn/gemm.h instead.
//
// A micro-kernel multiplies one (rows x kc) A sub-panel by one (kc x cols)
// B sub-panel into C. Operands are addressed through strides so the same
// kernel runs on packed panels and, when the op is kNone, directly on the
// caller's row-major storage (no packing pass at all):
//
//   A(r, k) = a[r * a_rstride + k * a_kstride]
//   B(k, j) = b[k * b_kstride + j]
//
// Packed panels use (a_rstride, a_kstride) = (1, mr) and b_kstride = nr —
// the classic k-major layout, built by pack_a/pack_b for transposed
// operands and for column-edge B panels (which must be zero-padded to nr
// so full-width vector loads stay in bounds). Direct operands use
// (lda, 1) and ldb.
//
// For each element the kernel accumulates a*b products in increasing-k
// order into a zero-initialized register accumulator (one multiply, one
// add per step — never a fused op) and finally performs the single update
// C[r][j] += acc (accumulate == true) or the single store C[r][j] = acc
// (accumulate == false, the BLAS beta == 0 case — the driver passes it for
// the first K panel of an overwriting multiply so callers need not
// pre-zero C). Padded lanes are computed but not stored. This per-element
// chain is the entire numeric semantics of a kernel — it does not depend
// on how the operand was addressed — which is why scalar, AVX2 and
// AVX-512 outputs, packed or direct, are bit-identical
// (tests/nn/test_gemm.cpp).

#include <cstddef>
#include <cstdint>

namespace cea::nn::gemm::detail {

/// K-panel depth. Part of the numeric contract (panel boundaries decide
/// where partial sums are folded into C), so every kernel and both the
/// serial and parallel drivers share this one constant.
inline constexpr std::size_t kKC = 256;

/// Default C tile extents (rows x cols). Unlike kKC these are free
/// parameters: the tile grid never changes any accumulation chain, only
/// which task computes it, so the driver may shrink tiles to feed more
/// threads without affecting results.
inline constexpr std::size_t kMC = 64;
inline constexpr std::size_t kNC = 240;

/// (a, a_rstride, a_kstride, b, b_kstride, kc, c, ldc, rows, cols,
/// accumulate) — rows/cols are the live extents (<= mr/nr of the variant);
/// when cols < nr, b must be zero-padded to nr columns (i.e. a packed
/// panel). accumulate == false stores the panel result instead of adding
/// it to C.
using MicroKernel = void (*)(const float* a, std::size_t a_rstride,
                             std::size_t a_kstride, const float* b,
                             std::size_t b_kstride, std::size_t kc, float* c,
                             std::size_t ldc, std::size_t rows,
                             std::size_t cols, bool accumulate);

/// Register-tile shape and entry point of one kernel variant.
struct KernelDesc {
  std::size_t mr = 0;
  std::size_t nr = 0;
  MicroKernel kernel = nullptr;
};

/// Scalar reference kernel (gemm.cpp). Defines the semantics.
void micro_kernel_scalar(const float* a, std::size_t a_rstride,
                         std::size_t a_kstride, const float* b,
                         std::size_t b_kstride, std::size_t kc, float* c,
                         std::size_t ldc, std::size_t rows, std::size_t cols,
                         bool accumulate);
inline constexpr std::size_t kScalarMr = 6;
inline constexpr std::size_t kScalarNr = 16;

#if defined(__x86_64__)
/// 6x16 AVX2 kernel (gemm_avx2.cpp, -mavx2); enter only behind
/// util::have_avx2().
void micro_kernel_avx2(const float* a, std::size_t a_rstride,
                       std::size_t a_kstride, const float* b,
                       std::size_t b_kstride, std::size_t kc, float* c,
                       std::size_t ldc, std::size_t rows, std::size_t cols,
                       bool accumulate);
inline constexpr std::size_t kAvx2Mr = 6;
inline constexpr std::size_t kAvx2Nr = 16;

/// 8x32 AVX-512 kernel (gemm_avx512.cpp, -mavx512vl -mavx512dq); enter
/// only behind util::have_avx512().
void micro_kernel_avx512(const float* a, std::size_t a_rstride,
                         std::size_t a_kstride, const float* b,
                         std::size_t b_kstride, std::size_t kc, float* c,
                         std::size_t ldc, std::size_t rows, std::size_t cols,
                         bool accumulate);
inline constexpr std::size_t kAvx512Mr = 8;
inline constexpr std::size_t kAvx512Nr = 32;
#endif

// ------------------------------------------------------------------ int8
//
// An int8 micro-kernel multiplies one (rows x kc-through-groups) block of
// quantized u8 activation rows by one column block of an Int8PackedB
// panel into float C. Operand addressing:
//
//   A(r, 4g + t) = a[r * a_stride + 4g + t]        (u8, zero-padded k)
//   B(4g + t, j) = b[g * b_stride + j * 4 + t]     (s8, K4-interleaved)
//
// The kernel owns the whole K extent (groups * 4 padded steps; there is
// no K panelling — the i32 accumulator is exact, so nothing is ever
// folded into C early) and the fused epilogue: for each live element,
//   corr = acc - a_zps[r] * col_sums[j]            (exact i32)
//   C[r][j] = float(corr) * (a_scales[r] * scales[j]) + bias[j]
// with the float part evaluated as exactly that op sequence (two
// multiplies, one add, no FMA — the TUs are compiled with
// -ffp-contract=off). scales/col_sums/bias are pre-offset to the block's
// first column and padded, so full-width vector loads stay in bounds.
//
// Because the integer part is exact and the float chain is pinned, a
// SIMD kernel may delegate partial-width column blocks (cols < its nr)
// to micro_kernel_i8_scalar with bit-identical results — which is how
// both SIMD variants handle column edges.

/// (a, a_stride, b, b_stride, groups, a_scales, a_zps, b_scales,
/// b_col_sums, bias, c, ldc, rows, cols) — per-row activation
/// scale/zero-point arrays are pre-offset to the block's first row,
/// per-column arrays to its first column. bias is never null (the driver
/// stages a zero-padded copy).
using MicroKernelI8 = void (*)(
    const std::uint8_t* a, std::size_t a_stride, const std::int8_t* b,
    std::size_t b_stride, std::size_t groups, const float* a_scales,
    const std::int32_t* a_zps, const float* b_scales,
    const std::int32_t* b_col_sums, const float* bias, float* c,
    std::size_t ldc, std::size_t rows, std::size_t cols);

/// Register-tile shape and entry point of one int8 kernel variant.
struct KernelDescI8 {
  std::size_t mr = 0;
  std::size_t nr = 0;
  MicroKernelI8 kernel = nullptr;
};

/// Scalar int8 reference kernel (gemm.cpp). Defines the semantics; also
/// the delegate for SIMD column edges.
void micro_kernel_i8_scalar(const std::uint8_t* a, std::size_t a_stride,
                            const std::int8_t* b, std::size_t b_stride,
                            std::size_t groups, const float* a_scales,
                            const std::int32_t* a_zps, const float* b_scales,
                            const std::int32_t* b_col_sums, const float* bias,
                            float* c, std::size_t ldc, std::size_t rows,
                            std::size_t cols);
inline constexpr std::size_t kScalarI8Mr = 6;
inline constexpr std::size_t kScalarI8Nr = 16;

#if defined(__x86_64__)
/// 6x16 AVX2 int8 kernel (gemm_avx2.cpp): maddubs u8*s8 pairs -> i16,
/// madd by ones -> i32 — exactly one dpbusd in two steps. Enter only
/// behind util::have_avx2().
void micro_kernel_i8_avx2(const std::uint8_t* a, std::size_t a_stride,
                          const std::int8_t* b, std::size_t b_stride,
                          std::size_t groups, const float* a_scales,
                          const std::int32_t* a_zps, const float* b_scales,
                          const std::int32_t* b_col_sums, const float* bias,
                          float* c, std::size_t ldc, std::size_t rows,
                          std::size_t cols);
inline constexpr std::size_t kAvx2I8Mr = 6;
inline constexpr std::size_t kAvx2I8Nr = 16;

/// 8x32 AVX-512 VNNI int8 kernel (gemm_avx512.cpp, additionally compiled
/// with -mavx512bw -mavx512vnni): one vpdpbusd per k-group per vector.
/// Enter only behind util::have_avx512_vnni().
void micro_kernel_i8_avx512vnni(
    const std::uint8_t* a, std::size_t a_stride, const std::int8_t* b,
    std::size_t b_stride, std::size_t groups, const float* a_scales,
    const std::int32_t* a_zps, const float* b_scales,
    const std::int32_t* b_col_sums, const float* bias, float* c,
    std::size_t ldc, std::size_t rows, std::size_t cols);
inline constexpr std::size_t kAvx512I8Mr = 8;
inline constexpr std::size_t kAvx512I8Nr = 32;
#endif

}  // namespace cea::nn::gemm::detail
