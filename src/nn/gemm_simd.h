#pragma once

// Shared SIMD micro-kernel body, parameterized on a vector-register
// traits type (the loss_sampling_ymm.h pattern). Each SIMD TU includes
// this header, instantiates MicroTile with its traits, and is compiled
// with the matching -m flags — so this header must only be included from
// those TUs.
//
// The register tile is Rows x (2 vectors): two B vectors are loaded per k
// step and every A row broadcast multiplies both. Each accumulator lane
// performs acc = acc + a*b in increasing-k order — V::madd is an explicit
// multiply followed by an explicit add, never a fused operation (the TUs
// are compiled with -ffp-contract=off to keep the compiler from fusing
// them), so every lane evaluates exactly the scalar reference chain and
// the variants stay bit-identical.

#if defined(__x86_64__)

#include <cstddef>

#include "nn/gemm_kernels.h"

namespace cea::nn::gemm::detail {

template <typename V>
struct MicroTile {
  static constexpr std::size_t kMr = V::kMr;
  static constexpr std::size_t kNr = 2 * V::kWidth;

  template <std::size_t Rows>
  static void rows_kernel(const float* a, std::size_t a_rstride,
                          std::size_t a_kstride, const float* b,
                          std::size_t b_kstride, std::size_t kc, float* c,
                          std::size_t ldc, std::size_t cols, bool accumulate) {
    typename V::Reg acc0[Rows], acc1[Rows];
    for (std::size_t r = 0; r < Rows; ++r) {
      acc0[r] = V::zero();
      acc1[r] = V::zero();
    }
    for (std::size_t k = 0; k < kc; ++k) {
      const typename V::Reg b0 = V::load(b + k * b_kstride);
      const typename V::Reg b1 = V::load(b + k * b_kstride + V::kWidth);
      const float* ak = a + k * a_kstride;
      for (std::size_t r = 0; r < Rows; ++r) {
        const typename V::Reg av = V::broadcast(ak + r * a_rstride);
        acc0[r] = V::madd(av, b0, acc0[r]);
        acc1[r] = V::madd(av, b1, acc1[r]);
      }
    }
    if (cols == kNr) {
      if (accumulate) {
        for (std::size_t r = 0; r < Rows; ++r) {
          float* cr = c + r * ldc;
          V::store(cr, V::add(V::load(cr), acc0[r]));
          V::store(cr + V::kWidth, V::add(V::load(cr + V::kWidth), acc1[r]));
        }
      } else {
        for (std::size_t r = 0; r < Rows; ++r) {
          float* cr = c + r * ldc;
          V::store(cr, acc0[r]);
          V::store(cr + V::kWidth, acc1[r]);
        }
      }
    } else {
      // Edge tile: full-width compute on zero-padded B, partial store.
      // The per-lane update below is the same single update the full path
      // performs in vector form.
      alignas(64) float stage[kNr];
      for (std::size_t r = 0; r < Rows; ++r) {
        V::store(stage, acc0[r]);
        V::store(stage + V::kWidth, acc1[r]);
        float* cr = c + r * ldc;
        if (accumulate) {
          for (std::size_t j = 0; j < cols; ++j) cr[j] += stage[j];
        } else {
          for (std::size_t j = 0; j < cols; ++j) cr[j] = stage[j];
        }
      }
    }
  }

  static void run(const float* a, std::size_t a_rs, std::size_t a_ks,
                  const float* b, std::size_t b_ks, std::size_t kc, float* c,
                  std::size_t ldc, std::size_t rows, std::size_t cols,
                  bool acc) {
    switch (rows) {
      case 1:
        rows_kernel<1>(a, a_rs, a_ks, b, b_ks, kc, c, ldc, cols, acc);
        break;
      case 2:
        rows_kernel<2>(a, a_rs, a_ks, b, b_ks, kc, c, ldc, cols, acc);
        break;
      case 3:
        rows_kernel<3>(a, a_rs, a_ks, b, b_ks, kc, c, ldc, cols, acc);
        break;
      case 4:
        rows_kernel<4>(a, a_rs, a_ks, b, b_ks, kc, c, ldc, cols, acc);
        break;
      case 5:
        rows_kernel<5>(a, a_rs, a_ks, b, b_ks, kc, c, ldc, cols, acc);
        break;
      case 6:
        rows_kernel<6>(a, a_rs, a_ks, b, b_ks, kc, c, ldc, cols, acc);
        break;
      case 7:
        if constexpr (kMr >= 7)
          rows_kernel<7>(a, a_rs, a_ks, b, b_ks, kc, c, ldc, cols, acc);
        break;
      case 8:
        if constexpr (kMr >= 8)
          rows_kernel<8>(a, a_rs, a_ks, b, b_ks, kc, c, ldc, cols, acc);
        break;
      default: break;
    }
  }
};

}  // namespace cea::nn::gemm::detail

#endif  // defined(__x86_64__)
