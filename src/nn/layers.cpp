#include "nn/layers.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <functional>
#include <limits>

#include "nn/gemm.h"
#include "util/thread_pool.h"

namespace cea::nn {
namespace {

/// He-normal initialization for a parameter vector with the given fan-in.
void he_init(std::vector<float>& params, std::size_t fan_in, Rng& rng) {
  const double stddev = std::sqrt(2.0 / static_cast<double>(fan_in));
  for (auto& p : params) p = static_cast<float>(rng.normal(0.0, stddev));
}

std::size_t conv_output_extent(std::size_t in, std::size_t kernel,
                               std::size_t stride, std::size_t padding) {
  return (in + 2 * padding - kernel) / stride + 1;
}

/// Run fn(b) for every sample of a minibatch, fanned out over the compute
/// pool when one is configured. Samples only ever write their own output
/// slices (cross-sample gradient accumulation goes through per-sample
/// scratch reduced serially afterwards), so pooled and serial execution
/// are bit-identical.
void for_each_sample(std::size_t batch,
                     const std::function<void(std::size_t)>& fn) {
  util::ThreadPool* pool = compute_pool();
  if (pool != nullptr && batch > 1) {
    pool->parallel_for(batch, fn);
  } else {
    for (std::size_t b = 0; b < batch; ++b) fn(b);
  }
}

/// Per-thread scratch, reused across layers, samples and minibatches
/// (never shrinks). Slot 0 holds im2col patches, slot 1 the gradient
/// patches of the backward pass, slot 2 the transposed (patches x out_c)
/// C block of the Conv2D int8 forward.
std::vector<float>& tls_workspace(std::size_t slot, std::size_t n) {
  thread_local std::vector<float> buffers[3];
  auto& buffer = buffers[slot];
  if (buffer.size() < n) buffer.resize(n);
  return buffer;
}

}  // namespace

// ---------------------------------------------------------------- Dense

Dense::Dense(std::size_t in_features, std::size_t out_features, Rng& rng)
    : in_(in_features),
      out_(out_features),
      weights_(in_features * out_features),
      bias_(out_features, 0.0f),
      grad_weights_(weights_.size(), 0.0f),
      grad_bias_(out_features, 0.0f) {
  he_init(weights_, in_, rng);
}

Tensor Dense::forward(const Tensor& input) {
  assert(input.rank() == 2 && input.dim(1) == in_);
  if (compute_backend() == ComputeBackend::kReference)
    return forward_reference(input);
  if (compute_backend() == ComputeBackend::kGemmInt8)
    return forward_int8(input);
  cached_input_ = input;
  const std::size_t batch = input.dim(0);
  Tensor out = Tensor::uninitialized({batch, out_});
  // out = X · W^T with rows pre-filled by the bias; the GEMM accumulates.
  float* o = out.data().data();
  for (std::size_t b = 0; b < batch; ++b)
    std::memcpy(o + b * out_, bias_.data(), out_ * sizeof(float));
  gemm::multiply(input.data().data(), in_, gemm::Op::kNone, weights_.data(),
                 in_, gemm::Op::kTranspose, o, out_, batch, out_, in_,
                 compute_pool());
  return out;
}

Tensor Dense::forward_int8(const Tensor& input) {
  // Inference path: out = dequant(quant7(X) · panel(W^T)) + bias in one
  // fused pass — no bias prefill, the epilogue adds it. The input is
  // still cached so a backward() (which always runs fp32) keeps working
  // mid-training.
  cached_input_ = input;
  const std::size_t batch = input.dim(0);
  Tensor out = Tensor::uninitialized({batch, out_});
  if (!i8_panel_)
    i8_panel_ = std::make_unique<gemm::Int8PackedB>(gemm::pack_b_i8(
        weights_.data(), in_, gemm::Op::kTranspose, in_, out_));
  gemm::multiply_i8(input.data().data(), in_, gemm::Op::kNone, *i8_panel_,
                    bias_.data(), out.data().data(), out_, batch, out_, in_,
                    compute_pool());
  return out;
}

Tensor Dense::backward(const Tensor& grad_output) {
  if (compute_backend() == ComputeBackend::kReference)
    return backward_reference(grad_output);
  const std::size_t batch = cached_input_.dim(0);
  Tensor grad_input = Tensor::uninitialized({batch, in_});
  const float* g = grad_output.data().data();
  // grad_bias: column sums of G, accumulated in the seed's (b, o) order.
  for (std::size_t b = 0; b < batch; ++b)
    for (std::size_t o = 0; o < out_; ++o) grad_bias_[o] += g[b * out_ + o];
  // grad_input = G · W (overwriting; the fresh tensor needs no zero pass).
  gemm::multiply(g, out_, gemm::Op::kNone, weights_.data(), in_,
                 gemm::Op::kNone, grad_input.data().data(), in_, batch, in_,
                 out_, compute_pool(), /*accumulate=*/false);
  // grad_weights += G^T · X.
  gemm::multiply(g, out_, gemm::Op::kTranspose,
                 cached_input_.data().data(), in_, gemm::Op::kNone,
                 grad_weights_.data(), in_, out_, in_, batch,
                 compute_pool());
  return grad_input;
}

Tensor Dense::forward_reference(const Tensor& input) {
  cached_input_ = input;
  const std::size_t batch = input.dim(0);
  Tensor out({batch, out_});
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t o = 0; o < out_; ++o) {
      float acc = bias_[o];
      const float* w = &weights_[o * in_];
      for (std::size_t i = 0; i < in_; ++i) acc += w[i] * input.at(b, i);
      out.at(b, o) = acc;
    }
  }
  return out;
}

Tensor Dense::backward_reference(const Tensor& grad_output) {
  const std::size_t batch = cached_input_.dim(0);
  Tensor grad_input({batch, in_});
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t o = 0; o < out_; ++o) {
      const float g = grad_output.at(b, o);
      grad_bias_[o] += g;
      float* gw = &grad_weights_[o * in_];
      const float* w = &weights_[o * in_];
      for (std::size_t i = 0; i < in_; ++i) {
        gw[i] += g * cached_input_.at(b, i);
        grad_input.at(b, i) += g * w[i];
      }
    }
  }
  return grad_input;
}

void Dense::apply_gradients(float learning_rate) {
  i8_panel_.reset();
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    weights_[i] -= learning_rate * grad_weights_[i];
    grad_weights_[i] = 0.0f;
  }
  for (std::size_t i = 0; i < bias_.size(); ++i) {
    bias_[i] -= learning_rate * grad_bias_[i];
    grad_bias_[i] = 0.0f;
  }
}

std::size_t Dense::parameter_count() const noexcept {
  return weights_.size() + bias_.size();
}

void Dense::visit_parameters(const ParameterVisitor& visit) {
  i8_panel_.reset();  // visitors get mutable spans — the weights may change
  visit(weights_);
  visit(bias_);
}

void Dense::visit_gradients(const GradientVisitor& visit) {
  i8_panel_.reset();
  visit(weights_, grad_weights_);
  visit(bias_, grad_bias_);
}

// ---------------------------------------------------------------- Conv2D

Conv2D::Conv2D(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, std::size_t stride, std::size_t padding,
               Rng& rng)
    : in_c_(in_channels),
      out_c_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      weights_(out_channels * in_channels * kernel * kernel),
      bias_(out_channels, 0.0f),
      grad_weights_(weights_.size(), 0.0f),
      grad_bias_(out_channels, 0.0f) {
  he_init(weights_, in_c_ * kernel_ * kernel_, rng);
}

// Conv2D runs through im2col + a cache-friendly matrix multiply: the
// receptive fields of every output pixel are unrolled into the columns of
// a (in_c*k*k) x (oh*ow) matrix, so the convolution is one GEMM with the
// (out_c) x (in_c*k*k) weight matrix. Several times faster than the naive
// six-deep loop at zoo-training sizes; tests/nn/test_conv_reference.cpp
// pins the numerics to a from-first-principles reference.
namespace {

/// Unroll one image (channels x ih x iw, at `image`) into column-major
/// patches: col[q * patches + p] for q in [0, in_c*k*k), p in [0, oh*ow).
void im2col(const float* image, std::size_t channels, std::size_t ih,
            std::size_t iw, std::size_t kernel, std::size_t stride,
            std::size_t padding, std::size_t oh, std::size_t ow,
            float* col) {
  const std::size_t patches = oh * ow;
  std::size_t q = 0;
  for (std::size_t c = 0; c < channels; ++c) {
    for (std::size_t ky = 0; ky < kernel; ++ky) {
      for (std::size_t kx = 0; kx < kernel; ++kx, ++q) {
        float* row = col + q * patches;
        if (stride == 1) {
          // At stride 1, ix = ox + kx - padding: each output row is one
          // contiguous slice of the input row plus zero-filled borders.
          const std::ptrdiff_t dx = static_cast<std::ptrdiff_t>(kx) -
                                    static_cast<std::ptrdiff_t>(padding);
          const std::size_t ox_lo =
              dx < 0 ? static_cast<std::size_t>(-dx) : 0;
          const std::ptrdiff_t hi = static_cast<std::ptrdiff_t>(iw) - dx;
          const std::size_t ox_hi =
              hi < 0 ? 0 : std::min(ow, static_cast<std::size_t>(hi));
          for (std::size_t oy = 0; oy < oh; ++oy) {
            float* r = row + oy * ow;
            const std::ptrdiff_t iy = static_cast<std::ptrdiff_t>(oy + ky) -
                                      static_cast<std::ptrdiff_t>(padding);
            if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(ih) ||
                ox_hi <= ox_lo) {
              std::fill(r, r + ow, 0.0f);
              continue;
            }
            const float* src =
                image + (c * ih + static_cast<std::size_t>(iy)) * iw;
            std::fill(r, r + ox_lo, 0.0f);
            std::memcpy(r + ox_lo,
                        src + static_cast<std::size_t>(
                                  static_cast<std::ptrdiff_t>(ox_lo) + dx),
                        (ox_hi - ox_lo) * sizeof(float));
            std::fill(r + ox_hi, r + ow, 0.0f);
          }
          continue;
        }
        std::size_t p = 0;
        for (std::size_t oy = 0; oy < oh; ++oy) {
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(oy * stride + ky) -
              static_cast<std::ptrdiff_t>(padding);
          const bool y_in = iy >= 0 && iy < static_cast<std::ptrdiff_t>(ih);
          for (std::size_t ox = 0; ox < ow; ++ox, ++p) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(ox * stride + kx) -
                static_cast<std::ptrdiff_t>(padding);
            row[p] = (y_in && ix >= 0 &&
                      ix < static_cast<std::ptrdiff_t>(iw))
                         ? image[(c * ih + static_cast<std::size_t>(iy)) * iw +
                                 static_cast<std::size_t>(ix)]
                         : 0.0f;
          }
        }
      }
    }
  }
}

/// Scatter-add the column matrix back into an image (adjoint of im2col).
void col2im_accumulate(const float* col, std::size_t channels, std::size_t ih,
                       std::size_t iw, std::size_t kernel, std::size_t stride,
                       std::size_t padding, std::size_t oh, std::size_t ow,
                       float* image) {
  const std::size_t patches = oh * ow;
  std::size_t q = 0;
  for (std::size_t c = 0; c < channels; ++c) {
    for (std::size_t ky = 0; ky < kernel; ++ky) {
      for (std::size_t kx = 0; kx < kernel; ++kx, ++q) {
        const float* row = col + q * patches;
        if (stride == 1) {
          // Mirror of the im2col fast path: one contiguous += span per
          // output row (the borders fell on padding and contribute
          // nothing).
          const std::ptrdiff_t dx = static_cast<std::ptrdiff_t>(kx) -
                                    static_cast<std::ptrdiff_t>(padding);
          const std::size_t ox_lo =
              dx < 0 ? static_cast<std::size_t>(-dx) : 0;
          const std::ptrdiff_t hi = static_cast<std::ptrdiff_t>(iw) - dx;
          const std::size_t ox_hi =
              hi < 0 ? 0 : std::min(ow, static_cast<std::size_t>(hi));
          if (ox_hi <= ox_lo) continue;
          for (std::size_t oy = 0; oy < oh; ++oy) {
            const std::ptrdiff_t iy = static_cast<std::ptrdiff_t>(oy + ky) -
                                      static_cast<std::ptrdiff_t>(padding);
            if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(ih)) continue;
            const float* r = row + oy * ow;
            float* dst =
                image + (c * ih + static_cast<std::size_t>(iy)) * iw +
                static_cast<std::size_t>(static_cast<std::ptrdiff_t>(ox_lo) +
                                         dx);
            for (std::size_t ox = ox_lo; ox < ox_hi; ++ox)
              dst[ox - ox_lo] += r[ox];
          }
          continue;
        }
        std::size_t p = 0;
        for (std::size_t oy = 0; oy < oh; ++oy) {
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(oy * stride + ky) -
              static_cast<std::ptrdiff_t>(padding);
          const bool y_in = iy >= 0 && iy < static_cast<std::ptrdiff_t>(ih);
          for (std::size_t ox = 0; ox < ow; ++ox, ++p) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(ox * stride + kx) -
                static_cast<std::ptrdiff_t>(padding);
            if (y_in && ix >= 0 && ix < static_cast<std::ptrdiff_t>(iw)) {
              image[(c * ih + static_cast<std::size_t>(iy)) * iw +
                    static_cast<std::size_t>(ix)] += row[p];
            }
          }
        }
      }
    }
  }
}

}  // namespace

Tensor Conv2D::forward(const Tensor& input) {
  assert(input.rank() == 4 && input.dim(1) == in_c_);
  if (compute_backend() == ComputeBackend::kReference)
    return forward_reference(input);
  if (compute_backend() == ComputeBackend::kGemmInt8)
    return forward_int8(input);
  cached_input_ = input;
  const std::size_t batch = input.dim(0);
  const std::size_t ih = input.dim(2), iw = input.dim(3);
  const std::size_t oh = conv_output_extent(ih, kernel_, stride_, padding_);
  const std::size_t ow = conv_output_extent(iw, kernel_, stride_, padding_);
  const std::size_t patches = oh * ow;
  const std::size_t depth = in_c_ * kernel_ * kernel_;
  Tensor out = Tensor::uninitialized({batch, out_c_, oh, ow});
  // Each sample unrolls into a thread-local im2col workspace and runs one
  // out_b = W (out_c x depth) · col (depth x patches) + bias GEMM into its
  // own output slice.
  for_each_sample(batch, [&](std::size_t b) {
    auto& col = tls_workspace(0, depth * patches);
    im2col(input.data().data() + b * in_c_ * ih * iw, in_c_, ih, iw,
           kernel_, stride_, padding_, oh, ow, col.data());
    float* dst = out.data().data() + b * out_c_ * patches;
    for (std::size_t oc = 0; oc < out_c_; ++oc)
      std::fill(dst + oc * patches, dst + (oc + 1) * patches, bias_[oc]);
    gemm::multiply(weights_.data(), depth, gemm::Op::kNone, col.data(),
                   patches, gemm::Op::kNone, dst, patches, out_c_, patches,
                   depth, compute_pool());
  });
  return out;
}

Tensor Conv2D::forward_int8(const Tensor& input) {
  cached_input_ = input;
  const std::size_t batch = input.dim(0);
  const std::size_t ih = input.dim(2), iw = input.dim(3);
  const std::size_t oh = conv_output_extent(ih, kernel_, stride_, padding_);
  const std::size_t ow = conv_output_extent(iw, kernel_, stride_, padding_);
  const std::size_t patches = oh * ow;
  const std::size_t depth = in_c_ * kernel_ * kernel_;
  Tensor out = Tensor::uninitialized({batch, out_c_, oh, ow});
  // The activations must be the A operand (they carry the dynamic per-row
  // scales; the weights are the pre-quantized panel), so the product runs
  // transposed relative to the fp32 path: C (patches x out_c) =
  // col^T · panel(W^T), one activation scale per output pixel, then a
  // scalar transpose into the (out_c x patches) output slice. Bias is
  // fused into the GEMM epilogue.
  if (!i8_panel_)
    i8_panel_ = std::make_unique<gemm::Int8PackedB>(gemm::pack_b_i8(
        weights_.data(), depth, gemm::Op::kTranspose, depth, out_c_));
  for_each_sample(batch, [&](std::size_t b) {
    auto& col = tls_workspace(0, depth * patches);
    im2col(input.data().data() + b * in_c_ * ih * iw, in_c_, ih, iw,
           kernel_, stride_, padding_, oh, ow, col.data());
    auto& ct = tls_workspace(2, patches * out_c_);
    gemm::multiply_i8(col.data(), patches, gemm::Op::kTranspose, *i8_panel_,
                      bias_.data(), ct.data(), out_c_, patches, out_c_,
                      depth, compute_pool());
    float* dst = out.data().data() + b * out_c_ * patches;
    for (std::size_t p = 0; p < patches; ++p)
      for (std::size_t oc = 0; oc < out_c_; ++oc)
        dst[oc * patches + p] = ct[p * out_c_ + oc];
  });
  return out;
}

Tensor Conv2D::backward(const Tensor& grad_output) {
  if (compute_backend() == ComputeBackend::kReference)
    return backward_reference(grad_output);
  const Tensor& input = cached_input_;
  const std::size_t batch = input.dim(0);
  const std::size_t ih = input.dim(2), iw = input.dim(3);
  const std::size_t oh = grad_output.dim(2), ow = grad_output.dim(3);
  const std::size_t patches = oh * ow;
  const std::size_t depth = in_c_ * kernel_ * kernel_;
  Tensor grad_input(input.shape());
  // Every scratch slot is overwritten by an accumulate == false GEMM (or
  // a plain store), so a resize — not a zero fill — is all that's needed.
  grad_w_scratch_.resize(batch * out_c_ * depth);
  grad_b_scratch_.resize(batch * out_c_);
  for_each_sample(batch, [&](std::size_t b) {
    auto& col = tls_workspace(0, depth * patches);
    auto& grad_col = tls_workspace(1, depth * patches);
    im2col(input.data().data() + b * in_c_ * ih * iw, in_c_, ih, iw,
           kernel_, stride_, padding_, oh, ow, col.data());
    const float* g = grad_output.data().data() + b * out_c_ * patches;
    // grad_col = W^T (depth x out_c) · G_b (out_c x patches), overwriting.
    gemm::multiply(weights_.data(), depth, gemm::Op::kTranspose, g, patches,
                   gemm::Op::kNone, grad_col.data(), patches, depth,
                   patches, out_c_, compute_pool(), /*accumulate=*/false);
    // Per-sample grad_weights partial, computed transposed —
    // col (depth x patches) · G_b^T (patches x out_c) — so the large col
    // operand streams through the kernel unpacked (only the small G_b is
    // packed). Element (d, oc) accumulates the exact same k-chain as
    // (oc, d) of G_b · col^T would.
    gemm::multiply(col.data(), patches, gemm::Op::kNone, g, patches,
                   gemm::Op::kTranspose,
                   grad_w_scratch_.data() + b * out_c_ * depth, out_c_,
                   depth, out_c_, patches, compute_pool(),
                   /*accumulate=*/false);
    for (std::size_t oc = 0; oc < out_c_; ++oc) {
      float acc = 0.0f;
      for (std::size_t p = 0; p < patches; ++p) acc += g[oc * patches + p];
      grad_b_scratch_[b * out_c_ + oc] = acc;
    }
    col2im_accumulate(grad_col.data(), in_c_, ih, iw, kernel_, stride_,
                      padding_, oh, ow,
                      grad_input.data().data() + b * in_c_ * ih * iw);
  });
  // Ordered reduction of the per-sample partials — identical in serial
  // and pooled runs, which is what keeps them bit-identical. The scratch
  // is (depth x out_c); grad_weights_ is (out_c x depth).
  for (std::size_t b = 0; b < batch; ++b) {
    const float* gw = grad_w_scratch_.data() + b * out_c_ * depth;
    for (std::size_t oc = 0; oc < out_c_; ++oc)
      for (std::size_t d = 0; d < depth; ++d)
        grad_weights_[oc * depth + d] += gw[d * out_c_ + oc];
    for (std::size_t oc = 0; oc < out_c_; ++oc)
      grad_bias_[oc] += grad_b_scratch_[b * out_c_ + oc];
  }
  return grad_input;
}

Tensor Conv2D::forward_reference(const Tensor& input) {
  cached_input_ = input;
  const std::size_t batch = input.dim(0);
  const std::size_t ih = input.dim(2), iw = input.dim(3);
  const std::size_t oh = conv_output_extent(ih, kernel_, stride_, padding_);
  const std::size_t ow = conv_output_extent(iw, kernel_, stride_, padding_);
  const std::size_t patches = oh * ow;
  const std::size_t depth = in_c_ * kernel_ * kernel_;
  Tensor out({batch, out_c_, oh, ow});
  std::vector<float> col(depth * patches);
  for (std::size_t b = 0; b < batch; ++b) {
    im2col(input.data().data() + b * in_c_ * ih * iw, in_c_, ih, iw, kernel_,
           stride_, padding_, oh, ow, col.data());
    // out_b = W (out_c x depth) * col (depth x patches) + bias.
    for (std::size_t oc = 0; oc < out_c_; ++oc) {
      float* dst = out.data().data() + (b * out_c_ + oc) * patches;
      const float bias = bias_[oc];
      for (std::size_t p = 0; p < patches; ++p) dst[p] = bias;
      const float* w = &weights_[oc * depth];
      for (std::size_t q = 0; q < depth; ++q) {
        const float wq = w[q];
        if (wq == 0.0f) continue;
        const float* src = col.data() + q * patches;
        for (std::size_t p = 0; p < patches; ++p) dst[p] += wq * src[p];
      }
    }
  }
  return out;
}

Tensor Conv2D::backward_reference(const Tensor& grad_output) {
  const Tensor& input = cached_input_;
  const std::size_t batch = input.dim(0);
  const std::size_t ih = input.dim(2), iw = input.dim(3);
  const std::size_t oh = grad_output.dim(2), ow = grad_output.dim(3);
  const std::size_t patches = oh * ow;
  const std::size_t depth = in_c_ * kernel_ * kernel_;
  Tensor grad_input(input.shape());
  std::vector<float> col(depth * patches);
  std::vector<float> grad_col(depth * patches);
  for (std::size_t b = 0; b < batch; ++b) {
    im2col(input.data().data() + b * in_c_ * ih * iw, in_c_, ih, iw, kernel_,
           stride_, padding_, oh, ow, col.data());
    std::fill(grad_col.begin(), grad_col.end(), 0.0f);
    for (std::size_t oc = 0; oc < out_c_; ++oc) {
      const float* g =
          grad_output.data().data() + (b * out_c_ + oc) * patches;
      float bias_acc = 0.0f;
      for (std::size_t p = 0; p < patches; ++p) bias_acc += g[p];
      grad_bias_[oc] += bias_acc;
      float* gw = &grad_weights_[oc * depth];
      const float* w = &weights_[oc * depth];
      for (std::size_t q = 0; q < depth; ++q) {
        const float* src = col.data() + q * patches;
        float* gcol = grad_col.data() + q * patches;
        const float wq = w[q];
        float acc = 0.0f;
        for (std::size_t p = 0; p < patches; ++p) {
          acc += g[p] * src[p];
          gcol[p] += wq * g[p];
        }
        gw[q] += acc;
      }
    }
    col2im_accumulate(grad_col.data(), in_c_, ih, iw, kernel_, stride_,
                      padding_, oh, ow,
                      grad_input.data().data() + b * in_c_ * ih * iw);
  }
  return grad_input;
}

void Conv2D::apply_gradients(float learning_rate) {
  i8_panel_.reset();
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    weights_[i] -= learning_rate * grad_weights_[i];
    grad_weights_[i] = 0.0f;
  }
  for (std::size_t i = 0; i < bias_.size(); ++i) {
    bias_[i] -= learning_rate * grad_bias_[i];
    grad_bias_[i] = 0.0f;
  }
}

std::size_t Conv2D::parameter_count() const noexcept {
  return weights_.size() + bias_.size();
}

void Conv2D::visit_parameters(const ParameterVisitor& visit) {
  i8_panel_.reset();  // mutable spans — see Dense::visit_parameters
  visit(weights_);
  visit(bias_);
}

void Conv2D::visit_gradients(const GradientVisitor& visit) {
  i8_panel_.reset();
  visit(weights_, grad_weights_);
  visit(bias_, grad_bias_);
}

// ------------------------------------------------------- DepthwiseConv2D

DepthwiseConv2D::DepthwiseConv2D(std::size_t channels, std::size_t kernel,
                                 std::size_t stride, std::size_t padding,
                                 Rng& rng)
    : channels_(channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      weights_(channels * kernel * kernel),
      bias_(channels, 0.0f),
      grad_weights_(weights_.size(), 0.0f),
      grad_bias_(channels, 0.0f) {
  he_init(weights_, kernel_ * kernel_, rng);
}

Tensor DepthwiseConv2D::forward(const Tensor& input) {
  assert(input.rank() == 4 && input.dim(1) == channels_);
  if (compute_backend() == ComputeBackend::kReference)
    return forward_reference(input);
  cached_input_ = input;
  const std::size_t batch = input.dim(0);
  const std::size_t ih = input.dim(2), iw = input.dim(3);
  const std::size_t oh = conv_output_extent(ih, kernel_, stride_, padding_);
  const std::size_t ow = conv_output_extent(iw, kernel_, stride_, padding_);
  const std::size_t patches = oh * ow;
  const std::size_t k2 = kernel_ * kernel_;
  Tensor out = Tensor::uninitialized({batch, channels_, oh, ow});
  // One (1 x k2) · (k2 x patches) GEMM per channel: each channel is its
  // own single-filter convolution, so its im2col has depth k2.
  for_each_sample(batch, [&](std::size_t b) {
    auto& col = tls_workspace(0, k2 * patches);
    for (std::size_t c = 0; c < channels_; ++c) {
      im2col(input.data().data() + (b * channels_ + c) * ih * iw, 1, ih, iw,
             kernel_, stride_, padding_, oh, ow, col.data());
      float* dst = out.data().data() + (b * channels_ + c) * patches;
      std::fill(dst, dst + patches, bias_[c]);
      gemm::multiply(&weights_[c * k2], k2, gemm::Op::kNone, col.data(),
                     patches, gemm::Op::kNone, dst, patches, 1, patches, k2,
                     compute_pool());
    }
  });
  return out;
}

Tensor DepthwiseConv2D::backward(const Tensor& grad_output) {
  if (compute_backend() == ComputeBackend::kReference)
    return backward_reference(grad_output);
  const Tensor& input = cached_input_;
  const std::size_t batch = input.dim(0);
  const std::size_t ih = input.dim(2), iw = input.dim(3);
  const std::size_t oh = grad_output.dim(2), ow = grad_output.dim(3);
  const std::size_t patches = oh * ow;
  const std::size_t k2 = kernel_ * kernel_;
  Tensor grad_input(input.shape());
  // As in Conv2D::backward, every slot is overwritten — resize, no fill.
  grad_w_scratch_.resize(batch * channels_ * k2);
  grad_b_scratch_.resize(batch * channels_);
  for_each_sample(batch, [&](std::size_t b) {
    auto& col = tls_workspace(0, k2 * patches);
    auto& grad_col = tls_workspace(1, k2 * patches);
    for (std::size_t c = 0; c < channels_; ++c) {
      im2col(input.data().data() + (b * channels_ + c) * ih * iw, 1, ih, iw,
             kernel_, stride_, padding_, oh, ow, col.data());
      const float* g =
          grad_output.data().data() + (b * channels_ + c) * patches;
      // Per-sample filter partial, computed as col (k2 x patches) · g^T
      // (patches x 1): the k2-vector result is the same either way, but
      // this orientation streams col through the kernel unpacked and
      // fills a k2-row register tile instead of a single row.
      gemm::multiply(col.data(), patches, gemm::Op::kNone, g, patches,
                     gemm::Op::kTranspose,
                     grad_w_scratch_.data() + (b * channels_ + c) * k2, 1,
                     k2, 1, patches, compute_pool(), /*accumulate=*/false);
      // grad_col = w_c^T (k2 x 1) · g (1 x patches), scattered back
      // (overwriting, so the workspace needs no zero fill).
      gemm::multiply(&weights_[c * k2], k2, gemm::Op::kTranspose, g,
                     patches, gemm::Op::kNone, grad_col.data(), patches, k2,
                     patches, 1, compute_pool(), /*accumulate=*/false);
      float acc = 0.0f;
      for (std::size_t p = 0; p < patches; ++p) acc += g[p];
      grad_b_scratch_[b * channels_ + c] = acc;
      col2im_accumulate(grad_col.data(), 1, ih, iw, kernel_, stride_,
                        padding_, oh, ow,
                        grad_input.data().data() +
                            (b * channels_ + c) * ih * iw);
    }
  });
  for (std::size_t b = 0; b < batch; ++b) {
    const float* gw = grad_w_scratch_.data() + b * channels_ * k2;
    for (std::size_t i = 0; i < channels_ * k2; ++i) grad_weights_[i] += gw[i];
    for (std::size_t c = 0; c < channels_; ++c)
      grad_bias_[c] += grad_b_scratch_[b * channels_ + c];
  }
  return grad_input;
}

Tensor DepthwiseConv2D::forward_reference(const Tensor& input) {
  cached_input_ = input;
  const std::size_t batch = input.dim(0);
  const std::size_t ih = input.dim(2), iw = input.dim(3);
  const std::size_t oh = conv_output_extent(ih, kernel_, stride_, padding_);
  const std::size_t ow = conv_output_extent(iw, kernel_, stride_, padding_);
  Tensor out({batch, channels_, oh, ow});
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t c = 0; c < channels_; ++c) {
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
          float acc = bias_[c];
          for (std::size_t ky = 0; ky < kernel_; ++ky) {
            const std::ptrdiff_t iy =
                static_cast<std::ptrdiff_t>(oy * stride_ + ky) -
                static_cast<std::ptrdiff_t>(padding_);
            if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(ih)) continue;
            for (std::size_t kx = 0; kx < kernel_; ++kx) {
              const std::ptrdiff_t ix =
                  static_cast<std::ptrdiff_t>(ox * stride_ + kx) -
                  static_cast<std::ptrdiff_t>(padding_);
              if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(iw)) continue;
              acc += weights_[(c * kernel_ + ky) * kernel_ + kx] *
                     input.at(b, c, static_cast<std::size_t>(iy),
                              static_cast<std::size_t>(ix));
            }
          }
          out.at(b, c, oy, ox) = acc;
        }
      }
    }
  }
  return out;
}

Tensor DepthwiseConv2D::backward_reference(const Tensor& grad_output) {
  const Tensor& input = cached_input_;
  const std::size_t batch = input.dim(0);
  const std::size_t ih = input.dim(2), iw = input.dim(3);
  const std::size_t oh = grad_output.dim(2), ow = grad_output.dim(3);
  Tensor grad_input(input.shape());
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t c = 0; c < channels_; ++c) {
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
          const float g = grad_output.at(b, c, oy, ox);
          grad_bias_[c] += g;
          for (std::size_t ky = 0; ky < kernel_; ++ky) {
            const std::ptrdiff_t iy =
                static_cast<std::ptrdiff_t>(oy * stride_ + ky) -
                static_cast<std::ptrdiff_t>(padding_);
            if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(ih)) continue;
            for (std::size_t kx = 0; kx < kernel_; ++kx) {
              const std::ptrdiff_t ix =
                  static_cast<std::ptrdiff_t>(ox * stride_ + kx) -
                  static_cast<std::ptrdiff_t>(padding_);
              if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(iw)) continue;
              const std::size_t widx = (c * kernel_ + ky) * kernel_ + kx;
              grad_weights_[widx] +=
                  g * input.at(b, c, static_cast<std::size_t>(iy),
                               static_cast<std::size_t>(ix));
              grad_input.at(b, c, static_cast<std::size_t>(iy),
                            static_cast<std::size_t>(ix)) +=
                  g * weights_[widx];
            }
          }
        }
      }
    }
  }
  return grad_input;
}

void DepthwiseConv2D::apply_gradients(float learning_rate) {
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    weights_[i] -= learning_rate * grad_weights_[i];
    grad_weights_[i] = 0.0f;
  }
  for (std::size_t i = 0; i < bias_.size(); ++i) {
    bias_[i] -= learning_rate * grad_bias_[i];
    grad_bias_[i] = 0.0f;
  }
}

std::size_t DepthwiseConv2D::parameter_count() const noexcept {
  return weights_.size() + bias_.size();
}

void DepthwiseConv2D::visit_parameters(const ParameterVisitor& visit) {
  visit(weights_);
  visit(bias_);
}

void DepthwiseConv2D::visit_gradients(const GradientVisitor& visit) {
  visit(weights_, grad_weights_);
  visit(bias_, grad_bias_);
}

// ------------------------------------------------------------------ ReLU

// The seed implementation: deep-copy the input and branch on it in
// backward. Kept as the kReference baseline (bench/perf_nn.cpp measures
// the GEMM path against it).
Tensor ReLU::forward_reference(const Tensor& input) {
  cached_input_ = input;
  Tensor out(input.shape());
  for (std::size_t i = 0; i < input.size(); ++i)
    out[i] = input[i] > 0.0f ? input[i] : 0.0f;
  return out;
}

Tensor ReLU::forward(const Tensor& input) {
  used_reference_ = compute_backend() == ComputeBackend::kReference;
  if (used_reference_) return forward_reference(input);
  // backward() only needs the sign of each activation, so cache a byte
  // mask instead of a deep copy of the input (4x less memory traffic on
  // the largest tensors in a CNN).
  cached_shape_ = input.shape();
  mask_.resize(input.size());
  Tensor out(input.shape());
  const float* in = input.data().data();
  float* o = out.data().data();
  for (std::size_t i = 0; i < input.size(); ++i) {
    const bool pos = in[i] > 0.0f;
    mask_[i] = pos;
    o[i] = pos ? in[i] : 0.0f;
  }
  return out;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  if (used_reference_) {
    Tensor grad_input(cached_input_.shape());
    for (std::size_t i = 0; i < grad_output.size(); ++i)
      grad_input[i] = cached_input_[i] > 0.0f ? grad_output[i] : 0.0f;
    return grad_input;
  }
  Tensor grad_input = Tensor::uninitialized(cached_shape_);
  const float* g = grad_output.data().data();
  float* gi = grad_input.data().data();
  for (std::size_t i = 0; i < grad_output.size(); ++i)
    gi[i] = mask_[i] ? g[i] : 0.0f;
  return grad_input;
}

// ------------------------------------------------------------- MaxPool2D

Tensor MaxPool2D::forward(const Tensor& input) {
  assert(input.rank() == 4);
  input_shape_ = input.shape();
  const std::size_t batch = input.dim(0), channels = input.dim(1);
  const std::size_t ih = input.dim(2), iw = input.dim(3);
  const std::size_t oh = ih / window_, ow = iw / window_;
  Tensor out = Tensor::uninitialized({batch, channels, oh, ow});
  argmax_.assign(out.size(), 0);
  if (compute_backend() == ComputeBackend::kReference) {
    // Seed loops, preserved as the kReference baseline. Identical output
    // and argmax records — only the indexing differs from the fast path.
    std::size_t flat = 0;
    for (std::size_t b = 0; b < batch; ++b) {
      for (std::size_t c = 0; c < channels; ++c) {
        for (std::size_t oy = 0; oy < oh; ++oy) {
          for (std::size_t ox = 0; ox < ow; ++ox, ++flat) {
            float best = -std::numeric_limits<float>::infinity();
            std::size_t best_idx = 0;
            for (std::size_t wy = 0; wy < window_; ++wy) {
              for (std::size_t wx = 0; wx < window_; ++wx) {
                const std::size_t iy = oy * window_ + wy;
                const std::size_t ix = ox * window_ + wx;
                const std::size_t idx =
                    ((b * channels + c) * ih + iy) * iw + ix;
                const float v = input[idx];
                if (v > best) {
                  best = v;
                  best_idx = idx;
                }
              }
            }
            out[flat] = best;
            argmax_[flat] = best_idx;
          }
        }
      }
    }
    return out;
  }
  const float* in = input.data().data();
  float* o = out.data().data();
  std::size_t flat = 0;
  for (std::size_t plane = 0; plane < batch * channels; ++plane) {
    const std::size_t plane_base = plane * ih * iw;
    for (std::size_t oy = 0; oy < oh; ++oy) {
      for (std::size_t ox = 0; ox < ow; ++ox, ++flat) {
        float best = -std::numeric_limits<float>::infinity();
        std::size_t best_idx = 0;
        std::size_t idx = plane_base + (oy * window_) * iw + ox * window_;
        for (std::size_t wy = 0; wy < window_; ++wy, idx += iw - window_) {
          for (std::size_t wx = 0; wx < window_; ++wx, ++idx) {
            const float v = in[idx];
            if (v > best) {
              best = v;
              best_idx = idx;
            }
          }
        }
        o[flat] = best;
        argmax_[flat] = best_idx;
      }
    }
  }
  return out;
}

Tensor MaxPool2D::backward(const Tensor& grad_output) {
  Tensor grad_input(input_shape_);
  for (std::size_t i = 0; i < grad_output.size(); ++i)
    grad_input[argmax_[i]] += grad_output[i];
  return grad_input;
}

// --------------------------------------------------------- GlobalAvgPool

Tensor GlobalAvgPool::forward(const Tensor& input) {
  assert(input.rank() == 4);
  input_shape_ = input.shape();
  const std::size_t batch = input.dim(0), channels = input.dim(1);
  const std::size_t area = input.dim(2) * input.dim(3);
  Tensor out({batch, channels});
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t c = 0; c < channels; ++c) {
      float acc = 0.0f;
      const std::size_t base = (b * channels + c) * area;
      for (std::size_t i = 0; i < area; ++i) acc += input[base + i];
      out.at(b, c) = acc / static_cast<float>(area);
    }
  }
  return out;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_output) {
  Tensor grad_input(input_shape_);
  const std::size_t channels = input_shape_[1];
  const std::size_t area = input_shape_[2] * input_shape_[3];
  const float scale = 1.0f / static_cast<float>(area);
  for (std::size_t b = 0; b < input_shape_[0]; ++b) {
    for (std::size_t c = 0; c < channels; ++c) {
      const float g = grad_output.at(b, c) * scale;
      const std::size_t base = (b * channels + c) * area;
      for (std::size_t i = 0; i < area; ++i) grad_input[base + i] = g;
    }
  }
  return grad_input;
}

// ---------------------------------------------------------------- Dropout

Dropout::Dropout(double rate, std::uint64_t seed)
    : rate_(rate), rng_(seed) {
  assert(rate >= 0.0 && rate < 1.0);
}

Tensor Dropout::forward(const Tensor& input) {
  if (!training_ || rate_ == 0.0) {
    mask_.clear();
    return input;
  }
  const float keep_scale = static_cast<float>(1.0 / (1.0 - rate_));
  mask_.resize(input.size());
  Tensor out(input.shape());
  for (std::size_t i = 0; i < input.size(); ++i) {
    mask_[i] = rng_.bernoulli(rate_) ? 0.0f : keep_scale;
    out[i] = input[i] * mask_[i];
  }
  return out;
}

Tensor Dropout::backward(const Tensor& grad_output) {
  if (mask_.empty()) return grad_output;  // eval mode: identity
  Tensor grad_input(grad_output.shape());
  for (std::size_t i = 0; i < grad_output.size(); ++i)
    grad_input[i] = grad_output[i] * mask_[i];
  return grad_input;
}

// ---------------------------------------------------------------- Flatten

Tensor Flatten::forward(const Tensor& input) {
  input_shape_ = input.shape();
  const std::size_t batch = input.dim(0);
  return input.reshaped({batch, input.size() / batch});
}

Tensor Flatten::backward(const Tensor& grad_output) {
  return grad_output.reshaped(input_shape_);
}

}  // namespace cea::nn
