#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "nn/gemm.h"
#include "nn/tensor.h"
#include "util/rng.h"

namespace cea::nn {

/// Callback receiving each mutable parameter block of a layer (weights,
/// then biases). Used by serialization and quantization.
using ParameterVisitor = std::function<void(std::span<float>)>;

/// Callback receiving a parameter block together with its accumulated
/// gradient block. Used by the optimizers in nn/optimizer.h; the callee is
/// expected to update the parameters and zero the gradients.
using GradientVisitor =
    std::function<void(std::span<float> params, std::span<float> grads)>;

/// Base class for differentiable layers.
///
/// forward() caches whatever backward() needs; backward() accumulates
/// parameter gradients internally and returns the gradient with respect to
/// the layer input. apply_gradients() performs one SGD step and clears the
/// accumulated gradients.
class Layer {
 public:
  virtual ~Layer() = default;

  virtual Tensor forward(const Tensor& input) = 0;
  virtual Tensor backward(const Tensor& grad_output) = 0;
  virtual void apply_gradients(float learning_rate) { (void)learning_rate; }
  virtual std::size_t parameter_count() const noexcept { return 0; }
  virtual std::string name() const = 0;

  /// Visit every mutable parameter block (weights first, biases second).
  /// Parameter-free layers do not call the visitor.
  virtual void visit_parameters(const ParameterVisitor& visit) {
    (void)visit;
  }

  /// Visit (parameters, accumulated gradients) block pairs. The visitor
  /// owns the update; implementations must not modify either themselves.
  virtual void visit_gradients(const GradientVisitor& visit) { (void)visit; }

  /// Switch train/eval behaviour (Dropout). No-op for most layers.
  virtual void set_training(bool training) { (void)training; }

  /// Output-channel count of this layer's weight matrix, or 0 when the
  /// layer has none. Nonzero means parameter block 0 is a (channels x
  /// size/channels) row-major weight matrix whose rows quantize on
  /// per-channel grids — the contract quantize_model and the int8 panels
  /// share.
  virtual std::size_t output_channels() const noexcept { return 0; }
};

/// Fully connected layer: y = W x + b. Weights use He initialization.
///
/// Dense, Conv2D and DepthwiseConv2D run their forward AND backward
/// matrix products through the tiled SIMD GEMM layer (nn/gemm.h) by
/// default; the original seed loops are preserved behind
/// set_compute_backend(ComputeBackend::kReference) as a numeric oracle
/// and bench baseline.
class Dense final : public Layer {
 public:
  Dense(std::size_t in_features, std::size_t out_features, Rng& rng);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  void apply_gradients(float learning_rate) override;
  std::size_t parameter_count() const noexcept override;
  std::string name() const override { return "dense"; }
  void visit_parameters(const ParameterVisitor& visit) override;
  void visit_gradients(const GradientVisitor& visit) override;

  std::size_t in_features() const noexcept { return in_; }
  std::size_t out_features() const noexcept { return out_; }
  std::size_t output_channels() const noexcept override { return out_; }

 private:
  Tensor forward_reference(const Tensor& input);
  Tensor forward_int8(const Tensor& input);
  Tensor backward_reference(const Tensor& grad_output);

  std::size_t in_, out_;
  std::vector<float> weights_;  // out x in, row-major
  std::vector<float> bias_;
  std::vector<float> grad_weights_;
  std::vector<float> grad_bias_;
  Tensor cached_input_;
  // Lazily built int8 weight panel of the kGemmInt8 forward path; reset
  // whenever the weights may change (apply_gradients and the mutable
  // visitors) so a stale panel can never serve a fresh model.
  std::unique_ptr<gemm::Int8PackedB> i8_panel_;
};

/// 2-D convolution (NCHW), square kernel, configurable stride and padding.
class Conv2D final : public Layer {
 public:
  Conv2D(std::size_t in_channels, std::size_t out_channels,
         std::size_t kernel, std::size_t stride, std::size_t padding,
         Rng& rng);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  void apply_gradients(float learning_rate) override;
  std::size_t parameter_count() const noexcept override;
  std::string name() const override { return "conv2d"; }
  void visit_parameters(const ParameterVisitor& visit) override;
  void visit_gradients(const GradientVisitor& visit) override;
  std::size_t output_channels() const noexcept override { return out_c_; }

 private:
  Tensor forward_reference(const Tensor& input);
  Tensor forward_int8(const Tensor& input);
  Tensor backward_reference(const Tensor& grad_output);

  std::size_t in_c_, out_c_, kernel_, stride_, padding_;
  std::vector<float> weights_;  // out_c x in_c x k x k
  std::vector<float> bias_;
  std::vector<float> grad_weights_;
  std::vector<float> grad_bias_;
  Tensor cached_input_;
  // Per-sample (grad_weights, grad_bias) partials of the GEMM backward
  // path, reduced serially in sample order so pooled and serial runs stay
  // bit-identical. Kept as members so the workspace is reused across
  // minibatches instead of reallocated per call.
  std::vector<float> grad_w_scratch_;  // batch x out_c x depth
  std::vector<float> grad_b_scratch_;  // batch x out_c
  // Int8 panel of the (depth x out_c) transposed weight matrix (see
  // forward_int8); invalidated like Dense's.
  std::unique_ptr<gemm::Int8PackedB> i8_panel_;
};

/// Depthwise 3x3-style convolution: one filter per input channel
/// (the MobileNet V1 building block).
class DepthwiseConv2D final : public Layer {
 public:
  DepthwiseConv2D(std::size_t channels, std::size_t kernel, std::size_t stride,
                  std::size_t padding, Rng& rng);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  void apply_gradients(float learning_rate) override;
  std::size_t parameter_count() const noexcept override;
  std::string name() const override { return "depthwise_conv2d"; }
  void visit_parameters(const ParameterVisitor& visit) override;
  void visit_gradients(const GradientVisitor& visit) override;
  /// Per-channel quantization grids only — DepthwiseConv2D has no int8
  /// compute path (k = kernel*kernel inner products are too short to
  /// amortize quantization) and runs fp32 under kGemmInt8.
  std::size_t output_channels() const noexcept override { return channels_; }

 private:
  Tensor forward_reference(const Tensor& input);
  Tensor backward_reference(const Tensor& grad_output);

  std::size_t channels_, kernel_, stride_, padding_;
  std::vector<float> weights_;  // channels x k x k
  std::vector<float> bias_;
  std::vector<float> grad_weights_;
  std::vector<float> grad_bias_;
  Tensor cached_input_;
  // Per-sample gradient partials of the GEMM backward path (see Conv2D).
  std::vector<float> grad_w_scratch_;  // batch x channels x k x k
  std::vector<float> grad_b_scratch_;  // batch x channels
};

/// Elementwise rectified linear unit.
class ReLU final : public Layer {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "relu"; }

 private:
  Tensor forward_reference(const Tensor& input);

  // backward() only needs the activation signs, so the default path
  // caches a byte mask rather than a copy of the input tensor. The
  // reference path keeps the seed's deep copy (cached_input_) so the
  // kReference baseline stays faithful; used_reference_ records which
  // cache the last forward() filled.
  std::vector<unsigned char> mask_;
  std::vector<std::size_t> cached_shape_;
  Tensor cached_input_;
  bool used_reference_ = false;
};

/// Max pooling with a square window; window == stride (non-overlapping).
class MaxPool2D final : public Layer {
 public:
  explicit MaxPool2D(std::size_t window) : window_(window) {}

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "maxpool2d"; }

 private:
  std::size_t window_;
  std::vector<std::size_t> argmax_;  // flat input index per output element
  std::vector<std::size_t> input_shape_;
};

/// Global average pooling: (B, C, H, W) -> (B, C).
class GlobalAvgPool final : public Layer {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "global_avg_pool"; }

 private:
  std::vector<std::size_t> input_shape_;
};

/// Inverted dropout: during training each activation is zeroed with
/// probability `rate` and survivors are scaled by 1/(1-rate), so inference
/// (eval mode) needs no rescaling. Toggle with set_training(); constructed
/// in training mode.
class Dropout final : public Layer {
 public:
  Dropout(double rate, std::uint64_t seed);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "dropout"; }

  void set_training(bool training) override { training_ = training; }
  bool training() const noexcept { return training_; }
  double rate() const noexcept { return rate_; }

 private:
  double rate_;
  Rng rng_;
  bool training_ = true;
  std::vector<float> mask_;  // keep-scale per element (0 or 1/(1-rate))
};

/// Flatten (B, C, H, W) -> (B, C*H*W).
class Flatten final : public Layer {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "flatten"; }

 private:
  std::vector<std::size_t> input_shape_;
};

}  // namespace cea::nn
