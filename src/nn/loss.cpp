#include "nn/loss.h"

#include <cassert>
#include <cmath>

#include "nn/model.h"

namespace cea::nn {

LossAndGrad softmax_cross_entropy(const Tensor& logits,
                                  std::span<const std::size_t> labels) {
  assert(logits.rank() == 2 && logits.dim(0) == labels.size());
  const std::size_t batch = logits.dim(0), classes = logits.dim(1);
  const Tensor probs = softmax(logits);
  LossAndGrad result;
  result.grad_logits = Tensor({batch, classes});
  double total = 0.0;
  const float inv_batch = 1.0f / static_cast<float>(batch);
  for (std::size_t b = 0; b < batch; ++b) {
    const std::size_t y = labels[b];
    assert(y < classes);
    total -= std::log(std::max(probs.at(b, y), 1e-12f));
    for (std::size_t c = 0; c < classes; ++c) {
      const float target = (c == y) ? 1.0f : 0.0f;
      result.grad_logits.at(b, c) = (probs.at(b, c) - target) * inv_batch;
    }
  }
  result.loss = total / static_cast<double>(batch);
  return result;
}

std::vector<double> squared_losses(const Tensor& probabilities,
                                   std::span<const std::size_t> labels) {
  assert(probabilities.rank() == 2 && probabilities.dim(0) == labels.size());
  const std::size_t batch = probabilities.dim(0);
  const std::size_t classes = probabilities.dim(1);
  std::vector<double> losses(batch, 0.0);
  for (std::size_t b = 0; b < batch; ++b) {
    double acc = 0.0;
    for (std::size_t c = 0; c < classes; ++c) {
      const double target = (c == labels[b]) ? 1.0 : 0.0;
      const double diff = probabilities.at(b, c) - target;
      acc += diff * diff;
    }
    losses[b] = acc;
  }
  return losses;
}

double accuracy(const Tensor& logits, std::span<const std::size_t> labels) {
  assert(logits.rank() == 2 && logits.dim(0) == labels.size());
  const std::size_t batch = logits.dim(0), classes = logits.dim(1);
  if (batch == 0) return 0.0;
  std::size_t correct = 0;
  for (std::size_t b = 0; b < batch; ++b) {
    std::size_t best = 0;
    for (std::size_t c = 1; c < classes; ++c)
      if (logits.at(b, c) > logits.at(b, best)) best = c;
    if (best == labels[b]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(batch);
}

}  // namespace cea::nn
