#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "nn/tensor.h"

namespace cea::nn {

/// Mean cross-entropy of softmax(logits) against integer labels, plus the
/// gradient with respect to the logits (softmax - onehot) / batch.
struct LossAndGrad {
  double loss = 0.0;
  Tensor grad_logits;
};

LossAndGrad softmax_cross_entropy(const Tensor& logits,
                                  std::span<const std::size_t> labels);

/// Per-sample squared loss between the softmax output and the one-hot label:
/// l_n(a, b) = || h_n(a) - onehot(b) ||^2 — the paper's inference loss
/// (Section II-A chooses the squared loss without loss of generality).
std::vector<double> squared_losses(const Tensor& probabilities,
                                   std::span<const std::size_t> labels);

/// Fraction of rows whose argmax matches the label.
double accuracy(const Tensor& logits, std::span<const std::size_t> labels);

}  // namespace cea::nn
