#include "nn/model.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace cea::nn {

Sequential& Sequential::add(std::unique_ptr<Layer> layer) {
  layers_.push_back(std::move(layer));
  return *this;
}

#if defined(CEA_TELEMETRY)
void Sequential::ensure_layer_metrics() {
  if (fwd_metrics_.size() == layers_.size()) return;
  fwd_metrics_.clear();
  bwd_metrics_.clear();
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    const std::string suffix =
        name_ + "." + std::to_string(i) + "." + layers_[i]->name();
    const char* fwd_label = obs::intern("nn.fwd." + suffix);
    const char* bwd_label = obs::intern("nn.bwd." + suffix);
    fwd_metrics_.push_back({obs::duration_histogram(fwd_label), fwd_label});
    bwd_metrics_.push_back({obs::duration_histogram(bwd_label), bwd_label});
  }
}
#endif

Tensor Sequential::forward(const Tensor& input) {
#if defined(CEA_TELEMETRY)
  ensure_layer_metrics();
#endif
  Tensor activation = input;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
#if defined(CEA_TELEMETRY)
    const obs::ScopedSpan span(fwd_metrics_[i].id, fwd_metrics_[i].label);
#endif
    activation = layers_[i]->forward(activation);
  }
  return activation;
}

void Sequential::backward(const Tensor& grad_logits) {
#if defined(CEA_TELEMETRY)
  ensure_layer_metrics();
#endif
  Tensor grad = grad_logits;
  for (std::size_t i = layers_.size(); i-- > 0;) {
#if defined(CEA_TELEMETRY)
    const obs::ScopedSpan span(bwd_metrics_[i].id, bwd_metrics_[i].label);
#endif
    grad = layers_[i]->backward(grad);
  }
}

void Sequential::apply_gradients(float learning_rate) {
  for (auto& layer : layers_) layer->apply_gradients(learning_rate);
}

Tensor softmax(const Tensor& logits) {
  assert(logits.rank() == 2);
  const std::size_t batch = logits.dim(0), classes = logits.dim(1);
  Tensor probs({batch, classes});
  for (std::size_t b = 0; b < batch; ++b) {
    float max_logit = logits.at(b, 0);
    for (std::size_t c = 1; c < classes; ++c)
      max_logit = std::max(max_logit, logits.at(b, c));
    float total = 0.0f;
    for (std::size_t c = 0; c < classes; ++c) {
      const float e = std::exp(logits.at(b, c) - max_logit);
      probs.at(b, c) = e;
      total += e;
    }
    for (std::size_t c = 0; c < classes; ++c) probs.at(b, c) /= total;
  }
  return probs;
}

Tensor Sequential::predict_proba(const Tensor& input) {
  return softmax(forward(input));
}

std::vector<std::size_t> Sequential::predict(const Tensor& input) {
  const Tensor logits = forward(input);
  const std::size_t batch = logits.dim(0), classes = logits.dim(1);
  std::vector<std::size_t> labels(batch, 0);
  for (std::size_t b = 0; b < batch; ++b) {
    std::size_t best = 0;
    for (std::size_t c = 1; c < classes; ++c)
      if (logits.at(b, c) > logits.at(b, best)) best = c;
    labels[b] = best;
  }
  return labels;
}

void Sequential::visit_parameters(const ParameterVisitor& visit) {
  for (auto& layer : layers_) layer->visit_parameters(visit);
}

void Sequential::visit_gradients(const GradientVisitor& visit) {
  for (auto& layer : layers_) layer->visit_gradients(visit);
}

void Sequential::set_training(bool training) {
  for (auto& layer : layers_) layer->set_training(training);
}

std::size_t Sequential::parameter_count() const noexcept {
  std::size_t total = 0;
  for (const auto& layer : layers_) total += layer->parameter_count();
  return total;
}

double Sequential::size_mb() const noexcept {
  return static_cast<double>(parameter_count()) * 4.0 / (1024.0 * 1024.0);
}

}  // namespace cea::nn
