#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/layers.h"
#include "nn/tensor.h"
#include "obs/telemetry.h"

namespace cea::nn {

/// A feed-forward stack of layers with a name and bookkeeping used by the
/// simulator (parameter count doubles as the model "size" W_n in the paper).
class Sequential {
 public:
  explicit Sequential(std::string name) : name_(std::move(name)) {}

  Sequential(Sequential&&) = default;
  Sequential& operator=(Sequential&&) = default;
  Sequential(const Sequential&) = delete;
  Sequential& operator=(const Sequential&) = delete;

  /// Append a layer; returns *this for chaining.
  Sequential& add(std::unique_ptr<Layer> layer);

  template <typename L, typename... Args>
  Sequential& emplace(Args&&... args) {
    return add(std::make_unique<L>(std::forward<Args>(args)...));
  }

  /// Forward pass producing logits (no softmax).
  Tensor forward(const Tensor& input);

  /// Backward pass from the loss gradient wrt logits.
  void backward(const Tensor& grad_logits);

  /// One SGD step on all layers; clears accumulated gradients.
  void apply_gradients(float learning_rate);

  /// Class probabilities: softmax over forward logits.
  Tensor predict_proba(const Tensor& input);

  /// Argmax class per batch row.
  std::vector<std::size_t> predict(const Tensor& input);

  const std::string& name() const noexcept { return name_; }
  std::size_t parameter_count() const noexcept;

  /// Visit every parameter block of every layer in order (see
  /// Layer::visit_parameters). Serialization and quantization build on this.
  void visit_parameters(const ParameterVisitor& visit);

  /// Visit (parameter, gradient) block pairs of every layer in order (see
  /// Layer::visit_gradients). The optimizers build on this.
  void visit_gradients(const GradientVisitor& visit);

  /// Switch every layer between training and evaluation behaviour
  /// (affects Dropout; a no-op for the other layers).
  void set_training(bool training);

  /// Model size in MB assuming 4-byte parameters — the W_n of the paper.
  double size_mb() const noexcept;

  std::size_t layer_count() const noexcept { return layers_.size(); }

  /// Direct access to layer i (0 <= i < layer_count()). Quantization uses
  /// this to pair each parameter block with its layer's channel layout.
  Layer& layer(std::size_t i) noexcept { return *layers_[i]; }
  const Layer& layer(std::size_t i) const noexcept { return *layers_[i]; }

 private:
#if defined(CEA_TELEMETRY)
  /// Per-layer duration histograms "nn.{fwd,bwd}.<model>.<i>.<layer>",
  /// built lazily on the first forward/backward after the layer list
  /// changes. Labels are interned so trace events can hold them by
  /// pointer beyond the model's lifetime.
  struct LayerMetric {
    obs::MetricId id = obs::kInvalidMetric;
    const char* label = nullptr;
  };
  void ensure_layer_metrics();
  std::vector<LayerMetric> fwd_metrics_, bwd_metrics_;
#endif

  std::string name_;
  std::vector<std::unique_ptr<Layer>> layers_;
};

/// Row-wise softmax of a (batch, classes) logits tensor.
Tensor softmax(const Tensor& logits);

}  // namespace cea::nn
