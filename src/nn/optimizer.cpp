#include "nn/optimizer.h"

#include <cassert>
#include <cmath>

namespace cea::nn {
namespace {

/// Ensure the state vector has one zero-filled buffer per visited block.
void ensure_state(std::vector<std::vector<float>>& state,
                  std::size_t block_index, std::size_t block_size) {
  if (state.size() <= block_index) state.resize(block_index + 1);
  if (state[block_index].size() != block_size)
    state[block_index].assign(block_size, 0.0f);
}

}  // namespace

SgdOptimizer::SgdOptimizer(float learning_rate, float weight_decay)
    : learning_rate_(learning_rate), weight_decay_(weight_decay) {
  assert(learning_rate > 0.0f);
}

void SgdOptimizer::step(Sequential& model) {
  model.visit_gradients([this](std::span<float> params,
                               std::span<float> grads) {
    for (std::size_t i = 0; i < params.size(); ++i) {
      params[i] -= learning_rate_ *
                   (grads[i] + weight_decay_ * params[i]);
      grads[i] = 0.0f;
    }
  });
}

MomentumOptimizer::MomentumOptimizer(float learning_rate, float momentum,
                                     float weight_decay)
    : learning_rate_(learning_rate),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  assert(learning_rate > 0.0f);
  assert(momentum >= 0.0f && momentum < 1.0f);
}

void MomentumOptimizer::step(Sequential& model) {
  std::size_t block = 0;
  model.visit_gradients([this, &block](std::span<float> params,
                                       std::span<float> grads) {
    ensure_state(velocity_, block, params.size());
    auto& velocity = velocity_[block];
    for (std::size_t i = 0; i < params.size(); ++i) {
      const float g = grads[i] + weight_decay_ * params[i];
      velocity[i] = momentum_ * velocity[i] + g;
      params[i] -= learning_rate_ * velocity[i];
      grads[i] = 0.0f;
    }
    ++block;
  });
}

AdamOptimizer::AdamOptimizer(float learning_rate, float beta1, float beta2,
                             float epsilon, float weight_decay)
    : learning_rate_(learning_rate),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon),
      weight_decay_(weight_decay) {
  assert(learning_rate > 0.0f);
  assert(beta1 >= 0.0f && beta1 < 1.0f);
  assert(beta2 >= 0.0f && beta2 < 1.0f);
}

void AdamOptimizer::step(Sequential& model) {
  ++steps_;
  const float bias1 =
      1.0f - std::pow(beta1_, static_cast<float>(steps_));
  const float bias2 =
      1.0f - std::pow(beta2_, static_cast<float>(steps_));
  std::size_t block = 0;
  model.visit_gradients([&](std::span<float> params, std::span<float> grads) {
    ensure_state(first_moment_, block, params.size());
    ensure_state(second_moment_, block, params.size());
    auto& m = first_moment_[block];
    auto& v = second_moment_[block];
    for (std::size_t i = 0; i < params.size(); ++i) {
      const float g = grads[i] + weight_decay_ * params[i];
      m[i] = beta1_ * m[i] + (1.0f - beta1_) * g;
      v[i] = beta2_ * v[i] + (1.0f - beta2_) * g * g;
      const float m_hat = m[i] / bias1;
      const float v_hat = v[i] / bias2;
      params[i] -= learning_rate_ * m_hat / (std::sqrt(v_hat) + epsilon_);
      grads[i] = 0.0f;
    }
    ++block;
  });
}

}  // namespace cea::nn
