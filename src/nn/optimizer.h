#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/model.h"

namespace cea::nn {

/// First-order optimizer over a Sequential model's parameters.
///
/// step() consumes the gradients accumulated by the model's backward pass
/// (zeroing them), applying one update. Optimizers keep per-block state
/// (momentum buffers, Adam moments) keyed by visitation order, which is
/// stable for a fixed architecture.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Apply one update using the accumulated gradients, then clear them.
  virtual void step(Sequential& model) = 0;

  virtual std::string name() const = 0;
};

/// Plain SGD: w -= lr * g, with optional decoupled weight decay.
class SgdOptimizer final : public Optimizer {
 public:
  explicit SgdOptimizer(float learning_rate, float weight_decay = 0.0f);

  void step(Sequential& model) override;
  std::string name() const override { return "sgd"; }

 private:
  float learning_rate_;
  float weight_decay_;
};

/// SGD with classical (heavy-ball) momentum:
///   v = mu * v + g;  w -= lr * v.
class MomentumOptimizer final : public Optimizer {
 public:
  MomentumOptimizer(float learning_rate, float momentum = 0.9f,
                    float weight_decay = 0.0f);

  void step(Sequential& model) override;
  std::string name() const override { return "momentum"; }

 private:
  float learning_rate_;
  float momentum_;
  float weight_decay_;
  std::vector<std::vector<float>> velocity_;
};

/// Adam (Kingma & Ba 2015) with bias correction.
class AdamOptimizer final : public Optimizer {
 public:
  AdamOptimizer(float learning_rate, float beta1 = 0.9f, float beta2 = 0.999f,
                float epsilon = 1e-8f, float weight_decay = 0.0f);

  void step(Sequential& model) override;
  std::string name() const override { return "adam"; }

  std::size_t steps_taken() const noexcept { return steps_; }

 private:
  float learning_rate_, beta1_, beta2_, epsilon_, weight_decay_;
  std::size_t steps_ = 0;
  std::vector<std::vector<float>> first_moment_;
  std::vector<std::vector<float>> second_moment_;
};

}  // namespace cea::nn
