#include "nn/quantize.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace cea::nn {

QuantizationReport quantize_model(Sequential& model, std::size_t bits) {
  assert(bits >= 2 && bits <= 16);
  QuantizationReport report;
  report.bits = bits;
  const double levels = std::pow(2.0, static_cast<double>(bits) - 1) - 1.0;
  double error_sum = 0.0;
  model.visit_parameters([&](std::span<float> block) {
    // Scale from finite values only: one stray inf would zero the whole
    // block, one NaN would poison it.
    float max_abs = 0.0f;
    for (float v : block)
      if (std::isfinite(v)) max_abs = std::max(max_abs, std::abs(v));
    report.parameter_count += block.size();
    if (max_abs == 0.0f) {
      for (float v : block)
        if (!std::isfinite(v)) ++report.skipped_non_finite;
      return;
    }
    const float scale = max_abs / static_cast<float>(levels);
    for (auto& v : block) {
      if (!std::isfinite(v)) {
        ++report.skipped_non_finite;
        continue;
      }
      const float q = std::round(v / scale) * scale;
      const double err = std::abs(static_cast<double>(q) - v);
      report.max_abs_error = std::max(report.max_abs_error, err);
      error_sum += err;
      v = q;
    }
  });
  const std::size_t quantized =
      report.parameter_count - report.skipped_non_finite;
  report.mean_abs_error =
      quantized > 0 ? error_sum / static_cast<double>(quantized) : 0.0;
  report.size_mb_before = quantized_size_mb(model, 32);
  report.size_mb = quantized_size_mb(model, bits);
  return report;
}

double quantized_size_mb(const Sequential& model, std::size_t bits) {
  return static_cast<double>(model.parameter_count()) *
         (static_cast<double>(bits) / 8.0) / (1024.0 * 1024.0);
}

}  // namespace cea::nn
