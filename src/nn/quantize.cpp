#include "nn/quantize.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace cea::nn {
namespace {

float finite_max_abs(std::span<const float> values) noexcept {
  // Scale from finite values only: one stray inf would zero the whole
  // block, one NaN would poison it.
  float max_abs = 0.0f;
  for (float v : values)
    if (std::isfinite(v)) max_abs = std::max(max_abs, std::abs(v));
  return max_abs;
}

/// Round one block (or channel) onto the symmetric grid of `scale`,
/// accumulating error stats. scale == 0 means the values had no finite
/// nonzero range — nothing to round, only non-finite entries to count.
void fake_quantize_span(std::span<float> values, float scale,
                        QuantizationReport& report, double& error_sum) {
  if (scale == 0.0f) {
    for (float v : values)
      if (!std::isfinite(v)) ++report.skipped_non_finite;
    return;
  }
  for (auto& v : values) {
    if (!std::isfinite(v)) {
      ++report.skipped_non_finite;
      continue;
    }
    const float q = std::round(v / scale) * scale;
    const double err = std::abs(static_cast<double>(q) - v);
    report.max_abs_error = std::max(report.max_abs_error, err);
    error_sum += err;
    v = q;
  }
}

}  // namespace

float symmetric_scale(float max_abs, std::size_t bits) noexcept {
  const float levels = static_cast<float>((1u << (bits - 1)) - 1u);
  return max_abs == 0.0f ? 0.0f : max_abs / levels;
}

std::vector<float> per_channel_scales(const float* weights,
                                      std::size_t channels,
                                      std::size_t per_channel,
                                      std::size_t bits) {
  std::vector<float> scales(channels);
  for (std::size_t c = 0; c < channels; ++c)
    scales[c] = symmetric_scale(
        finite_max_abs({weights + c * per_channel, per_channel}), bits);
  return scales;
}

QuantizationReport quantize_model(Sequential& model, std::size_t bits) {
  if (bits < 2 || bits > 16)
    throw std::invalid_argument(
        "quantize_model: bits must be in [2, 16], got " +
        std::to_string(bits));
  QuantizationReport report;
  report.bits = bits;
  double error_sum = 0.0;
  for (std::size_t i = 0; i < model.layer_count(); ++i) {
    Layer& layer = model.layer(i);
    const std::size_t channels = layer.output_channels();
    std::size_t block_index = 0;
    layer.visit_parameters([&](std::span<float> block) {
      report.parameter_count += block.size();
      // Block 0 of a channeled layer is its weight matrix (the
      // visit_parameters weights-then-biases contract): quantize it on
      // the same per-output-channel grids gemm::pack_b_i8 packs to int8.
      // Everything else (biases) keeps the original per-block grid.
      const bool weight_matrix =
          block_index++ == 0 && channels > 0 && block.size() > channels &&
          block.size() % channels == 0;
      if (weight_matrix) {
        const std::size_t per_channel = block.size() / channels;
        const std::vector<float> scales =
            per_channel_scales(block.data(), channels, per_channel, bits);
        for (std::size_t c = 0; c < channels; ++c)
          fake_quantize_span(block.subspan(c * per_channel, per_channel),
                             scales[c], report, error_sum);
      } else {
        fake_quantize_span(block, symmetric_scale(finite_max_abs(block), bits),
                           report, error_sum);
      }
    });
  }
  const std::size_t quantized =
      report.parameter_count - report.skipped_non_finite;
  report.mean_abs_error =
      quantized > 0 ? error_sum / static_cast<double>(quantized) : 0.0;
  report.size_mb_before = quantized_size_mb(model, 32);
  report.size_mb = quantized_size_mb(model, bits);
  return report;
}

double quantized_size_mb(const Sequential& model, std::size_t bits) {
  return static_cast<double>(model.parameter_count()) *
         (static_cast<double>(bits) / 8.0) / (1024.0 * 1024.0);
}

}  // namespace cea::nn
