#include "nn/quantize.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace cea::nn {

QuantizationReport quantize_model(Sequential& model, std::size_t bits) {
  assert(bits >= 2 && bits <= 16);
  QuantizationReport report;
  report.bits = bits;
  const double levels = std::pow(2.0, static_cast<double>(bits) - 1) - 1.0;
  double error_sum = 0.0;
  model.visit_parameters([&](std::span<float> block) {
    float max_abs = 0.0f;
    for (float v : block) max_abs = std::max(max_abs, std::abs(v));
    if (max_abs == 0.0f) {
      report.parameter_count += block.size();
      return;
    }
    const float scale = max_abs / static_cast<float>(levels);
    for (auto& v : block) {
      const float q = std::round(v / scale) * scale;
      const double err = std::abs(static_cast<double>(q) - v);
      report.max_abs_error = std::max(report.max_abs_error, err);
      error_sum += err;
      v = q;
    }
    report.parameter_count += block.size();
  });
  report.mean_abs_error =
      report.parameter_count > 0
          ? error_sum / static_cast<double>(report.parameter_count)
          : 0.0;
  report.size_mb = quantized_size_mb(model, bits);
  return report;
}

double quantized_size_mb(const Sequential& model, std::size_t bits) {
  return static_cast<double>(model.parameter_count()) *
         (static_cast<double>(bits) / 8.0) / (1024.0 * 1024.0);
}

}  // namespace cea::nn
