#pragma once

#include <cstddef>

#include "nn/model.h"

namespace cea::nn {

/// Result of quantizing a model's parameters.
struct QuantizationReport {
  std::size_t bits = 8;          ///< target bit width
  std::size_t parameter_count = 0;
  double size_mb_before = 0.0;   ///< size at float32 width, pre-quantization
  double size_mb = 0.0;          ///< size at the target width
  double max_abs_error = 0.0;    ///< worst per-parameter rounding error
  double mean_abs_error = 0.0;
  /// Parameters left untouched because they were NaN/Inf. Non-finite
  /// values would otherwise poison the per-block scale (max|v| = inf ->
  /// every other weight rounds to 0) or propagate NaN into the grid.
  std::size_t skipped_non_finite = 0;
};

/// Simulated post-training quantization: every parameter block is rounded
/// to a symmetric per-block int grid of the given bit width (weights stay
/// float so the unmodified inference path exercises the quantized values —
/// "fake quantization", the standard QAT evaluation trick).
///
/// This implements the paper's future-work direction of supporting large
/// models at the edge "via quantization-aware carbon or energy control":
/// a quantized variant is a new arm with ~bits/32 of the size (less
/// transfer energy F_{i,n}) and a slightly worse loss distribution; the
/// controller can then trade accuracy against carbon. See
/// bench/ext_quantization.
///
/// `bits` must be in [2, 16].
QuantizationReport quantize_model(Sequential& model, std::size_t bits);

/// Model size in MB at a given bit width (4-byte floats -> bits/32 scale).
double quantized_size_mb(const Sequential& model, std::size_t bits);

}  // namespace cea::nn
