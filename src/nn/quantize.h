#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "nn/model.h"

namespace cea::nn {

/// Result of quantizing a model's parameters.
struct QuantizationReport {
  std::size_t bits = 8;          ///< target bit width
  std::size_t parameter_count = 0;
  double size_mb_before = 0.0;   ///< size at float32 width, pre-quantization
  double size_mb = 0.0;          ///< size at the target width
  double max_abs_error = 0.0;    ///< worst per-parameter rounding error
  double mean_abs_error = 0.0;
  /// Parameters left untouched because they were NaN/Inf. Non-finite
  /// values would otherwise poison the per-block scale (max|v| = inf ->
  /// every other weight rounds to 0) or propagate NaN into the grid.
  std::size_t skipped_non_finite = 0;
};

/// Symmetric quantization step for a value range of the given max
/// magnitude: max_abs / (2^(bits-1) - 1). The one scale formula every
/// quantization path shares — the fake-quant grid of quantize_model and
/// the real int8 weight panels of gemm::pack_b_i8 both round onto grids
/// produced by this function, so the two arms see the same weights.
float symmetric_scale(float max_abs, std::size_t bits) noexcept;

/// Per-output-channel symmetric scales of a (channels x per_channel)
/// row-major weight matrix: scales[c] = symmetric_scale(max finite
/// |row c|, bits). Non-finite entries are excluded from the max (they
/// would zero or poison the whole channel); an all-zero or all-non-finite
/// channel gets scale 0.
std::vector<float> per_channel_scales(const float* weights,
                                      std::size_t channels,
                                      std::size_t per_channel,
                                      std::size_t bits);

/// Simulated post-training quantization: weight matrices are rounded to
/// symmetric per-output-channel int grids of the given bit width (biases
/// and other blocks use one per-block grid); values stay float so the
/// unmodified inference path exercises the quantized values — "fake
/// quantization", the standard QAT evaluation trick. The per-channel
/// grids are exactly the ones gemm::pack_b_i8 packs into real int8
/// panels, so a fake-quantized model and its kGemmInt8 twin share
/// weights (see per_channel_scales).
///
/// This implements the paper's future-work direction of supporting large
/// models at the edge "via quantization-aware carbon or energy control":
/// a quantized variant is a new arm with ~bits/32 of the size (less
/// transfer energy F_{i,n}) and a slightly worse loss distribution; the
/// controller can then trade accuracy against carbon. See
/// bench/ext_quantization.
///
/// `bits` must be in [2, 16]; throws std::invalid_argument otherwise.
QuantizationReport quantize_model(Sequential& model, std::size_t bits);

/// Model size in MB at a given bit width (4-byte floats -> bits/32 scale).
double quantized_size_mb(const Sequential& model, std::size_t bits);

}  // namespace cea::nn
