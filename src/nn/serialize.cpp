#include "nn/serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace cea::nn {
namespace {

constexpr char kMagic[4] = {'C', 'E', 'N', 'N'};
constexpr std::uint32_t kVersion = 1;

void write_u32(std::ostream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint32_t read_u32(std::istream& in) {
  std::uint32_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}

}  // namespace

void save_model(Sequential& model, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_model: cannot open " + path);
  out.write(kMagic, sizeof(kMagic));
  write_u32(out, kVersion);
  write_u32(out, static_cast<std::uint32_t>(model.name().size()));
  out.write(model.name().data(),
            static_cast<std::streamsize>(model.name().size()));
  write_u32(out, static_cast<std::uint32_t>(model.parameter_count()));
  model.visit_parameters([&out](std::span<float> block) {
    out.write(reinterpret_cast<const char*>(block.data()),
              static_cast<std::streamsize>(block.size() * sizeof(float)));
  });
  if (!out) throw std::runtime_error("save_model: write failed for " + path);
}

void load_model(Sequential& model, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_model: cannot open " + path);
  char magic[4] = {};
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    throw std::runtime_error("load_model: bad magic in " + path);
  const std::uint32_t version = read_u32(in);
  if (version != kVersion)
    throw std::runtime_error("load_model: unsupported version in " + path);
  const std::uint32_t name_len = read_u32(in);
  std::vector<char> stored_name(name_len);
  in.read(stored_name.data(), name_len);
  const std::uint32_t stored_params = read_u32(in);
  if (!in) throw std::runtime_error("load_model: truncated header in " + path);
  if (stored_params != model.parameter_count()) {
    throw std::runtime_error(
        "load_model: parameter-count mismatch (" +
        std::to_string(stored_params) + " stored vs " +
        std::to_string(model.parameter_count()) + " in model)");
  }
  model.visit_parameters([&in, &path](std::span<float> block) {
    in.read(reinterpret_cast<char*>(block.data()),
            static_cast<std::streamsize>(block.size() * sizeof(float)));
    if (!in)
      throw std::runtime_error("load_model: truncated payload in " + path);
  });
}

}  // namespace cea::nn
