#pragma once

#include <string>

#include "nn/model.h"

namespace cea::nn {

/// Save a model's parameters to a binary checkpoint.
///
/// Format: magic "CENN", format version, model-name length + bytes, total
/// parameter count, then all parameter blocks as little-endian float32 in
/// visit_parameters order. The architecture itself is NOT serialized: the
/// loader must supply a structurally identical model (the usual
/// state-dict convention).
///
/// Throws std::runtime_error on I/O failure.
void save_model(Sequential& model, const std::string& path);

/// Load parameters saved by save_model into a structurally identical model.
/// Throws std::runtime_error on I/O failure, bad magic/version, or
/// parameter-count mismatch. The stored model name is informational only
/// and not required to match.
void load_model(Sequential& model, const std::string& path);

}  // namespace cea::nn
