#include "nn/tensor.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace cea::nn {

std::size_t Tensor::shape_size(const std::vector<std::size_t>& shape) noexcept {
  std::size_t n = 1;
  for (std::size_t d : shape) n *= d;
  return shape.empty() ? 0 : n;
}

Tensor::Tensor(std::vector<std::size_t> shape)
    : shape_(std::move(shape)), data_(shape_size(shape_), 0.0f) {}

Tensor Tensor::uninitialized(std::vector<std::size_t> shape) {
  Tensor t;
  t.shape_ = std::move(shape);
  t.data_.resize(shape_size(t.shape_));  // default-init: no zero pass
  return t;
}

Tensor Tensor::reshaped(std::vector<std::size_t> new_shape) const {
  // Checked in every build type: a silent element-count mismatch here
  // corrupts downstream indexing in ways that are hard to trace back.
  if (shape_size(new_shape) != size()) {
    std::fprintf(stderr,
                 "Tensor::reshaped: new shape has %zu elements, tensor %s "
                 "has %zu\n",
                 shape_size(new_shape), shape_string().c_str(), size());
    std::abort();
  }
  Tensor out;
  out.shape_ = std::move(new_shape);
  out.data_ = data_;
  return out;
}

void Tensor::fill(float value) noexcept {
  std::fill(data_.begin(), data_.end(), value);
}

std::string Tensor::shape_string() const {
  std::ostringstream ss;
  ss << '(';
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i > 0) ss << ", ";
    ss << shape_[i];
  }
  ss << ')';
  return ss.str();
}

}  // namespace cea::nn
