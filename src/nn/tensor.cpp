#include "nn/tensor.h"

#include <algorithm>
#include <sstream>

namespace cea::nn {

std::size_t Tensor::shape_size(const std::vector<std::size_t>& shape) noexcept {
  std::size_t n = 1;
  for (std::size_t d : shape) n *= d;
  return shape.empty() ? 0 : n;
}

Tensor::Tensor(std::vector<std::size_t> shape)
    : shape_(std::move(shape)), data_(shape_size(shape_), 0.0f) {}

Tensor Tensor::reshaped(std::vector<std::size_t> new_shape) const {
  assert(shape_size(new_shape) == size());
  Tensor out;
  out.shape_ = std::move(new_shape);
  out.data_ = data_;
  return out;
}

void Tensor::fill(float value) noexcept {
  std::fill(data_.begin(), data_.end(), value);
}

std::string Tensor::shape_string() const {
  std::ostringstream ss;
  ss << '(';
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i > 0) ss << ", ";
    ss << shape_[i];
  }
  ss << ')';
  return ss.str();
}

}  // namespace cea::nn
