#pragma once

#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace cea::nn {

/// Dense row-major float tensor with a dynamic shape.
///
/// Conventions used throughout the nn library:
///  * images/activations: (batch, channels, height, width)
///  * flattened features:  (batch, features)
/// The tensor owns its storage; copies are deep (value semantics).
class Tensor {
 public:
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(std::vector<std::size_t> shape);
  Tensor(std::initializer_list<std::size_t> shape)
      : Tensor(std::vector<std::size_t>(shape)) {}

  const std::vector<std::size_t>& shape() const noexcept { return shape_; }
  std::size_t rank() const noexcept { return shape_.size(); }
  std::size_t dim(std::size_t i) const noexcept { return shape_[i]; }
  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }

  std::span<float> data() noexcept { return data_; }
  std::span<const float> data() const noexcept { return data_; }

  float& operator[](std::size_t i) noexcept { return data_[i]; }
  float operator[](std::size_t i) const noexcept { return data_[i]; }

  /// 2-D accessor (batch, feature).
  float& at(std::size_t b, std::size_t f) noexcept {
    return data_[b * shape_[1] + f];
  }
  float at(std::size_t b, std::size_t f) const noexcept {
    return data_[b * shape_[1] + f];
  }

  /// 4-D accessor (batch, channel, row, col).
  float& at(std::size_t b, std::size_t c, std::size_t y, std::size_t x) noexcept {
    return data_[((b * shape_[1] + c) * shape_[2] + y) * shape_[3] + x];
  }
  float at(std::size_t b, std::size_t c, std::size_t y, std::size_t x) const noexcept {
    return data_[((b * shape_[1] + c) * shape_[2] + y) * shape_[3] + x];
  }

  /// Reinterpret to a new shape with the same element count.
  Tensor reshaped(std::vector<std::size_t> new_shape) const;

  void fill(float value) noexcept;

  /// "(2, 3, 28, 28)" — for error messages.
  std::string shape_string() const;

  static std::size_t shape_size(const std::vector<std::size_t>& shape) noexcept;

 private:
  std::vector<std::size_t> shape_;
  std::vector<float> data_;
};

}  // namespace cea::nn
