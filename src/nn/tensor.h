#pragma once

#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace cea::nn {

namespace detail {

/// Allocator whose value-initialization is default-initialization: a
/// resize() on a vector using it leaves new floats uninitialized instead
/// of zeroing them. Tensor uses it so Tensor::uninitialized() can skip
/// the zero pass; explicit fills (assign, fill) behave as usual.
template <typename T>
class DefaultInitAllocator : public std::allocator<T> {
 public:
  template <typename U>
  struct rebind {
    using other = DefaultInitAllocator<U>;
  };

  using std::allocator<T>::allocator;

  template <typename U, typename... Args>
  void construct(U* p, Args&&... args) {
    if constexpr (sizeof...(Args) == 0)
      ::new (static_cast<void*>(p)) U;
    else
      ::new (static_cast<void*>(p)) U(std::forward<Args>(args)...);
  }
};

}  // namespace detail

/// Dense row-major float tensor with a dynamic shape.
///
/// Conventions used throughout the nn library:
///  * images/activations: (batch, channels, height, width)
///  * flattened features:  (batch, features)
/// The tensor owns its storage; copies are deep (value semantics).
class Tensor {
 public:
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(std::vector<std::size_t> shape);
  Tensor(std::initializer_list<std::size_t> shape)
      : Tensor(std::vector<std::size_t>(shape)) {}

  /// Tensor whose elements are NOT initialized. Only for callers that
  /// provably overwrite every element before it is read (e.g. a layer
  /// output filled by an overwriting GEMM) — reading an element first is
  /// undefined behavior, exactly as with a malloc'd buffer.
  static Tensor uninitialized(std::vector<std::size_t> shape);

  const std::vector<std::size_t>& shape() const noexcept { return shape_; }
  std::size_t rank() const noexcept { return shape_.size(); }
  std::size_t dim(std::size_t i) const noexcept { return shape_[i]; }
  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }

  std::span<float> data() noexcept { return data_; }
  std::span<const float> data() const noexcept { return data_; }

  float& operator[](std::size_t i) noexcept {
    assert(i < data_.size());
    return data_[i];
  }
  float operator[](std::size_t i) const noexcept {
    assert(i < data_.size());
    return data_[i];
  }

  /// 2-D accessor (batch, feature).
  float& at(std::size_t b, std::size_t f) noexcept {
    assert(rank() == 2 && b < shape_[0] && f < shape_[1]);
    return data_[b * shape_[1] + f];
  }
  float at(std::size_t b, std::size_t f) const noexcept {
    assert(rank() == 2 && b < shape_[0] && f < shape_[1]);
    return data_[b * shape_[1] + f];
  }

  /// 4-D accessor (batch, channel, row, col).
  float& at(std::size_t b, std::size_t c, std::size_t y, std::size_t x) noexcept {
    assert(rank() == 4 && b < shape_[0] && c < shape_[1] && y < shape_[2] &&
           x < shape_[3]);
    return data_[((b * shape_[1] + c) * shape_[2] + y) * shape_[3] + x];
  }
  float at(std::size_t b, std::size_t c, std::size_t y, std::size_t x) const noexcept {
    assert(rank() == 4 && b < shape_[0] && c < shape_[1] && y < shape_[2] &&
           x < shape_[3]);
    return data_[((b * shape_[1] + c) * shape_[2] + y) * shape_[3] + x];
  }

  /// Reinterpret to a new shape with the same element count.
  Tensor reshaped(std::vector<std::size_t> new_shape) const;

  void fill(float value) noexcept;

  /// "(2, 3, 28, 28)" — for error messages.
  std::string shape_string() const;

  static std::size_t shape_size(const std::vector<std::size_t>& shape) noexcept;

 private:
  std::vector<std::size_t> shape_;
  std::vector<float, detail::DefaultInitAllocator<float>> data_;
};

}  // namespace cea::nn
