#include "nn/train.h"

#include <algorithm>
#include <cassert>

#include "nn/loss.h"
#include "nn/optimizer.h"
#include "obs/telemetry.h"

namespace cea::nn {

Tensor gather_rows(const Tensor& samples, std::span<const std::size_t> indices) {
  assert(samples.rank() >= 2);
  const std::size_t row_size = samples.size() / samples.dim(0);
  std::vector<std::size_t> shape = samples.shape();
  shape[0] = indices.size();
  Tensor out(shape);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    assert(indices[i] < samples.dim(0));
    const auto src = samples.data().subspan(indices[i] * row_size, row_size);
    std::copy(src.begin(), src.end(), out.data().begin() + i * row_size);
  }
  return out;
}

std::vector<std::size_t> gather_labels(std::span<const std::size_t> labels,
                                       std::span<const std::size_t> indices) {
  std::vector<std::size_t> out;
  out.reserve(indices.size());
  for (std::size_t i : indices) out.push_back(labels[i]);
  return out;
}

namespace {

/// Shared minibatch loop; `update` applies one optimization step after the
/// backward pass has accumulated gradients.
template <typename UpdateFn>
std::vector<double> train_loop(Sequential& model, const Tensor& samples,
                               std::span<const std::size_t> labels,
                               const TrainConfig& config, Rng& rng,
                               UpdateFn&& update) {
  assert(samples.dim(0) == labels.size());
  const std::size_t num = samples.dim(0);
  std::vector<double> epoch_losses;
  epoch_losses.reserve(config.epochs);
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    CEA_SPAN("nn.train.epoch");
    const auto order = rng.permutation(num);
    double total_loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < num; start += config.batch_size) {
      CEA_SPAN("nn.train.batch");
      const std::size_t count = std::min(config.batch_size, num - start);
      const std::span<const std::size_t> batch_indices(order.data() + start,
                                                       count);
      const Tensor batch = gather_rows(samples, batch_indices);
      const auto batch_labels = gather_labels(labels, batch_indices);
      const Tensor logits = model.forward(batch);
      const auto loss = softmax_cross_entropy(logits, batch_labels);
      model.backward(loss.grad_logits);
      update();
      total_loss += loss.loss;
      ++batches;
    }
    epoch_losses.push_back(
        batches > 0 ? total_loss / static_cast<double>(batches) : 0.0);
  }
  return epoch_losses;
}

}  // namespace

std::vector<double> train_sgd(Sequential& model, const Tensor& samples,
                              std::span<const std::size_t> labels,
                              const TrainConfig& config, Rng& rng) {
  return train_loop(model, samples, labels, config, rng, [&] {
    model.apply_gradients(config.learning_rate);
  });
}

std::vector<double> train_with_optimizer(Sequential& model,
                                         Optimizer& optimizer,
                                         const Tensor& samples,
                                         std::span<const std::size_t> labels,
                                         const TrainConfig& config, Rng& rng) {
  return train_loop(model, samples, labels, config, rng,
                    [&] { optimizer.step(model); });
}

EvalResult evaluate(Sequential& model, const Tensor& samples,
                    std::span<const std::size_t> labels,
                    std::size_t batch_size) {
  assert(samples.dim(0) == labels.size());
  const std::size_t num = samples.dim(0);
  EvalResult result;
  if (num == 0) return result;
  double loss_sum = 0.0;
  double correct = 0.0;
  std::vector<std::size_t> indices(batch_size);
  for (std::size_t start = 0; start < num; start += batch_size) {
    const std::size_t count = std::min(batch_size, num - start);
    indices.resize(count);
    for (std::size_t i = 0; i < count; ++i) indices[i] = start + i;
    const Tensor batch = gather_rows(samples, indices);
    const auto batch_labels = gather_labels(labels, indices);
    const Tensor logits = model.forward(batch);
    const auto loss = softmax_cross_entropy(logits, batch_labels);
    loss_sum += loss.loss * static_cast<double>(count);
    correct += accuracy(logits, batch_labels) * static_cast<double>(count);
  }
  result.cross_entropy = loss_sum / static_cast<double>(num);
  result.accuracy = correct / static_cast<double>(num);
  return result;
}

}  // namespace cea::nn
