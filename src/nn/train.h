#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "nn/model.h"
#include "nn/tensor.h"
#include "util/rng.h"

namespace cea::nn {

/// Hyper-parameters for plain minibatch SGD training.
struct TrainConfig {
  std::size_t epochs = 3;
  std::size_t batch_size = 32;
  float learning_rate = 0.05f;
};

/// Copy the rows selected by `indices` out of a (num, ...) sample tensor.
Tensor gather_rows(const Tensor& samples, std::span<const std::size_t> indices);

/// Gather labels by the same indices.
std::vector<std::size_t> gather_labels(std::span<const std::size_t> labels,
                                       std::span<const std::size_t> indices);

/// Train with minibatch SGD + softmax cross-entropy. `samples` holds all
/// training rows stacked along dimension 0. Returns the mean training loss
/// of each epoch (useful for asserting that optimization makes progress).
std::vector<double> train_sgd(Sequential& model, const Tensor& samples,
                              std::span<const std::size_t> labels,
                              const TrainConfig& config, Rng& rng);

class Optimizer;  // nn/optimizer.h

/// Train with an explicit optimizer (SGD/momentum/Adam); the config's
/// learning_rate is ignored in favor of the optimizer's own.
std::vector<double> train_with_optimizer(Sequential& model,
                                         Optimizer& optimizer,
                                         const Tensor& samples,
                                         std::span<const std::size_t> labels,
                                         const TrainConfig& config, Rng& rng);

/// Evaluate mean cross-entropy and accuracy on a held-out set, batched so
/// memory stays bounded.
struct EvalResult {
  double cross_entropy = 0.0;
  double accuracy = 0.0;
};

EvalResult evaluate(Sequential& model, const Tensor& samples,
                    std::span<const std::size_t> labels,
                    std::size_t batch_size = 128);

}  // namespace cea::nn
