#include "nn/zoo.h"

#include <algorithm>
#include <cmath>
#include <span>
#include <utility>

#include "nn/gemm.h"

namespace cea::nn {
namespace {

std::size_t scaled(std::size_t base, double factor) {
  return std::max<std::size_t>(1, static_cast<std::size_t>(
                                      std::lround(base * factor)));
}

}  // namespace

InputSpec mnist_spec() noexcept { return {1, 28, 28, 10}; }
InputSpec cifar_spec() noexcept { return {3, 32, 32, 10}; }

Sequential make_simple_cnn(const std::string& name, const InputSpec& spec,
                           std::size_t c1, std::size_t c2, Rng& rng) {
  Sequential model(name);
  model.emplace<Conv2D>(spec.channels, c1, 3, 1, 1, rng);
  model.emplace<ReLU>();
  model.emplace<MaxPool2D>(2);
  model.emplace<Conv2D>(c1, c2, 3, 1, 1, rng);
  model.emplace<ReLU>();
  model.emplace<MaxPool2D>(2);
  model.emplace<Flatten>();
  const std::size_t flat = c2 * (spec.height / 4) * (spec.width / 4);
  model.emplace<Dense>(flat, spec.classes, rng);
  return model;
}

Sequential make_lenet5(const std::string& name, const InputSpec& spec,
                       double scale, Rng& rng) {
  Sequential model(name);
  const std::size_t c1 = scaled(6, scale);
  const std::size_t c2 = scaled(16, scale);
  const std::size_t f1 = scaled(120, scale);
  const std::size_t f2 = scaled(84, scale);
  // Classic LeNet expects 32x32; pad 28x28 inputs by 2 in the first conv.
  const std::size_t pad = spec.height == 28 ? 2 : 0;
  model.emplace<Conv2D>(spec.channels, c1, 5, 1, pad, rng);
  model.emplace<ReLU>();
  model.emplace<MaxPool2D>(2);
  model.emplace<Conv2D>(c1, c2, 5, 1, 0, rng);
  model.emplace<ReLU>();
  model.emplace<MaxPool2D>(2);
  model.emplace<Flatten>();
  model.emplace<Dense>(c2 * 5 * 5, f1, rng);
  model.emplace<ReLU>();
  model.emplace<Dense>(f1, f2, rng);
  model.emplace<ReLU>();
  model.emplace<Dense>(f2, spec.classes, rng);
  return model;
}

Sequential make_mlp(const std::string& name, const InputSpec& spec,
                    std::size_t hidden, Rng& rng) {
  Sequential model(name);
  const std::size_t flat = spec.channels * spec.height * spec.width;
  model.emplace<Flatten>();
  model.emplace<Dense>(flat, hidden, rng);
  model.emplace<ReLU>();
  model.emplace<Dense>(hidden, spec.classes, rng);
  return model;
}

Sequential make_mobilenet_lite(const std::string& name, const InputSpec& spec,
                               double width, Rng& rng) {
  Sequential model(name);
  const std::size_t stem = scaled(8, width);
  const std::size_t mid = scaled(16, width);
  const std::size_t head = scaled(32, width);
  // Stem: strided standard conv.
  model.emplace<Conv2D>(spec.channels, stem, 3, 2, 1, rng);
  model.emplace<ReLU>();
  // Block 1: depthwise separable, stride 1.
  model.emplace<DepthwiseConv2D>(stem, 3, 1, 1, rng);
  model.emplace<Conv2D>(stem, mid, 1, 1, 0, rng);
  model.emplace<ReLU>();
  // Block 2: depthwise separable, stride 2.
  model.emplace<DepthwiseConv2D>(mid, 3, 2, 1, rng);
  model.emplace<Conv2D>(mid, head, 1, 1, 0, rng);
  model.emplace<ReLU>();
  model.emplace<GlobalAvgPool>();
  model.emplace<Dense>(head, spec.classes, rng);
  return model;
}

QuantizedModel::QuantizedModel(Sequential model)
    : model_(std::move(model)), name_(model_.name() + "-int8") {
  model_.set_training(false);
  // Artifact size: weight matrices ship as int8 + one float scale per
  // output channel (exactly what Int8PackedB::size_mb charges per layer);
  // every other block stays float32. The weight-matrix test mirrors
  // quantize_model's.
  double bytes = 0.0;
  for (std::size_t i = 0; i < model_.layer_count(); ++i) {
    Layer& layer = model_.layer(i);
    const std::size_t channels = layer.output_channels();
    std::size_t block_index = 0;
    layer.visit_parameters([&](std::span<float> block) {
      const bool weight_matrix =
          block_index++ == 0 && channels > 0 && block.size() > channels &&
          block.size() % channels == 0;
      bytes += weight_matrix
                   ? static_cast<double>(block.size()) + 4.0 * channels
                   : 4.0 * static_cast<double>(block.size());
    });
  }
  size_mb_ = bytes / (1024.0 * 1024.0);
}

Tensor QuantizedModel::forward(const Tensor& input) {
  ScopedComputeBackend scoped(ComputeBackend::kGemmInt8);
  return model_.forward(input);
}

Tensor QuantizedModel::predict_proba(const Tensor& input) {
  ScopedComputeBackend scoped(ComputeBackend::kGemmInt8);
  return model_.predict_proba(input);
}

std::vector<std::size_t> QuantizedModel::predict(const Tensor& input) {
  ScopedComputeBackend scoped(ComputeBackend::kGemmInt8);
  return model_.predict(input);
}

std::vector<Sequential> make_mnist_zoo(Rng& rng) {
  const InputSpec spec = mnist_spec();
  std::vector<Sequential> zoo;
  zoo.push_back(make_simple_cnn("mnist-cnn-32x64", spec, 32, 64, rng));
  zoo.push_back(make_simple_cnn("mnist-cnn-16x32", spec, 16, 32, rng));
  zoo.push_back(make_lenet5("mnist-lenet5", spec, 1.0, rng));
  zoo.push_back(make_lenet5("mnist-lenet5-half", spec, 0.5, rng));
  zoo.push_back(make_mlp("mnist-mlp-256", spec, 256, rng));
  zoo.push_back(make_mlp("mnist-mlp-64", spec, 64, rng));
  return zoo;
}

std::vector<Sequential> make_cifar_zoo(Rng& rng) {
  const InputSpec spec = cifar_spec();
  std::vector<Sequential> zoo;
  zoo.push_back(make_simple_cnn("cifar-cnn-64x128", spec, 64, 128, rng));
  zoo.push_back(make_simple_cnn("cifar-cnn-32x64", spec, 32, 64, rng));
  zoo.push_back(make_lenet5("cifar-lenet5", spec, 1.0, rng));
  zoo.push_back(make_lenet5("cifar-lenet5-half", spec, 0.5, rng));
  zoo.push_back(make_mobilenet_lite("cifar-mobilenet", spec, 1.0, rng));
  zoo.push_back(make_mobilenet_lite("cifar-mobilenet-half", spec, 0.5, rng));
  return zoo;
}

}  // namespace cea::nn
