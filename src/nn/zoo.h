#pragma once

#include <string>
#include <vector>

#include "nn/model.h"
#include "util/rng.h"

namespace cea::nn {

/// Shape of the classifier input and output.
struct InputSpec {
  std::size_t channels = 1;
  std::size_t height = 28;
  std::size_t width = 28;
  std::size_t classes = 10;
};

/// MNIST-like spec (28x28x1, 10 classes).
InputSpec mnist_spec() noexcept;
/// CIFAR-10-like spec (32x32x3, 10 classes).
InputSpec cifar_spec() noexcept;

/// The paper's CNN: two 3x3 conv layers (c1, c2 channels) with ReLU, each
/// followed by 2x2 max pooling, then a fully-connected softmax head.
Sequential make_simple_cnn(const std::string& name, const InputSpec& spec,
                           std::size_t c1, std::size_t c2, Rng& rng);

/// LeNet-5 (LeCun et al. 1998) with a channel scale factor; scale=1 is the
/// classic 6/16/120/84 configuration.
Sequential make_lenet5(const std::string& name, const InputSpec& spec,
                       double scale, Rng& rng);

/// MLP with two fully-connected layers (hidden -> classes).
Sequential make_mlp(const std::string& name, const InputSpec& spec,
                    std::size_t hidden, Rng& rng);

/// A reduced MobileNet V1 (Howard et al. 2017): strided stem conv followed
/// by depthwise-separable blocks and a global-average-pool head. `width`
/// scales all channel counts (the MobileNet width multiplier).
Sequential make_mobilenet_lite(const std::string& name, const InputSpec& spec,
                               double width, Rng& rng);

/// Inference-only int8 twin of a float model. Owns the Sequential (moved
/// in — clone a model you want to keep via the save_model/load_model
/// round-trip), switches it to eval mode, and runs every forward under
/// ComputeBackend::kGemmInt8, so Dense/Conv2D execute the quantized
/// kernels (gemm::multiply_i8) with lazily built per-layer weight panels.
/// This is the deployable artifact of the paper's quantization arm: same
/// architecture, ~1/4 the transfer size, slightly degraded accuracy, and
/// a measured (not simulated) inference-cost discount — see
/// bench/ext_quantization.
class QuantizedModel {
 public:
  explicit QuantizedModel(Sequential model);

  Tensor forward(const Tensor& input);
  Tensor predict_proba(const Tensor& input);
  std::vector<std::size_t> predict(const Tensor& input);

  /// Float model name + "-int8".
  const std::string& name() const noexcept { return name_; }

  /// Deployable int8 artifact size in MB — the honest transfer size
  /// F_{i,n}: one byte per weight-matrix entry plus one float32 scale per
  /// output channel; biases and unchanneled blocks stay float32.
  double size_mb() const noexcept { return size_mb_; }

  /// The wrapped model (runs fp32 when called directly — only calls
  /// through this wrapper take the int8 path).
  Sequential& model() noexcept { return model_; }

 private:
  Sequential model_;
  std::string name_;
  double size_mb_ = 0.0;
};

/// Six MNIST models, as in the paper's Section V-A: two CNNs, two LeNet-5
/// variants, two MLPs.
std::vector<Sequential> make_mnist_zoo(Rng& rng);

/// Six CIFAR-10 models: two CNNs, two LeNet-5 variants, two MobileNets.
std::vector<Sequential> make_cifar_zoo(Rng& rng);

}  // namespace cea::nn
