#include "obs/export.h"

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

namespace cea::obs {
namespace {

/// Doubles rendered with enough digits to round-trip, but without JSON-
/// illegal tokens: non-finite values (possible in principle for gauge or
/// counter deltas fed from computed quantities) degrade to null.
void write_number(std::ostream& out, double value) {
  if (!(value == value) ||
      value == std::numeric_limits<double>::infinity() ||
      value == -std::numeric_limits<double>::infinity()) {
    out << "null";
    return;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out << buffer;
}

}  // namespace

// Strict JSON number grammar (RFC 8259): -?(0|[1-9][0-9]*)(\.[0-9]+)?
// ([eE][+-]?[0-9]+)?. Metadata values that match are emitted unquoted so
// "threads": 4 and "wall_clock_sec": 3.2 come out as numbers.
bool is_json_number(std::string_view text) {
  std::size_t i = 0;
  const std::size_t n = text.size();
  auto digits = [&]() {
    const std::size_t start = i;
    while (i < n && text[i] >= '0' && text[i] <= '9') ++i;
    return i > start;
  };
  if (i < n && text[i] == '-') ++i;
  if (i >= n) return false;
  if (text[i] == '0') {
    ++i;
  } else if (text[i] >= '1' && text[i] <= '9') {
    digits();
  } else {
    return false;
  }
  if (i < n && text[i] == '.') {
    ++i;
    if (!digits()) return false;
  }
  if (i < n && (text[i] == 'e' || text[i] == 'E')) {
    ++i;
    if (i < n && (text[i] == '+' || text[i] == '-')) ++i;
    if (!digits()) return false;
  }
  return i == n;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string profile_json(const Snapshot& snapshot, const Metadata& meta) {
  std::ostringstream out;
  out << "{\n  \"telemetry_compiled\": "
      << (compiled_in() ? "true" : "false") << ",\n";

  out << "  \"meta\": {";
  for (std::size_t i = 0; i < meta.size(); ++i) {
    if (i > 0) out << ",";
    out << "\n    \"" << json_escape(meta[i].first) << "\": ";
    if (is_json_number(meta[i].second)) {
      out << meta[i].second;
    } else {
      out << "\"" << json_escape(meta[i].second) << "\"";
    }
  }
  out << (meta.empty() ? "},\n" : "\n  },\n");

  out << "  \"counters\": {";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    if (i > 0) out << ",";
    out << "\n    \"" << json_escape(snapshot.counters[i].name) << "\": ";
    write_number(out, snapshot.counters[i].value);
  }
  out << (snapshot.counters.empty() ? "},\n" : "\n  },\n");

  out << "  \"gauges\": {";
  bool first = true;
  for (const GaugeValue& gauge : snapshot.gauges) {
    if (!gauge.ever_set) continue;
    if (!first) out << ",";
    first = false;
    out << "\n    \"" << json_escape(gauge.name) << "\": ";
    write_number(out, gauge.value);
  }
  out << (first ? "},\n" : "\n  },\n");

  out << "  \"histograms\": {";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramValue& hist = snapshot.histograms[i];
    if (i > 0) out << ",";
    out << "\n    \"" << json_escape(hist.name) << "\": {\n";
    out << "      \"count\": " << hist.count << ",\n      \"sum\": ";
    write_number(out, hist.sum);
    out << ",\n      \"min\": ";
    write_number(out, hist.count > 0 ? hist.min : 0.0);
    out << ",\n      \"max\": ";
    write_number(out, hist.count > 0 ? hist.max : 0.0);
    out << ",\n      \"buckets\": [";
    // One {le, count} entry per finite edge plus the +inf overflow bucket;
    // counts are per-bucket (not cumulative).
    for (std::size_t b = 0; b < hist.bucket_counts.size(); ++b) {
      if (b > 0) out << ", ";
      out << "{\"le\": ";
      if (b < hist.upper_edges.size()) {
        write_number(out, hist.upper_edges[b]);
      } else {
        out << "\"inf\"";
      }
      out << ", \"count\": " << hist.bucket_counts[b] << "}";
    }
    out << "]\n    }";
  }
  out << (snapshot.histograms.empty() ? "}\n" : "\n  }\n");
  out << "}\n";
  return out.str();
}

std::string chrome_trace_json(std::span<const TraceEvent> events) {
  std::ostringstream out;
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& event = events[i];
    if (i > 0) out << ",";
    out << "\n  {\"name\": \""
        << json_escape(event.name != nullptr ? event.name : "?")
        << "\", \"cat\": \"cea\", \"pid\": 1, \"tid\": " << event.tid
        << ", \"ts\": ";
    write_number(out, static_cast<double>(event.start_ns) / 1000.0);
    if (event.is_counter) {
      out << ", \"ph\": \"C\", \"args\": {\"value\": ";
      write_number(out, event.value);
      out << "}}";
    } else {
      out << ", \"ph\": \"X\", \"dur\": ";
      write_number(out, static_cast<double>(event.dur_ns) / 1000.0);
      out << ", \"args\": {}}";
    }
  }
  out << (events.empty() ? "]}\n" : "\n]}\n");
  return out.str();
}

namespace {

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

}  // namespace

bool write_profile_json(const std::string& path, const Snapshot& snapshot,
                        const Metadata& meta) {
  return write_file(path, profile_json(snapshot, meta));
}

bool write_chrome_trace(const std::string& path,
                        std::span<const TraceEvent> events) {
  return write_file(path, chrome_trace_json(events));
}

}  // namespace cea::obs
