#pragma once

// Exporters for the telemetry registry (obs/telemetry.h):
//
//  * JSON profile — machine-readable dump of every counter, gauge and
//    histogram plus caller-supplied run metadata (git SHA, ISA level,
//    thread count, ...); the benches land these under bench_out/.
//  * Chrome trace-event JSON — the drained span/counter events in the
//    format chrome://tracing and https://ui.perfetto.dev load directly
//    ("X" complete events nested by timestamp per thread track, "C"
//    counter events as value-over-time tracks).

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "obs/telemetry.h"

namespace cea::obs {

/// Ordered key/value run metadata embedded verbatim in the JSON profile's
/// "meta" object. Values matching the JSON number grammar are written as
/// numbers ("threads": 4), everything else as JSON strings.
using Metadata = std::vector<std::pair<std::string, std::string>>;

/// Render a snapshot (plus metadata) as a JSON document.
std::string profile_json(const Snapshot& snapshot, const Metadata& meta);

/// Render trace events as a Chrome trace-event document. Timestamps are
/// microseconds relative to the telemetry epoch; spans become "X" complete
/// events, counter samples become "C" events with a "value" arg.
std::string chrome_trace_json(std::span<const TraceEvent> events);

/// Write helpers; return false (and leave a partial file at worst) on I/O
/// failure. Parent directories must already exist.
bool write_profile_json(const std::string& path, const Snapshot& snapshot,
                        const Metadata& meta);
bool write_chrome_trace(const std::string& path,
                        std::span<const TraceEvent> events);

/// Escape a string for inclusion inside a JSON string literal (quotes not
/// included). Exposed for the bench harness's ad-hoc JSON writers.
std::string json_escape(std::string_view text);

/// True when `text` matches the strict JSON number grammar (RFC 8259), so
/// a writer may emit it unquoted. Shared by the profile exporter and the
/// bench harness's metadata writer.
bool is_json_number(std::string_view text);

}  // namespace cea::obs
