#include "obs/journal.h"

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <stdexcept>

#include "util/numio.h"
#include "util/state_io.h"

namespace cea::obs {
namespace {

constexpr std::string_view kSegmentMagic = "CEA-JOURNAL v1";
constexpr std::string_view kSegmentPrefix = "seg-";
constexpr std::string_view kSegmentSuffix = ".cjl";

std::string fnv_hex(std::string_view bytes) {
  const std::uint64_t checksum = util::fnv1a64(bytes);
  char out[17];
  for (int i = 0; i < 16; ++i) {
    const unsigned nibble =
        static_cast<unsigned>(checksum >> (60 - 4 * i)) & 0xF;
    out[i] = static_cast<char>(nibble < 10 ? '0' + nibble
                                           : 'a' + (nibble - 10));
  }
  out[16] = '\0';
  return out;
}

void check_token(std::string_view text, const char* what) {
  if (text.empty()) {
    throw std::invalid_argument(std::string("journal: empty ") + what);
  }
  for (const char c : text) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '#') {
      throw std::invalid_argument(std::string("journal: ") + what + " '" +
                                  std::string(text) +
                                  "' contains whitespace or '#'");
    }
  }
}

/// Split a record body into space-separated tokens (single-space grammar:
/// format_record never emits empty fields).
std::vector<std::string_view> tokenize(std::string_view body) {
  std::vector<std::string_view> tokens;
  std::size_t start = 0;
  while (start <= body.size()) {
    const std::size_t space = body.find(' ', start);
    if (space == std::string_view::npos) {
      tokens.push_back(body.substr(start));
      break;
    }
    tokens.push_back(body.substr(start, space - start));
    start = space + 1;
  }
  return tokens;
}

double parse_double_field(std::string_view token, const char* what) {
  double value = 0.0;
  if (!util::parse_double(token, value)) {
    throw JournalError("journal: bad " + std::string(what) + " '" +
                       std::string(token) + "'");
  }
  return value;
}

std::uint64_t parse_u64_field(std::string_view token, const char* what) {
  std::uint64_t value = 0;
  if (!util::parse_u64(token, value)) {
    throw JournalError("journal: bad " + std::string(what) + " '" +
                       std::string(token) + "'");
  }
  return value;
}

/// Strip and verify the trailing " #<fnv16>" checksum; returns the body.
std::string_view checked_body(std::string_view line) {
  const std::size_t marker = line.rfind(" #");
  if (marker == std::string_view::npos || line.size() - marker != 2 + 16) {
    throw JournalError("journal: record missing checksum field: '" +
                       std::string(line) + "'");
  }
  const std::string_view body = line.substr(0, marker);
  if (fnv_hex(body) != line.substr(marker + 2)) {
    throw JournalError("journal: record checksum mismatch: '" +
                       std::string(line) + "'");
  }
  return body;
}

}  // namespace

std::string format_record(const JournalRecord& record) {
  check_token(record.tenant, "tenant name");
  std::string body;
  if (record.kind == JournalRecord::Kind::kSlot) {
    body = "slot ";
    body += record.tenant;
    body += ' ';
    body += util::format_u64(record.slot);
    body += ' ';
    if (record.model_counts.empty()) {
      body += '-';
    } else {
      for (std::size_t n = 0; n < record.model_counts.size(); ++n) {
        if (n > 0) body += ':';
        body += util::format_u64(record.model_counts[n]);
      }
    }
    body += ' ';
    body += util::format_u64(record.switches_total);
    body += ' ';
    body += util::format_u64(record.solver_lanes);
    body += ' ';
    body += util::format_u64(record.arena_overflows);
    for (const double value :
         {record.trader_dual, record.buy, record.sell, record.buy_price,
          record.sell_price, record.emission, record.balance,
          record.carbon_cap, record.inference_cost, record.switching_cost,
          record.trading_cost, record.accuracy, record.workload}) {
      body += ' ';
      body += util::format_double_exact(value);
    }
  } else {
    check_token(record.alert, "alert name");
    body = "alert ";
    body += record.tenant;
    body += ' ';
    body += util::format_u64(record.slot);
    body += ' ';
    body += record.alert;
    body += ' ';
    body += util::format_double_exact(record.value);
    body += ' ';
    body += util::format_double_exact(record.threshold);
  }
  body += " #";
  body += fnv_hex(body.substr(0, body.size() - 2));
  return body;
}

JournalRecord parse_record(std::string_view line) {
  const std::string_view body = checked_body(line);
  const auto tokens = tokenize(body);
  JournalRecord record;
  if (!tokens.empty() && tokens[0] == "slot") {
    // "slot" tenant t counts switches lanes overflows + 13 doubles.
    if (tokens.size() != 20) {
      throw JournalError("journal: slot record has " +
                         std::to_string(tokens.size()) +
                         " fields, expected 20");
    }
    record.kind = JournalRecord::Kind::kSlot;
    record.tenant = std::string(tokens[1]);
    record.slot = parse_u64_field(tokens[2], "slot index");
    if (tokens[3] != "-") {
      std::string_view counts = tokens[3];
      while (!counts.empty()) {
        const std::size_t colon = counts.find(':');
        const std::string_view cell = counts.substr(0, colon);
        record.model_counts.push_back(parse_u64_field(cell, "model count"));
        if (colon == std::string_view::npos) break;
        counts.remove_prefix(colon + 1);
      }
    }
    record.switches_total = parse_u64_field(tokens[4], "switch count");
    record.solver_lanes = parse_u64_field(tokens[5], "solver lanes");
    record.arena_overflows = parse_u64_field(tokens[6], "arena overflows");
    double* const doubles[] = {
        &record.trader_dual,    &record.buy,          &record.sell,
        &record.buy_price,      &record.sell_price,   &record.emission,
        &record.balance,        &record.carbon_cap,   &record.inference_cost,
        &record.switching_cost, &record.trading_cost, &record.accuracy,
        &record.workload};
    for (std::size_t i = 0; i < 13; ++i) {
      *doubles[i] = parse_double_field(tokens[7 + i], "slot field");
    }
  } else if (!tokens.empty() && tokens[0] == "alert") {
    if (tokens.size() != 6) {
      throw JournalError("journal: alert record has " +
                         std::to_string(tokens.size()) +
                         " fields, expected 6");
    }
    record.kind = JournalRecord::Kind::kAlert;
    record.tenant = std::string(tokens[1]);
    record.slot = parse_u64_field(tokens[2], "slot index");
    record.alert = std::string(tokens[3]);
    record.value = parse_double_field(tokens[4], "alert value");
    record.threshold = parse_double_field(tokens[5], "alert threshold");
  } else {
    throw JournalError("journal: unknown record kind in '" +
                       std::string(line) + "'");
  }
  return record;
}

std::string segment_path(const std::string& directory, std::size_t index) {
  char name[32];
  std::snprintf(name, sizeof(name), "%.*s%08zu%.*s",
                static_cast<int>(kSegmentPrefix.size()), kSegmentPrefix.data(),
                index, static_cast<int>(kSegmentSuffix.size()),
                kSegmentSuffix.data());
  return directory + "/" + name;
}

namespace {

/// Segment indices present in `directory`, sorted. Missing directory is
/// reported via `exists`.
std::vector<std::size_t> list_segments(const std::string& directory,
                                       bool& exists) {
  std::vector<std::size_t> indices;
  DIR* dir = ::opendir(directory.c_str());
  exists = dir != nullptr;
  if (dir == nullptr) return indices;
  while (const dirent* entry = ::readdir(dir)) {
    const std::string_view name = entry->d_name;
    if (name.size() != kSegmentPrefix.size() + 8 + kSegmentSuffix.size() ||
        name.substr(0, kSegmentPrefix.size()) != kSegmentPrefix ||
        name.substr(name.size() - kSegmentSuffix.size()) != kSegmentSuffix) {
      continue;
    }
    std::uint64_t index = 0;
    if (!util::parse_u64(name.substr(kSegmentPrefix.size(), 8), index)) {
      ::closedir(dir);
      throw JournalError("journal: unparsable segment name '" +
                         std::string(name) + "' in " + directory);
    }
    indices.push_back(static_cast<std::size_t>(index));
  }
  ::closedir(dir);
  std::sort(indices.begin(), indices.end());
  return indices;
}

/// Validate one segment file and append its record lines.
void read_segment(const std::string& path, std::vector<std::string>& lines) {
  std::string bytes;
  try {
    bytes = util::read_file_bytes(path);
  } catch (const util::StateError& error) {
    throw JournalError("journal: " + std::string(error.what()));
  }
  const std::size_t eol = bytes.find('\n');
  if (eol == std::string::npos ||
      bytes.compare(0, kSegmentMagic.size(), kSegmentMagic) != 0) {
    throw JournalError("journal: " + path + " is not a CEA-JOURNAL segment");
  }
  const auto header = tokenize(std::string_view(bytes).substr(0, eol));
  // "CEA-JOURNAL" "v1" <records> <payload-bytes> <fnv16>
  if (header.size() != 5) {
    throw JournalError("journal: malformed segment header in " + path);
  }
  const std::uint64_t records = parse_u64_field(header[2], "record count");
  const std::uint64_t payload_bytes =
      parse_u64_field(header[3], "payload byte count");
  const std::string_view payload = std::string_view(bytes).substr(eol + 1);
  if (payload.size() != payload_bytes) {
    throw JournalError("journal: " + path + " truncated (" +
                       std::to_string(payload.size()) +
                       " payload bytes, header says " +
                       std::to_string(payload_bytes) + ")");
  }
  if (fnv_hex(payload) != header[4]) {
    throw JournalError("journal: " + path +
                       " checksum mismatch (corrupted payload)");
  }
  std::size_t count = 0;
  std::size_t start = 0;
  while (start < payload.size()) {
    std::size_t line_end = payload.find('\n', start);
    if (line_end == std::string_view::npos) {
      throw JournalError("journal: " + path +
                         " payload not newline-terminated");
    }
    const std::string_view line = payload.substr(start, line_end - start);
    checked_body(line);  // per-record checksum
    lines.emplace_back(line);
    ++count;
    start = line_end + 1;
  }
  if (count != records) {
    throw JournalError("journal: " + path + " holds " + std::to_string(count) +
                       " records, header says " + std::to_string(records));
  }
}

}  // namespace

JournalWriter::JournalWriter(std::string directory)
    : directory_(std::move(directory)) {
  bool exists = false;
  const auto indices = list_segments(directory_, exists);
  if (!exists) {
    throw JournalError("journal: directory does not exist: " + directory_);
  }
  if (!indices.empty()) next_segment_ = indices.back() + 1;
}

void JournalWriter::append(const JournalRecord& record) {
  buffered_.push_back(format_record(record));
}

void JournalWriter::seal() {
  if (buffered_.empty()) return;
  std::string payload;
  for (const std::string& line : buffered_) {
    payload += line;
    payload += '\n';
  }
  std::string segment(kSegmentMagic);
  segment += ' ';
  segment += util::format_u64(buffered_.size());
  segment += ' ';
  segment += util::format_u64(payload.size());
  segment += ' ';
  segment += fnv_hex(payload);
  segment += '\n';
  segment += payload;
  util::write_file_atomic(segment_path(directory_, next_segment_), segment);
  ++next_segment_;
  ++segments_sealed_;
  records_sealed_ += buffered_.size();
  buffered_.clear();
}

std::vector<std::string> read_journal_lines(const std::string& directory) {
  bool exists = false;
  const auto indices = list_segments(directory, exists);
  std::vector<std::string> lines;
  if (!exists || indices.empty()) return lines;
  // Segments are sealed in order and never removed, so a gap means a
  // deleted or lost file — the prefix property no longer holds.
  for (std::size_t i = 0; i < indices.size(); ++i) {
    if (indices[i] != indices.front() + i) {
      throw JournalError("journal: missing segment " +
                         std::to_string(indices.front() + i) + " in " +
                         directory);
    }
  }
  for (const std::size_t index : indices) {
    read_segment(segment_path(directory, index), lines);
  }
  return lines;
}

std::vector<JournalRecord> read_journal(const std::string& directory) {
  const auto lines = read_journal_lines(directory);
  std::vector<JournalRecord> records;
  records.reserve(lines.size());
  for (const std::string& line : lines) records.push_back(parse_record(line));
  return records;
}

JournalStats verify_journal(const std::string& directory) {
  JournalStats stats;
  try {
    bool exists = false;
    const auto indices = list_segments(directory, exists);
    if (!exists) {
      stats.error = "journal: directory does not exist: " + directory;
      return stats;
    }
    const auto lines = read_journal_lines(directory);
    // Full structural parse, not just checksums: field counts and numeric
    // grammar must hold for every record.
    for (const std::string& line : lines) parse_record(line);
    stats.ok = true;
    stats.segments = indices.size();
    stats.records = lines.size();
  } catch (const std::exception& error) {
    stats.ok = false;
    stats.error = error.what();
  }
  return stats;
}

}  // namespace cea::obs
