#pragma once

// Structured decision journal: the auditable per-slot event log of the
// serving stack (DESIGN.md §13). One record per (tenant, slot) captures
// the decisions the paper's cap-compliance story rests on — model
// selections, the trader's dual variable, executed trade quantities and
// prices, emissions against the allowance balance — plus the arena/solver
// counters that certify how the slot was computed. Watchdog alerts
// (obs/slo.h) ride the same log as their own record kind.
//
// Durability discipline (same as util/state_io): records are buffered in
// memory and published as numbered immutable segment files via
// temp+fsync+rename+dir-fsync, each wrapped in a counted, FNV-1a-checksummed
// envelope, and every record line carries its own FNV-1a checksum. A
// SIGKILL at any instant therefore leaves a directory of checksum-clean
// segments whose records are a bit-exact prefix of the uninterrupted
// run's journal — the open buffer is the only loss.
//
// Determinism contract: every field of a slot record is computed by the
// engine's serial edge-ordered reduction, and doubles are formatted as
// exact hex-floats (util/numio), so serial and pooled runs of the same
// scenario produce byte-identical journals and a journal replay can be
// diffed bit-for-bit against golden traces (examples/journal_query.cpp).

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace cea::obs {

/// Thrown on malformed, truncated, or corrupted journal files.
class JournalError : public std::runtime_error {
 public:
  explicit JournalError(const std::string& what) : std::runtime_error(what) {}
};

/// One journal record. kSlot records carry the full decision snapshot of
/// (tenant, slot); kAlert records carry a watchdog alert raised at that
/// slot (value/threshold semantics per rule, obs/slo.h).
struct JournalRecord {
  enum class Kind : std::uint8_t { kSlot, kAlert };

  Kind kind = Kind::kSlot;
  std::string tenant;      ///< tenant name (no whitespace or '#')
  std::uint64_t slot = 0;  ///< slot the record describes

  // --- kSlot fields -------------------------------------------------------
  /// Edges that selected each model this slot (size = model count).
  std::vector<std::uint64_t> model_counts;
  std::uint64_t switches_total = 0;   ///< cumulative switches after the slot
  std::uint64_t solver_lanes = 0;     ///< batched Tsallis solves this slot
  std::uint64_t arena_overflows = 0;  ///< cumulative (0 certifies the slot path)
  double trader_dual = 0.0;  ///< lambda after feedback; NaN when stateless
  double buy = 0.0, sell = 0.0;            ///< executed z^t, w^t
  double buy_price = 0.0, sell_price = 0.0;  ///< quote c^t, r^t
  double emission = 0.0;   ///< e^t
  double balance = 0.0;    ///< allowance balance after the slot
  double carbon_cap = 0.0;  ///< R of the tenant's scenario
  double inference_cost = 0.0, switching_cost = 0.0, trading_cost = 0.0;
  double accuracy = 0.0, workload = 0.0;

  // --- kAlert fields ------------------------------------------------------
  std::string alert;       ///< rule name (obs::slo_kind_name)
  double value = 0.0;      ///< observed quantity that tripped the rule
  double threshold = 0.0;  ///< the rule's bound at that moment
};

/// Render a record as its single journal line, including the trailing
/// " #<fnv1a64-hex>" checksum field. Doubles are exact hex-floats. Throws
/// std::invalid_argument when the tenant or alert name contains
/// whitespace or '#' (they would shear the line format).
std::string format_record(const JournalRecord& record);

/// Parse (and checksum-verify) one journal line. Throws JournalError on
/// any malformed field or checksum mismatch.
JournalRecord parse_record(std::string_view line);

/// Append-only journal writer over a directory of sealed segments.
///
/// append() buffers; seal() publishes everything buffered since the last
/// seal as the next `seg-<index>.cjl` segment, atomically. The caller
/// (serve/daemon.cpp) seals at slot boundaries, so the journal's sealed
/// content always ends at a boundary. A writer constructed over a
/// non-empty directory continues the segment numbering — a restored
/// daemon appends after the segments that survived the crash.
class JournalWriter {
 public:
  /// The directory must exist. Throws JournalError otherwise or when an
  /// existing segment name cannot be parsed.
  explicit JournalWriter(std::string directory);

  /// Buffer one record (formatted + checksummed immediately, so a
  /// malformed record throws here, not at seal time).
  void append(const JournalRecord& record);

  /// Publish buffered records as the next segment (crash-safe). No-op
  /// when nothing is buffered. Throws util::StateError on I/O failure.
  void seal();

  std::size_t records_buffered() const noexcept { return buffered_.size(); }
  std::size_t records_sealed() const noexcept { return records_sealed_; }
  std::size_t segments_sealed() const noexcept { return segments_sealed_; }
  const std::string& directory() const noexcept { return directory_; }

 private:
  std::string directory_;
  std::vector<std::string> buffered_;  ///< formatted lines, no '\n'
  std::size_t next_segment_ = 0;
  std::size_t segments_sealed_ = 0;
  std::size_t records_sealed_ = 0;
};

/// Verification summary of a journal directory.
struct JournalStats {
  bool ok = false;
  std::size_t segments = 0;
  std::size_t records = 0;
  std::string error;  ///< first failure, empty when ok
};

/// Path of segment `index` inside `directory` (for tests and tools).
std::string segment_path(const std::string& directory, std::size_t index);

/// Read every sealed segment of `directory` in segment order, verifying
/// the segment envelopes (count, byte length, FNV-1a) and each record
/// line's checksum. Returns the record lines (without '\n') in append
/// order. Throws JournalError on the first corruption; a missing or empty
/// directory yields an empty journal.
std::vector<std::string> read_journal_lines(const std::string& directory);

/// Like read_journal_lines + parse_record for each line.
std::vector<JournalRecord> read_journal(const std::string& directory);

/// Non-throwing verification: checks every envelope and record checksum.
JournalStats verify_journal(const std::string& directory);

}  // namespace cea::obs
