#include "obs/prom.h"

#include <algorithm>
#include <cmath>

#include "util/numio.h"

namespace cea::obs {
namespace {

bool name_char_ok(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

/// Label values only need '\' , '"' and newline escaping per the format.
std::string label_escape(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

void append_labels(
    std::string& out,
    const std::vector<std::pair<std::string, std::string>>& labels) {
  if (labels.empty()) return;
  out += '{';
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ',';
    out += prom_sanitize(labels[i].first);
    out += "=\"";
    out += label_escape(labels[i].second);
    out += '"';
  }
  out += '}';
}

void append_type(std::string& out, std::string_view name,
                 std::string_view type) {
  out += "# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
}

void append_sample(std::string& out, std::string_view name, double value) {
  out += name;
  out += ' ';
  out += prom_value(value);
  out += '\n';
}

}  // namespace

std::string prom_sanitize(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  if (!name.empty() && name[0] >= '0' && name[0] <= '9') out += '_';
  for (const char c : name) out += name_char_ok(c) ? c : '_';
  if (out.empty()) out.push_back('_');
  return out;
}

std::string prom_value(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  return util::format_double(value, 17);
}

double histogram_quantile(const HistogramValue& histogram, double q) {
  if (histogram.count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(histogram.count);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < histogram.bucket_counts.size(); ++b) {
    const std::uint64_t in_bucket = histogram.bucket_counts[b];
    if (in_bucket == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += in_bucket;
    if (static_cast<double>(cumulative) < target) continue;
    // Rank falls in this bucket. The overflow bucket has no finite upper
    // edge; report the observed max (likewise clamp the first bucket's
    // lower edge to the observed min).
    if (b >= histogram.upper_edges.size()) return histogram.max;
    const double hi = histogram.upper_edges[b];
    const double lo = b == 0 ? std::min(histogram.min, hi)
                             : histogram.upper_edges[b - 1];
    const double fraction =
        std::clamp((target - before) / static_cast<double>(in_bucket), 0.0,
                   1.0);
    return lo + (hi - lo) * fraction;
  }
  return histogram.max;
}

std::string prometheus_text(const Snapshot& snapshot,
                            std::span<const PromSample> extra,
                            std::string_view prefix) {
  std::string out;
  for (const CounterValue& counter : snapshot.counters) {
    const std::string name =
        std::string(prefix) + prom_sanitize(counter.name) + "_total";
    append_type(out, name, "counter");
    append_sample(out, name, counter.value);
  }
  for (const GaugeValue& gauge : snapshot.gauges) {
    if (!gauge.ever_set) continue;
    const std::string name = std::string(prefix) + prom_sanitize(gauge.name);
    append_type(out, name, "gauge");
    append_sample(out, name, gauge.value);
  }
  for (const HistogramValue& histogram : snapshot.histograms) {
    const std::string name =
        std::string(prefix) + prom_sanitize(histogram.name);
    append_type(out, name, "histogram");
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < histogram.bucket_counts.size(); ++b) {
      cumulative += histogram.bucket_counts[b];
      out += name;
      out += "_bucket{le=\"";
      out += b < histogram.upper_edges.size()
                 ? prom_value(histogram.upper_edges[b])
                 : std::string("+Inf");
      out += "\"} ";
      out += util::format_u64(cumulative);
      out += '\n';
    }
    append_sample(out, name + "_sum", histogram.sum);
    out += name;
    out += "_count ";
    out += util::format_u64(histogram.count);
    out += '\n';
  }
  // Extra samples: consecutive same-name entries share one TYPE header.
  std::string previous;
  for (const PromSample& sample : extra) {
    const std::string name = std::string(prefix) + prom_sanitize(sample.name);
    if (name != previous) {
      append_type(out, name, sample.type);
      previous = name;
    }
    out += name;
    append_labels(out, sample.labels);
    out += ' ';
    out += prom_value(sample.value);
    out += '\n';
  }
  return out;
}

}  // namespace cea::obs
