#pragma once

// Prometheus text-format exposition (version 0.0.4) over the telemetry
// registry (obs/telemetry.h), plus the handful of serving-layer samples
// the scrape page needs that are not plain registry metrics (per-tenant
// labeled gauges, histogram quantiles). The daemon renders this at
// pool-quiescent slot boundaries and publishes it atomically
// (util::write_file_atomic) to a status file and, optionally, over a
// minimal TCP endpoint (serve/metrics_server.h).
//
// Rendering rules:
//  * metric names are sanitized to [a-zA-Z_][a-zA-Z0-9_]* and prefixed
//    ("cea_"); counters additionally get the conventional "_total" suffix;
//  * histograms render as cumulative `_bucket{le="..."}` series plus
//    `_sum` and `_count`, with the implicit `le="+Inf"` bucket;
//  * values use locale-independent shortest-round-trip decimal
//    (util/numio), NaN/Inf spelled the Prometheus way.

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/telemetry.h"

namespace cea::obs {

/// One extra labeled sample to expose alongside the registry snapshot.
struct PromSample {
  std::string name;  ///< raw name; sanitized + prefixed like registry names
  std::vector<std::pair<std::string, std::string>> labels;
  double value = 0.0;
  const char* type = "gauge";  ///< "gauge" or "counter" (TYPE header)
};

/// Sanitize a metric name: every character outside [a-zA-Z0-9_] becomes
/// '_' and a leading digit is prefixed with '_'.
std::string prom_sanitize(std::string_view name);

/// Render one value the way Prometheus parses it ("NaN", "+Inf", "-Inf",
/// shortest-round-trip decimal otherwise).
std::string prom_value(double value);

/// Render the snapshot plus the extra samples as one exposition document.
/// Consecutive extra samples with the same name share one TYPE header, so
/// group per-tenant series by name.
std::string prometheus_text(const Snapshot& snapshot,
                            std::span<const PromSample> extra,
                            std::string_view prefix = "cea_");

/// Quantile estimate from a snapshot histogram: linear interpolation
/// inside the bucket that crosses rank q*count, clamped to the finite
/// edges (the overflow bucket reports the histogram max). Returns 0 for
/// an empty histogram; q is clamped to [0, 1].
double histogram_quantile(const HistogramValue& histogram, double q);

}  // namespace cea::obs
