#include "obs/slo.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cea::obs {

const char* slo_kind_name(SloKind kind) noexcept {
  switch (kind) {
    case SloKind::kProjectedCapBreach: return "projected_cap_breach";
    case SloKind::kAllowanceInsolvency: return "allowance_insolvency";
    case SloKind::kFeedStall: return "feed_stall";
    case SloKind::kSlotDeadlineMiss: return "slot_deadline_miss";
  }
  return "unknown";
}

SloWatchdog::SloWatchdog(SloConfig config, std::size_t num_tenants)
    : config_(config), tenants_(num_tenants) {
  if (config_.window == 0) {
    throw std::invalid_argument("SloWatchdog: window must be positive");
  }
  for (TenantState& tenant : tenants_) {
    tenant.window.assign(config_.window, 0.0);
  }
}

void SloWatchdog::raise(SloKind kind, std::size_t tenant, std::uint64_t slot,
                        double value, double threshold) {
  pending_.push_back({kind, tenant, slot, value, threshold});
  ++counts_[static_cast<std::size_t>(kind)];
}

void SloWatchdog::observe_slot(std::size_t tenant,
                               const SloTenantSlot& observed) {
  TenantState& state = tenants_.at(tenant);

  // Rolling emission window: overwrite the oldest sample. The sum is
  // re-derived incrementally; exactness does not matter for an alerting
  // threshold, determinism does — and add/subtract of the same values in
  // the same order is deterministic.
  if (state.filled == state.window.size()) {
    state.window_sum -= state.window[state.head];
  } else {
    ++state.filled;
  }
  state.window[state.head] = observed.emission;
  state.window_sum += observed.emission;
  state.head = (state.head + 1) % state.window.size();

  // Projected cap breach: windowed mean rate * remaining slots vs what
  // the tenant still holds. Edge-triggered per breach episode.
  const double mean_rate =
      state.window_sum / static_cast<double>(state.filled);
  const double remaining =
      observed.horizon > observed.slot + 1
          ? static_cast<double>(observed.horizon - observed.slot - 1)
          : 0.0;
  const double projected = mean_rate * remaining;
  const double covered =
      config_.breach_margin * std::max(observed.balance, 0.0);
  const bool breach = remaining > 0.0 && projected > covered;
  if (breach && !state.in_breach) {
    raise(SloKind::kProjectedCapBreach, tenant, observed.slot, projected,
          covered);
  }
  state.in_breach = breach;

  // Allowance insolvency, edge-triggered.
  const bool insolvent = observed.balance < config_.min_balance;
  if (insolvent && !state.insolvent) {
    raise(SloKind::kAllowanceInsolvency, tenant, observed.slot,
          observed.balance, config_.min_balance);
  }
  state.insolvent = insolvent;
}

void SloWatchdog::observe_feed(std::uint64_t slot, std::int64_t now_ms,
                               std::int64_t last_ready_ms) {
  if (config_.feed_stall_ms <= 0) return;
  const std::int64_t staleness = now_ms - last_ready_ms;
  const bool stalled = staleness > config_.feed_stall_ms;
  if (stalled && !feed_stalled_) {
    raise(SloKind::kFeedStall, kSloNoTenant, slot,
          static_cast<double>(staleness),
          static_cast<double>(config_.feed_stall_ms));
  }
  feed_stalled_ = stalled;
}

void SloWatchdog::observe_slot_wall(std::uint64_t slot, std::int64_t wall_ms) {
  if (config_.slot_deadline_ms <= 0) return;
  if (wall_ms > config_.slot_deadline_ms) {
    raise(SloKind::kSlotDeadlineMiss, kSloNoTenant, slot,
          static_cast<double>(wall_ms),
          static_cast<double>(config_.slot_deadline_ms));
  }
}

void SloWatchdog::absorb_replay() {
  pending_.clear();
  counts_.fill(0);
}

std::vector<SloAlert> SloWatchdog::drain() {
  std::vector<SloAlert> drained;
  drained.swap(pending_);
  return drained;
}

std::uint64_t SloWatchdog::total() const noexcept {
  std::uint64_t sum = 0;
  for (const std::uint64_t count : counts_) sum += count;
  return sum;
}

}  // namespace cea::obs
