#pragma once

// Carbon-SLO watchdog: a deterministic rolling-window rule engine over the
// serving stack's observed state (DESIGN.md §13). Pure in its inputs — the
// clock is injected as millisecond values, state rules see only the
// quantities the engine computed — so two identical runs raise identical
// alerts at identical slots, and the state-driven rules are safe to
// surface in the bit-identity-checked decision journal (obs/journal.h).
//
// Rules (all edge-triggered per episode unless noted):
//  * kProjectedCapBreach — the rolling-window mean emission rate,
//    extrapolated over the remaining horizon, exceeds the tenant's
//    current allowance balance: the tenant is on pace to end the horizon
//    uncovered and pay the settlement penalty.
//  * kAllowanceInsolvency — the allowance balance fell below the
//    configured floor (default 0: the tenant is emitting uncovered).
//  * kFeedStall — no slot input became ready for longer than
//    feed_stall_ms (clock injected by the daemon; disabled at 0).
//  * kSlotDeadlineMiss — one slot's wall time exceeded slot_deadline_ms
//    (level-triggered: every miss fires; disabled at 0).
//
// The watchdog is observational: it never feeds control flow, so enabling
// it cannot change any computed result. The daemon surfaces alerts in the
// journal (state rules), the metrics page (all rules), and its exit code.

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace cea::obs {

enum class SloKind : std::uint8_t {
  kProjectedCapBreach = 0,
  kAllowanceInsolvency = 1,
  kFeedStall = 2,
  kSlotDeadlineMiss = 3,
};
inline constexpr std::size_t kSloKindCount = 4;

/// Stable rule name ("projected_cap_breach", ...) — the journal's alert
/// field and the metrics page's kind label.
const char* slo_kind_name(SloKind kind) noexcept;

/// Sentinel tenant for daemon-level alerts (feed stall, deadline miss).
inline constexpr std::size_t kSloNoTenant = static_cast<std::size_t>(-1);

struct SloAlert {
  SloKind kind = SloKind::kProjectedCapBreach;
  std::size_t tenant = kSloNoTenant;  ///< tenant index, or kSloNoTenant
  std::uint64_t slot = 0;             ///< slot the rule fired at
  double value = 0.0;                 ///< observed quantity
  double threshold = 0.0;             ///< bound it violated
};

struct SloConfig {
  /// Rolling emission window (slots) behind the breach projection.
  std::size_t window = 16;
  /// Projection safety factor: fire when projected remaining emissions
  /// exceed margin * balance. 1.0 = fire exactly at insufficiency; <1
  /// fires earlier (more conservative).
  double breach_margin = 1.0;
  /// Insolvency floor for the allowance balance.
  double min_balance = 0.0;
  /// Feed staleness bound, milliseconds (0 disables the rule).
  std::int64_t feed_stall_ms = 0;
  /// Per-slot wall-time deadline, milliseconds (0 disables the rule).
  std::int64_t slot_deadline_ms = 0;
};

/// Per-tenant state the daemon feeds after every executed slot.
struct SloTenantSlot {
  std::uint64_t slot = 0;     ///< slot just executed
  std::uint64_t horizon = 0;  ///< tenant's scenario horizon
  double emission = 0.0;      ///< e^t of this slot
  double balance = 0.0;       ///< allowance balance after the slot
};

class SloWatchdog {
 public:
  SloWatchdog(SloConfig config, std::size_t num_tenants);

  /// State rules (breach projection, insolvency) for one tenant's slot.
  void observe_slot(std::size_t tenant, const SloTenantSlot& observed);

  /// Feed staleness, from the daemon's poll loop. `last_ready_ms` is the
  /// timestamp of the most recent kReady poll (== now_ms right after one).
  void observe_feed(std::uint64_t slot, std::int64_t now_ms,
                    std::int64_t last_ready_ms);

  /// Wall time of one executed slot.
  void observe_slot_wall(std::uint64_t slot, std::int64_t wall_ms);

  /// Alerts raised since the previous drain, in raise order.
  std::vector<SloAlert> drain();

  /// Forget the alerts and totals accumulated so far while keeping the
  /// rolling windows and episode state. A checkpoint restore
  /// (serve/daemon.cpp) replays the pre-crash emission window through
  /// observe_slot to rebuild this state; the replayed slots' alerts were
  /// already journaled by the previous life and must not re-raise or
  /// count toward the new life's totals.
  void absorb_replay();

  /// Alerts raised per rule since construction (never reset by drain).
  const std::array<std::uint64_t, kSloKindCount>& counts() const noexcept {
    return counts_;
  }
  std::uint64_t total() const noexcept;

  const SloConfig& config() const noexcept { return config_; }

 private:
  void raise(SloKind kind, std::size_t tenant, std::uint64_t slot,
             double value, double threshold);

  struct TenantState {
    std::vector<double> window;  ///< emission ring, config.window wide
    std::size_t head = 0;
    std::size_t filled = 0;
    double window_sum = 0.0;
    bool in_breach = false;
    bool insolvent = false;
  };

  SloConfig config_;
  std::vector<TenantState> tenants_;
  bool feed_stalled_ = false;
  std::vector<SloAlert> pending_;
  std::array<std::uint64_t, kSloKindCount> counts_{};
};

}  // namespace cea::obs
