#include "obs/telemetry.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

namespace cea::obs {
namespace {

// MetricId layout: kind in the top two bits, dense per-kind slot index in
// the rest. Registration is append-only, so an index never moves.
enum : std::uint32_t { kKindCounter = 0, kKindGauge = 1, kKindHistogram = 2 };
constexpr std::uint32_t kKindShift = 30;
constexpr std::uint32_t kIndexMask = (std::uint32_t{1} << kKindShift) - 1;

constexpr MetricId make_id(std::uint32_t kind, std::uint32_t index) {
  return (kind << kKindShift) | index;
}
constexpr std::uint32_t kind_of(MetricId id) { return id >> kKindShift; }
constexpr std::uint32_t index_of(MetricId id) { return id & kIndexMask; }

/// Immutable histogram definition; owned by the registry through a
/// unique_ptr so the address stays stable and shards can cache it and read
/// the edges without taking the registry mutex.
struct HistogramDef {
  std::string name;
  std::vector<double> upper_edges;
};

struct GaugeCell {
  double value = 0.0;
  std::uint64_t seq = 0;  ///< global write sequence; merge keeps the max
};

struct HistCell {
  const HistogramDef* def = nullptr;      ///< bound on first observe
  std::vector<std::uint64_t> buckets;     ///< upper_edges.size() + 1
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
};

struct ShardData {
  std::vector<double> counters;
  std::vector<GaugeCell> gauges;
  std::vector<HistCell> hists;
};

struct TraceRing {
  std::vector<TraceEvent> events;  ///< sized to capacity once tracing starts
  std::size_t next = 0;            ///< write cursor
  std::uint64_t pushed = 0;        ///< total pushes since (re)enable
};

struct Shard;

class Registry {
 public:
  std::mutex mutex;

  // Definitions (append-only, guarded by mutex for writes; names are only
  // read back under the mutex in snapshot()).
  std::vector<std::string> counter_names;
  std::vector<std::string> gauge_names;
  std::vector<std::unique_ptr<HistogramDef>> hist_defs;
  std::unordered_map<std::string, MetricId> by_name;

  // Shard bookkeeping.
  std::vector<Shard*> live_shards;
  ShardData retired;
  std::vector<TraceEvent> retired_events;
  std::uint64_t retired_dropped = 0;
  std::uint32_t next_tid = 0;

  std::size_t trace_capacity = std::size_t{1} << 15;
  std::atomic<std::uint64_t> gauge_seq{0};

  // Cardinality cap (see telemetry.h): distinct names per kind, and the
  // number of registrations redirected to an overflow bin.
  std::size_t metric_capacity = 4096;
  std::uint64_t capped_registrations = 0;
};

/// Leaked singleton: thread-local shards fold themselves in at thread exit,
/// which may happen after static destruction would have run.
Registry& registry() {
  static Registry* instance = new Registry;
  return *instance;
}

void merge_data(const ShardData& from, ShardData& into) {
  if (into.counters.size() < from.counters.size())
    into.counters.resize(from.counters.size(), 0.0);
  for (std::size_t i = 0; i < from.counters.size(); ++i)
    into.counters[i] += from.counters[i];
  if (into.gauges.size() < from.gauges.size())
    into.gauges.resize(from.gauges.size());
  for (std::size_t i = 0; i < from.gauges.size(); ++i) {
    if (from.gauges[i].seq > into.gauges[i].seq) into.gauges[i] = from.gauges[i];
  }
  if (into.hists.size() < from.hists.size()) into.hists.resize(from.hists.size());
  for (std::size_t i = 0; i < from.hists.size(); ++i) {
    const HistCell& src = from.hists[i];
    if (src.count == 0) continue;
    HistCell& dst = into.hists[i];
    dst.def = src.def;
    if (dst.buckets.size() < src.buckets.size())
      dst.buckets.resize(src.buckets.size(), 0);
    for (std::size_t b = 0; b < src.buckets.size(); ++b)
      dst.buckets[b] += src.buckets[b];
    dst.count += src.count;
    dst.sum += src.sum;
    dst.min = std::min(dst.min, src.min);
    dst.max = std::max(dst.max, src.max);
  }
}

void zero_data(ShardData& data) {
  std::fill(data.counters.begin(), data.counters.end(), 0.0);
  for (auto& g : data.gauges) g = GaugeCell{};
  for (auto& h : data.hists) {
    std::fill(h.buckets.begin(), h.buckets.end(), 0);
    h.count = 0;
    h.sum = 0.0;
    h.min = std::numeric_limits<double>::infinity();
    h.max = -std::numeric_limits<double>::infinity();
  }
}

/// Events of a ring in chronological push order (oldest surviving first).
void append_ring_events(const TraceRing& ring, std::vector<TraceEvent>& out) {
  if (ring.pushed == 0) return;
  const std::size_t cap = ring.events.size();
  if (ring.pushed <= cap) {
    out.insert(out.end(), ring.events.begin(),
               ring.events.begin() + static_cast<std::ptrdiff_t>(ring.next));
  } else {
    out.insert(out.end(),
               ring.events.begin() + static_cast<std::ptrdiff_t>(ring.next),
               ring.events.end());
    out.insert(out.end(), ring.events.begin(),
               ring.events.begin() + static_cast<std::ptrdiff_t>(ring.next));
  }
}

std::uint64_t ring_dropped(const TraceRing& ring) {
  const std::size_t cap = ring.events.size();
  return ring.pushed > cap ? ring.pushed - cap : 0;
}

struct Shard {
  ShardData data;
  TraceRing ring;
  std::uint32_t tid = 0;

  Shard() {
    Registry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    tid = reg.next_tid++;
    reg.live_shards.push_back(this);
  }

  ~Shard() {
    Registry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    merge_data(data, reg.retired);
    append_ring_events(ring, reg.retired_events);
    reg.retired_dropped += ring_dropped(ring);
    std::erase(reg.live_shards, this);
  }
};

Shard& local_shard() {
  thread_local Shard shard;
  return shard;
}

/// Slow path of add/set/observe: the shard has not seen this metric index
/// yet. Growth takes the registry mutex (so it cannot race snapshot());
/// afterwards the hot path indexes the grown vector lock-free.
template <typename Vec>
void grow_cells(Vec& cells, std::size_t needed) {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  if (cells.size() < needed) cells.resize(needed);
}

MetricId register_metric(std::uint32_t kind, std::string_view name,
                         std::span<const double> edges = {}) {
  // Under -DCEA_TELEMETRY=OFF the macro sites vanish, and any direct API
  // call degrades to a no-op on an empty registry so harness code needs no
  // #ifdefs.
  if (!compiled_in()) return kInvalidMetric;
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  std::string key(name);
  if (const auto it = reg.by_name.find(key); it != reg.by_name.end()) {
    return kind_of(it->second) == kind ? it->second : kInvalidMetric;
  }
  // Cardinality cap: a new name past the per-kind capacity registers the
  // kind's overflow bin instead (the bin itself may exceed the cap by
  // one). Keeps the registry — and every thread shard and snapshot —
  // bounded under per-edge-keyed naming at fleet scale.
  const char* overflow_name = nullptr;
  std::size_t kind_count = 0;
  switch (kind) {
    case kKindCounter:
      kind_count = reg.counter_names.size();
      overflow_name = "telemetry.capped.counter";
      break;
    case kKindGauge:
      kind_count = reg.gauge_names.size();
      overflow_name = "telemetry.capped.gauge";
      break;
    case kKindHistogram:
      kind_count = reg.hist_defs.size();
      overflow_name = "telemetry.capped.histogram";
      break;
    default:
      return kInvalidMetric;
  }
  if (kind_count >= reg.metric_capacity && key != overflow_name) {
    ++reg.capped_registrations;
    if (const auto it = reg.by_name.find(overflow_name);
        it != reg.by_name.end()) {
      return it->second;
    }
    key = overflow_name;  // first capped registration creates the bin
  }
  MetricId id = kInvalidMetric;
  switch (kind) {
    case kKindCounter:
      id = make_id(kind, static_cast<std::uint32_t>(reg.counter_names.size()));
      reg.counter_names.push_back(key);
      break;
    case kKindGauge:
      id = make_id(kind, static_cast<std::uint32_t>(reg.gauge_names.size()));
      reg.gauge_names.push_back(key);
      break;
    case kKindHistogram: {
      if (edges.empty()) return kInvalidMetric;
      for (std::size_t i = 1; i < edges.size(); ++i) {
        if (!(edges[i] > edges[i - 1])) return kInvalidMetric;
      }
      id = make_id(kind, static_cast<std::uint32_t>(reg.hist_defs.size()));
      auto def = std::make_unique<HistogramDef>();
      def->name = key;
      def->upper_edges.assign(edges.begin(), edges.end());
      reg.hist_defs.push_back(std::move(def));
      break;
    }
    default:
      return kInvalidMetric;
  }
  reg.by_name.emplace(std::move(key), id);
  return id;
}

void push_event(const TraceEvent& event) {
  Shard& shard = local_shard();
  TraceRing& ring = shard.ring;
  if (ring.events.empty()) {
    Registry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    if (!internal::g_tracing.load(std::memory_order_relaxed)) return;
    ring.events.resize(reg.trace_capacity);
    ring.next = 0;
    ring.pushed = 0;
  }
  TraceEvent& slot = ring.events[ring.next];
  slot = event;
  slot.tid = shard.tid;
  ring.next = (ring.next + 1) % ring.events.size();
  ++ring.pushed;
}

}  // namespace

namespace internal {
// Defined outside the registry so a disabled check never touches the
// (lazily constructed) singleton; they gate only whether telemetry
// *records*, never what instrumented code computes.
std::atomic<bool> g_tracing{false};
std::atomic<bool> g_detail{false};
}  // namespace internal

void set_metric_capacity(std::size_t max_names_per_kind) {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  reg.metric_capacity = max_names_per_kind;
}

std::size_t metric_capacity() {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  return reg.metric_capacity;
}

std::uint64_t capped_registrations() {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  return reg.capped_registrations;
}

MetricId counter(std::string_view name) {
  return register_metric(kKindCounter, name);
}

MetricId gauge(std::string_view name) {
  return register_metric(kKindGauge, name);
}

MetricId histogram(std::string_view name,
                   std::span<const double> upper_edges) {
  return register_metric(kKindHistogram, name, upper_edges);
}

MetricId duration_histogram(std::string_view name) {
  // Log-spaced nanosecond edges, three per decade (1, 10^(1/3), 10^(2/3))
  // from 100 ns through 10 s; sub-100ns and >10s land in the end buckets.
  static const std::vector<double> edges = [] {
    std::vector<double> e;
    const double thirds[] = {1.0, 2.154434690031884, 4.641588833612779};
    for (int decade = 2; decade <= 9; ++decade) {
      for (double m : thirds) {
        double scale = 1.0;
        for (int d = 0; d < decade; ++d) scale *= 10.0;
        e.push_back(m * scale);
      }
    }
    e.push_back(1e10);
    return e;
  }();
  return register_metric(kKindHistogram, name, edges);
}

void add(MetricId id, double delta) {
  if (id == kInvalidMetric || kind_of(id) != kKindCounter) return;
  const std::size_t index = index_of(id);
  auto& cells = local_shard().data.counters;
  if (index >= cells.size()) grow_cells(cells, index + 1);
  cells[index] += delta;
}

void set(MetricId id, double value) {
  if (id == kInvalidMetric || kind_of(id) != kKindGauge) return;
  const std::size_t index = index_of(id);
  auto& cells = local_shard().data.gauges;
  if (index >= cells.size()) grow_cells(cells, index + 1);
  // Gauges are last-write-wins across threads; the global sequence number
  // orders writes at merge time. fetch_add is the one atomic in the
  // recording layer — gauges are set at most once per slot, never inside
  // per-edge or per-sample loops.
  const std::uint64_t seq =
      registry().gauge_seq.fetch_add(1, std::memory_order_relaxed) + 1;
  cells[index] = {value, seq};
}

void observe(MetricId id, double value) {
  if (id == kInvalidMetric || kind_of(id) != kKindHistogram) return;
  const std::size_t index = index_of(id);
  auto& cells = local_shard().data.hists;
  if (index >= cells.size()) grow_cells(cells, index + 1);
  HistCell& cell = cells[index];
  if (cell.def == nullptr) {
    Registry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    cell.def = reg.hist_defs[index].get();
    cell.buckets.assign(cell.def->upper_edges.size() + 1, 0);
  }
  const auto& edges = cell.def->upper_edges;
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(edges.begin(), edges.end(), value) - edges.begin());
  ++cell.buckets[bucket];
  ++cell.count;
  cell.sum += value;
  cell.min = std::min(cell.min, value);
  cell.max = std::max(cell.max, value);
}

std::int64_t now_ns() noexcept {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

const char* intern(std::string_view text) {
  // Leaked node-based set: pointers stay valid for the process lifetime
  // (trace events and retired metrics may reference them at exit).
  static std::mutex* mutex = new std::mutex;
  static auto* pool = new std::unordered_map<std::string, std::nullptr_t>;
  const std::lock_guard<std::mutex> lock(*mutex);
  return pool->try_emplace(std::string(text)).first->first.c_str();
}

Snapshot snapshot() {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  ShardData total = reg.retired;  // copy, then fold live shards in
  for (const Shard* shard : reg.live_shards) merge_data(shard->data, total);

  Snapshot snap;
  snap.counters.reserve(reg.counter_names.size());
  for (std::size_t i = 0; i < reg.counter_names.size(); ++i) {
    snap.counters.push_back(
        {reg.counter_names[i],
         i < total.counters.size() ? total.counters[i] : 0.0});
  }
  snap.gauges.reserve(reg.gauge_names.size());
  for (std::size_t i = 0; i < reg.gauge_names.size(); ++i) {
    GaugeValue value{reg.gauge_names[i], 0.0, false};
    if (i < total.gauges.size() && total.gauges[i].seq > 0) {
      value.value = total.gauges[i].value;
      value.ever_set = true;
    }
    snap.gauges.push_back(std::move(value));
  }
  snap.histograms.reserve(reg.hist_defs.size());
  for (std::size_t i = 0; i < reg.hist_defs.size(); ++i) {
    const HistogramDef& def = *reg.hist_defs[i];
    HistogramValue value;
    value.name = def.name;
    value.upper_edges = def.upper_edges;
    value.bucket_counts.assign(def.upper_edges.size() + 1, 0);
    if (i < total.hists.size() && total.hists[i].count > 0) {
      const HistCell& cell = total.hists[i];
      for (std::size_t b = 0; b < cell.buckets.size(); ++b)
        value.bucket_counts[b] = cell.buckets[b];
      value.count = cell.count;
      value.sum = cell.sum;
      value.min = cell.min;
      value.max = cell.max;
    }
    snap.histograms.push_back(std::move(value));
  }
  return snap;
}

void reset() {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  zero_data(reg.retired);
  for (Shard* shard : reg.live_shards) zero_data(shard->data);
}

void enable_tracing(std::size_t capacity_per_thread) {
  if (!compiled_in()) return;
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  reg.trace_capacity = std::max<std::size_t>(capacity_per_thread, 16);
  reg.retired_events.clear();
  reg.retired_dropped = 0;
  for (Shard* shard : reg.live_shards) shard->ring = TraceRing{};
  internal::g_tracing.store(true, std::memory_order_relaxed);
}

void disable_tracing() {
  internal::g_tracing.store(false, std::memory_order_relaxed);
  if (!compiled_in()) return;
  // trace_dropped() counts "since tracing was enabled": drop counts folded
  // in by drains of the ending epoch must not leak into the next one.
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  reg.retired_dropped = 0;
}

std::uint64_t trace_dropped() {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  std::uint64_t dropped = reg.retired_dropped;
  for (const Shard* shard : reg.live_shards) dropped += ring_dropped(shard->ring);
  return dropped;
}

std::vector<TraceEvent> drain_trace() {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  std::vector<TraceEvent> events = std::move(reg.retired_events);
  reg.retired_events.clear();
  for (Shard* shard : reg.live_shards) {
    append_ring_events(shard->ring, events);
    reg.retired_dropped += ring_dropped(shard->ring);
    shard->ring = TraceRing{};
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.start_ns < b.start_ns;
                   });
  return events;
}

void trace_counter(const char* name, double value) {
  if (!tracing_enabled()) return;
  TraceEvent event;
  event.name = name;
  event.start_ns = now_ns();
  event.value = value;
  event.is_counter = true;
  push_event(event);
}

void set_detail(bool enabled) {
  if (!compiled_in()) return;
  internal::g_detail.store(enabled, std::memory_order_relaxed);
}

void ScopedSpan::finish() noexcept {
  const std::int64_t end = now_ns();
  observe(id_, static_cast<double>(end - start_));
  if (tracing_enabled()) {
    TraceEvent event;
    event.name = name_;
    event.start_ns = start_;
    event.dur_ns = end - start_;
    push_event(event);
  }
}

}  // namespace cea::obs
