#pragma once

// Process-wide runtime telemetry: named counters, gauges and fixed-bucket
// histograms, recorded into per-thread shards (plain stores on the hot
// path — no atomics, no locks) and aggregated only when a snapshot is
// drained. A scoped phase timer (CEA_SPAN) feeds a duration histogram and,
// when tracing is enabled, a bounded per-thread ring buffer of trace
// events exportable in Chrome trace-event format (obs/export.h).
//
// Contracts:
//  * Telemetry is observational only — nothing recorded here may feed
//    control flow, so instrumented code stays bit-identical with telemetry
//    compiled in, compiled out, tracing on or off (tests/obs).
//  * Hot-path recording (add / set / observe / span construction) touches
//    only the calling thread's shard. Registration of a *new* metric and
//    shard growth take the registry mutex; both happen once per site.
//  * snapshot() / drain_trace() must be called at a quiescent point: after
//    every parallel_for using instrumented tasks has returned (the pool's
//    job-completion acquire/release pair makes worker shard writes visible
//    to the caller). The benches and tests drain after runs complete.
//  * Compiled out entirely under -DCEA_TELEMETRY=OFF: the CEA_SPAN /
//    CEA_TELEM sites expand to nothing (arguments unevaluated) and the
//    registry stays empty; the API below still links so exporters and
//    harness code need no #ifdefs.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace cea::obs {

/// True when the build was configured with -DCEA_TELEMETRY=ON (the
/// default), i.e. the CEA_SPAN / CEA_TELEM sites are compiled in.
constexpr bool compiled_in() noexcept {
#if defined(CEA_TELEMETRY)
  return true;
#else
  return false;
#endif
}

/// Opaque metric handle: kind tag in the top bits, dense slot index below.
/// Obtained once per site (static local) from the registration functions.
using MetricId = std::uint32_t;
inline constexpr MetricId kInvalidMetric = ~MetricId{0};

/// Register (or look up) a metric by name. Re-registering the same name
/// with the same kind returns the existing id; the same name with a
/// different kind is a programming error and returns kInvalidMetric.
MetricId counter(std::string_view name);
MetricId gauge(std::string_view name);

/// Histogram with explicit finite bucket upper edges (strictly increasing);
/// a value v lands in the first bucket with v <= edge, or in the implicit
/// overflow bucket past the last edge.
MetricId histogram(std::string_view name, std::span<const double> upper_edges);

/// Histogram pre-configured for durations in nanoseconds: log-spaced edges,
/// three per decade from 100 ns to 10 s.
MetricId duration_histogram(std::string_view name);

/// Hot-path recording. No-ops on kInvalidMetric or a kind mismatch.
void add(MetricId id, double delta = 1.0);  ///< counter += delta
void set(MetricId id, double value);        ///< gauge last-write-wins
void observe(MetricId id, double value);    ///< histogram sample

/// Nanoseconds on the steady clock since the process telemetry epoch
/// (first registry use). Monotonic and comparable across threads.
std::int64_t now_ns() noexcept;

/// Intern a dynamically built label into process-lifetime storage and
/// return a stable pointer (deduplicated). Spans and trace events keep
/// name pointers by reference, so labels that are not string literals —
/// e.g. per-layer "nn.fwd.<model>.<layer>" names — must be interned once
/// and reused.
const char* intern(std::string_view text);

// ------------------------------------------------------- cardinality cap

/// Cap on *distinct metric names per kind*. Registration of a new name
/// past the cap is redirected to that kind's overflow bin
/// ("telemetry.capped.counter" / ".gauge" / ".histogram" — created on the
/// first capped registration, allowed past the cap) and counted in
/// capped_registrations(). Existing names always resolve to their own
/// metric. This bounds the snapshot of fleet-scale runs: a harness that
/// keys names per edge ("sim.edge.<i>.x") cannot grow the registry, and
/// therefore every shard and the snapshot, by O(num_edges) at 10k edges.
/// Default: 4096 per kind.
void set_metric_capacity(std::size_t max_names_per_kind);
std::size_t metric_capacity();

/// Registrations redirected to an overflow bin since process start (never
/// reset by reset() — it certifies whether a run stayed under the cap).
std::uint64_t capped_registrations();

// ---------------------------------------------------------------- snapshot

struct CounterValue {
  std::string name;
  double value = 0.0;
};

struct GaugeValue {
  std::string name;
  double value = 0.0;
  bool ever_set = false;
};

struct HistogramValue {
  std::string name;
  std::vector<double> upper_edges;           ///< finite edges, ascending
  std::vector<std::uint64_t> bucket_counts;  ///< size upper_edges.size() + 1
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< defined only when count > 0
  double max = 0.0;  ///< defined only when count > 0
};

struct Snapshot {
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;
};

/// Aggregate every live thread shard plus the folded totals of exited
/// threads. Quiescent-point contract above.
Snapshot snapshot();

/// Zero all recorded values (live shards and retired totals). Metric
/// definitions persist, so cached MetricIds stay valid. Test setup /
/// bench-session start.
void reset();

// ----------------------------------------------------------------- tracing

/// One completed span ("X" phase) or counter sample ("C" phase) for the
/// Chrome trace-event exporter. `name` points at the static string the
/// instrumentation site passed; it is never owned.
struct TraceEvent {
  const char* name = nullptr;
  std::uint32_t tid = 0;        ///< stable per-thread shard id
  std::int64_t start_ns = 0;    ///< now_ns() timebase
  std::int64_t dur_ns = 0;      ///< spans only; 0 for counter events
  double value = 0.0;           ///< counter events only
  bool is_counter = false;
};

namespace internal {
/// Hot-path switches, exposed so tracing_enabled()/detail_enabled() inline
/// to a single relaxed load at the instrumentation sites (an out-of-line
/// call would dominate the cost of an *disabled* check). Toggle only
/// through enable_tracing()/set_detail().
extern std::atomic<bool> g_tracing;
extern std::atomic<bool> g_detail;
}  // namespace internal

/// Start recording trace events into per-thread ring buffers of
/// `capacity_per_thread` events (oldest overwritten when full). Enabling
/// clears any previously recorded events.
void enable_tracing(std::size_t capacity_per_thread = std::size_t{1} << 15);
void disable_tracing();
inline bool tracing_enabled() noexcept {
  return internal::g_tracing.load(std::memory_order_relaxed);
}

/// Number of events that fell out of full rings since tracing was enabled.
std::uint64_t trace_dropped();

/// Collect-and-clear all recorded events, sorted by start time. Quiescent-
/// point contract above.
std::vector<TraceEvent> drain_trace();

/// Record a counter sample into the trace (renders as a value-over-time
/// track in Perfetto, e.g. the trader's dual variable lambda). `name` must
/// be a string with static storage duration. No-op when tracing is off.
void trace_counter(const char* name, double value);

// -------------------------------------------------------- detail switch

/// Fine-grained instrumentation switch for sites too hot to record
/// unconditionally (the simulator's per-edge draw/bandit split, per-solve
/// Tsallis convergence observes, per-block bandit stats — anything that
/// fires more than a handful of times per slot). Default off, so the
/// always-on cost is the slot-level phase spans only (<2% on
/// perf_simulator); the bench harness turns detail on together with
/// tracing when --telemetry is given. Telemetry never feeds control flow,
/// so toggling this cannot change any computed result.
void set_detail(bool enabled);
inline bool detail_enabled() noexcept {
  return internal::g_detail.load(std::memory_order_relaxed);
}

// ------------------------------------------------------------- span timer

/// RAII phase timer: construction stamps now_ns(), destruction records the
/// duration into the histogram `id` and, when tracing is enabled, pushes a
/// trace event. A span constructed with enabled=false reads no clock at
/// all (the dominant cost of an idle span) and records nothing. Use
/// through CEA_SPAN / CEA_SPAN_DETAIL below so the site compiles out under
/// -DCEA_TELEMETRY=OFF.
class ScopedSpan {
 public:
  ScopedSpan(MetricId id, const char* name, bool enabled = true) noexcept
      : id_(id), name_(name), start_(enabled ? now_ns() : -1) {}
  ~ScopedSpan() {
    if (start_ >= 0) finish();
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  void finish() noexcept;

  MetricId id_;
  const char* name_;
  std::int64_t start_;
};

}  // namespace cea::obs

// CEA_SPAN("phase.name"): scoped phase timer for the rest of the enclosing
// block. The name must be a string literal (it is retained by reference in
// trace events). The histogram is registered once per site via a static
// local. Expands to nothing under -DCEA_TELEMETRY=OFF.
//
// CEA_SPAN_DETAIL("phase.name"): the same, but the timer only runs while
// the detail switch is on (set_detail / --telemetry). When detail is off
// the site costs one inlined relaxed load — no clock reads — so it is safe
// on paths that run a handful of times per slot.
//
// CEA_TELEM(statements;): arbitrary telemetry-only statements (counter
// bumps, gauge sets, detail-gated timing) that vanish entirely when
// telemetry is compiled out.
#if defined(CEA_TELEMETRY)
#define CEA_OBS_CONCAT_INNER(a, b) a##b
#define CEA_OBS_CONCAT(a, b) CEA_OBS_CONCAT_INNER(a, b)
#define CEA_SPAN(name)                                                  \
  static const ::cea::obs::MetricId CEA_OBS_CONCAT(cea_span_id_,        \
                                                   __LINE__) =          \
      ::cea::obs::duration_histogram(name);                             \
  const ::cea::obs::ScopedSpan CEA_OBS_CONCAT(cea_span_, __LINE__)(     \
      CEA_OBS_CONCAT(cea_span_id_, __LINE__), name)
#define CEA_SPAN_DETAIL(name)                                           \
  static const ::cea::obs::MetricId CEA_OBS_CONCAT(cea_span_id_,        \
                                                   __LINE__) =          \
      ::cea::obs::duration_histogram(name);                             \
  const ::cea::obs::ScopedSpan CEA_OBS_CONCAT(cea_span_, __LINE__)(     \
      CEA_OBS_CONCAT(cea_span_id_, __LINE__), name,                     \
      ::cea::obs::detail_enabled())
#define CEA_TELEM(...) \
  do {                 \
    __VA_ARGS__        \
  } while (false)
#else
#define CEA_SPAN(name) \
  do {                 \
  } while (false)
#define CEA_SPAN_DETAIL(name) \
  do {                        \
  } while (false)
#define CEA_TELEM(...) \
  do {                 \
  } while (false)
#endif
