#include "opt/brent.h"

#include <cmath>
#include <utility>

namespace cea {

ScalarResult brent_root(const std::function<double(double)>& f, double a,
                        double b, double tolerance, int max_iterations) {
  ScalarResult result;
  double fa = f(a);
  double fb = f(b);
  if (fa == 0.0) return {a, fa, 0, true};
  if (fb == 0.0) return {b, fb, 0, true};
  if (fa * fb > 0.0) return {a, fa, 0, false};

  if (std::abs(fa) < std::abs(fb)) {
    std::swap(a, b);
    std::swap(fa, fb);
  }
  double c = a;
  double fc = fa;
  double d = b - a;  // step before last
  bool used_bisection = true;

  for (int iter = 1; iter <= max_iterations; ++iter) {
    double s;
    if (fa != fc && fb != fc) {
      // Inverse quadratic interpolation.
      s = a * fb * fc / ((fa - fb) * (fa - fc)) +
          b * fa * fc / ((fb - fa) * (fb - fc)) +
          c * fa * fb / ((fc - fa) * (fc - fb));
    } else {
      // Secant.
      s = b - fb * (b - a) / (fb - fa);
    }

    const double mid = (a + b) / 2.0;
    const bool out_of_bracket = (s < std::min(mid, b) || s > std::max(mid, b));
    const bool slow =
        (used_bisection && std::abs(s - b) >= std::abs(b - c) / 2.0) ||
        (!used_bisection && std::abs(s - b) >= std::abs(d) / 2.0);
    if (out_of_bracket || slow) {
      s = mid;
      used_bisection = true;
    } else {
      used_bisection = false;
    }

    const double fs = f(s);
    d = c - b;
    c = b;
    fc = fb;
    if (fa * fs < 0.0) {
      b = s;
      fb = fs;
    } else {
      a = s;
      fa = fs;
    }
    if (std::abs(fa) < std::abs(fb)) {
      std::swap(a, b);
      std::swap(fa, fb);
    }
    if (fb == 0.0 || std::abs(b - a) < tolerance) {
      return {b, fb, iter, true};
    }
  }
  return {b, fb, max_iterations, false};
}

ScalarResult brent_minimize(const std::function<double(double)>& f, double a,
                            double b, double tolerance, int max_iterations) {
  constexpr double kGolden = 0.3819660112501051;  // 2 - phi
  double x = a + kGolden * (b - a);
  double w = x, v = x;
  double fx = f(x);
  double fw = fx, fv = fx;
  double d = 0.0, e = 0.0;

  for (int iter = 1; iter <= max_iterations; ++iter) {
    const double mid = (a + b) / 2.0;
    const double tol1 = tolerance * std::abs(x) + 1e-15;
    const double tol2 = 2.0 * tol1;
    if (std::abs(x - mid) <= tol2 - (b - a) / 2.0) {
      return {x, fx, iter, true};
    }
    bool use_golden = true;
    if (std::abs(e) > tol1) {
      // Fit a parabola through (v,fv), (w,fw), (x,fx).
      const double r = (x - w) * (fx - fv);
      double q = (x - v) * (fx - fw);
      double p = (x - v) * q - (x - w) * r;
      q = 2.0 * (q - r);
      if (q > 0.0) p = -p;
      q = std::abs(q);
      const double e_old = e;
      e = d;
      if (std::abs(p) < std::abs(0.5 * q * e_old) && p > q * (a - x) &&
          p < q * (b - x)) {
        d = p / q;
        const double u = x + d;
        if (u - a < tol2 || b - u < tol2) d = (mid > x ? tol1 : -tol1);
        use_golden = false;
      }
    }
    if (use_golden) {
      e = (x < mid ? b : a) - x;
      d = kGolden * e;
    }
    const double u = x + (std::abs(d) >= tol1 ? d : (d > 0 ? tol1 : -tol1));
    const double fu = f(u);
    if (fu <= fx) {
      if (u < x) b = x; else a = x;
      v = w; fv = fw;
      w = x; fw = fx;
      x = u; fx = fu;
    } else {
      if (u < x) a = u; else b = u;
      if (fu <= fw || w == x) {
        v = w; fv = fw;
        w = u; fw = fu;
      } else if (fu <= fv || v == x || v == w) {
        v = u; fv = fu;
      }
    }
  }
  return {x, fx, max_iterations, false};
}

}  // namespace cea
