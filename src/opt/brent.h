#pragma once

#include <functional>

namespace cea {

/// Result of a one-dimensional solve.
struct ScalarResult {
  double x = 0.0;       ///< argument at the solution
  double fx = 0.0;      ///< function value at x
  int iterations = 0;   ///< iterations consumed
  bool converged = false;
};

/// Find a root of f on [a, b] with Brent's method (inverse quadratic
/// interpolation + secant + bisection). Requires f(a) and f(b) of opposite
/// sign; returns converged=false otherwise.
///
/// The paper's Algorithm 1 complexity analysis cites Brent for the
/// O(log(1/eps)) inner solve of the online-mirror-descent step; this is that
/// solver.
ScalarResult brent_root(const std::function<double(double)>& f, double a,
                        double b, double tolerance = 1e-12,
                        int max_iterations = 200);

/// Minimize a unimodal f on [a, b] with Brent's parabolic-interpolation
/// minimizer (golden-section fallback).
ScalarResult brent_minimize(const std::function<double(double)>& f, double a,
                            double b, double tolerance = 1e-10,
                            int max_iterations = 200);

}  // namespace cea
