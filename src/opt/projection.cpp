#include "opt/projection.h"

#include <algorithm>
#include <cassert>

namespace cea {

std::vector<double> project_to_simplex(std::span<const double> point) {
  assert(!point.empty());
  // Sort descending, find the largest rho with
  // u_rho - (sum_{i<=rho} u_i - 1)/rho > 0, then shift and clamp.
  std::vector<double> sorted(point.begin(), point.end());
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  double running = 0.0;
  double tau = 0.0;
  std::size_t rho = 0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    running += sorted[i];
    const double candidate =
        (running - 1.0) / static_cast<double>(i + 1);
    if (sorted[i] - candidate > 0.0) {
      rho = i + 1;
      tau = candidate;
    }
  }
  (void)rho;
  std::vector<double> projected(point.size());
  for (std::size_t i = 0; i < point.size(); ++i)
    projected[i] = std::max(point[i] - tau, 0.0);
  return projected;
}

std::vector<double> project_to_box(std::span<const double> point, double lo,
                                   double hi) {
  assert(lo <= hi);
  std::vector<double> projected(point.size());
  for (std::size_t i = 0; i < point.size(); ++i)
    projected[i] = std::clamp(point[i], lo, hi);
  return projected;
}

}  // namespace cea
