#pragma once

#include <span>
#include <vector>

namespace cea {

/// Euclidean projection of `point` onto the probability simplex
/// { p : p_i >= 0, sum p_i = 1 } (Duchi et al. 2008, O(n log n)).
std::vector<double> project_to_simplex(std::span<const double> point);

/// Euclidean projection onto the box [lo, hi]^n (element-wise clamp).
std::vector<double> project_to_box(std::span<const double> point, double lo,
                                   double hi);

}  // namespace cea
