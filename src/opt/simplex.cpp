#include "opt/simplex.h"

#include <cassert>
#include <cmath>
#include <limits>

#include "obs/telemetry.h"

namespace cea {
namespace {

constexpr double kEps = 1e-9;

/// Effective relation of a constraint after normalizing its rhs >= 0 (a
/// negative rhs flips the row sign, which mirrors <= and >=).
Relation effective_relation(const LpConstraint& con) noexcept {
  if (con.rhs < 0.0) {
    if (con.relation == Relation::kLessEqual) return Relation::kGreaterEqual;
    if (con.relation == Relation::kGreaterEqual) return Relation::kLessEqual;
  }
  return con.relation;
}

/// Dense simplex tableau over caller-owned arena storage. Rows: one per
/// constraint plus the objective row (last). Columns: structural vars,
/// slack/surplus vars, artificial vars, and the rhs (last). The tableau is
/// one contiguous row-major block — pivoting walks flat memory and never
/// allocates.
class Tableau {
 public:
  Tableau(const LpProblem& problem, util::Arena& arena) {
    const std::size_t n = problem.num_variables();
    const std::size_t m = problem.constraints.size();
    num_structural_ = n;
    num_rows_ = m;

    std::size_t slack_count = 0;
    std::size_t artificial_count = 0;
    for (const auto& con : problem.constraints) {
      const Relation rel = effective_relation(con);
      if (rel != Relation::kEqual) ++slack_count;
      if (rel != Relation::kLessEqual) ++artificial_count;
    }
    num_slack_ = slack_count;
    num_artificial_ = artificial_count;
    cols_ = n + slack_count + artificial_count + 1;

    a_ = arena.alloc_array<double>((m + 1) * cols_);
    basis_ = arena.alloc_array<std::size_t>(m);
    for (std::size_t i = 0; i < (m + 1) * cols_; ++i) a_[i] = 0.0;

    std::size_t next_slack = n;
    std::size_t next_artificial = n + slack_count;
    for (std::size_t r = 0; r < m; ++r) {
      const auto& con = problem.constraints[r];
      assert(con.coeffs.size() == n);
      const double sign = con.rhs < 0.0 ? -1.0 : 1.0;
      double* row = a_ + r * cols_;
      for (std::size_t c = 0; c < n; ++c) row[c] = sign * con.coeffs[c];
      row[cols_ - 1] = sign * con.rhs;
      switch (effective_relation(con)) {
        case Relation::kLessEqual:
          row[next_slack] = 1.0;
          basis_[r] = next_slack++;
          break;
        case Relation::kGreaterEqual:
          row[next_slack] = -1.0;
          ++next_slack;
          row[next_artificial] = 1.0;
          basis_[r] = next_artificial++;
          break;
        case Relation::kEqual:
          row[next_artificial] = 1.0;
          basis_[r] = next_artificial++;
          break;
      }
    }
  }

  std::size_t cols() const noexcept { return cols_; }
  std::size_t rhs_col() const noexcept { return cols_ - 1; }
  std::size_t artificial_begin() const noexcept {
    return num_structural_ + num_slack_;
  }

  /// Load the phase-1 objective (minimize sum of artificials) into the
  /// objective row and price out basic artificials.
  void load_phase1_objective() {
    double* obj = a_ + num_rows_ * cols_;
    for (std::size_t c = 0; c < cols_; ++c) obj[c] = 0.0;
    for (std::size_t c = artificial_begin(); c < rhs_col(); ++c) obj[c] = 1.0;
    for (std::size_t r = 0; r < num_rows_; ++r) {
      if (basis_[r] >= artificial_begin()) {
        const double* row = a_ + r * cols_;
        for (std::size_t c = 0; c < cols_; ++c) obj[c] -= row[c];
      }
    }
  }

  /// Load the phase-2 objective (minimize c.x) and price out basic columns.
  /// Artificial columns are frozen by never being allowed to enter.
  void load_phase2_objective(const double* minimize_costs) {
    double* obj = a_ + num_rows_ * cols_;
    for (std::size_t c = 0; c < cols_; ++c) obj[c] = 0.0;
    for (std::size_t c = 0; c < num_structural_; ++c)
      obj[c] = minimize_costs[c];
    for (std::size_t r = 0; r < num_rows_; ++r) {
      const std::size_t b = basis_[r];
      const double cost = b < num_structural_ ? minimize_costs[b] : 0.0;
      if (cost != 0.0) {
        const double* row = a_ + r * cols_;
        for (std::size_t c = 0; c < cols_; ++c) obj[c] -= cost * row[c];
      }
    }
  }

  /// Run primal simplex on the current objective row with Bland's rule.
  /// `allow_artificial` permits artificial columns to enter (phase 1 only).
  LpStatus iterate(int max_iterations, bool allow_artificial,
                   int& iterations_used) {
    const std::size_t limit =
        allow_artificial ? rhs_col() : artificial_begin();
    const double* obj = a_ + num_rows_ * cols_;
    for (int iter = 0; iter < max_iterations; ++iter) {
      // Bland: entering column = smallest index with negative reduced cost.
      std::size_t pivot_col = limit;
      for (std::size_t c = 0; c < limit; ++c) {
        if (obj[c] < -kEps) {
          pivot_col = c;
          break;
        }
      }
      if (pivot_col == limit) {
        iterations_used += iter;
        return LpStatus::kOptimal;
      }
      // Ratio test; Bland tie-break on smallest basis index.
      std::size_t pivot_row = num_rows_;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (std::size_t r = 0; r < num_rows_; ++r) {
        const double* row = a_ + r * cols_;
        if (row[pivot_col] > kEps) {
          const double ratio = row[rhs_col()] / row[pivot_col];
          if (ratio < best_ratio - kEps ||
              (ratio < best_ratio + kEps &&
               (pivot_row == num_rows_ || basis_[r] < basis_[pivot_row]))) {
            best_ratio = ratio;
            pivot_row = r;
          }
        }
      }
      if (pivot_row == num_rows_) {
        iterations_used += iter;
        return LpStatus::kUnbounded;
      }
      pivot(pivot_row, pivot_col);
    }
    iterations_used += max_iterations;
    return LpStatus::kIterationLimit;
  }

  double objective_row_value() const noexcept {
    return -a_[num_rows_ * cols_ + rhs_col()];
  }

  /// Try to pivot basic artificial variables out after phase 1. Rows whose
  /// artificial cannot leave (all-zero row) are redundant and harmless.
  void drive_out_artificials() {
    for (std::size_t r = 0; r < num_rows_; ++r) {
      if (basis_[r] < artificial_begin()) continue;
      const double* row = a_ + r * cols_;
      if (std::abs(row[rhs_col()]) > kEps) continue;  // should not happen
      for (std::size_t c = 0; c < artificial_begin(); ++c) {
        if (std::abs(row[c]) > kEps) {
          pivot(r, c);
          break;
        }
      }
    }
  }

  void extract_solution(std::vector<double>& x) const {
    x.assign(num_structural_, 0.0);
    for (std::size_t r = 0; r < num_rows_; ++r) {
      if (basis_[r] < num_structural_) x[basis_[r]] = a_[r * cols_ + rhs_col()];
    }
  }

 private:
  void pivot(std::size_t pivot_row, std::size_t pivot_col) {
    double* prow = a_ + pivot_row * cols_;
    const double inv = 1.0 / prow[pivot_col];
    for (std::size_t c = 0; c < cols_; ++c) prow[c] *= inv;
    prow[pivot_col] = 1.0;  // kill round-off
    for (std::size_t r = 0; r <= num_rows_; ++r) {
      if (r == pivot_row) continue;
      double* row = a_ + r * cols_;
      const double factor = row[pivot_col];
      if (factor == 0.0) continue;
      for (std::size_t c = 0; c < cols_; ++c) row[c] -= factor * prow[c];
      row[pivot_col] = 0.0;
    }
    basis_[pivot_row] = pivot_col;
  }

  double* a_ = nullptr;
  std::size_t* basis_ = nullptr;
  std::size_t cols_ = 0;
  std::size_t num_structural_ = 0;
  std::size_t num_slack_ = 0;
  std::size_t num_artificial_ = 0;
  std::size_t num_rows_ = 0;
};

}  // namespace

std::string to_string(LpStatus status) {
  switch (status) {
    case LpStatus::kOptimal: return "optimal";
    case LpStatus::kInfeasible: return "infeasible";
    case LpStatus::kUnbounded: return "unbounded";
    case LpStatus::kIterationLimit: return "iteration-limit";
  }
  return "unknown";
}

std::size_t LpSolver::required_bytes(std::size_t num_variables,
                                     std::size_t num_constraints) noexcept {
  // Worst case: every row contributes one slack and one artificial column.
  const std::size_t cols = num_variables + 2 * num_constraints + 1;
  return (num_constraints + 1) * cols * sizeof(double)   // tableau
         + num_constraints * sizeof(std::size_t)          // basis
         + num_variables * sizeof(double)                 // minimize costs
         + 64;                                            // alignment slack
}

LpSolution LpSolver::solve(const LpProblem& problem, int max_iterations) {
  CEA_SPAN("opt.simplex.solve");
  LpSolution solution;
  const std::size_t n = problem.num_variables();
  if (n == 0) {
    solution.status = LpStatus::kOptimal;
    solution.x = {};
    return solution;
  }
  for (const auto& con : problem.constraints) {
    assert(con.coeffs.size() == n && "constraint arity mismatch");
    (void)con;
  }

  arena_.reset();
  arena_.reserve(required_bytes(n, problem.constraints.size()));
  Tableau tableau(problem, arena_);

  // Phase 1: find a basic feasible solution.
  tableau.load_phase1_objective();
  LpStatus status =
      tableau.iterate(max_iterations, /*allow_artificial=*/true,
                      solution.iterations);
  if (status != LpStatus::kOptimal) {
    solution.status = status;
    return solution;
  }
  if (tableau.objective_row_value() > 1e-7) {
    solution.status = LpStatus::kInfeasible;
    return solution;
  }
  tableau.drive_out_artificials();

  // Phase 2: optimize the real objective (internally always minimize).
  double* minimize_costs = arena_.alloc_array<double>(n);
  for (std::size_t c = 0; c < n; ++c) {
    minimize_costs[c] =
        problem.maximize ? -problem.objective[c] : problem.objective[c];
  }
  tableau.load_phase2_objective(minimize_costs);
  status = tableau.iterate(max_iterations, /*allow_artificial=*/false,
                           solution.iterations);
  if (status != LpStatus::kOptimal) {
    solution.status = status;
    return solution;
  }

  solution.status = LpStatus::kOptimal;
  tableau.extract_solution(solution.x);
  double value = 0.0;
  for (std::size_t c = 0; c < n; ++c)
    value += problem.objective[c] * solution.x[c];
  solution.objective = value;
  CEA_TELEM(static const obs::MetricId obs_solves =
                obs::counter("simplex.solves");
            obs::add(obs_solves);
            static const obs::MetricId obs_pivots =
                obs::counter("simplex.pivots");
            obs::add(obs_pivots, static_cast<double>(solution.iterations)););
  return solution;
}

LpSolution solve_lp(const LpProblem& problem, int max_iterations) {
  LpSolver solver;
  return solver.solve(problem, max_iterations);
}

}  // namespace cea
