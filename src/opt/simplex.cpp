#include "opt/simplex.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace cea {
namespace {

constexpr double kEps = 1e-9;

/// Dense simplex tableau. Rows: one per constraint plus the objective row
/// (last). Columns: structural vars, slack/surplus vars, artificial vars,
/// and the rhs (last).
class Tableau {
 public:
  Tableau(const LpProblem& problem) {
    const std::size_t n = problem.num_variables();
    const std::size_t m = problem.constraints.size();
    num_structural_ = n;
    num_rows_ = m;

    // Count slack/surplus and artificial columns; normalize rhs >= 0.
    std::vector<double> rhs(m);
    std::vector<Relation> rel(m);
    std::vector<std::vector<double>> rows(m, std::vector<double>(n, 0.0));
    for (std::size_t r = 0; r < m; ++r) {
      const auto& con = problem.constraints[r];
      assert(con.coeffs.size() == n);
      double sign = con.rhs < 0.0 ? -1.0 : 1.0;
      rhs[r] = sign * con.rhs;
      rel[r] = con.relation;
      if (sign < 0.0) {
        if (con.relation == Relation::kLessEqual)
          rel[r] = Relation::kGreaterEqual;
        else if (con.relation == Relation::kGreaterEqual)
          rel[r] = Relation::kLessEqual;
      }
      for (std::size_t c = 0; c < n; ++c) rows[r][c] = sign * con.coeffs[c];
    }

    std::size_t slack_count = 0;
    std::size_t artificial_count = 0;
    for (std::size_t r = 0; r < m; ++r) {
      if (rel[r] != Relation::kEqual) ++slack_count;
      if (rel[r] != Relation::kLessEqual) ++artificial_count;
    }
    num_slack_ = slack_count;
    num_artificial_ = artificial_count;
    const std::size_t cols = n + slack_count + artificial_count + 1;
    a_.assign(m + 1, std::vector<double>(cols, 0.0));
    basis_.assign(m, 0);

    std::size_t next_slack = n;
    std::size_t next_artificial = n + slack_count;
    for (std::size_t r = 0; r < m; ++r) {
      for (std::size_t c = 0; c < n; ++c) a_[r][c] = rows[r][c];
      a_[r][cols - 1] = rhs[r];
      switch (rel[r]) {
        case Relation::kLessEqual:
          a_[r][next_slack] = 1.0;
          basis_[r] = next_slack++;
          break;
        case Relation::kGreaterEqual:
          a_[r][next_slack] = -1.0;
          ++next_slack;
          a_[r][next_artificial] = 1.0;
          basis_[r] = next_artificial++;
          break;
        case Relation::kEqual:
          a_[r][next_artificial] = 1.0;
          basis_[r] = next_artificial++;
          break;
      }
    }
  }

  std::size_t cols() const noexcept { return a_[0].size(); }
  std::size_t rhs_col() const noexcept { return cols() - 1; }
  std::size_t artificial_begin() const noexcept {
    return num_structural_ + num_slack_;
  }

  /// Load the phase-1 objective (minimize sum of artificials) into the
  /// objective row and price out basic artificials.
  void load_phase1_objective() {
    auto& obj = a_[num_rows_];
    std::fill(obj.begin(), obj.end(), 0.0);
    for (std::size_t c = artificial_begin(); c < rhs_col(); ++c) obj[c] = 1.0;
    for (std::size_t r = 0; r < num_rows_; ++r) {
      if (basis_[r] >= artificial_begin()) {
        for (std::size_t c = 0; c < cols(); ++c) obj[c] -= a_[r][c];
      }
    }
  }

  /// Load the phase-2 objective (minimize c.x) and price out basic columns.
  /// Artificial columns are frozen by a large positive reduced cost.
  void load_phase2_objective(const std::vector<double>& minimize_costs) {
    auto& obj = a_[num_rows_];
    std::fill(obj.begin(), obj.end(), 0.0);
    for (std::size_t c = 0; c < num_structural_; ++c)
      obj[c] = minimize_costs[c];
    for (std::size_t r = 0; r < num_rows_; ++r) {
      const std::size_t b = basis_[r];
      const double cost = b < num_structural_ ? minimize_costs[b] : 0.0;
      if (cost != 0.0) {
        for (std::size_t c = 0; c < cols(); ++c) obj[c] -= cost * a_[r][c];
      }
    }
  }

  /// Run primal simplex on the current objective row with Bland's rule.
  /// `allow_artificial` permits artificial columns to enter (phase 1 only).
  LpStatus iterate(int max_iterations, bool allow_artificial,
                   int& iterations_used) {
    const std::size_t limit =
        allow_artificial ? rhs_col() : artificial_begin();
    auto& obj = a_[num_rows_];
    for (int iter = 0; iter < max_iterations; ++iter) {
      // Bland: entering column = smallest index with negative reduced cost.
      std::size_t pivot_col = limit;
      for (std::size_t c = 0; c < limit; ++c) {
        if (obj[c] < -kEps) {
          pivot_col = c;
          break;
        }
      }
      if (pivot_col == limit) {
        iterations_used += iter;
        return LpStatus::kOptimal;
      }
      // Ratio test; Bland tie-break on smallest basis index.
      std::size_t pivot_row = num_rows_;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (std::size_t r = 0; r < num_rows_; ++r) {
        if (a_[r][pivot_col] > kEps) {
          const double ratio = a_[r][rhs_col()] / a_[r][pivot_col];
          if (ratio < best_ratio - kEps ||
              (ratio < best_ratio + kEps &&
               (pivot_row == num_rows_ || basis_[r] < basis_[pivot_row]))) {
            best_ratio = ratio;
            pivot_row = r;
          }
        }
      }
      if (pivot_row == num_rows_) {
        iterations_used += iter;
        return LpStatus::kUnbounded;
      }
      pivot(pivot_row, pivot_col);
    }
    iterations_used += max_iterations;
    return LpStatus::kIterationLimit;
  }

  double objective_row_value() const noexcept {
    return -a_[num_rows_][rhs_col()];
  }

  /// Try to pivot basic artificial variables out after phase 1. Rows whose
  /// artificial cannot leave (all-zero row) are redundant and harmless.
  void drive_out_artificials() {
    for (std::size_t r = 0; r < num_rows_; ++r) {
      if (basis_[r] < artificial_begin()) continue;
      if (std::abs(a_[r][rhs_col()]) > kEps) continue;  // should not happen
      for (std::size_t c = 0; c < artificial_begin(); ++c) {
        if (std::abs(a_[r][c]) > kEps) {
          pivot(r, c);
          break;
        }
      }
    }
  }

  std::vector<double> extract_solution() const {
    std::vector<double> x(num_structural_, 0.0);
    for (std::size_t r = 0; r < num_rows_; ++r) {
      if (basis_[r] < num_structural_) x[basis_[r]] = a_[r][rhs_col()];
    }
    return x;
  }

 private:
  void pivot(std::size_t pivot_row, std::size_t pivot_col) {
    auto& prow = a_[pivot_row];
    const double inv = 1.0 / prow[pivot_col];
    for (auto& v : prow) v *= inv;
    prow[pivot_col] = 1.0;  // kill round-off
    for (std::size_t r = 0; r <= num_rows_; ++r) {
      if (r == pivot_row) continue;
      const double factor = a_[r][pivot_col];
      if (factor == 0.0) continue;
      for (std::size_t c = 0; c < cols(); ++c) a_[r][c] -= factor * prow[c];
      a_[r][pivot_col] = 0.0;
    }
    basis_[pivot_row] = pivot_col;
  }

  std::vector<std::vector<double>> a_;
  std::vector<std::size_t> basis_;
  std::size_t num_structural_ = 0;
  std::size_t num_slack_ = 0;
  std::size_t num_artificial_ = 0;
  std::size_t num_rows_ = 0;
};

}  // namespace

std::string to_string(LpStatus status) {
  switch (status) {
    case LpStatus::kOptimal: return "optimal";
    case LpStatus::kInfeasible: return "infeasible";
    case LpStatus::kUnbounded: return "unbounded";
    case LpStatus::kIterationLimit: return "iteration-limit";
  }
  return "unknown";
}

LpSolution solve_lp(const LpProblem& problem, int max_iterations) {
  LpSolution solution;
  const std::size_t n = problem.num_variables();
  if (n == 0) {
    solution.status = LpStatus::kOptimal;
    solution.x = {};
    return solution;
  }
  for (const auto& con : problem.constraints) {
    assert(con.coeffs.size() == n && "constraint arity mismatch");
    (void)con;
  }

  Tableau tableau(problem);

  // Phase 1: find a basic feasible solution.
  tableau.load_phase1_objective();
  LpStatus status =
      tableau.iterate(max_iterations, /*allow_artificial=*/true,
                      solution.iterations);
  if (status != LpStatus::kOptimal) {
    solution.status = status;
    return solution;
  }
  if (tableau.objective_row_value() > 1e-7) {
    solution.status = LpStatus::kInfeasible;
    return solution;
  }
  tableau.drive_out_artificials();

  // Phase 2: optimize the real objective (internally always minimize).
  std::vector<double> minimize_costs = problem.objective;
  if (problem.maximize) {
    for (auto& c : minimize_costs) c = -c;
  }
  tableau.load_phase2_objective(minimize_costs);
  status = tableau.iterate(max_iterations, /*allow_artificial=*/false,
                           solution.iterations);
  if (status != LpStatus::kOptimal) {
    solution.status = status;
    return solution;
  }

  solution.status = LpStatus::kOptimal;
  solution.x = tableau.extract_solution();
  double value = 0.0;
  for (std::size_t c = 0; c < n; ++c)
    value += problem.objective[c] * solution.x[c];
  solution.objective = value;
  return solution;
}

}  // namespace cea
