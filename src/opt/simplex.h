#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace cea {

/// Relation of a linear constraint's left-hand side to its right-hand side.
enum class Relation { kLessEqual, kGreaterEqual, kEqual };

/// One linear constraint: coeffs . x  (relation)  rhs.
struct LpConstraint {
  std::vector<double> coeffs;
  Relation relation = Relation::kLessEqual;
  double rhs = 0.0;
};

/// A linear program over nonnegative variables x >= 0.
///
/// Optional per-variable upper bounds are expressed as extra <= rows by the
/// caller (keeps the solver simple; our offline-trading LPs are small).
struct LpProblem {
  std::vector<double> objective;  ///< coefficients of c . x
  bool maximize = false;          ///< default: minimize
  std::vector<LpConstraint> constraints;

  std::size_t num_variables() const noexcept { return objective.size(); }
};

enum class LpStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

struct LpSolution {
  LpStatus status = LpStatus::kIterationLimit;
  double objective = 0.0;       ///< in the problem's own sense (max or min)
  std::vector<double> x;        ///< primal solution (empty unless optimal)
  int iterations = 0;
};

/// Human-readable status name (for logs and test failure messages).
std::string to_string(LpStatus status);

/// Solve a (small, dense) linear program with the two-phase primal simplex
/// method using Bland's anti-cycling rule.
///
/// This is the library's substitute for the Gurobi solver the paper uses for
/// its Offline baseline: exact for the offline carbon-trading LPs, which have
/// 2T variables and O(T) rows.
LpSolution solve_lp(const LpProblem& problem, int max_iterations = 20000);

}  // namespace cea
