#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/arena.h"

namespace cea {

/// Relation of a linear constraint's left-hand side to its right-hand side.
enum class Relation { kLessEqual, kGreaterEqual, kEqual };

/// One linear constraint: coeffs . x  (relation)  rhs.
struct LpConstraint {
  std::vector<double> coeffs;
  Relation relation = Relation::kLessEqual;
  double rhs = 0.0;
};

/// A linear program over nonnegative variables x >= 0.
///
/// Optional per-variable upper bounds are expressed as extra <= rows by the
/// caller (keeps the solver simple; our offline-trading LPs are small).
struct LpProblem {
  std::vector<double> objective;  ///< coefficients of c . x
  bool maximize = false;          ///< default: minimize
  std::vector<LpConstraint> constraints;

  std::size_t num_variables() const noexcept { return objective.size(); }
};

enum class LpStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

struct LpSolution {
  LpStatus status = LpStatus::kIterationLimit;
  double objective = 0.0;       ///< in the problem's own sense (max or min)
  std::vector<double> x;        ///< primal solution (empty unless optimal)
  int iterations = 0;           ///< simplex pivots across both phases
};

/// Human-readable status name (for logs and test failure messages).
std::string to_string(LpStatus status);

/// Two-phase primal simplex with Bland's anti-cycling rule over an
/// unmanaged flat tableau in a preallocated util::Arena: the tableau
/// (one contiguous row-major block), basis array, and every per-solve
/// temporary come from the arena, so a warmed-up solver performs zero
/// heap allocation per solve (and zero per pivot) no matter how many
/// pivots run. Reuse one LpSolver across solves to amortize the arena;
/// after the first solve of the largest problem shape,
/// arena().overflow_count() staying at 0 certifies the steady state
/// (bench/perf_solver gates on this).
///
/// Not thread-safe: one LpSolver per thread (see solve_offline_trading's
/// thread_local instance).
class LpSolver {
 public:
  LpSolver() = default;
  /// Pre-size the arena (bytes); solve() grows it on demand otherwise.
  explicit LpSolver(std::size_t arena_bytes) : arena_(arena_bytes) {}

  LpSolution solve(const LpProblem& problem, int max_iterations = 20000);

  /// Arena bytes a problem of this shape needs (upper bound: every row
  /// gets both a slack and an artificial column).
  static std::size_t required_bytes(std::size_t num_variables,
                                    std::size_t num_constraints) noexcept;

  const util::Arena& arena() const noexcept { return arena_; }

 private:
  util::Arena arena_;
};

/// Solve a (small, dense) linear program with the two-phase primal simplex
/// method using Bland's anti-cycling rule.
///
/// This is the library's substitute for the Gurobi solver the paper uses for
/// its Offline baseline: exact for the offline carbon-trading LPs, which have
/// 2T variables and O(T) rows. One-shot convenience over a fresh LpSolver;
/// hot paths hold an LpSolver to reuse its arena across solves.
LpSolution solve_lp(const LpProblem& problem, int max_iterations = 20000);

}  // namespace cea
