#include "opt/tsallis_batch.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/telemetry.h"
#include "opt/tsallis_batch_simd.h"
#include "opt/tsallis_step.h"
#include "util/check.h"
#include "util/cpu.h"

namespace cea {

namespace tsallis_detail {
namespace {

/// One-lane reference traits: the same kernel body the SIMD TUs
/// instantiate, over plain doubles. Defines the batched semantics and is
/// the portable fallback. Compiled with -ffp-contract=off like the
/// vector TUs.
struct VecScalar {
  using Reg = double;
  using Mask = bool;
  static constexpr std::size_t kWidth = 1;

  static Reg load(const double* p) noexcept { return *p; }
  static void store(double* p, Reg v) noexcept { *p = v; }
  static Reg set1(double x) noexcept { return x; }
  static Reg add(Reg a, Reg b) noexcept { return a + b; }
  static Reg sub(Reg a, Reg b) noexcept { return a - b; }
  static Reg mul(Reg a, Reg b) noexcept { return a * b; }
  static Reg div(Reg a, Reg b) noexcept { return a / b; }
  static Reg sqrt(Reg a) noexcept { return std::sqrt(a); }
  // vmaxpd semantics: a > b ? a : b (second operand on ties).
  static Reg max(Reg a, Reg b) noexcept { return a > b ? a : b; }
  static Reg abs(Reg a) noexcept { return std::abs(a); }
  static Mask cmp_lt(Reg a, Reg b) noexcept { return a < b; }
  static Mask cmp_gt(Reg a, Reg b) noexcept { return a > b; }
  static Reg select(Mask m, Reg a, Reg b) noexcept { return m ? a : b; }
  static Mask mask_all() noexcept { return true; }
  static Mask mask_and(Mask a, Mask b) noexcept { return a && b; }
  static Mask mask_andnot(Mask a, Mask b) noexcept { return !a && b; }
  static bool any(Mask m) noexcept { return m; }
  static unsigned to_bits(Mask m) noexcept { return m ? 1u : 0u; }
};

static_assert(VecScalar::kWidth == kScalarWidth);

}  // namespace

void newton_batch_scalar(const BatchKernelArgs& args) {
  newton_batch_body<VecScalar>(args);
}

}  // namespace tsallis_detail

namespace {

struct KernelInfo {
  std::size_t width;
  tsallis_detail::BatchKernel kernel;
};

KernelInfo kernel_for(TsallisBatchVariant variant) noexcept {
  switch (variant) {
#if defined(__x86_64__)
    case TsallisBatchVariant::kAvx512:
      return {tsallis_detail::kAvx512Width, &tsallis_detail::newton_batch_avx512};
    case TsallisBatchVariant::kAvx2:
      return {tsallis_detail::kAvx2Width, &tsallis_detail::newton_batch_avx2};
#endif
    default:
      return {tsallis_detail::kScalarWidth,
              &tsallis_detail::newton_batch_scalar};
  }
}

}  // namespace

TsallisBatchVariant tsallis_batch_active_variant() noexcept {
  if (util::have_avx512()) return TsallisBatchVariant::kAvx512;
  if (util::have_avx2()) return TsallisBatchVariant::kAvx2;
  return TsallisBatchVariant::kScalar;
}

void TsallisBatchSolver::clear() noexcept {
  losses_.clear();
  offset_.clear();
  arms_.clear();
  eta_.clear();
  warm_.clear();
  min_loss_.clear();
  p_.clear();
  warm_out_.clear();
  solved_ = false;
}

std::size_t TsallisBatchSolver::push(std::span<const double> cumulative_losses,
                                     double eta, double scaled_lambda_warm) {
  assert(eta > 0.0);
  assert(!cumulative_losses.empty());
  const std::size_t index = arms_.size();
  offset_.push_back(losses_.size());
  arms_.push_back(cumulative_losses.size());
  eta_.push_back(eta);
  warm_.push_back(scaled_lambda_warm);
  losses_.insert(losses_.end(), cumulative_losses.begin(),
                 cumulative_losses.end());
  // The losses are hot right here, so fold the oracle's min_element scan
  // into staging instead of re-reading them in the solve pre-pass.
  double min_loss = cumulative_losses[0];
  for (const double loss : cumulative_losses.subspan(1))
    if (loss < min_loss) min_loss = loss;
  min_loss_.push_back(min_loss);
  solved_ = false;
  return index;
}

void TsallisBatchSolver::solve() { solve_variant(tsallis_batch_active_variant()); }

void TsallisBatchSolver::solve_variant(TsallisBatchVariant variant) {
  CEA_SPAN("opt.tsallis.batch_solve");
  const KernelInfo info = kernel_for(variant);
  const std::size_t width = info.width;
  const int max_iters = tsallis_newton_iteration_cap();

  p_.resize(losses_.size());
  warm_out_.assign(warm_.begin(), warm_.end());

  // Group multi-arm requests by arm count so one SoA chunk shares its arm
  // loop; single-arm requests short-circuit exactly like the oracle
  // (p = {1}, warm untouched). Within a group, warm-started requests are
  // packed before cold ones: a chunk runs until its slowest lane exits,
  // and warm solves converge in a few iterations while cold ones take
  // many, so mixing them wastes most of the fast lanes' sweeps. Chunk
  // composition cannot affect results — every lane's trajectory depends
  // only on its own request.
  order_.clear();
  group_arms_.clear();
  for (std::size_t i = 0; i < arms_.size(); ++i) {
    if (arms_[i] == 1) {
      p_[offset_[i]] = 1.0;
    } else if (std::find(group_arms_.begin(), group_arms_.end(), arms_[i]) ==
               group_arms_.end()) {
      group_arms_.push_back(arms_[i]);
    }
  }
  std::sort(group_arms_.begin(), group_arms_.end());
  // Counting sort into (arm count, warm-before-cold) buckets — one pass
  // to count, one to place — instead of rescanning every request per
  // bucket. Stable (indices stay in push order within a bucket), so the
  // chunk layout is deterministic.
  group_offsets_.assign(2 * group_arms_.size() + 1, 0);
  const auto bucket_of = [&](std::size_t i) {
    const std::size_t pos = static_cast<std::size_t>(
        std::find(group_arms_.begin(), group_arms_.end(), arms_[i]) -
        group_arms_.begin());
    return 2 * pos + (warm_[i] > 0.0 ? 0 : 1);
  };
  for (std::size_t i = 0; i < arms_.size(); ++i)
    if (arms_[i] > 1) ++group_offsets_[bucket_of(i) + 1];
  for (std::size_t b = 1; b < group_offsets_.size(); ++b)
    group_offsets_[b] += group_offsets_[b - 1];
  order_.resize(group_offsets_.back());
  for (std::size_t i = 0; i < arms_.size(); ++i)
    if (arms_[i] > 1) order_[group_offsets_[bucket_of(i)]++] = i;

  CEA_TELEM(static const obs::MetricId obs_batches =
                obs::counter("tsallis.batch.solves");
            obs::add(obs_batches);
            static const obs::MetricId obs_requests =
                obs::counter("tsallis.batch.requests");
            obs::add(obs_requests, static_cast<double>(arms_.size())););

  lane_eta_.resize(width);
  lane_lambda_.resize(width);
  lane_lo_.resize(width);
  lane_hi_.resize(width);
  lane_total_.resize(width);
  lane_exit_.resize(width);
  lane_iters_.resize(width);

  std::size_t group_begin = 0;
  while (group_begin < order_.size()) {
    const std::size_t n = arms_[order_[group_begin]];
    std::size_t group_end = group_begin;
    while (group_end < order_.size() && arms_[order_[group_end]] == n)
      ++group_end;

    theta_soa_.resize(n * width);

    for (std::size_t chunk = group_begin; chunk < group_end; chunk += width) {
      const std::size_t live = std::min(width, group_end - chunk);

      // Benign padding so tail lanes compute finite garbage.
      for (std::size_t lane = live; lane < width; ++lane) {
        lane_eta_[lane] = 1.0;
        lane_lambda_[lane] = 1.0;
        lane_lo_[lane] = 0.5;
        lane_hi_[lane] = 2.0;
        for (std::size_t a = 0; a < n; ++a) theta_soa_[a * width + lane] = 0.0;
      }

      // Per-lane pre-pass: theta shift, bracket, and initial guess with
      // the oracle's exact expressions and preference order (warm hint,
      // equal-theta surrogate, bracket midpoint).
      for (std::size_t lane = 0; lane < live; ++lane) {
        const std::size_t req = order_[chunk + lane];
        const double* losses = losses_.data() + offset_[req];
        const double eta = eta_[req];
        const double min_loss = min_loss_[req];

        const double lambda_lo = 2.0 / eta;
        const double lambda_hi = 2.0 * std::sqrt(static_cast<double>(n)) / eta;
        double lambda = 0.0;
        bool have_guess = false;
        if (warm_[req] > 0.0) {
          lambda = warm_[req] / eta;
          have_guess = lambda > lambda_lo && lambda < lambda_hi;
        }
        if (have_guess) {
          for (std::size_t a = 0; a < n; ++a)
            theta_soa_[a * width + lane] = (losses[a] - min_loss);
        } else {
          // Cold start: accumulate the oracle's mean-theta surrogate in
          // the same transpose pass (same values, same addition order).
          double mean_theta = 0.0;
          for (std::size_t a = 0; a < n; ++a) {
            const double th = losses[a] - min_loss;
            theta_soa_[a * width + lane] = th;
            mean_theta += th;
          }
          mean_theta /= static_cast<double>(n);
          lambda = lambda_hi - mean_theta;
          if (!(lambda > lambda_lo && lambda < lambda_hi))
            lambda = 0.5 * (lambda_lo + lambda_hi);
        }
        lane_eta_[lane] = eta;
        lane_lambda_[lane] = lambda;
        lane_lo_[lane] = lambda_lo;
        lane_hi_[lane] = lambda_hi;
      }

      tsallis_detail::BatchKernelArgs args;
      args.num_arms = n;
      args.theta = theta_soa_.data();
      args.eta = lane_eta_.data();
      args.lambda = lane_lambda_.data();
      args.lo = lane_lo_.data();
      args.hi = lane_hi_.data();
      args.total = lane_total_.data();
      args.exit_kind = lane_exit_.data();
      args.iters = lane_iters_.data();
      args.max_iters = max_iters;
      info.kernel(args);

      // Per-lane post-pass: renormalize converged lanes from their exit
      // state, rerun diverged lanes through the scalar oracle (which
      // replays the identical Newton trajectory into its Brent fallback).
      for (std::size_t lane = 0; lane < live; ++lane) {
        const std::size_t req = order_[chunk + lane];
        const double eta = eta_[req];
        double* p = p_.data() + offset_[req];

        if (lane_exit_[lane] == 0) {
          double warm = warm_[req];
          tsallis_probabilities_into(
              std::span<const double>(losses_.data() + offset_[req], n), eta,
              oracle_p_, oracle_theta_, &warm);
          std::copy(oracle_p_.begin(), oracle_p_.end(), p);
          warm_out_[req] = warm;
          CEA_TELEM(static const obs::MetricId obs_delegated =
                        obs::counter("tsallis.batch.delegated");
                    obs::add(obs_delegated););
          continue;
        }

        const double lambda = lane_lambda_[lane];
        warm_out_[req] = eta * lambda;
        double total;
        if (lane_exit_[lane] == 1) {
          // Mass-converged: recompute the unnormalized probabilities from
          // the frozen lambda with the oracle's exact per-arm chain —
          // identical bits to the mass_i values of the exit iteration.
          // The exit mass is already known, so the renormalization folds
          // into the same pass: ((4*r)*r) * inv_total multiplies in the
          // oracle's order and reproduces its two-pass bits exactly.
          total = lane_total_[lane];
          const double inv_total = 1.0 / total;
          for (std::size_t a = 0; a < n; ++a) {
            const double r =
                1.0 / (eta * (theta_soa_[a * width + lane] + lambda));
            p[a] = ((4.0 * r) * r) * inv_total;
          }
        } else {
          // Stalled: recompute from the root, the oracle's !p_current
          // path. The mass is only known after the sweep, so this branch
          // keeps the oracle's two-pass normalization.
          total = 0.0;
          for (std::size_t a = 0; a < n; ++a) {
            const double denom = eta * (theta_soa_[a * width + lane] + lambda);
            p[a] = 4.0 / (denom * denom);
            total += p[a];
          }
          const double inv_total = 1.0 / total;
          for (std::size_t a = 0; a < n; ++a) p[a] *= inv_total;
        }

#if defined(CEA_TELEMETRY)
        if (obs::detail_enabled()) {
          static const double kIterEdges[] = {1,  2,  3,  4,  6,  8, 12,
                                              16, 24, 32, 48, 64, 100};
          static const obs::MetricId obs_iters =
              obs::histogram("tsallis.newton_iters", kIterEdges);
          obs::observe(obs_iters,
                       static_cast<double>(std::min(lane_iters_[lane] + 1, 100)));
          static const obs::MetricId obs_solves = obs::counter("tsallis.solves");
          obs::add(obs_solves);
        }
#endif
        CEA_CHECK(std::abs(total - 1.0) <= 1e-6, "tsallis.solver_residual",
                  audit::kNoIndex, audit::kNoIndex, total - 1.0,
                  "pre-normalization mass " << total << " deviates from 1 by "
                                            << std::abs(total - 1.0));
#if defined(CEA_AUDIT)
        {
          double audit_sum = 0.0;
          for (std::size_t a = 0; a < n; ++a) {
            CEA_CHECK(std::isfinite(p[a]) && p[a] > 0.0 && p[a] <= 1.0 + 1e-12,
                      "tsallis.simplex_coordinate", audit::kNoIndex,
                      audit::kNoIndex, p[a],
                      "probability " << p[a] << " outside (0, 1]");
            audit_sum += p[a];
          }
          CEA_CHECK(std::abs(audit_sum - 1.0) <= 1e-12, "tsallis.simplex_mass",
                    audit::kNoIndex, audit::kNoIndex, audit_sum - 1.0,
                    "renormalized mass " << audit_sum << " != 1");
        }
#endif
      }
    }
    group_begin = group_end;
  }
  solved_ = true;
}

std::span<const double> TsallisBatchSolver::probabilities(
    std::size_t i) const {
  assert(solved_ && i < arms_.size());
  return {p_.data() + offset_[i], arms_[i]};
}

double TsallisBatchSolver::scaled_lambda_warm(std::size_t i) const {
  assert(solved_ && i < arms_.size());
  return warm_out_[i];
}

}  // namespace cea
