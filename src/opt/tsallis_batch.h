#pragma once

// Batched cross-edge solver for the Tsallis-INF OMD step: many
// independent tsallis_probabilities_into solves (one per edge, staged by
// the simulator before a slot's edge fan-out) iterate Newton together,
// one solve per SIMD lane with per-lane convergence masks. Mirrors the
// nn/gemm dispatch idiom: a scalar lane kernel defines the semantics,
// the AVX2/AVX-512 kernels live in their own -m-flagged TUs
// (tsallis_batch_avx2.cpp / tsallis_batch_avx512.cpp) behind
// util::have_avx2/have_avx512 checks.
//
// Bit-identity contract (tests/opt/test_tsallis_batch.cpp): for every
// request, probabilities() and scaled_lambda_warm() equal — bit for bit —
// what the scalar oracle tsallis_probabilities_into returns for the same
// (losses, eta, warm) inputs, on every variant and for any batch
// composition. Lanes whose Newton iteration exhausts the cap are rerun
// wholesale through the scalar oracle, so even the Brent fallback path
// is reproduced verbatim.

#include <cstddef>
#include <span>
#include <vector>

namespace cea {

/// Kernel variant, in dispatch-preference order.
enum class TsallisBatchVariant { kScalar, kAvx2, kAvx512 };

/// Variant solve() dispatches to on this machine (CEA_FORCE_ISA caps it;
/// see util/cpu.h).
TsallisBatchVariant tsallis_batch_active_variant() noexcept;

/// Staging + solve + results, reusable across slots: push one request per
/// pending edge solve, call solve(), then read each edge's probabilities
/// and refreshed warm-start. All storage is retained between clear()
/// cycles, so a warmed-up solver allocates nothing per slot.
class TsallisBatchSolver {
 public:
  /// Drop all requests and results; keeps capacity.
  void clear() noexcept;

  /// Append one OMD solve (same arguments as tsallis_probabilities_into;
  /// pass warm == 0.0 for a cold start). Returns the request's index.
  std::size_t push(std::span<const double> cumulative_losses, double eta,
                   double scaled_lambda_warm = 0.0);

  std::size_t size() const noexcept { return arms_.size(); }

  /// Solve every pending request on the best available kernel.
  void solve();

  /// solve() pinned to one kernel variant — the hook the equivalence
  /// tests and perf_solver use. Callers must check util::have_avx2 /
  /// have_avx512 before requesting a SIMD variant.
  void solve_variant(TsallisBatchVariant variant);

  /// Normalized probability vector of request i (valid until the next
  /// clear/push/solve).
  std::span<const double> probabilities(std::size_t i) const;

  /// Refreshed scaled root eta*lambda of request i — what the oracle
  /// would have left in *scaled_lambda_warm (the pushed value, unchanged,
  /// for single-arm requests).
  double scaled_lambda_warm(std::size_t i) const;

 private:
  // Requests (parallel arrays; losses_ is the concatenated payload and
  // offset_[i] its start — probabilities share the same layout in p_).
  std::vector<double> losses_;
  std::vector<std::size_t> offset_;
  std::vector<std::size_t> arms_;
  std::vector<double> eta_;
  std::vector<double> warm_;
  std::vector<double> min_loss_;  // per-request min, folded into push()

  // Results.
  std::vector<double> p_;
  std::vector<double> warm_out_;
  bool solved_ = false;

  // Chunk scratch (lane-width arrays + arm-major SoA blocks).
  std::vector<std::size_t> order_;
  std::vector<std::size_t> group_arms_;
  std::vector<std::size_t> group_offsets_;
  std::vector<double> theta_soa_;
  std::vector<double> lane_eta_, lane_lambda_, lane_lo_, lane_hi_,
      lane_total_;
  std::vector<unsigned char> lane_exit_;
  std::vector<int> lane_iters_;
  std::vector<double> oracle_p_, oracle_theta_;  // divergence delegation
};

}  // namespace cea
