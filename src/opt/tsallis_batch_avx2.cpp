// AVX2 batched Tsallis-Newton kernel: 4 solves per sweep in one __m256d.
// This TU is compiled with -mavx2 -ffp-contract=off (src/opt/CMakeLists.txt)
// and must only be entered behind the util::have_avx2() runtime check.
// vdivpd/vsqrtpd are IEEE correctly rounded, so each lane reproduces the
// scalar oracle's arithmetic bit for bit.

#if defined(__x86_64__)

#include <immintrin.h>

#include "opt/tsallis_batch_simd.h"

namespace cea::tsallis_detail {
namespace {

struct VecAvx2 {
  using Reg = __m256d;
  using Mask = __m256d;  // lanewise all-ones / all-zeros
  static constexpr std::size_t kWidth = 4;

  static Reg load(const double* p) noexcept { return _mm256_loadu_pd(p); }
  static void store(double* p, Reg v) noexcept { _mm256_storeu_pd(p, v); }
  static Reg set1(double x) noexcept { return _mm256_set1_pd(x); }
  static Reg add(Reg a, Reg b) noexcept { return _mm256_add_pd(a, b); }
  static Reg sub(Reg a, Reg b) noexcept { return _mm256_sub_pd(a, b); }
  static Reg mul(Reg a, Reg b) noexcept { return _mm256_mul_pd(a, b); }
  static Reg div(Reg a, Reg b) noexcept { return _mm256_div_pd(a, b); }
  static Reg sqrt(Reg a) noexcept { return _mm256_sqrt_pd(a); }
  static Reg max(Reg a, Reg b) noexcept { return _mm256_max_pd(a, b); }
  static Reg abs(Reg a) noexcept {
    return _mm256_andnot_pd(_mm256_set1_pd(-0.0), a);
  }

  static Mask cmp_lt(Reg a, Reg b) noexcept {
    return _mm256_cmp_pd(a, b, _CMP_LT_OQ);
  }
  static Mask cmp_gt(Reg a, Reg b) noexcept {
    return _mm256_cmp_pd(a, b, _CMP_GT_OQ);
  }
  static Reg select(Mask m, Reg a, Reg b) noexcept {  // m ? a : b
    return _mm256_blendv_pd(b, a, m);
  }
  static Mask mask_all() noexcept {
    return _mm256_cmp_pd(_mm256_setzero_pd(), _mm256_setzero_pd(), _CMP_EQ_OQ);
  }
  static Mask mask_and(Mask a, Mask b) noexcept { return _mm256_and_pd(a, b); }
  static Mask mask_andnot(Mask a, Mask b) noexcept {  // ~a & b
    return _mm256_andnot_pd(a, b);
  }
  static bool any(Mask m) noexcept { return _mm256_movemask_pd(m) != 0; }
  static unsigned to_bits(Mask m) noexcept {
    return static_cast<unsigned>(_mm256_movemask_pd(m));
  }
};

static_assert(VecAvx2::kWidth == kAvx2Width);

}  // namespace

void newton_batch_avx2(const BatchKernelArgs& args) {
  newton_batch_body<VecAvx2>(args);
}

}  // namespace cea::tsallis_detail

#endif  // defined(__x86_64__)
