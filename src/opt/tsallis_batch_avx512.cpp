// AVX-512 batched Tsallis-Newton kernel: 8 solves per sweep in one
// __m512d, with native __mmask8 lane masks. This TU is compiled with
// -mavx512vl -mavx512dq -ffp-contract=off (src/opt/CMakeLists.txt) and
// must only be entered behind the util::have_avx512() runtime check.

#if defined(__x86_64__)

// GCC 12's unmasked _mm512_sqrt_pd/_mm512_max_pd seed their result with
// _mm512_undefined_pd, a documented false positive for this warning.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

#include <immintrin.h>

#include "opt/tsallis_batch_simd.h"

namespace cea::tsallis_detail {
namespace {

struct VecAvx512 {
  using Reg = __m512d;
  using Mask = __mmask8;
  static constexpr std::size_t kWidth = 8;

  static Reg load(const double* p) noexcept { return _mm512_loadu_pd(p); }
  static void store(double* p, Reg v) noexcept { _mm512_storeu_pd(p, v); }
  static Reg set1(double x) noexcept { return _mm512_set1_pd(x); }
  static Reg add(Reg a, Reg b) noexcept { return _mm512_add_pd(a, b); }
  static Reg sub(Reg a, Reg b) noexcept { return _mm512_sub_pd(a, b); }
  static Reg mul(Reg a, Reg b) noexcept { return _mm512_mul_pd(a, b); }
  static Reg div(Reg a, Reg b) noexcept { return _mm512_div_pd(a, b); }
  static Reg sqrt(Reg a) noexcept { return _mm512_sqrt_pd(a); }
  static Reg max(Reg a, Reg b) noexcept { return _mm512_max_pd(a, b); }
  static Reg abs(Reg a) noexcept {
    // Not _mm512_abs_pd: its _mm512_undefined_pd seed trips GCC's
    // -Wmaybe-uninitialized. The sign-mask andnot is the same single op.
    return _mm512_andnot_pd(_mm512_set1_pd(-0.0), a);
  }

  static Mask cmp_lt(Reg a, Reg b) noexcept {
    return _mm512_cmp_pd_mask(a, b, _CMP_LT_OQ);
  }
  static Mask cmp_gt(Reg a, Reg b) noexcept {
    return _mm512_cmp_pd_mask(a, b, _CMP_GT_OQ);
  }
  static Reg select(Mask m, Reg a, Reg b) noexcept {  // m ? a : b
    return _mm512_mask_blend_pd(m, b, a);
  }
  static Mask mask_all() noexcept { return static_cast<Mask>(0xff); }
  static Mask mask_and(Mask a, Mask b) noexcept {
    return static_cast<Mask>(a & b);
  }
  static Mask mask_andnot(Mask a, Mask b) noexcept {  // ~a & b
    return static_cast<Mask>(~a & b);
  }
  static bool any(Mask m) noexcept { return m != 0; }
  static unsigned to_bits(Mask m) noexcept { return m; }
};

static_assert(VecAvx512::kWidth == kAvx512Width);

}  // namespace

void newton_batch_avx512(const BatchKernelArgs& args) {
  newton_batch_body<VecAvx512>(args);
}

}  // namespace cea::tsallis_detail

#endif  // defined(__x86_64__)
