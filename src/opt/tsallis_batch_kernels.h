#pragma once

// Internal contract between the batched Tsallis-Newton driver
// (tsallis_batch.cpp) and the SIMD kernel translation units
// (tsallis_batch_avx2.cpp / tsallis_batch_avx512.cpp). Nothing here is
// public API; include opt/tsallis_batch.h instead.
//
// A kernel runs the safeguarded Newton iteration of tsallis_step.cpp for
// `width` independent solves at once, one per vector lane. Per-lane state
// (eta, lambda, bracket) lives in width-length arrays; per-arm state
// (theta) is arm-major SoA:
//
//   theta(a, lane) = theta[a * width + lane]
//
// Every lane evaluates exactly the scalar oracle's arithmetic chain —
// same operation order, same groupings, one IEEE-correctly-rounded
// div/sqrt per step, never a fused multiply-add (the TUs are compiled
// with -ffp-contract=off) — so a lane's lambda trajectory is
// bit-identical to a standalone tsallis_probabilities_into call with the
// same inputs. Lanes that exit keep their lambda frozen; later sweeps
// recompute identical bits for them, which is why no masking of the
// arithmetic is needed. The kernel does not store per-arm probabilities:
// the driver reconstructs them from the frozen lambda with the identical
// chain, reproducing the oracle's values bit for bit. Lanes record how
// they exited:
//
//   kind 0 = diverged (max_iters exhausted) — the driver reruns the whole
//            solve through the scalar oracle, reproducing its Brent
//            fallback verbatim;
//   kind 1 = mass converged (|mass - 1| < 1e-10) — lambda[] holds the
//            frozen root and total[] the exit mass; the driver recomputes
//            p via r = 1/(eta*(theta+lambda)), p = (4*r)*r;
//   kind 2 = step stalled — lambda[] holds the root (already advanced to
//            `next`, like the oracle's pre-break assignment); the driver
//            recomputes p from it exactly as the oracle's !p_current
//            path does, p = 4/(denom*denom).

#include <cstddef>

namespace cea::tsallis_detail {

inline constexpr std::size_t kScalarWidth = 1;
inline constexpr std::size_t kAvx2Width = 4;    // one __m256d of lambdas
inline constexpr std::size_t kAvx512Width = 8;  // one __m512d of lambdas

/// All arrays hold `width` lanes (the variant's vector width); padded
/// lanes must be pre-filled with benign finite values by the driver and
/// are computed but ignored.
struct BatchKernelArgs {
  std::size_t num_arms = 0;        ///< arms per solve (same across lanes)
  const double* theta = nullptr;   ///< [num_arms * width], arm-major SoA
  const double* eta = nullptr;     ///< [width]
  double* lambda = nullptr;        ///< [width] in: initial guess, out: root
  const double* lo = nullptr;      ///< [width] initial lower bracket
  const double* hi = nullptr;      ///< [width] initial upper bracket
  double* total = nullptr;         ///< [width] exit mass (kind-1 lanes)
  unsigned char* exit_kind = nullptr;  ///< [width] 0/1/2, see above
  int* iters = nullptr;            ///< [width] loop index at exit
  int max_iters = 100;             ///< Newton cap (test hook lowers it)
};

/// (func, width) of one kernel variant.
using BatchKernel = void (*)(const BatchKernelArgs&);

void newton_batch_scalar(const BatchKernelArgs& args);

#if defined(__x86_64__)
/// Only call behind util::have_avx2() / have_avx512().
void newton_batch_avx2(const BatchKernelArgs& args);
void newton_batch_avx512(const BatchKernelArgs& args);
#endif

}  // namespace cea::tsallis_detail
