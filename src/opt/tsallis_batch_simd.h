#pragma once

// Shared batched-Newton kernel body, parameterized on a vector-register
// traits type (the nn/gemm_simd.h pattern). Each kernel TU includes this
// header, instantiates newton_batch_body with its traits, and is compiled
// with the matching -m flags plus -ffp-contract=off.
//
// The body is a line-for-line transcription of the scalar Newton loop in
// tsallis_step.cpp with lane masks in place of early breaks:
//
//  * the per-arm chain r = 1/(eta*(theta+lambda)), mass_i = (4*r)*r,
//    deriv -= ((2*eta)*mass_i)*r keeps the oracle's exact groupings and
//    accumulates mass/deriv in increasing-arm order ((2*eta) is hoisted —
//    identical bits, it only depends on the lane);
//  * exited lanes freeze lambda, so later sweeps recompute identical bits
//    for them (IEEE div/mul/sqrt are deterministic); the unnormalized
//    probabilities are not stored per iteration at all — the driver
//    recomputes them from the frozen lambda with the same chain, which
//    reproduces the oracle's stores bit for bit;
//  * bracket updates, the h(lambda) = mass^{-1/2} - 1 Newton step, the
//    bracket-violation midpoint reset, and the stall test blend under the
//    active mask only, mirroring the oracle's statement order exactly.
//
// Ordered vector compares make NaN steps fall into the midpoint reset
// branch just like the scalar `!(next > lo && next < hi)` test does.

#include <cstddef>

#include "opt/tsallis_batch_kernels.h"

namespace cea::tsallis_detail {

template <typename V>
void newton_batch_body(const BatchKernelArgs& args) {
  using Reg = typename V::Reg;
  using Mask = typename V::Mask;
  constexpr std::size_t kW = V::kWidth;
  const std::size_t n = args.num_arms;

  const Reg eta = V::load(args.eta);
  Reg lambda = V::load(args.lambda);
  Reg lo = V::load(args.lo);
  Reg hi = V::load(args.hi);
  const Reg one = V::set1(1.0);
  const Reg two = V::set1(2.0);
  const Reg four = V::set1(4.0);
  const Reg half = V::set1(0.5);
  const Reg mass_tol = V::set1(1e-10);
  const Reg step_tol = V::set1(1e-15);
  const Reg two_eta = V::mul(two, eta);

  Reg total = V::set1(0.0);
  Mask active = V::mask_all();
  for (std::size_t lane = 0; lane < kW; ++lane) {
    args.exit_kind[lane] = 0;
    args.iters[lane] = args.max_iters;
  }
  const auto record = [&](Mask m, unsigned char kind, int iter) {
    const unsigned bits = V::to_bits(m);
    for (std::size_t lane = 0; lane < kW; ++lane) {
      if (bits & (1u << lane)) {
        args.exit_kind[lane] = kind;
        args.iters[lane] = iter;
      }
    }
  };

  for (int iter = 0; iter < args.max_iters && V::any(active); ++iter) {
    Reg mass = V::set1(0.0);
    Reg deriv = V::set1(0.0);
    for (std::size_t a = 0; a < n; ++a) {
      const Reg th = V::load(args.theta + a * kW);
      const Reg r = V::div(one, V::mul(eta, V::add(th, lambda)));
      const Reg mass_i = V::mul(V::mul(four, r), r);
      mass = V::add(mass, mass_i);
      deriv = V::sub(deriv, V::mul(V::mul(two_eta, mass_i), r));
    }

    // Exit 1: mass converged. Remember the exit mass and freeze; the
    // driver recomputes this lane's unnormalized p from the frozen
    // lambda (identical bits to the oracle's converged-exit stores).
    const Mask newly_converged =
        V::mask_and(active, V::cmp_lt(V::abs(V::sub(mass, one)), mass_tol));
    if (V::any(newly_converged)) {
      total = V::select(newly_converged, mass, total);
      record(newly_converged, 1, iter);
      active = V::mask_andnot(newly_converged, active);
      if (!V::any(active)) break;
    }

    // Bracket update (active lanes): too much mass -> lambda must grow.
    const Mask mass_gt1 = V::cmp_gt(mass, one);
    lo = V::select(V::mask_and(active, mass_gt1), lambda, lo);
    hi = V::select(V::mask_andnot(mass_gt1, active), lambda, hi);

    // Newton step on h(lambda) = mass^{-1/2} - 1, reset to the bracket
    // midpoint when it escapes (ordered compares: a NaN step resets too).
    Reg next = V::add(
        lambda,
        V::div(V::mul(two, V::sub(mass, V::mul(mass, V::sqrt(mass)))), deriv));
    const Mask in_bracket =
        V::mask_and(V::cmp_gt(next, lo), V::cmp_lt(next, hi));
    next = V::select(in_bracket, next, V::mul(half, V::add(lo, hi)));

    // Exit 2: relative stall. Lambda still moves to `next` first, exactly
    // like the scalar loop's pre-break assignment.
    const Mask stalled = V::cmp_lt(
        V::abs(V::sub(next, lambda)), V::mul(step_tol, V::max(one, V::abs(lambda))));
    lambda = V::select(active, next, lambda);
    const Mask newly_stalled = V::mask_and(active, stalled);
    if (V::any(newly_stalled)) {
      record(newly_stalled, 2, iter);
      active = V::mask_andnot(newly_stalled, active);
    }
  }

  V::store(args.lambda, lambda);
  V::store(args.total, total);
}

}  // namespace cea::tsallis_detail
