#include "opt/tsallis_step.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "opt/brent.h"

namespace cea {
namespace {

/// Sum of p_n(lambda) = 4 / (eta*(theta_n + lambda))^2 over n.
double probability_mass(std::span<const double> theta, double eta,
                        double lambda) noexcept {
  double total = 0.0;
  for (double th : theta) {
    const double denom = eta * (th + lambda);
    total += 4.0 / (denom * denom);
  }
  return total;
}

/// d/dlambda of probability_mass (always negative on the valid range).
double probability_mass_derivative(std::span<const double> theta, double eta,
                                   double lambda) noexcept {
  double total = 0.0;
  for (double th : theta) {
    const double denom = eta * (th + lambda);
    total += -8.0 / (denom * denom * (th + lambda));
  }
  return total;
}

}  // namespace

std::vector<double> tsallis_probabilities(
    std::span<const double> cumulative_losses, double eta) {
  assert(eta > 0.0);
  const std::size_t n = cumulative_losses.size();
  assert(n > 0);
  if (n == 1) return {1.0};

  // theta_n = C_n + 2/eta, shifted so that min(theta) = 0: subtracting a
  // constant from all losses only shifts lambda and improves conditioning.
  std::vector<double> theta(n);
  const double min_loss =
      *std::min_element(cumulative_losses.begin(), cumulative_losses.end());
  for (std::size_t i = 0; i < n; ++i)
    theta[i] = (cumulative_losses[i] - min_loss);

  // Bracket: at lambda_lo the smallest-theta arm alone has mass 1, so the
  // total is >= 1; at lambda_hi every arm has mass <= 1/N, so the total
  // is <= 1.
  const double lambda_lo = 2.0 / eta;
  const double lambda_hi = 2.0 * std::sqrt(static_cast<double>(n)) / eta;

  // Safeguarded Newton from the midpoint.
  double lambda = 0.5 * (lambda_lo + lambda_hi);
  double lo = lambda_lo, hi = lambda_hi;
  bool newton_ok = false;
  for (int iter = 0; iter < 100; ++iter) {
    const double mass = probability_mass(theta, eta, lambda) - 1.0;
    if (std::abs(mass) < 1e-13) {
      newton_ok = true;
      break;
    }
    if (mass > 0.0)
      lo = lambda;  // too much mass -> lambda must grow
    else
      hi = lambda;
    const double deriv = probability_mass_derivative(theta, eta, lambda);
    double next = lambda - mass / deriv;
    if (!(next > lo && next < hi)) next = 0.5 * (lo + hi);
    if (std::abs(next - lambda) < 1e-15 * std::max(1.0, std::abs(lambda))) {
      lambda = next;
      newton_ok = true;
      break;
    }
    lambda = next;
  }
  if (!newton_ok) {
    const auto root = brent_root(
        [&](double l) { return probability_mass(theta, eta, l) - 1.0; },
        lambda_lo, lambda_hi, 1e-14);
    if (root.converged) lambda = root.x;
  }

  std::vector<double> p(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double denom = eta * (theta[i] + lambda);
    p[i] = 4.0 / (denom * denom);
    total += p[i];
  }
  for (auto& v : p) v /= total;  // exact renormalization
  return p;
}

double tsallis_step_objective(std::span<const double> cumulative_losses,
                              double eta, std::span<const double> p) {
  assert(cumulative_losses.size() == p.size());
  double value = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    value += p[i] * cumulative_losses[i];
    value -= (4.0 * std::sqrt(p[i]) - 2.0 * p[i]) / eta;
  }
  return value;
}

}  // namespace cea
