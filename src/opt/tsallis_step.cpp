#include "opt/tsallis_step.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "obs/telemetry.h"
#include "opt/brent.h"
#include "util/check.h"

namespace cea {
namespace {

/// Sum of p_n(lambda) = 4 / (eta*(theta_n + lambda))^2 over n.
double probability_mass(std::span<const double> theta, double eta,
                        double lambda) noexcept {
  double total = 0.0;
  for (double th : theta) {
    const double denom = eta * (th + lambda);
    total += 4.0 / (denom * denom);
  }
  return total;
}

/// Thread-local so concurrent simulator runs can't see a test's cap.
thread_local int g_newton_iteration_cap = 100;

}  // namespace

int set_tsallis_newton_iteration_cap(int cap) noexcept {
  assert(cap > 0);
  const int previous = g_newton_iteration_cap;
  g_newton_iteration_cap = cap;
  return previous;
}

int tsallis_newton_iteration_cap() noexcept { return g_newton_iteration_cap; }

std::vector<double> tsallis_probabilities(
    std::span<const double> cumulative_losses, double eta) {
  std::vector<double> p, theta;
  tsallis_probabilities_into(cumulative_losses, eta, p, theta);
  return p;
}

void tsallis_probabilities_into(std::span<const double> cumulative_losses,
                                double eta, std::vector<double>& p,
                                std::vector<double>& theta_scratch,
                                double* scaled_lambda_warm) {
  assert(eta > 0.0);
  const std::size_t n = cumulative_losses.size();
  assert(n > 0);
  p.resize(n);
  if (n == 1) {
    p[0] = 1.0;
    return;
  }

  // theta_n = C_n + 2/eta, shifted so that min(theta) = 0: subtracting a
  // constant from all losses only shifts lambda and improves conditioning.
  std::vector<double>& theta = theta_scratch;
  theta.resize(n);
  const double min_loss =
      *std::min_element(cumulative_losses.begin(), cumulative_losses.end());
  for (std::size_t i = 0; i < n; ++i)
    theta[i] = (cumulative_losses[i] - min_loss);

  // Bracket: at lambda_lo the smallest-theta arm alone has mass 1, so the
  // total is >= 1; at lambda_hi every arm has mass <= 1/N, so the total
  // is <= 1.
  const double lambda_lo = 2.0 / eta;
  const double lambda_hi = 2.0 * std::sqrt(static_cast<double>(n)) / eta;

  // Initial guess, best first: (a) the caller's warm hint — the scaled
  // root eta*lambda of the previous block's solve, which drifts slowly
  // between consecutive blocks; (b) the exact root of the equal-theta
  // surrogate N * 4/(eta (mean_theta + lambda))^2 = 1, within a few
  // percent of the true root for small loss spreads; (c) the bracket
  // midpoint.
  double lambda = 0.0;
  bool have_guess = false;
  if (scaled_lambda_warm != nullptr && *scaled_lambda_warm > 0.0) {
    lambda = *scaled_lambda_warm / eta;
    have_guess = lambda > lambda_lo && lambda < lambda_hi;
  }
  if (!have_guess) {
    double mean_theta = 0.0;
    for (double th : theta) mean_theta += th;
    mean_theta /= static_cast<double>(n);
    lambda = lambda_hi - mean_theta;
    if (!(lambda > lambda_lo && lambda < lambda_hi))
      lambda = 0.5 * (lambda_lo + lambda_hi);
  }

  // Safeguarded Newton. Mass and derivative share one reciprocal per arm:
  // p_n = 4 r^2 and dp_n/dlambda = -2 eta p_n r with
  // r = 1/(eta (theta_n + lambda)), so each iteration costs one division
  // per arm. The tolerance is loose (1e-10) because the final
  // renormalization absorbs any residual mass error exactly.
  double lo = lambda_lo, hi = lambda_hi;
  bool newton_ok = false;
  double total = 0.0;   // mass at the lambda the p[] values were taken at
  bool p_current = false;
  const int max_iters = g_newton_iteration_cap;
  int iter = 0;
  for (; iter < max_iters; ++iter) {
    double mass = 0.0, deriv = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double r = 1.0 / (eta * (theta[i] + lambda));
      const double mass_i = 4.0 * r * r;
      p[i] = mass_i;  // unnormalized p_n; reused on the converged exit
      mass += mass_i;
      deriv -= 2.0 * eta * mass_i * r;
    }
    total = mass;
    p_current = true;
    if (std::abs(mass - 1.0) < 1e-10) {
      newton_ok = true;
      break;
    }
    if (mass > 1.0)
      lo = lambda;  // too much mass -> lambda must grow
    else
      hi = lambda;
    // Newton step on h(lambda) = mass^{-1/2} - 1 instead of mass - 1:
    // when one arm dominates, mass ~ a/(theta+lambda)^2, so h is exactly
    // linear in lambda and the step lands on the root immediately; in
    // mixed regimes it stays quadratically convergent. Algebraically
    // lambda - h/h' = lambda + 2 (mass - mass^{3/2}) / mass'.
    double next = lambda + 2.0 * (mass - mass * std::sqrt(mass)) / deriv;
    if (!(next > lo && next < hi)) next = 0.5 * (lo + hi);
    const bool stalled =
        std::abs(next - lambda) < 1e-15 * std::max(1.0, std::abs(lambda));
    lambda = next;
    p_current = false;
    if (stalled) {
      newton_ok = true;
      break;
    }
  }
  if (!newton_ok) {
    const auto root = brent_root(
        [&](double l) { return probability_mass(theta, eta, l) - 1.0; },
        lambda_lo, lambda_hi, 1e-14);
    if (root.converged) lambda = root.x;
    p_current = false;
    CEA_TELEM(static const obs::MetricId obs_fallbacks =
                  obs::counter("tsallis.brent_fallbacks");
              obs::add(obs_fallbacks););
  }
  if (scaled_lambda_warm != nullptr) *scaled_lambda_warm = eta * lambda;
#if defined(CEA_TELEMETRY)
  if (obs::detail_enabled()) {
    // Solver convergence telemetry: Newton iterations per solve (warm
    // starts should keep this at 1-3) and how often the bracketed Brent
    // fallback fires. Solves run per (edge, block, select) — frequent
    // enough that recording is detail-gated.
    static const double kIterEdges[] = {1, 2, 3, 4, 6, 8, 12, 16, 24, 32,
                                        48, 64, 100};
    static const obs::MetricId obs_iters =
        obs::histogram("tsallis.newton_iters", kIterEdges);
    obs::observe(obs_iters, static_cast<double>(std::min(iter + 1, 100)));
    static const obs::MetricId obs_solves = obs::counter("tsallis.solves");
    obs::add(obs_solves);
  }
#endif

  if (!p_current) {
    total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double denom = eta * (theta[i] + lambda);
      p[i] = 4.0 / (denom * denom);
      total += p[i];
    }
  }
  const double inv_total = 1.0 / total;
  for (auto& v : p) v *= inv_total;  // exact renormalization
#if defined(CEA_TELEMETRY)
  if (obs::detail_enabled()) {
    // Pre-renormalization simplex residual |mass - 1|: how far the root
    // finder was from the exact simplex before the final renormalization
    // absorbed the error.
    static const double kResidualEdges[] = {1e-16, 1e-14, 1e-12, 1e-10,
                                            1e-8,  1e-6,  1e-4,  1e-2};
    static const obs::MetricId obs_residual =
        obs::histogram("tsallis.simplex_residual", kResidualEdges);
    obs::observe(obs_residual, std::abs(total - 1.0));
  }
#endif

  // Audit invariants: the solver's residual mass before renormalization
  // must be near 1 (else the root-finder silently failed and the
  // renormalized p is a distorted distribution), and the output must be a
  // probability simplex with every coordinate finite and positive.
  CEA_CHECK(std::abs(total - 1.0) <= 1e-6, "tsallis.solver_residual",
            audit::kNoIndex, audit::kNoIndex, total - 1.0,
            "pre-normalization mass " << total << " deviates from 1 by "
                                      << std::abs(total - 1.0));
#if defined(CEA_AUDIT)
  {
    double audit_sum = 0.0;
    for (double v : p) {
      CEA_CHECK(std::isfinite(v) && v > 0.0 && v <= 1.0 + 1e-12,
                "tsallis.simplex_coordinate", audit::kNoIndex,
                audit::kNoIndex, v, "probability " << v << " outside (0, 1]");
      audit_sum += v;
    }
    CEA_CHECK(std::abs(audit_sum - 1.0) <= 1e-12, "tsallis.simplex_mass",
              audit::kNoIndex, audit::kNoIndex, audit_sum - 1.0,
              "renormalized mass " << audit_sum << " != 1");
  }
#endif
}

double tsallis_step_objective(std::span<const double> cumulative_losses,
                              double eta, std::span<const double> p) {
  assert(cumulative_losses.size() == p.size());
  double value = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    value += p[i] * cumulative_losses[i];
    value -= (4.0 * std::sqrt(p[i]) - 2.0 * p[i]) / eta;
  }
  return value;
}

}  // namespace cea
