#pragma once

#include <span>
#include <vector>

namespace cea {

/// Solve the online-mirror-descent step of Algorithm 1 (line 3):
///
///   p = argmin_{p in simplex}  <p, C>  -  sum_n (4*sqrt(p_n) - 2*p_n) / eta
///
/// i.e. mirror descent with the 1/2-Tsallis entropy regularizer of
/// Zimmert & Seldin's Tsallis-INF. Stationarity gives the closed family
///   p_n(lambda) = 4 / (eta^2 * (C_n + 2/eta + lambda)^2),
/// and the normalization multiplier lambda is found by a safeguarded
/// Newton iteration with a Brent-bracketed fallback (the paper cites the
/// Brent method for this inner solve).
///
/// `cumulative_losses` are the importance-weighted cumulative loss
/// estimates \hat{C}_{k-1}(n); `eta` is the block learning rate (> 0).
/// Returns a strictly positive probability vector summing to 1.
std::vector<double> tsallis_probabilities(
    std::span<const double> cumulative_losses, double eta);

/// Allocation-free variant for callers on a hot path (the blocked policy
/// re-solves this every block, i.e. every few simulated slots per edge):
/// writes the probabilities into `p` and uses `theta_scratch` as working
/// storage, both resized as needed and reusable across calls.
///
/// `scaled_lambda_warm`, when non-null, warm-starts the Newton iteration:
/// on entry a positive *scaled_lambda_warm is taken as the scaled root
/// eta*lambda of a previous, similar solve (pass 0.0 when none); on exit it
/// holds this solve's scaled root. Across consecutive blocks eta and the
/// loss spread drift slowly, so the previous scaled root lands within the
/// Newton region of the new one and typically saves most iterations. The
/// safeguarded bracket makes a stale hint harmless.
void tsallis_probabilities_into(std::span<const double> cumulative_losses,
                                double eta, std::vector<double>& p,
                                std::vector<double>& theta_scratch,
                                double* scaled_lambda_warm = nullptr);

/// Test hook: caps the safeguarded-Newton iterations of both the scalar
/// solver above and TsallisBatchSolver for the calling thread, forcing
/// the divergence (Brent fallback / lane delegation) paths on demand.
/// Returns the previous cap. The default (100) is the production value;
/// tests must restore it.
int set_tsallis_newton_iteration_cap(int cap) noexcept;

/// Current per-thread Newton iteration cap (100 unless a test lowered it).
int tsallis_newton_iteration_cap() noexcept;

/// Objective value of the OMD step at a given p (used by tests to verify
/// optimality of tsallis_probabilities against direct minimization).
double tsallis_step_objective(std::span<const double> cumulative_losses,
                              double eta, std::span<const double> p);

}  // namespace cea
