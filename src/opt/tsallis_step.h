#pragma once

#include <span>
#include <vector>

namespace cea {

/// Solve the online-mirror-descent step of Algorithm 1 (line 3):
///
///   p = argmin_{p in simplex}  <p, C>  -  sum_n (4*sqrt(p_n) - 2*p_n) / eta
///
/// i.e. mirror descent with the 1/2-Tsallis entropy regularizer of
/// Zimmert & Seldin's Tsallis-INF. Stationarity gives the closed family
///   p_n(lambda) = 4 / (eta^2 * (C_n + 2/eta + lambda)^2),
/// and the normalization multiplier lambda is found by a safeguarded
/// Newton iteration with a Brent-bracketed fallback (the paper cites the
/// Brent method for this inner solve).
///
/// `cumulative_losses` are the importance-weighted cumulative loss
/// estimates \hat{C}_{k-1}(n); `eta` is the block learning rate (> 0).
/// Returns a strictly positive probability vector summing to 1.
std::vector<double> tsallis_probabilities(
    std::span<const double> cumulative_losses, double eta);

/// Objective value of the OMD step at a given p (used by tests to verify
/// optimality of tsallis_probabilities against direct minimization).
double tsallis_step_objective(std::span<const double> cumulative_losses,
                              double eta, std::span<const double> p);

}  // namespace cea
