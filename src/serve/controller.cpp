#include "serve/controller.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "bandit/fleet_policy.h"
#include "sim/simulator.h"
#include "util/state_io.h"

namespace cea::serve {

ServeController::ServeController(const std::vector<TenantSpec>& tenants,
                                 const sim::SimOptions& options,
                                 MarketRule market)
    : market_(market) {
  if (tenants.empty()) {
    throw std::invalid_argument("ServeController: no tenants");
  }
  std::unordered_set<std::string> names;
  tenants_.reserve(tenants.size());
  for (const auto& spec : tenants) {
    if (!names.insert(spec.name).second) {
      throw std::invalid_argument("ServeController: duplicate tenant name '" +
                                  spec.name + "'");
    }
    Tenant tenant;
    tenant.name = spec.name;
    tenant.run_seed = spec.run_seed;
    tenant.algorithm = spec.combo.name;
    tenant.env = std::make_unique<sim::Environment>(
        sim::Environment::make_parametric(spec.scenario));
    // Reuse the Simulator's context builders so a tenant's engine is
    // constructed exactly like a batch run of the same combo — that is
    // what makes daemon output comparable bit-for-bit to Simulator::run.
    sim::Simulator builder(*tenant.env, options);
    std::unique_ptr<bandit::FleetPolicy> fleet;
    if (spec.prefer_fleet_policy && spec.combo.fleet_policy) {
      fleet = spec.combo.fleet_policy(
          builder.fleet_policy_context(spec.run_seed));
    } else {
      fleet = std::make_unique<bandit::PerEdgeFleetAdapter>(
          spec.combo.policy, builder.fleet_policy_context(spec.run_seed));
    }
    auto trader = spec.combo.trader(builder.trader_context(spec.run_seed));
    tenant.engine = std::make_unique<sim::SlotEngine>(
        *tenant.env, options, std::move(fleet), std::move(trader),
        spec.run_seed, spec.combo.name);
    total_edges_ += tenant.env->num_edges();
    tenants_.push_back(std::move(tenant));
  }
}

ServeController::~ServeController() = default;

#if defined(CEA_TELEMETRY)
// Adapter from one engine's SlotObserver to the controller-level
// (tenant, slot) observer.
struct ServeController::Tap final : sim::SlotObserver {
  TenantSlotObserver* sink = nullptr;
  std::size_t tenant = 0;
  void on_slot(const sim::SlotObservation& observed) override {
    sink->on_tenant_slot(tenant, observed);
  }
};

void ServeController::set_observer(TenantSlotObserver* observer) {
  if (observer == nullptr) {
    for (auto& tenant : tenants_) tenant.engine->set_observer(nullptr);
    taps_.clear();
    return;
  }
  taps_.clear();
  taps_.reserve(tenants_.size());
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    auto tap = std::make_unique<Tap>();
    tap->sink = observer;
    tap->tenant = i;
    tenants_[i].engine->set_observer(tap.get());
    taps_.push_back(std::move(tap));
  }
}
#endif  // CEA_TELEMETRY

std::size_t ServeController::slot() const noexcept {
  return tenants_.front().engine->slot();
}

void ServeController::step(const trading::TradeObservation& quote,
                           std::span<const int> workload_all) {
  if (workload_all.size() != total_edges_) {
    throw std::invalid_argument(
        "ServeController::step: workload width " +
        std::to_string(workload_all.size()) + " != total edges " +
        std::to_string(total_edges_));
  }
  // Phase 1: every tenant decides its trade on the shared quote.
  std::vector<trading::TradeDecision> trades;
  trades.reserve(tenants_.size());
  for (auto& tenant : tenants_) {
    trades.push_back(tenant.engine->begin_slot(quote));
  }
  // Phase 2: clear against the shared per-slot liquidity, tenant-index
  // order (deterministic first-come allocation of scarce volume).
  if (market_.max_volume_per_slot > 0.0) {
    double buy_left = market_.max_volume_per_slot;
    double sell_left = market_.max_volume_per_slot;
    for (auto& trade : trades) {
      trade.buy = std::min(trade.buy, std::max(0.0, buy_left));
      trade.sell = std::min(trade.sell, std::max(0.0, sell_left));
      buy_left -= trade.buy;
      sell_left -= trade.sell;
    }
  }
  // Phase 3: execute (each engine applies its own holdings clamp, runs
  // its edge fan-out, and feeds its trader the executed decision).
  std::size_t offset = 0;
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    const std::size_t edges = tenants_[i].env->num_edges();
    tenants_[i].engine->finish_slot(quote, trades[i],
                                    workload_all.data() + offset);
    offset += edges;
  }
}

std::string ServeController::checkpoint_payload() const {
  util::StateWriter writer;
  writer.write_u64("serve.tenants", tenants_.size());
  writer.write_double("serve.market_cap", market_.max_volume_per_slot);
  for (const auto& tenant : tenants_) {
    writer.write_string("serve.tenant", tenant.name);
    writer.write_u64("serve.run_seed", tenant.run_seed);
    tenant.engine->save_state(writer);
  }
  return writer.payload();
}

void ServeController::restore_payload(std::string_view payload) {
  util::StateReader reader(payload);
  if (reader.read_u64("serve.tenants") != tenants_.size()) {
    throw util::StateError(
        "checkpoint: tenant count does not match this controller");
  }
  if (reader.read_double("serve.market_cap") != market_.max_volume_per_slot) {
    throw util::StateError(
        "checkpoint: market rule does not match this controller");
  }
  for (auto& tenant : tenants_) {
    const std::string name = reader.read_string("serve.tenant");
    if (name != tenant.name) {
      throw util::StateError("checkpoint: tenant '" + name +
                             "' does not match configured tenant '" +
                             tenant.name + "'");
    }
    if (reader.read_u64("serve.run_seed") != tenant.run_seed) {
      throw util::StateError("checkpoint: run seed mismatch for tenant '" +
                             tenant.name + "'");
    }
    tenant.engine->restore_state(reader);
  }
  reader.expect_end();
  // All engines must agree on the slot cursor; a checkpoint can only be
  // taken at a controller slot boundary, so disagreement means a forged
  // or mixed-up payload.
  const std::size_t slot = tenants_.front().engine->slot();
  for (const auto& tenant : tenants_) {
    if (tenant.engine->slot() != slot) {
      throw util::StateError("checkpoint: tenants disagree on the slot");
    }
  }
}

}  // namespace cea::serve
