#pragma once

// Multi-tenant slot-streaming controller: several independent scenarios
// (tenants), each running its own sim::SlotEngine over its own policies
// and ledger, advanced in lock-step one slot at a time and clearing their
// allowance trades against ONE shared per-slot market liquidity pool.
//
// Determinism contract: tenants are cleared in tenant-index order, so the
// allocation of scarce market volume is a pure function of the tenants'
// decisions — no wall clock, no iteration-order ambiguity. Together with
// the engines' own contracts this makes the whole controller a pure state
// machine: checkpoint_payload()/restore_payload() snapshot it bit-exactly
// (market state included) and a restored controller continues identically.

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "sim/config.h"
#include "sim/environment.h"
#include "sim/experiment.h"
#include "sim/slot_engine.h"

namespace cea::serve {

#if defined(CEA_TELEMETRY)
/// Controller-level decision observer: one callback per (tenant, slot),
/// in tenant-index order within each slot (phase 3 executes tenants in
/// index order, and every engine hook fires synchronously). The daemon
/// implements this to feed the decision journal and the SLO watchdog.
class TenantSlotObserver {
 public:
  virtual ~TenantSlotObserver() = default;
  virtual void on_tenant_slot(std::size_t tenant,
                              const sim::SlotObservation& observed) = 0;
};
#endif

/// One tenant: a scenario, an algorithm pairing, and a run seed.
struct TenantSpec {
  std::string name;               ///< unique tenant id (checkpoint-validated)
  sim::SimConfig scenario;        ///< its environment (edges, caps, budgets)
  sim::AlgorithmCombo combo;      ///< policy + trader (sim/experiment.h)
  std::uint64_t run_seed = 1;
  /// Use combo.fleet_policy (SoA-native) when available; otherwise the
  /// per-edge adapter path — exactly Simulator::run_fleet vs run.
  bool prefer_fleet_policy = true;
};

/// Shared market rule: per-slot liquidity cap across ALL tenants, on buys
/// and sells separately. 0 disables the shared cap (each tenant is still
/// bounded by its own SimConfig::max_trade_per_slot).
struct MarketRule {
  double max_volume_per_slot = 0.0;
};

class ServeController {
 public:
  /// Builds every tenant's environment and engine. `options` (pool,
  /// sharding, batch solving) applies to every engine. Throws
  /// std::invalid_argument on empty or duplicate-name tenant lists.
  ServeController(const std::vector<TenantSpec>& tenants,
                  const sim::SimOptions& options, MarketRule market = {});
  ~ServeController();  // out of line: Tap is incomplete here

  std::size_t num_tenants() const noexcept { return tenants_.size(); }
  /// Sum of every tenant's edge count — the workload width step() expects.
  std::size_t total_edges() const noexcept { return total_edges_; }
  /// Next slot to execute (identical across tenants by construction).
  std::size_t slot() const noexcept;

  const std::string& tenant_name(std::size_t i) const {
    return tenants_[i].name;
  }
  sim::SlotEngine& tenant_engine(std::size_t i) { return *tenants_[i].engine; }
  const sim::Environment& tenant_env(std::size_t i) const {
    return *tenants_[i].env;
  }

  /// Advance every tenant one slot. `workload_all` is the concatenation of
  /// per-tenant per-edge counts in tenant order (total_edges() wide). Each
  /// tenant's trade is decided first (begin_slot), then cleared against the
  /// shared per-slot liquidity in tenant-index order, then executed
  /// (finish_slot).
  void step(const trading::TradeObservation& quote,
            std::span<const int> workload_all);

#if defined(CEA_TELEMETRY)
  /// Attach (or detach with nullptr) the per-(tenant, slot) observer by
  /// fanning a tap into every tenant engine. The observer must outlive
  /// the controller or be detached first.
  void set_observer(TenantSlotObserver* observer);
#endif

  /// Serialize the full controller state (meta + every engine) into a
  /// checkpoint payload for util::encode_checkpoint/write_checkpoint_file.
  std::string checkpoint_payload() const;

  /// Restore from a payload produced by checkpoint_payload() on an
  /// identically configured controller. Throws util::StateError on any
  /// mismatch (tenant count/names/shape/algorithm/seed) or corruption.
  void restore_payload(std::string_view payload);

 private:
  struct Tenant {
    std::string name;
    std::uint64_t run_seed = 0;
    std::string algorithm;
    // unique_ptr for address stability: the engine aliases the env.
    std::unique_ptr<sim::Environment> env;
    std::unique_ptr<sim::SlotEngine> engine;
  };

  std::vector<Tenant> tenants_;
  std::size_t total_edges_ = 0;
  MarketRule market_;
#if defined(CEA_TELEMETRY)
  struct Tap;
  // unique_ptr for address stability: each engine keeps a pointer to its
  // tap while attached.
  std::vector<std::unique_ptr<Tap>> taps_;
#endif
};

}  // namespace cea::serve
