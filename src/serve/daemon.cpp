#include "serve/daemon.h"

#include <sys/stat.h>

#include <chrono>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <thread>
#include <utility>

#include "obs/journal.h"
#include "obs/prom.h"
#include "obs/telemetry.h"
#include "serve/metrics_server.h"
#include "util/state_io.h"

namespace cea::serve {
namespace {

bool file_exists(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0;
}

void sleep_ms(std::size_t ms) {
  if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

#if defined(CEA_TELEMETRY)
std::int64_t steady_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Journal only the state-driven rules: they are pure functions of the
/// engines' computed state, so serial and pooled runs journal identical
/// alerts. The clock-driven rules (feed stall, deadline miss) surface on
/// the metrics page and in the exit code only.
bool journaled_alert(obs::SloKind kind) {
  return kind == obs::SloKind::kProjectedCapBreach ||
         kind == obs::SloKind::kAllowanceInsolvency;
}
#endif

}  // namespace

#if defined(CEA_TELEMETRY)
// All observability state of one daemon: the journal writer, the SLO
// watchdog, the per-tenant gauge cache behind the metrics page, and the
// optional TCP endpoint. Implements the controller observer so every
// (tenant, slot) decision lands here synchronously, at a pool-quiescent
// point, in deterministic tenant order.
struct ServeDaemon::Obs final : TenantSlotObserver {
  ServeController& controller;
  const DaemonConfig& config;
  obs::SloWatchdog watchdog;
  std::unique_ptr<obs::JournalWriter> journal;
  std::unique_ptr<MetricsServer> server;

  /// Latest per-tenant state, fed by on_tenant_slot and re-synced from
  /// the engines after a checkpoint restore.
  struct TenantView {
    std::string name;
    std::uint64_t horizon = 0;
    double carbon_cap = 0.0;
    double balance = 0.0;
    double emission_total = 0.0;
    double trader_dual = std::numeric_limits<double>::quiet_NaN();
    std::uint64_t switches_total = 0;
  };
  std::vector<TenantView> tenants;
  std::int64_t last_ready_ms = 0;

  Obs(ServeController& controller_in, const DaemonConfig& config_in)
      : controller(controller_in),
        config(config_in),
        watchdog(config_in.slo, controller_in.num_tenants()) {
    if (!config.journal_dir.empty()) {
      journal = std::make_unique<obs::JournalWriter>(config.journal_dir);
    }
    if (config.metrics_port >= 0) {
      server = std::make_unique<MetricsServer>(config.metrics_port);
    }
    tenants.resize(controller.num_tenants());
    for (std::size_t i = 0; i < tenants.size(); ++i) {
      tenants[i].name = controller.tenant_name(i);
      tenants[i].horizon = controller.tenant_env(i).horizon();
      tenants[i].carbon_cap = controller.tenant_env(i).config().carbon_cap;
    }
    sync_from_engines();
  }

  /// Rebuild the cumulative gauges from the engines' recorded series —
  /// construction over a restored controller and every restore_from()
  /// land here so the metrics page continues where the crashed run left
  /// off.
  void sync_from_engines() {
    for (std::size_t i = 0; i < tenants.size(); ++i) {
      auto& engine = controller.tenant_engine(i);
      const sim::RunResult& result = engine.result();
      double total = 0.0;
      for (const double e : result.emissions) total += e;
      tenants[i].emission_total = total;
      tenants[i].balance = engine.allowance_balance();
      tenants[i].switches_total = result.total_switches;
    }

    // Rebuild the watchdog's rolling windows and episode state from the
    // engines' recorded emission series, so a restored run raises the
    // same alerts with the same values as the uninterrupted run would
    // (the journal bit-identity contract extends across restores). The
    // full series is replayed — not just the last `window` slots —
    // because the window sum is maintained incrementally and its
    // floating-point value depends on the whole add/subtract history.
    // Per-slot balances are not recorded, but only the final replayed
    // evaluation's episode state survives, and at the restore boundary
    // the live allowance balance IS that slot's balance. The replayed
    // slots' own alerts were journaled by the previous life;
    // absorb_replay() drops them.
    watchdog = obs::SloWatchdog(config.slo, tenants.size());
    for (std::size_t i = 0; i < tenants.size(); ++i) {
      const auto& emissions = controller.tenant_engine(i).result().emissions;
      for (std::size_t t = 0; t < emissions.size(); ++t) {
        obs::SloTenantSlot replayed;
        replayed.slot = t;
        replayed.horizon = tenants[i].horizon;
        replayed.emission = emissions[t];
        replayed.balance = tenants[i].balance;
        watchdog.observe_slot(i, replayed);
      }
    }
    watchdog.absorb_replay();
  }

  void on_tenant_slot(std::size_t tenant,
                      const sim::SlotObservation& observed) override {
    TenantView& view = tenants[tenant];
    view.balance = observed.balance;
    view.emission_total += observed.emission;
    view.trader_dual = observed.trader_dual;
    view.switches_total = observed.switches_total;

    if (journal != nullptr) {
      obs::JournalRecord record;
      record.kind = obs::JournalRecord::Kind::kSlot;
      record.tenant = view.name;
      record.slot = observed.slot;
      record.model_counts.assign(observed.model_counts.begin(),
                                 observed.model_counts.end());
      record.switches_total = observed.switches_total;
      record.solver_lanes = observed.solver_lanes;
      record.arena_overflows = observed.arena_overflows;
      record.trader_dual = observed.trader_dual;
      record.buy = observed.buy;
      record.sell = observed.sell;
      record.buy_price = observed.buy_price;
      record.sell_price = observed.sell_price;
      record.emission = observed.emission;
      record.balance = observed.balance;
      record.carbon_cap = observed.carbon_cap;
      record.inference_cost = observed.inference_cost;
      record.switching_cost = observed.switching_cost;
      record.trading_cost = observed.trading_cost;
      record.accuracy = observed.accuracy;
      record.workload = observed.workload;
      journal->append(record);
    }

    watchdog.observe_slot(tenant, {observed.slot, view.horizon,
                                   observed.emission, observed.balance});
  }

  /// Route freshly drained alerts: state rules into the journal (as
  /// kAlert records, after the slot records that produced them), every
  /// rule into the counters the metrics page exports.
  void record_alerts(const std::vector<obs::SloAlert>& alerts) {
    if (journal == nullptr) return;
    for (const obs::SloAlert& alert : alerts) {
      if (!journaled_alert(alert.kind)) continue;
      obs::JournalRecord record;
      record.kind = obs::JournalRecord::Kind::kAlert;
      record.tenant = alert.tenant < tenants.size()
                          ? tenants[alert.tenant].name
                          : std::string("-");
      record.slot = alert.slot;
      record.alert = obs::slo_kind_name(alert.kind);
      record.value = alert.value;
      record.threshold = alert.threshold;
      journal->append(record);
    }
  }

  void seal_journal() {
    if (journal != nullptr) journal->seal();
  }

  /// Render the Prometheus page and push it to every configured sink.
  /// Caller guarantees pool quiescence (slot boundary).
  void publish_metrics(std::int64_t now_ms) {
    if (config.metrics_path.empty() && server == nullptr) return;
    const std::string text = render_metrics(now_ms);
    if (!config.metrics_path.empty()) {
      util::write_file_atomic(config.metrics_path, text);
    }
    if (server != nullptr) server->publish(text);
  }

  std::string render_metrics(std::int64_t now_ms) {
    const std::size_t slots_done = controller.slot();
    std::vector<obs::PromSample> extra;
    // Per-tenant series, one loop per metric name so consecutive samples
    // share a TYPE header (obs/prom.h grouping rule).
    for (const TenantView& view : tenants) {
      extra.push_back({"tenant_allowance_balance",
                       {{"tenant", view.name}},
                       view.balance,
                       "gauge"});
    }
    for (const TenantView& view : tenants) {
      extra.push_back({"tenant_emission_total",
                       {{"tenant", view.name}},
                       view.emission_total,
                       "counter"});
    }
    for (const TenantView& view : tenants) {
      // Fraction of the carbon cap already emitted, relative to the
      // fraction of the horizon already served: 1.0 = exactly on pace to
      // land at the cap, >1 = burning allowances faster than time.
      double burn = 0.0;
      if (slots_done > 0 && view.carbon_cap > 0.0 && view.horizon > 0) {
        burn = (view.emission_total * static_cast<double>(view.horizon)) /
               (view.carbon_cap * static_cast<double>(slots_done));
      }
      extra.push_back(
          {"tenant_cap_burn_rate", {{"tenant", view.name}}, burn, "gauge"});
    }
    for (const TenantView& view : tenants) {
      // Remaining allowance headroom as a fraction of the cap; negative
      // when the tenant is emitting uncovered.
      const double solvency = view.carbon_cap > 0.0
                                  ? view.balance / view.carbon_cap
                                  : view.balance;
      extra.push_back({"tenant_allowance_solvency",
                       {{"tenant", view.name}},
                       solvency,
                       "gauge"});
    }
    for (const TenantView& view : tenants) {
      extra.push_back({"tenant_trader_dual",
                       {{"tenant", view.name}},
                       view.trader_dual,
                       "gauge"});
    }
    for (const TenantView& view : tenants) {
      extra.push_back({"tenant_switches_total",
                       {{"tenant", view.name}},
                       static_cast<double>(view.switches_total),
                       "counter"});
    }
    for (std::size_t kind = 0; kind < obs::kSloKindCount; ++kind) {
      extra.push_back(
          {"slo_alerts_total",
           {{"kind", obs::slo_kind_name(static_cast<obs::SloKind>(kind))}},
           static_cast<double>(watchdog.counts()[kind]),
           "counter"});
    }
    extra.push_back({"feed_staleness_ms",
                     {},
                     static_cast<double>(now_ms - last_ready_ms),
                     "gauge"});
    if (journal != nullptr) {
      extra.push_back({"journal_records_sealed",
                       {},
                       static_cast<double>(journal->records_sealed()),
                       "gauge"});
      extra.push_back({"journal_segments_sealed",
                       {},
                       static_cast<double>(journal->segments_sealed()),
                       "gauge"});
    }
    const obs::Snapshot snap = obs::snapshot();
    // Slot wall-time quantiles out of the existing span histogram.
    for (const obs::HistogramValue& histogram : snap.histograms) {
      if (histogram.name != "serve.slot") continue;
      extra.push_back({"slot_wall_ns",
                       {{"quantile", "0.5"}},
                       obs::histogram_quantile(histogram, 0.5),
                       "gauge"});
      extra.push_back({"slot_wall_ns",
                       {{"quantile", "0.99"}},
                       obs::histogram_quantile(histogram, 0.99),
                       "gauge"});
    }
    return obs::prometheus_text(snap, extra);
  }
};
#endif  // CEA_TELEMETRY

ServeDaemon::ServeDaemon(ServeController& controller, FeedSource& feed,
                         DaemonConfig config)
    : controller_(controller), feed_(feed), config_(std::move(config)) {
  if (feed_.num_edges() != controller_.total_edges()) {
    throw std::invalid_argument(
        "ServeDaemon: feed supplies " + std::to_string(feed_.num_edges()) +
        " edges, controller needs " +
        std::to_string(controller_.total_edges()));
  }
#if defined(CEA_TELEMETRY)
  const bool observability = !config_.journal_dir.empty() ||
                             !config_.metrics_path.empty() ||
                             config_.metrics_port >= 0 ||
                             config_.slo.feed_stall_ms > 0 ||
                             config_.slo.slot_deadline_ms > 0;
  if (observability) {
    obs_ = std::make_unique<Obs>(controller_, config_);
    controller_.set_observer(obs_.get());
  }
#endif
}

ServeDaemon::~ServeDaemon() {
#if defined(CEA_TELEMETRY)
  if (obs_ != nullptr) controller_.set_observer(nullptr);
#endif
}

int ServeDaemon::metrics_port() const noexcept {
#if defined(CEA_TELEMETRY)
  if (obs_ != nullptr && obs_->server != nullptr) {
    return obs_->server->port();
  }
#endif
  return -1;
}

bool ServeDaemon::restore_if_present() {
  if (config_.checkpoint_path.empty() ||
      !file_exists(config_.checkpoint_path)) {
    return false;
  }
  restore_from(config_.checkpoint_path);
  return true;
}

void ServeDaemon::restore_from(const std::string& path) {
  controller_.restore_payload(util::read_checkpoint_file(path));
#if defined(CEA_TELEMETRY)
  if (obs_ != nullptr) obs_->sync_from_engines();
#endif
}

void ServeDaemon::write_checkpoint() {
  if (config_.checkpoint_path.empty()) return;
  util::write_checkpoint_file(config_.checkpoint_path,
                              controller_.checkpoint_payload());
#if defined(CEA_TELEMETRY)
  static const obs::MetricId obs_ckpt = obs::counter("serve.checkpoints");
  obs::add(obs_ckpt, 1.0);
#endif
}

DaemonReport ServeDaemon::run() {
  DaemonReport report;
  std::size_t pending_streak = 0;
  SlotInput input;
#if defined(CEA_TELEMETRY)
  const std::size_t journal_every =
      config_.journal_every == 0 ? 1 : config_.journal_every;
  const std::size_t metrics_every =
      config_.metrics_every == 0 ? 1 : config_.metrics_every;
  if (obs_ != nullptr) {
    report.metrics_port = metrics_port();
    obs_->last_ready_ms = steady_ms();  // the stall clock starts now
  }
#endif
  while (true) {
    const std::size_t t = controller_.slot();
    if (config_.max_slots != 0 && t >= config_.max_slots) break;
    const FeedStatus status = feed_.poll(t, input);
    if (status == FeedStatus::kEnd) {
      report.feed_ended = true;
      break;
    }
    if (status == FeedStatus::kPending) {
#if defined(CEA_TELEMETRY)
      static const obs::MetricId obs_pending =
          obs::counter("serve.feed_pending");
      obs::add(obs_pending, 1.0);
      if (obs_ != nullptr) {
        obs_->watchdog.observe_feed(t, steady_ms(), obs_->last_ready_ms);
      }
#endif
      ++pending_streak;
      if (config_.max_pending_polls != 0 &&
          pending_streak >= config_.max_pending_polls) {
        break;
      }
      sleep_ms(config_.poll_interval_ms);
      continue;
    }
    pending_streak = 0;
#if defined(CEA_TELEMETRY)
    std::int64_t wall_start_ms = 0;
    if (obs_ != nullptr) {
      wall_start_ms = steady_ms();
      obs_->last_ready_ms = wall_start_ms;
    }
#endif
    {
      CEA_SPAN("serve.slot");
      controller_.step(input.quote, input.workload);
    }
    ++report.slots_processed;
#if defined(CEA_TELEMETRY)
    static const obs::MetricId obs_slots = obs::counter("serve.slots");
    obs::add(obs_slots, 1.0);
    if (obs_ != nullptr) {
      obs_->watchdog.observe_slot_wall(t, steady_ms() - wall_start_ms);
      obs_->record_alerts(obs_->watchdog.drain());
      const std::size_t done = controller_.slot();
      if (done % journal_every == 0) obs_->seal_journal();
      if (done % metrics_every == 0) obs_->publish_metrics(steady_ms());
    }
#endif
    sleep_ms(config_.slot_delay_ms);
    const bool boundary =
        config_.checkpoint_every != 0 &&
        controller_.slot() % config_.checkpoint_every == 0;
    if (boundary) {
#if defined(CEA_TELEMETRY)
      // The journal must cover everything the checkpoint claims happened:
      // seal before persisting the engine state, so a crash between the
      // two leaves a journal that is at least as long as the checkpoint.
      if (obs_ != nullptr) obs_->seal_journal();
#endif
      write_checkpoint();
      ++report.checkpoints_written;
    }
    if (config_.stop_after_slots != 0 &&
        report.slots_processed >= config_.stop_after_slots) {
      break;
    }
  }
#if defined(CEA_TELEMETRY)
  if (obs_ != nullptr) obs_->seal_journal();
#endif
  if (!config_.checkpoint_path.empty()) {
    write_checkpoint();
    ++report.checkpoints_written;
  }
  report.final_slot = controller_.slot();
#if defined(CEA_TELEMETRY)
  if (obs_ != nullptr) {
    obs_->publish_metrics(steady_ms());
    report.alerts = obs_->watchdog.counts();
    report.alerts_total = obs_->watchdog.total();
    if (obs_->journal != nullptr) {
      report.journal_records = obs_->journal->records_sealed();
      report.journal_segments = obs_->journal->segments_sealed();
    }
  }
#endif
  return report;
}

}  // namespace cea::serve
