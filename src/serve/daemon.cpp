#include "serve/daemon.h"

#include <sys/stat.h>

#include <chrono>
#include <stdexcept>
#include <thread>

#include "obs/telemetry.h"
#include "util/state_io.h"

namespace cea::serve {
namespace {

bool file_exists(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0;
}

void sleep_ms(std::size_t ms) {
  if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

}  // namespace

ServeDaemon::ServeDaemon(ServeController& controller, FeedSource& feed,
                         DaemonConfig config)
    : controller_(controller), feed_(feed), config_(std::move(config)) {
  if (feed_.num_edges() != controller_.total_edges()) {
    throw std::invalid_argument(
        "ServeDaemon: feed supplies " + std::to_string(feed_.num_edges()) +
        " edges, controller needs " +
        std::to_string(controller_.total_edges()));
  }
}

bool ServeDaemon::restore_if_present() {
  if (config_.checkpoint_path.empty() ||
      !file_exists(config_.checkpoint_path)) {
    return false;
  }
  restore_from(config_.checkpoint_path);
  return true;
}

void ServeDaemon::restore_from(const std::string& path) {
  controller_.restore_payload(util::read_checkpoint_file(path));
}

void ServeDaemon::write_checkpoint() {
  if (config_.checkpoint_path.empty()) return;
  util::write_checkpoint_file(config_.checkpoint_path,
                              controller_.checkpoint_payload());
#if defined(CEA_TELEMETRY)
  static const obs::MetricId obs_ckpt = obs::counter("serve.checkpoints");
  obs::add(obs_ckpt, 1.0);
#endif
}

DaemonReport ServeDaemon::run() {
  DaemonReport report;
  std::size_t pending_streak = 0;
  SlotInput input;
  while (true) {
    const std::size_t t = controller_.slot();
    if (config_.max_slots != 0 && t >= config_.max_slots) break;
    const FeedStatus status = feed_.poll(t, input);
    if (status == FeedStatus::kEnd) {
      report.feed_ended = true;
      break;
    }
    if (status == FeedStatus::kPending) {
#if defined(CEA_TELEMETRY)
      static const obs::MetricId obs_pending =
          obs::counter("serve.feed_pending");
      obs::add(obs_pending, 1.0);
#endif
      ++pending_streak;
      if (config_.max_pending_polls != 0 &&
          pending_streak >= config_.max_pending_polls) {
        break;
      }
      sleep_ms(config_.poll_interval_ms);
      continue;
    }
    pending_streak = 0;
    {
      CEA_SPAN("serve.slot");
      controller_.step(input.quote, input.workload);
    }
    ++report.slots_processed;
#if defined(CEA_TELEMETRY)
    static const obs::MetricId obs_slots = obs::counter("serve.slots");
    obs::add(obs_slots, 1.0);
#endif
    sleep_ms(config_.slot_delay_ms);
    const bool boundary =
        config_.checkpoint_every != 0 &&
        controller_.slot() % config_.checkpoint_every == 0;
    if (boundary) {
      write_checkpoint();
      ++report.checkpoints_written;
    }
    if (config_.stop_after_slots != 0 &&
        report.slots_processed >= config_.stop_after_slots) {
      break;
    }
  }
  if (!config_.checkpoint_path.empty()) {
    write_checkpoint();
    ++report.checkpoints_written;
  }
  report.final_slot = controller_.slot();
  return report;
}

}  // namespace cea::serve
