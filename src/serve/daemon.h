#pragma once

// The serving daemon: the only layer that owns I/O and a clock. It polls a
// FeedSource for each slot's input, drives the ServeController (pure state
// machine), and persists crash-safe checkpoints (util/state_io.h) every
// `checkpoint_every` slots — so a SIGKILL at ANY instant loses at most the
// slots since the last checkpoint, and restarting from that checkpoint
// replays them bit-identically (feeds answer poll(t) repeatably).
//
// Library/driver split: this class still does no argument parsing, no
// signal handling, no logging policy — that lives in the CLI driver
// (examples/serve_daemon.cpp). Tests drive the daemon in-process.

#include <cstdint>
#include <string>

#include "serve/controller.h"
#include "serve/feed.h"

namespace cea::serve {

struct DaemonConfig {
  /// Checkpoint file path; empty disables checkpointing.
  std::string checkpoint_path;
  /// Write a checkpoint after every N slots (0 = only the final one).
  std::size_t checkpoint_every = 0;
  /// Stop after the controller reaches this slot (0 = run to feed end).
  std::size_t max_slots = 0;
  /// Stop after processing this many slots IN THIS PROCESS (0 = off).
  /// Distinct from max_slots: a restored daemon counts from zero, which is
  /// what the kill/restore CI gate uses to stop at a precise boundary.
  std::size_t stop_after_slots = 0;
  /// Sleep between polls while the feed is pending (milliseconds).
  std::size_t poll_interval_ms = 10;
  /// Give up after this many consecutive pending polls (0 = wait forever).
  std::size_t max_pending_polls = 0;
  /// Artificial pacing per slot (milliseconds); widens the kill window in
  /// the SIGKILL recovery drill, 0 for full speed.
  std::size_t slot_delay_ms = 0;
};

/// Outcome of one ServeDaemon::run() invocation.
struct DaemonReport {
  std::size_t slots_processed = 0;   ///< slots executed by THIS run()
  std::size_t checkpoints_written = 0;
  std::size_t final_slot = 0;        ///< controller slot after the run
  bool feed_ended = false;           ///< stopped because the feed ended
};

class ServeDaemon {
 public:
  /// The controller and feed must outlive the daemon. The feed's edge
  /// width must equal the controller's total_edges().
  ServeDaemon(ServeController& controller, FeedSource& feed,
              DaemonConfig config);

  /// Restore the controller from config.checkpoint_path if the file
  /// exists; returns true when a checkpoint was loaded. Call before run().
  bool restore_if_present();

  /// Restore from an explicit checkpoint file (throws util::StateError on
  /// a missing/corrupt/mismatched file).
  void restore_from(const std::string& path);

  /// Drive the controller until the feed ends, max_slots/stop_after_slots
  /// is reached, or the feed stays pending past max_pending_polls. Writes
  /// the periodic checkpoints and, when checkpointing is configured, a
  /// final checkpoint at the stopping boundary.
  DaemonReport run();

  /// One checkpoint now (at the current slot boundary), crash-safely.
  void write_checkpoint();

 private:
  ServeController& controller_;
  FeedSource& feed_;
  DaemonConfig config_;
};

}  // namespace cea::serve
