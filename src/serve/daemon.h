#pragma once

// The serving daemon: the only layer that owns I/O and a clock. It polls a
// FeedSource for each slot's input, drives the ServeController (pure state
// machine), and persists crash-safe checkpoints (util/state_io.h) every
// `checkpoint_every` slots — so a SIGKILL at ANY instant loses at most the
// slots since the last checkpoint, and restarting from that checkpoint
// replays them bit-identically (feeds answer poll(t) repeatably).
//
// Library/driver split: this class still does no argument parsing, no
// signal handling, no logging policy — that lives in the CLI driver
// (examples/serve_daemon.cpp). Tests drive the daemon in-process.

#include <array>
#include <cstdint>
#include <memory>
#include <string>

#include "obs/slo.h"
#include "serve/controller.h"
#include "serve/feed.h"

namespace cea::serve {

struct DaemonConfig {
  /// Checkpoint file path; empty disables checkpointing.
  std::string checkpoint_path;
  /// Write a checkpoint after every N slots (0 = only the final one).
  std::size_t checkpoint_every = 0;
  /// Stop after the controller reaches this slot (0 = run to feed end).
  std::size_t max_slots = 0;
  /// Stop after processing this many slots IN THIS PROCESS (0 = off).
  /// Distinct from max_slots: a restored daemon counts from zero, which is
  /// what the kill/restore CI gate uses to stop at a precise boundary.
  std::size_t stop_after_slots = 0;
  /// Sleep between polls while the feed is pending (milliseconds).
  std::size_t poll_interval_ms = 10;
  /// Give up after this many consecutive pending polls (0 = wait forever).
  std::size_t max_pending_polls = 0;
  /// Artificial pacing per slot (milliseconds); widens the kill window in
  /// the SIGKILL recovery drill, 0 for full speed.
  std::size_t slot_delay_ms = 0;

  // --- observability (DESIGN.md §13) -----------------------------------
  // All of it is observational: enabling any of these cannot change a
  // computed result. Under -DCEA_TELEMETRY=OFF the engine hook feeding
  // these surfaces is compiled out, so they stay inert (empty journal,
  // registry-only metrics, no alerts).
  /// Decision-journal directory (must already exist); empty disables the
  /// journal. Segments are sealed crash-safely at slot boundaries.
  std::string journal_dir;
  /// Seal a journal segment every N executed slots (also sealed at every
  /// checkpoint boundary and at shutdown). 0 behaves like 1.
  std::size_t journal_every = 1;
  /// Prometheus text snapshot path (written atomically at slot
  /// boundaries); empty disables the metrics file.
  std::string metrics_path;
  /// Publish metrics every N executed slots. 0 behaves like 1.
  std::size_t metrics_every = 1;
  /// Loopback TCP metrics endpoint port (-1 disables; 0 picks an
  /// ephemeral port — read it back from DaemonReport::metrics_port).
  int metrics_port = -1;
  /// Carbon-SLO watchdog rules (obs/slo.h). The watchdog runs whenever
  /// any observability sink above is enabled.
  obs::SloConfig slo;
};

/// Outcome of one ServeDaemon::run() invocation.
struct DaemonReport {
  std::size_t slots_processed = 0;   ///< slots executed by THIS run()
  std::size_t checkpoints_written = 0;
  std::size_t final_slot = 0;        ///< controller slot after the run
  bool feed_ended = false;           ///< stopped because the feed ended

  // Observability outcome (all zero when observability is disabled or
  // compiled out). Alert counts are per watchdog rule, indexed by SloKind.
  std::array<std::uint64_t, obs::kSloKindCount> alerts{};
  std::uint64_t alerts_total = 0;
  std::size_t journal_records = 0;   ///< records sealed since construction
  std::size_t journal_segments = 0;  ///< segments sealed since construction
  int metrics_port = -1;             ///< bound endpoint port, -1 if none
};

class ServeDaemon {
 public:
  /// The controller and feed must outlive the daemon. The feed's edge
  /// width must equal the controller's total_edges().
  ServeDaemon(ServeController& controller, FeedSource& feed,
              DaemonConfig config);
  ~ServeDaemon();  // out of line: the observability state is incomplete here

  /// Restore the controller from config.checkpoint_path if the file
  /// exists; returns true when a checkpoint was loaded. Call before run().
  bool restore_if_present();

  /// Restore from an explicit checkpoint file (throws util::StateError on
  /// a missing/corrupt/mismatched file).
  void restore_from(const std::string& path);

  /// Drive the controller until the feed ends, max_slots/stop_after_slots
  /// is reached, or the feed stays pending past max_pending_polls. Writes
  /// the periodic checkpoints and, when checkpointing is configured, a
  /// final checkpoint at the stopping boundary.
  DaemonReport run();

  /// One checkpoint now (at the current slot boundary), crash-safely.
  void write_checkpoint();

  /// Bound metrics endpoint port, or -1 when no endpoint is running.
  int metrics_port() const noexcept;

 private:
  ServeController& controller_;
  FeedSource& feed_;
  DaemonConfig config_;
#if defined(CEA_TELEMETRY)
  struct Obs;  // journal writer + watchdog + metrics sinks (daemon.cpp)
  std::unique_ptr<Obs> obs_;
#endif
};

}  // namespace cea::serve
