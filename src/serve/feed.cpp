#include "serve/feed.h"

#include <sys/stat.h>

#include <algorithm>
#include <climits>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "data/trace_io.h"
#include "util/numio.h"
#include "util/rng.h"

namespace cea::serve {
namespace {

bool file_exists(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0;
}

bool directory_exists(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

/// Strict workload count, same contract as data/trace_io.h: integral,
/// >= 1, within int range, locale-independent.
int parse_count_strict(const std::string& cell, const std::string& context) {
  double value = 0.0;
  if (!util::parse_double(cell, value) || value <= 0.0) {
    throw std::runtime_error(context + ": bad count '" + cell + "'");
  }
  if (std::floor(value) != value) {
    throw std::runtime_error(context + ": non-integral count '" + cell + "'");
  }
  if (value > static_cast<double>(INT_MAX)) {
    throw std::runtime_error(context + ": count exceeds INT_MAX: '" + cell +
                             "'");
  }
  return static_cast<int>(value);
}

std::vector<std::string> split_cells(const std::string& line) {
  std::vector<std::string> cells;
  std::stringstream ss(line);
  std::string cell;
  while (std::getline(ss, cell, ',')) {
    const auto begin = cell.find_first_not_of(" \t\r");
    const auto end = cell.find_last_not_of(" \t\r");
    cells.push_back(begin == std::string::npos
                        ? std::string()
                        : cell.substr(begin, end - begin + 1));
  }
  return cells;
}

}  // namespace

ReplayFeed::ReplayFeed(data::WorkloadTraces workload, data::PriceSeries prices,
                       bool loop)
    : workload_(std::move(workload)),
      prices_(std::move(prices)),
      loop_(loop) {
  if (workload_.empty()) {
    throw std::invalid_argument("ReplayFeed: no workload traces");
  }
  num_slots_ = workload_.front().size();
  for (const auto& trace : workload_) {
    if (trace.size() != num_slots_) {
      throw std::invalid_argument("ReplayFeed: ragged workload traces");
    }
  }
  if (num_slots_ == 0 || prices_.size() < num_slots_) {
    throw std::invalid_argument(
        "ReplayFeed: price series shorter than the workload traces");
  }
}

ReplayFeed ReplayFeed::from_files(const std::string& workload_csv,
                                  const std::string& prices_csv, bool loop) {
  return ReplayFeed(data::load_workload_csv(workload_csv),
                    data::load_prices_csv(prices_csv), loop);
}

FeedStatus ReplayFeed::poll(std::size_t t, SlotInput& out) {
  if (t >= num_slots_ && !loop_) return FeedStatus::kEnd;
  const std::size_t slot = t % num_slots_;
  out.quote = {prices_.buy[slot], prices_.sell[slot]};
  out.workload.resize(workload_.size());
  for (std::size_t i = 0; i < workload_.size(); ++i)
    out.workload[i] = workload_[i][slot];
  return FeedStatus::kReady;
}

SyntheticFeed::SyntheticFeed(std::size_t num_edges, std::uint64_t seed,
                             double mean_samples, data::MarketConfig market)
    : num_edges_(num_edges),
      seed_(seed),
      mean_samples_(std::max(1.0, mean_samples)),
      market_(market) {
  if (num_edges_ == 0) {
    throw std::invalid_argument("SyntheticFeed: num_edges must be positive");
  }
}

FeedStatus SyntheticFeed::poll(std::size_t t, SlotInput& out) {
  // The quote stream is keyed under a reserved pseudo-edge index so it
  // never collides with a workload stream.
  Rng price_rng(stream_seed(seed_, ~std::uint64_t{0}, t));
  const double buy = price_rng.uniform(market_.min_price, market_.max_price);
  out.quote = {buy, buy * market_.sell_ratio};
  out.workload.resize(num_edges_);
  for (std::size_t i = 0; i < num_edges_; ++i) {
    Rng edge_rng(stream_seed(seed_, i, t));
    out.workload[i] = 1 + static_cast<int>(edge_rng.uniform_int(
                              0, static_cast<std::int64_t>(2.0 * mean_samples_)));
  }
  return FeedStatus::kReady;
}

DirectoryTailFeed::DirectoryTailFeed(std::string directory,
                                     std::size_t num_edges)
    : directory_(std::move(directory)), num_edges_(num_edges) {
  if (num_edges_ == 0) {
    throw std::invalid_argument(
        "DirectoryTailFeed: num_edges must be positive");
  }
  // Fail at construction, not after hours of pending polls: a missing
  // directory can never become ready (nobody can publish into it), and
  // poll() would misread it as an endless kPending.
  if (!directory_exists(directory_)) {
    throw std::invalid_argument(
        "DirectoryTailFeed: directory does not exist: " + directory_);
  }
}

std::string DirectoryTailFeed::slot_path(std::size_t t) const {
  return directory_ + "/slot_" + std::to_string(t) + ".csv";
}

std::string DirectoryTailFeed::end_path() const {
  return directory_ + "/feed_end";
}

FeedStatus DirectoryTailFeed::poll(std::size_t t, SlotInput& out) {
  const std::string path = slot_path(t);
  if (!file_exists(path)) {
    return file_exists(end_path()) ? FeedStatus::kEnd : FeedStatus::kPending;
  }
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("DirectoryTailFeed: cannot open " + path);
  }
  std::string price_line;
  std::string count_line;
  if (!std::getline(in, price_line) || !std::getline(in, count_line)) {
    throw std::runtime_error("DirectoryTailFeed: truncated slot file " + path);
  }
  const auto price_cells = split_cells(price_line);
  double buy = 0.0;
  double sell = 0.0;
  if (price_cells.size() != 2 || !util::parse_double(price_cells[0], buy) ||
      !util::parse_double(price_cells[1], sell) || buy <= 0.0 ||
      sell <= 0.0 || sell > buy) {
    throw std::runtime_error("DirectoryTailFeed: bad price line in " + path);
  }
  const auto count_cells = split_cells(count_line);
  if (count_cells.size() != num_edges_) {
    throw std::runtime_error(
        "DirectoryTailFeed: " + path + " has " +
        std::to_string(count_cells.size()) + " counts, expected " +
        std::to_string(num_edges_));
  }
  out.quote = {buy, sell};
  out.workload.resize(num_edges_);
  for (std::size_t i = 0; i < num_edges_; ++i)
    out.workload[i] = parse_count_strict(count_cells[i], path);
  return FeedStatus::kReady;
}

void DirectoryTailFeed::publish_slot(const DirectoryTailFeed& feed,
                                     std::size_t t, const SlotInput& input) {
  const std::string path = feed.slot_path(t);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp);
    if (!out) {
      throw std::runtime_error("DirectoryTailFeed: cannot write " + tmp);
    }
    out << util::format_double_exact(input.quote.buy_price) << ','
        << util::format_double_exact(input.quote.sell_price) << '\n';
    for (std::size_t i = 0; i < input.workload.size(); ++i) {
      if (i > 0) out << ',';
      out << util::format_i64(input.workload[i]);
    }
    out << '\n';
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("DirectoryTailFeed: cannot publish " + path);
  }
}

}  // namespace cea::serve
