#pragma once

// Input feeds of the serving daemon: one interface delivering, per slot,
// the market quote and the per-edge workload counts the controller needs
// to advance the fleet (serve/controller.h).
//
// Feeds are deliberately stateless with respect to the slot cursor: poll()
// takes the slot index explicitly and every implementation answers as a
// pure function of (its configuration, t) — replay indexes its traces,
// synthetic derives everything from keyed RNG streams, directory-tail
// looks for the slot's file. That is what keeps checkpoints small: a
// restored daemon re-polls slot t and gets byte-identical input without
// any feed state in the checkpoint.

#include <cstdint>
#include <string>
#include <vector>

#include "data/carbon_market.h"
#include "data/workload.h"
#include "trading/trader.h"

namespace cea::serve {

enum class FeedStatus {
  kReady,    ///< `out` was filled with the slot's input
  kPending,  ///< the slot's input is not available yet; poll again later
  kEnd,      ///< the stream is over; no slot >= t will ever be ready
};

/// One slot of input: the market quote plus one workload count per edge
/// (concatenated across tenants in controller edge order).
struct SlotInput {
  trading::TradeObservation quote;
  std::vector<int> workload;
};

class FeedSource {
 public:
  virtual ~FeedSource() = default;

  /// Poll the input of slot t. Implementations must answer repeatably:
  /// polling the same t twice yields the same data (the restore path
  /// re-polls the slot the checkpoint stopped before).
  virtual FeedStatus poll(std::size_t t, SlotInput& out) = 0;

  /// Total edge count per slot (the width of SlotInput::workload).
  virtual std::size_t num_edges() const noexcept = 0;

  virtual std::string name() const = 0;
};

/// Replays in-memory traces (or trace files via the loaders). After the
/// last slot the feed either ends or, with `loop = true`, wraps around
/// modulo the trace length (soak testing).
class ReplayFeed final : public FeedSource {
 public:
  /// `workload` is [edge][slot]; `prices` must cover at least as many
  /// slots as the workload. Throws std::invalid_argument on mismatch.
  ReplayFeed(data::WorkloadTraces workload, data::PriceSeries prices,
             bool loop = false);

  /// Load both traces from CSV files (data/trace_io.h formats).
  static ReplayFeed from_files(const std::string& workload_csv,
                               const std::string& prices_csv,
                               bool loop = false);

  FeedStatus poll(std::size_t t, SlotInput& out) override;
  std::size_t num_edges() const noexcept override { return workload_.size(); }
  std::size_t num_slots() const noexcept { return num_slots_; }
  std::string name() const override { return "replay"; }

 private:
  data::WorkloadTraces workload_;
  data::PriceSeries prices_;
  std::size_t num_slots_ = 0;
  bool loop_ = false;
};

/// Endless deterministic synthetic feed: every cell is a pure function of
/// (seed, edge, t) and the quote a pure function of (seed, t), so any two
/// daemons with the same seed see identical streams — the property the
/// kill/restore bit-identity gate relies on.
class SyntheticFeed final : public FeedSource {
 public:
  SyntheticFeed(std::size_t num_edges, std::uint64_t seed,
                double mean_samples = 400.0,
                data::MarketConfig market = {});

  FeedStatus poll(std::size_t t, SlotInput& out) override;
  std::size_t num_edges() const noexcept override { return num_edges_; }
  std::string name() const override { return "synthetic"; }

 private:
  std::size_t num_edges_ = 0;
  std::uint64_t seed_ = 0;
  double mean_samples_ = 400.0;
  data::MarketConfig market_;
};

/// Tails a directory another process drops slot files into. Slot t is read
/// from `<dir>/slot_<t>.csv`:
///   <buy>,<sell>
///   <count_edge0>,<count_edge1>,...
/// A file named `<dir>/feed_end` marks the end of the stream. Parsing is
/// locale-independent and counts are strict integers (same contract as
/// data/trace_io.h); malformed files throw std::runtime_error rather than
/// being silently skipped.
class DirectoryTailFeed final : public FeedSource {
 public:
  DirectoryTailFeed(std::string directory, std::size_t num_edges);

  FeedStatus poll(std::size_t t, SlotInput& out) override;
  std::size_t num_edges() const noexcept override { return num_edges_; }
  std::string name() const override { return "tail"; }

  /// Path of slot t's file (for producers and tests).
  std::string slot_path(std::size_t t) const;
  std::string end_path() const;

  /// Producer-side helper: atomically publish slot t (write to a temp
  /// name, then rename) so a concurrent poll never sees a torn file.
  static void publish_slot(const DirectoryTailFeed& feed, std::size_t t,
                           const SlotInput& input);

 private:
  std::string directory_;
  std::size_t num_edges_ = 0;
};

}  // namespace cea::serve
