#include "serve/metrics_server.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace cea::serve {
namespace {

void send_all(int fd, const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    // MSG_NOSIGNAL: a scraper that hangs up mid-response must not SIGPIPE
    // the daemon.
    const ssize_t n =
        ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // peer went away; nothing to do
    }
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace

MetricsServer::MetricsServer(int port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("MetricsServer: socket() failed: " +
                             std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 8) < 0) {
    const std::string what = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("MetricsServer: cannot listen on port " +
                             std::to_string(port) + ": " + what);
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  thread_ = std::thread([this] { serve_loop(); });
}

MetricsServer::~MetricsServer() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  // The serve loop only blocks in poll() with a timeout, so it observes
  // stop_ promptly; closing the fd after join keeps the poll target valid.
  thread_.join();
  ::close(listen_fd_);
}

void MetricsServer::publish(std::string text) {
  const std::lock_guard<std::mutex> lock(mutex_);
  text_ = std::move(text);
}

void MetricsServer::serve_loop() {
  while (true) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (stop_) return;
    }
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (ready <= 0) continue;
    const int client = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (client < 0) continue;
    // Drain whatever request line the client sent (bounded, best-effort),
    // then answer with the current document and close.
    char scratch[1024];
    pollfd cfd{client, POLLIN, 0};
    if (::poll(&cfd, 1, 100) > 0) {
      (void)::recv(client, scratch, sizeof(scratch), 0);
    }
    std::string body;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      body = text_;
    }
    const std::string header =
        "HTTP/1.0 200 OK\r\n"
        "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
        "Content-Length: " +
        std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n";
    send_all(client, header.data(), header.size());
    send_all(client, body.data(), body.size());
    ::close(client);
  }
}

}  // namespace cea::serve
