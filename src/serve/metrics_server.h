#pragma once

// Minimal TCP exposition endpoint for the daemon's Prometheus text page
// (obs/prom.h). One background thread accepts connections on a loopback
// listener and answers every request with the most recently published
// document — no HTTP parsing beyond draining the request bytes, no
// keep-alive, no TLS. The atomically published status file
// (DaemonConfig::metrics_path) is the primary scrape surface; this
// endpoint exists so `curl localhost:<port>/metrics` works against a live
// daemon without touching its filesystem.
//
// Threading: publish() swaps the document under a mutex; the serve loop
// copies it under the same mutex before writing. The daemon publishes
// only at pool-quiescent slot boundaries, so the served text is always a
// complete snapshot.

#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

namespace cea::serve {

class MetricsServer {
 public:
  /// Bind 127.0.0.1:`port` (0 picks an ephemeral port) and start the
  /// serve thread. Throws std::runtime_error when the socket cannot be
  /// bound.
  explicit MetricsServer(int port);
  ~MetricsServer();

  MetricsServer(const MetricsServer&) = delete;
  MetricsServer& operator=(const MetricsServer&) = delete;

  /// The bound port (useful with port 0).
  int port() const noexcept { return port_; }

  /// Replace the document served to subsequent connections.
  void publish(std::string text);

 private:
  void serve_loop();

  int listen_fd_ = -1;
  int port_ = 0;
  std::mutex mutex_;
  std::string text_;
  bool stop_ = false;  ///< written under mutex_ before closing the fd
  std::thread thread_;
};

}  // namespace cea::serve
