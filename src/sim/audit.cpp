#include "sim/audit.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace cea::sim {
namespace {

/// Collects into a local list and mirrors into the global collector.
class Recorder {
 public:
  void add(std::string site, std::size_t edge, std::size_t slot,
           double quantity, std::string message) {
    audit::Violation violation{std::move(site), std::move(message), edge,
                               slot, quantity};
    audit::record(violation);
    violations_.push_back(std::move(violation));
  }

  std::vector<audit::Violation> take() { return std::move(violations_); }

 private:
  std::vector<audit::Violation> violations_;
};

std::string format_quantity(double value) {
  std::ostringstream out;
  out.precision(12);
  out << value;
  return out.str();
}

}  // namespace

std::vector<audit::Violation> audit_run(const Environment& env,
                                        const RunResult& result,
                                        bool averaged) {
  Recorder recorder;
  const auto& config = env.config();
  const std::size_t horizon = result.horizon();

  if (horizon != env.horizon()) {
    recorder.add("audit.horizon", audit::kNoIndex, audit::kNoIndex,
                 static_cast<double>(horizon),
                 "result horizon " + std::to_string(horizon) +
                     " != environment horizon " +
                     std::to_string(env.horizon()));
    return recorder.take();
  }
  for (const auto* series :
       {&result.switching_cost, &result.trading_cost, &result.emissions,
        &result.buys, &result.sells, &result.accuracy, &result.workload}) {
    if (series->size() != horizon) {
      recorder.add("audit.series_length", audit::kNoIndex, audit::kNoIndex,
                   static_cast<double>(series->size()),
                   "per-slot series length mismatch vs horizon " +
                       std::to_string(horizon));
      return recorder.take();
    }
  }

  double balance = config.carbon_cap;
  for (std::size_t t = 0; t < horizon; ++t) {
    const double buy = result.buys[t];
    const double sell = result.sells[t];

    const double expected_cost =
        buy * env.prices().buy[t] - sell * env.prices().sell[t];
    const double cost_scale =
        std::max({1.0, std::abs(expected_cost), std::abs(result.trading_cost[t])});
    if (std::abs(result.trading_cost[t] - expected_cost) > 1e-9 * cost_scale) {
      recorder.add("audit.trading_cost_identity", audit::kNoIndex, t,
                   result.trading_cost[t] - expected_cost,
                   "trading cost " + format_quantity(result.trading_cost[t]) +
                       " != z c - w r = " + format_quantity(expected_cost));
    }

    if (!(buy >= 0.0 && buy <= config.max_trade_per_slot + 1e-9 &&
          sell >= 0.0 && sell <= config.max_trade_per_slot + 1e-9)) {
      recorder.add("audit.trade_box", audit::kNoIndex, t, buy - sell,
                   "trade (" + format_quantity(buy) + ", " +
                       format_quantity(sell) + ") outside [0, " +
                       format_quantity(config.max_trade_per_slot) + "]^2");
    }

    if (!averaged && config.clamp_sales_to_holdings &&
        sell > std::max(0.0, balance + buy) + 1e-9) {
      recorder.add("audit.holdings_clamp", audit::kNoIndex, t, sell,
                   "sell " + format_quantity(sell) + " exceeds holdings " +
                       format_quantity(std::max(0.0, balance + buy)));
    }
    balance += buy - sell - result.emissions[t];

    if (!(std::isfinite(result.emissions[t]) && result.emissions[t] >= 0.0)) {
      recorder.add("audit.emission_nonneg", audit::kNoIndex, t,
                   result.emissions[t],
                   "emission " + format_quantity(result.emissions[t]) +
                       " not finite/nonnegative");
    }
    if (!(result.accuracy[t] >= 0.0 && result.accuracy[t] <= 1.0)) {
      recorder.add("audit.accuracy_range", audit::kNoIndex, t,
                   result.accuracy[t],
                   "slot accuracy " + format_quantity(result.accuracy[t]) +
                       " outside [0, 1]");
    }
    if (!(result.workload[t] >= 0.0)) {
      recorder.add("audit.workload_nonneg", audit::kNoIndex, t,
                   result.workload[t], "negative slot workload");
    }
  }

  // Terminal fit: violation() must equal [-(final balance)]^+ of the ledger
  // replayed above.
  const double expected_violation = std::max(0.0, -balance);
  if (std::abs(result.violation() - expected_violation) >
      1e-9 * std::max(1.0, std::abs(expected_violation))) {
    recorder.add("audit.terminal_fit", audit::kNoIndex, audit::kNoIndex,
                 result.violation() - expected_violation,
                 "violation() " + format_quantity(result.violation()) +
                     " != [-(R + sum(z - w - e))]^+ = " +
                     format_quantity(expected_violation));
  }

  // Selection counts: exactly one hosted model per edge per slot. Averaged
  // results round each cell to the nearest integer, so their row sums get a
  // num_models/2 slack; single runs must be exact.
  if (result.selection_counts.size() != env.num_edges()) {
    recorder.add("audit.selection_rows", audit::kNoIndex, audit::kNoIndex,
                 static_cast<double>(result.selection_counts.size()),
                 "selection_counts rows != num_edges");
  } else {
    for (std::size_t i = 0; i < result.selection_counts.size(); ++i) {
      std::size_t total = 0;
      for (std::size_t count : result.selection_counts[i]) total += count;
      const std::size_t slack =
          averaged ? result.selection_counts[i].size() / 2 : 0;
      if (total + slack < horizon || total > horizon + slack) {
        recorder.add("audit.selection_totals", i, audit::kNoIndex,
                     static_cast<double>(total),
                     "edge hosted " + std::to_string(total) +
                         " model-slots over a horizon of " +
                         std::to_string(horizon));
      }
    }
  }

  // First-slot semantics: the initial download is not a switch.
  const std::size_t max_switches =
      horizon == 0 ? 0 : env.num_edges() * (horizon - 1);
  if (result.total_switches > max_switches) {
    recorder.add("audit.switch_bound", audit::kNoIndex, audit::kNoIndex,
                 static_cast<double>(result.total_switches),
                 "total_switches " + std::to_string(result.total_switches) +
                     " exceeds I*(T-1) = " + std::to_string(max_switches));
  }

  return recorder.take();
}

std::string format_violations(const std::vector<audit::Violation>& violations,
                              std::size_t max_lines) {
  std::ostringstream out;
  const std::size_t shown = std::min(violations.size(), max_lines);
  for (std::size_t v = 0; v < shown; ++v) {
    const auto& violation = violations[v];
    out << violation.site << " (";
    if (violation.edge != audit::kNoIndex) out << "edge=" << violation.edge;
    if (violation.edge != audit::kNoIndex &&
        violation.slot != audit::kNoIndex) {
      out << ", ";
    }
    if (violation.slot != audit::kNoIndex) out << "slot=" << violation.slot;
    if (violation.edge == audit::kNoIndex &&
        violation.slot == audit::kNoIndex) {
      out << "global";
    }
    out << ", q=" << format_quantity(violation.quantity)
        << "): " << violation.message << '\n';
  }
  if (violations.size() > shown) {
    out << "... and " << (violations.size() - shown) << " more\n";
  }
  return out.str();
}

int audit_exit_code(const char* context_name) {
  const std::size_t dropped = audit::dropped_count();
  const auto violations = audit::drain();
  if (violations.empty() && dropped == 0) return 0;
  std::fprintf(stderr,
               "%s: %zu audit violation(s) recorded (%zu dropped beyond the "
               "collector cap):\n%s",
               context_name, violations.size(), dropped,
               format_violations(violations).c_str());
  return 1;
}

}  // namespace cea::sim
