#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/environment.h"
#include "sim/metrics.h"
#include "util/check.h"

namespace cea::sim {

/// Post-hoc audit of a finished RunResult against its Environment. Re-derives
/// every accounting identity the paper's carbon-neutrality claim rests on:
///
///  - trading-cost identity: trading_cost[t] == z^t c^t - w^t r^t;
///  - liquidity box: z^t, w^t in [0, max_trade_per_slot];
///  - holdings clamp (when configured): w^t <= max(0, balance + z^t) with
///    balance = R + sum_{s<t}(z - w - e);
///  - emission positivity and accuracy in [0, 1];
///  - selection-count totals: every edge hosts exactly one model per slot;
///  - first-slot semantics: switches can only occur from slot 1 on, so
///    total_switches <= I * (T - 1);
///  - violation()/settled_total_cost() consistency with the ledger.
///
/// Unlike the CEA_CHECK sites this runs in every build (it reads only the
/// recorded series, never the hot path), so tests and benches can gate on
/// it without an audit-enabled compile. Violations are returned AND pushed
/// into the audit collector, giving one drain point for both layers.
///
/// Pass averaged = true for average_runs() outputs: per-slot linear
/// identities survive averaging, but the holdings clamp does not (max(0,.)
/// is convex, so the average of feasible runs can look infeasible) and the
/// rounded selection counts get a num_models/2 slack instead of exactness.
std::vector<audit::Violation> audit_run(const Environment& env,
                                        const RunResult& result,
                                        bool averaged = false);

/// Human-readable rendering of violations, one per line with the (edge,
/// slot, quantity) context; truncated to `max_lines` with a trailing count.
std::string format_violations(const std::vector<audit::Violation>& violations,
                              std::size_t max_lines = 20);

/// Drain the process-wide audit collector and render a gate summary.
/// Returns 0 (and prints nothing) when the collector is empty; otherwise
/// prints the formatted violations to stderr and returns 1. Figure benches
/// call this at exit so an audit-enabled build fails loudly on any
/// recorded violation.
int audit_exit_code(const char* context_name);

}  // namespace cea::sim
