#pragma once

#include <cstdint>

#include "data/carbon_market.h"
#include "data/topology.h"
#include "data/workload.h"

namespace cea::sim {

/// All knobs of one simulated scenario, defaulted to the paper's Section
/// V-A settings (10 edges, 160 slots of 15 minutes over two days, 6 models,
/// EU-permit price band, 500-unit initial cap, 500 units/kWh emission rate,
/// 6..10 x 1e-8 kWh per inferred sample, computation latency 25..150 ms).
///
/// Units: one carbon-allowance unit covers one gram of CO2; prices are
/// quoted per unit. Workload magnitudes follow busy-underground-station
/// passenger counts (thousands per 15 minutes), which is what makes the cap
/// bind and trading meaningful — see DESIGN.md "Units & scaling".
struct SimConfig {
  std::size_t num_edges = 10;
  std::size_t horizon = 160;      ///< T
  std::size_t num_models = 6;     ///< N

  double carbon_cap = 500.0;      ///< R, allowance units
  double emission_rate = 500.0;   ///< rho, units per kWh
  double switching_weight = 1.0;  ///< scales every u_i (Fig. 5 knob)
  double max_trade_per_slot = 25.0;

  /// Compliance settlement: at the end of the horizon any uncovered
  /// emission (the fit, ||[sum_t g^t]^+||) must be covered at a penalty of
  /// `settlement_penalty_multiplier` times the final buying price — the
  /// cap-and-trade analogue of the EU ETS excess-emissions penalty. This is
  /// what makes constraint (1c) bite in cost comparisons: without it, a
  /// trader that simply ignores the cap looks spuriously cheap.
  double settlement_penalty_multiplier = 2.0;

  /// Enforce the prefix reading of constraint (1c): at every slot, the
  /// allowances sold may not exceed the allowances actually held (initial
  /// cap + cumulative purchases - cumulative sales - cumulative emissions).
  /// This is how real cap-and-trade programs work — permits cannot be sold
  /// naked — and it stops cap-oblivious baselines from booking unbounded
  /// phantom revenue. Decisions are clamped at execution; traders receive
  /// the executed decision in feedback().
  bool clamp_sales_to_holdings = true;

  double comp_cost_min = 0.025;   ///< v_{i,n} lower bound, seconds
  double comp_cost_max = 0.150;   ///< v_{i,n} upper bound, seconds
  double energy_min = 6e-8;       ///< phi_n lower bound, kWh per sample
  double energy_max = 10e-8;      ///< phi_n upper bound, kWh per sample

  /// Cap on per-slot loss draws used to estimate L_{i,n}^t; the emission
  /// accounting always uses the full M_i^t. 0 means draw all M samples.
  std::size_t loss_draw_cap = 256;

  /// Non-stationarity injection (beyond the paper, which assumes a
  /// time-invariant distribution): from this slot on, model n's loss
  /// distribution becomes that of the model with the mirrored loss rank
  /// (best swaps with worst — see Environment::shift_target), as under an
  /// abrupt concept drift. Energy and size stay with the hosted model
  /// (hardware properties don't drift). 0 disables the shift.
  std::size_t loss_shift_slot = 0;

  data::WorkloadConfig workload{.num_slots = 160,
                                .slots_per_day = 80,
                                .mean_samples = 14000.0,
                                .peak_factor = 2.2,
                                .station_scale_alpha = 1.3,
                                .noise = 0.12};
  data::MarketConfig market{};
  data::TopologyConfig topology{};

  std::uint64_t seed = 42;  ///< environment seed (traces, prices, costs)
};

}  // namespace cea::sim
