#include "sim/environment.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <string>

namespace cea::sim {

Environment Environment::make_parametric(const SimConfig& config) {
  Environment env;
  env.config_ = config;
  Rng rng(config.seed);

  // Model family: sizes span small MLP-like to MobileNet-like; mean loss
  // broadly improves with size but with enough irregularity that neither
  // the smallest nor the largest model is best everywhere.
  const std::size_t n_models = config.num_models;
  Rng profile_rng = rng.split();
  for (std::size_t n = 0; n < n_models; ++n) {
    const double rank = n_models > 1
                            ? static_cast<double>(n) /
                                  static_cast<double>(n_models - 1)
                            : 0.0;
    ModelInfo info;
    info.name = "model-" + std::to_string(n);
    info.size_mb = 0.5 + 7.5 * rank;
    // Bigger models burn more energy per inferred sample.
    info.energy_per_sample =
        config.energy_min + (config.energy_max - config.energy_min) * rank;
    // U-shaped loss with a steep small-model penalty: tiny models are
    // terrible (~1.6), mid-size models are best (~0.32), the biggest is
    // mildly worse again. This mirrors real zoos (an under-parameterized
    // MLP loses badly; a mid-size CNN hits the sweet spot) and keeps the
    // energy-greedy choice clearly loss-suboptimal without letting its
    // energy savings dominate the economics.
    const double mean_loss = 0.3 + 1.5 * (rank - 0.5) * (rank - 0.5) +
                             1.3 * std::exp(-8.0 * rank) +
                             profile_rng.uniform(-0.03, 0.03);
    const double accuracy =
        std::clamp(0.97 - 0.55 * mean_loss, 0.05, 0.99);
    info.profile = data::make_parametric_profile(
        info.name, std::clamp(mean_loss, 0.05, 1.8), 0.22, accuracy,
        info.size_mb, 4096, profile_rng);
    env.models_.push_back(std::move(info));
  }

  env.finish_build(config, rng);
  return env;
}

Environment Environment::from_profiles(const SimConfig& config,
                                       std::vector<data::LossProfile> profiles) {
  assert(!profiles.empty());
  // Rank models by size to interpolate per-sample energy.
  std::vector<std::size_t> order(profiles.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return profiles[a].size_mb() < profiles[b].size_mb();
  });
  std::vector<double> energy(profiles.size(), config.energy_min);
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    const double f = order.size() > 1
                         ? static_cast<double>(rank) /
                               static_cast<double>(order.size() - 1)
                         : 0.0;
    energy[order[rank]] =
        config.energy_min + (config.energy_max - config.energy_min) * f;
  }
  return from_profiles(config, std::move(profiles), std::move(energy));
}

Environment Environment::from_profiles(const SimConfig& config,
                                       std::vector<data::LossProfile> profiles,
                                       std::vector<double> energies_kwh) {
  assert(!profiles.empty());
  assert(energies_kwh.size() == profiles.size());
  Environment env;
  env.config_ = config;
  env.config_.num_models = profiles.size();
  Rng rng(config.seed);
  const auto& energy = energies_kwh;

  for (std::size_t n = 0; n < profiles.size(); ++n) {
    ModelInfo info;
    info.name = profiles[n].model_name();
    info.size_mb = std::max(profiles[n].size_mb(), 0.01);
    info.energy_per_sample = energy[n];
    info.profile = std::move(profiles[n]);
    env.models_.push_back(std::move(info));
  }

  env.finish_build(config, rng);
  return env;
}

void Environment::finish_build(const SimConfig& config, Rng& rng) {
  Rng topo_rng = rng.split();
  topology_ = data::generate_topology(config.num_edges, config.topology,
                                      topo_rng);

  data::WorkloadConfig workload_config = config.workload;
  workload_config.num_slots = config.horizon;
  Rng workload_rng = rng.split();
  workload_ = data::generate_workload(config.num_edges, workload_config,
                                      workload_rng);

  Rng market_rng = rng.split();
  prices_ = data::generate_prices(config.horizon, config.market, market_rng);

  // v_{i,n}: grows with model size, jittered per edge (heterogeneous
  // hardware), clamped into the configured latency band.
  Rng cost_rng = rng.split();
  comp_cost_.assign(config.num_edges,
                    std::vector<double>(models_.size(), 0.0));
  double max_size = 0.0;
  for (const auto& m : models_) max_size = std::max(max_size, m.size_mb);
  for (std::size_t i = 0; i < config.num_edges; ++i) {
    const double edge_speed = cost_rng.uniform(0.75, 1.25);
    for (std::size_t n = 0; n < models_.size(); ++n) {
      const double size_f =
          max_size > 0.0 ? models_[n].size_mb / max_size : 0.5;
      const double base = config.comp_cost_min +
                          (config.comp_cost_max - config.comp_cost_min) *
                              size_f;
      comp_cost_[i][n] = std::clamp(base * edge_speed, config.comp_cost_min,
                                    config.comp_cost_max);
    }
  }
}

double Environment::switching_cost(std::size_t edge) const {
  assert(edge < topology_.download_delay.size());
  return topology_.download_delay[edge] * config_.switching_weight;
}

double Environment::computation_cost(std::size_t edge,
                                     std::size_t model) const {
  assert(edge < comp_cost_.size() && model < comp_cost_[edge].size());
  return comp_cost_[edge][model];
}

double Environment::transfer_energy(std::size_t edge,
                                    std::size_t model) const {
  assert(edge < topology_.transfer_energy_kwh_per_mb.size());
  assert(model < models_.size());
  return topology_.transfer_energy_kwh_per_mb[edge] * models_[model].size_mb;
}

std::size_t Environment::best_model(std::size_t edge) const {
  std::size_t best = 0;
  double best_value = models_[0].profile.mean_loss() +
                      computation_cost(edge, 0);
  for (std::size_t n = 1; n < models_.size(); ++n) {
    const double value =
        models_[n].profile.mean_loss() + computation_cost(edge, n);
    if (value < best_value) {
      best_value = value;
      best = n;
    }
  }
  return best;
}

void Environment::replace_traces(data::WorkloadTraces workload,
                                 data::PriceSeries prices) {
  if (!workload.empty()) {
    if (workload.size() != config_.num_edges) {
      throw std::invalid_argument(
          "replace_traces: expected " + std::to_string(config_.num_edges) +
          " edge traces, got " + std::to_string(workload.size()));
    }
    for (const auto& trace : workload) {
      if (trace.size() < config_.horizon) {
        throw std::invalid_argument(
            "replace_traces: trace shorter than the horizon (" +
            std::to_string(trace.size()) + " < " +
            std::to_string(config_.horizon) + ")");
      }
    }
    workload_ = std::move(workload);
  }
  if (!prices.buy.empty()) {
    if (prices.buy.size() < config_.horizon ||
        prices.sell.size() < config_.horizon) {
      throw std::invalid_argument(
          "replace_traces: price series shorter than the horizon");
    }
    prices_ = std::move(prices);
  }
}

std::size_t Environment::shift_target(std::size_t model) const {
  assert(model < models_.size());
  std::vector<std::size_t> by_loss(models_.size());
  std::iota(by_loss.begin(), by_loss.end(), 0);
  std::sort(by_loss.begin(), by_loss.end(), [&](std::size_t a, std::size_t b) {
    return models_[a].profile.mean_loss() < models_[b].profile.mean_loss();
  });
  std::vector<std::size_t> position(models_.size());
  for (std::size_t rank = 0; rank < by_loss.size(); ++rank)
    position[by_loss[rank]] = rank;
  return by_loss[models_.size() - 1 - position[model]];
}

double Environment::suboptimality_gap(std::size_t edge,
                                      std::size_t model) const {
  const std::size_t star = best_model(edge);
  const double best_value =
      models_[star].profile.mean_loss() + computation_cost(edge, star);
  return models_[model].profile.mean_loss() +
         computation_cost(edge, model) - best_value;
}

}  // namespace cea::sim
