#pragma once

#include <string>
#include <vector>

#include "data/carbon_market.h"
#include "data/loss_profile.h"
#include "data/topology.h"
#include "data/workload.h"
#include "sim/config.h"

namespace cea::sim {

/// One deployable model as the simulator sees it.
struct ModelInfo {
  std::string name;
  double size_mb = 1.0;            ///< W_n
  double energy_per_sample = 8e-8; ///< phi_n, kWh
  data::LossProfile profile;       ///< empirical l_n distribution + accuracy
};

/// A fully instantiated scenario: models, edges, traces, and prices. All
/// randomness is drawn from SimConfig::seed, so an Environment is a pure
/// function of its config (plus optional externally trained profiles).
class Environment {
 public:
  /// Build with parametric loss profiles (no neural networks): the six
  /// models get spread-out mean losses and sizes, with per-sample energy
  /// increasing in model size and loss *mostly* decreasing in it — so the
  /// energy-greedy baseline and the loss-optimal choice disagree, as in the
  /// paper's Fig. 8 discussion.
  static Environment make_parametric(const SimConfig& config);

  /// Build from externally profiled models (the NN-backed experiments of
  /// Figs. 12-13). `profiles` supplies l_n tables, accuracy, and sizes;
  /// energy is interpolated over [energy_min, energy_max] by size rank.
  static Environment from_profiles(const SimConfig& config,
                                   std::vector<data::LossProfile> profiles);

  /// Same, with an explicit per-sample energy (kWh) per model — used when
  /// energies are not a function of float size, e.g. quantized variants
  /// whose integer arithmetic is several times cheaper per MAC.
  static Environment from_profiles(const SimConfig& config,
                                   std::vector<data::LossProfile> profiles,
                                   std::vector<double> energies_kwh);

  const SimConfig& config() const noexcept { return config_; }
  const std::vector<ModelInfo>& models() const noexcept { return models_; }
  const data::Topology& topology() const noexcept { return topology_; }
  const data::WorkloadTraces& workload() const noexcept { return workload_; }
  const data::PriceSeries& prices() const noexcept { return prices_; }

  std::size_t num_edges() const noexcept { return config_.num_edges; }
  std::size_t num_models() const noexcept { return models_.size(); }
  std::size_t horizon() const noexcept { return config_.horizon; }

  /// u_i: model-download cost of edge i (already switching_weight-scaled).
  double switching_cost(std::size_t edge) const;

  /// v_{i,n}: computation cost of model n on edge i (posterior in the
  /// formulation; the simulator reveals it only through bandit feedback).
  double computation_cost(std::size_t edge, std::size_t model) const;

  /// F_{i,n} = theta_i * W_n: energy to download model n to edge i (kWh).
  double transfer_energy(std::size_t edge, std::size_t model) const;

  /// The model minimizing E[l_n] + v_{i,n} on edge i — the "single best
  /// model at hindsight" n_i* of Theorem 1 and the Offline reference.
  std::size_t best_model(std::size_t edge) const;

  /// Suboptimality gap Delta_{i,n} of Theorem 1.
  double suboptimality_gap(std::size_t edge, std::size_t model) const;

  /// Replace the generated workload traces and/or price series with
  /// external data (e.g. loaded through data/trace_io.h). Pass an empty
  /// container to keep the generated one. Throws std::invalid_argument on
  /// dimension mismatch (traces must be num_edges x horizon; prices must
  /// cover the horizon).
  void replace_traces(data::WorkloadTraces workload, data::PriceSeries prices);

  /// Concept-drift target (SimConfig::loss_shift_slot): the model whose
  /// loss rank mirrors n's — the best-loss model maps to the worst and
  /// vice versa, so a converged policy is maximally punished by the shift.
  std::size_t shift_target(std::size_t model) const;

 private:
  Environment() = default;
  void finish_build(const SimConfig& config, Rng& rng);

  SimConfig config_;
  std::vector<ModelInfo> models_;
  data::Topology topology_;
  data::WorkloadTraces workload_;
  data::PriceSeries prices_;
  std::vector<std::vector<double>> comp_cost_;  // [edge][model]
};

}  // namespace cea::sim
