#include "sim/experiment.h"

#include <cassert>
#include <memory>

#include "bandit/greedy_policy.h"
#include "bandit/random_policy.h"
#include "bandit/tsallis_inf.h"
#include "bandit/ucb2.h"
#include "core/blocked_tsallis_fleet.h"
#include "core/blocked_tsallis_inf.h"
#include "core/carbon_trader.h"
#include "core/regret.h"
#include "sim/simulator.h"
#include "trading/lyapunov_trader.h"
#include "trading/offline_lp_trader.h"
#include "trading/random_trader.h"
#include "trading/threshold_trader.h"
#include "util/thread_pool.h"

namespace cea::sim {

AlgorithmCombo ours_combo() {
  return {"Ours", core::BlockedTsallisInfPolicy::factory(),
          core::OnlineCarbonTrader::factory(),
          core::BlockedTsallisFleetPolicy::factory()};
}

std::vector<AlgorithmCombo> baseline_combos() {
  struct Named {
    std::string name;
    bandit::PolicyFactory factory;
  };
  const std::vector<Named> selectors = {
      {"Ran", bandit::RandomPolicy::factory()},
      {"Greedy", bandit::GreedyEnergyPolicy::factory()},
      {"TINF", bandit::TsallisInfPolicy::factory()},
      {"UCB", bandit::Ucb2Policy::factory()},
  };
  struct NamedTrader {
    std::string name;
    trading::TraderFactory factory;
  };
  const std::vector<NamedTrader> traders = {
      {"Ran", trading::RandomTrader::factory()},
      {"TH", trading::ThresholdTrader::factory()},
      {"LY", trading::LyapunovTrader::factory()},
  };
  std::vector<AlgorithmCombo> combos;
  combos.reserve(selectors.size() * traders.size());
  for (const auto& s : selectors) {
    for (const auto& tr : traders) {
      combos.push_back({s.name + "-" + tr.name, s.factory, tr.factory});
    }
  }
  return combos;
}

std::vector<AlgorithmCombo> all_combos() {
  std::vector<AlgorithmCombo> combos;
  combos.push_back(ours_combo());
  for (auto& combo : baseline_combos()) combos.push_back(std::move(combo));
  return combos;
}

namespace {

RunResult run_combo_with(const Environment& env, const AlgorithmCombo& combo,
                         std::uint64_t run_seed, const SimOptions& options) {
  Simulator simulator(env, options);
  if (combo.fleet_policy) {
    return simulator.run_fleet(combo.fleet_policy, combo.trader, run_seed,
                               combo.name);
  }
  return simulator.run(combo.policy, combo.trader, run_seed, combo.name);
}

}  // namespace

RunResult run_combo(const Environment& env, const AlgorithmCombo& combo,
                    std::uint64_t run_seed) {
  return run_combo_with(env, combo, run_seed, SimOptions{});
}

RunResult run_combo_pooled(const Environment& env, const AlgorithmCombo& combo,
                           std::uint64_t run_seed, util::ThreadPool* pool,
                           std::size_t edge_shard_grain) {
  SimOptions options;
  options.pool = pool;
  options.edge_shard_grain = edge_shard_grain;
  return run_combo_with(env, combo, run_seed, options);
}

RunResult run_combo_averaged_pooled(const Environment& env,
                                    const AlgorithmCombo& combo,
                                    std::size_t num_runs,
                                    std::uint64_t base_seed,
                                    util::ThreadPool* pool,
                                    std::size_t edge_shard_grain) {
  assert(num_runs > 0);
  std::vector<RunResult> runs;
  runs.reserve(num_runs);
  for (std::size_t r = 0; r < num_runs; ++r) {
    runs.push_back(run_combo_pooled(env, combo, base_seed + 1 + r, pool,
                                    edge_shard_grain));
  }
  return average_runs(runs);
}

RunResult run_combo_averaged(const Environment& env,
                             const AlgorithmCombo& combo,
                             std::size_t num_runs, std::uint64_t base_seed) {
  assert(num_runs > 0);
  std::vector<RunResult> runs;
  runs.reserve(num_runs);
  for (std::size_t r = 0; r < num_runs; ++r) {
    runs.push_back(run_combo(env, combo, base_seed + 1 + r));
  }
  return average_runs(runs);
}

RunResult run_combo_averaged_parallel(const Environment& env,
                                      const AlgorithmCombo& combo,
                                      std::size_t num_runs,
                                      std::uint64_t base_seed,
                                      std::size_t threads) {
  assert(num_runs > 0);
  std::vector<RunResult> runs(num_runs);
  util::ThreadPool::global().parallel_for(
      num_runs,
      [&](std::size_t r) { runs[r] = run_combo(env, combo, base_seed + 1 + r); },
      threads);
  return average_runs(runs);
}

RunResult run_offline(const Environment& env, std::uint64_t run_seed) {
  Simulator simulator(env);

  // Best model at hindsight per edge.
  std::vector<std::size_t> best(env.num_edges());
  for (std::size_t i = 0; i < env.num_edges(); ++i) best[i] = env.best_model(i);

  // Pass 1: realized emissions under those choices (prices ignored).
  auto null_trader = [](const trading::TraderContext&) {
    struct NullTrader final : trading::TradingPolicy {
      trading::TradeDecision decide(std::size_t,
                                    const trading::TradeObservation&) override {
        return {};
      }
      void feedback(std::size_t, double, const trading::TradeObservation&,
                    const trading::TradeDecision&) override {}
      std::string name() const override { return "Null"; }
    };
    return std::make_unique<NullTrader>();
  };
  const RunResult dry =
      simulator.run_fixed(best, null_trader, run_seed, "Offline-dry");

  // Pass 2: solve the trading LP on the realized emissions, then replay.
  const trading::TraderContext context = simulator.trader_context(run_seed);
  trading::OfflineTradingPlan plan = trading::solve_offline_trading(
      context, env.prices().buy, env.prices().sell, dry.emissions);
  auto lp_trader = [&plan](const trading::TraderContext&) {
    return std::make_unique<trading::OfflineLpTrader>(plan);
  };
  RunResult result =
      simulator.run_fixed(best, lp_trader, run_seed, "Offline");
  return result;
}

namespace {

trading::TraderFactory null_trader_factory() {
  return [](const trading::TraderContext&) {
    struct NullTrader final : trading::TradingPolicy {
      trading::TradeDecision decide(std::size_t,
                                    const trading::TradeObservation&) override {
        return {};
      }
      void feedback(std::size_t, double, const trading::TradeObservation&,
                    const trading::TradeDecision&) override {}
      std::string name() const override { return "Null"; }
    };
    return std::make_unique<NullTrader>();
  };
}

}  // namespace

double comparator_cost(const Environment& env, std::uint64_t run_seed) {
  Simulator simulator(env);
  std::vector<std::size_t> best(env.num_edges());
  for (std::size_t i = 0; i < env.num_edges(); ++i) best[i] = env.best_model(i);
  const RunResult dry = simulator.run_fixed(best, null_trader_factory(),
                                            run_seed, "comparator-dry");
  const double cap_share = env.config().carbon_cap /
                           static_cast<double>(env.horizon());
  double trading = 0.0;
  for (std::size_t t = 0; t < env.horizon(); ++t) {
    trading += core::one_shot_trading_optimum(
        dry.emissions[t], cap_share, env.prices().buy[t],
        env.prices().sell[t], env.config().max_trade_per_slot);
  }
  return dry.total_inference_cost() + dry.total_switching_cost() + trading;
}

double p0_regret(const Environment& env, const RunResult& run,
                 std::uint64_t run_seed) {
  // Settled cost so that under-covering cannot masquerade as low regret
  // (the comparator always covers its emissions in full).
  return run.settled_total_cost() - comparator_cost(env, run_seed);
}

RunResult run_offline_averaged(const Environment& env, std::size_t num_runs,
                               std::uint64_t base_seed) {
  assert(num_runs > 0);
  std::vector<RunResult> runs;
  runs.reserve(num_runs);
  for (std::size_t r = 0; r < num_runs; ++r) {
    runs.push_back(run_offline(env, base_seed + 1 + r));
  }
  return average_runs(runs);
}

}  // namespace cea::sim
