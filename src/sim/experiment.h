#pragma once

#include <string>
#include <vector>

#include "bandit/fleet_policy.h"
#include "bandit/policy.h"
#include "sim/environment.h"
#include "sim/metrics.h"
#include "trading/trader.h"
#include "util/thread_pool.h"

namespace cea::sim {

/// A named (model-selection, carbon-trading) pairing, e.g. "UCB-LY".
struct AlgorithmCombo {
  std::string name;
  bandit::PolicyFactory policy;
  trading::TraderFactory trader;
  /// Optional SoA-native fleet implementation of `policy`, bit-identical
  /// to it by contract (e.g. core::BlockedTsallisFleetPolicy). When set,
  /// the runners below go through Simulator::run_fleet — one object for
  /// the whole fleet instead of num_edges policy instances.
  bandit::FleetPolicyFactory fleet_policy;
};

/// The paper's approach: Algorithm 1 + Algorithm 2.
AlgorithmCombo ours_combo();

/// The twelve baseline pairings of Section V-A: {Ran, Greedy, TINF, UCB} x
/// {Ran, TH, LY}.
std::vector<AlgorithmCombo> baseline_combos();

/// ours_combo() followed by baseline_combos().
std::vector<AlgorithmCombo> all_combos();

/// Run one combo once.
RunResult run_combo(const Environment& env, const AlgorithmCombo& combo,
                    std::uint64_t run_seed);

/// Run one combo `num_runs` times with seeds base_seed+1.. and average
/// (the paper reports the average of 10 runs).
RunResult run_combo_averaged(const Environment& env,
                             const AlgorithmCombo& combo,
                             std::size_t num_runs, std::uint64_t base_seed);

/// Same, with the independent runs dispatched over the persistent
/// util::ThreadPool::global() (threads caps concurrency; 0 = the pool's
/// full width, itself sized by CEA_BENCH_THREADS or hardware concurrency).
/// Seeds are identical to the serial version, so the averaged result is
/// bit-for-bit the same for every thread count.
RunResult run_combo_averaged_parallel(const Environment& env,
                                      const AlgorithmCombo& combo,
                                      std::size_t num_runs,
                                      std::uint64_t base_seed,
                                      std::size_t threads = 0);

/// Run one combo once on the pooled edge-sharded engine: the per-edge work
/// of every slot fans out over `pool` in contiguous shards of
/// `edge_shard_grain` edges (0 = auto). Bit-identical to run_combo() for
/// any pool width and grain — this is how the large-fleet sweeps (fig04 at
/// 1k edges, bench/perf_fleet at 10k) parallelize *within* a run instead
/// of across runs.
RunResult run_combo_pooled(const Environment& env, const AlgorithmCombo& combo,
                           std::uint64_t run_seed, util::ThreadPool* pool,
                           std::size_t edge_shard_grain = 0);

/// run_combo_pooled averaged over num_runs seeds (base_seed+1..), runs
/// executed sequentially so each one owns the full pool width. Seeds match
/// run_combo_averaged, so the averaged result is bit-identical to it.
RunResult run_combo_averaged_pooled(const Environment& env,
                                    const AlgorithmCombo& combo,
                                    std::size_t num_runs,
                                    std::uint64_t base_seed,
                                    util::ThreadPool* pool,
                                    std::size_t edge_shard_grain = 0);

/// The Offline reference: per-edge best model at hindsight (minimum
/// E[l_n] + v_{i,n}) held for the whole horizon, with carbon trading solved
/// exactly by the offline LP over the realized emissions and full price
/// knowledge.
RunResult run_offline(const Environment& env, std::uint64_t run_seed);

/// Offline averaged over seeds (loss draws still vary per run).
RunResult run_offline_averaged(const Environment& env, std::size_t num_runs,
                               std::uint64_t base_seed);

/// The regret comparator of Theorems 1-3 composed: the best fixed model per
/// edge (one initial download) plus the sequence of per-slot optimal trades
/// of Theorem 2 (cover the uncovered emission, sell any surplus share; no
/// cross-slot arbitrage). The Offline LP baseline additionally harvests
/// buy-low/sell-high arbitrage, which grows linearly in T and which no
/// online policy can match — so regret (Fig. 10) is measured against this
/// comparator, while Figs. 3-7 still plot the Offline LP as the paper does.
double comparator_cost(const Environment& env, std::uint64_t run_seed);

/// Regret of one run against comparator_cost: run.total_cost() - comparator.
double p0_regret(const Environment& env, const RunResult& run,
                 std::uint64_t run_seed);

}  // namespace cea::sim
