#include "sim/fleet_state.h"

#include "sim/environment.h"

namespace cea::sim {

namespace {

/// Worst-case arena footprint of a `count`-element T slab, including the
/// alignment slack the bump pointer may skip before it.
template <typename T>
constexpr std::size_t slab_bytes(std::size_t count) {
  return count * sizeof(T) + alignof(T);
}

}  // namespace

FleetState::FleetState(const Environment& env)
    : num_edges_(env.num_edges()), num_models_(env.num_models()) {
  const std::size_t E = num_edges_;
  const std::size_t N = num_models_;

  // Size the run arena for every slab it will ever hold, then reserve once:
  // a single heap allocation per run regardless of fleet size, and
  // overflow_count() == 0 certifies the estimate held.
  std::size_t bytes = 0;
  bytes += slab_bytes<double>(N) * 2;                    // energy, mean loss
  bytes += slab_bytes<const data::LossProfile*>(N);      // profile pointers
  bytes += slab_bytes<std::uint32_t>(N);                 // shift targets
  bytes += slab_bytes<double>(E);                        // switch costs
  bytes += slab_bytes<double>(E * N) * 2;                // comp, transfer
  bytes += slab_bytes<const int*>(E);                    // workload rows
  bytes += slab_bytes<std::uint32_t>(E);                 // previous model
  bytes += slab_bytes<double>(E) * 5;                    // partial doubles
  bytes += slab_bytes<std::uint32_t>(E);                 // partial model
  bytes += slab_bytes<std::uint8_t>(E);                  // partial switched
  state_arena_.reserve(bytes);

  energy_per_sample_ = carve<double>(N);
  mean_loss_ = carve<double>(N);
  profiles_ = carve<const data::LossProfile*>(N);
  shift_target_ = carve<std::uint32_t>(N);
  edge_switch_cost_ = carve<double>(E);
  comp_cost_ = carve<double>(E * N);
  transfer_energy_ = carve<double>(E * N);
  edge_workload_ = carve<const int*>(E);
  previous_model_ = carve<std::uint32_t>(E);
  part_inference_ = carve<double>(E);
  part_switch_cost_ = carve<double>(E);
  part_energy_ = carve<double>(E);
  part_correct_ = carve<double>(E);
  part_samples_ = carve<double>(E);
  part_model_ = carve<std::uint32_t>(E);
  part_switched_ = carve<std::uint8_t>(E);

  for (std::size_t n = 0; n < N; ++n) {
    energy_per_sample_[n] = env.models()[n].energy_per_sample;
    mean_loss_[n] = env.models()[n].profile.mean_loss();
    profiles_[n] = &env.models()[n].profile;
    shift_target_[n] = static_cast<std::uint32_t>(env.shift_target(n));
  }
  for (std::size_t i = 0; i < E; ++i) {
    edge_switch_cost_[i] = env.switching_cost(i);
    edge_workload_[i] = env.workload()[i].data();
    for (std::size_t n = 0; n < N; ++n) {
      comp_cost_[i * N + n] = env.computation_cost(i, n);
      transfer_energy_[i * N + n] = env.transfer_energy(i, n);
    }
  }

  // Slot-transient scratch. Current tenant: the presolve edge list (one
  // uint32 per edge, worst case all edges pending a solve).
  slot_arena_.reserve(slab_bytes<std::uint32_t>(E));

  reset_run();
}

void FleetState::reset_run() noexcept {
  for (std::size_t i = 0; i < num_edges_; ++i) previous_model_[i] = kNoModel;
}

}  // namespace cea::sim
