#pragma once

// Structure-of-arrays hot state of one simulation run, arena-backed.
//
// The slot loop touches, for every edge, a handful of scalars: the hoisted
// environment invariants (per-model energy/mean-loss, per-edge switching
// and computation costs, workload row pointers), the previous hosted model,
// and the slot's per-edge partial contributions. Before this layer those
// lived in a std::vector<EdgePartial> (AoS) plus one std::vector per
// quantity, each a separate heap block. Here every hot array is carved out
// of a single util::Arena reserved once per run — one allocation for the
// whole run, arrays laid out back to back, and an overflow_count() of zero
// certifying that the slot path performs no hidden heap allocation.
//
// Split rationale (hot/cold): what the slot loop reads or writes every
// slot lives here as a flat array; everything touched rarely — model
// names, SimConfig, topology, diagnostics — stays in Environment (cold)
// and is never dereferenced inside the edge fan-out.
//
// One-writer contract: the per-slot partial arrays (part_*) are written
// only by the shard that owns the edge index; the serial reduction reads
// them after the fan-out's completion barrier.

#include <cstdint>
#include <vector>

#include "data/loss_profile.h"
#include "util/arena.h"

namespace cea::sim {

class Environment;

class FleetState {
 public:
  /// Builds every hot array from `env` in one arena reservation. The
  /// environment must outlive this object (workload row and profile
  /// pointers alias it).
  explicit FleetState(const Environment& env);

  FleetState(const FleetState&) = delete;
  FleetState& operator=(const FleetState&) = delete;

  /// Reset the run-scoped mutable state (previous model sentinel). The
  /// partial arrays need no reset — every slot overwrites them in full.
  void reset_run() noexcept;

  std::size_t num_edges() const noexcept { return num_edges_; }
  std::size_t num_models() const noexcept { return num_models_; }

  // Hoisted slot invariants (read-only during a run).
  const double* energy_per_sample() const noexcept { return energy_per_sample_; }
  const double* mean_loss() const noexcept { return mean_loss_; }
  const data::LossProfile* const* profiles() const noexcept { return profiles_; }
  const std::uint32_t* shift_target() const noexcept { return shift_target_; }
  const double* edge_switch_cost() const noexcept { return edge_switch_cost_; }
  /// [edge * num_models + model] slabs.
  const double* comp_cost() const noexcept { return comp_cost_; }
  const double* transfer_energy() const noexcept { return transfer_energy_; }
  const int* const* edge_workload() const noexcept { return edge_workload_; }

  // Mutable per-edge hot state.
  static constexpr std::uint32_t kNoModel = ~std::uint32_t{0};
  std::uint32_t* previous_model() noexcept { return previous_model_; }

  // Per-slot partial contributions, SoA (one writer per edge).
  double* part_inference() noexcept { return part_inference_; }
  double* part_switch_cost() noexcept { return part_switch_cost_; }
  double* part_energy() noexcept { return part_energy_; }
  double* part_correct() noexcept { return part_correct_; }
  double* part_samples() noexcept { return part_samples_; }
  std::uint32_t* part_model() noexcept { return part_model_; }
  std::uint8_t* part_switched() noexcept { return part_switched_; }

  /// Per-slot transient scratch: reset every slot, reserved once here.
  /// Used for the presolve edge list and any other slot-lifetime arrays.
  util::Arena& slot_arena() noexcept { return slot_arena_; }

  /// Heap allocations that escaped either arena's reservation since
  /// construction. Zero after any number of slots means the slot path is
  /// allocation-free in steady state (bench/perf_fleet gates on this).
  std::size_t arena_overflows() const noexcept {
    return state_arena_.overflow_count() + slot_arena_.overflow_count();
  }

 private:
  template <typename T>
  T* carve(std::size_t count) {
    return state_arena_.alloc_array<T>(count);
  }

  std::size_t num_edges_ = 0;
  std::size_t num_models_ = 0;

  util::Arena state_arena_;  ///< run-lifetime arrays, reserved once
  util::Arena slot_arena_;   ///< slot-lifetime scratch, reset per slot

  double* energy_per_sample_ = nullptr;
  double* mean_loss_ = nullptr;
  const data::LossProfile** profiles_ = nullptr;
  std::uint32_t* shift_target_ = nullptr;
  double* edge_switch_cost_ = nullptr;
  double* comp_cost_ = nullptr;
  double* transfer_energy_ = nullptr;
  const int** edge_workload_ = nullptr;
  std::uint32_t* previous_model_ = nullptr;
  double* part_inference_ = nullptr;
  double* part_switch_cost_ = nullptr;
  double* part_energy_ = nullptr;
  double* part_correct_ = nullptr;
  double* part_samples_ = nullptr;
  std::uint32_t* part_model_ = nullptr;
  std::uint8_t* part_switched_ = nullptr;
};

}  // namespace cea::sim
