#include "sim/metrics.h"

#include <cassert>
#include <cmath>

#include "util/stats.h"

namespace cea::sim {

std::vector<double> RunResult::slot_total_cost() const {
  std::vector<double> total(horizon(), 0.0);
  for (std::size_t t = 0; t < horizon(); ++t) {
    total[t] = inference_cost[t] + switching_cost[t] + trading_cost[t];
  }
  return total;
}

std::vector<double> RunResult::cumulative_total_cost() const {
  return cumulative_sum(slot_total_cost());
}

namespace {
double sum_of(const std::vector<double>& xs) {
  double s = 0.0;
  for (double x : xs) s += x;
  return s;
}
}  // namespace

double RunResult::total_cost() const { return sum_of(slot_total_cost()); }
double RunResult::total_inference_cost() const { return sum_of(inference_cost); }
double RunResult::total_switching_cost() const { return sum_of(switching_cost); }
double RunResult::total_trading_cost() const { return sum_of(trading_cost); }
double RunResult::total_emissions() const { return sum_of(emissions); }
double RunResult::total_buys() const { return sum_of(buys); }
double RunResult::total_sells() const { return sum_of(sells); }

double RunResult::mean_accuracy() const {
  // Weight slot accuracy by the slot's workload.
  double weighted = 0.0, total_weight = 0.0;
  for (std::size_t t = 0; t < accuracy.size(); ++t) {
    weighted += accuracy[t] * workload[t];
    total_weight += workload[t];
  }
  return total_weight > 0.0 ? weighted / total_weight : 0.0;
}

double RunResult::violation() const {
  double balance = -carbon_cap;
  for (std::size_t t = 0; t < emissions.size(); ++t)
    balance += emissions[t] - buys[t] + sells[t];
  return std::max(0.0, balance);
}

double RunResult::settled_total_cost() const {
  return total_cost() + violation() * settlement_price;
}

double RunResult::unit_purchase_cost() const {
  const double net_quantity = total_buys() - total_sells();
  if (net_quantity < 1e-9) return 0.0;  // net seller or flat: undefined
  return total_trading_cost() / net_quantity;
}

RunResult average_runs(const std::vector<RunResult>& runs) {
  assert(!runs.empty());
  RunResult avg = runs.front();
  const double inv = 1.0 / static_cast<double>(runs.size());

  auto average_series = [&](std::vector<double> RunResult::*member) {
    auto& out = avg.*member;
    for (std::size_t r = 1; r < runs.size(); ++r) {
      const auto& series = runs[r].*member;
      assert(series.size() == out.size());
      for (std::size_t t = 0; t < out.size(); ++t) out[t] += series[t];
    }
    for (auto& v : out) v *= inv;
  };
  average_series(&RunResult::inference_cost);
  average_series(&RunResult::switching_cost);
  average_series(&RunResult::trading_cost);
  average_series(&RunResult::emissions);
  average_series(&RunResult::buys);
  average_series(&RunResult::sells);
  average_series(&RunResult::accuracy);
  average_series(&RunResult::workload);

  // Selection counts and switches are averaged like every series (rounded
  // to the nearest integer), so an averaged result stays on the same scale
  // as a single run regardless of the repetition count — fig08 plots these
  // counts directly.
  double switches = 0.0;
  std::vector<std::vector<double>> count_sums(avg.selection_counts.size());
  for (std::size_t i = 0; i < count_sums.size(); ++i)
    count_sums[i].assign(avg.selection_counts[i].size(), 0.0);
  for (const auto& run : runs) {
    switches += static_cast<double>(run.total_switches);
    assert(run.selection_counts.size() == count_sums.size());
    for (std::size_t i = 0; i < count_sums.size(); ++i) {
      assert(run.selection_counts[i].size() == count_sums[i].size());
      for (std::size_t n = 0; n < count_sums[i].size(); ++n) {
        count_sums[i][n] += static_cast<double>(run.selection_counts[i][n]);
      }
    }
  }
  for (std::size_t i = 0; i < count_sums.size(); ++i) {
    for (std::size_t n = 0; n < count_sums[i].size(); ++n) {
      avg.selection_counts[i][n] =
          static_cast<std::size_t>(std::llround(count_sums[i][n] * inv));
    }
  }
  avg.total_switches =
      static_cast<std::size_t>(std::llround(switches * inv));
  // Overflows are a certification, not a statistic: any overflow in any of
  // the averaged runs must survive the average, so sum instead of rounding.
  avg.arena_overflows = 0;
  for (const auto& run : runs) avg.arena_overflows += run.arena_overflows;
  return avg;
}

}  // namespace cea::sim
