#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace cea::sim {

/// Full per-slot record of one simulation run — everything the paper's
/// figures are computed from.
struct RunResult {
  std::string algorithm;  ///< e.g. "Ours", "UCB-LY", "Offline"

  std::vector<double> inference_cost;  ///< sum_i (E[l_J] + v_{i,J}) per slot
  std::vector<double> switching_cost;  ///< sum_i y_i u_i per slot
  std::vector<double> trading_cost;    ///< z c - w r per slot
  std::vector<double> emissions;       ///< e^t, allowance units
  std::vector<double> buys;            ///< z^t
  std::vector<double> sells;           ///< w^t
  std::vector<double> accuracy;        ///< workload-weighted accuracy per slot
  std::vector<double> workload;        ///< sum_i M_i^t per slot

  /// selection_counts[edge][model] = times model hosted on edge.
  std::vector<std::vector<std::size_t>> selection_counts;
  std::size_t total_switches = 0;

  /// Scenario facts recorded by the simulator for settlement accounting.
  double carbon_cap = 0.0;        ///< R of the scenario
  double settlement_price = 0.0;  ///< penalty price per uncovered unit

  /// Heap allocations that escaped the run's arena reservations (see
  /// sim/fleet_state.h). 0 certifies the slot path ran allocation-free;
  /// bench/perf_fleet and the fleet tests gate on it.
  std::size_t arena_overflows = 0;

  std::size_t horizon() const noexcept { return inference_cost.size(); }

  /// Per-slot total cost (objective (1) increments).
  std::vector<double> slot_total_cost() const;
  /// Running sum of slot_total_cost.
  std::vector<double> cumulative_total_cost() const;
  double total_cost() const;
  double total_inference_cost() const;
  double total_switching_cost() const;
  double total_trading_cost() const;
  double total_emissions() const;
  double total_buys() const;
  double total_sells() const;
  double mean_accuracy() const;

  /// Average unit cost of net allowance acquisition (Fig. 9's second
  /// panel): (sum z c - sum w r) / (sum z - sum w) when the run is a net
  /// buyer. Sign convention: positive = paid per net unit acquired;
  /// negative = the run *earned* money while accumulating allowances
  /// (bought low, sold high). For net sellers and flat positions the
  /// quantity is undefined and 0.0 is returned — dividing the net expense
  /// by a negative net quantity would yield a meaningless "negative unit
  /// cost" for runs that simply sold surplus at a profit.
  double unit_purchase_cost() const;

  /// Terminal carbon-neutrality violation (Theorem 2's fit).
  double violation() const;

  /// Total cost plus the compliance settlement of the terminal violation
  /// at settlement_price — the apples-to-apples cost the Figs. 3-7 benches
  /// compare (a cap-oblivious trader cannot undercut by under-covering).
  double settled_total_cost() const;
};

/// Element-wise average of several runs of the *same* algorithm and horizon
/// (the paper averages 10 runs). Every per-slot series is averaged; the
/// integer aggregates (selection counts, total switches) are averaged and
/// rounded to the nearest integer, so the result is on a single run's scale
/// independent of the repetition count.
RunResult average_runs(const std::vector<RunResult>& runs);

}  // namespace cea::sim
