#include "sim/report.h"

#include <algorithm>
#include <sstream>

#include "util/table.h"

namespace cea::sim {

std::string comparison_report(const Environment& env,
                              const std::vector<RunResult>& results) {
  std::ostringstream out;
  out << "Scenario: " << env.num_edges() << " edges, " << env.horizon()
      << " slots, " << env.num_models() << " models, cap "
      << fmt(env.config().carbon_cap, 0) << " units, rho "
      << fmt(env.config().emission_rate, 0) << " units/kWh\n\n";

  std::vector<const RunResult*> sorted;
  sorted.reserve(results.size());
  for (const auto& result : results) sorted.push_back(&result);
  std::sort(sorted.begin(), sorted.end(),
            [](const RunResult* a, const RunResult* b) {
              return a->settled_total_cost() < b->settled_total_cost();
            });

  Table table({"algorithm", "settled", "inference", "switching", "trading",
               "violation", "switches", "accuracy"});
  for (const RunResult* result : sorted) {
    table.add_row(result->algorithm,
                  {result->settled_total_cost(),
                   result->total_inference_cost(),
                   result->total_switching_cost(),
                   result->total_trading_cost(), result->violation(),
                   static_cast<double>(result->total_switches),
                   result->mean_accuracy()},
                  2);
  }
  out << table.to_string();
  return out.str();
}

std::string run_report(const Environment& env, const RunResult& result) {
  std::ostringstream out;
  out << "Run report: " << result.algorithm << "\n";
  out << "  horizon " << result.horizon() << " slots, " << env.num_edges()
      << " edges\n\n";

  out << "Cost breakdown\n";
  Table costs({"component", "total", "share"});
  const double total = result.settled_total_cost();
  auto share = [&](double v) {
    return total != 0.0 ? 100.0 * v / total : 0.0;
  };
  const double settlement =
      result.violation() * result.settlement_price;
  costs.add_row("inference",
                {result.total_inference_cost(),
                 share(result.total_inference_cost())},
                2);
  costs.add_row("switching",
                {result.total_switching_cost(),
                 share(result.total_switching_cost())},
                2);
  costs.add_row("trading",
                {result.total_trading_cost(),
                 share(result.total_trading_cost())},
                2);
  costs.add_row("settlement", {settlement, share(settlement)}, 2);
  costs.add_row("total", {total, 100.0}, 2);
  out << costs.to_string() << "\n";

  out << "Cumulative cost at horizon quarters\n";
  const auto cumulative = result.cumulative_total_cost();
  Table quarters({"t/T", "cumulative cost"});
  for (int q = 1; q <= 4; ++q) {
    const std::size_t t =
        std::min(result.horizon() * q / 4, result.horizon()) - 1;
    quarters.add_row(fmt(0.25 * q, 2), {cumulative[t]}, 2);
  }
  out << quarters.to_string() << "\n";

  out << "Per-edge hosting (most-hosted vs hindsight best)\n";
  Table edges({"edge", "most hosted", "slots", "hindsight best", "match"});
  std::size_t matches = 0;
  for (std::size_t i = 0; i < result.selection_counts.size(); ++i) {
    const auto& counts = result.selection_counts[i];
    std::size_t hosted = 0;
    for (std::size_t n = 1; n < counts.size(); ++n)
      if (counts[n] > counts[hosted]) hosted = n;
    const std::size_t best = env.best_model(i);
    matches += (hosted == best);
    edges.add_row({std::to_string(i), env.models()[hosted].name,
                   std::to_string(counts[hosted]), env.models()[best].name,
                   hosted == best ? "yes" : "no"});
  }
  out << edges.to_string();
  out << "  " << matches << "/" << result.selection_counts.size()
      << " edges converged to the hindsight-best model\n\n";

  out << "Trading\n";
  Table trading({" ", "bought", "sold", "net", "unit cost", "emissions",
                 "violation"});
  trading.add_row("totals",
                  {result.total_buys(), result.total_sells(),
                   result.total_buys() - result.total_sells(),
                   result.unit_purchase_cost(), result.total_emissions(),
                   result.violation()},
                  2);
  out << trading.to_string();
  return out.str();
}

}  // namespace cea::sim
