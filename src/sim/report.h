#pragma once

#include <string>
#include <vector>

#include "sim/environment.h"
#include "sim/metrics.h"

namespace cea::sim {

/// Multi-algorithm comparison: one row per result with the full cost
/// breakdown (inference / switching / trading / settlement), neutrality
/// violation, trading statistics, switches, and accuracy. Rows are sorted
/// by settled total cost.
std::string comparison_report(const Environment& env,
                              const std::vector<RunResult>& results);

/// Single-run deep dive: scenario facts, cost breakdown, cumulative cost at
/// horizon quarters, per-edge hosting summary (most-hosted model vs the
/// hindsight best), and trading behaviour.
std::string run_report(const Environment& env, const RunResult& result);

}  // namespace cea::sim
