#include "sim/simulator.h"

#include <cassert>
#include <memory>

#include "sim/slot_engine.h"

namespace cea::sim {

trading::TraderContext Simulator::trader_context(
    std::uint64_t run_seed) const {
  trading::TraderContext context;
  context.horizon = env_.horizon();
  context.carbon_cap = env_.config().carbon_cap;
  context.max_trade_per_slot = env_.config().max_trade_per_slot;
  context.seed = run_seed ^ 0x7E57ED5EEDULL;
  return context;
}

bandit::PolicyContext Simulator::policy_context(std::size_t edge,
                                                std::uint64_t run_seed) const {
  bandit::PolicyContext context;
  context.num_models = env_.num_models();
  context.switching_cost = env_.switching_cost(edge);
  context.energy_per_sample.reserve(env_.num_models());
  for (const auto& model : env_.models())
    context.energy_per_sample.push_back(model.energy_per_sample);
  context.seed = bandit::policy_stream_seed(run_seed, edge);
  context.horizon = env_.horizon();
  context.edge = edge;
  return context;
}

bandit::FleetPolicyContext Simulator::fleet_policy_context(
    std::uint64_t run_seed) const {
  bandit::FleetPolicyContext context;
  context.num_edges = env_.num_edges();
  context.num_models = env_.num_models();
  context.horizon = env_.horizon();
  context.run_seed = run_seed;
  context.energy_per_sample.reserve(env_.num_models());
  for (const auto& model : env_.models())
    context.energy_per_sample.push_back(model.energy_per_sample);
  context.switching_cost.reserve(env_.num_edges());
  for (std::size_t i = 0; i < env_.num_edges(); ++i)
    context.switching_cost.push_back(env_.switching_cost(i));
  return context;
}

RunResult Simulator::run(const bandit::PolicyFactory& policy_factory,
                         const trading::TraderFactory& trader_factory,
                         std::uint64_t run_seed,
                         std::string algorithm_name) const {
  auto fleet = std::make_unique<bandit::PerEdgeFleetAdapter>(
      policy_factory, fleet_policy_context(run_seed));
  return run_impl(std::move(fleet), trader_factory, run_seed,
                  std::move(algorithm_name), /*fixed_choices=*/false,
                  nullptr);
}

RunResult Simulator::run_fleet(const bandit::FleetPolicyFactory& fleet_factory,
                               const trading::TraderFactory& trader_factory,
                               std::uint64_t run_seed,
                               std::string algorithm_name) const {
  auto fleet = fleet_factory(fleet_policy_context(run_seed));
  assert(fleet != nullptr && fleet->num_edges() == env_.num_edges());
  return run_impl(std::move(fleet), trader_factory, run_seed,
                  std::move(algorithm_name), /*fixed_choices=*/false,
                  nullptr);
}

RunResult Simulator::run_fixed(const std::vector<std::size_t>& model_per_edge,
                               const trading::TraderFactory& trader_factory,
                               std::uint64_t run_seed,
                               std::string algorithm_name) const {
  assert(model_per_edge.size() == env_.num_edges());
  return run_impl(nullptr, trader_factory, run_seed,
                  std::move(algorithm_name),
                  /*fixed_choices=*/true, &model_per_edge);
}

RunResult Simulator::run_impl(
    std::unique_ptr<bandit::FleetPolicy> fleet,
    const trading::TraderFactory& trader_factory, std::uint64_t run_seed,
    std::string algorithm_name, bool fixed_choices,
    const std::vector<std::size_t>* fixed_models) const {
  // The whole slot loop lives in SlotEngine (sim/slot_engine.h) so the
  // serving daemon can drive the identical arithmetic slot by slot; the
  // golden traces pin the extraction bit-for-bit. Here a run is just
  // "step the engine across the horizon on the environment's own traces".
  auto trader = trader_factory(trader_context(run_seed));
  SlotEngine engine(env_, options_, std::move(fleet), std::move(trader),
                    run_seed, std::move(algorithm_name),
                    fixed_choices ? fixed_models : nullptr);
  const std::size_t horizon = env_.horizon();
  for (std::size_t t = 0; t < horizon; ++t) engine.step();
  return engine.take_result();
}

}  // namespace cea::sim
