#include "sim/simulator.h"

#include <algorithm>
#include <cassert>
#include <memory>

namespace cea::sim {

trading::TraderContext Simulator::trader_context(
    std::uint64_t run_seed) const {
  trading::TraderContext context;
  context.horizon = env_.horizon();
  context.carbon_cap = env_.config().carbon_cap;
  context.max_trade_per_slot = env_.config().max_trade_per_slot;
  context.seed = run_seed ^ 0x7E57ED5EEDULL;
  return context;
}

bandit::PolicyContext Simulator::policy_context(std::size_t edge,
                                                std::uint64_t run_seed) const {
  bandit::PolicyContext context;
  context.num_models = env_.num_models();
  context.switching_cost = env_.switching_cost(edge);
  context.energy_per_sample.reserve(env_.num_models());
  for (const auto& model : env_.models())
    context.energy_per_sample.push_back(model.energy_per_sample);
  context.seed = run_seed * 0x9E3779B97F4A7C15ULL + edge + 1;
  context.horizon = env_.horizon();
  context.edge = edge;
  return context;
}

RunResult Simulator::run(const bandit::PolicyFactory& policy_factory,
                         const trading::TraderFactory& trader_factory,
                         std::uint64_t run_seed,
                         std::string algorithm_name) const {
  std::vector<std::unique_ptr<bandit::ModelSelectionPolicy>> policies;
  policies.reserve(env_.num_edges());
  for (std::size_t i = 0; i < env_.num_edges(); ++i) {
    policies.push_back(policy_factory(policy_context(i, run_seed)));
  }
  return run_impl(std::move(policies), trader_factory, run_seed,
                  std::move(algorithm_name), /*fixed_choices=*/false,
                  nullptr);
}

RunResult Simulator::run_fixed(const std::vector<std::size_t>& model_per_edge,
                               const trading::TraderFactory& trader_factory,
                               std::uint64_t run_seed,
                               std::string algorithm_name) const {
  assert(model_per_edge.size() == env_.num_edges());
  return run_impl({}, trader_factory, run_seed, std::move(algorithm_name),
                  /*fixed_choices=*/true, &model_per_edge);
}

RunResult Simulator::run_impl(
    std::vector<std::unique_ptr<bandit::ModelSelectionPolicy>> policies,
    const trading::TraderFactory& trader_factory, std::uint64_t run_seed,
    std::string algorithm_name, bool fixed_choices,
    const std::vector<std::size_t>* fixed_models) const {
  const std::size_t horizon = env_.horizon();
  const std::size_t num_edges = env_.num_edges();
  const auto& config = env_.config();

  auto trader = trader_factory(trader_context(run_seed));
  Rng draw_rng(run_seed ^ 0xD1CE5EEDBEEFULL);

  RunResult result;
  result.algorithm = std::move(algorithm_name);
  result.inference_cost.assign(horizon, 0.0);
  result.switching_cost.assign(horizon, 0.0);
  result.trading_cost.assign(horizon, 0.0);
  result.emissions.assign(horizon, 0.0);
  result.buys.assign(horizon, 0.0);
  result.sells.assign(horizon, 0.0);
  result.accuracy.assign(horizon, 0.0);
  result.workload.assign(horizon, 0.0);
  result.selection_counts.assign(
      num_edges, std::vector<std::size_t>(env_.num_models(), 0));
  result.carbon_cap = config.carbon_cap;
  result.settlement_price = config.settlement_penalty_multiplier *
                            env_.prices().buy.back();

  std::vector<std::size_t> previous_model(num_edges, SIZE_MAX);
  // Allowance balance R + sum(z - w - e); sales are clamped so it cannot go
  // negative through selling (see SimConfig::clamp_sales_to_holdings).
  double allowance_balance = config.carbon_cap;

  for (std::size_t t = 0; t < horizon; ++t) {
    const trading::TradeObservation quote{env_.prices().buy[t],
                                          env_.prices().sell[t]};
    trading::TradeDecision trade = trader->decide(t, quote);
    if (config.clamp_sales_to_holdings) {
      trade.sell = std::min(trade.sell,
                            std::max(0.0, allowance_balance + trade.buy));
    }

    double slot_energy_kwh = 0.0;
    double weighted_correct = 0.0;
    double slot_samples = 0.0;

    // Concept drift (SimConfig::loss_shift_slot): the loss distribution a
    // hosted model produces flips to its mirror after the shift slot.
    const bool shifted =
        config.loss_shift_slot > 0 && t >= config.loss_shift_slot;

    for (std::size_t i = 0; i < num_edges; ++i) {
      const std::size_t model =
          fixed_choices ? (*fixed_models)[i] : policies[i]->select(t);
      const std::size_t loss_model =
          shifted ? env_.shift_target(model) : model;
      const ModelInfo& info = env_.models()[model];
      const ModelInfo& loss_info = env_.models()[loss_model];
      const bool switched = (model != previous_model[i]);
      if (switched) {
        result.switching_cost[t] += env_.switching_cost(i);
        slot_energy_kwh += env_.transfer_energy(i, model);
        ++result.total_switches;
      }
      previous_model[i] = model;
      ++result.selection_counts[i][model];

      const auto samples =
          static_cast<std::size_t>(env_.workload()[i][t]);
      const std::size_t draws =
          config.loss_draw_cap == 0
              ? samples
              : std::min<std::size_t>(samples, config.loss_draw_cap);

      double loss_sum = 0.0;
      double correct = 0.0;
      for (std::size_t d = 0; d < draws; ++d) {
        const data::LossDraw draw = loss_info.profile.draw(draw_rng);
        loss_sum += draw.loss;
        correct += draw.correct ? 1.0 : 0.0;
      }
      const double mean_sampled_loss =
          draws > 0 ? loss_sum / static_cast<double>(draws) : 0.0;
      const double sample_accuracy =
          draws > 0 ? correct / static_cast<double>(draws) : 0.0;

      // Bandit feedback: L_{i,J}^t + v_{i,J} (Insight 2).
      if (!fixed_choices) {
        policies[i]->feedback(
            t, model, mean_sampled_loss + env_.computation_cost(i, model));
      }

      // Objective (1) charges the expectation E[l_n] + v_{i,n}.
      result.inference_cost[t] +=
          loss_info.profile.mean_loss() + env_.computation_cost(i, model);

      slot_energy_kwh +=
          info.energy_per_sample * static_cast<double>(samples);
      weighted_correct += sample_accuracy * static_cast<double>(samples);
      slot_samples += static_cast<double>(samples);
    }

    const double emission = config.emission_rate * slot_energy_kwh;
    allowance_balance += trade.buy - trade.sell - emission;
    result.emissions[t] = emission;
    result.buys[t] = trade.buy;
    result.sells[t] = trade.sell;
    result.trading_cost[t] = trade.cost(quote);
    result.accuracy[t] =
        slot_samples > 0.0 ? weighted_correct / slot_samples : 0.0;
    result.workload[t] = slot_samples;

    trader->feedback(t, emission, quote, trade);
  }
  return result;
}

}  // namespace cea::sim
