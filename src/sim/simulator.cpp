#include "sim/simulator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>

#include "obs/telemetry.h"
#include "opt/tsallis_batch.h"
#include "util/check.h"

namespace cea::sim {

trading::TraderContext Simulator::trader_context(
    std::uint64_t run_seed) const {
  trading::TraderContext context;
  context.horizon = env_.horizon();
  context.carbon_cap = env_.config().carbon_cap;
  context.max_trade_per_slot = env_.config().max_trade_per_slot;
  context.seed = run_seed ^ 0x7E57ED5EEDULL;
  return context;
}

bandit::PolicyContext Simulator::policy_context(std::size_t edge,
                                                std::uint64_t run_seed) const {
  bandit::PolicyContext context;
  context.num_models = env_.num_models();
  context.switching_cost = env_.switching_cost(edge);
  context.energy_per_sample.reserve(env_.num_models());
  for (const auto& model : env_.models())
    context.energy_per_sample.push_back(model.energy_per_sample);
  context.seed = run_seed * 0x9E3779B97F4A7C15ULL + edge + 1;
  context.horizon = env_.horizon();
  context.edge = edge;
  return context;
}

RunResult Simulator::run(const bandit::PolicyFactory& policy_factory,
                         const trading::TraderFactory& trader_factory,
                         std::uint64_t run_seed,
                         std::string algorithm_name) const {
  std::vector<std::unique_ptr<bandit::ModelSelectionPolicy>> policies;
  policies.reserve(env_.num_edges());
  for (std::size_t i = 0; i < env_.num_edges(); ++i) {
    policies.push_back(policy_factory(policy_context(i, run_seed)));
  }
  return run_impl(std::move(policies), trader_factory, run_seed,
                  std::move(algorithm_name), /*fixed_choices=*/false,
                  nullptr);
}

RunResult Simulator::run_fixed(const std::vector<std::size_t>& model_per_edge,
                               const trading::TraderFactory& trader_factory,
                               std::uint64_t run_seed,
                               std::string algorithm_name) const {
  assert(model_per_edge.size() == env_.num_edges());
  return run_impl({}, trader_factory, run_seed, std::move(algorithm_name),
                  /*fixed_choices=*/true, &model_per_edge);
}

namespace {

/// Everything one edge contributes to a slot. Written by the (possibly
/// parallel) per-edge tasks into index-addressed slots, then reduced
/// serially in edge order so the accumulation is order-independent.
struct EdgePartial {
  double inference_cost = 0.0;
  double switching_cost = 0.0;
  double energy_kwh = 0.0;
  double weighted_correct = 0.0;
  double samples = 0.0;
  std::size_t model = 0;
  bool switched = false;
};

}  // namespace

RunResult Simulator::run_impl(
    std::vector<std::unique_ptr<bandit::ModelSelectionPolicy>> policies,
    const trading::TraderFactory& trader_factory, std::uint64_t run_seed,
    std::string algorithm_name, bool fixed_choices,
    const std::vector<std::size_t>* fixed_models) const {
  const std::size_t horizon = env_.horizon();
  const std::size_t num_edges = env_.num_edges();
  const std::size_t num_models = env_.num_models();
  const auto& config = env_.config();

  auto trader = trader_factory(trader_context(run_seed));
  // Base of the per-(edge, slot) draw streams; also seeds the shared stream
  // of the legacy per-sample reference mode.
  const std::uint64_t draw_seed = run_seed ^ 0xD1CE5EEDBEEFULL;
  Rng shared_draw_rng(draw_seed);

  RunResult result;
  result.algorithm = std::move(algorithm_name);
  result.inference_cost.assign(horizon, 0.0);
  result.switching_cost.assign(horizon, 0.0);
  result.trading_cost.assign(horizon, 0.0);
  result.emissions.assign(horizon, 0.0);
  result.buys.assign(horizon, 0.0);
  result.sells.assign(horizon, 0.0);
  result.accuracy.assign(horizon, 0.0);
  result.workload.assign(horizon, 0.0);
  result.selection_counts.assign(
      num_edges, std::vector<std::size_t>(num_models, 0));
  result.carbon_cap = config.carbon_cap;
  result.settlement_price = config.settlement_penalty_multiplier *
                            env_.prices().buy.back();

  // Hoisted slot invariants (SoA): one cache-friendly flat array per
  // quantity instead of a ModelInfo/virtual-call chase in the hot loop.
  std::vector<double> energy_per_sample(num_models);
  std::vector<double> mean_loss(num_models);
  std::vector<const data::LossProfile*> profiles(num_models);
  std::vector<std::size_t> shift_target(num_models);
  for (std::size_t n = 0; n < num_models; ++n) {
    energy_per_sample[n] = env_.models()[n].energy_per_sample;
    mean_loss[n] = env_.models()[n].profile.mean_loss();
    profiles[n] = &env_.models()[n].profile;
    shift_target[n] = env_.shift_target(n);
  }
  std::vector<double> edge_switch_cost(num_edges);
  std::vector<double> comp_cost(num_edges * num_models);
  std::vector<double> transfer_energy(num_edges * num_models);
  std::vector<const int*> edge_workload(num_edges);
  for (std::size_t i = 0; i < num_edges; ++i) {
    edge_switch_cost[i] = env_.switching_cost(i);
    edge_workload[i] = env_.workload()[i].data();
    for (std::size_t n = 0; n < num_models; ++n) {
      comp_cost[i * num_models + n] = env_.computation_cost(i, n);
      transfer_energy[i * num_models + n] = env_.transfer_energy(i, n);
    }
  }

  std::vector<std::size_t> previous_model(num_edges, SIZE_MAX);
  std::vector<EdgePartial> partials(num_edges);
  // Allowance balance R + sum(z - w - e); sales are clamped so it cannot go
  // negative through selling (see SimConfig::clamp_sales_to_holdings).
  double allowance_balance = config.carbon_cap;
#if defined(CEA_AUDIT)
  // Independent ledger re-accumulated from the *recorded* series, so any
  // drift between what the simulator charges and what it reports shows up
  // as a per-slot violation.
  double audit_net_flow = 0.0;
#endif

  const bool per_sample = options_.per_sample_draws;
  util::ThreadPool* pool = per_sample ? nullptr : options_.pool;

  // Cross-edge batched OMD solving: policies that expose their next
  // Tsallis solve (TsallisBatchSolvable) get it solved in one SIMD batch
  // at the start of each slot, before the (possibly parallel) edge
  // fan-out. Safe because a pending solve's inputs are frozen by the
  // edge's own previous feedback, and bit-identical because the batch
  // solver reproduces the scalar oracle exactly.
  std::vector<bandit::TsallisBatchSolvable*> batchable;
  bool any_batchable = false;
  if (options_.cross_edge_batch_solve && !fixed_choices) {
    batchable.resize(num_edges, nullptr);
    for (std::size_t i = 0; i < num_edges; ++i) {
      batchable[i] = dynamic_cast<bandit::TsallisBatchSolvable*>(
          policies[i].get());
      any_batchable = any_batchable || batchable[i] != nullptr;
    }
  }
  TsallisBatchSolver batch_solver;
  std::vector<std::size_t> batch_edges;  // edge of each pushed request

  for (std::size_t t = 0; t < horizon; ++t) {
    CEA_SPAN("sim.slot");
    if (any_batchable) {
      CEA_SPAN_DETAIL("sim.presolve");
      batch_solver.clear();
      batch_edges.clear();
      bandit::TsallisSolveRequest request;
      for (std::size_t i = 0; i < num_edges; ++i) {
        if (batchable[i] != nullptr && batchable[i]->next_solve(request)) {
          batch_solver.push(request.cumulative_losses, request.eta,
                            request.scaled_lambda_warm);
          batch_edges.push_back(i);
        }
      }
      if (!batch_edges.empty()) {
        batch_solver.solve();
        for (std::size_t j = 0; j < batch_edges.size(); ++j) {
          batchable[batch_edges[j]]->accept_presolve(
              batch_solver.probabilities(j),
              batch_solver.scaled_lambda_warm(j));
        }
      }
    }
    const trading::TradeObservation quote{env_.prices().buy[t],
                                          env_.prices().sell[t]};
    trading::TradeDecision trade;
    {
      CEA_SPAN_DETAIL("sim.trader.decide");
      trade = trader->decide(t, quote);
    }
    if (config.clamp_sales_to_holdings) {
      trade.sell = std::min(trade.sell,
                            std::max(0.0, allowance_balance + trade.buy));
    }

    // Concept drift (SimConfig::loss_shift_slot): the loss distribution a
    // hosted model produces flips to its mirror after the shift slot.
    const bool shifted =
        config.loss_shift_slot > 0 && t >= config.loss_shift_slot;

#if defined(CEA_TELEMETRY)
    // Per-edge phase split (bandit select+feedback vs sample draws) is
    // too hot to time unconditionally — several clock reads per edge per
    // slot — so it rides behind the detail switch the --telemetry
    // harness flips on. Read once per slot, shared read-only with the
    // pool workers. Timestamps never feed control flow.
    const bool obs_detail = obs::detail_enabled();
#endif

    // Per-edge work: model selection, batched loss sampling, bandit
    // feedback. Touches only state indexed by the edge (its policy, its
    // previous model, its partial slot), so it is safe to fan out.
    auto edge_task = [&](std::size_t i) {
      EdgePartial& part = partials[i];
      part = EdgePartial{};
#if defined(CEA_TELEMETRY)
      std::int64_t obs_t0 = obs_detail ? obs::now_ns() : 0;
      double obs_bandit_ns = 0.0;
#endif
      const std::size_t model =
          fixed_choices ? (*fixed_models)[i] : policies[i]->select(t);
#if defined(CEA_TELEMETRY)
      if (obs_detail) {
        const std::int64_t now = obs::now_ns();
        obs_bandit_ns += static_cast<double>(now - obs_t0);
        obs_t0 = now;
      }
#endif
      const std::size_t loss_model = shifted ? shift_target[model] : model;
      // The initial download (previous_model == SIZE_MAX) costs transfer
      // energy but is not a "switch": the paper charges y_i^t u_i only when
      // a *hosted* model is replaced, while every model placement — initial
      // or not — moves bytes and therefore energy.
      const bool first_slot = previous_model[i] == SIZE_MAX;
      const bool switched = !first_slot && model != previous_model[i];
      if (switched) part.switching_cost = edge_switch_cost[i];
      if (switched || first_slot)
        part.energy_kwh += transfer_energy[i * num_models + model];
      previous_model[i] = model;
      part.model = model;
      part.switched = switched;
      CEA_CHECK(t > 0 || !switched, "simulator.first_slot_switch", i, t,
                static_cast<double>(model),
                "edge charged a switch at t=0 (initial download)");

      const auto samples = static_cast<std::size_t>(edge_workload[i][t]);
      const std::size_t draws =
          config.loss_draw_cap == 0
              ? samples
              : std::min<std::size_t>(samples, config.loss_draw_cap);

      data::LossBatch batch;
      if (per_sample) {
        for (std::size_t d = 0; d < draws; ++d) {
          const data::LossDraw draw =
              profiles[loss_model]->draw(shared_draw_rng);
          batch.loss_sum += draw.loss;
          batch.correct_count += draw.correct ? 1 : 0;
        }
      } else {
        // Keyed directly by the (edge, slot) stream seed: no generator
        // construction on the hot path, same pure-function-of-(seed, i, t)
        // determinism contract.
        batch = profiles[loss_model]->draw_batch_keyed(
            stream_seed(draw_seed, i, t), draws);
      }
      const double mean_sampled_loss =
          draws > 0 ? batch.loss_sum / static_cast<double>(draws) : 0.0;
      const double sample_accuracy =
          draws > 0 ? static_cast<double>(batch.correct_count) /
                          static_cast<double>(draws)
                    : 0.0;
#if defined(CEA_TELEMETRY)
      if (obs_detail) {
        static const obs::MetricId obs_draws = obs::counter("sim.draws");
        obs::add(obs_draws, static_cast<double>(draws));
        static const obs::MetricId obs_draw_hist =
            obs::duration_histogram("sim.edge.draw");
        const std::int64_t now = obs::now_ns();
        obs::observe(obs_draw_hist, static_cast<double>(now - obs_t0));
        obs_t0 = now;
      }
#endif

      // Bandit feedback: L_{i,J}^t + v_{i,J} (Insight 2).
      if (!fixed_choices) {
        policies[i]->feedback(
            t, model, mean_sampled_loss + comp_cost[i * num_models + model]);
      }
#if defined(CEA_TELEMETRY)
      if (obs_detail) {
        static const obs::MetricId obs_bandit_hist =
            obs::duration_histogram("sim.edge.bandit");
        obs_bandit_ns += static_cast<double>(obs::now_ns() - obs_t0);
        obs::observe(obs_bandit_hist, obs_bandit_ns);
      }
#endif

      // Objective (1) charges the expectation E[l_n] + v_{i,n}.
      part.inference_cost =
          mean_loss[loss_model] + comp_cost[i * num_models + model];
      part.energy_kwh +=
          energy_per_sample[model] * static_cast<double>(samples);
      part.weighted_correct =
          sample_accuracy * static_cast<double>(samples);
      part.samples = static_cast<double>(samples);
    };

    {
      CEA_SPAN_DETAIL("sim.edges");
      if (pool != nullptr) {
        pool->parallel_for(num_edges, edge_task);
      } else {
        for (std::size_t i = 0; i < num_edges; ++i) edge_task(i);
      }
    }

    // Serial reduction in edge order: identical floating-point accumulation
    // regardless of how the tasks above were scheduled.
    double slot_energy_kwh = 0.0;
    double weighted_correct = 0.0;
    double slot_samples = 0.0;
    {
      CEA_SPAN_DETAIL("sim.reduce");
#if defined(CEA_TELEMETRY)
      double slot_switches = 0.0;
#endif
      for (std::size_t i = 0; i < num_edges; ++i) {
        const EdgePartial& part = partials[i];
        result.inference_cost[t] += part.inference_cost;
        result.switching_cost[t] += part.switching_cost;
        if (part.switched) {
          ++result.total_switches;
#if defined(CEA_TELEMETRY)
          slot_switches += 1.0;
#endif
        }
        ++result.selection_counts[i][part.model];
        slot_energy_kwh += part.energy_kwh;
        weighted_correct += part.weighted_correct;
        slot_samples += part.samples;
      }
#if defined(CEA_TELEMETRY)
      if (obs_detail) {
        static const obs::MetricId obs_switches =
            obs::counter("sim.switches");
        obs::add(obs_switches, slot_switches);
      }
#endif
    }

    const double emission = config.emission_rate * slot_energy_kwh;
#if defined(CEA_AUDIT)
    // Holdings clamp precondition, checked against the balance *before*
    // this slot's trades are applied.
    CEA_CHECK(!config.clamp_sales_to_holdings ||
                  trade.sell <=
                      std::max(0.0, allowance_balance + trade.buy) + 1e-9,
              "simulator.holdings_clamp", audit::kNoIndex, t, trade.sell,
              "sell " << trade.sell << " exceeds holdings "
                      << std::max(0.0, allowance_balance + trade.buy));
#endif
    allowance_balance += trade.buy - trade.sell - emission;
    result.emissions[t] = emission;
    result.buys[t] = trade.buy;
    result.sells[t] = trade.sell;
    result.trading_cost[t] = trade.cost(quote);
    result.accuracy[t] =
        slot_samples > 0.0 ? weighted_correct / slot_samples : 0.0;
    result.workload[t] = slot_samples;

#if defined(CEA_AUDIT)
    {
      CEA_SPAN_DETAIL("sim.audit");
      // Ledger identity: allowance_balance == R + sum_{s<=t}(z - w - e),
      // re-derived from the recorded series (tolerance covers the different
      // accumulation grouping).
      audit_net_flow += result.buys[t] - result.sells[t] - result.emissions[t];
      const double ledger = config.carbon_cap + audit_net_flow;
      const double scale =
          std::max({1.0, std::abs(allowance_balance), std::abs(ledger)});
      CEA_CHECK(std::abs(allowance_balance - ledger) <= 1e-9 * scale,
                "simulator.ledger_identity", audit::kNoIndex, t,
                allowance_balance - ledger,
                "balance " << allowance_balance
                           << " != R + sum(z - w - e) = " << ledger);
      // Emission identity: e^t == rho * slot energy, with the energy
      // re-summed from the per-edge partials in the same reduction order.
      double audit_energy = 0.0;
      for (std::size_t i = 0; i < num_edges; ++i)
        audit_energy += partials[i].energy_kwh;
      CEA_CHECK(emission == config.emission_rate * audit_energy &&
                    std::isfinite(emission) && emission >= 0.0,
                "simulator.emission_identity", audit::kNoIndex, t, emission,
                "emission " << emission << " != rho * energy = "
                            << config.emission_rate * audit_energy);
      // Per-slot sanity of the recorded series.
      CEA_CHECK(result.buys[t] >= 0.0 &&
                    result.buys[t] <= config.max_trade_per_slot + 1e-9 &&
                    result.sells[t] >= 0.0 &&
                    result.sells[t] <= config.max_trade_per_slot + 1e-9,
                "simulator.trade_box", audit::kNoIndex, t,
                result.buys[t] - result.sells[t],
                "trade (" << result.buys[t] << ", " << result.sells[t]
                          << ") outside [0, " << config.max_trade_per_slot
                          << "]^2");
      CEA_CHECK(result.accuracy[t] >= 0.0 && result.accuracy[t] <= 1.0,
                "simulator.accuracy_range", audit::kNoIndex, t,
                result.accuracy[t],
                "slot accuracy " << result.accuracy[t] << " outside [0, 1]");
    }
#endif

    {
      CEA_SPAN_DETAIL("sim.trader.feedback");
      trader->feedback(t, emission, quote, trade);
    }
  }
  return result;
}

}  // namespace cea::sim
