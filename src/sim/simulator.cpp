#include "sim/simulator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <functional>
#include <memory>

#include "obs/telemetry.h"
#include "opt/tsallis_batch.h"
#include "sim/fleet_state.h"
#include "util/check.h"

namespace cea::sim {

trading::TraderContext Simulator::trader_context(
    std::uint64_t run_seed) const {
  trading::TraderContext context;
  context.horizon = env_.horizon();
  context.carbon_cap = env_.config().carbon_cap;
  context.max_trade_per_slot = env_.config().max_trade_per_slot;
  context.seed = run_seed ^ 0x7E57ED5EEDULL;
  return context;
}

bandit::PolicyContext Simulator::policy_context(std::size_t edge,
                                                std::uint64_t run_seed) const {
  bandit::PolicyContext context;
  context.num_models = env_.num_models();
  context.switching_cost = env_.switching_cost(edge);
  context.energy_per_sample.reserve(env_.num_models());
  for (const auto& model : env_.models())
    context.energy_per_sample.push_back(model.energy_per_sample);
  context.seed = bandit::policy_stream_seed(run_seed, edge);
  context.horizon = env_.horizon();
  context.edge = edge;
  return context;
}

bandit::FleetPolicyContext Simulator::fleet_policy_context(
    std::uint64_t run_seed) const {
  bandit::FleetPolicyContext context;
  context.num_edges = env_.num_edges();
  context.num_models = env_.num_models();
  context.horizon = env_.horizon();
  context.run_seed = run_seed;
  context.energy_per_sample.reserve(env_.num_models());
  for (const auto& model : env_.models())
    context.energy_per_sample.push_back(model.energy_per_sample);
  context.switching_cost.reserve(env_.num_edges());
  for (std::size_t i = 0; i < env_.num_edges(); ++i)
    context.switching_cost.push_back(env_.switching_cost(i));
  return context;
}

RunResult Simulator::run(const bandit::PolicyFactory& policy_factory,
                         const trading::TraderFactory& trader_factory,
                         std::uint64_t run_seed,
                         std::string algorithm_name) const {
  auto fleet = std::make_unique<bandit::PerEdgeFleetAdapter>(
      policy_factory, fleet_policy_context(run_seed));
  return run_impl(std::move(fleet), trader_factory, run_seed,
                  std::move(algorithm_name), /*fixed_choices=*/false,
                  nullptr);
}

RunResult Simulator::run_fleet(const bandit::FleetPolicyFactory& fleet_factory,
                               const trading::TraderFactory& trader_factory,
                               std::uint64_t run_seed,
                               std::string algorithm_name) const {
  auto fleet = fleet_factory(fleet_policy_context(run_seed));
  assert(fleet != nullptr && fleet->num_edges() == env_.num_edges());
  return run_impl(std::move(fleet), trader_factory, run_seed,
                  std::move(algorithm_name), /*fixed_choices=*/false,
                  nullptr);
}

RunResult Simulator::run_fixed(const std::vector<std::size_t>& model_per_edge,
                               const trading::TraderFactory& trader_factory,
                               std::uint64_t run_seed,
                               std::string algorithm_name) const {
  assert(model_per_edge.size() == env_.num_edges());
  return run_impl(nullptr, trader_factory, run_seed,
                  std::move(algorithm_name),
                  /*fixed_choices=*/true, &model_per_edge);
}

RunResult Simulator::run_impl(
    std::unique_ptr<bandit::FleetPolicy> fleet,
    const trading::TraderFactory& trader_factory, std::uint64_t run_seed,
    std::string algorithm_name, bool fixed_choices,
    const std::vector<std::size_t>* fixed_models) const {
  const std::size_t horizon = env_.horizon();
  const std::size_t num_edges = env_.num_edges();
  const std::size_t num_models = env_.num_models();
  const auto& config = env_.config();

  auto trader = trader_factory(trader_context(run_seed));
  // Base of the per-(edge, slot) draw streams; also seeds the shared stream
  // of the legacy per-sample reference mode.
  const std::uint64_t draw_seed = run_seed ^ 0xD1CE5EEDBEEFULL;
  Rng shared_draw_rng(draw_seed);

  RunResult result;
  result.algorithm = std::move(algorithm_name);
  result.inference_cost.assign(horizon, 0.0);
  result.switching_cost.assign(horizon, 0.0);
  result.trading_cost.assign(horizon, 0.0);
  result.emissions.assign(horizon, 0.0);
  result.buys.assign(horizon, 0.0);
  result.sells.assign(horizon, 0.0);
  result.accuracy.assign(horizon, 0.0);
  result.workload.assign(horizon, 0.0);
  result.selection_counts.assign(
      num_edges, std::vector<std::size_t>(num_models, 0));
  result.carbon_cap = config.carbon_cap;
  result.settlement_price = config.settlement_penalty_multiplier *
                            env_.prices().buy.back();

  // All per-edge hot state — hoisted slot invariants, hosted model, slot
  // partials — as flat SoA arrays carved from one arena reservation (see
  // sim/fleet_state.h). Nothing on the slot path below allocates;
  // state.arena_overflows() certifies it.
  FleetState state(env_);
  const double* energy_per_sample = state.energy_per_sample();
  const double* mean_loss = state.mean_loss();
  const data::LossProfile* const* profiles = state.profiles();
  const std::uint32_t* shift_target = state.shift_target();
  const double* edge_switch_cost = state.edge_switch_cost();
  const double* comp_cost = state.comp_cost();
  const double* transfer_energy = state.transfer_energy();
  const int* const* edge_workload = state.edge_workload();
  std::uint32_t* previous_model = state.previous_model();
  double* part_inference = state.part_inference();
  double* part_switch_cost = state.part_switch_cost();
  double* part_energy = state.part_energy();
  double* part_correct = state.part_correct();
  double* part_samples = state.part_samples();
  std::uint32_t* part_model = state.part_model();
  std::uint8_t* part_switched = state.part_switched();

  // Allowance balance R + sum(z - w - e); sales are clamped so it cannot go
  // negative through selling (see SimConfig::clamp_sales_to_holdings).
  double allowance_balance = config.carbon_cap;
#if defined(CEA_AUDIT)
  // Independent ledger re-accumulated from the *recorded* series, so any
  // drift between what the simulator charges and what it reports shows up
  // as a per-slot violation.
  double audit_net_flow = 0.0;
#endif

  const bool per_sample = options_.per_sample_draws;
  util::ThreadPool* pool = per_sample ? nullptr : options_.pool;

  // Cross-edge batched OMD solving: fleet policies that expose their next
  // Tsallis solve (next_solve/accept_presolve) get it solved in one SIMD
  // batch at the start of each slot, before the (possibly parallel) edge
  // fan-out. Safe because a pending solve's inputs are frozen by the
  // edge's own previous feedback, and bit-identical because the batch
  // solver reproduces the scalar oracle exactly.
  const bool any_batchable = options_.cross_edge_batch_solve &&
                             !fixed_choices && fleet != nullptr &&
                             fleet->supports_batch_solve();
  TsallisBatchSolver batch_solver;

  // Slot-scoped values shared with the hoisted edge task below. Assigned
  // once per slot before the fan-out; read-only inside it. Hoisting them
  // (and the task closures) out of the time loop keeps the slot path free
  // of std::function construction.
  std::size_t t = 0;
  bool shifted = false;
#if defined(CEA_TELEMETRY)
  // Per-edge phase split (bandit select+feedback vs sample draws) is
  // too hot to time unconditionally — several clock reads per edge per
  // slot — so it rides behind the detail switch the --telemetry
  // harness flips on. Read once per slot, shared read-only with the
  // pool workers. Timestamps never feed control flow.
  bool obs_detail = false;
#endif

  // Per-edge work: model selection, batched loss sampling, bandit
  // feedback. Touches only state indexed by the edge (its fleet-policy
  // slot, its previous model, its SoA partial lane), so it is safe to fan
  // out under the one-writer-per-shard contract.
  auto edge_task = [&](std::size_t i) {
#if defined(CEA_TELEMETRY)
    std::int64_t obs_t0 = obs_detail ? obs::now_ns() : 0;
    double obs_bandit_ns = 0.0;
#endif
    const std::size_t model =
        fixed_choices ? (*fixed_models)[i] : fleet->select(i, t);
#if defined(CEA_TELEMETRY)
    if (obs_detail) {
      const std::int64_t now = obs::now_ns();
      obs_bandit_ns += static_cast<double>(now - obs_t0);
      obs_t0 = now;
    }
#endif
    const std::size_t loss_model = shifted ? shift_target[model] : model;
    // The initial download (previous_model == kNoModel) costs transfer
    // energy but is not a "switch": the paper charges y_i^t u_i only when
    // a *hosted* model is replaced, while every model placement — initial
    // or not — moves bytes and therefore energy.
    const bool first_slot = previous_model[i] == FleetState::kNoModel;
    const bool switched = !first_slot && model != previous_model[i];
    double switch_cost = 0.0;
    double energy_kwh = 0.0;
    if (switched) switch_cost = edge_switch_cost[i];
    if (switched || first_slot)
      energy_kwh += transfer_energy[i * num_models + model];
    previous_model[i] = static_cast<std::uint32_t>(model);
    part_model[i] = static_cast<std::uint32_t>(model);
    part_switched[i] = switched ? 1 : 0;
    CEA_CHECK(t > 0 || !switched, "simulator.first_slot_switch", i, t,
              static_cast<double>(model),
              "edge charged a switch at t=0 (initial download)");

    const auto samples = static_cast<std::size_t>(edge_workload[i][t]);
    const std::size_t draws =
        config.loss_draw_cap == 0
            ? samples
            : std::min<std::size_t>(samples, config.loss_draw_cap);

    data::LossBatch batch;
    if (per_sample) {
      for (std::size_t d = 0; d < draws; ++d) {
        const data::LossDraw draw =
            profiles[loss_model]->draw(shared_draw_rng);
        batch.loss_sum += draw.loss;
        batch.correct_count += draw.correct ? 1 : 0;
      }
    } else {
      // Keyed directly by the (edge, slot) stream seed: no generator
      // construction on the hot path, same pure-function-of-(seed, i, t)
      // determinism contract.
      batch = profiles[loss_model]->draw_batch_keyed(
          stream_seed(draw_seed, i, t), draws);
    }
    const double mean_sampled_loss =
        draws > 0 ? batch.loss_sum / static_cast<double>(draws) : 0.0;
    const double sample_accuracy =
        draws > 0 ? static_cast<double>(batch.correct_count) /
                        static_cast<double>(draws)
                  : 0.0;
#if defined(CEA_TELEMETRY)
    if (obs_detail) {
      static const obs::MetricId obs_draws = obs::counter("sim.draws");
      obs::add(obs_draws, static_cast<double>(draws));
      static const obs::MetricId obs_draw_hist =
          obs::duration_histogram("sim.edge.draw");
      const std::int64_t now = obs::now_ns();
      obs::observe(obs_draw_hist, static_cast<double>(now - obs_t0));
      obs_t0 = now;
    }
#endif

    // Bandit feedback: L_{i,J}^t + v_{i,J} (Insight 2).
    if (!fixed_choices) {
      fleet->feedback(
          i, t, model, mean_sampled_loss + comp_cost[i * num_models + model]);
    }
#if defined(CEA_TELEMETRY)
    if (obs_detail) {
      static const obs::MetricId obs_bandit_hist =
          obs::duration_histogram("sim.edge.bandit");
      obs_bandit_ns += static_cast<double>(obs::now_ns() - obs_t0);
      obs::observe(obs_bandit_hist, obs_bandit_ns);
    }
#endif

    // Objective (1) charges the expectation E[l_n] + v_{i,n}.
    part_inference[i] =
        mean_loss[loss_model] + comp_cost[i * num_models + model];
    energy_kwh += energy_per_sample[model] * static_cast<double>(samples);
    part_switch_cost[i] = switch_cost;
    part_energy[i] = energy_kwh;
    part_correct[i] = sample_accuracy * static_cast<double>(samples);
    part_samples[i] = static_cast<double>(samples);
  };
  // One contiguous shard per claim (see SimOptions::edge_shard_grain);
  // hoisted so no std::function is materialized per slot.
  const std::function<void(std::size_t, std::size_t)> shard_task =
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) edge_task(i);
      };

  for (t = 0; t < horizon; ++t) {
    CEA_SPAN("sim.slot");
    if (any_batchable) {
      CEA_SPAN_DETAIL("sim.presolve");
      batch_solver.clear();
      // Slot-transient edge list from the slot arena — reset per slot,
      // reserved once at FleetState construction.
      state.slot_arena().reset();
      std::uint32_t* batch_edges =
          state.slot_arena().alloc_array<std::uint32_t>(num_edges);
      std::size_t batch_count = 0;
      bandit::TsallisSolveRequest request;
      for (std::size_t i = 0; i < num_edges; ++i) {
        if (fleet->next_solve(i, request)) {
          batch_solver.push(request.cumulative_losses, request.eta,
                            request.scaled_lambda_warm);
          batch_edges[batch_count++] = static_cast<std::uint32_t>(i);
        }
      }
      if (batch_count != 0) {
        batch_solver.solve();
        for (std::size_t j = 0; j < batch_count; ++j) {
          fleet->accept_presolve(batch_edges[j],
                                 batch_solver.probabilities(j),
                                 batch_solver.scaled_lambda_warm(j));
        }
      }
    }
    const trading::TradeObservation quote{env_.prices().buy[t],
                                          env_.prices().sell[t]};
    trading::TradeDecision trade;
    {
      CEA_SPAN_DETAIL("sim.trader.decide");
      trade = trader->decide(t, quote);
    }
    if (config.clamp_sales_to_holdings) {
      trade.sell = std::min(trade.sell,
                            std::max(0.0, allowance_balance + trade.buy));
    }

    // Concept drift (SimConfig::loss_shift_slot): the loss distribution a
    // hosted model produces flips to its mirror after the shift slot.
    shifted = config.loss_shift_slot > 0 && t >= config.loss_shift_slot;

#if defined(CEA_TELEMETRY)
    obs_detail = obs::detail_enabled();
#endif

    {
      CEA_SPAN_DETAIL("sim.edges");
      if (pool != nullptr) {
        pool->parallel_for_blocked(num_edges, options_.edge_shard_grain,
                                   shard_task);
      } else {
        for (std::size_t i = 0; i < num_edges; ++i) edge_task(i);
      }
    }

    // Serial reduction in edge order: identical floating-point accumulation
    // regardless of how the shards above were scheduled.
    double slot_energy_kwh = 0.0;
    double weighted_correct = 0.0;
    double slot_samples = 0.0;
    {
      CEA_SPAN_DETAIL("sim.reduce");
#if defined(CEA_TELEMETRY)
      double slot_switches = 0.0;
#endif
      for (std::size_t i = 0; i < num_edges; ++i) {
        result.inference_cost[t] += part_inference[i];
        result.switching_cost[t] += part_switch_cost[i];
        if (part_switched[i]) {
          ++result.total_switches;
#if defined(CEA_TELEMETRY)
          slot_switches += 1.0;
#endif
        }
        ++result.selection_counts[i][part_model[i]];
        slot_energy_kwh += part_energy[i];
        weighted_correct += part_correct[i];
        slot_samples += part_samples[i];
      }
#if defined(CEA_TELEMETRY)
      if (obs_detail) {
        static const obs::MetricId obs_switches =
            obs::counter("sim.switches");
        obs::add(obs_switches, slot_switches);
      }
#endif
    }

    const double emission = config.emission_rate * slot_energy_kwh;
#if defined(CEA_AUDIT)
    // Holdings clamp precondition, checked against the balance *before*
    // this slot's trades are applied.
    CEA_CHECK(!config.clamp_sales_to_holdings ||
                  trade.sell <=
                      std::max(0.0, allowance_balance + trade.buy) + 1e-9,
              "simulator.holdings_clamp", audit::kNoIndex, t, trade.sell,
              "sell " << trade.sell << " exceeds holdings "
                      << std::max(0.0, allowance_balance + trade.buy));
#endif
    allowance_balance += trade.buy - trade.sell - emission;
    result.emissions[t] = emission;
    result.buys[t] = trade.buy;
    result.sells[t] = trade.sell;
    result.trading_cost[t] = trade.cost(quote);
    result.accuracy[t] =
        slot_samples > 0.0 ? weighted_correct / slot_samples : 0.0;
    result.workload[t] = slot_samples;

#if defined(CEA_AUDIT)
    {
      CEA_SPAN_DETAIL("sim.audit");
      // Ledger identity: allowance_balance == R + sum_{s<=t}(z - w - e),
      // re-derived from the recorded series (tolerance covers the different
      // accumulation grouping).
      audit_net_flow += result.buys[t] - result.sells[t] - result.emissions[t];
      const double ledger = config.carbon_cap + audit_net_flow;
      const double scale =
          std::max({1.0, std::abs(allowance_balance), std::abs(ledger)});
      CEA_CHECK(std::abs(allowance_balance - ledger) <= 1e-9 * scale,
                "simulator.ledger_identity", audit::kNoIndex, t,
                allowance_balance - ledger,
                "balance " << allowance_balance
                           << " != R + sum(z - w - e) = " << ledger);
      // Emission identity: e^t == rho * slot energy, with the energy
      // re-summed from the per-edge partials in the same reduction order.
      double audit_energy = 0.0;
      for (std::size_t i = 0; i < num_edges; ++i)
        audit_energy += part_energy[i];
      CEA_CHECK(emission == config.emission_rate * audit_energy &&
                    std::isfinite(emission) && emission >= 0.0,
                "simulator.emission_identity", audit::kNoIndex, t, emission,
                "emission " << emission << " != rho * energy = "
                            << config.emission_rate * audit_energy);
      // Per-slot sanity of the recorded series.
      CEA_CHECK(result.buys[t] >= 0.0 &&
                    result.buys[t] <= config.max_trade_per_slot + 1e-9 &&
                    result.sells[t] >= 0.0 &&
                    result.sells[t] <= config.max_trade_per_slot + 1e-9,
                "simulator.trade_box", audit::kNoIndex, t,
                result.buys[t] - result.sells[t],
                "trade (" << result.buys[t] << ", " << result.sells[t]
                          << ") outside [0, " << config.max_trade_per_slot
                          << "]^2");
      CEA_CHECK(result.accuracy[t] >= 0.0 && result.accuracy[t] <= 1.0,
                "simulator.accuracy_range", audit::kNoIndex, t,
                result.accuracy[t],
                "slot accuracy " << result.accuracy[t] << " outside [0, 1]");
    }
#endif

    {
      CEA_SPAN_DETAIL("sim.trader.feedback");
      trader->feedback(t, emission, quote, trade);
    }
  }
  // Zero in steady state (bench/perf_fleet and tests/sim/test_fleet gate
  // on it): both arenas were reserved for their worst case up front.
  result.arena_overflows = state.arena_overflows();
  return result;
}

}  // namespace cea::sim
