#pragma once

#include <cstdint>
#include <string>

#include "bandit/policy.h"
#include "sim/environment.h"
#include "sim/metrics.h"
#include "trading/trader.h"

namespace cea::sim {

/// Drives the per-slot workflow of Fig. 2 over a scenario: per edge select
/// and (maybe) download a model, stream the slot's M_i^t samples through
/// it, feed the bandit loss back, account energy/emissions, and execute the
/// trading decision.
///
/// The simulator charges the objective (1) with the model's *expected* loss
/// (profile mean) while the policies only ever observe sampled losses —
/// mirroring the paper, where the objective is an expectation but feedback
/// is a sample.
class Simulator {
 public:
  explicit Simulator(const Environment& environment)
      : env_(environment) {}

  /// Run one full horizon with fresh policy instances.
  /// `run_seed` controls the run's stochasticity (policy sampling and loss
  /// draws) independently of the environment seed.
  RunResult run(const bandit::PolicyFactory& policy_factory,
                const trading::TraderFactory& trader_factory,
                std::uint64_t run_seed, std::string algorithm_name) const;

  /// Run with fixed per-edge model choices (no learning) — used by the
  /// Offline reference and by ablations. Switching cost is charged once at
  /// the first slot (the initial download).
  RunResult run_fixed(const std::vector<std::size_t>& model_per_edge,
                      const trading::TraderFactory& trader_factory,
                      std::uint64_t run_seed,
                      std::string algorithm_name) const;

  /// Build the TraderContext the trading policies receive.
  trading::TraderContext trader_context(std::uint64_t run_seed) const;

  /// Build the PolicyContext for one edge.
  bandit::PolicyContext policy_context(std::size_t edge,
                                       std::uint64_t run_seed) const;

 private:
  RunResult run_impl(std::vector<std::unique_ptr<bandit::ModelSelectionPolicy>>
                         policies,
                     const trading::TraderFactory& trader_factory,
                     std::uint64_t run_seed, std::string algorithm_name,
                     bool fixed_choices,
                     const std::vector<std::size_t>* fixed_models) const;

  const Environment& env_;
};

}  // namespace cea::sim
