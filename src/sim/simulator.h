#pragma once

#include <cstdint>
#include <string>

#include "bandit/fleet_policy.h"
#include "bandit/policy.h"
#include "sim/environment.h"
#include "sim/metrics.h"
#include "trading/trader.h"
#include "util/thread_pool.h"

namespace cea::sim {

/// Execution options of a Simulator. The default is the fast batched serial
/// engine; benchmarks and large fleets opt into per-edge parallelism or the
/// legacy reference path.
struct SimOptions {
  /// When set, the per-edge work of every slot is fanned out over this
  /// pool. Results are bit-identical to pool == nullptr for any thread
  /// count: loss draws are keyed by (run_seed, edge, t) and per-edge
  /// partials are reduced serially in edge order. Requires policies whose
  /// per-edge state is independent (true of all built-in policies except
  /// the pooled-learning extension, which shares state across edges and
  /// must run serially).
  util::ThreadPool* pool = nullptr;

  /// Reference mode reproducing the original engine's cost profile: one
  /// LossProfile::draw() call per streamed sample from a single shared RNG
  /// stream. Serial only (the shared stream is order-dependent); kept for
  /// the perf_simulator bench to measure the batched engine against.
  bool per_sample_draws = false;

  /// Gather the slot's pending Tsallis-INF OMD solves across all edges
  /// (policies implementing bandit::TsallisBatchSolvable, or fleet
  /// policies overriding next_solve) into one TsallisBatchSolver call —
  /// SIMD lanes across edges — before the edge fan-out. Bit-identical to
  /// per-edge solving for any engine mode (the batch solver reproduces the
  /// scalar oracle exactly; see opt/tsallis_batch.h), so this is purely a
  /// performance switch; off reproduces the historical per-edge call
  /// sites, which bench/perf_solver measures against.
  bool cross_edge_batch_solve = true;

  /// Edges per shard of the pooled fan-out (0 = auto). Each shard is a
  /// contiguous [begin, end) range claimed with ONE atomic operation and
  /// written by exactly one worker — at 10k edges x 160 slots the
  /// per-index claim of a plain parallel_for would be 1.6M atomic RMWs per
  /// run. Purely a scheduling knob: results are bit-identical for every
  /// grain (the reduction stays serial in edge order).
  std::size_t edge_shard_grain = 0;
};

/// Drives the per-slot workflow of Fig. 2 over a scenario: per edge select
/// and (maybe) download a model, stream the slot's M_i^t samples through
/// it, feed the bandit loss back, account energy/emissions, and execute the
/// trading decision.
///
/// The simulator charges the objective (1) with the model's *expected* loss
/// (profile mean) while the policies only ever observe sampled losses —
/// mirroring the paper, where the objective is an expectation but feedback
/// is a sample.
///
/// Engine: all per-edge hot state (hoisted environment invariants, hosted
/// model, per-slot partials) lives in an arena-backed structure-of-arrays
/// FleetState reserved once per run, and model selection goes through a
/// single bandit::FleetPolicy — either an SoA-native fleet (run_fleet) or
/// per-edge policy instances behind bandit::PerEdgeFleetAdapter (run).
/// Loss sampling is batched (LossProfile::draw_batch_keyed) with one RNG
/// stream per (edge, slot) derived from the run seed, so sampling is a
/// pure function of (run_seed, edge, t) and the pooled edge-sharded mode
/// (SimOptions::pool) is bit-identical to the serial one.
class Simulator {
 public:
  explicit Simulator(const Environment& environment, SimOptions options = {})
      : env_(environment), options_(options) {}

  /// Run one full horizon with fresh per-edge policy instances (wrapped in
  /// a PerEdgeFleetAdapter). `run_seed` controls the run's stochasticity
  /// (policy sampling and loss draws) independently of the environment
  /// seed.
  RunResult run(const bandit::PolicyFactory& policy_factory,
                const trading::TraderFactory& trader_factory,
                std::uint64_t run_seed, std::string algorithm_name) const;

  /// Run one full horizon with a fresh fleet policy — the SoA-native path
  /// (e.g. core::BlockedTsallisFleetPolicy). Bit-identical to run() when
  /// the fleet policy mirrors the per-edge policy's computation.
  RunResult run_fleet(const bandit::FleetPolicyFactory& fleet_factory,
                      const trading::TraderFactory& trader_factory,
                      std::uint64_t run_seed,
                      std::string algorithm_name) const;

  /// Run with fixed per-edge model choices (no learning) — used by the
  /// Offline reference and by ablations. The initial download at t=0 is
  /// charged its transfer energy but no switching cost u_i (nothing hosted
  /// is replaced), so a fixed choice never pays u_i at all.
  RunResult run_fixed(const std::vector<std::size_t>& model_per_edge,
                      const trading::TraderFactory& trader_factory,
                      std::uint64_t run_seed,
                      std::string algorithm_name) const;

  /// Build the TraderContext the trading policies receive.
  trading::TraderContext trader_context(std::uint64_t run_seed) const;

  /// Build the PolicyContext for one edge.
  bandit::PolicyContext policy_context(std::size_t edge,
                                       std::uint64_t run_seed) const;

  /// Build the FleetPolicyContext for the whole fleet. Per-edge seeds are
  /// derived from run_seed via bandit::policy_stream_seed, matching
  /// policy_context(edge, run_seed).seed exactly.
  bandit::FleetPolicyContext fleet_policy_context(
      std::uint64_t run_seed) const;

 private:
  RunResult run_impl(std::unique_ptr<bandit::FleetPolicy> fleet,
                     const trading::TraderFactory& trader_factory,
                     std::uint64_t run_seed, std::string algorithm_name,
                     bool fixed_choices,
                     const std::vector<std::size_t>* fixed_models) const;

  const Environment& env_;
  SimOptions options_;
};

}  // namespace cea::sim
