#include "sim/slot_engine.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/telemetry.h"
#include "sim/audit.h"
#include "util/check.h"

namespace cea::sim {

SlotEngine::SlotEngine(const Environment& env, const SimOptions& options,
                       std::unique_ptr<bandit::FleetPolicy> fleet,
                       std::unique_ptr<trading::TradingPolicy> trader,
                       std::uint64_t run_seed, std::string algorithm_name,
                       const std::vector<std::size_t>* fixed_models)
    : env_(env),
      options_(options),
      fleet_(std::move(fleet)),
      trader_(std::move(trader)),
      fixed_choices_(fixed_models != nullptr),
      num_edges_(env.num_edges()),
      num_models_(env.num_models()),
      // Base of the per-(edge, slot) draw streams; also seeds the shared
      // stream of the legacy per-sample reference mode.
      draw_seed_(run_seed ^ 0xD1CE5EEDBEEFULL),
      shared_draw_rng_(draw_seed_),
      state_(env) {
  assert(trader_ != nullptr);
  assert(fixed_choices_ || fleet_ != nullptr);
  if (fixed_models != nullptr) {
    assert(fixed_models->size() == num_edges_);
    fixed_models_ = *fixed_models;
  }
  const auto& config = env_.config();

  result_.algorithm = std::move(algorithm_name);
  const std::size_t horizon = env_.horizon();
  result_.inference_cost.reserve(horizon);
  result_.switching_cost.reserve(horizon);
  result_.trading_cost.reserve(horizon);
  result_.emissions.reserve(horizon);
  result_.buys.reserve(horizon);
  result_.sells.reserve(horizon);
  result_.accuracy.reserve(horizon);
  result_.workload.reserve(horizon);
  result_.selection_counts.assign(
      num_edges_, std::vector<std::size_t>(num_models_, 0));
  result_.carbon_cap = config.carbon_cap;
  result_.settlement_price =
      config.settlement_penalty_multiplier * env_.prices().buy.back();

  energy_per_sample_ = state_.energy_per_sample();
  mean_loss_ = state_.mean_loss();
  profiles_ = state_.profiles();
  shift_target_ = state_.shift_target();
  edge_switch_cost_ = state_.edge_switch_cost();
  comp_cost_ = state_.comp_cost();
  transfer_energy_ = state_.transfer_energy();
  edge_workload_ = state_.edge_workload();
  previous_model_ = state_.previous_model();
  part_inference_ = state_.part_inference();
  part_switch_cost_ = state_.part_switch_cost();
  part_energy_ = state_.part_energy();
  part_correct_ = state_.part_correct();
  part_samples_ = state_.part_samples();
  part_model_ = state_.part_model();
  part_switched_ = state_.part_switched();

  // Allowance balance R + sum(z - w - e); sales are clamped so it cannot
  // go negative through selling (SimConfig::clamp_sales_to_holdings).
  allowance_balance_ = config.carbon_cap;

  per_sample_ = options_.per_sample_draws;
  pool_ = per_sample_ ? nullptr : options_.pool;

  // Cross-edge batched OMD solving: fleet policies that expose their next
  // Tsallis solve (next_solve/accept_presolve) get it solved in one SIMD
  // batch at the start of each slot, before the (possibly parallel) edge
  // fan-out. Safe because a pending solve's inputs are frozen by the
  // edge's own previous feedback, and bit-identical because the batch
  // solver reproduces the scalar oracle exactly.
  any_batchable_ = options_.cross_edge_batch_solve && !fixed_choices_ &&
                   fleet_ != nullptr && fleet_->supports_batch_solve();

  // One contiguous shard per claim (see SimOptions::edge_shard_grain).
  shard_task_ = [this](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) run_edge(i);
  };
}

// Per-edge work: model selection, batched loss sampling, bandit feedback.
// Touches only state indexed by the edge (its fleet-policy slot, its
// previous model, its SoA partial lane), so it is safe to fan out under
// the one-writer-per-shard contract.
void SlotEngine::run_edge(std::size_t i) {
  const std::size_t t = t_;
  const auto& config = env_.config();
#if defined(CEA_TELEMETRY)
  std::int64_t obs_t0 = obs_detail_ ? obs::now_ns() : 0;
  double obs_bandit_ns = 0.0;
#endif
  const std::size_t model =
      fixed_choices_ ? fixed_models_[i] : fleet_->select(i, t);
#if defined(CEA_TELEMETRY)
  if (obs_detail_) {
    const std::int64_t now = obs::now_ns();
    obs_bandit_ns += static_cast<double>(now - obs_t0);
    obs_t0 = now;
  }
#endif
  const std::size_t loss_model = shifted_ ? shift_target_[model] : model;
  // The initial download (previous_model == kNoModel) costs transfer
  // energy but is not a "switch": the paper charges y_i^t u_i only when
  // a *hosted* model is replaced, while every model placement — initial
  // or not — moves bytes and therefore energy.
  const bool first_slot = previous_model_[i] == FleetState::kNoModel;
  const bool switched = !first_slot && model != previous_model_[i];
  double switch_cost = 0.0;
  double energy_kwh = 0.0;
  if (switched) switch_cost = edge_switch_cost_[i];
  if (switched || first_slot)
    energy_kwh += transfer_energy_[i * num_models_ + model];
  previous_model_[i] = static_cast<std::uint32_t>(model);
  part_model_[i] = static_cast<std::uint32_t>(model);
  part_switched_[i] = switched ? 1 : 0;
  CEA_CHECK(t > 0 || !switched, "simulator.first_slot_switch", i, t,
            static_cast<double>(model),
            "edge charged a switch at t=0 (initial download)");

  const auto samples = static_cast<std::size_t>(
      slot_workload_ != nullptr ? slot_workload_[i] : edge_workload_[i][t]);
  const std::size_t draws =
      config.loss_draw_cap == 0
          ? samples
          : std::min<std::size_t>(samples, config.loss_draw_cap);

  data::LossBatch batch;
  if (per_sample_) {
    for (std::size_t d = 0; d < draws; ++d) {
      const data::LossDraw draw =
          profiles_[loss_model]->draw(shared_draw_rng_);
      batch.loss_sum += draw.loss;
      batch.correct_count += draw.correct ? 1 : 0;
    }
  } else {
    // Keyed directly by the (edge, slot) stream seed: no generator
    // construction on the hot path, same pure-function-of-(seed, i, t)
    // determinism contract.
    batch = profiles_[loss_model]->draw_batch_keyed(
        stream_seed(draw_seed_, i, t), draws);
  }
  const double mean_sampled_loss =
      draws > 0 ? batch.loss_sum / static_cast<double>(draws) : 0.0;
  const double sample_accuracy =
      draws > 0 ? static_cast<double>(batch.correct_count) /
                      static_cast<double>(draws)
                : 0.0;
#if defined(CEA_TELEMETRY)
  if (obs_detail_) {
    static const obs::MetricId obs_draws = obs::counter("sim.draws");
    obs::add(obs_draws, static_cast<double>(draws));
    static const obs::MetricId obs_draw_hist =
        obs::duration_histogram("sim.edge.draw");
    const std::int64_t now = obs::now_ns();
    obs::observe(obs_draw_hist, static_cast<double>(now - obs_t0));
    obs_t0 = now;
  }
#endif

  // Bandit feedback: L_{i,J}^t + v_{i,J} (Insight 2).
  if (!fixed_choices_) {
    fleet_->feedback(i, t, model,
                     mean_sampled_loss + comp_cost_[i * num_models_ + model]);
  }
#if defined(CEA_TELEMETRY)
  if (obs_detail_) {
    static const obs::MetricId obs_bandit_hist =
        obs::duration_histogram("sim.edge.bandit");
    obs_bandit_ns += static_cast<double>(obs::now_ns() - obs_t0);
    obs::observe(obs_bandit_hist, obs_bandit_ns);
  }
#endif

  // Objective (1) charges the expectation E[l_n] + v_{i,n}.
  part_inference_[i] =
      mean_loss_[loss_model] + comp_cost_[i * num_models_ + model];
  energy_kwh += energy_per_sample_[model] * static_cast<double>(samples);
  part_switch_cost_[i] = switch_cost;
  part_energy_[i] = energy_kwh;
  part_correct_[i] = sample_accuracy * static_cast<double>(samples);
  part_samples_[i] = static_cast<double>(samples);
}

void SlotEngine::presolve() {
  CEA_SPAN_DETAIL("sim.presolve");
  batch_solver_.clear();
  // Slot-transient edge list from the slot arena — reset per slot,
  // reserved once at FleetState construction.
  state_.slot_arena().reset();
  std::uint32_t* batch_edges =
      state_.slot_arena().alloc_array<std::uint32_t>(num_edges_);
  std::size_t batch_count = 0;
  bandit::TsallisSolveRequest request;
  for (std::size_t i = 0; i < num_edges_; ++i) {
    if (fleet_->next_solve(i, request)) {
      batch_solver_.push(request.cumulative_losses, request.eta,
                         request.scaled_lambda_warm);
      batch_edges[batch_count++] = static_cast<std::uint32_t>(i);
    }
  }
  if (batch_count != 0) {
    batch_solver_.solve();
    for (std::size_t j = 0; j < batch_count; ++j) {
      fleet_->accept_presolve(batch_edges[j], batch_solver_.probabilities(j),
                              batch_solver_.scaled_lambda_warm(j));
    }
  }
#if defined(CEA_TELEMETRY)
  obs_solver_lanes_ = batch_count;
#endif
}

trading::TradeDecision SlotEngine::begin_slot(
    const trading::TradeObservation& quote) {
#if defined(CEA_TELEMETRY)
  obs_solver_lanes_ = 0;  // presolve overwrites when it runs
#endif
  if (any_batchable_) presolve();
  trading::TradeDecision trade;
  {
    CEA_SPAN_DETAIL("sim.trader.decide");
    trade = trader_->decide(t_, quote);
  }
  return trade;
}

void SlotEngine::finish_slot(const trading::TradeObservation& quote,
                             trading::TradeDecision trade,
                             const int* slot_workload) {
  const auto& config = env_.config();
  if (config.clamp_sales_to_holdings) {
    trade.sell = std::min(trade.sell,
                          std::max(0.0, allowance_balance_ + trade.buy));
  }

  // Concept drift (SimConfig::loss_shift_slot): the loss distribution a
  // hosted model produces flips to its mirror after the shift slot.
  shifted_ = config.loss_shift_slot > 0 && t_ >= config.loss_shift_slot;
  slot_workload_ = slot_workload;

#if defined(CEA_TELEMETRY)
  // Per-edge phase split (bandit select+feedback vs sample draws) is too
  // hot to time unconditionally — several clock reads per edge per slot —
  // so it rides behind the detail switch the --telemetry harness flips
  // on. Read once per slot, shared read-only with the pool workers.
  obs_detail_ = obs::detail_enabled();
#endif

  {
    CEA_SPAN_DETAIL("sim.edges");
    if (pool_ != nullptr) {
      pool_->parallel_for_blocked(num_edges_, options_.edge_shard_grain,
                                  shard_task_);
    } else {
      for (std::size_t i = 0; i < num_edges_; ++i) run_edge(i);
    }
  }

  // Serial reduction in edge order: identical floating-point accumulation
  // regardless of how the shards above were scheduled.
  double slot_inference = 0.0;
  double slot_switch_cost = 0.0;
  double slot_energy_kwh = 0.0;
  double weighted_correct = 0.0;
  double slot_samples = 0.0;
  {
    CEA_SPAN_DETAIL("sim.reduce");
#if defined(CEA_TELEMETRY)
    double slot_switches = 0.0;
#endif
    for (std::size_t i = 0; i < num_edges_; ++i) {
      slot_inference += part_inference_[i];
      slot_switch_cost += part_switch_cost_[i];
      if (part_switched_[i]) {
        ++result_.total_switches;
#if defined(CEA_TELEMETRY)
        slot_switches += 1.0;
#endif
      }
      ++result_.selection_counts[i][part_model_[i]];
      slot_energy_kwh += part_energy_[i];
      weighted_correct += part_correct_[i];
      slot_samples += part_samples_[i];
    }
#if defined(CEA_TELEMETRY)
    if (obs_detail_) {
      static const obs::MetricId obs_switches = obs::counter("sim.switches");
      obs::add(obs_switches, slot_switches);
    }
#endif
  }

  const double emission = config.emission_rate * slot_energy_kwh;
#if defined(CEA_AUDIT)
  // Holdings clamp precondition, checked against the balance *before*
  // this slot's trades are applied.
  CEA_CHECK(!config.clamp_sales_to_holdings ||
                trade.sell <=
                    std::max(0.0, allowance_balance_ + trade.buy) + 1e-9,
            "simulator.holdings_clamp", audit::kNoIndex, t_, trade.sell,
            "sell " << trade.sell << " exceeds holdings "
                    << std::max(0.0, allowance_balance_ + trade.buy));
#endif
  allowance_balance_ += trade.buy - trade.sell - emission;
  result_.inference_cost.push_back(slot_inference);
  result_.switching_cost.push_back(slot_switch_cost);
  result_.emissions.push_back(emission);
  result_.buys.push_back(trade.buy);
  result_.sells.push_back(trade.sell);
  result_.trading_cost.push_back(trade.cost(quote));
  result_.accuracy.push_back(
      slot_samples > 0.0 ? weighted_correct / slot_samples : 0.0);
  result_.workload.push_back(slot_samples);

#if defined(CEA_AUDIT)
  {
    CEA_SPAN_DETAIL("sim.audit");
    // Ledger identity: allowance_balance == R + sum_{s<=t}(z - w - e),
    // re-derived from the recorded series (tolerance covers the different
    // accumulation grouping).
    audit_net_flow_ +=
        result_.buys[t_] - result_.sells[t_] - result_.emissions[t_];
    const double ledger = config.carbon_cap + audit_net_flow_;
    const double scale =
        std::max({1.0, std::abs(allowance_balance_), std::abs(ledger)});
    CEA_CHECK(std::abs(allowance_balance_ - ledger) <= 1e-9 * scale,
              "simulator.ledger_identity", audit::kNoIndex, t_,
              allowance_balance_ - ledger,
              "balance " << allowance_balance_
                         << " != R + sum(z - w - e) = " << ledger);
    // Emission identity: e^t == rho * slot energy, with the energy
    // re-summed from the per-edge partials in the same reduction order.
    double audit_energy = 0.0;
    for (std::size_t i = 0; i < num_edges_; ++i)
      audit_energy += part_energy_[i];
    CEA_CHECK(emission == config.emission_rate * audit_energy &&
                  std::isfinite(emission) && emission >= 0.0,
              "simulator.emission_identity", audit::kNoIndex, t_, emission,
              "emission " << emission << " != rho * energy = "
                          << config.emission_rate * audit_energy);
    // Per-slot sanity of the recorded series.
    CEA_CHECK(result_.buys[t_] >= 0.0 &&
                  result_.buys[t_] <= config.max_trade_per_slot + 1e-9 &&
                  result_.sells[t_] >= 0.0 &&
                  result_.sells[t_] <= config.max_trade_per_slot + 1e-9,
              "simulator.trade_box", audit::kNoIndex, t_,
              result_.buys[t_] - result_.sells[t_],
              "trade (" << result_.buys[t_] << ", " << result_.sells[t_]
                        << ") outside [0, " << config.max_trade_per_slot
                        << "]^2");
    CEA_CHECK(result_.accuracy[t_] >= 0.0 && result_.accuracy[t_] <= 1.0,
              "simulator.accuracy_range", audit::kNoIndex, t_,
              result_.accuracy[t_],
              "slot accuracy " << result_.accuracy[t_] << " outside [0, 1]");
  }
#endif

  {
    CEA_SPAN_DETAIL("sim.trader.feedback");
    trader_->feedback(t_, emission, quote, trade);
  }

#if defined(CEA_TELEMETRY)
  // Decision journal hook: one snapshot per slot, only when someone is
  // attached (the daemon; batch runs and perf_fleet attach nothing, so
  // this is one null check on their hot path). Every value is already
  // fixed by the serial reduction above.
  if (observer_ != nullptr) {
    obs_model_counts_.assign(num_models_, 0);
    for (std::size_t i = 0; i < num_edges_; ++i)
      ++obs_model_counts_[part_model_[i]];
    SlotObservation observed;
    observed.slot = t_;
    observed.model_counts = obs_model_counts_;
    observed.switches_total = result_.total_switches;
    observed.solver_lanes = obs_solver_lanes_;
    observed.arena_overflows = state_.arena_overflows();
    observed.trader_dual = trader_->dual_value();
    observed.buy = trade.buy;
    observed.sell = trade.sell;
    observed.buy_price = quote.buy_price;
    observed.sell_price = quote.sell_price;
    observed.emission = emission;
    observed.balance = allowance_balance_;
    observed.carbon_cap = config.carbon_cap;
    observed.inference_cost = result_.inference_cost.back();
    observed.switching_cost = result_.switching_cost.back();
    observed.trading_cost = result_.trading_cost.back();
    observed.accuracy = result_.accuracy.back();
    observed.workload = result_.workload.back();
    observer_->on_slot(observed);
  }
#endif

  slot_workload_ = nullptr;
  ++t_;
}

void SlotEngine::step() {
  CEA_SPAN("sim.slot");
  const trading::TradeObservation quote{env_.prices().buy[t_],
                                        env_.prices().sell[t_]};
  const trading::TradeDecision trade = begin_slot(quote);
  finish_slot(quote, trade, nullptr);
}

void SlotEngine::step(const trading::TradeObservation& quote,
                      const int* slot_workload) {
  CEA_SPAN("sim.slot");
  const trading::TradeDecision trade = begin_slot(quote);
  finish_slot(quote, trade, slot_workload);
}

const RunResult& SlotEngine::result() noexcept {
  // Zero in steady state (bench/perf_fleet and tests/sim/test_fleet gate
  // on it): both arenas were reserved for their worst case up front.
  result_.arena_overflows = state_.arena_overflows();
  return result_;
}

RunResult SlotEngine::take_result() {
  result_.arena_overflows = state_.arena_overflows();
  return std::move(result_);
}

void SlotEngine::save_state(util::StateWriter& writer) const {
  writer.write_u64("engine.slot", t_);
  writer.write_u64("engine.edges", num_edges_);
  writer.write_u64("engine.models", num_models_);
  writer.write_string("engine.algorithm", result_.algorithm);
  writer.write_double("engine.balance", allowance_balance_);
  writer.write_u64("engine.total_switches", result_.total_switches);
  writer.write_doubles("engine.inference_cost", result_.inference_cost);
  writer.write_doubles("engine.switching_cost", result_.switching_cost);
  writer.write_doubles("engine.trading_cost", result_.trading_cost);
  writer.write_doubles("engine.emissions", result_.emissions);
  writer.write_doubles("engine.buys", result_.buys);
  writer.write_doubles("engine.sells", result_.sells);
  writer.write_doubles("engine.accuracy", result_.accuracy);
  writer.write_doubles("engine.workload", result_.workload);
  std::vector<std::uint64_t> scratch;
  scratch.reserve(num_edges_ * num_models_);
  for (const auto& row : result_.selection_counts)
    for (std::size_t c : row) scratch.push_back(c);
  writer.write_u64s("engine.selection_counts", scratch);
  scratch.clear();
  for (std::size_t i = 0; i < num_edges_; ++i)
    scratch.push_back(previous_model_[i]);
  writer.write_u64s("engine.previous_model", scratch);
  writer.write_rng("engine.draw_rng", shared_draw_rng_);
  if (fixed_choices_) {
    writer.write_string("engine.policy", "fixed");
  } else {
    writer.write_string("engine.policy", fleet_->name());
    if (!fleet_->save_state(writer)) {
      throw util::StateError("checkpoint: fleet policy '" + fleet_->name() +
                             "' does not support checkpointing");
    }
  }
  writer.write_string("engine.trader", trader_->name());
  if (!trader_->save_state(writer)) {
    throw util::StateError("checkpoint: trading policy '" + trader_->name() +
                           "' does not support checkpointing");
  }
}

void SlotEngine::restore_state(util::StateReader& reader) {
  const std::uint64_t slot = reader.read_u64("engine.slot");
  const std::uint64_t edges = reader.read_u64("engine.edges");
  const std::uint64_t models = reader.read_u64("engine.models");
  if (edges != num_edges_ || models != num_models_) {
    throw util::StateError(
        "checkpoint: scenario shape mismatch (checkpoint " +
        std::to_string(edges) + "x" + std::to_string(models) +
        ", engine " + std::to_string(num_edges_) + "x" +
        std::to_string(num_models_) + ")");
  }
  const std::string algorithm = reader.read_string("engine.algorithm");
  if (algorithm != result_.algorithm) {
    throw util::StateError("checkpoint: algorithm mismatch (checkpoint '" +
                           algorithm + "', engine '" + result_.algorithm +
                           "')");
  }
  allowance_balance_ = reader.read_double("engine.balance");
  result_.total_switches = reader.read_u64("engine.total_switches");
  result_.inference_cost = reader.read_doubles("engine.inference_cost", slot);
  result_.switching_cost = reader.read_doubles("engine.switching_cost", slot);
  result_.trading_cost = reader.read_doubles("engine.trading_cost", slot);
  result_.emissions = reader.read_doubles("engine.emissions", slot);
  result_.buys = reader.read_doubles("engine.buys", slot);
  result_.sells = reader.read_doubles("engine.sells", slot);
  result_.accuracy = reader.read_doubles("engine.accuracy", slot);
  result_.workload = reader.read_doubles("engine.workload", slot);
  const auto counts =
      reader.read_u64s("engine.selection_counts", num_edges_ * num_models_);
  for (std::size_t i = 0; i < num_edges_; ++i)
    for (std::size_t n = 0; n < num_models_; ++n)
      result_.selection_counts[i][n] = counts[i * num_models_ + n];
  const auto hosted = reader.read_u64s("engine.previous_model", num_edges_);
  for (std::size_t i = 0; i < num_edges_; ++i) {
    if (hosted[i] != FleetState::kNoModel && hosted[i] >= num_models_) {
      throw util::StateError("checkpoint: hosted model out of range");
    }
    previous_model_[i] = static_cast<std::uint32_t>(hosted[i]);
  }
  reader.read_rng("engine.draw_rng", shared_draw_rng_);
  const std::string policy = reader.read_string("engine.policy");
  if (fixed_choices_) {
    if (policy != "fixed") {
      throw util::StateError("checkpoint: policy mismatch (checkpoint '" +
                             policy + "', engine 'fixed')");
    }
  } else {
    if (policy != fleet_->name()) {
      throw util::StateError("checkpoint: policy mismatch (checkpoint '" +
                             policy + "', engine '" + fleet_->name() + "')");
    }
    if (!fleet_->load_state(reader)) {
      throw util::StateError("checkpoint: fleet policy '" + fleet_->name() +
                             "' does not support checkpointing");
    }
  }
  const std::string trader = reader.read_string("engine.trader");
  if (trader != trader_->name()) {
    throw util::StateError("checkpoint: trader mismatch (checkpoint '" +
                           trader + "', engine '" + trader_->name() + "')");
  }
  if (!trader_->load_state(reader)) {
    throw util::StateError("checkpoint: trading policy '" + trader_->name() +
                           "' does not support checkpointing");
  }
  t_ = slot;
#if defined(CEA_AUDIT)
  // Rebuild the independent audit ledger from the restored series in the
  // same per-slot accumulation order the uninterrupted run used.
  audit_net_flow_ = 0.0;
  for (std::size_t s = 0; s < t_; ++s) {
    audit_net_flow_ +=
        result_.buys[s] - result_.sells[s] - result_.emissions[s];
  }
#endif
}

}  // namespace cea::sim
