#pragma once

// The simulator turned inside-out: one slot of the Fig. 2 workflow as an
// explicit state machine (ROADMAP item "long-running serving daemon").
//
// Simulator::run_impl used to own the whole horizon loop, which made the
// controller usable only as a closed batch simulation. SlotEngine extracts
// the loop body — presolve, trading decision, pooled edge fan-out, serial
// edge-ordered reduction, ledger update, trader feedback — behind a
// step()/begin_slot()/finish_slot() API, so the same arithmetic (bit for
// bit; the golden traces pin it through Simulator) can be driven either by
// the batch Simulator over Environment traces or slot-by-slot by the
// serving daemon (src/serve/) from live feeds.
//
// Pure state machine: no file I/O, no clock, no feed knowledge. The only
// inputs of a slot are the price quote and the per-edge workload counts;
// everything else (policies, trader, draw streams, ledger) lives inside
// and is snapshotted bit-exactly by save_state()/restore_state() — the
// checkpoint contract is that an engine restored at any slot boundary
// continues exactly like the uninterrupted one (tests/serve/
// test_checkpoint.cpp).

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bandit/fleet_policy.h"
#include "opt/tsallis_batch.h"
#include "sim/environment.h"
#include "sim/fleet_state.h"
#include "sim/metrics.h"
#include "sim/simulator.h"
#include "trading/trader.h"
#include "util/rng.h"
#include "util/state_io.h"
#include "util/thread_pool.h"

namespace cea::sim {

#if defined(CEA_TELEMETRY)
/// Per-slot decision snapshot handed to an attached SlotObserver at the
/// very end of finish_slot (after the trader feedback, before the cursor
/// advances). Every field comes out of the serial edge-ordered reduction,
/// so observers inherit the engine's serial/pooled bit-identity. The
/// counts span aliases engine scratch — copy it if it must outlive the
/// callback.
struct SlotObservation {
  std::size_t slot = 0;  ///< the slot just executed
  /// Edges that selected each model this slot (size = num_models()).
  std::span<const std::uint64_t> model_counts;
  std::uint64_t switches_total = 0;   ///< cumulative switches so far
  std::uint64_t solver_lanes = 0;     ///< batched Tsallis solves this slot
  std::uint64_t arena_overflows = 0;  ///< cumulative arena spills (0 = clean)
  double trader_dual = 0.0;  ///< TradingPolicy::dual_value() after feedback
  double buy = 0.0, sell = 0.0;              ///< executed z^t, w^t
  double buy_price = 0.0, sell_price = 0.0;  ///< quote c^t, r^t
  double emission = 0.0;    ///< e^t
  double balance = 0.0;     ///< allowance balance after the slot
  double carbon_cap = 0.0;  ///< R of the scenario
  double inference_cost = 0.0, switching_cost = 0.0, trading_cost = 0.0;
  double accuracy = 0.0, workload = 0.0;
};

/// Observer attached via SlotEngine::set_observer. Called synchronously on
/// the engine-driving thread at a pool-quiescent point; must not call back
/// into the engine. Observational only: the engine's arithmetic is
/// identical with or without an observer attached.
class SlotObserver {
 public:
  virtual ~SlotObserver() = default;
  virtual void on_slot(const SlotObservation& observed) = 0;
};
#endif  // CEA_TELEMETRY

class SlotEngine {
 public:
  /// `fleet` may be null only with `fixed_models` set (the run_fixed
  /// path). The environment must outlive the engine (FleetState aliases
  /// its rows).
  SlotEngine(const Environment& env, const SimOptions& options,
             std::unique_ptr<bandit::FleetPolicy> fleet,
             std::unique_ptr<trading::TradingPolicy> trader,
             std::uint64_t run_seed, std::string algorithm_name,
             const std::vector<std::size_t>* fixed_models = nullptr);

  SlotEngine(const SlotEngine&) = delete;
  SlotEngine& operator=(const SlotEngine&) = delete;

  /// Next slot to execute (== slots already executed).
  std::size_t slot() const noexcept { return t_; }
  std::size_t num_edges() const noexcept { return num_edges_; }
  std::size_t num_models() const noexcept { return num_models_; }
  double allowance_balance() const noexcept { return allowance_balance_; }
  const std::string& algorithm() const noexcept { return result_.algorithm; }

  /// Batch path: advance one slot on the environment's own traces.
  void step();

  /// Streaming path: advance one slot on live inputs. `slot_workload` is
  /// one count per edge (nullptr = use the environment trace at slot()).
  void step(const trading::TradeObservation& quote, const int* slot_workload);

  /// Split-phase path for multi-tenant market clearing: begin_slot runs
  /// the cross-edge presolve and the trader's decision; the caller may
  /// then adjust the decision (e.g. clamp to shared market liquidity)
  /// before finish_slot executes the edge fan-out, the ledger update, and
  /// the trader feedback with the executed trade.
  trading::TradeDecision begin_slot(const trading::TradeObservation& quote);
  void finish_slot(const trading::TradeObservation& quote,
                   trading::TradeDecision trade, const int* slot_workload);

#if defined(CEA_TELEMETRY)
  /// Attach (or detach with nullptr) the per-slot decision observer. The
  /// observer must outlive the engine or be detached first. Compiled out
  /// under -DCEA_TELEMETRY=OFF along with the hook itself.
  void set_observer(SlotObserver* observer) { observer_ = observer; }
#endif

  /// Slots executed so far, as a RunResult (series have length slot()).
  const RunResult& result() noexcept;
  RunResult take_result();

  /// Snapshot the full mutable state — slot cursor, ledger, recorded
  /// series, hosted models, draw RNG, bandit and trader state — such that
  /// restore_state() on a freshly constructed engine (same environment,
  /// options, factories, run_seed) continues bit-identically. Throws
  /// util::StateError when the policy or trader does not implement
  /// checkpointing.
  void save_state(util::StateWriter& writer) const;
  void restore_state(util::StateReader& reader);

 private:
  void run_edge(std::size_t i);
  void presolve();

  const Environment& env_;
  SimOptions options_;
  std::unique_ptr<bandit::FleetPolicy> fleet_;
  std::unique_ptr<trading::TradingPolicy> trader_;
  bool fixed_choices_ = false;
  std::vector<std::size_t> fixed_models_;

  std::size_t num_edges_ = 0;
  std::size_t num_models_ = 0;
  std::uint64_t draw_seed_ = 0;
  Rng shared_draw_rng_;  ///< legacy per-sample reference stream

  RunResult result_;
  FleetState state_;

  // Cached FleetState arrays (see sim/fleet_state.h for the layout).
  const double* energy_per_sample_ = nullptr;
  const double* mean_loss_ = nullptr;
  const data::LossProfile* const* profiles_ = nullptr;
  const std::uint32_t* shift_target_ = nullptr;
  const double* edge_switch_cost_ = nullptr;
  const double* comp_cost_ = nullptr;
  const double* transfer_energy_ = nullptr;
  const int* const* edge_workload_ = nullptr;
  std::uint32_t* previous_model_ = nullptr;
  double* part_inference_ = nullptr;
  double* part_switch_cost_ = nullptr;
  double* part_energy_ = nullptr;
  double* part_correct_ = nullptr;
  double* part_samples_ = nullptr;
  std::uint32_t* part_model_ = nullptr;
  std::uint8_t* part_switched_ = nullptr;

  double allowance_balance_ = 0.0;
#if defined(CEA_AUDIT)
  double audit_net_flow_ = 0.0;
#endif

  bool per_sample_ = false;
  util::ThreadPool* pool_ = nullptr;
  bool any_batchable_ = false;
  TsallisBatchSolver batch_solver_;

  // Slot-scoped values shared with the hoisted edge task. Assigned once
  // per slot before the fan-out; read-only inside it.
  std::size_t t_ = 0;
  bool shifted_ = false;
  const int* slot_workload_ = nullptr;
#if defined(CEA_TELEMETRY)
  bool obs_detail_ = false;
  SlotObserver* observer_ = nullptr;
  std::uint64_t obs_solver_lanes_ = 0;  ///< presolve batch width this slot
  std::vector<std::uint64_t> obs_model_counts_;  ///< per-slot scratch
#endif

  // Hoisted shard closure: no std::function construction per slot.
  std::function<void(std::size_t, std::size_t)> shard_task_;
};

}  // namespace cea::sim
