#include "trading/lyapunov_trader.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "util/check.h"
#include "util/state_io.h"

namespace cea::trading {

LyapunovTrader::LyapunovTrader(const TraderContext& context,
                               double v_parameter, double quantity)
    : context_(context),
      v_(v_parameter),
      quantity_(std::min(quantity, context.max_trade_per_slot)) {}

TradeDecision LyapunovTrader::decide(std::size_t /*t*/,
                                     const TradeObservation& obs) {
  TradeDecision decision;
  // Drift-plus-penalty objective: V*(z c - w r) + Q*(-z + w).
  // Coefficient of z is (V c - Q): buy at the box edge when negative.
  if (queue_ > v_ * obs.buy_price) decision.buy = quantity_;
  // Coefficient of w is (Q - V r): sell at the box edge when negative.
  if (v_ * obs.sell_price > queue_) decision.sell = quantity_;
  return decision;
}

void LyapunovTrader::feedback(std::size_t /*t*/, double emission,
                              const TradeObservation& /*obs*/,
                              const TradeDecision& executed) {
  const double target = context_.carbon_cap /
                        static_cast<double>(std::max<std::size_t>(
                            context_.horizon, 1));
  queue_ = std::max(
      0.0, queue_ + emission - target - executed.buy + executed.sell);
  CEA_CHECK(std::isfinite(queue_) && queue_ >= 0.0, "lyapunov.queue_nonneg",
            audit::kNoIndex, audit::kNoIndex, queue_,
            "virtual queue " << queue_ << " after emission " << emission);
}

TraderFactory LyapunovTrader::factory(double v_parameter, double quantity) {
  return [v_parameter, quantity](const TraderContext& context) {
    return std::make_unique<LyapunovTrader>(context, v_parameter, quantity);
  };
}

bool LyapunovTrader::save_state(util::StateWriter& writer) const {
  writer.write_double("ly.queue", queue_);
  return true;
}

bool LyapunovTrader::load_state(util::StateReader& reader) {
  queue_ = reader.read_double("ly.queue");
  return true;
}

}  // namespace cea::trading
