#pragma once

#include "trading/trader.h"

namespace cea::trading {

/// "Lyapunov" (LY) trading baseline of Section V-A: the drift-plus-penalty
/// method of time-averaged stochastic optimization (Yang et al. 2022 and
/// the virtual-queue literature the paper cites).
///
/// A virtual queue Q^t tracks the cumulative carbon-neutrality backlog:
///   Q^{t+1} = [Q^t + e^t - R/T - z^t + w^t]^+ .
/// Each slot minimizes V * (z c^t - w r^t) + Q^t * (-z + w) over the box
/// [0, max_trade]^2, which is linear and solves to bang-bang decisions:
/// buy everything when Q^t > V c^t, sell everything when V r^t > Q^t.
class LyapunovTrader final : public TradingPolicy {
 public:
  /// `quantity` is the bang-bang trade size (the box radius of the
  /// drift-plus-penalty step), clamped by the context's liquidity cap.
  LyapunovTrader(const TraderContext& context, double v_parameter,
                 double quantity);

  TradeDecision decide(std::size_t t, const TradeObservation& obs) override;
  void feedback(std::size_t t, double emission, const TradeObservation& obs,
                const TradeDecision& executed) override;
  std::string name() const override { return "LY"; }
  double dual_value() const override { return queue_; }

  double queue() const noexcept { return queue_; }

  bool save_state(util::StateWriter& writer) const override;
  bool load_state(util::StateReader& reader) override;

  /// V trades off trading expense against queue (violation) backlog. The
  /// default quantity is "the liquidity cap" (classic bang-bang drift-plus-
  /// penalty); pass a smaller box to soften it.
  static TraderFactory factory(double v_parameter = 2.0,
                               double quantity = 1e9);

 private:
  TraderContext context_;
  double v_;
  double quantity_;
  double queue_ = 0.0;
};

}  // namespace cea::trading
