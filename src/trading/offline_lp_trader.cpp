#include "trading/offline_lp_trader.h"

#include <cassert>
#include <memory>

#include "opt/simplex.h"

namespace cea::trading {

OfflineTradingPlan solve_offline_trading(
    const TraderContext& context, const std::vector<double>& buy_prices,
    const std::vector<double>& sell_prices,
    const std::vector<double>& emissions) {
  const std::size_t horizon = emissions.size();
  assert(buy_prices.size() == horizon && sell_prices.size() == horizon);

  // Variables: z^0..z^{T-1}, w^0..w^{T-1}.
  LpProblem problem;
  problem.maximize = false;
  problem.objective.resize(2 * horizon);
  for (std::size_t t = 0; t < horizon; ++t) {
    problem.objective[t] = buy_prices[t];
    problem.objective[horizon + t] = -sell_prices[t];
  }

  // Prefix neutrality: sum_{s<=d} (-z^s + w^s) <= R - sum_{s<=d} e^s.
  double emission_prefix = 0.0;
  for (std::size_t d = 0; d < horizon; ++d) {
    emission_prefix += emissions[d];
    LpConstraint con;
    con.coeffs.assign(2 * horizon, 0.0);
    for (std::size_t s = 0; s <= d; ++s) {
      con.coeffs[s] = -1.0;
      con.coeffs[horizon + s] = 1.0;
    }
    con.relation = Relation::kLessEqual;
    con.rhs = context.carbon_cap - emission_prefix;
    problem.constraints.push_back(std::move(con));
  }
  // Liquidity caps.
  for (std::size_t v = 0; v < 2 * horizon; ++v) {
    LpConstraint con;
    con.coeffs.assign(2 * horizon, 0.0);
    con.coeffs[v] = 1.0;
    con.relation = Relation::kLessEqual;
    con.rhs = context.max_trade_per_slot;
    problem.constraints.push_back(std::move(con));
  }

  OfflineTradingPlan plan;
  plan.buy.assign(horizon, 0.0);
  plan.sell.assign(horizon, 0.0);
  // Averaged experiments solve one offline LP per run, possibly from several
  // pool threads at once; a thread_local solver keeps each thread's arena
  // warm so repeated solves of the same horizon allocate nothing.
  thread_local LpSolver solver;
  const LpSolution solution = solver.solve(problem, 200000);
  if (solution.status != LpStatus::kOptimal) return plan;
  plan.feasible = true;
  plan.cost = solution.objective;
  for (std::size_t t = 0; t < horizon; ++t) {
    plan.buy[t] = solution.x[t];
    plan.sell[t] = solution.x[horizon + t];
  }
  return plan;
}

OfflineLpTrader::OfflineLpTrader(OfflineTradingPlan plan)
    : plan_(std::move(plan)) {}

TradeDecision OfflineLpTrader::decide(std::size_t t,
                                      const TradeObservation& /*obs*/) {
  if (t >= plan_.buy.size()) return {};
  return {plan_.buy[t], plan_.sell[t]};
}

void OfflineLpTrader::feedback(std::size_t /*t*/, double /*emission*/,
                               const TradeObservation& /*obs*/,
                               const TradeDecision& /*executed*/) {}

}  // namespace cea::trading
