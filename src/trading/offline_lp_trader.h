#pragma once

#include <vector>

#include "trading/trader.h"

namespace cea::trading {

/// Offline-optimal carbon trading: the trading half of the paper's
/// "Offline" reference, which assumes all prices and emissions over the
/// whole horizon are known in advance and solves the resulting linear
/// program exactly (the paper uses Gurobi; we use the library's two-phase
/// simplex solver).
///
/// LP (per DESIGN.md, with the per-slot liquidity cap that bounds the
/// otherwise-unbounded buy-low/sell-high arbitrage):
///   min   sum_t (c^t z^t - r^t w^t)
///   s.t.  sum_{s<=d} e^s  <=  R + sum_{s<=d} (z^s - w^s)   for every d
///         0 <= z^t, w^t <= max_trade_per_slot.
struct OfflineTradingPlan {
  std::vector<double> buy;
  std::vector<double> sell;
  double cost = 0.0;      ///< optimal objective value
  bool feasible = false;  ///< LP solved to optimality
};

/// Solve the offline trading LP.
OfflineTradingPlan solve_offline_trading(
    const TraderContext& context, const std::vector<double>& buy_prices,
    const std::vector<double>& sell_prices,
    const std::vector<double>& emissions);

/// TradingPolicy adapter replaying a precomputed plan slot by slot.
class OfflineLpTrader final : public TradingPolicy {
 public:
  explicit OfflineLpTrader(OfflineTradingPlan plan);

  TradeDecision decide(std::size_t t, const TradeObservation& obs) override;
  void feedback(std::size_t t, double emission, const TradeObservation& obs,
                const TradeDecision& executed) override;
  std::string name() const override { return "OfflineLP"; }

 private:
  OfflineTradingPlan plan_;
};

}  // namespace cea::trading
