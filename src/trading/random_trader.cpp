#include "trading/random_trader.h"

#include <algorithm>
#include <memory>

#include "util/state_io.h"

namespace cea::trading {

RandomTrader::RandomTrader(const TraderContext& context, double max_quantity)
    : context_(context),
      max_quantity_(std::min(max_quantity, context.max_trade_per_slot)),
      rng_(context.seed) {}

TradeDecision RandomTrader::decide(std::size_t /*t*/,
                                   const TradeObservation& /*obs*/) {
  return {rng_.uniform(0.0, max_quantity_),
          rng_.uniform(0.0, max_quantity_)};
}

void RandomTrader::feedback(std::size_t /*t*/, double /*emission*/,
                            const TradeObservation& /*obs*/,
                            const TradeDecision& /*executed*/) {}

TraderFactory RandomTrader::factory(double max_quantity) {
  return [max_quantity](const TraderContext& context) {
    return std::make_unique<RandomTrader>(context, max_quantity);
  };
}

bool RandomTrader::save_state(util::StateWriter& writer) const {
  writer.write_rng("ran.rng", rng_);
  return true;
}

bool RandomTrader::load_state(util::StateReader& reader) {
  reader.read_rng("ran.rng", rng_);
  return true;
}

}  // namespace cea::trading
