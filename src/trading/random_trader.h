#pragma once

#include "trading/trader.h"
#include "util/rng.h"

namespace cea::trading {

/// "Random" trading baseline of Section V-A: buys and sells uniformly
/// random quantities in [0, max_trade_per_slot] every slot, ignoring prices
/// and emissions.
class RandomTrader final : public TradingPolicy {
 public:
  /// `max_quantity` bounds each random draw (further clamped by the
  /// context's liquidity cap).
  RandomTrader(const TraderContext& context, double max_quantity);

  TradeDecision decide(std::size_t t, const TradeObservation& obs) override;
  void feedback(std::size_t t, double emission, const TradeObservation& obs,
                const TradeDecision& executed) override;
  std::string name() const override { return "Ran"; }

  bool save_state(util::StateWriter& writer) const override;
  bool load_state(util::StateReader& reader) override;

  static TraderFactory factory(double max_quantity = 3.0);

 private:
  TraderContext context_;
  double max_quantity_;
  Rng rng_;
};

}  // namespace cea::trading
