#include "trading/threshold_trader.h"

#include <memory>

namespace cea::trading {

ThresholdTrader::ThresholdTrader(const TraderContext& context,
                                 double buy_below, double sell_above,
                                 double quantity)
    : context_(context),
      buy_below_(buy_below),
      sell_above_(sell_above),
      quantity_(quantity) {}

TradeDecision ThresholdTrader::decide(std::size_t /*t*/,
                                      const TradeObservation& obs) {
  TradeDecision decision;
  if (obs.buy_price < buy_below_)
    decision.buy = clamp_trade(quantity_, context_);
  if (obs.sell_price > sell_above_)
    decision.sell = clamp_trade(quantity_, context_);
  return decision;
}

void ThresholdTrader::feedback(std::size_t /*t*/, double /*emission*/,
                               const TradeObservation& /*obs*/,
                               const TradeDecision& /*executed*/) {}

TraderFactory ThresholdTrader::factory(double buy_below, double sell_above,
                                       double quantity) {
  return [=](const TraderContext& context) {
    return std::make_unique<ThresholdTrader>(context, buy_below, sell_above,
                                             quantity);
  };
}

bool ThresholdTrader::save_state(util::StateWriter& /*writer*/) const {
  return true;  // stateless
}

bool ThresholdTrader::load_state(util::StateReader& /*reader*/) {
  return true;
}

}  // namespace cea::trading
