#pragma once

#include "trading/trader.h"

namespace cea::trading {

/// "Threshold" (TH) trading baseline of Section V-A: buy a fixed quantity
/// whenever the buying price drops below `buy_below`, sell a fixed quantity
/// whenever the selling price rises above `sell_above`. Oblivious to the
/// system's emissions and to the carbon cap.
class ThresholdTrader final : public TradingPolicy {
 public:
  ThresholdTrader(const TraderContext& context, double buy_below,
                  double sell_above, double quantity);

  TradeDecision decide(std::size_t t, const TradeObservation& obs) override;
  void feedback(std::size_t t, double emission, const TradeObservation& obs,
                const TradeDecision& executed) override;
  std::string name() const override { return "TH"; }

  /// Stateless: checkpointing is trivially supported.
  bool save_state(util::StateWriter& writer) const override;
  bool load_state(util::StateReader& reader) override;

  /// Defaults tuned to the EU-permit band [5.9, 10.9]: buy below 7.4
  /// (cheap third of the band), sell above 8.1 (rich half of sell quotes).
  static TraderFactory factory(double buy_below = 7.4,
                               double sell_above = 8.1,
                               double quantity = 2.0);

 private:
  TraderContext context_;
  double buy_below_;
  double sell_above_;
  double quantity_;
};

}  // namespace cea::trading
