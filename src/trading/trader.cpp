#include "trading/trader.h"

#include <algorithm>

namespace cea::trading {

double clamp_trade(double quantity, const TraderContext& context) noexcept {
  return std::clamp(quantity, 0.0, context.max_trade_per_slot);
}

}  // namespace cea::trading
