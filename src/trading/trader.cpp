#include "trading/trader.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace cea::trading {

double clamp_trade(double quantity, const TraderContext& context) noexcept {
  // A NaN proposal would pass through std::clamp unchanged and poison the
  // ledger downstream; the audit build flags it at the source.
  CEA_CHECK(std::isfinite(quantity), "trading.clamp_input", audit::kNoIndex,
            audit::kNoIndex, quantity,
            "non-finite trade proposal " << quantity);
  const double clamped = std::clamp(quantity, 0.0, context.max_trade_per_slot);
  CEA_CHECK(clamped >= 0.0 && clamped <= context.max_trade_per_slot,
            "trading.clamp_range", audit::kNoIndex, audit::kNoIndex, clamped,
            "clamped trade " << clamped << " outside [0, "
                             << context.max_trade_per_slot << "]");
  return clamped;
}

}  // namespace cea::trading
