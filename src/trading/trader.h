#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>

namespace cea::util {
class StateWriter;
class StateReader;
}  // namespace cea::util

namespace cea::trading {

/// Market quotes visible in the current time slot.
struct TradeObservation {
  double buy_price = 0.0;   ///< c^t, cents per allowance unit
  double sell_price = 0.0;  ///< r^t, cents per allowance unit
};

/// Allowances to purchase (z^t) and sell (w^t) this slot.
struct TradeDecision {
  double buy = 0.0;
  double sell = 0.0;

  double net() const noexcept { return buy - sell; }
  /// Trading expense: z^t c^t - w^t r^t.
  double cost(const TradeObservation& obs) const noexcept {
    return buy * obs.buy_price - sell * obs.sell_price;
  }
};

/// Static information available to every trading policy.
struct TraderContext {
  std::size_t horizon = 160;        ///< T
  double carbon_cap = 500.0;        ///< R, allowance units over the horizon
  double max_trade_per_slot = 20.0; ///< liquidity cap on z^t and on w^t
  std::uint64_t seed = 1;
};

/// Online carbon-allowance trading policy.
///
/// decide() runs at the start of slot t; the paper's Algorithm 2 only uses
/// information up to t-1, while the baselines may look at the current quote
/// in `obs` (as the paper's Threshold and Lyapunov baselines do). feedback()
/// runs at the end of the slot with the realized system emission e^t.
class TradingPolicy {
 public:
  virtual ~TradingPolicy() = default;

  virtual TradeDecision decide(std::size_t t, const TradeObservation& obs) = 0;

  virtual void feedback(std::size_t t, double emission,
                        const TradeObservation& obs,
                        const TradeDecision& executed) = 0;

  virtual std::string name() const = 0;

  /// The policy's dual/queue state after the latest feedback() — lambda^t
  /// for the paper's primal-dual trader, Q^t for the Lyapunov baseline.
  /// Observational only (decision journal, obs/journal.h); NaN when the
  /// policy keeps no such state.
  virtual double dual_value() const {
    return std::numeric_limits<double>::quiet_NaN();
  }

  /// Checkpoint support (util/state_io.h): serialize the trader's full
  /// mutable state such that load_state() on a freshly constructed trader
  /// (same TraderContext) continues bit-identically. Both return false
  /// when unsupported (the default); the writer/reader must then be
  /// untouched. Stateless traders implement these as trivially true.
  virtual bool save_state(util::StateWriter& writer) const {
    (void)writer;
    return false;
  }
  virtual bool load_state(util::StateReader& reader) {
    (void)reader;
    return false;
  }
};

using TraderFactory =
    std::function<std::unique_ptr<TradingPolicy>(const TraderContext&)>;

/// Clamp a raw quantity into the feasible [0, max_trade_per_slot] range.
double clamp_trade(double quantity, const TraderContext& context) noexcept;

}  // namespace cea::trading
